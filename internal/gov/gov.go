// Package gov is the query-governance layer: per-query cancellation
// (context.Context), wall-clock deadlines, and resource budgets (nodes
// scanned, result tuples), enforced cooperatively by every physical
// operator through a shared Governor.
//
// Design points:
//
//   - A nil *Governor is a valid no-op — every method is nil-safe — so
//     ungoverned queries (no context, no budget, no fault script) pay
//     one pointer check per instrumentation point and nothing else.
//   - Context and deadline tests are amortized: operators call the
//     governor once per emission or scanned node, and the governor
//     consults the clock and the context only every checkInterval
//     ticks, keeping the hot path free of time syscalls.
//   - The first violation is sticky. Operators observing a non-nil
//     governor error end their streams; the plan layer converts the
//     sticky error into a typed *AbortError carrying the partial
//     per-operator statistics tree (obs.OpStats), so an aborted query
//     still explains what it had done — the partial EXPLAIN ANALYZE.
//   - The governor also carries the fault-injection hook
//     (internal/fault): every instrumentation point doubles as a fault
//     site, which is how the robustness tests cancel or crash at the
//     k-th emission inside each operator.
package gov

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blossomtree/internal/fault"
	"blossomtree/internal/obs"
)

// Sentinel causes of a governed abort. AbortError wraps one of them, so
// errors.Is(err, ErrCanceled) and errors.Is(err, ErrBudgetExceeded)
// classify any abort the engine returns.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = errors.New("query canceled")
	// ErrBudgetExceeded reports that the query ran past a resource
	// budget: its deadline, its node-scan bound, or its result bound.
	ErrBudgetExceeded = errors.New("query resource budget exceeded")
	// ErrShed reports that admission control refused the query before
	// evaluation began — the server is overloaded or the tenant is over
	// quota. Shed errors never carry partial stats: nothing ran.
	ErrShed = errors.New("query shed by admission control")
)

// Budget bounds one query evaluation. Zero values mean unlimited.
type Budget struct {
	// MaxNodes caps document/index nodes the operators may scan.
	MaxNodes int64
	// MaxOutput caps result tuples (instances of the plan's root
	// operator, or rows of the navigational evaluator).
	MaxOutput int64
	// Timeout caps wall-clock evaluation time. It composes with any
	// context deadline; whichever expires first aborts the query.
	Timeout time.Duration
}

// IsZero reports whether no bound is set.
func (b Budget) IsZero() bool {
	return b.MaxNodes == 0 && b.MaxOutput == 0 && b.Timeout == 0
}

// AbortError is the typed error of a governed abort. It wraps the
// sentinel cause (ErrCanceled or ErrBudgetExceeded) and carries the
// partial per-operator statistics tree recorded up to the abort.
type AbortError struct {
	// Cause is ErrCanceled or ErrBudgetExceeded.
	Cause error
	// Reason is the specific trigger ("context canceled", "deadline
	// 50ms exceeded", "scanned 4096 nodes (budget 1024)", …).
	Reason string
	// Stats is the root of the partial operator-statistics tree at
	// abort time; nil when the abort happened before planning (e.g. a
	// context already canceled on entry) or under navigational
	// evaluation.
	Stats *obs.OpStats
}

// Error formats the abort.
func (e *AbortError) Error() string {
	return fmt.Sprintf("gov: %v: %s", e.Cause, e.Reason)
}

// Unwrap exposes the sentinel cause to errors.Is.
func (e *AbortError) Unwrap() error { return e.Cause }

// WithStats attaches a partial stats tree to a governed abort, leaving
// any other error untouched. It is idempotent: an abort that already
// carries stats keeps them.
func WithStats(err error, st *obs.OpStats) error {
	var ae *AbortError
	if errors.As(err, &ae) && ae.Stats == nil {
		ae.Stats = st
	}
	return err
}

// StatsOf returns the partial stats tree carried by a governed abort.
func StatsOf(err error) (*obs.OpStats, bool) {
	var ae *AbortError
	if errors.As(err, &ae) && ae.Stats != nil {
		return ae.Stats, true
	}
	return nil, false
}

// checkInterval is the amortization window: the context and the clock
// are consulted once per this many governor ticks, so per-instance
// overhead stays at a few atomic operations.
const checkInterval = 1024

// Governor enforces one query's governance. All counters are atomics:
// the planner's parallel pre-scan and batch workers hit one governor
// from several goroutines.
type Governor struct {
	ctx      context.Context
	budget   Budget
	deadline time.Time // zero when no Timeout
	inj      *fault.Injector

	nodes atomic.Int64 // nodes scanned so far
	out   atomic.Int64 // result tuples emitted so far
	ticks atomic.Int64 // instrumentation hits (amortization counter)

	failed atomic.Bool // fast path: sticky error present
	mu     sync.Mutex
	err    error // first violation, sticky
}

// New returns a governor for one evaluation, or nil when ctx is nil (or
// context.Background-like with no deadline), the budget is zero, and no
// fault script is armed — the no-op fast path.
func New(ctx context.Context, b Budget, inj *fault.Injector) *Governor {
	if inj == nil && b.IsZero() && (ctx == nil || (ctx.Done() == nil && ctx.Err() == nil)) {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	g := &Governor{ctx: ctx, budget: b, inj: inj}
	if b.Timeout > 0 {
		g.deadline = time.Now().Add(b.Timeout)
	}
	return g
}

// Err returns the sticky violation, typed as *AbortError, or nil.
func (g *Governor) Err() error {
	if g == nil || !g.failed.Load() {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// fail records the first violation and returns the sticky error.
func (g *Governor) fail(cause error, reason string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err == nil {
		g.err = &AbortError{Cause: cause, Reason: reason}
		g.failed.Store(true)
	}
	return g.err
}

// failErr makes an arbitrary error (an injected fault) sticky as-is.
func (g *Governor) failErr(err error) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err == nil {
		g.err = err
		g.failed.Store(true)
	}
	return g.err
}

// CheckNow tests the context, deadline, and node budget immediately —
// no amortization. Used on query entry (an already-canceled context
// must return before any scan) and at coarse-grained operator
// boundaries.
func (g *Governor) CheckNow() error {
	if g == nil {
		return nil
	}
	if g.failed.Load() {
		return g.Err()
	}
	if err := g.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return g.fail(ErrBudgetExceeded, "context deadline exceeded")
		}
		return g.fail(ErrCanceled, err.Error())
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		return g.fail(ErrBudgetExceeded, fmt.Sprintf("deadline %v exceeded", g.budget.Timeout))
	}
	if g.budget.MaxNodes > 0 {
		if n := g.nodes.Load(); n > g.budget.MaxNodes {
			return g.fail(ErrBudgetExceeded, fmt.Sprintf("scanned %d nodes (budget %d)", n, g.budget.MaxNodes))
		}
	}
	return nil
}

// tick amortizes CheckNow: the clock and context are consulted every
// checkInterval hits; budget counters (already updated by the caller)
// are compared on every call, which is two atomic loads.
func (g *Governor) tick(site fault.Site) error {
	if g.inj != nil {
		if err := g.inj.Hit(site); err != nil {
			return g.failErr(err)
		}
	}
	if g.failed.Load() {
		return g.Err()
	}
	if g.budget.MaxNodes > 0 {
		if n := g.nodes.Load(); n > g.budget.MaxNodes {
			return g.fail(ErrBudgetExceeded, fmt.Sprintf("scanned %d nodes (budget %d)", n, g.budget.MaxNodes))
		}
	}
	if g.ticks.Add(1)%checkInterval == 0 {
		return g.CheckNow()
	}
	return nil
}

// Poll is an amortized cancellation/deadline check with no fault hit
// and no budget charge — loop-progress insurance for operator loops
// that can spin long without scanning or emitting (merge advances,
// pair tests of the nested-loop joins).
func (g *Governor) Poll() error {
	if g == nil {
		return nil
	}
	if g.failed.Load() {
		return g.Err()
	}
	if g.ticks.Add(1)%checkInterval == 0 {
		return g.CheckNow()
	}
	return nil
}

// Scanned charges n scanned nodes at the given site and reports any
// governance violation. Operators call it where they count scanned
// nodes into their stats; a non-nil return must end the stream.
func (g *Governor) Scanned(site fault.Site, n int64) error {
	if g == nil {
		return nil
	}
	if n != 0 {
		g.nodes.Add(n)
	}
	return g.tick(site)
}

// Emitted marks one instance emission at the given site (a fault point
// and amortized cancellation check; emissions do not charge the output
// budget — only root-level results do, via Output).
func (g *Governor) Emitted(site fault.Site) error {
	if g == nil {
		return nil
	}
	return g.tick(site)
}

// Output charges n root-level result tuples against MaxOutput.
func (g *Governor) Output(n int64) error {
	if g == nil {
		return nil
	}
	out := g.out.Add(n)
	if g.budget.MaxOutput > 0 && out > g.budget.MaxOutput {
		return g.fail(ErrBudgetExceeded, fmt.Sprintf("produced %d results (budget %d)", out, g.budget.MaxOutput))
	}
	return g.tick(fault.SiteOutput)
}

// NodesScanned returns the nodes charged so far.
func (g *Governor) NodesScanned() int64 {
	if g == nil {
		return 0
	}
	return g.nodes.Load()
}

// Outputs returns the result tuples charged so far.
func (g *Governor) Outputs() int64 {
	if g == nil {
		return 0
	}
	return g.out.Load()
}

// Verdict classifies an evaluation outcome for the structured query
// log: "ok" on success, "canceled" / "budget_exceeded" for governed
// aborts, "shed" for admission-control refusals, "error" for
// everything else.
func Verdict(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrShed):
		return "shed"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrBudgetExceeded):
		return "budget_exceeded"
	default:
		return "error"
	}
}

// StopFunc adapts the governor to the legacy Stop-polling interface
// (bench DNF cutoffs): it reports true once any violation is recorded.
func (g *Governor) StopFunc() func() bool {
	if g == nil {
		return nil
	}
	return func() bool { return g.CheckNow() != nil }
}
