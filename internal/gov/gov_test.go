package gov

import (
	"context"
	"errors"
	"testing"
	"time"

	"blossomtree/internal/fault"
	"blossomtree/internal/obs"
)

func TestNewNoOpFastPath(t *testing.T) {
	if g := New(nil, Budget{}, nil); g != nil {
		t.Error("nil inputs should yield a nil governor")
	}
	if g := New(context.Background(), Budget{}, nil); g != nil {
		t.Error("background context and zero budget should yield a nil governor")
	}
	if g := New(nil, Budget{MaxNodes: 1}, nil); g == nil {
		t.Error("a node budget needs a governor")
	}
	if g := New(nil, Budget{}, fault.New()); g == nil {
		t.Error("a fault script needs a governor")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if g := New(ctx, Budget{}, nil); g == nil {
		t.Error("a cancelable context needs a governor")
	}
}

func TestNilGovernorIsNoOp(t *testing.T) {
	var g *Governor
	if g.Err() != nil || g.CheckNow() != nil || g.Poll() != nil ||
		g.Scanned(fault.SiteNoKScan, 10) != nil || g.Emitted(fault.SiteNoKEmit) != nil ||
		g.Output(5) != nil {
		t.Fatal("nil governor reported a violation")
	}
	if g.NodesScanned() != 0 || g.Outputs() != 0 {
		t.Fatal("nil governor counted work")
	}
	if g.StopFunc() != nil {
		t.Fatal("nil governor should adapt to a nil Stop func")
	}
}

func TestAlreadyCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := New(ctx, Budget{}, nil)
	err := g.CheckNow()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("CheckNow on canceled ctx = %v, want ErrCanceled", err)
	}
	// Sticky: the same abort comes back without consulting the context.
	if err2 := g.Err(); !errors.Is(err2, ErrCanceled) {
		t.Fatalf("Err after violation = %v", err2)
	}
}

func TestContextDeadlineMapsToBudget(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	g := New(ctx, Budget{}, nil)
	if err := g.CheckNow(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expired ctx deadline = %v, want ErrBudgetExceeded", err)
	}
}

func TestNodeBudget(t *testing.T) {
	g := New(nil, Budget{MaxNodes: 100}, nil)
	if err := g.Scanned(fault.SiteNoKScan, 100); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := g.Scanned(fault.SiteNoKScan, 1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over budget = %v, want ErrBudgetExceeded", err)
	}
	if g.NodesScanned() != 101 {
		t.Fatalf("NodesScanned = %d, want 101", g.NodesScanned())
	}
}

func TestOutputBudget(t *testing.T) {
	g := New(nil, Budget{MaxOutput: 2}, nil)
	if err := g.Output(2); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := g.Output(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over budget = %v, want ErrBudgetExceeded", err)
	}
	if g.Outputs() != 3 {
		t.Fatalf("Outputs = %d, want 3", g.Outputs())
	}
}

func TestWallClockTimeout(t *testing.T) {
	g := New(nil, Budget{Timeout: time.Millisecond}, nil)
	time.Sleep(5 * time.Millisecond)
	if err := g.CheckNow(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expired timeout = %v, want ErrBudgetExceeded", err)
	}
}

// TestPollAmortization checks both halves of the amortized contract:
// Poll is cheap (no clock consultation) off the interval, and a
// canceled context is observed within one checkInterval of ticks.
func TestPollAmortization(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Budget{}, nil)
	if err := g.Poll(); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	cancel()
	var err error
	for i := 0; i < checkInterval+1; i++ {
		if err = g.Poll(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancellation not observed within %d polls: %v", checkInterval+1, err)
	}
}

func TestInjectedFaultBecomesSticky(t *testing.T) {
	boom := errors.New("boom")
	g := New(nil, Budget{}, fault.New().FailAt(fault.SitePipelined, 2, boom))
	if err := g.Emitted(fault.SitePipelined); err != nil {
		t.Fatalf("first emission: %v", err)
	}
	if err := g.Emitted(fault.SitePipelined); !errors.Is(err, boom) {
		t.Fatalf("second emission = %v, want boom", err)
	}
	// The fault is sticky across sites: every later check fails too.
	if err := g.Poll(); !errors.Is(err, boom) {
		t.Fatalf("Poll after fault = %v, want boom", err)
	}
	if err := g.Scanned(fault.SiteNoKScan, 1); !errors.Is(err, boom) {
		t.Fatalf("Scanned after fault = %v, want boom", err)
	}
}

func TestFirstViolationWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Budget{MaxNodes: 1}, nil)
	if err := g.Scanned(fault.SiteNoKScan, 5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget violation = %v", err)
	}
	cancel()
	if err := g.CheckNow(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("later cancellation replaced the first violation: %v", err)
	}
}

func TestWithStatsAndStatsOf(t *testing.T) {
	st := &obs.OpStats{}
	g := New(nil, Budget{MaxNodes: 1}, nil)
	err := g.Scanned(fault.SiteNoKScan, 2)
	if err == nil {
		t.Fatal("expected violation")
	}
	if _, ok := StatsOf(err); ok {
		t.Fatal("stats present before attach")
	}
	err = WithStats(err, st)
	got, ok := StatsOf(err)
	if !ok || got != st {
		t.Fatalf("StatsOf = (%v, %v), want attached tree", got, ok)
	}
	// Idempotent: a second attach keeps the first tree.
	err = WithStats(err, &obs.OpStats{})
	if got, _ := StatsOf(err); got != st {
		t.Fatal("second WithStats replaced the stats")
	}
	// Non-abort errors pass through untouched.
	plain := errors.New("plain")
	if WithStats(plain, st) != plain {
		t.Fatal("WithStats altered a non-abort error")
	}
}

func TestStopFuncAdapter(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Budget{}, nil)
	stop := g.StopFunc()
	if stop() {
		t.Fatal("stop true before cancellation")
	}
	cancel()
	if !stop() {
		t.Fatal("stop false after cancellation")
	}
}
