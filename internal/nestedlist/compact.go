package nestedlist

import (
	"fmt"

	"blossomtree/internal/core"
	"blossomtree/internal/xmltree"
)

// Compact is the second physical form of the NestedList abstract data
// type: the array layout of the paper's Figure 6. Where the pointer
// form links items through per-item group slices, the compact form
// stores one document-ordered node column per returning-tree slot plus
// CSR-style offset arrays ("child pointers") delimiting each parent
// item's group — "if x_i has an edge to y_m and x_{i+1} has an edge to
// y_{m+k}, x_i pairs y_m … y_{m+k-1}".
//
// The pointer form is the build form (Algorithm 2 appends during the
// scan); Compact is the read form: projection is a column read, and
// group lookups are two offset loads. FromList/ToList convert between
// them losslessly, and the ablation benchmarks compare projection costs.
type Compact struct {
	Shape *core.ReturnTree
	// Nodes[slot] holds the slot's items' nodes in document order
	// (nil for placeholder items).
	Nodes [][]*xmltree.Node
	// Offsets[slot] has len(parent items)+1 entries: the group of the
	// parent's i-th item spans Nodes[slot][Offsets[slot][i] :
	// Offsets[slot][i+1]]. The super-root (slot 0) has offsets [0, 1].
	Offsets [][]int32
	filled  filledSet
}

// FromList converts a pointer-form instance to the compact form.
func FromList(l *List) *Compact {
	nSlots := len(l.Shape.Nodes)
	c := &Compact{
		Shape:   l.Shape,
		Nodes:   make([][]*xmltree.Node, nSlots),
		Offsets: make([][]int32, nSlots),
		filled:  l.filled,
	}
	c.Nodes[0] = []*xmltree.Node{nil}
	c.Offsets[0] = []int32{0, 1}

	// BFS over the shape: materialize each slot's column from its
	// parent's item list.
	parentItems := map[int][]*Item{0: {l.Root}}
	queue := append([]*core.ReturnNode(nil), l.Shape.Root.Children...)
	for len(queue) > 0 {
		sn := queue[0]
		queue = queue[1:]
		queue = append(queue, sn.Children...)
		ord := sn.ChildOrdinal()
		parents := parentItems[parentSlot(sn)]
		offs := make([]int32, 1, len(parents)+1)
		var col []*xmltree.Node
		var items []*Item
		for _, p := range parents {
			if p != nil && ord < len(p.Groups) {
				for _, it := range p.Groups[ord] {
					col = append(col, it.Node)
					items = append(items, it)
				}
			}
			offs = append(offs, int32(len(col)))
		}
		c.Nodes[sn.Slot] = col
		c.Offsets[sn.Slot] = offs
		parentItems[sn.Slot] = items
	}
	return c
}

func parentSlot(sn *core.ReturnNode) int {
	if sn.Parent == nil {
		return 0
	}
	return sn.Parent.Slot
}

// IsFilled reports whether the slot is carried by this instance.
func (c *Compact) IsFilled(slot int) bool { return c.filled.get(slot) }

// ProjectSlot is π by slot: the non-placeholder entries of the slot's
// column, in document order — a single array read, the operation the
// compact form optimizes.
func (c *Compact) ProjectSlot(slot int) []*xmltree.Node {
	col := c.Nodes[slot]
	out := make([]*xmltree.Node, 0, len(col))
	for _, n := range col {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Group returns the half-open index range of the group under the
// parent item with index parentIdx at the given slot.
func (c *Compact) Group(slot, parentIdx int) (lo, hi int, err error) {
	offs := c.Offsets[slot]
	if parentIdx < 0 || parentIdx+1 >= len(offs) {
		return 0, 0, fmt.Errorf("nestedlist: parent index %d out of range for slot %d", parentIdx, slot)
	}
	return int(offs[parentIdx]), int(offs[parentIdx+1]), nil
}

// ToList converts back to the pointer form.
func (c *Compact) ToList() *List {
	l := &List{Shape: c.Shape, filled: c.filled}
	// Rebuild items per slot, then wire groups via offsets.
	items := make(map[int][]*Item, len(c.Shape.Nodes))
	items[0] = []*Item{NewItem(nil, len(c.Shape.Root.Children))}
	var walk func(sn *core.ReturnNode)
	walk = func(sn *core.ReturnNode) {
		col := c.Nodes[sn.Slot]
		slotItems := make([]*Item, len(col))
		for i, n := range col {
			slotItems[i] = NewItem(n, len(sn.Children))
		}
		items[sn.Slot] = slotItems
		parents := items[parentSlot(sn)]
		offs := c.Offsets[sn.Slot]
		ord := sn.ChildOrdinal()
		for pi, p := range parents {
			if pi+1 < len(offs) {
				p.Groups[ord] = slotItems[offs[pi]:offs[pi+1]]
			}
		}
		for _, child := range sn.Children {
			walk(child)
		}
	}
	for _, child := range c.Shape.Root.Children {
		walk(child)
	}
	l.Root = items[0][0]
	return l
}
