package nestedlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blossomtree/internal/core"
	"blossomtree/internal/xmltree"
)

func TestCompactRoundTrip(t *testing.T) {
	_, rt := fig3Shape(t)
	l, _ := fig3Instance(t, rt)
	c := FromList(l)
	back := c.ToList()
	if got, want := back.String(), l.String(); got != want {
		t.Errorf("round trip:\n%s\nwant\n%s", got, want)
	}
	for slot := 0; slot < len(rt.Nodes); slot++ {
		if c.IsFilled(slot) != l.IsFilled(slot) {
			t.Errorf("slot %d filled mismatch", slot)
		}
		a := c.ProjectSlot(slot)
		b := l.ProjectSlot(slot)
		if len(a) != len(b) {
			t.Fatalf("slot %d: compact π=%d, pointer π=%d", slot, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("slot %d item %d differs", slot, i)
			}
		}
	}
}

func TestCompactGroups(t *testing.T) {
	_, rt := fig3Shape(t)
	l, _ := fig3Instance(t, rt)
	c := FromList(l)
	bSlot := slotOf(t, rt, "1.1.1")
	dSlot := slotOf(t, rt, "1.1.1.1")

	// The three b items have d-groups of sizes 0, 2, 1 (Figure 3).
	want := []int{0, 2, 1}
	for i, w := range want {
		lo, hi, err := c.Group(dSlot, i)
		if err != nil {
			t.Fatal(err)
		}
		if hi-lo != w {
			t.Errorf("b%d d-group size = %d, want %d", i+1, hi-lo, w)
		}
	}
	if _, _, err := c.Group(dSlot, 99); err == nil {
		t.Error("out-of-range group should fail")
	}
	if _, _, err := c.Group(bSlot, -1); err == nil {
		t.Error("negative index should fail")
	}
	// Column order is document order (the Figure 6 invariant).
	col := c.ProjectSlot(dSlot)
	for i := 1; i < len(col); i++ {
		if !col[i-1].Before(col[i]) {
			t.Error("compact column out of document order")
		}
	}
}

func TestCompactPlaceholderSpine(t *testing.T) {
	q, aSlot, bSlot := twoNoKShape(t)
	doc, err := xmltree.ParseString(`<r><a><b/></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	b := xmltree.Descendants(doc.DocumentElement(), "b")[0]
	lb := NewInstance(q.Return)
	spine := NewItem(nil, 1)
	spine.Groups[0] = []*Item{NewItem(b, 0)}
	lb.Root.Groups[0] = []*Item{spine}
	lb.SetFilled(bSlot)

	c := FromList(lb)
	if len(c.ProjectSlot(aSlot)) != 0 {
		t.Error("placeholder spine must project to nothing")
	}
	if got := c.ProjectSlot(bSlot); len(got) != 1 || got[0] != b {
		t.Errorf("b column = %v", got)
	}
	back := c.ToList()
	if back.String() != lb.String() {
		t.Errorf("spine round trip: %s vs %s", back.String(), lb.String())
	}
}

// TestQuickCompactEquivalence: random instances round-trip and project
// identically in both physical forms.
func TestQuickCompactEquivalence(t *testing.T) {
	_, rt := fig3Shape(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomInstance(r, rt)
		c := FromList(l)
		for slot := 0; slot < len(rt.Nodes); slot++ {
			a, b := c.ProjectSlot(slot), l.ProjectSlot(slot)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return c.ToList().String() == l.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomInstance builds a random instance of the fig3 shape over a
// random document.
func randomInstance(r *rand.Rand, rt *core.ReturnTree) *List {
	b := xmltree.NewBuilder()
	b.Start("t").Start("a")
	nb := r.Intn(4)
	for i := 0; i < nb; i++ {
		b.Start("b")
		for j := r.Intn(3); j > 0; j-- {
			b.Elem("d", "")
		}
		b.End()
	}
	for i := r.Intn(3); i > 0; i-- {
		b.Elem("c", "")
	}
	b.End().End()
	doc := b.MustDone()

	top := doc.DocumentElement()
	a := xmltree.Children(top, "a")[0]
	l := NewInstance(rt)
	aItem := NewItem(a, 2)
	for _, bn := range xmltree.Children(a, "b") {
		it := NewItem(bn, 1)
		for _, dn := range xmltree.Children(bn, "d") {
			it.Groups[0] = append(it.Groups[0], NewItem(dn, 0))
		}
		aItem.Groups[0] = append(aItem.Groups[0], it)
	}
	for _, cn := range xmltree.Children(a, "c") {
		aItem.Groups[1] = append(aItem.Groups[1], NewItem(cn, 0))
	}
	l.Root.Groups[0] = []*Item{aItem}
	for slot := 1; slot < len(rt.Nodes); slot++ {
		l.SetFilled(slot)
	}
	return l
}
