package nestedlist

import (
	"testing"

	"blossomtree/internal/core"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

// fig3Shape builds the NoK pattern tree of Figure 3(a): a with children
// b and c, b with child d; all returning. The b and c edges are
// mandatory, d's edge is optional (matching Example 3, where b1 has no d
// but stays in the result).
func fig3Shape(t *testing.T) (*core.BlossomTree, *core.ReturnTree) {
	t.Helper()
	bt := core.NewBlossomTree()
	root := bt.AddRoot("t.xml")
	a := bt.NewVertex("a")
	bt.AddChild(root, a, core.RelDescendant, core.Mandatory)
	b := bt.NewVertex("b")
	bt.AddChild(a, b, core.RelChild, core.Mandatory)
	d := bt.NewVertex("d")
	bt.AddChild(b, d, core.RelChild, core.Optional)
	c := bt.NewVertex("c")
	bt.AddChild(a, c, core.RelChild, core.Mandatory)
	for _, v := range []*core.Vertex{a, b, c, d} {
		v.Returning = true
	}
	rt := bt.Finalize()
	return bt, rt
}

// fig3XML is the XML tree of Figure 3(b).
const fig3XML = `<t><a><b/><b><d/><d/></b><b><d/></b><c/><c/></a></t>`

// fig3Instance constructs the resulting NestedList of Figure 3(c)/4 by
// hand, as the matcher would.
func fig3Instance(t *testing.T, rt *core.ReturnTree) (*List, *xmltree.Document) {
	t.Helper()
	doc, err := xmltree.ParseString(fig3XML)
	if err != nil {
		t.Fatal(err)
	}
	top := doc.DocumentElement()
	a1 := xmltree.Children(top, "a")[0]
	bs := xmltree.Children(a1, "b")
	cs := xmltree.Children(a1, "c")

	l := NewInstance(rt)
	aItem := NewItem(a1, 2) // children: b group, c group
	bItems := make([]*Item, len(bs))
	for i, b := range bs {
		bItems[i] = NewItem(b, 1)
		for _, d := range xmltree.Children(b, "d") {
			bItems[i].Groups[0] = append(bItems[i].Groups[0], NewItem(d, 0))
		}
	}
	aItem.Groups[0] = bItems
	for _, c := range cs {
		aItem.Groups[1] = append(aItem.Groups[1], NewItem(c, 0))
	}
	l.Root.Groups[0] = []*Item{aItem}
	for slot := 1; slot < len(rt.Nodes); slot++ {
		l.SetFilled(slot)
	}
	return l, doc
}

func slotOf(t *testing.T, rt *core.ReturnTree, dewey string) int {
	t.Helper()
	d, err := core.ParseDewey(dewey)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := rt.ByDewey(d)
	if !ok {
		t.Fatalf("no slot for Dewey %s", dewey)
	}
	return n.Slot
}

func TestFigure4Notation(t *testing.T) {
	_, rt := fig3Shape(t)
	l, _ := fig3Instance(t, rt)
	want := "((a,[(b,()),(b,[(d),(d)]),(b,(d))],[(c),(c)]))"
	if got := l.String(); got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestProjection(t *testing.T) {
	_, rt := fig3Shape(t)
	l, _ := fig3Instance(t, rt)

	// π(1.1.1) = [b1, b2, b3] in document order (Theorem 1).
	bs, err := l.Project(core.Dewey{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("π(b) = %d nodes", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if !bs[i-1].Before(bs[i]) {
			t.Error("projection not in document order")
		}
	}
	ds, err := l.Project(core.Dewey{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Errorf("π(d) = %d nodes, want 3", len(ds))
	}
	if _, err := l.Project(core.Dewey{9, 9}); err == nil {
		t.Error("projection on unknown Dewey should fail")
	}
	// Projecting the super-root yields nothing (placeholder node).
	if got := l.ProjectSlot(0); len(got) != 0 {
		t.Errorf("π(super-root) = %v", got)
	}
}

func TestSelection(t *testing.T) {
	_, rt := fig3Shape(t)
	l, _ := fig3Instance(t, rt)

	// σ_position=2(1.1.1) keeps only b2 (the paper's σposition(1.1)=2
	// example, shifted by the super-root level).
	out, ok, err := l.Select(core.Dewey{1, 1, 1}, func(n *xmltree.Node, pos int) bool { return pos == 2 })
	if err != nil || !ok {
		t.Fatalf("Select: %v %v", ok, err)
	}
	bs, _ := out.Project(core.Dewey{1, 1, 1})
	if len(bs) != 1 {
		t.Fatalf("after σ, π(b) = %d", len(bs))
	}
	ds, _ := out.Project(core.Dewey{1, 1, 1, 1})
	if len(ds) != 2 {
		t.Errorf("after σ, π(d) = %d, want 2 (b2's children)", len(ds))
	}
	// The original instance is untouched.
	if got, _ := l.Project(core.Dewey{1, 1, 1}); len(got) != 3 {
		t.Error("Select mutated its input")
	}

	// Removing every b invalidates the instance (mandatory edge).
	_, ok, err = l.Select(core.Dewey{1, 1, 1}, func(*xmltree.Node, int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("emptying a mandatory slot must invalidate the instance")
	}

	// Removing every d is fine (optional edge).
	out, ok, err = l.Select(core.Dewey{1, 1, 1, 1}, func(*xmltree.Node, int) bool { return false })
	if err != nil || !ok {
		t.Fatalf("optional removal: %v %v", ok, err)
	}
	if ds, _ := out.Project(core.Dewey{1, 1, 1, 1}); len(ds) != 0 {
		t.Errorf("d not removed: %v", ds)
	}

	if _, _, err := l.Select(core.Dewey{7}, nil); err == nil {
		t.Error("Select on unknown Dewey should fail")
	}
}

func TestSelectByValue(t *testing.T) {
	_, rt := fig3Shape(t)
	l, _ := fig3Instance(t, rt)
	// Keep only b's that have a d child — b1 drops, instance stays valid.
	out, ok, err := l.Select(core.Dewey{1, 1, 1}, func(n *xmltree.Node, pos int) bool {
		return len(xmltree.Children(n, "d")) > 0
	})
	if err != nil || !ok {
		t.Fatalf("Select: %v %v", ok, err)
	}
	if bs, _ := out.Project(core.Dewey{1, 1, 1}); len(bs) != 2 {
		t.Errorf("π(b) = %d, want 2", len(bs))
	}
}

// twoNoKShape compiles //a//b so that a and b land in different NoKs and
// instances fill disjoint slots.
func twoNoKShape(t *testing.T) (*core.Query, int, int) {
	t.Helper()
	q, err := core.FromPath(xpath.MustParse("//a//b"))
	if err != nil {
		t.Fatal(err)
	}
	aSlot := slotOf(t, q.Return, "1.1")
	bSlot := slotOf(t, q.Return, "1.1.1")
	return q, aSlot, bSlot
}

func TestMergeFillsPlaceholders(t *testing.T) {
	q, aSlot, bSlot := twoNoKShape(t)
	doc, err := xmltree.ParseString(`<r><a><x><b/></x></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	a := xmltree.Descendants(doc.DocumentElement(), "a")[0]
	b := xmltree.Descendants(doc.DocumentElement(), "b")[0]

	// Instance A: fills the a slot, b group empty (placeholder).
	la := NewInstance(q.Return)
	aItem := NewItem(a, 1)
	la.Root.Groups[0] = []*Item{aItem}
	la.SetFilled(aSlot)

	// Instance B: placeholder spine for a, fills the b slot.
	lb := NewInstance(q.Return)
	spine := NewItem(nil, 1)
	spine.Groups[0] = []*Item{NewItem(b, 0)}
	lb.Root.Groups[0] = []*Item{spine}
	lb.SetFilled(bSlot)

	m, err := Merge(la, lb)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsFilled(aSlot) || !m.IsFilled(bSlot) {
		t.Error("merged instance should fill both slots")
	}
	as := m.ProjectSlot(aSlot)
	bs := m.ProjectSlot(bSlot)
	if len(as) != 1 || as[0] != a || len(bs) != 1 || bs[0] != b {
		t.Errorf("projections = %v, %v", as, bs)
	}
	// Inputs untouched.
	if len(la.ProjectSlot(bSlot)) != 0 {
		t.Error("Merge mutated input")
	}
	// Merge is symmetric.
	m2, err := Merge(lb, la)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.ProjectSlot(bSlot)) != 1 {
		t.Error("reversed merge lost b")
	}
}

func TestMergeDeepestAncestorWins(t *testing.T) {
	// Recursive document: two nested a's; the b spine must attach to the
	// inner (deepest) a.
	q, aSlot, bSlot := twoNoKShape(t)
	doc, err := xmltree.ParseString(`<r><a><a><b/></a></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	as := xmltree.Descendants(doc.DocumentElement(), "a")
	b := xmltree.Descendants(doc.DocumentElement(), "b")[0]

	la := NewInstance(q.Return)
	la.Root.Groups[0] = []*Item{NewItem(as[0], 1), NewItem(as[1], 1)}
	la.SetFilled(aSlot)

	lb := NewInstance(q.Return)
	spine := NewItem(nil, 1)
	spine.Groups[0] = []*Item{NewItem(b, 0)}
	lb.Root.Groups[0] = []*Item{spine}
	lb.SetFilled(bSlot)

	m, err := Merge(la, lb)
	if err != nil {
		t.Fatal(err)
	}
	items := m.Items(aSlot)
	if len(items) != 2 {
		t.Fatalf("a items = %d", len(items))
	}
	if len(items[0].Groups[0]) != 0 {
		t.Error("outer a should not receive the b spine")
	}
	if len(items[1].Groups[0]) != 1 || items[1].Groups[0][0].Node != b {
		t.Error("inner a should receive the b spine")
	}
}

func TestMergeErrors(t *testing.T) {
	q, aSlot, _ := twoNoKShape(t)
	doc, _ := xmltree.ParseString(`<r><a/><b/></r>`)
	a := xmltree.Descendants(doc.DocumentElement(), "a")[0]
	b := xmltree.Descendants(doc.DocumentElement(), "b")[0]

	la := NewInstance(q.Return)
	la.Root.Groups[0] = []*Item{NewItem(a, 1)}
	la.SetFilled(aSlot)

	// Merging an instance with itself unions the groups item-wise: the
	// shared node merges into one item.
	self, err := Merge(la, la)
	if err != nil {
		t.Fatalf("self merge: %v", err)
	}
	if got := self.ProjectSlot(aSlot); len(got) != 1 || got[0] != a {
		t.Errorf("self merge projection = %v", got)
	}

	// Spine anchored at a node outside every real item.
	q2, _, bSlot := twoNoKShape(t)
	_ = q2
	lb := NewInstance(q.Return)
	spine := NewItem(nil, 1)
	spine.Groups[0] = []*Item{NewItem(b, 0)} // b is not under a
	lb.Root.Groups[0] = []*Item{spine}
	lb.SetFilled(bSlot)
	if _, err := Merge(la, lb); err == nil {
		t.Error("unanchorable spine should fail")
	}

	// Different shapes.
	q3, _, _ := twoNoKShape(t)
	other := NewInstance(q3.Return)
	if _, err := Merge(la, other); err == nil {
		t.Error("different shapes should fail")
	}
}

func TestUnnest(t *testing.T) {
	_, rt := fig3Shape(t)
	l, _ := fig3Instance(t, rt)
	bSlot := slotOf(t, rt, "1.1.1")

	parts := Unnest(l, bSlot)
	if len(parts) != 3 {
		t.Fatalf("Unnest(b) = %d instances, want 3", len(parts))
	}
	for i, p := range parts {
		bs := p.ProjectSlot(bSlot)
		if len(bs) != 1 {
			t.Fatalf("instance %d has %d b's", i, len(bs))
		}
		// c group intact in every instance.
		cs, _ := p.Project(core.Dewey{1, 1, 2})
		if len(cs) != 2 {
			t.Errorf("instance %d: π(c) = %d, want 2", i, len(cs))
		}
	}
	// d counts follow their b: 0, 2, 1.
	wantD := []int{0, 2, 1}
	for i, p := range parts {
		ds, _ := p.Project(core.Dewey{1, 1, 1, 1})
		if len(ds) != wantD[i] {
			t.Errorf("instance %d: π(d) = %d, want %d", i, len(ds), wantD[i])
		}
	}
	// Original untouched.
	if bs, _ := l.Project(core.Dewey{1, 1, 1}); len(bs) != 3 {
		t.Error("Unnest mutated input")
	}

	// Unnesting the a slot (single item) yields one instance.
	aSlot := slotOf(t, rt, "1.1")
	if parts := Unnest(l, aSlot); len(parts) != 1 {
		t.Errorf("Unnest(a) = %d", len(parts))
	}
}

func TestProjectAll(t *testing.T) {
	_, rt := fig3Shape(t)
	l, _ := fig3Instance(t, rt)
	bSlot := slotOf(t, rt, "1.1.1")
	parts := Unnest(l, bSlot)
	all := ProjectAll(parts, bSlot)
	if len(all) != 3 {
		t.Fatalf("ProjectAll = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if !all[i-1].Before(all[i]) {
			t.Error("ProjectAll order broken")
		}
	}
}

func TestProjectVar(t *testing.T) {
	q, err := core.FromPath(xpath.MustParse("//a"))
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<r><a/></r>`)
	a := xmltree.Descendants(doc.DocumentElement(), "a")[0]
	l := NewInstance(q.Return)
	l.Root.Groups[0] = []*Item{NewItem(a, 0)}
	l.SetFilled(1)
	ns, err := l.ProjectVar("result")
	if err != nil || len(ns) != 1 || ns[0] != a {
		t.Errorf("ProjectVar = %v, %v", ns, err)
	}
	if _, err := l.ProjectVar("missing"); err == nil {
		t.Error("ProjectVar(missing) should fail")
	}
}
