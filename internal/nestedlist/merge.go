package nestedlist

import (
	"fmt"

	"blossomtree/internal/xmltree"
)

// Merge implements the fill step of the join operator (§3.3, Example 4):
// it combines two instances of the same shape into one, filling each
// side's placeholders with the other side's matches. The join predicate
// itself is evaluated by the physical join operators (internal/join) on
// the projections of the two instances before Merge is called.
//
// Merging walks both item trees in lockstep:
//
//   - a slot filled on exactly one side takes that side's group;
//   - two placeholder spines at the same position merge recursively;
//   - a placeholder spine meeting real items is resolved structurally:
//     each of its filled sub-regions attaches under the deepest real item
//     whose node contains the region's anchor node (the closest
//     ancestor-descendant rule of the returning tree).
//
// Merge never mutates its inputs.
func Merge(a, b *List) (*List, error) {
	if a.Shape != b.Shape {
		return nil, fmt.Errorf("nestedlist: merging instances of different shapes")
	}
	out := &List{Shape: a.Shape, filled: a.filled.or(b.filled, len(a.Shape.Nodes))}
	root, err := mergeItems(a.Root, b.Root)
	if err != nil {
		return nil, err
	}
	out.Root = root
	return out, nil
}

func mergeItems(x, y *Item) (*Item, error) {
	node := x.Node
	if node == nil {
		node = y.Node
	} else if y.Node != nil && y.Node != node {
		return nil, fmt.Errorf("nestedlist: conflicting nodes %v and %v at merge point", x.Node, y.Node)
	}
	n := len(x.Groups)
	if len(y.Groups) > n {
		n = len(y.Groups)
	}
	out := &Item{Node: node, Groups: make([][]*Item, n)}
	for i := 0; i < n; i++ {
		var gx, gy []*Item
		if i < len(x.Groups) {
			gx = x.Groups[i]
		}
		if i < len(y.Groups) {
			gy = y.Groups[i]
		}
		g, err := mergeGroups(gx, gy)
		if err != nil {
			return nil, err
		}
		out.Groups[i] = g
	}
	return out, nil
}

func mergeGroups(gx, gy []*Item) ([]*Item, error) {
	switch {
	case len(gx) == 0:
		return gy, nil
	case len(gy) == 0:
		return gx, nil
	}
	xReal, yReal := groupReal(gx), groupReal(gy)
	switch {
	case !xReal && !yReal:
		// Two placeholder spines: both are single-item chains above
		// other NoKs' regions; merge pairwise (they are spines for
		// different descendant slots of the same position).
		if len(gx) == 1 && len(gy) == 1 {
			it, err := mergeItems(gx[0], gy[0])
			if err != nil {
				return nil, err
			}
			return []*Item{it}, nil
		}
		return nil, fmt.Errorf("nestedlist: cannot merge multi-item placeholder groups")
	case xReal && !yReal:
		return attachSpines(gx, gy)
	case !xReal && yReal:
		return attachSpines(gy, gx)
	default:
		return mergeRealGroups(gx, gy)
	}
}

// mergeRealGroups unions two real groups of the same slot in document
// order (the grouping step of the existential join mode, where several
// inner instances are absorbed into one outer). Items matching the same
// node merge recursively.
func mergeRealGroups(gx, gy []*Item) ([]*Item, error) {
	key := func(it *Item) int {
		if n := it.anchor(); n != nil {
			return n.Start
		}
		return int(^uint(0) >> 1) // empty items sort last
	}
	out := make([]*Item, 0, len(gx)+len(gy))
	i, j := 0, 0
	for i < len(gx) && j < len(gy) {
		x, y := gx[i], gy[j]
		switch {
		case x.Node != nil && x.Node == y.Node:
			m, err := mergeItems(x, y)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			i++
			j++
		case key(x) <= key(y):
			out = append(out, x)
			i++
		default:
			out = append(out, y)
			j++
		}
	}
	out = append(out, gx[i:]...)
	out = append(out, gy[j:]...)
	return out, nil
}

// groupReal reports whether the group carries real matched items (as
// opposed to a placeholder spine).
func groupReal(g []*Item) bool {
	for _, it := range g {
		if it.Node != nil {
			return true
		}
	}
	return false
}

// attachSpines grafts each placeholder spine's content under a real item
// that structurally contains it. The items of the real group that
// contain the spine's anchor form a nested chain (they all contain the
// same node); attachment tries them innermost-first and backtracks
// outward, because on recursive documents the innermost container need
// not have the matching child chain below it (e.g. c2/b1/c2 nesting,
// where the anchor's b1 ancestor lies above the innermost c2).
func attachSpines(real, spines []*Item) ([]*Item, error) {
	out := make([]*Item, len(real))
	copy(out, real)
	for _, sp := range spines {
		anchor := sp.anchor()
		if anchor == nil {
			// Completely empty spine: nothing to graft.
			continue
		}
		// Containers of the anchor, innermost (largest Start) first.
		var cands []int
		for i, r := range out {
			if r.Node != nil && (r.Node == anchor || r.Node.IsAncestorOf(anchor)) {
				cands = append(cands, i)
			}
		}
		for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
			cands[i], cands[j] = cands[j], cands[i]
		}
		attached := false
		var lastErr error
		for _, i := range cands {
			merged, err := mergeItems(out[i], sp)
			if err != nil {
				lastErr = err
				continue
			}
			out[i] = merged
			attached = true
			break
		}
		if !attached {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, fmt.Errorf("nestedlist: no containing item for spine anchored at %v", anchor)
		}
	}
	return out, nil
}

// MergeBalanced merges a batch of instances pairwise in a balanced
// tree, so absorbing k same-spine instances costs O(total · log k)
// instead of the O(total · k) of a sequential left fold. Callers must
// ensure attachment is unambiguous (a single containing item at every
// shared spine position), which holds when the instances share one
// placeholder spine — the existential-absorption case of the joins.
func MergeBalanced(ls []*List) (*List, error) {
	if len(ls) == 0 {
		return nil, fmt.Errorf("nestedlist: MergeBalanced of empty batch")
	}
	for len(ls) > 1 {
		next := make([]*List, 0, (len(ls)+1)/2)
		for i := 0; i < len(ls); i += 2 {
			if i+1 == len(ls) {
				next = append(next, ls[i])
				break
			}
			m, err := Merge(ls[i], ls[i+1])
			if err != nil {
				return nil, err
			}
			next = append(next, m)
		}
		ls = next
	}
	return ls[0], nil
}

// Unnest expands the for-bound slot: for an instance whose slot group
// holds k items, it returns k instances each keeping exactly one of
// them (the enumeration step that turns grouped matches into the
// per-iteration instances of for-clause semantics, cf. Example 4 where
// each book match is its own NestedList).
func Unnest(l *List, slot int) []*List {
	path := l.slotPath(slot)
	var out []*List
	var rec func(it *Item, depth int, rebuild func(*Item) *List)
	rec = func(it *Item, depth int, rebuild func(*Item) *List) {
		if depth == len(path) {
			out = append(out, rebuild(it))
			return
		}
		ord := path[depth]
		if ord >= len(it.Groups) {
			return
		}
		for _, c := range it.Groups[ord] {
			rec(c, depth+1, func(repl *Item) *List {
				cp := &Item{Node: it.Node, Groups: make([][]*Item, len(it.Groups))}
				copy(cp.Groups, it.Groups)
				cp.Groups[ord] = []*Item{repl}
				return rebuild(cp)
			})
		}
	}
	rec(l.Root, 0, func(root *Item) *List {
		return &List{Shape: l.Shape, Root: root, filled: l.filled}
	})
	return out
}

// ProjectAll projects a Dewey slot across a sequence of instances,
// concatenating in order (the sequence-level π of §3.3).
func ProjectAll(ls []*List, slot int) []*xmltree.Node {
	var out []*xmltree.Node
	for _, l := range ls {
		out = append(out, l.ProjectSlot(slot)...)
	}
	return out
}
