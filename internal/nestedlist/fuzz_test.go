package nestedlist

import (
	"testing"

	"blossomtree/internal/core"
	"blossomtree/internal/xmltree"
)

// byteCursor consumes fuzz input one byte at a time, yielding zeros
// once exhausted — so every input decodes to some valid build script.
type byteCursor struct {
	data []byte
	pos  int
}

func (c *byteCursor) next() byte {
	if c.pos >= len(c.data) {
		return 0
	}
	b := c.data[c.pos]
	c.pos++
	return b
}

// fuzzShape decodes a returning-tree shape from the cursor: up to six
// returning vertices in a random tree off one document root, all on
// //-edges (which Finalize marks returning, giving every vertex a slot).
func fuzzShape(c *byteCursor) *core.ReturnTree {
	bt := core.NewBlossomTree()
	root := bt.AddRoot("")
	n := 1 + int(c.next())%6
	verts := make([]*core.Vertex, 0, n)
	tags := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < n; i++ {
		v := bt.NewVertex(tags[i])
		parent := root
		if len(verts) > 0 && c.next()%2 == 0 {
			parent = verts[int(c.next())%len(verts)]
		}
		bt.AddChild(parent, v, core.RelDescendant, core.Mandatory)
		verts = append(verts, v)
	}
	return bt.Finalize()
}

// fuzzPool builds a small fixed document whose elements serve as the
// instance's node pool (round-tripping is structural, so any nodes do).
func fuzzPool() []*xmltree.Node {
	b := xmltree.NewBuilder()
	b.Start("r")
	for i := 0; i < 3; i++ {
		b.Start("x")
		b.Start("y")
		b.End()
		b.End()
	}
	b.End()
	doc := b.MustDone()
	var pool []*xmltree.Node
	xmltree.Elements(doc.Root, func(n *xmltree.Node) { pool = append(pool, n) })
	return pool
}

// fuzzInstance decodes a pointer-form instance over the shape: per
// shape node (BFS), each parent item gets a group of 0–2 items, each
// either a real node from the pool or a placeholder (nil node), and
// each slot's filled bit is drawn from the script.
func fuzzInstance(c *byteCursor, rt *core.ReturnTree, pool []*xmltree.Node) *List {
	l := NewInstance(rt)
	parentItems := map[int][]*Item{0: {l.Root}}
	queue := append([]*core.ReturnNode(nil), rt.Root.Children...)
	for len(queue) > 0 {
		sn := queue[0]
		queue = queue[1:]
		queue = append(queue, sn.Children...)
		ord := sn.ChildOrdinal()
		var items []*Item
		parentSlot := 0
		if sn.Parent != nil {
			parentSlot = sn.Parent.Slot
		}
		for _, p := range parentItems[parentSlot] {
			for k := int(c.next()) % 3; k > 0; k-- {
				var node *xmltree.Node
				if c.next()%2 == 0 {
					node = pool[int(c.next())%len(pool)]
				}
				it := NewItem(node, len(sn.Children))
				p.Groups[ord] = append(p.Groups[ord], it)
				items = append(items, it)
			}
		}
		parentItems[sn.Slot] = items
		if c.next()%2 == 0 {
			l.SetFilled(sn.Slot)
		}
	}
	return l
}

// FuzzCompactRoundTrip asserts the Figure-6 compact form is lossless:
// any pointer-form instance survives FromList → ToList with identical
// structure (String), per-slot projections, and filled bitmap, and the
// compact offsets are a consistent CSR partition of each column.
func FuzzCompactRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 1, 0, 1})
	f.Add([]byte{3, 0, 0, 1, 1, 2, 0, 1, 2, 3, 0, 1, 0, 1})
	f.Add([]byte{5, 1, 0, 0, 1, 1, 1, 2, 2, 0, 2, 1, 0, 2, 2, 1, 0, 0, 1, 1, 2, 0})
	f.Add([]byte{6, 0, 5, 0, 4, 0, 3, 0, 2, 0, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2})
	pool := fuzzPool()
	f.Fuzz(func(t *testing.T, data []byte) {
		c := &byteCursor{data: data}
		rt := fuzzShape(c)
		l := fuzzInstance(c, rt, pool)

		cp := FromList(l)
		back := cp.ToList()

		if got, want := back.String(), l.String(); got != want {
			t.Fatalf("round trip changed structure:\n got %s\nwant %s", got, want)
		}
		for slot := range rt.Nodes {
			if cp.IsFilled(slot) != l.IsFilled(slot) || back.IsFilled(slot) != l.IsFilled(slot) {
				t.Fatalf("slot %d: filled bit lost (list=%v compact=%v back=%v)",
					slot, l.IsFilled(slot), cp.IsFilled(slot), back.IsFilled(slot))
			}
			want := l.ProjectSlot(slot)
			for which, got := range [][]*xmltree.Node{cp.ProjectSlot(slot), back.ProjectSlot(slot)} {
				if len(got) != len(want) {
					t.Fatalf("slot %d projection %d: %d nodes, want %d", slot, which, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("slot %d projection %d: node %d differs", slot, which, i)
					}
				}
			}
			// CSR consistency: offsets non-decreasing, spanning the column.
			offs := cp.Offsets[slot]
			if len(offs) == 0 || offs[0] != 0 || int(offs[len(offs)-1]) != len(cp.Nodes[slot]) {
				t.Fatalf("slot %d: offsets %v do not span column of %d", slot, offs, len(cp.Nodes[slot]))
			}
			for i := 1; i < len(offs); i++ {
				if offs[i] < offs[i-1] {
					t.Fatalf("slot %d: offsets %v decrease", slot, offs)
				}
			}
		}
	})
}
