// Package nestedlist implements the NestedList abstract data type of
// §3.2 and its operators (§3.3): projection, selection and the
// merge/fill step of joins, all parameterized by Dewey IDs over the
// query's returning tree.
//
// A NestedList instance (List) is one match of (part of) the returning
// tree: a tree of Items mirroring the returning-tree shape, where each
// item holds a matched XML node and, per returning-tree child, the
// *group* of items matched below it (the "[]" grouping notation of
// Figure 4). Slots an instance carries no matches for — the paper's
// placeholders, produced when a single NoK of a larger BlossomTree is
// matched in isolation (Example 4) — are represented by placeholder
// items (nil Node) and a per-slot Filled bitmap; joins fill them by
// merging instances.
//
// The concrete layout follows Figure 6: per-returning-node match lists
// in document order, connected by child-pointer arrays. Appends preserve
// document order, which is what makes projection order-preserving
// (Theorem 1).
package nestedlist

import (
	"fmt"
	"strings"

	"blossomtree/internal/core"
	"blossomtree/internal/xmltree"
)

// Item is one entry of a match list: a matched XML node plus the groups
// of items matched for each returning-tree child. A nil Node marks a
// placeholder item (an unmatched spine position above another NoK's
// region).
type Item struct {
	Node   *xmltree.Node
	Groups [][]*Item // indexed by the shape node's child ordinal
}

// NewItem allocates an item for a shape node with the given child count.
func NewItem(n *xmltree.Node, numChildren int) *Item {
	if numChildren == 0 {
		return &Item{Node: n}
	}
	return &Item{Node: n, Groups: make([][]*Item, numChildren)}
}

// anchor returns the item's own node, or the first real node in its
// subtree (the node that determines where a placeholder spine attaches
// structurally).
func (it *Item) anchor() *xmltree.Node {
	if it.Node != nil {
		return it.Node
	}
	for _, g := range it.Groups {
		for _, c := range g {
			if n := c.anchor(); n != nil {
				return n
			}
		}
	}
	return nil
}

// filledSet is a small bitset over returning-tree slots. Returning
// trees are tiny (a handful of slots), so a single word with a rare
// overflow slice keeps instances allocation-free on the hot paths.
type filledSet struct {
	bits uint64
	big  []bool // lazily allocated for shapes with > 64 slots
}

func (f *filledSet) set(slot int, size int) {
	if slot < 64 {
		f.bits |= 1 << uint(slot)
		return
	}
	if f.big == nil {
		f.big = make([]bool, size)
	}
	f.big[slot-64] = true
}

func (f *filledSet) get(slot int) bool {
	if slot < 64 {
		return f.bits&(1<<uint(slot)) != 0
	}
	return slot-64 < len(f.big) && f.big[slot-64]
}

func (f filledSet) or(o filledSet, size int) filledSet {
	out := filledSet{bits: f.bits | o.bits}
	if f.big != nil || o.big != nil {
		out.big = make([]bool, size)
		copy(out.big, f.big)
		for i, b := range o.big {
			if b {
				out.big[i] = true
			}
		}
	}
	return out
}

// List is one NestedList instance over a returning-tree shape.
type List struct {
	Shape  *core.ReturnTree
	Root   *Item // item of the artificial super-root (Node == nil)
	filled filledSet
}

// NewInstance returns an all-placeholder instance of the shape.
func NewInstance(shape *core.ReturnTree) *List {
	return &List{
		Shape: shape,
		Root:  NewItem(nil, len(shape.Root.Children)),
	}
}

// SetFilled marks a slot as carried by this instance.
func (l *List) SetFilled(slot int) { l.filled.set(slot, len(l.Shape.Nodes)) }

// IsFilled reports whether the slot is carried by this instance.
func (l *List) IsFilled(slot int) bool { return l.filled.get(slot) }

// slotPath returns the chain of child ordinals from the super-root down
// to the slot's shape node.
func (l *List) slotPath(slot int) []int {
	n := l.Shape.Nodes[slot]
	var rev []int
	for n.Parent != nil {
		rev = append(rev, n.ChildOrdinal())
		n = n.Parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Items returns the items of the given slot across the whole instance,
// in insertion (document) order.
func (l *List) Items(slot int) []*Item {
	frontier := []*Item{l.Root}
	for _, ord := range l.slotPath(slot) {
		var next []*Item
		for _, it := range frontier {
			if ord < len(it.Groups) {
				next = append(next, it.Groups[ord]...)
			}
		}
		frontier = next
	}
	return frontier
}

// Project implements π(ID): unnest along the Dewey ID and return the
// concatenated matched nodes. Placeholder items project to nothing. By
// Theorem 1 the result is in document order when the instance was built
// by NoK pattern matching.
func (l *List) Project(d core.Dewey) ([]*xmltree.Node, error) {
	n, ok := l.Shape.ByDewey(d)
	if !ok {
		return nil, fmt.Errorf("nestedlist: no returning node with Dewey %s", d)
	}
	return l.ProjectSlot(n.Slot), nil
}

// ProjectSlot is Project by slot index.
func (l *List) ProjectSlot(slot int) []*xmltree.Node {
	items := l.Items(slot)
	out := make([]*xmltree.Node, 0, len(items))
	for _, it := range items {
		if it.Node != nil {
			out = append(out, it.Node)
		}
	}
	return out
}

// ProjectVar projects the slot bound to the named variable.
func (l *List) ProjectVar(name string) ([]*xmltree.Node, error) {
	n, ok := l.Shape.ByVar(name)
	if !ok {
		return nil, fmt.Errorf("nestedlist: no returning node for variable $%s", name)
	}
	return l.ProjectSlot(n.Slot), nil
}

// Select implements σ_ϕ(ID): project on the Dewey ID, evaluate the
// predicate on each projected item (pos is the 1-based position within
// its group, the position() of path expressions), remove failing items,
// and check validity — if a mandatory slot loses all its matches under
// some parent, the whole instance is invalid and Select reports false
// (the paper: "return empty sequence").
func (l *List) Select(d core.Dewey, pred func(n *xmltree.Node, pos int) bool) (*List, bool, error) {
	sn, ok := l.Shape.ByDewey(d)
	if !ok {
		return nil, false, fmt.Errorf("nestedlist: no returning node with Dewey %s", d)
	}
	out, valid := l.SelectSlot(sn.Slot, pred)
	return out, valid, nil
}

// SelectSlot is Select addressed by slot index. Removal cascades: an
// item whose mandatory target-side group becomes empty is no longer a
// valid match itself and is removed from its own group, up to the
// instance root (an a in //a/b[c] with every b removed is not a match;
// but a sibling a keeping a b survives). The instance is invalid only
// when the cascade reaches the top.
func (l *List) SelectSlot(slot int, pred func(n *xmltree.Node, pos int) bool) (*List, bool) {
	sn := l.Shape.Nodes[slot]
	path := l.slotPath(sn.Slot)
	if len(path) == 0 {
		// Selecting on the super-root is a no-op.
		return l, true
	}

	// shapeAt[d] is the shape node entered after path[d].
	shapeAt := make([]*core.ReturnNode, len(path))
	cur := l.Shape.Root
	for d, ord := range path {
		cur = cur.Children[ord]
		shapeAt[d] = cur
	}

	// filter returns the filtered copy of it, or nil when the item
	// itself must be removed (its mandatory group emptied).
	var filter func(it *Item, depth int) *Item
	filter = func(it *Item, depth int) *Item {
		cp := &Item{Node: it.Node, Groups: make([][]*Item, len(it.Groups))}
		ord := path[depth]
		for gi, g := range it.Groups {
			if gi != ord {
				cp.Groups[gi] = g
				continue
			}
			kept := make([]*Item, 0, len(g))
			for pos, c := range g {
				if depth == len(path)-1 {
					// Target slot: apply the predicate; placeholder items
					// pass through.
					if c.Node != nil && !pred(c.Node, pos+1) {
						continue
					}
					kept = append(kept, c)
				} else if fc := filter(c, depth+1); fc != nil {
					kept = append(kept, fc)
				}
			}
			cp.Groups[gi] = kept
			if len(kept) == 0 && len(g) > 0 && mandatorySlot(l.Shape, shapeAt[depth]) {
				return nil
			}
		}
		return cp
	}
	root := filter(l.Root, 0)
	if root == nil {
		return nil, false
	}
	out := &List{Shape: l.Shape, Root: root, filled: l.filled}
	return out, true
}

// mandatorySlot reports whether the shape node's vertex hangs on a
// mandatory edge (its loss invalidates the instance).
func mandatorySlot(shape *core.ReturnTree, n *core.ReturnNode) bool {
	if n.Vertex == nil || n.Vertex.Parent == nil {
		return true
	}
	return n.Vertex.ParentMode == core.Mandatory
}

// String renders the instance in the paper's notation, e.g.
// (a,[(b,()),(b,[(d),(d)]),(b,(d))],[(c),(c)]). Placeholder items render
// as (). Node labels are tag names.
func (l *List) String() string {
	var sb strings.Builder
	writeItem(&sb, l.Root)
	return sb.String()
}

func writeItem(sb *strings.Builder, it *Item) {
	if it.Node == nil && len(it.Groups) == 0 {
		sb.WriteString("()")
		return
	}
	sb.WriteByte('(')
	first := true
	if it.Node != nil {
		sb.WriteString(it.Node.Tag)
		first = false
	}
	for _, g := range it.Groups {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		writeGroup(sb, g)
	}
	sb.WriteByte(')')
}

func writeGroup(sb *strings.Builder, g []*Item) {
	switch len(g) {
	case 0:
		sb.WriteString("()")
	case 1:
		writeItem(sb, g[0])
	default:
		sb.WriteByte('[')
		for i, it := range g {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeItem(sb, it)
		}
		sb.WriteByte(']')
	}
}
