package flwor

import (
	"strings"
	"testing"
)

// Order-by direction modifiers (satellite fix): ascending is accepted
// as the explicit default, descending is recorded on the FLWOR, and
// the unsupported empty greatest/least modifiers fail loudly instead
// of parsing as trailing junk.

func TestParseOrderByModifiers(t *testing.T) {
	cases := []struct {
		name string
		q    string
		desc bool
	}{
		{"default", `for $b in doc("d")//book order by $b/title return $b`, false},
		{"ascending", `for $b in doc("d")//book order by $b/title ascending return $b`, false},
		{"descending", `for $b in doc("d")//book order by $b/title descending return $b`, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e, err := Parse(c.q)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			f := e.(*FLWOR)
			if f.OrderBy == nil {
				t.Fatal("no order-by recorded")
			}
			if f.OrderDesc != c.desc {
				t.Errorf("OrderDesc = %v, want %v", f.OrderDesc, c.desc)
			}
			if c.desc && !strings.Contains(f.String(), "order by $b/title descending") {
				t.Errorf("String() lost the descending modifier: %q", f.String())
			}
			// The printed form must re-parse to the same direction.
			e2, err := Parse(f.String())
			if err != nil {
				t.Fatalf("re-parse of %q: %v", f.String(), err)
			}
			if e2.(*FLWOR).OrderDesc != c.desc {
				t.Errorf("round trip changed OrderDesc to %v", e2.(*FLWOR).OrderDesc)
			}
		})
	}
}

func TestParseOrderByEmptyModifierRejected(t *testing.T) {
	for _, q := range []string{
		`for $b in doc("d")//book order by $b/title empty greatest return $b`,
		`for $b in doc("d")//book order by $b/title empty least return $b`,
	} {
		_, err := Parse(q)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", q)
		}
		if !strings.Contains(err.Error(), "empty greatest/least") {
			t.Errorf("Parse(%q) error = %q, want the empty-modifier message", q, err)
		}
	}
}

// TestParseOrderByTextStep: a text() tail on the order-by path parses
// (evaluation strips it for planning and applies it when computing
// keys).
func TestParseOrderByTextStep(t *testing.T) {
	e, err := Parse(`for $b in doc("d")//book order by $b/title/text() descending return $b`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FLWOR)
	if !f.OrderDesc {
		t.Error("descending modifier lost after text() step")
	}
	steps := f.OrderBy.Steps
	if len(steps) == 0 || !steps[len(steps)-1].TextTest {
		t.Errorf("order-by path lost its text() tail: %v", f.OrderBy)
	}
}
