package flwor

import (
	"strings"
	"testing"

	"blossomtree/internal/xpath"
)

// TestParseDepthBounded covers the FLWOR-specific recursion cycles:
// nested element constructors, nested FLWORs in return clauses, and
// parenthesized where-conditions. Each attack input must fail with the
// shared nesting-bound error instead of exhausting the stack.
func TestParseDepthBounded(t *testing.T) {
	n := 4 * xpath.MaxDepth
	cases := []struct {
		name string
		src  string
	}{
		{"nested constructors", strings.Repeat("<a>", n)},
		{"nested flwors", strings.Repeat("for $x in //a return ", n)},
		{"where parens", "for $x in //a where " + strings.Repeat("(", n)},
		{"where not chains", "for $x in //a where " + strings.Repeat("not(", n)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("deeply nested input parsed without error")
			}
			if !strings.Contains(err.Error(), "nesting") {
				t.Fatalf("expected the nesting-bound error, got: %v", err)
			}
		})
	}
}

// TestParseDeepButLegal checks well-formed nesting below the bound.
func TestParseDeepButLegal(t *testing.T) {
	d := xpath.MaxDepth / 4
	src := strings.Repeat("<a>", d) + "{ //b }" + strings.Repeat("</a>", d)
	if _, err := Parse(src); err != nil {
		t.Fatalf("legal constructor nesting at depth %d rejected: %v", d, err)
	}
}
