package flwor

import (
	"strings"
	"testing"

	"blossomtree/internal/xpath"
)

// example1 is the paper's Example 1 query verbatim (modulo whitespace).
const example1 = `<bib>
{
for $book1 in doc("bib.xml")//book,
    $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2
  and not($book1/title = $book2/title)
  and deep-equal($aut1, $aut2)
return
  <book-pair>
    { $book1/title }
    { $book2/title }
  </book-pair>
}
</bib>`

func TestParseExample1(t *testing.T) {
	e, err := Parse(example1)
	if err != nil {
		t.Fatalf("Parse(example1): %v", err)
	}
	bib, ok := e.(*ElemCtor)
	if !ok || bib.Tag != "bib" {
		t.Fatalf("top = %T %v", e, e)
	}
	if len(bib.Content) != 1 {
		t.Fatalf("bib content = %d items", len(bib.Content))
	}
	f, ok := bib.Content[0].(*FLWOR)
	if !ok {
		t.Fatalf("bib content = %T", bib.Content[0])
	}
	if len(f.Clauses) != 4 {
		t.Fatalf("clauses = %d, want 4", len(f.Clauses))
	}
	wantClauses := []struct {
		kind ClauseKind
		v    string
	}{
		{ForClause, "book1"}, {ForClause, "book2"}, {LetClause, "aut1"}, {LetClause, "aut2"},
	}
	for i, w := range wantClauses {
		if f.Clauses[i].Kind != w.kind || f.Clauses[i].Var != w.v {
			t.Errorf("clause %d = %v $%s, want %v $%s", i, f.Clauses[i].Kind, f.Clauses[i].Var, w.kind, w.v)
		}
	}
	if f.Clauses[0].Path.Source.Kind != xpath.SourceDoc || f.Clauses[0].Path.Source.Doc != "bib.xml" {
		t.Errorf("clause 0 source = %+v", f.Clauses[0].Path.Source)
	}
	if f.Clauses[2].Path.Source.Kind != xpath.SourceVar || f.Clauses[2].Path.Source.Var != "book1" {
		t.Errorf("clause 2 source = %+v", f.Clauses[2].Path.Source)
	}

	// where: <<  and  not(=)  and  deep-equal
	and1, ok := f.Where.(CondAnd)
	if !ok {
		t.Fatalf("where = %T", f.Where)
	}
	and0, ok := and1.L.(CondAnd)
	if !ok {
		t.Fatalf("where.L = %T", and1.L)
	}
	if do, ok := and0.L.(CondDocOrder); !ok || !do.Before {
		t.Errorf("first condition = %#v, want <<", and0.L)
	}
	if n, ok := and0.R.(CondNot); !ok {
		t.Errorf("second condition = %#v, want not(...)", and0.R)
	} else if cmp, ok := n.C.(CondCmp); !ok || cmp.Op != xpath.OpEq {
		t.Errorf("not body = %#v", n.C)
	}
	if de, ok := and1.R.(CondDeepEqual); !ok {
		t.Errorf("third condition = %#v, want deep-equal", and1.R)
	} else if de.Left.Source.Var != "aut1" || de.Right.Source.Var != "aut2" {
		t.Errorf("deep-equal operands = %v, %v", de.Left, de.Right)
	}

	ret, ok := f.Return.(*ElemCtor)
	if !ok || ret.Tag != "book-pair" || len(ret.Content) != 2 {
		t.Fatalf("return = %#v", f.Return)
	}
	// Round trip through String.
	s := e.String()
	for _, frag := range []string{"for $book1 in", "let $aut1 :=", "<<", "deep-equal(", "<book-pair>"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q in %q", frag, s)
		}
	}
}

func TestParseBarePathQuery(t *testing.T) {
	e, err := Parse(`doc("f.xml")//a/b`)
	if err != nil {
		t.Fatal(err)
	}
	pe, ok := e.(*PathExpr)
	if !ok || pe.Path.Source.Doc != "f.xml" {
		t.Fatalf("got %#v", e)
	}
}

func TestParseSimpleFLWOR(t *testing.T) {
	e, err := Parse(`for $b in doc("bib.xml")//book where $b/title = "TeX Book" return $b/author`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FLWOR)
	if len(f.Clauses) != 1 || f.Where == nil {
		t.Fatalf("f = %+v", f)
	}
	cmp, ok := f.Where.(CondCmp)
	if !ok || cmp.Op != xpath.OpEq || cmp.Right.Kind != xpath.OperandString {
		t.Fatalf("where = %#v", f.Where)
	}
	if _, ok := f.Return.(*PathExpr); !ok {
		t.Fatalf("return = %T", f.Return)
	}
}

func TestParseOrderBy(t *testing.T) {
	e, err := Parse(`for $b in doc("d")//book order by $b/title return $b`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FLWOR)
	if f.OrderBy == nil || f.OrderBy.Source.Var != "b" {
		t.Fatalf("order by = %v", f.OrderBy)
	}
	if !strings.Contains(f.String(), "order by $b/title") {
		t.Errorf("String = %q", f.String())
	}
}

func TestParseWhereForms(t *testing.T) {
	cases := []struct {
		where string
		check func(Cond) bool
	}{
		{`$a/x = $b/y`, func(c Cond) bool { _, ok := c.(CondCmp); return ok }},
		{`$a/x != "lit"`, func(c Cond) bool { cc, ok := c.(CondCmp); return ok && cc.Op == xpath.OpNeq }},
		{`$a << $b`, func(c Cond) bool { d, ok := c.(CondDocOrder); return ok && d.Before }},
		{`$a >> $b`, func(c Cond) bool { d, ok := c.(CondDocOrder); return ok && !d.Before }},
		{`exists($a/x)`, func(c Cond) bool { _, ok := c.(CondExists); return ok }},
		{`$a/x`, func(c Cond) bool { _, ok := c.(CondExists); return ok }},
		{`deep-equal($a, $b)`, func(c Cond) bool { _, ok := c.(CondDeepEqual); return ok }},
		{`not($a/x)`, func(c Cond) bool { _, ok := c.(CondNot); return ok }},
		{`$a/x = 1 or $a/y = 2`, func(c Cond) bool { _, ok := c.(CondOr); return ok }},
		{`($a/x = 1 or $a/y = 2) and $b/z`, func(c Cond) bool { _, ok := c.(CondAnd); return ok }},
		{`$a/x < 5`, func(c Cond) bool { cc, ok := c.(CondCmp); return ok && cc.Op == xpath.OpLt && cc.Right.Num == 5 }},
		{`$a/x >= 5`, func(c Cond) bool { cc, ok := c.(CondCmp); return ok && cc.Op == xpath.OpGe }},
		{`"x" = $a/y`, func(c Cond) bool { cc, ok := c.(CondCmp); return ok && cc.Left.Kind == xpath.OperandString }},
	}
	for _, c := range cases {
		t.Run(c.where, func(t *testing.T) {
			q := `for $a in doc("d")//a, $b in doc("d")//b where ` + c.where + ` return $a`
			e, err := Parse(q)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			f := e.(*FLWOR)
			if !c.check(f.Where) {
				t.Errorf("where = %#v", f.Where)
			}
			if f.Where.String() == "" {
				t.Error("empty where String")
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`for`,
		`for $x`,
		`for $x in`,
		`for $x in doc("d")//a`,                 // missing return
		`for $x in doc("d")//a return`,          // empty return
		`for $x in doc("d")//a where return $x`, // empty where
		`for $x in doc("d")//a order return $x`, // missing 'by'
		`for $x in doc("d")//a, in doc("d")//b return $x`,         // missing var
		`for $x in doc("d")//a, $x in doc("d")//b return $x`,      // duplicate var
		`for $x in $y//a return $x`,                               // unbound $y
		`let $x doc("d")//a return $x`,                            // missing :=
		`for $x in doc("d")//a where $x << "lit" return $x`,       // << on literal
		`for $x in doc("d")//a where "a" return $x`,               // bare literal condition
		`for $x in doc("d")//a where deep-equal($x) return $x`,    // arity
		`for $x in doc("d")//a return <p>{ $x }</q>`,              // mismatched ctor
		`for $x in doc("d")//a return <p>{ $x }`,                  // unterminated ctor
		`for $x in doc("d")//a return <p>text</p>`,                // literal text
		`<a>{ for $x in doc("d")//a return $x }</a> trailing`,     // trailing input
		`where $x return $x`,                                      // no clauses
		`for $x in doc("d")//a where not $x return $x and`,        // trailing and
		`for $x in doc("d")//a where $x = return $x`,              // missing operand
		`let $x := doc("d")//a, $y := $zzz/b return $x`,           // unbound in let list
		`for $x in doc("d")//a order by return $x`,                // empty order by
		`for $x in doc("d")//a where exists($x/b return $x`,       // unclosed exists
		`for $x in doc("d")//a where deep-equal($x, $x return $x`, // unclosed deep-equal
		`for $x in doc("d")//a where ($x/b and $x/c return $x`,    // unclosed paren
		`for $x in doc("d")//a return <p attr>{ $x }</p>`,         // junk in open tag
		`for $x in doc("d")//a return <>{ $x }</>`,                // missing tag name
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParseSelfClosingCtor(t *testing.T) {
	e, err := Parse(`for $x in doc("d")//a return <empty/>`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FLWOR)
	c, ok := f.Return.(*ElemCtor)
	if !ok || c.Tag != "empty" || len(c.Content) != 0 {
		t.Fatalf("return = %#v", f.Return)
	}
}

func TestParseNestedCtor(t *testing.T) {
	e, err := Parse(`for $x in doc("d")//a return <out><in>{ $x }</in><mid>{ $x/b, $x/c }</mid></out>`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FLWOR)
	out := f.Return.(*ElemCtor)
	if len(out.Content) != 2 {
		t.Fatalf("out content = %d", len(out.Content))
	}
	in := out.Content[0].(*ElemCtor)
	if in.Tag != "in" || len(in.Content) != 1 {
		t.Fatalf("in = %#v", in)
	}
	mid := out.Content[1].(*ElemCtor)
	seq, ok := mid.Content[0].(*Sequence)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("mid content = %#v", mid.Content[0])
	}
	if !strings.Contains(seq.String(), ", ") {
		t.Errorf("Sequence.String = %q", seq.String())
	}
}

func TestCommaSeparatedLets(t *testing.T) {
	e, err := Parse(`let $x := doc("d")//a, $y := $x/b return $y`)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FLWOR)
	if len(f.Clauses) != 2 || f.Clauses[1].Kind != LetClause || f.Clauses[1].Var != "y" {
		t.Fatalf("clauses = %+v", f.Clauses)
	}
}

func TestClauseKindString(t *testing.T) {
	if ForClause.String() != "for" || LetClause.String() != "let" {
		t.Error("ClauseKind.String wrong")
	}
}

func TestTextCtorString(t *testing.T) {
	tc := &TextCtor{Text: "hi"}
	if tc.String() != "hi" {
		t.Error("TextCtor.String wrong")
	}
	ec := &ElemCtor{Tag: "p", Content: []Expr{tc}}
	if got := ec.String(); got != "<p>hi</p>" {
		t.Errorf("ElemCtor.String = %q", got)
	}
}
