// Package flwor implements the FLWOR-expression subset of the paper
// (§3.1):
//
//	FLWOR ::= ( 'for' Var 'in' Path | 'let' Var ':=' Path )+
//	          ('where' Boolean)?
//	          ('order' 'by' Path)?
//	          'return' Expr
//
// plus the direct element constructors the paper's Example 1 wraps
// around FLWOR expressions. The where-clause supports the three kinds of
// correlations BlossomTree captures: value-based comparisons (=, !=, <,
// <=, >, >=), structural comparisons (<<, >>), and the mixed
// structural/value relationship deep-equal(), along with and/or/not and
// exists().
package flwor

import (
	"strings"

	"blossomtree/internal/xpath"
)

// Expr is any expression: a FLWOR, a path, a constructor, or a sequence.
type Expr interface {
	String() string
	isExpr()
}

// PathExpr wraps a path expression.
type PathExpr struct{ Path *xpath.Path }

// Sequence is a comma- or adjacency-separated list of expressions
// (constructor content).
type Sequence struct{ Items []Expr }

// ElemCtor is a direct element constructor <tag>{…}…</tag>. Content
// holds the embedded expressions in order.
type ElemCtor struct {
	Tag     string
	Content []Expr
}

// TextCtor is literal text inside a constructor.
type TextCtor struct{ Text string }

// ClauseKind discriminates for- and let-clauses.
type ClauseKind int

// Clause kinds.
const (
	ForClause ClauseKind = iota
	LetClause
)

// String names the clause kind.
func (k ClauseKind) String() string {
	if k == ForClause {
		return "for"
	}
	return "let"
}

// Clause is a single for- or let-binding. PosVar is the positional
// variable of `for $x at $i in …` (empty when absent; never set on
// let-clauses): it binds the 1-based index of $x within its binding
// sequence.
type Clause struct {
	Kind   ClauseKind
	Var    string
	PosVar string
	Path   *xpath.Path
}

// FLWOR is a parsed FLWOR expression.
type FLWOR struct {
	Clauses []Clause
	Where   Cond // nil when absent
	OrderBy *xpath.Path
	// OrderDesc reverses the order-by direction (the `descending`
	// modifier; ascending is the default and is not recorded).
	OrderDesc bool
	Return    Expr
}

func (*PathExpr) isExpr() {}
func (*Sequence) isExpr() {}
func (*ElemCtor) isExpr() {}
func (*TextCtor) isExpr() {}
func (*FLWOR) isExpr()    {}

// String reprints the path.
func (e *PathExpr) String() string { return e.Path.String() }

// String reprints the sequence.
func (e *Sequence) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}

// String reprints the constructor.
func (e *ElemCtor) String() string {
	var sb strings.Builder
	sb.WriteString("<" + e.Tag + ">")
	for _, c := range e.Content {
		if t, ok := c.(*TextCtor); ok {
			sb.WriteString(t.Text)
			continue
		}
		sb.WriteString("{ " + c.String() + " }")
	}
	sb.WriteString("</" + e.Tag + ">")
	return sb.String()
}

// String reprints the literal text.
func (e *TextCtor) String() string { return e.Text }

// String reprints the FLWOR expression.
func (e *FLWOR) String() string {
	var sb strings.Builder
	for i, c := range e.Clauses {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if c.Kind == ForClause {
			sb.WriteString("for $" + c.Var)
			if c.PosVar != "" {
				sb.WriteString(" at $" + c.PosVar)
			}
			sb.WriteString(" in " + c.Path.String())
		} else {
			sb.WriteString("let $" + c.Var + " := " + c.Path.String())
		}
	}
	if e.Where != nil {
		sb.WriteString(" where " + e.Where.String())
	}
	if e.OrderBy != nil {
		sb.WriteString(" order by " + e.OrderBy.String())
		if e.OrderDesc {
			sb.WriteString(" descending")
		}
	}
	sb.WriteString(" return " + e.Return.String())
	return sb.String()
}

// Cond is a where-clause condition.
type Cond interface {
	String() string
	isCond()
}

// CondAnd is conjunction.
type CondAnd struct{ L, R Cond }

// CondOr is disjunction.
type CondOr struct{ L, R Cond }

// CondNot is negation.
type CondNot struct{ C Cond }

// CondCmp is a general value comparison between two operands (paths over
// variables/documents, or literals).
type CondCmp struct {
	Left  xpath.Operand
	Op    xpath.CmpOp
	Right xpath.Operand
}

// CondDocOrder is the structural node comparison << (Before true) or >>.
type CondDocOrder struct {
	Left, Right *xpath.Path
	Before      bool
}

// CondDeepEqual is deep-equal(a, b): the mixed structural/value
// relationship of the paper.
type CondDeepEqual struct{ Left, Right *xpath.Path }

// CondExists is exists(path).
type CondExists struct{ Path *xpath.Path }

// CondBool is a bare core-function call in boolean position
// (where contains($b/title, "XML")): the call's effective boolean
// value decides the row.
type CondBool struct{ Fn *xpath.FuncCall }

func (CondAnd) isCond()       {}
func (CondOr) isCond()        {}
func (CondNot) isCond()       {}
func (CondCmp) isCond()       {}
func (CondDocOrder) isCond()  {}
func (CondDeepEqual) isCond() {}
func (CondExists) isCond()    {}
func (CondBool) isCond()      {}

// String reprints the condition.
func (c CondAnd) String() string { return c.L.String() + " and " + c.R.String() }

// String reprints the condition.
func (c CondOr) String() string { return c.L.String() + " or " + c.R.String() }

// String reprints the condition.
func (c CondNot) String() string { return "not(" + c.C.String() + ")" }

// String reprints the condition.
func (c CondCmp) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// String reprints the condition.
func (c CondDocOrder) String() string {
	op := " << "
	if !c.Before {
		op = " >> "
	}
	return c.Left.String() + op + c.Right.String()
}

// String reprints the condition.
func (c CondDeepEqual) String() string {
	return "deep-equal(" + c.Left.String() + ", " + c.Right.String() + ")"
}

// String reprints the condition.
func (c CondExists) String() string { return "exists(" + c.Path.String() + ")" }

// String reprints the condition.
func (c CondBool) String() string { return c.Fn.String() }
