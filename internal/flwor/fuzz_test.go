package flwor

import (
	"strings"
	"testing"

	"blossomtree/internal/xpath"
)

// FuzzFLWORParse asserts the parser never panics on arbitrary input and
// that every accepted expression round-trips: parse → String → parse
// yields an expression that prints identically.
func FuzzFLWORParse(f *testing.F) {
	for _, seed := range []string{
		`for $x in doc("d")//a return $x`,
		`for $x in doc("d")//a, $y in doc("d")//b where $x << $y return $y`,
		`for $x in doc("d")//a where exists($x//b) return <r>{ $x }</r>`,
		`for $x in doc("d")//a let $c := $x//b return $x`,
		`for $b in doc("bib.xml")//book where $b/price < 50 order by $b/title return <t>{ $b/title }</t>`,
		`for $x in doc("d")//a where deep-equal($x/b, $x/c) and not($x/d = "z") return $x`,
		`<out>text{ //a }more</out>`,
		`//a[b]//c`,
		`for $x in doc("d")//a return <r>{ $x/b, $x/c }</r>`,
		// Positional variables.
		`for $x at $i in doc("d")//a where $i <= 3 return $x`,
		`for $x at $i in doc("d")//a, $y at $j in doc("d")//b where $i = $j return <r>{ $x }</r>`,
		// Function calls in conditions.
		`for $x in doc("d")//a where contains($x/b, "w") return $x`,
		`for $x in doc("d")//a where count($x/b) > 1 and starts-with($x/@id, "z") return $x`,
		`for $x in doc("d")//a where number($x/@n) >= 10 return $x`,
		`for $x in doc("d")//a where string-join($x/b, ",") != "" return $x`,
		// Attribute value tests and upward axes.
		`for $x in doc("d")//a where $x/@id = $x/b/@id return $x/@id`,
		`for $x in doc("d")//b/parent::a return $x`,
		`for $x in doc("d")//c where exists($x/ancestor::a) return $x`,
		// Let chains over the wider surface.
		`for $x in doc("d")//a let $l := $x//b where exists($l//c) return $l`,
	} {
		f.Add(seed)
	}
	// Depth-bound seeds: nesting past xpath.MaxDepth must be rejected,
	// not overflow the stack (see depth_test.go).
	f.Add(strings.Repeat("<a>", xpath.MaxDepth+8))
	f.Add(strings.Repeat("for $x in //a return ", xpath.MaxDepth+8))
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejected input only needs to not panic
		}
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse:\n  input  %q\n  printed %q\n  error  %v", src, printed, err)
		}
		if again := e2.String(); again != printed {
			t.Fatalf("printer is not a fixpoint:\n  input   %q\n  printed %q\n  reprint %q", src, printed, again)
		}
	})
}
