package flwor

import (
	"fmt"

	"blossomtree/internal/xpath"
)

// Parse parses a query: a FLWOR expression, a direct element constructor
// wrapping one (as in the paper's Example 1), or a bare path expression.
func Parse(src string) (Expr, error) {
	l := xpath.NewLexer(src)
	e := parseExpr(l)
	if l.Err() != nil {
		return nil, fmt.Errorf("flwor: %w", l.Err())
	}
	if l.Tok().Kind != xpath.TokEOF {
		return nil, fmt.Errorf("flwor: trailing input %q at offset %d", l.Tok().Text, l.Tok().Pos)
	}
	return e, nil
}

// MustParse is Parse for known-good queries.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// parseExpr carries a MaxDepth guard: nested FLWORs (a for inside a
// return clause) and braced sequences recurse through here.
func parseExpr(l *xpath.Lexer) Expr {
	if !l.Enter() {
		return &PathExpr{Path: &xpath.Path{}}
	}
	defer l.Leave()
	switch tok := l.Tok(); {
	case tok.Kind == xpath.TokLt:
		return parseCtor(l)
	case tok.Kind == xpath.TokName && (tok.Text == "for" || tok.Text == "let"):
		return parseFLWOR(l)
	default:
		p, err := xpath.ParseFrom(l)
		if err != nil {
			return &PathExpr{Path: &xpath.Path{}}
		}
		return &PathExpr{Path: p}
	}
}

// parseCtor parses <tag> ( <nested/> | { expr, … } )* </tag>. Literal
// text content inside constructors is not part of the fragment (the
// paper's queries only embed evaluated expressions), so anything other
// than a nested constructor or a braced expression is an error.
func parseCtor(l *xpath.Lexer) Expr {
	// Guarded separately from parseExpr: nested element constructors
	// recurse here directly, without passing through parseExpr.
	if !l.Enter() {
		return &ElemCtor{}
	}
	defer l.Leave()
	if !expect(l, xpath.TokLt) {
		return &ElemCtor{}
	}
	if l.Tok().Kind != xpath.TokName {
		l.Errorf("expected element name in constructor, got %s", l.Tok().Kind)
		return &ElemCtor{}
	}
	ctor := &ElemCtor{Tag: l.Tok().Text}
	l.Advance()
	// Self-closing form <tag/>.
	if l.Tok().Kind == xpath.TokSlash {
		l.Advance()
		expect(l, xpath.TokGt)
		return ctor
	}
	if !expect(l, xpath.TokGt) {
		return ctor
	}
	for {
		switch l.Tok().Kind {
		case xpath.TokLt:
			open := l.Tok()
			l.Advance()
			if l.Tok().Kind == xpath.TokSlash {
				// Closing tag.
				l.Advance()
				if l.Tok().Kind != xpath.TokName || l.Tok().Text != ctor.Tag {
					l.Errorf("mismatched closing tag </%s> for <%s>", l.Tok().Text, ctor.Tag)
					return ctor
				}
				l.Advance()
				expect(l, xpath.TokGt)
				return ctor
			}
			l.Push(open)
			ctor.Content = append(ctor.Content, parseCtor(l))
		case xpath.TokLBrace:
			l.Advance()
			ctor.Content = append(ctor.Content, parseSeq(l))
			if !expect(l, xpath.TokRBrace) {
				return ctor
			}
		case xpath.TokEOF:
			l.Errorf("unterminated constructor <%s>", ctor.Tag)
			return ctor
		default:
			l.Errorf("unexpected %s in constructor <%s> (literal text is outside the fragment)", l.Tok().Kind, ctor.Tag)
			return ctor
		}
	}
}

// parseSeq parses a comma-separated expression sequence.
func parseSeq(l *xpath.Lexer) Expr {
	first := parseExpr(l)
	if l.Tok().Kind != xpath.TokComma {
		return first
	}
	seq := &Sequence{Items: []Expr{first}}
	for l.Tok().Kind == xpath.TokComma {
		l.Advance()
		seq.Items = append(seq.Items, parseExpr(l))
	}
	return seq
}

func parseFLWOR(l *xpath.Lexer) Expr {
	f := &FLWOR{}
	seen := map[string]bool{}
	for {
		tok := l.Tok()
		if tok.Kind != xpath.TokName || (tok.Text != "for" && tok.Text != "let") {
			break
		}
		kind := ForClause
		if tok.Text == "let" {
			kind = LetClause
		}
		l.Advance()
		for {
			if l.Tok().Kind != xpath.TokVar {
				l.Errorf("expected $variable after %s", kind)
				return f
			}
			v := l.Tok().Text
			if seen[v] {
				l.Errorf("variable $%s bound twice", v)
				return f
			}
			seen[v] = true
			l.Advance()
			posVar := ""
			if kind == ForClause {
				if kw(l, "at") {
					if l.Tok().Kind != xpath.TokVar {
						l.Errorf("expected positional $variable after 'at'")
						return f
					}
					posVar = l.Tok().Text
					if seen[posVar] {
						l.Errorf("variable $%s bound twice", posVar)
						return f
					}
					seen[posVar] = true
					l.Advance()
				}
				if l.Tok().Kind != xpath.TokName || l.Tok().Text != "in" {
					l.Errorf("expected 'in' in for-clause")
					return f
				}
				l.Advance()
			} else if !expect(l, xpath.TokAssign) {
				return f
			}
			p, err := xpath.ParseFrom(l)
			if err != nil {
				return f
			}
			if err := checkClausePath(p, seen); err != nil {
				l.Errorf("%s", err)
				return f
			}
			f.Clauses = append(f.Clauses, Clause{Kind: kind, Var: v, PosVar: posVar, Path: p})
			if l.Tok().Kind != xpath.TokComma {
				break
			}
			l.Advance()
		}
	}
	if len(f.Clauses) == 0 {
		l.Errorf("FLWOR expression needs at least one for- or let-clause")
		return f
	}
	if kw(l, "where") {
		f.Where = parseCondOr(l)
	}
	if kw(l, "order") {
		if !kw(l, "by") {
			l.Errorf("expected 'by' after 'order'")
			return f
		}
		p, err := xpath.ParseFrom(l)
		if err != nil {
			return f
		}
		f.OrderBy = p
		switch {
		case kw(l, "ascending"):
			// The default direction; nothing to record.
		case kw(l, "descending"):
			f.OrderDesc = true
		case l.Tok().Kind == xpath.TokName && l.Tok().Text == "empty":
			l.Errorf("'empty greatest/least' order modifiers are not supported")
			return f
		}
	}
	if !kw(l, "return") {
		l.Errorf("expected 'return' clause, got %q", l.Tok().Text)
		return f
	}
	f.Return = parseExpr(l)
	return f
}

// checkClausePath validates that a clause path's source is available:
// doc(), an already-bound variable, or absolute.
func checkClausePath(p *xpath.Path, bound map[string]bool) error {
	if p.Source.Kind == xpath.SourceVar && !bound[p.Source.Var] {
		return fmt.Errorf("unbound variable $%s", p.Source.Var)
	}
	return nil
}

// parseCondOr heads the where-condition recursion cycle (parentheses
// and not(…) recurse through parseCondUnary), so it carries the
// MaxDepth guard for conditions.
func parseCondOr(l *xpath.Lexer) Cond {
	if !l.Enter() {
		return CondExists{}
	}
	defer l.Leave()
	c := parseCondAnd(l)
	for l.Tok().Kind == xpath.TokName && l.Tok().Text == "or" {
		l.Advance()
		c = CondOr{L: c, R: parseCondAnd(l)}
	}
	return c
}

func parseCondAnd(l *xpath.Lexer) Cond {
	c := parseCondUnary(l)
	for l.Tok().Kind == xpath.TokName && l.Tok().Text == "and" {
		l.Advance()
		c = CondAnd{L: c, R: parseCondUnary(l)}
	}
	return c
}

func parseCondUnary(l *xpath.Lexer) Cond {
	if tok := l.Tok(); tok.Kind == xpath.TokName {
		switch tok.Text {
		case "not":
			save := tok
			l.Advance()
			if l.Tok().Kind == xpath.TokLParen {
				l.Advance()
				inner := parseCondOr(l)
				expect(l, xpath.TokRParen)
				return CondNot{C: inner}
			}
			l.Push(save)
		case "deep-equal":
			save := tok
			l.Advance()
			if l.Tok().Kind == xpath.TokLParen {
				l.Advance()
				a, err := xpath.ParseFrom(l)
				if err != nil {
					return CondDeepEqual{}
				}
				if !expect(l, xpath.TokComma) {
					return CondDeepEqual{}
				}
				b, err := xpath.ParseFrom(l)
				if err != nil {
					return CondDeepEqual{}
				}
				expect(l, xpath.TokRParen)
				return CondDeepEqual{Left: a, Right: b}
			}
			l.Push(save)
		case "exists":
			save := tok
			l.Advance()
			if l.Tok().Kind == xpath.TokLParen {
				l.Advance()
				p, err := xpath.ParseFrom(l)
				if err != nil {
					return CondExists{}
				}
				expect(l, xpath.TokRParen)
				return CondExists{Path: p}
			}
			l.Push(save)
		}
	}
	if l.Tok().Kind == xpath.TokLParen {
		l.Advance()
		inner := parseCondOr(l)
		expect(l, xpath.TokRParen)
		return inner
	}
	return parseCondCmp(l)
}

func parseCondCmp(l *xpath.Lexer) Cond {
	left := parseCondOperand(l)
	switch l.Tok().Kind {
	case xpath.TokBefore, xpath.TokAfter:
		before := l.Tok().Kind == xpath.TokBefore
		l.Advance()
		right := parseCondOperand(l)
		if left.Kind != xpath.OperandPath || right.Kind != xpath.OperandPath {
			l.Errorf("operands of %s must be node paths", map[bool]string{true: "<<", false: ">>"}[before])
			return CondDocOrder{Before: before}
		}
		return CondDocOrder{Left: left.Path, Right: right.Path, Before: before}
	case xpath.TokEq, xpath.TokNeq, xpath.TokLt, xpath.TokLe, xpath.TokGt, xpath.TokGe:
		op := tokToCmp(l.Tok().Kind)
		l.Advance()
		right := parseCondOperand(l)
		return CondCmp{Left: left, Op: op, Right: right}
	default:
		if left.Kind == xpath.OperandFunc {
			// Bare function call: its effective boolean value decides.
			return CondBool{Fn: left.Fn}
		}
		if left.Kind == xpath.OperandPath {
			// Bare path: effective boolean value, i.e. existence.
			return CondExists{Path: left.Path}
		}
		l.Errorf("literal condition must be part of a comparison")
		return CondExists{}
	}
}

func parseCondOperand(l *xpath.Lexer) xpath.Operand {
	switch tok := l.Tok(); tok.Kind {
	case xpath.TokString:
		l.Advance()
		return xpath.Operand{Kind: xpath.OperandString, Str: tok.Text}
	case xpath.TokNumber:
		var num float64
		if _, err := fmt.Sscanf(tok.Text, "%g", &num); err != nil {
			l.Errorf("bad number %q", tok.Text)
		}
		l.Advance()
		return xpath.Operand{Kind: xpath.OperandNumber, Num: num}
	default:
		if fn := xpath.TryParseFuncCall(l); fn != nil {
			return xpath.Operand{Kind: xpath.OperandFunc, Fn: fn}
		}
		p, err := xpath.ParseFrom(l)
		if err != nil {
			return xpath.Operand{Kind: xpath.OperandPath, Path: &xpath.Path{}}
		}
		return xpath.Operand{Kind: xpath.OperandPath, Path: p}
	}
}

func tokToCmp(k xpath.TokKind) xpath.CmpOp {
	switch k {
	case xpath.TokEq:
		return xpath.OpEq
	case xpath.TokNeq:
		return xpath.OpNeq
	case xpath.TokLt:
		return xpath.OpLt
	case xpath.TokLe:
		return xpath.OpLe
	case xpath.TokGt:
		return xpath.OpGt
	default:
		return xpath.OpGe
	}
}

// kw consumes the given keyword if present.
func kw(l *xpath.Lexer, word string) bool {
	if l.Tok().Kind == xpath.TokName && l.Tok().Text == word {
		l.Advance()
		return true
	}
	return false
}

func expect(l *xpath.Lexer, k xpath.TokKind) bool {
	if l.Tok().Kind != k {
		l.Errorf("expected %s, got %s", k, l.Tok().Kind)
		return false
	}
	l.Advance()
	return true
}
