package naveval

import (
	"testing"

	"blossomtree/internal/flwor"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

const bib = `<bib>
  <book year="1994"><title>Maximum Security</title><price>39</price></book>
  <book year="1997"><title>The Art of Computer Programming</title>
    <author><last>Knuth</last><first>Donald</first></author><price>120</price></book>
  <book year="2003"><title>Terrorist Hunter</title><price>25</price></book>
  <book year="1984"><title>TeX Book</title>
    <author><last>Knuth</last><first>Donald</first></author><price>30</price></book>
</bib>`

func parse(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func evalP(t *testing.T, doc *xmltree.Document, q string) []*xmltree.Node {
	t.Helper()
	res, err := EvalPath(doc, xpath.MustParse(q))
	if err != nil {
		t.Fatalf("EvalPath(%s): %v", q, err)
	}
	return res
}

func titles(ns []*xmltree.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = xmltree.StringValue(n)
	}
	return out
}

func TestEvalPathBasics(t *testing.T) {
	doc := parse(t, bib)
	cases := []struct {
		q    string
		want int
	}{
		{`doc("bib.xml")//book`, 4},
		{`doc("bib.xml")/bib/book`, 4},
		{`/bib/book/title`, 4},
		{`//book[author]`, 2},
		{`//book[author/last="Knuth"]`, 2},
		{`//book[author][price<35]`, 1},
		{`//book[2]`, 1},
		{`//book[position()=2]`, 1},
		{`//book[@year="1997"]`, 1},
		{`//book[@year]`, 4},
		{`//book[@missing]`, 0},
		{`//book/@year`, 4}, // trailing attribute step: elements having it
		{`//book/..`, 1},
		{`//last/ancestor::book`, 2},
		{`//last/parent::author`, 2},
		{`//book[count(author) = 1]`, 2},
		{`//book[contains(title, "Book")]`, 1},
		{`//book[starts-with(@year, "19")]`, 3},
		{`//book[number(price) < 30]`, 1},
		{`//author//last`, 2},
		{`//bib`, 1},
		{`//*`, 19},
		{`/bib/*`, 4},
		{`//book[not(author)]`, 2},
		{`//book[author or price="25"]`, 3},
		{`//book[price>30 and price<130]`, 2},
		{`//book/following-sibling::book`, 3},
		{`//last[.="Knuth"]`, 2},
		{`//book[title="TeX Book"]`, 1},
		{`//zzz`, 0},
		{`//book[price=39]`, 1},
	}
	for _, c := range cases {
		t.Run(c.q, func(t *testing.T) {
			got := evalP(t, doc, c.q)
			if len(got) != c.want {
				t.Errorf("got %d results, want %d", len(got), c.want)
			}
			for i := 1; i < len(got); i++ {
				if !got[i-1].Before(got[i]) {
					t.Error("results not in document order")
				}
			}
		})
	}
}

func TestEvalPathDocOrderDedup(t *testing.T) {
	doc := parse(t, `<a><b><c/><c/></b><b><c/></b></a>`)
	// //b//c via nested descendant contexts must not duplicate.
	got := evalP(t, doc, `//a//c`)
	if len(got) != 3 {
		t.Errorf("//a//c = %d, want 3", len(got))
	}
	got = evalP(t, doc, `//*//c`)
	if len(got) != 3 {
		t.Errorf("//*//c = %d, want 3 (dedup)", len(got))
	}
}

func TestEvalPathErrors(t *testing.T) {
	doc := parse(t, bib)
	bad := []string{
		`//book/@year/text()`, // attribute step mid-path
		`$x/title`,            // unbound variable
	}
	for _, q := range bad {
		if _, err := EvalPath(doc, xpath.MustParse(q)); err == nil {
			t.Errorf("EvalPath(%s) succeeded, want error", q)
		}
	}
}

func TestEvalPathEnvVars(t *testing.T) {
	doc := parse(t, bib)
	books := evalP(t, doc, `//book`)
	env := Env{"b": books[1:2]}
	res, err := EvalPathEnv(SingleDoc(doc), env, xpath.MustParse(`$b/author/last`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || xmltree.StringValue(res[0]) != "Knuth" {
		t.Errorf("res = %v", titles(res))
	}
}

func TestEvalFLWORSimple(t *testing.T) {
	doc := parse(t, bib)
	f := flwor.MustParse(`for $b in doc("bib.xml")//book where $b/price < 35 return $b/title`).(*flwor.FLWOR)
	envs, err := EvalFLWOR(SingleDoc(doc), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("envs = %d, want 2 (prices 25 and 30)", len(envs))
	}
	for _, env := range envs {
		if len(env["b"]) != 1 {
			t.Error("for-var not singleton")
		}
	}
}

func TestEvalFLWORLet(t *testing.T) {
	doc := parse(t, bib)
	f := flwor.MustParse(`for $b in doc("d")//book let $a := $b/author where exists($a) return $a`).(*flwor.FLWOR)
	envs, err := EvalFLWOR(SingleDoc(doc), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("envs = %d, want 2", len(envs))
	}
}

func TestEvalFLWOROrderBy(t *testing.T) {
	doc := parse(t, bib)
	f := flwor.MustParse(`for $b in doc("d")//book order by $b/title return $b`).(*flwor.FLWOR)
	envs, err := EvalFLWOR(SingleDoc(doc), f)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, env := range envs {
		ts, _ := EvalPathEnv(SingleDoc(doc), env, xpath.MustParse(`$b/title`))
		got = append(got, xmltree.StringValue(ts[0]))
	}
	want := []string{"Maximum Security", "TeX Book", "Terrorist Hunter", "The Art of Computer Programming"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestEvalFLWORExample1 runs the paper's Example 1 on the Example 2
// document and checks for the two expected book-pairs.
func TestEvalFLWORExample1(t *testing.T) {
	doc := parse(t, `<bib>
<book><title> Maximum Security </title></book>
<book><title> The Art of Computer Programming </title>
 <author><last> Knuth </last><first> Donald </first></author></book>
<book><title> Terrorist Hunter </title></book>
<book><title> TeX Book </title>
 <author><last> Knuth </last><first> Donald </first></author></book>
</bib>`)
	q := flwor.MustParse(`<bib>{
for $book1 in doc("bib.xml")//book, $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2
  and not($book1/title = $book2/title)
  and deep-equal($aut1, $aut2)
return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
}</bib>`)
	f := q.(*flwor.ElemCtor).Content[0].(*flwor.FLWOR)
	envs, err := EvalFLWOR(SingleDoc(doc), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("got %d book-pairs, want 2", len(envs))
	}
	pair := func(env Env) (string, string) {
		t1, _ := EvalPathEnv(SingleDoc(doc), env, xpath.MustParse(`$book1/title`))
		t2, _ := EvalPathEnv(SingleDoc(doc), env, xpath.MustParse(`$book2/title`))
		return xmltree.StringValue(t1[0]), xmltree.StringValue(t2[0])
	}
	a1, b1 := pair(envs[0])
	a2, b2 := pair(envs[1])
	if a1 != "Maximum Security" || b1 != "Terrorist Hunter" {
		t.Errorf("pair 1 = %q, %q", a1, b1)
	}
	if a2 != "The Art of Computer Programming" || b2 != "TeX Book" {
		t.Errorf("pair 2 = %q, %q", a2, b2)
	}
}

func TestEvalCondForms(t *testing.T) {
	doc := parse(t, bib)
	books := evalP(t, doc, `//book`)
	env := Env{"a": books[1:2], "b": books[3:4]}
	resolve := SingleDoc(doc)
	cases := []struct {
		cond string
		want bool
	}{
		{`$a << $b`, true},
		{`$b << $a`, false},
		{`$a >> $b`, false},
		{`$b >> $a`, true},
		{`deep-equal($a/author, $b/author)`, true},
		{`deep-equal($a/title, $b/title)`, false},
		{`$a/title = $b/title`, false},
		{`not($a/title = $b/title)`, true},
		{`$a/price > $b/price`, true},
		{`$a/price = 120`, true},
		{`exists($a/author)`, true},
		{`exists($a/zzz)`, false},
		{`$a/author`, true},
		{`$a/price = 120 and $b/price = 30`, true},
		{`$a/price = 1 or $b/price = 30`, true},
		{`$a/price = 1 or $b/price = 1`, false},
		{`"x" = "x"`, true},
	}
	for _, c := range cases {
		t.Run(c.cond, func(t *testing.T) {
			q := `for $a in doc("d")//book, $b in doc("d")//book where ` + c.cond + ` return $a`
			f := flwor.MustParse(q).(*flwor.FLWOR)
			got, err := EvalCond(resolve, env, f.Where)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("EvalCond(%s) = %v, want %v", c.cond, got, c.want)
			}
		})
	}
}

func TestEvalPredAttrOperand(t *testing.T) {
	doc := parse(t, `<r><a year="5"><b year="5"/></a></r>`)
	got := evalP(t, doc, `//a[@year=b/@year]`)
	if len(got) != 1 {
		t.Errorf("attr-to-attr comparison = %d results", len(got))
	}
	got = evalP(t, doc, `//a[.=""]`)
	if len(got) != 1 {
		t.Errorf("empty string-value compare = %d", len(got))
	}
}

func TestResolverErrors(t *testing.T) {
	failing := func(string) (*xmltree.Document, error) {
		return nil, errTest
	}
	if _, err := EvalPathEnv(failing, nil, xpath.MustParse(`doc("x")//a`)); err == nil {
		t.Error("resolver error not propagated")
	}
	f := flwor.MustParse(`for $a in doc("x")//a return $a`).(*flwor.FLWOR)
	if _, err := EvalFLWOR(failing, f); err == nil {
		t.Error("resolver error not propagated through FLWOR")
	}
}

type testErr string

func (e testErr) Error() string { return string(e) }

var errTest = testErr("boom")
