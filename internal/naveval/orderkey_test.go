package naveval

import "testing"

// TestOrderKeyLess pins the order-by comparator's edge behaviour:
// numeric comparison whenever both keys parse as floats (so "9" sorts
// before "10" and leading zeros or an explicit sign don't change the
// value), lexicographic comparison as soon as either side is
// non-numeric (including the empty key an absent order-by path yields).
func TestOrderKeyLess(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		ab   bool // OrderKeyLess(a, b)
		ba   bool // OrderKeyLess(b, a)
	}{
		{"numeric not lexicographic", "9", "10", true, false},
		{"decimal", "2.5", "2.50", false, false},
		{"leading zeros equal", "007", "7", false, false},
		{"leading zeros ordered", "008", "07", false, true},
		{"plus sign equals bare", "+1", "1", false, false},
		{"negative before positive", "-2", "1", true, false},
		{"negatives reverse magnitude", "-10", "-2", true, false},
		{"empty key before zero", "", "0", true, false},
		{"empty key before space", "", " ", true, false},
		{"empty keys equal", "", "", false, false},
		{"number vs string is lexicographic", "10", "abc", true, false},
		{"string vs number digit-first", "abc", "5", false, true},
		{"strings lexicographic", "apple", "banana", true, false},
		{"identical strings", "x", "x", false, false},
		{"whitespace not numeric", " 1", "2", true, false},
		{"sign only is a string", "-", "+", false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := OrderKeyLess(tc.a, tc.b); got != tc.ab {
				t.Errorf("OrderKeyLess(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.ab)
			}
			if got := OrderKeyLess(tc.b, tc.a); got != tc.ba {
				t.Errorf("OrderKeyLess(%q, %q) = %v, want %v", tc.b, tc.a, got, tc.ba)
			}
			if tc.ab && tc.ba {
				t.Errorf("comparator not asymmetric on (%q, %q)", tc.a, tc.b)
			}
		})
	}
}
