// Package naveval is a straightforward navigational evaluator for the
// query fragment: path expressions are evaluated by recursive tree
// traversal with no decomposition, no labeling shortcuts and no tag
// indexes, and FLWOR expressions follow their iteration semantics
// literally, re-evaluating every correlated path expression inside the
// for-loops — exactly the "straightforward approach" the paper's
// introduction warns is inefficient.
//
// It plays two roles in this repository:
//
//   - the stand-in for the proprietary X-Hive/DB system ("XH") in the
//     Table 3 experiments — an industry-style navigational engine the
//     algebraic operators are compared against; and
//   - the correctness oracle: property tests check the NoK matcher, the
//     structural joins and the executor against its results.
//
// Evaluation is governed like the algebraic operators: the *Gov entry
// points thread a gov.Governor through every step evaluation, charging
// axis candidates against the query's node budget and polling
// cancellation, so a runaway navigational query aborts with the same
// typed errors the planned executor returns.
package naveval

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"blossomtree/internal/fault"
	"blossomtree/internal/flwor"
	"blossomtree/internal/gov"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

// OrderKeyLess compares order-by keys numerically when both parse as
// numbers ("9" before "10") and lexicographically otherwise, matching
// XQuery's type-aware ordering for the untyped-atomic values this
// fragment produces. Both the navigational evaluator and the planned
// executor order by it, so the two paths agree on result order.
func OrderKeyLess(a, b string) bool {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		return fa < fb
	}
	return a < b
}

// OrderLess returns the order-by key comparator for the requested
// direction: OrderKeyLess for ascending, its mirror for descending.
// Both evaluators sort stably with it, so equal keys keep iteration
// order in either direction.
func OrderLess(desc bool) func(a, b string) bool {
	if desc {
		return func(a, b string) bool { return OrderKeyLess(b, a) }
	}
	return OrderKeyLess
}

// Resolver maps document URIs to documents. The empty URI resolves
// absolute paths ("/a/b") when a query mixes both forms.
type Resolver func(uri string) (*xmltree.Document, error)

// SingleDoc returns a resolver that serves the same document for every
// URI, the common case of single-document queries.
func SingleDoc(doc *xmltree.Document) Resolver {
	return func(string) (*xmltree.Document, error) { return doc, nil }
}

// Env is one row of variable bindings: each variable holds the node
// sequence it is bound to (singletons for for-variables, full sequences
// for let-variables).
type Env map[string][]*xmltree.Node

// clone copies the environment.
func (e Env) clone() Env {
	out := make(Env, len(e)+1)
	for k, v := range e {
		out[k] = v
	}
	return out
}

// evaluator carries the evaluation context every recursive helper
// needs: the document resolver and the query's governor (nil when
// ungoverned — every governor method is nil-safe).
type evaluator struct {
	resolve Resolver
	gov     *gov.Governor
}

// EvalPath evaluates a path expression with no variable bindings.
func EvalPath(doc *xmltree.Document, p *xpath.Path) ([]*xmltree.Node, error) {
	return EvalPathEnv(SingleDoc(doc), nil, p)
}

// EvalPathEnv evaluates a path expression under variable bindings.
// Results are distinct nodes in document order.
func EvalPathEnv(resolve Resolver, env Env, p *xpath.Path) ([]*xmltree.Node, error) {
	return EvalPathGov(resolve, env, p, nil)
}

// EvalPathGov is EvalPathEnv under a governor: step evaluation charges
// the node budget and polls cancellation.
func EvalPathGov(resolve Resolver, env Env, p *xpath.Path, g *gov.Governor) ([]*xmltree.Node, error) {
	return (&evaluator{resolve: resolve, gov: g}).path(env, p)
}

func (ev *evaluator) path(env Env, p *xpath.Path) ([]*xmltree.Node, error) {
	var ctx []*xmltree.Node
	switch p.Source.Kind {
	case xpath.SourceDoc:
		doc, err := ev.resolve(p.Source.Doc)
		if err != nil {
			return nil, err
		}
		ctx = []*xmltree.Node{doc.Root}
	case xpath.SourceRoot:
		doc, err := ev.resolve("")
		if err != nil {
			return nil, err
		}
		ctx = []*xmltree.Node{doc.Root}
	case xpath.SourceVar:
		nodes, ok := env[p.Source.Var]
		if !ok {
			return nil, fmt.Errorf("naveval: unbound variable $%s", p.Source.Var)
		}
		ctx = nodes
	default:
		return nil, fmt.Errorf("naveval: relative path %s has no context", p)
	}
	// A trailing attribute step selects the elements *having* the
	// attribute: attributes are not nodes in this data model, so @attr in
	// node position is an existence test — the same convention the
	// planner's CAttrExists endpoint constraint implements.
	steps, attr := peelAttr(p.Steps)
	res, err := ev.steps(env, ctx, steps)
	if err != nil || attr == "" {
		return res, err
	}
	var out []*xmltree.Node
	for _, m := range res {
		if _, ok := m.Attr(attr); ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// peelAttr splits a trailing attribute step off a step list, returning
// the remaining steps and the attribute name ("" when the path does not
// end in an attribute step). Every place a path can yield values or an
// existence test shares it, so attribute semantics cannot diverge
// between predicates, operands and top-level paths.
// peelAttr splits a predicate-free trailing attribute step off; an
// attribute step carrying predicates stays in place so step() rejects
// it, matching the planner, which also errors on that shape.
func peelAttr(steps []xpath.Step) ([]xpath.Step, string) {
	if k := len(steps); k > 0 && steps[k-1].Axis == xpath.Attribute && len(steps[k-1].Preds) == 0 {
		return steps[:k-1], steps[k-1].Test
	}
	return steps, ""
}

func (ev *evaluator) steps(env Env, ctx []*xmltree.Node, steps []xpath.Step) ([]*xmltree.Node, error) {
	cur := ctx
	for _, st := range steps {
		var next []*xmltree.Node
		seen := make(map[*xmltree.Node]bool)
		for _, c := range cur {
			sel, err := ev.step(env, c, st)
			if err != nil {
				return nil, err
			}
			for _, n := range sel {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].Start < next[j].Start })
		cur = next
	}
	return cur, nil
}

// step selects the step's axis candidates from one context node and
// filters them through the predicates with correct position() semantics
// (1-based within this context node's candidate list).
func (ev *evaluator) step(env Env, ctx *xmltree.Node, st xpath.Step) ([]*xmltree.Node, error) {
	var cands []*xmltree.Node
	switch st.Axis {
	case xpath.Child:
		if st.TextTest {
			cands = xmltree.TextChildren(ctx)
			break
		}
		for c := ctx.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind == xmltree.ElementNode && st.Matches(c.Tag) {
				cands = append(cands, c)
			}
		}
	case xpath.Descendant:
		if st.TextTest {
			cands = xmltree.TextDescendants(ctx)
			break
		}
		cands = xmltree.Descendants(ctx, "")
		if st.Test != "*" {
			k := cands[:0]
			for _, n := range cands {
				if n.Tag == st.Test {
					k = append(k, n)
				}
			}
			cands = k
		}
	case xpath.Self:
		if ctx.Kind == xmltree.ElementNode || ctx.Kind == xmltree.DocumentNode {
			cands = []*xmltree.Node{ctx}
		}
	case xpath.FollowingSibling:
		for s := ctx.NextSibling; s != nil; s = s.NextSibling {
			if s.Kind == xmltree.ElementNode && st.Matches(s.Tag) {
				cands = append(cands, s)
			}
		}
	case xpath.Parent:
		if p := ctx.Parent; p != nil && p.Kind == xmltree.ElementNode && st.Matches(p.Tag) {
			cands = []*xmltree.Node{p}
		}
	case xpath.Ancestor:
		for _, a := range xmltree.Ancestors(ctx) {
			if st.Matches(a.Tag) {
				cands = append(cands, a)
			}
		}
	case xpath.Attribute:
		return nil, fmt.Errorf("naveval: attribute nodes cannot be returned (step @%s)", st.Test)
	default:
		return nil, fmt.Errorf("naveval: unsupported axis %s (supported axes: %s)", st.Axis.Name(), xpath.SupportedAxes())
	}
	// Each per-context-node step is one governance point: the axis
	// candidates charge the node budget, and the hit doubles as the
	// navigational fault site.
	if err := ev.gov.Scanned(fault.SiteNavStep, int64(len(cands))); err != nil {
		return nil, err
	}
	for _, pred := range st.Preds {
		var kept []*xmltree.Node
		for i, n := range cands {
			ok, err := ev.pred(env, n, i+1, pred)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, n)
			}
		}
		cands = kept
	}
	return cands, nil
}

func (ev *evaluator) pred(env Env, n *xmltree.Node, pos int, e xpath.Expr) (bool, error) {
	switch t := e.(type) {
	case xpath.Exists:
		res, err := ev.relative(env, n, t.Path)
		if err != nil {
			return false, err
		}
		return len(res) > 0, nil
	case xpath.Position:
		return pos == t.N, nil
	case xpath.And:
		l, err := ev.pred(env, n, pos, t.L)
		if err != nil || !l {
			return false, err
		}
		return ev.pred(env, n, pos, t.R)
	case xpath.Or:
		l, err := ev.pred(env, n, pos, t.L)
		if err != nil || l {
			return l, err
		}
		return ev.pred(env, n, pos, t.R)
	case xpath.Not:
		v, err := ev.pred(env, n, pos, t.E)
		return !v, err
	case *xpath.FuncCall:
		return ev.funcBool(env, n, t)
	case xpath.Compare:
		lv, err := ev.operandValues(env, n, t.Left)
		if err != nil {
			return false, err
		}
		rv, err := ev.operandValues(env, n, t.Right)
		if err != nil {
			return false, err
		}
		for _, l := range lv {
			for _, r := range rv {
				if t.Op.Eval(l, r) {
					return true, nil
				}
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("naveval: unsupported predicate %T", e)
	}
}

// relative evaluates a relative path from a context node, handling
// trailing attribute steps as attribute existence.
func (ev *evaluator) relative(env Env, n *xmltree.Node, p *xpath.Path) ([]*xmltree.Node, error) {
	steps, attr := peelAttr(p.Steps)
	res, err := ev.steps(env, []*xmltree.Node{n}, steps)
	if err != nil {
		return nil, err
	}
	if attr == "" {
		return res, nil
	}
	var out []*xmltree.Node
	for _, m := range res {
		if _, ok := m.Attr(attr); ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// operandValues produces the comparison value list of an operand:
// literals are singletons; paths yield the string-values of their result
// nodes (attribute steps yield attribute values).
func (ev *evaluator) operandValues(env Env, n *xmltree.Node, o xpath.Operand) ([]string, error) {
	switch o.Kind {
	case xpath.OperandString:
		return []string{o.Str}, nil
	case xpath.OperandNumber:
		return []string{trimFloat(o.Num)}, nil
	case xpath.OperandFunc:
		v, err := ev.funcValue(env, n, o.Fn)
		if err != nil {
			return nil, err
		}
		return []string{v}, nil
	}
	nodes, attr, err := ev.operandNodes(env, n, o.Path)
	if err != nil {
		return nil, err
	}
	return nodeValues(nodes, attr), nil
}

// operandNodes resolves a path operand to its result nodes plus the
// trailing attribute name when the path ends in an attribute step: the
// nodes are then the elements carrying the attribute. A nil context node
// restricts the operand to anchored paths ($var, doc(), absolute), the
// where-condition case.
func (ev *evaluator) operandNodes(env Env, n *xmltree.Node, p *xpath.Path) ([]*xmltree.Node, string, error) {
	steps, attr := peelAttr(p.Steps)
	var nodes []*xmltree.Node
	var err error
	if p.Source.Kind == xpath.SourceContext {
		if n == nil {
			return nil, "", fmt.Errorf("naveval: relative path %s has no context", p)
		}
		nodes, err = ev.steps(env, []*xmltree.Node{n}, steps)
	} else {
		nodes, err = ev.path(env, &xpath.Path{Source: p.Source, Steps: steps})
	}
	if err != nil {
		return nil, "", err
	}
	if attr != "" {
		// Never compact in place: for a bare variable operand like
		// $l/@attr, path() returns the environment's own binding slice,
		// and an in-place filter would scribble over the stored binding.
		kept := make([]*xmltree.Node, 0, len(nodes))
		for _, m := range nodes {
			if _, ok := m.Attr(attr); ok {
				kept = append(kept, m)
			}
		}
		nodes = kept
	}
	return nodes, attr, nil
}

// nodeValues produces the comparison values of resolved operand nodes:
// attribute values when the operand path ended in an attribute step,
// string-values otherwise.
func nodeValues(nodes []*xmltree.Node, attr string) []string {
	out := make([]string, 0, len(nodes))
	for _, m := range nodes {
		if attr != "" {
			if v, ok := m.Attr(attr); ok {
				out = append(out, v)
			}
			continue
		}
		out = append(out, xmltree.StringValue(m))
	}
	return out
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// stringArg evaluates a function argument to a single string following
// XPath 1.0's string() conversion: the string-value of the first result
// node ("" for an empty sequence), or the literal itself.
func (ev *evaluator) stringArg(env Env, n *xmltree.Node, o xpath.Operand) (string, error) {
	vals, err := ev.operandValues(env, n, o)
	if err != nil {
		return "", err
	}
	if len(vals) == 0 {
		return "", nil
	}
	return vals[0], nil
}

// seqArg evaluates a function argument that must be a node sequence
// (count, sum, string-join), returning the result nodes and the trailing
// attribute name when the argument path ended in an attribute step.
func (ev *evaluator) seqArg(env Env, n *xmltree.Node, o xpath.Operand, fn string) ([]*xmltree.Node, string, error) {
	if o.Kind != xpath.OperandPath {
		return nil, "", fmt.Errorf("naveval: %s() requires a path argument", fn)
	}
	return ev.operandNodes(env, n, o.Path)
}

// funcValue evaluates a core library function call to its string value.
// Boolean functions yield "true"/"false"; numeric functions format via
// the same %g rendering comparisons use, with "NaN" for non-numeric
// input, so function results compose with CmpOp.Eval's numeric rules.
func (ev *evaluator) funcValue(env Env, n *xmltree.Node, f *xpath.FuncCall) (string, error) {
	switch f.Name {
	case "contains", "starts-with":
		a, err := ev.stringArg(env, n, f.Args[0])
		if err != nil {
			return "", err
		}
		b, err := ev.stringArg(env, n, f.Args[1])
		if err != nil {
			return "", err
		}
		if f.Name == "contains" {
			return boolStr(strings.Contains(a, b)), nil
		}
		return boolStr(strings.HasPrefix(a, b)), nil
	case "count":
		nodes, _, err := ev.seqArg(env, n, f.Args[0], f.Name)
		if err != nil {
			return "", err
		}
		return strconv.Itoa(len(nodes)), nil
	case "sum":
		nodes, attr, err := ev.seqArg(env, n, f.Args[0], f.Name)
		if err != nil {
			return "", err
		}
		total := 0.0
		for _, v := range nodeValues(nodes, attr) {
			fv, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return "NaN", nil
			}
			total += fv
		}
		return trimFloat(total), nil
	case "string-join":
		nodes, attr, err := ev.seqArg(env, n, f.Args[0], f.Name)
		if err != nil {
			return "", err
		}
		sep := ""
		if len(f.Args) == 2 {
			if sep, err = ev.stringArg(env, n, f.Args[1]); err != nil {
				return "", err
			}
		}
		return strings.Join(nodeValues(nodes, attr), sep), nil
	case "number":
		var s string
		var err error
		if len(f.Args) == 0 {
			if n == nil {
				return "", fmt.Errorf("naveval: number() needs a context node")
			}
			s = xmltree.StringValue(n)
		} else if s, err = ev.stringArg(env, n, f.Args[0]); err != nil {
			return "", err
		}
		fv, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return "NaN", nil
		}
		return trimFloat(fv), nil
	case "name":
		if len(f.Args) == 0 {
			if n == nil {
				return "", fmt.Errorf("naveval: name() needs a context node")
			}
			return n.Tag, nil
		}
		nodes, attr, err := ev.seqArg(env, n, f.Args[0], f.Name)
		if err != nil {
			return "", err
		}
		if len(nodes) == 0 {
			return "", nil
		}
		if attr != "" {
			// The name of an attribute node is the attribute name.
			return attr, nil
		}
		return nodes[0].Tag, nil
	default:
		return "", fmt.Errorf("naveval: unknown function %s()", f.Name)
	}
}

// funcBool is the effective boolean value of a function call: booleans
// directly, numbers ≠ 0 (NaN is false), strings ≠ "".
func (ev *evaluator) funcBool(env Env, n *xmltree.Node, f *xpath.FuncCall) (bool, error) {
	v, err := ev.funcValue(env, n, f)
	if err != nil {
		return false, err
	}
	switch f.Name {
	case "contains", "starts-with":
		return v == "true", nil
	case "count", "sum", "number":
		fv, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(fv) {
			return false, nil
		}
		return fv != 0, nil
	default: // string-join, name
		return v != "", nil
	}
}

// EvalCond evaluates a where-clause condition under an environment (used
// by the FLWOR loop here and for residual conditions by the executor).
func EvalCond(resolve Resolver, env Env, c flwor.Cond) (bool, error) {
	return EvalCondGov(resolve, env, c, nil)
}

// EvalCondGov is EvalCond under a governor.
func EvalCondGov(resolve Resolver, env Env, c flwor.Cond, g *gov.Governor) (bool, error) {
	return (&evaluator{resolve: resolve, gov: g}).cond(env, c)
}

func (ev *evaluator) cond(env Env, c flwor.Cond) (bool, error) {
	switch t := c.(type) {
	case flwor.CondAnd:
		l, err := ev.cond(env, t.L)
		if err != nil || !l {
			return false, err
		}
		return ev.cond(env, t.R)
	case flwor.CondOr:
		l, err := ev.cond(env, t.L)
		if err != nil || l {
			return l, err
		}
		return ev.cond(env, t.R)
	case flwor.CondNot:
		v, err := ev.cond(env, t.C)
		return !v, err
	case flwor.CondBool:
		return ev.funcBool(env, nil, t.Fn)
	case flwor.CondExists:
		res, err := ev.path(env, t.Path)
		if err != nil {
			return false, err
		}
		return len(res) > 0, nil
	case flwor.CondDocOrder:
		l, err := ev.path(env, t.Left)
		if err != nil {
			return false, err
		}
		r, err := ev.path(env, t.Right)
		if err != nil {
			return false, err
		}
		for _, a := range l {
			for _, b := range r {
				if a != b && (t.Before && a.Before(b) || !t.Before && b.Before(a)) {
					return true, nil
				}
			}
		}
		return false, nil
	case flwor.CondDeepEqual:
		l, err := ev.path(env, t.Left)
		if err != nil {
			return false, err
		}
		r, err := ev.path(env, t.Right)
		if err != nil {
			return false, err
		}
		return xmltree.DeepEqualSeq(l, r), nil
	case flwor.CondCmp:
		lv, err := ev.condOperandValues(env, t.Left)
		if err != nil {
			return false, err
		}
		rv, err := ev.condOperandValues(env, t.Right)
		if err != nil {
			return false, err
		}
		for _, a := range lv {
			for _, b := range rv {
				if t.Op.Eval(a, b) {
					return true, nil
				}
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("naveval: unsupported condition %T", c)
	}
}

// condOperandValues is operandValues without a context node: operand
// paths in where-conditions must be anchored at a variable, doc() or the
// root. Attribute-ending paths compare attribute values, exactly as in
// predicate operands.
func (ev *evaluator) condOperandValues(env Env, o xpath.Operand) ([]string, error) {
	return ev.operandValues(env, nil, o)
}

// EvalFLWOR runs the FLWOR iteration semantics naively: the nested-loop
// evaluation of §1's "straightforward approach". It returns one Env per
// surviving iteration, in iteration (document) order, after applying
// where and order by.
func EvalFLWOR(resolve Resolver, f *flwor.FLWOR) ([]Env, error) {
	return EvalFLWORGov(resolve, f, nil)
}

// EvalFLWORGov is EvalFLWOR under a governor: every correlated path
// re-evaluation inside the nested loops is governed, so cancellation
// and budgets abort the iteration mid-flight.
func EvalFLWORGov(resolve Resolver, f *flwor.FLWOR, g *gov.Governor) ([]Env, error) {
	ev := &evaluator{resolve: resolve, gov: g}
	envs := []Env{{}}
	for _, cl := range f.Clauses {
		var next []Env
		for _, env := range envs {
			if err := ev.gov.Poll(); err != nil {
				return nil, err
			}
			res, err := ev.path(env, cl.Path)
			if err != nil {
				return nil, err
			}
			if cl.Kind == flwor.LetClause {
				e2 := env.clone()
				e2[cl.Var] = res
				next = append(next, e2)
				continue
			}
			for i, n := range res {
				e2 := env.clone()
				e2[cl.Var] = []*xmltree.Node{n}
				if cl.PosVar != "" {
					// The positional variable binds a detached text node
					// holding the 1-based index: it behaves as a value
					// (comparisons, order by, constructor content) without
					// widening the Env value type.
					e2[cl.PosVar] = []*xmltree.Node{{Kind: xmltree.TextNode, Text: strconv.Itoa(i + 1)}}
				}
				next = append(next, e2)
			}
		}
		envs = next
	}
	if f.Where != nil {
		var kept []Env
		for _, env := range envs {
			if err := ev.gov.Poll(); err != nil {
				return nil, err
			}
			ok, err := ev.cond(env, f.Where)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, env)
			}
		}
		envs = kept
	}
	if f.OrderBy != nil {
		keys := make([]string, len(envs))
		for i, env := range envs {
			res, err := ev.path(env, f.OrderBy)
			if err != nil {
				return nil, err
			}
			if len(res) > 0 {
				keys[i] = xmltree.StringValue(res[0])
			}
		}
		idx := make([]int, len(envs))
		for i := range idx {
			idx[i] = i
		}
		less := OrderLess(f.OrderDesc)
		sort.SliceStable(idx, func(a, b int) bool { return less(keys[idx[a]], keys[idx[b]]) })
		sorted := make([]Env, len(envs))
		for i, j := range idx {
			sorted[i] = envs[j]
		}
		envs = sorted
	}
	return envs, nil
}
