// Package naveval is a straightforward navigational evaluator for the
// query fragment: path expressions are evaluated by recursive tree
// traversal with no decomposition, no labeling shortcuts and no tag
// indexes, and FLWOR expressions follow their iteration semantics
// literally, re-evaluating every correlated path expression inside the
// for-loops — exactly the "straightforward approach" the paper's
// introduction warns is inefficient.
//
// It plays two roles in this repository:
//
//   - the stand-in for the proprietary X-Hive/DB system ("XH") in the
//     Table 3 experiments — an industry-style navigational engine the
//     algebraic operators are compared against; and
//   - the correctness oracle: property tests check the NoK matcher, the
//     structural joins and the executor against its results.
//
// Evaluation is governed like the algebraic operators: the *Gov entry
// points thread a gov.Governor through every step evaluation, charging
// axis candidates against the query's node budget and polling
// cancellation, so a runaway navigational query aborts with the same
// typed errors the planned executor returns.
package naveval

import (
	"fmt"
	"sort"
	"strconv"

	"blossomtree/internal/fault"
	"blossomtree/internal/flwor"
	"blossomtree/internal/gov"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

// OrderKeyLess compares order-by keys numerically when both parse as
// numbers ("9" before "10") and lexicographically otherwise, matching
// XQuery's type-aware ordering for the untyped-atomic values this
// fragment produces. Both the navigational evaluator and the planned
// executor order by it, so the two paths agree on result order.
func OrderKeyLess(a, b string) bool {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		return fa < fb
	}
	return a < b
}

// OrderLess returns the order-by key comparator for the requested
// direction: OrderKeyLess for ascending, its mirror for descending.
// Both evaluators sort stably with it, so equal keys keep iteration
// order in either direction.
func OrderLess(desc bool) func(a, b string) bool {
	if desc {
		return func(a, b string) bool { return OrderKeyLess(b, a) }
	}
	return OrderKeyLess
}

// Resolver maps document URIs to documents. The empty URI resolves
// absolute paths ("/a/b") when a query mixes both forms.
type Resolver func(uri string) (*xmltree.Document, error)

// SingleDoc returns a resolver that serves the same document for every
// URI, the common case of single-document queries.
func SingleDoc(doc *xmltree.Document) Resolver {
	return func(string) (*xmltree.Document, error) { return doc, nil }
}

// Env is one row of variable bindings: each variable holds the node
// sequence it is bound to (singletons for for-variables, full sequences
// for let-variables).
type Env map[string][]*xmltree.Node

// clone copies the environment.
func (e Env) clone() Env {
	out := make(Env, len(e)+1)
	for k, v := range e {
		out[k] = v
	}
	return out
}

// evaluator carries the evaluation context every recursive helper
// needs: the document resolver and the query's governor (nil when
// ungoverned — every governor method is nil-safe).
type evaluator struct {
	resolve Resolver
	gov     *gov.Governor
}

// EvalPath evaluates a path expression with no variable bindings.
func EvalPath(doc *xmltree.Document, p *xpath.Path) ([]*xmltree.Node, error) {
	return EvalPathEnv(SingleDoc(doc), nil, p)
}

// EvalPathEnv evaluates a path expression under variable bindings.
// Results are distinct nodes in document order.
func EvalPathEnv(resolve Resolver, env Env, p *xpath.Path) ([]*xmltree.Node, error) {
	return EvalPathGov(resolve, env, p, nil)
}

// EvalPathGov is EvalPathEnv under a governor: step evaluation charges
// the node budget and polls cancellation.
func EvalPathGov(resolve Resolver, env Env, p *xpath.Path, g *gov.Governor) ([]*xmltree.Node, error) {
	return (&evaluator{resolve: resolve, gov: g}).path(env, p)
}

func (ev *evaluator) path(env Env, p *xpath.Path) ([]*xmltree.Node, error) {
	var ctx []*xmltree.Node
	switch p.Source.Kind {
	case xpath.SourceDoc:
		doc, err := ev.resolve(p.Source.Doc)
		if err != nil {
			return nil, err
		}
		ctx = []*xmltree.Node{doc.Root}
	case xpath.SourceRoot:
		doc, err := ev.resolve("")
		if err != nil {
			return nil, err
		}
		ctx = []*xmltree.Node{doc.Root}
	case xpath.SourceVar:
		nodes, ok := env[p.Source.Var]
		if !ok {
			return nil, fmt.Errorf("naveval: unbound variable $%s", p.Source.Var)
		}
		ctx = nodes
	default:
		return nil, fmt.Errorf("naveval: relative path %s has no context", p)
	}
	return ev.steps(env, ctx, p.Steps)
}

func (ev *evaluator) steps(env Env, ctx []*xmltree.Node, steps []xpath.Step) ([]*xmltree.Node, error) {
	cur := ctx
	for _, st := range steps {
		var next []*xmltree.Node
		seen := make(map[*xmltree.Node]bool)
		for _, c := range cur {
			sel, err := ev.step(env, c, st)
			if err != nil {
				return nil, err
			}
			for _, n := range sel {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].Start < next[j].Start })
		cur = next
	}
	return cur, nil
}

// step selects the step's axis candidates from one context node and
// filters them through the predicates with correct position() semantics
// (1-based within this context node's candidate list).
func (ev *evaluator) step(env Env, ctx *xmltree.Node, st xpath.Step) ([]*xmltree.Node, error) {
	var cands []*xmltree.Node
	switch st.Axis {
	case xpath.Child:
		if st.TextTest {
			cands = xmltree.TextChildren(ctx)
			break
		}
		for c := ctx.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind == xmltree.ElementNode && st.Matches(c.Tag) {
				cands = append(cands, c)
			}
		}
	case xpath.Descendant:
		if st.TextTest {
			cands = xmltree.TextDescendants(ctx)
			break
		}
		cands = xmltree.Descendants(ctx, "")
		if st.Test != "*" {
			k := cands[:0]
			for _, n := range cands {
				if n.Tag == st.Test {
					k = append(k, n)
				}
			}
			cands = k
		}
	case xpath.Self:
		if ctx.Kind == xmltree.ElementNode || ctx.Kind == xmltree.DocumentNode {
			cands = []*xmltree.Node{ctx}
		}
	case xpath.FollowingSibling:
		for s := ctx.NextSibling; s != nil; s = s.NextSibling {
			if s.Kind == xmltree.ElementNode && st.Matches(s.Tag) {
				cands = append(cands, s)
			}
		}
	case xpath.Attribute:
		return nil, fmt.Errorf("naveval: attribute nodes cannot be returned (step @%s)", st.Test)
	default:
		return nil, fmt.Errorf("naveval: unsupported axis %v", st.Axis)
	}
	// Each per-context-node step is one governance point: the axis
	// candidates charge the node budget, and the hit doubles as the
	// navigational fault site.
	if err := ev.gov.Scanned(fault.SiteNavStep, int64(len(cands))); err != nil {
		return nil, err
	}
	for _, pred := range st.Preds {
		var kept []*xmltree.Node
		for i, n := range cands {
			ok, err := ev.pred(env, n, i+1, pred)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, n)
			}
		}
		cands = kept
	}
	return cands, nil
}

func (ev *evaluator) pred(env Env, n *xmltree.Node, pos int, e xpath.Expr) (bool, error) {
	switch t := e.(type) {
	case xpath.Exists:
		res, err := ev.relative(env, n, t.Path)
		if err != nil {
			return false, err
		}
		return len(res) > 0, nil
	case xpath.Position:
		return pos == t.N, nil
	case xpath.And:
		l, err := ev.pred(env, n, pos, t.L)
		if err != nil || !l {
			return false, err
		}
		return ev.pred(env, n, pos, t.R)
	case xpath.Or:
		l, err := ev.pred(env, n, pos, t.L)
		if err != nil || l {
			return l, err
		}
		return ev.pred(env, n, pos, t.R)
	case xpath.Not:
		v, err := ev.pred(env, n, pos, t.E)
		return !v, err
	case xpath.Compare:
		lv, err := ev.operandValues(env, n, t.Left)
		if err != nil {
			return false, err
		}
		rv, err := ev.operandValues(env, n, t.Right)
		if err != nil {
			return false, err
		}
		for _, l := range lv {
			for _, r := range rv {
				if t.Op.Eval(l, r) {
					return true, nil
				}
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("naveval: unsupported predicate %T", e)
	}
}

// relative evaluates a relative path from a context node, handling
// trailing attribute steps as attribute existence.
func (ev *evaluator) relative(env Env, n *xmltree.Node, p *xpath.Path) ([]*xmltree.Node, error) {
	steps := p.Steps
	attr := ""
	if k := len(steps); k > 0 && steps[k-1].Axis == xpath.Attribute {
		attr = steps[k-1].Test
		steps = steps[:k-1]
	}
	res, err := ev.steps(env, []*xmltree.Node{n}, steps)
	if err != nil {
		return nil, err
	}
	if attr == "" {
		return res, nil
	}
	var out []*xmltree.Node
	for _, m := range res {
		if _, ok := m.Attr(attr); ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// operandValues produces the comparison value list of an operand:
// literals are singletons; paths yield the string-values of their result
// nodes (attribute steps yield attribute values).
func (ev *evaluator) operandValues(env Env, n *xmltree.Node, o xpath.Operand) ([]string, error) {
	switch o.Kind {
	case xpath.OperandString:
		return []string{o.Str}, nil
	case xpath.OperandNumber:
		return []string{trimFloat(o.Num)}, nil
	}
	p := o.Path
	steps := p.Steps
	attr := ""
	if k := len(steps); k > 0 && steps[k-1].Axis == xpath.Attribute {
		attr = steps[k-1].Test
		steps = steps[:k-1]
	}
	var ctx []*xmltree.Node
	var err error
	if p.Source.Kind == xpath.SourceContext {
		ctx, err = ev.steps(env, []*xmltree.Node{n}, steps)
	} else {
		ctx, err = ev.path(env, &xpath.Path{Source: p.Source, Steps: steps})
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, m := range ctx {
		if attr != "" {
			if v, ok := m.Attr(attr); ok {
				out = append(out, v)
			}
			continue
		}
		out = append(out, xmltree.StringValue(m))
	}
	return out, nil
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// EvalCond evaluates a where-clause condition under an environment (used
// by the FLWOR loop here and for residual conditions by the executor).
func EvalCond(resolve Resolver, env Env, c flwor.Cond) (bool, error) {
	return EvalCondGov(resolve, env, c, nil)
}

// EvalCondGov is EvalCond under a governor.
func EvalCondGov(resolve Resolver, env Env, c flwor.Cond, g *gov.Governor) (bool, error) {
	return (&evaluator{resolve: resolve, gov: g}).cond(env, c)
}

func (ev *evaluator) cond(env Env, c flwor.Cond) (bool, error) {
	switch t := c.(type) {
	case flwor.CondAnd:
		l, err := ev.cond(env, t.L)
		if err != nil || !l {
			return false, err
		}
		return ev.cond(env, t.R)
	case flwor.CondOr:
		l, err := ev.cond(env, t.L)
		if err != nil || l {
			return l, err
		}
		return ev.cond(env, t.R)
	case flwor.CondNot:
		v, err := ev.cond(env, t.C)
		return !v, err
	case flwor.CondExists:
		res, err := ev.path(env, t.Path)
		if err != nil {
			return false, err
		}
		return len(res) > 0, nil
	case flwor.CondDocOrder:
		l, err := ev.path(env, t.Left)
		if err != nil {
			return false, err
		}
		r, err := ev.path(env, t.Right)
		if err != nil {
			return false, err
		}
		for _, a := range l {
			for _, b := range r {
				if a != b && (t.Before && a.Before(b) || !t.Before && b.Before(a)) {
					return true, nil
				}
			}
		}
		return false, nil
	case flwor.CondDeepEqual:
		l, err := ev.path(env, t.Left)
		if err != nil {
			return false, err
		}
		r, err := ev.path(env, t.Right)
		if err != nil {
			return false, err
		}
		return xmltree.DeepEqualSeq(l, r), nil
	case flwor.CondCmp:
		lv, err := ev.condOperandValues(env, t.Left)
		if err != nil {
			return false, err
		}
		rv, err := ev.condOperandValues(env, t.Right)
		if err != nil {
			return false, err
		}
		for _, a := range lv {
			for _, b := range rv {
				if t.Op.Eval(a, b) {
					return true, nil
				}
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("naveval: unsupported condition %T", c)
	}
}

func (ev *evaluator) condOperandValues(env Env, o xpath.Operand) ([]string, error) {
	switch o.Kind {
	case xpath.OperandString:
		return []string{o.Str}, nil
	case xpath.OperandNumber:
		return []string{trimFloat(o.Num)}, nil
	}
	res, err := ev.path(env, o.Path)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(res))
	for i, n := range res {
		out[i] = xmltree.StringValue(n)
	}
	return out, nil
}

// EvalFLWOR runs the FLWOR iteration semantics naively: the nested-loop
// evaluation of §1's "straightforward approach". It returns one Env per
// surviving iteration, in iteration (document) order, after applying
// where and order by.
func EvalFLWOR(resolve Resolver, f *flwor.FLWOR) ([]Env, error) {
	return EvalFLWORGov(resolve, f, nil)
}

// EvalFLWORGov is EvalFLWOR under a governor: every correlated path
// re-evaluation inside the nested loops is governed, so cancellation
// and budgets abort the iteration mid-flight.
func EvalFLWORGov(resolve Resolver, f *flwor.FLWOR, g *gov.Governor) ([]Env, error) {
	ev := &evaluator{resolve: resolve, gov: g}
	envs := []Env{{}}
	for _, cl := range f.Clauses {
		var next []Env
		for _, env := range envs {
			if err := ev.gov.Poll(); err != nil {
				return nil, err
			}
			res, err := ev.path(env, cl.Path)
			if err != nil {
				return nil, err
			}
			if cl.Kind == flwor.LetClause {
				e2 := env.clone()
				e2[cl.Var] = res
				next = append(next, e2)
				continue
			}
			for _, n := range res {
				e2 := env.clone()
				e2[cl.Var] = []*xmltree.Node{n}
				next = append(next, e2)
			}
		}
		envs = next
	}
	if f.Where != nil {
		var kept []Env
		for _, env := range envs {
			if err := ev.gov.Poll(); err != nil {
				return nil, err
			}
			ok, err := ev.cond(env, f.Where)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, env)
			}
		}
		envs = kept
	}
	if f.OrderBy != nil {
		keys := make([]string, len(envs))
		for i, env := range envs {
			res, err := ev.path(env, f.OrderBy)
			if err != nil {
				return nil, err
			}
			if len(res) > 0 {
				keys[i] = xmltree.StringValue(res[0])
			}
		}
		idx := make([]int, len(envs))
		for i := range idx {
			idx[i] = i
		}
		less := OrderLess(f.OrderDesc)
		sort.SliceStable(idx, func(a, b int) bool { return less(keys[idx[a]], keys[idx[b]]) })
		sorted := make([]Env, len(envs))
		for i, j := range idx {
			sorted[i] = envs[j]
		}
		envs = sorted
	}
	return envs, nil
}
