// Package fault is a deterministic fault-injection hook for the
// executor's robustness tests. Physical operators consult an Injector
// (through the query governor) at their instrumentation points — one
// named Site per operator family, hit once per emission or poll — and
// an armed rule fires an error or a panic on the k-th hit of its site.
//
// The injector is build-tag-free and nil by default: a nil *Injector is
// a valid no-op (every method is nil-safe), so production query paths
// pay a single pointer check. Tests arm rules to cancel or crash at the
// first, middle, or last emission inside each operator and assert the
// engine unwinds cleanly.
package fault

import (
	"fmt"
	"sync"
)

// Site names one instrumentation point family. Operators pass their
// site on every hit, so rules can target one operator precisely.
type Site string

// Instrumentation sites the operators consult. One per physical
// operator family, hit at each emission (joins, NoK) or cursor poll
// (index streams, navigational steps).
const (
	SiteNoKScan     Site = "nok.scan"        // NoK iterator anchor scans
	SiteNoKEmit     Site = "nok.emit"        // NoK iterator instance emissions
	SitePipelined   Site = "join.pipelined"  // PipelinedDescJoin emissions
	SiteBoundedNL   Site = "join.bounded-nl" // BoundedNLJoin emissions
	SiteNestedLoop  Site = "join.nested-loop"
	SiteStackJoin   Site = "join.stack"
	SiteTwigStack   Site = "join.twigstack"
	SiteIndexStream Site = "index.stream" // index.Stream cursor advances
	SiteNavStep     Site = "naveval.step" // navigational per-context-node steps
	SiteOutput      Site = "exec.output"  // root-level result emissions
	SiteVexec       Site = "vexec.batch"  // vectorized executor, hit once per batch

	// Shard-tier sites (internal/shard): hit once per shard dispatch,
	// per gather merge step, and per admission decision. They let the
	// chaos suite kill the k-th shard sub-query deterministically and
	// prove the retry, degrade, and shed paths under -race.
	SiteShardScatter   Site = "shard.scatter"
	SiteShardGather    Site = "shard.gather"
	SiteShardAdmission Site = "shard.admission"
)

// rule is one armed fault: fire on hits k..k+n-1 of the site (n <= 0
// means every hit from the k-th on).
type rule struct {
	k     int64
	n     int64
	err   error
	panik bool
}

// Injector fires scripted faults at named sites. Safe for concurrent
// use: batch workers and the planner's parallel pre-scan hit sites from
// several goroutines.
type Injector struct {
	mu    sync.Mutex
	hits  map[Site]int64
	rules map[Site]*rule
}

// New returns an injector with no rules armed.
func New() *Injector {
	return &Injector{hits: map[Site]int64{}, rules: map[Site]*rule{}}
}

// FailAt arms site to return err on its k-th hit (1-based). Each rule
// fires exactly once; later hits pass (the governor makes the first
// failure sticky, so one firing is enough to abort a query).
func (in *Injector) FailAt(site Site, k int64, err error) *Injector {
	if err == nil {
		err = fmt.Errorf("fault: injected failure at %s hit %d", site, k)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = &rule{k: k, n: 1, err: err}
	return in
}

// FailFrom arms site to return err on every hit from the k-th on
// (1-based) — a persistent failure, unlike FailAt's single firing. The
// shard chaos suite uses it to keep a shard down across the retry so
// the gather must degrade.
func (in *Injector) FailFrom(site Site, k int64, err error) *Injector {
	if err == nil {
		err = fmt.Errorf("fault: injected persistent failure at %s from hit %d", site, k)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = &rule{k: k, err: err}
	return in
}

// FailTimes arms site to return err on hits k..k+n-1 (1-based) — a
// failure that persists for exactly n hits and then clears. The shard
// chaos suite uses n=2 to keep one shard down across its attempt and
// retry while the shards dispatched after it stay healthy.
func (in *Injector) FailTimes(site Site, k, n int64, err error) *Injector {
	if err == nil {
		err = fmt.Errorf("fault: injected failure at %s for hits %d..%d", site, k, k+n-1)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = &rule{k: k, n: n, err: err}
	return in
}

// PanicAt arms site to panic on its k-th hit (1-based) — the scripted
// operator bug the executor's panic recovery must convert to an error.
func (in *Injector) PanicAt(site Site, k int64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = &rule{k: k, n: 1, panik: true}
	return in
}

// Hit records one hit of site and returns the armed fault's error when
// the rule fires. A nil injector always returns nil.
func (in *Injector) Hit(site Site) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.hits[site]++
	h := in.hits[site]
	r := in.rules[site]
	fire := r != nil && h >= r.k && (r.n <= 0 || h < r.k+r.n)
	in.mu.Unlock()
	if !fire {
		return nil
	}
	if r.panik {
		panic(fmt.Sprintf("fault: injected panic at %s hit %d", site, r.k))
	}
	return r.err
}

// Hits returns how many times site has been hit.
func (in *Injector) Hits(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}
