package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Hit(SiteNoKEmit); err != nil {
		t.Fatalf("nil injector Hit returned %v", err)
	}
	if n := in.Hits(SiteNoKEmit); n != 0 {
		t.Fatalf("nil injector Hits = %d", n)
	}
}

func TestFailAtFiresExactlyOnce(t *testing.T) {
	boom := errors.New("boom")
	in := New().FailAt(SitePipelined, 3, boom)
	for i := 1; i <= 5; i++ {
		err := in.Hit(SitePipelined)
		if i == 3 {
			if !errors.Is(err, boom) {
				t.Fatalf("hit %d: got %v, want boom", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d: unexpected %v", i, err)
		}
	}
	if n := in.Hits(SitePipelined); n != 5 {
		t.Fatalf("Hits = %d, want 5", n)
	}
	// Other sites are unaffected.
	if err := in.Hit(SiteTwigStack); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestFailAtDefaultError(t *testing.T) {
	in := New().FailAt(SiteNoKScan, 1, nil)
	err := in.Hit(SiteNoKScan)
	if err == nil || !strings.Contains(err.Error(), string(SiteNoKScan)) {
		t.Fatalf("default error = %v, want it to name the site", err)
	}
}

func TestPanicAt(t *testing.T) {
	in := New().PanicAt(SiteNestedLoop, 2)
	if err := in.Hit(SiteNestedLoop); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("hit 2 did not panic")
		}
		if !strings.Contains(r.(string), string(SiteNestedLoop)) {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	in.Hit(SiteNestedLoop)
}

// TestConcurrentHits checks the injector under parallel hitters: the
// armed rule fires exactly once and the counter is exact.
func TestConcurrentHits(t *testing.T) {
	boom := errors.New("boom")
	in := New().FailAt(SiteIndexStream, 50, boom)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	fired := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := in.Hit(SiteIndexStream); err != nil {
					fired <- err
				}
			}
		}()
	}
	wg.Wait()
	close(fired)
	var n int
	for err := range fired {
		if !errors.Is(err, boom) {
			t.Fatalf("unexpected error %v", err)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("rule fired %d times, want exactly 1", n)
	}
	if got := in.Hits(SiteIndexStream); got != workers*per {
		t.Fatalf("Hits = %d, want %d", got, workers*per)
	}
}

// TestFailFromIsPersistent: a FailFrom rule fires on every hit at or
// past k — the "shard stays down" mode of the chaos suite.
func TestFailFromIsPersistent(t *testing.T) {
	in := New().FailFrom(SiteShardScatter, 3, nil)
	for i := 1; i <= 6; i++ {
		err := in.Hit(SiteShardScatter)
		if (i >= 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
	}
}

// TestFailTimesWindow: a FailTimes rule fires on exactly hits
// k..k+n-1 and then clears — one shard down across its retry, the rest
// healthy.
func TestFailTimesWindow(t *testing.T) {
	in := New().FailTimes(SiteShardScatter, 2, 2, nil)
	for i := 1; i <= 5; i++ {
		err := in.Hit(SiteShardScatter)
		if want := i == 2 || i == 3; want != (err != nil) {
			t.Fatalf("hit %d: err = %v, want fire=%v", i, err, want)
		}
	}
}
