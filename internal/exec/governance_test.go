package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

// govEngine returns an engine loaded with a document large enough that
// operators emit many instances per query.
func govEngine(t *testing.T) *Engine {
	t.Helper()
	doc, err := xmltree.ParseString("<r>" + strings.Repeat("<a><b><c/></b><b/><c/></a>", 200) + "</r>")
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	e.Add("g.xml", doc)
	return e
}

func TestEvalCanceledContext(t *testing.T) {
	e := govEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counter := fault.New()
	_, err := e.EvalOptions(`//a//c`, plan.Options{Ctx: ctx, Fault: counter})
	if !errors.Is(err, gov.ErrCanceled) {
		t.Fatalf("Eval = %v, want ErrCanceled", err)
	}
	for _, site := range []fault.Site{fault.SiteNoKScan, fault.SiteNoKEmit, fault.SiteNavStep} {
		if n := counter.Hits(site); n != 0 {
			t.Errorf("site %s hit %d times under a pre-canceled context", site, n)
		}
	}
}

// TestPanicRecovery scripts an operator panic at varying emissions and
// checks the executor converts it to an error with operator context
// instead of crashing, and counts it in the metrics registry.
func TestPanicRecovery(t *testing.T) {
	e := govEngine(t)
	before := obs.Default.Snapshot()
	for _, k := range []int64{1, 50} {
		inj := fault.New().PanicAt(fault.SitePipelined, k)
		res, err := e.EvalOptions(`//a//c`, plan.Options{Strategy: plan.Pipelined, Fault: inj})
		if err == nil || res != nil {
			t.Fatalf("panic at hit %d: res=%v err=%v, want recovered error", k, res, err)
		}
		if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), string(fault.SitePipelined)) {
			t.Errorf("recovered error lacks context: %v", err)
		}
	}
	delta := obs.Default.Delta(before)
	if delta[obs.MetricQueryPanics] != 2 {
		t.Errorf("%s = %d, want 2", obs.MetricQueryPanics, delta[obs.MetricQueryPanics])
	}
}

// TestPanicRecoveryInBatchWorkers checks a scripted operator bug inside
// one batch worker fails only that query.
func TestPanicRecoveryInBatchWorkers(t *testing.T) {
	e := govEngine(t)
	inj := fault.New().PanicAt(fault.SiteNoKEmit, 3)
	srcs := []string{`//a//c`, `//a//b`, `//a/b/c`, `//r//a`}
	results := e.EvalBatch(srcs, plan.Options{Fault: inj}, 2)
	var panicked, ok int
	for _, r := range results {
		switch {
		case r.Err == nil:
			ok++
		case strings.Contains(r.Err.Error(), "panicked"):
			panicked++
		default:
			t.Errorf("query %q: unexpected error %v", r.Query, r.Err)
		}
	}
	if panicked != 1 || ok != len(srcs)-1 {
		t.Errorf("panicked=%d ok=%d, want exactly one panicked query (injector fires once)", panicked, ok)
	}
}

func TestBudgetAbortMetrics(t *testing.T) {
	e := govEngine(t)
	before := obs.Default.Snapshot()
	if _, err := e.EvalOptions(`//a//c`, plan.Options{Budget: gov.Budget{MaxNodes: 10}}); !errors.Is(err, gov.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	delta := obs.Default.Delta(before)
	if delta[obs.MetricQueryAborts] != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricQueryAborts, delta[obs.MetricQueryAborts])
	}
}

// TestNavigationalGovernance checks the oracle strategy is governed
// too: budgets abort it and pre-canceled contexts do no stepping.
func TestNavigationalGovernance(t *testing.T) {
	e := govEngine(t)
	opts := plan.Options{Strategy: plan.Navigational, Budget: gov.Budget{MaxNodes: 10}}
	if _, err := e.EvalOptions(`//a//c`, opts); !errors.Is(err, gov.ErrBudgetExceeded) {
		t.Fatalf("navigational budget abort = %v, want ErrBudgetExceeded", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counter := fault.New()
	_, err := e.EvalOptions(`//a//c`, plan.Options{Strategy: plan.Navigational, Ctx: ctx, Fault: counter})
	if !errors.Is(err, gov.ErrCanceled) {
		t.Fatalf("navigational canceled ctx = %v, want ErrCanceled", err)
	}
	if n := counter.Hits(fault.SiteNavStep); n != 0 {
		t.Errorf("navigational evaluator stepped %d times under a pre-canceled context", n)
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (draining workers need a moment after cancellation). This is
// the dependency-free goleak equivalent.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEvalBatchMidFlightCancellation cancels the shared context while
// batch workers are mid-evaluation. Every result must be either a clean
// result or a typed abort, and the worker pool must drain without
// leaking goroutines. Run under -race this is the cancellation stress
// test of the CI check target.
func TestEvalBatchMidFlightCancellation(t *testing.T) {
	e := govEngine(t)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	srcs := make([]string, 64)
	for i := range srcs {
		srcs[i] = `//a//c`
	}
	// Cancel as soon as the first query completes: later workers are
	// then mid-flight or not yet started.
	var done atomic.Bool
	go func() {
		for !done.Load() {
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
	}()
	results := e.EvalBatch(srcs, plan.Options{Ctx: ctx}, 4)
	done.Store(true)
	cancel()
	var okCount, canceledCount int
	for _, r := range results {
		switch {
		case r.Err == nil:
			okCount++
			done.Store(true)
		case errors.Is(r.Err, gov.ErrCanceled):
			canceledCount++
		default:
			t.Errorf("query %d: unexpected error %v", 0, r.Err)
		}
	}
	if okCount+canceledCount != len(srcs) {
		t.Errorf("results: %d ok + %d canceled != %d queries", okCount, canceledCount, len(srcs))
	}
	waitForGoroutines(t, baseline)
}

// TestEvalBatchPreCanceled checks a batch under an already-canceled
// context returns ErrCanceled for every query without scanning.
func TestEvalBatchPreCanceled(t *testing.T) {
	e := govEngine(t)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counter := fault.New()
	srcs := []string{`//a//c`, `//a//b`, `//r//a`}
	results := e.EvalBatch(srcs, plan.Options{Ctx: ctx, Fault: counter}, 3)
	for _, r := range results {
		if !errors.Is(r.Err, gov.ErrCanceled) {
			t.Errorf("query %q: err = %v, want ErrCanceled", r.Query, r.Err)
		}
	}
	if n := counter.Hits(fault.SiteNoKScan); n != 0 {
		t.Errorf("batch scanned %d nodes under a pre-canceled context", n)
	}
	waitForGoroutines(t, baseline)
}

// TestEvalAllDocsMidFlightCancellation is the multi-document analogue:
// cancellation mid-fan-out yields typed per-document errors and no
// goroutine leaks.
func TestEvalAllDocsMidFlightCancellation(t *testing.T) {
	e := New()
	for i := 0; i < 32; i++ {
		doc, err := xmltree.ParseString("<r>" + strings.Repeat("<a><b><c/></b></a>", 50) + "</r>")
		if err != nil {
			t.Fatal(err)
		}
		e.Add(fmt.Sprintf("doc-%02d.xml", i), doc)
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	results, err := e.EvalAllDocs(`//a//c`, plan.Options{Ctx: ctx}, 4)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, gov.ErrCanceled) {
			t.Errorf("doc %s: unexpected error %v", r.URI, r.Err)
		}
	}
	waitForGoroutines(t, baseline)
}

// TestPerQueryBudgetsInBatch checks each batch query gets its own
// budget accounting: with a per-query node budget generous enough for
// the small query and too small for the large one, only the large one
// aborts.
func TestPerQueryBudgetsInBatch(t *testing.T) {
	e := govEngine(t)
	srcs := []string{`//a/b/c`, `//a//c`}
	results := e.EvalBatch(srcs, plan.Options{Budget: gov.Budget{MaxNodes: 2_000_000}}, 2)
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("generous budget: query %q failed: %v", r.Query, r.Err)
		}
	}
}
