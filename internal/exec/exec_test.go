package exec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"blossomtree/internal/naveval"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

const bibXML = `<bib>
<book><title>Maximum Security</title></book>
<book><title>The Art of Computer Programming</title>
<author><last>Knuth</last><first>Donald</first></author></book>
<book><title>Terrorist Hunter</title></book>
<book><title>TeX Book</title>
<author><last>Knuth</last><first>Donald</first></author></book>
</bib>`

const example1 = `<bib>{
for $book1 in doc("bib.xml")//book, $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2
  and not($book1/title = $book2/title)
  and deep-equal($aut1, $aut2)
return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
}</bib>`

func bibEngine(t *testing.T) *Engine {
	t.Helper()
	doc, err := xmltree.ParseString(bibXML)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	e.Add("bib.xml", doc)
	return e
}

// TestExample1EndToEnd is the paper's flagship example: parse Example 1,
// compile its BlossomTree, plan, execute, and compare the constructed
// XML against the output of Example 2.
func TestExample1EndToEnd(t *testing.T) {
	for _, strat := range []plan.Strategy{plan.Auto, plan.Navigational} {
		t.Run(strat.String(), func(t *testing.T) {
			e := bibEngine(t)
			res, err := e.EvalStrategy(example1, strat)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Envs) != 2 {
				t.Fatalf("book pairs = %d, want 2", len(res.Envs))
			}
			if res.Output == nil {
				t.Fatal("no output document")
			}
			got := xmltree.Serialize(res.Output.Root, xmltree.WriteOptions{})
			want := `<bib><book-pair><title>Maximum Security</title><title>Terrorist Hunter</title></book-pair>` +
				`<book-pair><title>The Art of Computer Programming</title><title>TeX Book</title></book-pair></bib>`
			if got != want {
				t.Errorf("output:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

func TestPathQueriesAllStrategies(t *testing.T) {
	e := bibEngine(t)
	doc, _ := e.resolve("bib.xml")
	queries := []string{
		`doc("bib.xml")//book/title`,
		`//book[author]/title`,
		`//book[author/last="Knuth"]`,
		`//book//last`,
		`/bib/book/author`,
		`//author[last][first]`,
		`//book[2]`,
	}
	strategies := []plan.Strategy{plan.Pipelined, plan.BoundedNL, plan.Twig, plan.Navigational}
	for _, q := range queries {
		want, err := naveval.EvalPath(doc, xpath.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strategies {
			t.Run(q+"/"+s.String(), func(t *testing.T) {
				if s == plan.Twig && strings.Contains(q, "[2]") {
					t.Skip("TwigStack does not support positional predicates")
				}
				res, err := e.EvalStrategy(q, s)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Nodes) != len(want) {
					t.Fatalf("%s via %s: %d nodes, want %d", q, s, len(res.Nodes), len(want))
				}
				for i := range want {
					if res.Nodes[i] != want[i] {
						t.Fatalf("%s via %s: node %d differs", q, s, i)
					}
				}
			})
		}
	}
}

func TestFLWORWithValueConstraint(t *testing.T) {
	e := bibEngine(t)
	res, err := e.Eval(`for $b in doc("bib.xml")//book where $b/title = "TeX Book" return $b/author/last`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Envs) != 1 {
		t.Fatalf("envs = %d, want 1", len(res.Envs))
	}
	if len(res.Envs[0]["b"]) != 1 {
		t.Error("for-var binding not singleton")
	}
}

func TestFLWORResidualOr(t *testing.T) {
	e := bibEngine(t)
	res, err := e.Eval(`for $b in doc("bib.xml")//book where $b/title = "TeX Book" or $b/title = "Terrorist Hunter" return $b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Envs) != 2 {
		t.Fatalf("envs = %d, want 2 (residual or-condition)", len(res.Envs))
	}
}

func TestFLWOROrderBy(t *testing.T) {
	e := bibEngine(t)
	res, err := e.Eval(`for $b in doc("bib.xml")//book order by $b/title return <t>{ $b/title }</t>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Envs) != 4 {
		t.Fatalf("envs = %d", len(res.Envs))
	}
	out := xmltree.Serialize(res.Output.Root, xmltree.WriteOptions{})
	if !strings.Contains(out, "<results>") {
		t.Errorf("bare FLWOR output should be wrapped: %s", out)
	}
	first := strings.Index(out, "Maximum Security")
	second := strings.Index(out, "TeX Book")
	third := strings.Index(out, "Terrorist Hunter")
	fourth := strings.Index(out, "The Art")
	if !(first < second && second < third && third < fourth) {
		t.Errorf("order by violated: %s", out)
	}
}

func TestFLWORIterationOrder(t *testing.T) {
	e := bibEngine(t)
	res, err := e.Eval(`for $b in doc("bib.xml")//book return $b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Envs) != 4 {
		t.Fatalf("envs = %d", len(res.Envs))
	}
	for i := 1; i < len(res.Envs); i++ {
		if !res.Envs[i-1]["b"][0].Before(res.Envs[i]["b"][0]) {
			t.Error("iteration order is not document order")
		}
	}
	if res.Output != nil {
		t.Error("pathless return should not construct a document")
	}
}

func TestLetBindingsGrouped(t *testing.T) {
	e := bibEngine(t)
	res, err := e.Eval(`for $b in doc("bib.xml")//book let $ls := $b//last return $b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Envs) != 4 {
		t.Fatalf("envs = %d", len(res.Envs))
	}
	counts := 0
	for _, env := range res.Envs {
		counts += len(env["ls"])
	}
	if counts != 2 {
		t.Errorf("total let-bound last elements = %d, want 2", counts)
	}
}

func TestEngineErrors(t *testing.T) {
	e := New()
	if _, err := e.Eval(`//book`); err == nil {
		t.Error("query without documents should fail")
	}
	e = bibEngine(t)
	if _, err := e.Eval(`for $b in`); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := e.Eval(`for $b in doc("d")//book return <r>{ for $c in doc("d")//x return $c }</r>`); err == nil {
		t.Error("nested FLWOR should be rejected")
	}
	// Multi-document correlation is out of fragment.
	doc2, _ := xmltree.ParseString(`<other/>`)
	e.Add("other.xml", doc2)
	if _, err := e.Eval(`for $a in doc("bib.xml")//book, $b in doc("other.xml")//x return $a`); err == nil {
		t.Error("cross-document query should be rejected")
	}
}

func TestExplain(t *testing.T) {
	e := bibEngine(t)
	s, err := e.Explain(`//book[author]//last`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"plan strategy", "NoK"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, s)
		}
	}
}

func TestEvalWithoutIndexes(t *testing.T) {
	doc, _ := xmltree.ParseString(bibXML)
	e := NewWithConfig(Config{BuildIndexes: false})
	e.Add("bib.xml", doc)
	res, err := e.Eval(`//book[author]/title`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Errorf("nodes = %d", len(res.Nodes))
	}
	if _, err := e.EvalStrategy(`//book/title`, plan.Twig); err == nil {
		t.Error("forced TwigStack without index should fail")
	}
}

func TestMergedScansOption(t *testing.T) {
	doc, _ := xmltree.ParseString(bibXML)
	e := NewWithConfig(Config{BuildIndexes: false})
	e.Add("bib.xml", doc)
	res, err := e.EvalOptions(`//book[author]//last`, plan.Options{Strategy: plan.Pipelined, MergeScans: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Errorf("merged-scan result = %d nodes", len(res.Nodes))
	}
	if !strings.Contains(res.Plan.Explain(), "merged") {
		t.Error("plan should report merged scans")
	}
}

// TestQuickEngineEqualsOracle: random documents × the query shapes of
// Table 2, across every strategy, against the navigational oracle.
func TestQuickEngineEqualsOracle(t *testing.T) {
	queries := []string{
		`//a//b`,
		`//a//b//c`,
		`//a[//b][//c]`,
		`//a/b[//c]`,
		`//a[//b]//c`,
		`//a[b]//c`,
		`//a//b[c]`,
		`/a//b`,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{Tags: []string{"a", "b", "c", "d"}, MaxNodes: 60, MaxDepth: 8, TextProb: -1})
		recursive := xmltree.ComputeStats(doc).Recursive
		q := queries[r.Intn(len(queries))]
		want, err := naveval.EvalPath(doc, xpath.MustParse(q))
		if err != nil {
			return false
		}
		e := New()
		e.Add("doc.xml", doc)
		strategies := []plan.Strategy{plan.BoundedNL, plan.Twig, plan.CostBased}
		if !recursive {
			strategies = append(strategies, plan.Pipelined, plan.NaiveNL)
		}
		for _, s := range strategies {
			res, err := e.EvalStrategy(q, s)
			if err != nil {
				t.Logf("seed %d: %s via %s: %v", seed, q, s, err)
				return false
			}
			if len(res.Nodes) != len(want) {
				t.Logf("seed %d: %s via %s: %d nodes, want %d\ndoc: %s", seed, q, s,
					len(res.Nodes), len(want), xmltree.Serialize(doc.Root, xmltree.WriteOptions{}))
				return false
			}
			for i := range want {
				if res.Nodes[i] != want[i] {
					t.Logf("seed %d: %s via %s: node %d differs", seed, q, s, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickFLWOREqualsNavigational: random FLWOR queries with structural
// and value correlations agree with the naive evaluator.
func TestQuickFLWOREqualsNavigational(t *testing.T) {
	queries := []string{
		`for $x in doc("d")//a, $y in doc("d")//b where $x << $y return $x`,
		`for $x in doc("d")//a, $y in doc("d")//b where deep-equal($x, $y) return $x`,
		`for $x in doc("d")//a let $c := $x/b return $x`,
		`for $x in doc("d")//a let $c := $x//b return $x`,
		`for $x in doc("d")//a where exists($x/b) return $x`,
		`for $x in doc("d")//a where exists($x//c) return $x`,
		`for $x in doc("d")//a, $y in doc("d")//c where $x/b = $y/b return $y`,
		`for $x in doc("d")//a, $y in doc("d")//a where $x >> $y return $x`,
		`for $x in doc("d")//b let $c := $x//a where exists($x/c) return $x`,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{Tags: []string{"a", "b", "c"}, MaxNodes: 40, MaxDepth: 6})
		q := queries[r.Intn(len(queries))]
		e := New()
		e.Add("d", doc)
		alg, err := e.Eval(q)
		if err != nil {
			t.Logf("seed %d: %s: %v", seed, q, err)
			return false
		}
		nav, err := e.EvalStrategy(q, plan.Navigational)
		if err != nil {
			t.Logf("seed %d: nav %s: %v", seed, q, err)
			return false
		}
		if len(alg.Envs) != len(nav.Envs) {
			t.Logf("seed %d: %s: %d rows vs nav %d", seed, q, len(alg.Envs), len(nav.Envs))
			return false
		}
		for i := range alg.Envs {
			for v, ns := range nav.Envs[i] {
				gs := alg.Envs[i][v]
				if len(gs) != len(ns) {
					t.Logf("seed %d: %s row %d var $%s: %d vs %d", seed, q, i, v, len(gs), len(ns))
					return false
				}
				for k := range ns {
					if gs[k] != ns[k] {
						t.Logf("seed %d: %s row %d var $%s node %d differs", seed, q, i, v, k)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDocumentLookup(t *testing.T) {
	e := bibEngine(t)
	if d, ok := e.Document("bib.xml"); !ok || d == nil {
		t.Error("Document(bib.xml) failed")
	}
	if d, ok := e.Document("unknown"); !ok || d == nil {
		t.Error("unknown URI should fall back to the first document")
	}
	empty := New()
	if _, ok := empty.Document("x"); ok {
		t.Error("empty engine should resolve nothing")
	}
}

func TestConstructSequenceReturn(t *testing.T) {
	e := bibEngine(t)
	res, err := e.Eval(`for $b in doc("bib.xml")//book[author]
		return <entry>{ $b/title, $b/author/last }</entry>`)
	if err != nil {
		t.Fatal(err)
	}
	out := xmltree.Serialize(res.Output.Root, xmltree.WriteOptions{})
	if strings.Count(out, "<entry>") != 2 || strings.Count(out, "<last>") != 2 {
		t.Errorf("sequence construction output: %s", out)
	}
}

func TestConstructNestedCtors(t *testing.T) {
	e := bibEngine(t)
	res, err := e.Eval(`<lib>{ for $b in doc("bib.xml")//book[author]
		return <item><t>{ $b/title }</t><a>{ $b/author }</a></item> }</lib>`)
	if err != nil {
		t.Fatal(err)
	}
	out := xmltree.Serialize(res.Output.Root, xmltree.WriteOptions{})
	for _, frag := range []string{"<lib>", "<item>", "<t>", "<a>", "<author>"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in %s", frag, out)
		}
	}
}

func TestCostBasedStrategyEndToEnd(t *testing.T) {
	e := bibEngine(t)
	res, err := e.EvalStrategy(`//book[author]/title`, plan.CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Errorf("cost-based nodes = %d", len(res.Nodes))
	}
}

func TestNavigationalPathWithAbsoluteSource(t *testing.T) {
	e := bibEngine(t)
	res, err := e.EvalStrategy(`/bib/book/title`, plan.Navigational)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 4 {
		t.Errorf("nodes = %d", len(res.Nodes))
	}
}
