package exec

import (
	"fmt"

	"blossomtree/internal/flwor"
	"blossomtree/internal/naveval"
	"blossomtree/internal/xmltree"
)

// constructOutput builds the result document from the query's
// constructors: the outer constructor (if any) becomes the document
// element, and the FLWOR's return expression is instantiated once per
// environment row. Queries whose return is a bare path produce no
// Output document; their results are exposed through Envs. The resolver
// comes from the evaluation's snapshot so concurrent Adds cannot change
// which documents return-clause paths see.
func constructOutput(resolve naveval.Resolver, expr flwor.Expr, f *flwor.FLWOR, res *Result) error {
	if !hasConstructor(expr) && !hasConstructor(f.Return) {
		return nil
	}
	b := xmltree.NewBuilder()
	var build func(x flwor.Expr, env naveval.Env) error
	build = func(x flwor.Expr, env naveval.Env) error {
		switch t := x.(type) {
		case *flwor.ElemCtor:
			b.Start(t.Tag)
			for _, c := range t.Content {
				if err := build(c, env); err != nil {
					return err
				}
			}
			b.End()
			return nil
		case *flwor.TextCtor:
			b.Text(t.Text)
			return nil
		case *flwor.Sequence:
			for _, it := range t.Items {
				if err := build(it, env); err != nil {
					return err
				}
			}
			return nil
		case *flwor.FLWOR:
			for _, row := range res.Envs {
				if err := build(t.Return, row); err != nil {
					return err
				}
			}
			return nil
		case *flwor.PathExpr:
			if env == nil {
				return fmt.Errorf("exec: path %s outside any FLWOR iteration", t.Path)
			}
			ns, err := naveval.EvalPathEnv(resolve, env, t.Path)
			if err != nil {
				return err
			}
			for _, n := range ns {
				copyInto(b, n)
			}
			return nil
		default:
			return fmt.Errorf("exec: unsupported return expression %T", x)
		}
	}

	top := expr
	if _, isCtor := expr.(*flwor.ElemCtor); !isCtor {
		// Bare FLWOR whose return constructs elements: wrap the sequence
		// in a synthetic root so the output is a well-formed document.
		b.Start("results")
		if err := build(expr, nil); err != nil {
			return err
		}
		b.End()
		doc, err := b.Done()
		if err != nil {
			return err
		}
		res.Output = doc
		return nil
	}
	if err := build(top, nil); err != nil {
		return err
	}
	doc, err := b.Done()
	if err != nil {
		return err
	}
	res.Output = doc
	return nil
}

// hasConstructor reports whether the expression constructs any element.
func hasConstructor(x flwor.Expr) bool {
	switch t := x.(type) {
	case *flwor.ElemCtor:
		return true
	case *flwor.Sequence:
		for _, it := range t.Items {
			if hasConstructor(it) {
				return true
			}
		}
	case *flwor.FLWOR:
		return hasConstructor(t.Return)
	}
	return false
}

// copyInto deep-copies a result subtree into the output document under
// construction.
func copyInto(b *xmltree.Builder, n *xmltree.Node) {
	switch n.Kind {
	case xmltree.TextNode:
		b.Text(n.Text)
	case xmltree.ElementNode:
		attrs := make([]xmltree.Attr, len(n.Attrs))
		copy(attrs, n.Attrs)
		b.StartAttrs(n.Tag, attrs)
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			copyInto(b, c)
		}
		b.End()
	}
}
