package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

func mustParseDoc(t *testing.T, xml string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestPlanCacheHitMiss pins the cache lifecycle on one engine: the
// first evaluation compiles (miss), the repeat is served cached, and a
// document load invalidates by bumping the snapshot version.
func TestPlanCacheHitMiss(t *testing.T) {
	e := bibEngine(t)
	const q = `//book[author]/title`

	before := obs.Default.Snapshot()
	res1, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cached {
		t.Error("first evaluation reported a cache hit")
	}
	res2, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("repeated evaluation did not hit the plan cache")
	}
	d := obs.Default.Delta(before)
	if d[obs.MetricPlanCacheMisses] < 1 {
		t.Errorf("plan_cache_misses delta = %d, want >= 1", d[obs.MetricPlanCacheMisses])
	}
	if d[obs.MetricPlanCacheHits] < 1 {
		t.Errorf("plan_cache_hits delta = %d, want >= 1", d[obs.MetricPlanCacheHits])
	}

	// Results must be identical either way.
	if canonicalResult(res1) != canonicalResult(res2) {
		t.Errorf("cached result differs from compiled result:\n%s\nvs\n%s",
			canonicalResult(res2), canonicalResult(res1))
	}

	// The cached plan's EXPLAIN carries the hit marker; the fresh one
	// does not.
	if strings.Contains(res1.Plan.Explain(), "plan cache: hit") {
		t.Error("fresh plan's EXPLAIN claims a cache hit")
	}
	if !strings.Contains(res2.Plan.Explain(), "plan cache: hit") {
		t.Errorf("cached plan's EXPLAIN lacks the hit marker:\n%s", res2.Plan.Explain())
	}

	// Loading any document publishes a new snapshot version: the next
	// evaluation must recompile, and must see the new catalog.
	e.Add("extra.xml", mustParseDoc(t, `<bib><book><author/><title>New</title></book></bib>`))
	res3, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cached {
		t.Error("evaluation after Add still reported a cache hit (stale plan executed)")
	}
}

// TestPlanCacheKeyedByStrategy checks that forced strategies get their
// own cache entries rather than aliasing each other's plans.
func TestPlanCacheKeyedByStrategy(t *testing.T) {
	e := bibEngine(t)
	const q = `//book//last`
	for _, strat := range []plan.Strategy{plan.BoundedNL, plan.NaiveNL, plan.Twig} {
		res1, err := e.EvalStrategy(q, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res1.Cached {
			t.Errorf("%v: first evaluation reported a cache hit", strat)
		}
		res2, err := e.EvalStrategy(q, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !res2.Cached {
			t.Errorf("%v: repeat missed the cache", strat)
		}
		if res2.Plan.Strategy != strat {
			t.Errorf("cached plan strategy = %v, want %v", res2.Plan.Strategy, strat)
		}
	}
}

// TestPlanCacheBypassOnExplicitInputs checks that caller-supplied
// planning inputs (index, statistics) keep the evaluation out of the
// shared cache: such plans are shaped by caller state the key cannot
// see.
func TestPlanCacheBypassOnExplicitInputs(t *testing.T) {
	e := bibEngine(t)
	doc, _ := e.resolve("bib.xml")
	opts := plan.Options{Stats: xmltree.ComputeStats(doc)}
	for i := 0; i < 2; i++ {
		res, err := e.EvalOptions(`//book/title`, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Errorf("run %d with explicit stats hit the cache", i)
		}
	}
}

// TestPlanCacheLRUEviction exercises the LRU bound directly on a small
// cache.
func TestPlanCacheLRUEviction(t *testing.T) {
	pc := newPlanCache(2)
	k := func(i int) planKey { return planKey{version: 1, hash: fmt.Sprintf("h%d", i)} }
	pc.put(k(1), &compiled{})
	pc.put(k(2), &compiled{})
	if _, ok := pc.get(k(1)); !ok { // touch 1 so 2 is the LRU victim
		t.Fatal("entry 1 missing before eviction")
	}
	pc.put(k(3), &compiled{})
	if pc.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", pc.len())
	}
	if _, ok := pc.get(k(2)); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := pc.get(k(1)); !ok {
		t.Error("recently-touched entry was evicted")
	}
	if _, ok := pc.get(k(3)); !ok {
		t.Error("newest entry was evicted")
	}
}

// TestPreparedLifecycle covers the prepared-statement API: eager error
// surfacing, cache seeding, and recompilation after loads.
func TestPreparedLifecycle(t *testing.T) {
	e := bibEngine(t)

	if _, err := e.Prepare(`//book[`, plan.Options{}); err == nil {
		t.Error("Prepare accepted a syntactically invalid query")
	}

	p, err := e.Prepare(`//book[author/last="Knuth"]/title`, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Source() != `//book[author/last="Knuth"]/title` {
		t.Errorf("Source() = %q", p.Source())
	}

	// Prepare compiled eagerly, so the very first Run is already warm.
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("first Run after Prepare missed the cache (eager compile did not seed it)")
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("result nodes = %d, want 2", len(res.Nodes))
	}

	// A load invalidates; the next Run recompiles against the new
	// catalog and sees its content.
	e.Add("bib.xml", mustParseDoc(t, `<bib><book><author><last>Knuth</last></author><title>Only</title></book></bib>`))
	res, err = p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("Run after Add reused a stale plan")
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("result nodes after reload = %d, want 1", len(res.Nodes))
	}
}

// TestPreparedOnEmptyEngine: preparation against an empty catalog
// defers compilation to Run instead of failing.
func TestPreparedOnEmptyEngine(t *testing.T) {
	e := New()
	p, err := e.Prepare(`//book/title`, plan.Options{})
	if err != nil {
		t.Fatalf("Prepare on empty engine: %v", err)
	}
	if _, err := p.Run(); err == nil {
		t.Error("Run on empty engine succeeded")
	}
	e.Add("bib.xml", mustParseDoc(t, bibXML))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("result nodes = %d, want 4", len(res.Nodes))
	}
}

// TestPreparedPlanningErrorSurfacesEarly: with several documents
// loaded, a query naming an unknown document fails at Prepare, not at
// the first Run.
func TestPreparedPlanningErrorSurfacesEarly(t *testing.T) {
	e := bibEngine(t)
	e.Add("other.xml", mustParseDoc(t, `<r><a/></r>`))
	if _, err := e.Prepare(`doc("nope.xml")//a`, plan.Options{}); err == nil {
		t.Error("Prepare accepted a query over an unregistered document")
	}
}

// TestPreparedRunContext: a canceled context aborts the run without
// poisoning the prepared statement for later runs.
func TestPreparedRunContext(t *testing.T) {
	e := bibEngine(t)
	p, err := e.Prepare(`//book/title`, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunContext(ctx); err == nil {
		t.Error("RunContext with canceled context succeeded")
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatalf("Run after canceled run: %v", err)
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("result nodes = %d, want 4", len(res.Nodes))
	}
}

// TestPreparedMatchesUnprepared is the differential check: across the
// strategy variants, Prepared.Run (warm cache) and a fresh EvalOptions
// produce byte-identical canonical results.
func TestPreparedMatchesUnprepared(t *testing.T) {
	queries := []string{
		`//book/title`,
		`//book[author/last="Knuth"]/title`,
		`for $b in doc("bib.xml")//book order by $b/title descending return <t>{ $b/title }</t>`,
		`//book/title/text()`,
	}
	for _, v := range strategyVariants(false) {
		for _, q := range queries {
			e := bibEngine(t)
			want, err := e.EvalOptions(q, v.opts)
			if err != nil {
				if v.opts.Strategy == plan.Twig && strings.Contains(err.Error(), "TwigStack") {
					continue
				}
				t.Fatalf("variant %s, query %q: %v", v.name, q, err)
			}
			p, err := e.Prepare(q, v.opts)
			if err != nil {
				t.Fatalf("variant %s, query %q: Prepare: %v", v.name, q, err)
			}
			for run := 0; run < 2; run++ {
				got, err := p.Run()
				if err != nil {
					t.Fatalf("variant %s, query %q, run %d: %v", v.name, q, run, err)
				}
				if !got.Cached {
					t.Errorf("variant %s, query %q, run %d: prepared run missed the cache", v.name, q, run)
				}
				if canonicalResult(got) != canonicalResult(want) {
					t.Errorf("variant %s, query %q: prepared result diverges\n--- prepared ---\n%s--- direct ---\n%s",
						v.name, q, canonicalResult(got), canonicalResult(want))
				}
			}
		}
	}
}

// TestEvalAllDocsWarmCache: pin memoization keeps the per-document
// snapshots (and so their versions) stable across EvalAllDocs calls,
// letting the second fan-out run entirely warm.
func TestEvalAllDocsWarmCache(t *testing.T) {
	e := New()
	e.Add("one.xml", mustParseDoc(t, `<r><a/><a/></r>`))
	e.Add("two.xml", mustParseDoc(t, `<r><a/></r>`))
	for call := 0; call < 2; call++ {
		results, err := e.EvalAllDocs(`//a`, plan.Options{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("call %d, doc %s: %v", call, r.URI, r.Err)
			}
			if call == 1 && !r.Result.Cached {
				t.Errorf("second EvalAllDocs call missed the cache for %s", r.URI)
			}
		}
	}
}

// TestPreparedRaceWithLoad interleaves Prepared.Run with concurrent
// Adds under the race detector. Each reader brackets its run with the
// writer's published progress: the snapshot the run executed against
// must lie between the two observations, proving no stale plan (or
// stale catalog) ever serves a result.
func TestPreparedRaceWithLoad(t *testing.T) {
	e := New()
	docWith := func(n int) *xmltree.Document {
		var sb strings.Builder
		sb.WriteString("<r>")
		for i := 0; i < n; i++ {
			sb.WriteString("<a/>")
		}
		sb.WriteString("</r>")
		return mustParseDoc(t, sb.String())
	}
	e.Add("d", docWith(1))
	p, err := e.Prepare(`//a`, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const maxItems = 40
	var published atomic.Int64
	published.Store(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 2; n <= maxItems; n++ {
			e.Add("d", docWith(n))
			published.Store(int64(n))
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for published.Load() < maxItems {
				lo := published.Load()
				res, err := p.Run()
				if err != nil {
					t.Errorf("Run during load: %v", err)
					return
				}
				hi := published.Load()
				got := int64(len(res.Nodes))
				// published trails the Add by one step, so the snapshot may
				// already hold the write in flight when hi was read.
				if got < lo || got > hi+1 {
					t.Errorf("run saw %d nodes; catalog bounds were [%d, %d]", got, lo, hi+1)
					return
				}
			}
		}()
	}
	wg.Wait()
}
