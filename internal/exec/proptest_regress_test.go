package exec

import (
	"strings"
	"testing"

	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

// Minimized regressions for bugs found by the randomized differential
// harness (internal/proptest). Each case pins a planner-vs-oracle
// divergence; the doc and query are shrunk by hand from the harness's
// failing seed, noted per case.
var regressCases = []struct {
	name  string
	doc   string
	query string
}{
	{
		// Harness seed 0x19f5cafdaa: PositionFilter counts instances
		// emitted by the matcher (after the @id existence check), while
		// the oracle applies [1] to all d elements and only then keeps
		// those with @id. Queries mixing a positional predicate with
		// other filters now fall back to the navigational evaluator.
		name:  "position-then-attr-tail",
		doc:   `<r><d/><d id="7"/></r>`,
		query: `//d[1]/@id`,
	},
	{
		// Same shape with the predicate order flipped: the position
		// test must gate the candidate list before other predicates
		// narrow it, so position-after-predicate is outside the
		// fragment.
		name:  "predicate-then-position",
		doc:   `<r><d id="7"/><d id="8"/><d/></r>`,
		query: `//d[@id][2]`,
	},
	{
		// Harness seed 0x4f1c6de1d0: a comparison on an optional
		// let-bound path must drop rows where the path is empty (an
		// empty operand makes every comparison false). The planner
		// kept such rows because the matcher never evaluated the
		// constraint on the unmatched optional vertex; the where
		// endpoint now upgrades its ancestor edges to mandatory.
		name:  "comparison-on-empty-let-path",
		doc:   `<r><a><b id="10"/></a><a><b id="3"/></a><a/></r>`,
		query: `for $x in doc("d")//a let $l := $x/b where $l/@id != "10" return $x`,
	},
	{
		// Harness seed 0x216064b256: an exists() test over a let-bound
		// path grew a mandatory subtree under the binding vertex, so the
		// binding only projected the instances that satisfied the test.
		// The oracle binds the whole sequence and treats the condition
		// existentially; condition paths anchored at let variables are
		// now inlined through the definition into a parallel branch.
		name:  "exists-on-let-path-keeps-full-binding",
		doc:   `<r><d><a><b/></a><a/><a>t</a></d></r>`,
		query: `for $x in doc("d")//d let $l := $x/a where exists($l//b) return $l`,
	},
	{
		// Same class via a value comparison: $l must bind both b
		// children even though only one satisfies the inequality.
		name:  "comparison-on-let-path-keeps-full-binding",
		doc:   `<r><a><b id="10"/><b id="3"/></a></r>`,
		query: `for $x in doc("d")//a let $l := $x/b where $l/@id != "10" return $l`,
	},
	{
		// Harness seed 0xc97b5606e6: a bug in the ORACLE, not the
		// planner. For a bare variable operand like $l/@k, the
		// navigational evaluator's attribute-existence filter compacted
		// the resolved node slice in place — but that slice IS the
		// environment's stored $l binding, so the binding's backing
		// array was scribbled over ([a1,a2] keeping a2 became [a2,a2]).
		// The filter now copies.
		name:  "oracle-attr-filter-must-not-alias-binding",
		doc:   `<r><b><a/><a k="y"/></b></r>`,
		query: `for $x in doc("d")//b let $l := $x/a where $l/@k > "x" return $l`,
	},
	{
		// Harness seed 0xec1778a75e: the σ_position stream selection
		// was wired above the cross-component join, so position()
		// counted joined (x, y) pairs instead of $x's own instances.
		// The filter now wraps the target's scan before any join.
		name:  "position-under-join",
		doc:   `<r><b><a/></b><c><b><a/></b><b/></c></r>`,
		query: `for $x in doc("d")//b[1], $y in doc("d")//c/b where $x << $y return $x/a`,
	},
}

// TestHarnessRegressions replays the minimized harness findings across
// every strategy variant against the navigational oracle.
func TestHarnessRegressions(t *testing.T) {
	for _, tc := range regressCases {
		t.Run(tc.name, func(t *testing.T) {
			doc, err := xmltree.Parse(strings.NewReader(tc.doc))
			if err != nil {
				t.Fatalf("parse doc: %v", err)
			}
			e := New()
			e.Add("d", doc)
			oracle, err := e.EvalOptions(tc.query, plan.Options{Strategy: plan.Navigational})
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			want := Canonical(oracle)
			for _, v := range []struct {
				name string
				opts plan.Options
			}{
				{"auto", plan.Options{}},
				{"bounded-nl", plan.Options{Strategy: plan.BoundedNL}},
				{"naive-nl", plan.Options{Strategy: plan.NaiveNL}},
				{"cost-based", plan.Options{Strategy: plan.CostBased}},
				{"merged-scans", plan.Options{MergeScans: true}},
			} {
				res, err := e.EvalOptions(tc.query, v.opts)
				if err != nil {
					t.Errorf("variant %s: %v", v.name, err)
					continue
				}
				if got := Canonical(res); got != want {
					t.Errorf("variant %s disagrees with oracle\n--- got ---\n%s--- want ---\n%s", v.name, got, want)
				}
			}
		})
	}
}
