package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"blossomtree/internal/flwor"
	"blossomtree/internal/index"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

// BatchResult pairs one query of a batch with its outcome.
type BatchResult struct {
	Query  string
	Result *Result
	Err    error
}

// EvalBatch evaluates a batch of queries concurrently across a worker
// pool of at most workers goroutines (workers <= 0 means GOMAXPROCS)
// and returns one result per query, in input order. All evaluations of
// one call share the engine snapshot current when EvalBatch was called,
// so the batch sees a consistent document catalog even while other
// goroutines Add documents.
func (e *Engine) EvalBatch(srcs []string, opts plan.Options, workers int) []BatchResult {
	out := make([]BatchResult, len(srcs))
	if len(srcs) == 0 {
		return out
	}
	snap := e.snapshot()
	run := func(i int) {
		// Distinct query IDs per batch entry, as in EvalAllDocs.
		qopts := opts
		if qopts.QueryID != "" {
			qopts.QueryID = fmt.Sprintf("%s-%d", qopts.QueryID, i)
		}
		res, err := evalSource(snap, srcs[i], qopts)
		out[i] = BatchResult{Query: srcs[i], Result: res, Err: err}
	}
	forEachIndex(len(srcs), workers, run)
	return out
}

// DocResult pairs one registered document of an EvalAllDocs call with
// the query's outcome on it.
type DocResult struct {
	URI    string
	Result *Result
	Err    error
}

// EvalAllDocs evaluates one query independently against every
// registered document, fanning the per-document evaluations out across
// at most workers goroutines (workers <= 0 means GOMAXPROCS). Inside
// each evaluation every doc("…") URI and absolute path resolves to the
// document under evaluation, which turns a single-document query into a
// catalog-wide scan — the multi-document shape planContext otherwise
// rejects. Results are keyed by URI and returned sorted by URI.
func (e *Engine) EvalAllDocs(src string, opts plan.Options, workers int) ([]DocResult, error) {
	expr, err := flwor.Parse(src)
	if err != nil {
		return nil, err
	}
	snap := e.snapshot()
	uris := make([]string, 0, len(snap.docs)+len(snap.storeURIs))
	for u := range snap.docs {
		uris = append(uris, u)
	}
	for u := range snap.storeURIs {
		if _, ok := snap.docs[u]; !ok {
			uris = append(uris, u)
		}
	}
	sort.Strings(uris)
	out := make([]DocResult, len(uris))
	run := func(i int) {
		// Per-document evaluations get distinct query IDs even when the
		// caller pinned one: a shared ID would make the trace store and
		// query log collapse the fan-out into one record.
		docOpts := opts
		if docOpts.QueryID != "" {
			docOpts.QueryID = fmt.Sprintf("%s-%s", docOpts.QueryID, uris[i])
		}
		res, evalErr := evalExpr(snap.pin(uris[i]), expr, docOpts, src)
		out[i] = DocResult{URI: uris[i], Result: res, Err: evalErr}
	}
	forEachIndex(len(uris), workers, run)
	return out, nil
}

// evalSource parses and evaluates one query against a fixed snapshot.
func evalSource(s *snapshot, src string, opts plan.Options) (*Result, error) {
	expr, err := flwor.Parse(src)
	if err != nil {
		return nil, err
	}
	return evalExpr(s, expr, opts, src)
}

// pin derives a single-document snapshot: every URI resolves to the
// pinned document (the single-document fallback of resolve), carrying
// over its statistics and index. Pins are memoized per parent snapshot
// so repeated EvalAllDocs calls over one catalog reuse the same derived
// snapshots — and therefore the same snapshot versions, which is what
// lets the plan cache serve fan-out evaluations warm.
func (s *snapshot) pin(uri string) *snapshot {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	if p, ok := s.pinned[uri]; ok {
		return p
	}
	p := &snapshot{
		version: snapshotVersions.Add(1),
		docs:    map[string]*xmltree.Document{},
		stats:   map[string]xmltree.Stats{},
		indexes: map[string]*index.TagIndex{},
		first:   uri,
	}
	if d, ok := s.docs[uri]; ok {
		p.docs[uri] = d
		p.stats[uri] = s.stats[uri]
		if ix, ok := s.indexes[uri]; ok {
			p.indexes[uri] = ix
		}
	} else if s.store != nil {
		// A store-backed document pins lazily too: the derived snapshot
		// carries the store with just this URI visible, so the document
		// only materializes if the pinned evaluation actually runs.
		p.store = s.store
		p.storeURIs = map[string]struct{}{uri: {}}
	}
	if s.pinned == nil {
		s.pinned = make(map[string]*snapshot)
	}
	s.pinned[uri] = p
	return p
}

// forEachIndex runs fn(0..n-1) across a pool of at most workers
// goroutines and waits for completion. fn must write only to its own
// index's slot.
func forEachIndex(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
