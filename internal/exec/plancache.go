package exec

// The compiled-plan cache: the compile pipeline (FLWOR → BlossomTree →
// NoK decomposition → physical plan) is deterministic in the query
// text, the planning options and the catalog snapshot, so its output is
// cached process-wide and shared by every evaluation path — Eval*,
// EvalBatch workers, EvalAllDocs pins, Prepared.Run and the daemon's
// POST /query all reach it through evalExpr.
//
// Keying by snapshot version makes invalidation free: Add publishes a
// new version, so entries compiled against the old catalog simply stop
// matching and age out of the LRU. A stale plan therefore cannot
// execute — there is no lock to take and nothing to flush on the load
// path. The cached entry is an immutable template: runs Fork it, so the
// template's skeleton is shared while all per-run operator state stays
// private to each execution.

import (
	"container/list"
	"fmt"
	"sync"

	"blossomtree/internal/core"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/xpath"
)

// planCacheCapacity bounds the shared cache. Entries are plan skeletons
// (query, decomposition, explain notes) — small next to documents — so
// the bound guards against unbounded distinct-query streams, not
// memory pressure from normal serving.
const planCacheCapacity = 512

// planKey identifies one cacheable compilation.
type planKey struct {
	// version is the catalog snapshot the plan was compiled against.
	version uint64
	// hash is the sha256 query-text hash the telemetry layer also logs
	// (obs.QueryHash), so cache keys and query-log records correlate.
	hash string
	// fp fingerprints the planning-time options (strategy, merged
	// scans); per-run options (parallelism, budgets, analyze, telemetry)
	// do not shape the template and stay out of the key.
	fp string
}

// planFingerprint renders the planning-time option fingerprint.
func planFingerprint(opts plan.Options) string {
	return fmt.Sprintf("%d|%t", opts.Strategy, opts.MergeScans)
}

// compiled is one immutable cache entry.
type compiled struct {
	q      *core.Query
	isPath bool
	// textTail is the trailing text() step compile peeled off a bare
	// path; projectPathResult re-applies it to the matched elements.
	textTail *xpath.Step
	// tmpl is the pristine plan template. It is never executed; every
	// run (cached or not) Forks it.
	tmpl *plan.Plan
	// nav marks a navigational-fallback entry: the query parses but lies
	// outside the BlossomTree fragment (core.ErrOutsideFragment), so every
	// run evaluates it with the navigational evaluator instead of a plan.
	// The routing decision itself is what the cache holds — q and tmpl are
	// nil — so repeated fallback queries skip recompilation and report
	// Cached like planned ones.
	nav bool
	// navReason is the fragment violation that forced the fallback,
	// surfaced by EXPLAIN.
	navReason string
	// replanned marks a template recompiled from feedback history after
	// its estimates drifted from observed actuals; fbDrift is the
	// est/act ratio that triggered it. Both flow into the query log and
	// the Result so callers can see the loop act.
	replanned bool
	fbDrift   float64
}

// planCache is a mutex-guarded LRU. The lock is held only for the map
// and list bookkeeping of a lookup; compilation happens outside it, so
// concurrent misses on the same key may compile twice and the later put
// wins — harmless, and cheaper than holding the lock across planning.
type planCache struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recently used; values are *planCacheEntry
	m   map[planKey]*list.Element
}

type planCacheEntry struct {
	key planKey
	c   *compiled
}

// sharedPlanCache is the process-wide cache behind every engine.
var sharedPlanCache = newPlanCache(planCacheCapacity)

func newPlanCache(capacity int) *planCache {
	// Pre-register the counters so the Prometheus exposition carries all
	// three names from the first scrape, hit or not.
	obs.Default.Counter(obs.MetricPlanCacheHits)
	obs.Default.Counter(obs.MetricPlanCacheMisses)
	obs.Default.Counter(obs.MetricPlanCacheEvictions)
	return &planCache{
		cap: capacity,
		lru: list.New(),
		m:   make(map[planKey]*list.Element),
	}
}

// get returns the cached compilation for the key, counting the hit or
// miss into the process-wide registry.
func (pc *planCache) get(k planKey) (*compiled, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.m[k]
	if !ok {
		obs.Default.Add(obs.MetricPlanCacheMisses, 1)
		return nil, false
	}
	pc.lru.MoveToFront(el)
	obs.Default.Add(obs.MetricPlanCacheHits, 1)
	return el.Value.(*planCacheEntry).c, true
}

// put installs a compilation, evicting least-recently-used entries past
// capacity.
func (pc *planCache) put(k planKey, c *compiled) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.m[k]; ok {
		pc.lru.MoveToFront(el)
		el.Value.(*planCacheEntry).c = c
		return
	}
	pc.m[k] = pc.lru.PushFront(&planCacheEntry{key: k, c: c})
	for pc.lru.Len() > pc.cap {
		el := pc.lru.Back()
		pc.lru.Remove(el)
		delete(pc.m, el.Value.(*planCacheEntry).key)
		obs.Default.Add(obs.MetricPlanCacheEvictions, 1)
	}
}

// len reports the current entry count.
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

// reset drops every entry; the hit/miss/eviction counters are
// monotonic and stay untouched.
func (pc *planCache) reset() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.lru.Init()
	pc.m = make(map[planKey]*list.Element)
}

// ResetPlanCache empties the process-wide plan cache. The benchmark
// harness uses it to re-measure cold compilation on an otherwise warm
// process; serving code has no reason to call it — invalidation is the
// snapshot version's job.
func ResetPlanCache() { sharedPlanCache.reset() }
