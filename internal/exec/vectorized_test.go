package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"blossomtree/internal/gov"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
)

// vexecChainDoc builds a document whose //a//b result has exactly n
// rows (one <a> holding n <b/> children, plus a decoy subtree).
func vexecChainDoc(n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Start("r")
	b.Start("c")
	b.Start("b")
	b.End()
	b.End()
	b.Start("a")
	for i := 0; i < n; i++ {
		b.Start("b")
		b.End()
	}
	b.End()
	b.End()
	return b.MustDone()
}

// TestVectorizedBatchBoundaries runs result sets sized exactly at the
// batch edges (0, 1, 1023, 1024, 1025, 2049) through the whole engine
// under the vectorized strategy and requires byte-identical canonical
// results against the navigational oracle — both as a bare path and
// through a FLWOR iteration.
func TestVectorizedBatchBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 1023, 1024, 1025, 2*1024 + 1} {
		e := New()
		e.Add("d", vexecChainDoc(n))
		for _, q := range []string{`//a//b`, `for $x in doc("d")//a//b return $x`} {
			want, err := e.EvalOptions(q, plan.Options{Strategy: plan.Navigational})
			if err != nil {
				t.Fatalf("n=%d %q navigational: %v", n, q, err)
			}
			got, err := e.EvalOptions(q, plan.Options{Strategy: plan.Vectorized})
			if err != nil {
				t.Fatalf("n=%d %q vectorized: %v", n, q, err)
			}
			if strings.HasPrefix(q, "//") && len(got.Nodes) != n {
				// Nodes is the path-query projection; FLWOR results land
				// in instances/environments and are covered by Canonical.
				t.Errorf("n=%d %q: vectorized returned %d nodes", n, q, len(got.Nodes))
			}
			if Canonical(got) != Canonical(want) {
				t.Errorf("n=%d %q: vectorized disagrees with navigational\n%s", n, q, got.Plan.ExplainTree(true))
			}
		}
	}
}

// TestVectorizedBudgetAbortMidBatch exhausts a node budget inside the
// columnar pipeline and asserts the typed abort surfaces with the
// partial per-operator stats recorded up to the abort (the partial
// EXPLAIN ANALYZE), including the batch counters.
func TestVectorizedBudgetAbortMidBatch(t *testing.T) {
	e := New()
	e.Add("d", vexecChainDoc(3000))
	_, err := e.EvalOptions(`//a//b`, plan.Options{
		Strategy: plan.Vectorized,
		Budget:   gov.Budget{MaxNodes: 1500},
	})
	if err == nil {
		t.Fatal("expected a budget abort")
	}
	if !errors.Is(err, gov.ErrBudgetExceeded) {
		t.Fatalf("expected ErrBudgetExceeded, got %v", err)
	}
	st, ok := gov.StatsOf(err)
	if !ok || st == nil {
		t.Fatalf("abort error carries no partial stats: %v", err)
	}
	if st.TotalScanned() == 0 {
		t.Errorf("partial stats scanned nothing:\n%s", st.Render(true))
	}
	render := st.Render(true)
	if !strings.Contains(render, "VecScan") {
		t.Errorf("partial stats tree has no vectorized operators:\n%s", render)
	}
	if !strings.Contains(render, "batches=") {
		t.Errorf("partial stats tree lost the batch counters:\n%s", render)
	}
}

// TestVectorizedFallback pins the totality contract: queries outside
// the chain fragment run under the Vectorized strategy anyway, via a
// Build-time fallback recorded as an EXPLAIN note — even though the
// request was explicit.
func TestVectorizedFallback(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{Tags: []string{"a", "b", "c"}, MaxNodes: 80, MaxDepth: 6})
	e := New()
	e.Add("d", doc)
	for _, q := range []string{`//a[b]//c`, `for $x in doc("d")//a, $y in doc("d")//b where $x << $y return $y`} {
		want, err := e.EvalOptions(q, plan.Options{Strategy: plan.Navigational})
		if err != nil {
			t.Fatalf("%q navigational: %v", q, err)
		}
		got, err := e.EvalOptions(q, plan.Options{Strategy: plan.Vectorized})
		if err != nil {
			t.Fatalf("%q vectorized (should fall back, not error): %v", q, err)
		}
		if Canonical(got) != Canonical(want) {
			t.Errorf("%q: fallback result disagrees with navigational", q)
		}
		if expl := got.Plan.Explain(); !strings.Contains(expl, "vectorized executor incompatible") {
			t.Errorf("%q: EXPLAIN lacks the fallback note:\n%s", q, expl)
		}
		if got.Plan.Strategy == plan.Vectorized {
			t.Errorf("%q: plan still claims the vectorized strategy after fallback", q)
		}
	}
}

// TestVectorizedPlanCacheWarm asserts the vectorized strategy flows
// through the plan cache untouched: a repeat evaluation is a cache hit
// with byte-identical results.
func TestVectorizedPlanCacheWarm(t *testing.T) {
	e := New()
	e.Add("d", vexecChainDoc(100))
	cold, err := e.EvalOptions(`//a//b`, plan.Options{Strategy: plan.Vectorized})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.EvalOptions(`//a//b`, plan.Options{Strategy: plan.Vectorized})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second vectorized evaluation missed the plan cache")
	}
	if Canonical(cold) != Canonical(warm) {
		t.Error("warm vectorized result differs from cold")
	}
	if expl := warm.Plan.Explain(); !strings.Contains(expl, "plan cache: hit") {
		t.Errorf("warm EXPLAIN lacks the cache-hit header:\n%s", expl)
	}
}

// TestVectorizedConcurrentQueryAddRace drives concurrent vectorized
// queries against concurrent document adds under the race detector: the
// arena slab pool is shared process-wide, so this asserts recycled
// batch memory never aliases a live query's batches (each query must
// see an internally consistent, correctly sized result for whichever
// snapshot it pinned).
func TestVectorizedConcurrentQueryAddRace(t *testing.T) {
	e := New()
	e.Add("d", vexecChainDoc(1024+13))
	var wg sync.WaitGroup
	const queriers = 4
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				res, err := e.EvalOptions(`//a//b`, plan.Options{Strategy: plan.Vectorized})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Every snapshot's chain doc has n >= 1024 b-rows under
				// the single a; whichever snapshot was pinned, all rows
				// must be b-elements under an a ancestor — torn batches
				// from a recycled slab would break this.
				if len(res.Nodes) < 1024 {
					t.Errorf("worker %d: result torn: %d rows", w, len(res.Nodes))
					return
				}
				for _, n := range res.Nodes {
					if n.Tag != "b" || n.Parent == nil || n.Parent.Tag != "a" {
						t.Errorf("worker %d: alien row tag=%s start=%d", w, n.Tag, n.Start)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			e.Add(fmt.Sprintf("extra-%d", i), vexecChainDoc(1024+14+i))
		}
	}()
	wg.Wait()
}
