package exec

import (
	"fmt"
	"sort"
	"strings"

	"blossomtree/internal/xmltree"
)

// Canonical serializes a result into a canonical byte form: constructed
// output first, then node results, then environment rows with variables
// in sorted order. Two equivalent evaluations must produce identical
// strings, so differential harnesses (the in-package strategy matrix and
// the proptest package's randomized runs) compare results with ==.
func Canonical(res *Result) string {
	var sb strings.Builder
	if res.Output != nil {
		sb.WriteString("output: ")
		sb.WriteString(xmltree.Serialize(res.Output.Root, xmltree.WriteOptions{}))
		sb.WriteByte('\n')
	}
	for _, n := range res.Nodes {
		sb.WriteString("node: ")
		sb.WriteString(xmltree.Serialize(n, xmltree.WriteOptions{}))
		sb.WriteByte('\n')
	}
	for i, env := range res.Envs {
		names := make([]string, 0, len(env))
		for v := range env {
			names = append(names, v)
		}
		sort.Strings(names)
		fmt.Fprintf(&sb, "row %d:", i)
		for _, v := range names {
			vals := make([]string, len(env[v]))
			for k, n := range env[v] {
				vals[k] = xmltree.Serialize(n, xmltree.WriteOptions{})
			}
			fmt.Fprintf(&sb, " $%s=[%s]", v, strings.Join(vals, ","))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
