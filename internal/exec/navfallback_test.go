package exec

import (
	"strings"
	"testing"

	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

const navFallbackDoc = `<lib>
  <shelf id="s1">
    <book year="1994"><title>Maximum Security</title><author><last>Anon</last></author></book>
    <book year="2003"><title>TeX Book</title><author><last>Knuth</last></author></book>
    <book><title>Untitled</title></book>
  </shelf>
  <shelf id="s2">
    <book year="1984"><title>Art</title></book>
  </shelf>
</lib>`

func navFallbackEngine(t *testing.T) *Engine {
	t.Helper()
	doc, err := xmltree.Parse(strings.NewReader(navFallbackDoc))
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	e.Add("d", doc)
	return e
}

// navFallbackQueries lists queries that parse but lie outside the
// BlossomTree fragment, one per fallback route: function predicates,
// non-rewritable parent/ancestor steps, positional variables, and
// positional predicates under nested //-cuts.
var navFallbackQueries = []string{
	`//book[contains(title, "Book")]`,
	`//book[count(author) = 1]`,
	`//title/parent::book`,
	`//last/ancestor::shelf`,
	`for $b at $i in doc("d")//book where $i < 3 return $b`,
	`//shelf//book[1]//last`,
}

// TestNavFallbackEvalAndCache checks that each fragment-outside query
// evaluates through the navigational fallback, matches a forced
// navigational run, and reports a plan-cache hit on the second
// evaluation.
func TestNavFallbackEvalAndCache(t *testing.T) {
	for _, q := range navFallbackQueries {
		ResetPlanCache()
		e := navFallbackEngine(t)
		oracle, err := e.EvalOptions(q, plan.Options{Strategy: plan.Navigational})
		if err != nil {
			t.Fatalf("%q: navigational oracle: %v", q, err)
		}
		cold, err := e.Eval(q)
		if err != nil {
			t.Fatalf("%q: cold fallback eval: %v", q, err)
		}
		if cold.Plan != nil {
			t.Errorf("%q: expected navigational fallback, got a plan", q)
		}
		if cold.Cached {
			t.Errorf("%q: cold evaluation reported a cache hit", q)
		}
		if got, want := Canonical(cold), Canonical(oracle); got != want {
			t.Errorf("%q: fallback result differs from navigational oracle\ngot:\n%s\nwant:\n%s", q, got, want)
		}
		warm, err := e.Eval(q)
		if err != nil {
			t.Fatalf("%q: warm fallback eval: %v", q, err)
		}
		if !warm.Cached {
			t.Errorf("%q: warm evaluation missed the plan cache", q)
		}
		if Canonical(warm) != Canonical(cold) {
			t.Errorf("%q: warm result differs from cold result", q)
		}
	}
}

// TestNavFallbackExplain checks that EXPLAIN surfaces the fallback
// strategy and its reason instead of erroring.
func TestNavFallbackExplain(t *testing.T) {
	e := navFallbackEngine(t)
	for _, q := range navFallbackQueries {
		out, err := e.Explain(q)
		if err != nil {
			t.Fatalf("%q: explain: %v", q, err)
		}
		if !strings.HasPrefix(out, "plan strategy: XH\n") {
			t.Errorf("%q: explain should lead with the XH strategy:\n%s", q, out)
		}
		if !strings.Contains(out, "navigational fallback: ") ||
			!strings.Contains(out, "outside the BlossomTree fragment") {
			t.Errorf("%q: explain should state the fallback reason:\n%s", q, out)
		}
	}
}

// TestNavFallbackExplainAnalyze checks the analyze variant also runs the
// query and reports the row count.
func TestNavFallbackExplainAnalyze(t *testing.T) {
	e := navFallbackEngine(t)
	out, err := e.ExplainAnalyze(`//book[contains(title, "Book")]`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "navigational fallback") || !strings.Contains(out, "rows: 1") {
		t.Errorf("explain analyze output:\n%s", out)
	}
}

// TestResidualFunctionConditions checks the complementary route:
// function calls in where-conditions stay on the planned path (the
// pattern tree runs as usual) and evaluate as residual conditions, so
// they do NOT fall back — and still agree with the oracle.
func TestResidualFunctionConditions(t *testing.T) {
	queries := []string{
		`for $b in doc("d")//book where string-join($b/title, "|") = "Untitled" return $b`,
		`for $b in doc("d")//book where contains($b/title, "Book") return $b`,
		`for $b in doc("d")//book where count($b/author) = 1 return $b/title`,
		`for $b in doc("d")//book where number($b/@year) > 1990 return $b`,
	}
	e := navFallbackEngine(t)
	for _, q := range queries {
		oracle, err := e.EvalOptions(q, plan.Options{Strategy: plan.Navigational})
		if err != nil {
			t.Fatalf("%q: navigational oracle: %v", q, err)
		}
		res, err := e.Eval(q)
		if err != nil {
			t.Fatalf("%q: planned eval: %v", q, err)
		}
		if res.Plan == nil {
			t.Errorf("%q: function where-conditions should stay planned (residual), not fall back", q)
		}
		if got, want := Canonical(res), Canonical(oracle); got != want {
			t.Errorf("%q: planned+residual result differs from oracle\ngot:\n%s\nwant:\n%s", q, got, want)
		}
	}
}

// TestNestedPositionalFallsBack is the regression test for the planner
// bug where a positional predicate under a nested //-cut returned a
// runtime error: it now routes to the navigational fallback and agrees
// with the oracle.
func TestNestedPositionalFallsBack(t *testing.T) {
	doc, err := xmltree.Parse(strings.NewReader(
		`<r><a><b><c/><b><c/></b></b><b><c/></b></a><a><b/></a></r>`))
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	e.Add("d", doc)
	q := `//a//b[2]//c`
	oracle, err := e.EvalOptions(q, plan.Options{Strategy: plan.Navigational})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.EvalStrategy(q, plan.BoundedNL)
	if err != nil {
		t.Fatalf("nested positional should fall back, not error: %v", err)
	}
	if res.Plan != nil {
		t.Error("expected navigational fallback, got a plan")
	}
	if Canonical(res) != Canonical(oracle) {
		t.Errorf("fallback disagrees with oracle\ngot:\n%s\nwant:\n%s", Canonical(res), Canonical(oracle))
	}
}
