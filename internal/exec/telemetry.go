package exec

// Query-stream telemetry: every evaluation — Eval, EvalBatch workers,
// EvalAllDocs fan-out — flows through evalExpr, so the hooks here give
// the CLI, the bench harness and the blossomd daemon one shared
// pipeline: a latency observation into the process-wide
// query-duration histogram, a span-tree trace derived from the plan's
// OpStats into the trace store, and (when a logger is configured) a
// structured query-log record with slow-query EXPLAIN ANALYZE capture.

import (
	"fmt"
	"sync/atomic"
	"time"

	"blossomtree/internal/feedback"
	"blossomtree/internal/gov"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
)

var (
	queryIDSeq atomic.Uint64
	// queryIDEpoch distinguishes processes: IDs stay unique across
	// daemon restarts, so a stale /trace URL cannot alias a new query.
	queryIDEpoch = fmt.Sprintf("%08x", uint32(time.Now().UnixNano()))
)

// NewQueryID returns a process-unique query identifier ("q-<epoch>-<n>").
func NewQueryID() string {
	return fmt.Sprintf("q-%s-%06d", queryIDEpoch, queryIDSeq.Add(1))
}

// telemetry accumulates one evaluation's observable facts; evalExpr
// fills the fields in as the evaluation progresses and emit runs in
// its defer, on success, error and abort paths alike.
type telemetry struct {
	queryID  string
	src      string // query text when known ("" for pre-parsed exprs)
	strategy string // preset for navigational ("XH"); else read from plan
	plan     *plan.Plan
	gov      *gov.Governor
	cached   bool // plan served from the compiled-plan cache
	start    time.Time
	// navReason carries the fragment violation that routed the query to
	// the navigational fallback ("" for planned runs).
	navReason string
	// replanned/drift mark an evaluation running a feedback-replanned
	// template (estimates drifted from observed history by drift×).
	replanned bool
	drift     float64
}

// emit records the evaluation into the histogram, the trace store, and
// the query log.
func (t *telemetry) emit(opts plan.Options, res *Result, err error) {
	elapsed := time.Since(t.start)
	obs.Default.Histogram(obs.HistQueryDuration, obs.LatencyBuckets).ObserveDuration(elapsed)

	st := t.statsTree(err)
	obs.DefaultTraces.Put(t.queryID, obs.NewTrace(t.queryID, st, elapsed))

	// Feed the estimate→actual loop: every successful planned evaluation
	// records its per-operator est/act counters into the shared feedback
	// store, keyed by query hash (batch, all-docs and sharded paths all
	// reach this boundary, so they all contribute history).
	if err == nil && t.plan != nil {
		if ops := feedbackOps(t.plan.StatsTree()); len(ops) > 0 {
			feedback.Shared.Observe(obs.QueryHash(t.src), t.plan.Strategy.String(), elapsed.Seconds(), ops)
		}
	}

	if opts.Logger == nil {
		return
	}
	entry := obs.QueryLogEntry{
		QueryID:      t.queryID,
		QueryHash:    obs.QueryHash(t.src),
		Strategy:     t.strategyName(),
		Verdict:      gov.Verdict(err),
		NodesScanned: st.TotalScanned(),
		RowsOut:      rowsOut(res),
		Latency:      elapsed,
		Cached:       t.cached,
		NavReason:    t.navReason,
		Replanned:    t.replanned,
		Drift:        t.drift,
	}
	if st == nil {
		entry.NodesScanned = t.gov.NodesScanned()
	}
	if err != nil {
		entry.Err = err.Error()
	}
	if st != nil {
		entry.Explain = func() string { return st.Render(true) }
	}
	ql := obs.QueryLog{
		Logger:        opts.Logger,
		SlowThreshold: opts.SlowQueryThreshold,
		Registry:      obs.Default,
	}
	ql.Record(entry)
}

// statsTree returns the evaluation's operator-statistics tree: the
// executed plan's tree, or the partial tree a governed abort carries.
func (t *telemetry) statsTree(err error) *obs.OpStats {
	if t.plan != nil {
		if st := t.plan.StatsTree(); st != nil {
			return st
		}
	}
	if st, ok := gov.StatsOf(err); ok {
		return st
	}
	return nil
}

// strategyName resolves the executed strategy for the log record.
func (t *telemetry) strategyName() string {
	if t.plan != nil {
		return t.plan.Strategy.String()
	}
	return t.strategy
}

// rowsOut counts the evaluation's result rows: binding rows for FLWOR
// queries, result nodes for path queries.
func rowsOut(res *Result) int64 {
	if res == nil {
		return 0
	}
	if len(res.Envs) > 0 || res.Output != nil {
		return int64(len(res.Envs))
	}
	if len(res.Nodes) > 0 {
		return int64(len(res.Nodes))
	}
	return int64(len(res.Instances))
}
