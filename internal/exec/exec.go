// Package exec is the query executor: it ties the compiler (xpath,
// flwor, core), the planner (plan) and the algebra (nestedlist, nok,
// join) into an engine that evaluates queries end to end — the full data
// flow of the paper's Figure 2: XMLTree → NoK → NestedList →
// selection/projection/join → variable binding (Env) → construction.
//
// The executor owns the stages the algebra leaves abstract: binding
// variables from instance slots into environments, applying residual
// where-conditions that fall outside the conjunctive BlossomTree
// fragment, enforcing FLWOR iteration order and order by, and
// constructing the output XML document from return-clause constructors.
package exec

import (
	"fmt"
	"sort"

	"blossomtree/internal/core"
	"blossomtree/internal/flwor"
	"blossomtree/internal/index"
	"blossomtree/internal/naveval"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

// Config configures an Engine.
type Config struct {
	// BuildIndexes builds tag-name indexes for every added document,
	// enabling TwigStack plans and index-driven NoK scans. On by default
	// via New.
	BuildIndexes bool
}

// Engine evaluates queries over registered documents.
type Engine struct {
	cfg     Config
	docs    map[string]*xmltree.Document
	stats   map[string]xmltree.Stats
	indexes map[string]*index.TagIndex
	first   string
}

// New returns an engine with index building enabled.
func New() *Engine { return NewWithConfig(Config{BuildIndexes: true}) }

// NewWithConfig returns an engine with explicit configuration.
func NewWithConfig(cfg Config) *Engine {
	return &Engine{
		cfg:     cfg,
		docs:    make(map[string]*xmltree.Document),
		stats:   make(map[string]xmltree.Stats),
		indexes: make(map[string]*index.TagIndex),
	}
}

// Add registers a document under a URI (the name queries use in
// doc("…")). The first added document also serves absolute paths and
// unknown URIs, so single-document queries work regardless of the URI
// they mention.
func (e *Engine) Add(uri string, doc *xmltree.Document) {
	e.docs[uri] = doc
	e.stats[uri] = xmltree.ComputeStats(doc)
	if e.cfg.BuildIndexes {
		e.indexes[uri] = index.Build(doc)
	}
	if e.first == "" {
		e.first = uri
	}
}

// Document returns the document registered under uri (with the same
// first-document fallback queries use) and whether any document could be
// resolved.
func (e *Engine) Document(uri string) (*xmltree.Document, bool) {
	d, err := e.resolve(uri)
	return d, err == nil
}

// resolve maps a URI to a document, defaulting to the first document.
func (e *Engine) resolve(uri string) (*xmltree.Document, error) {
	if d, ok := e.docs[uri]; ok {
		return d, nil
	}
	if e.first != "" {
		return e.docs[e.first], nil
	}
	return nil, fmt.Errorf("exec: no document registered for %q", uri)
}

// Result is the outcome of a query evaluation.
type Result struct {
	Query     *core.Query
	Plan      *plan.Plan // nil for navigational evaluation
	Instances []*nestedlist.List
	// Envs holds one variable-binding row per surviving iteration, in
	// FLWOR iteration order (or order-by order).
	Envs []naveval.Env
	// Nodes is the node result of path queries (distinct, document
	// order).
	Nodes []*xmltree.Node
	// Output is the constructed XML document when the query has
	// constructors; nil otherwise.
	Output *xmltree.Document
}

// Eval parses and evaluates a query with the Auto strategy.
func (e *Engine) Eval(src string) (*Result, error) {
	return e.EvalOptions(src, plan.Options{})
}

// EvalStrategy evaluates with a forced join strategy.
func (e *Engine) EvalStrategy(src string, s plan.Strategy) (*Result, error) {
	return e.EvalOptions(src, plan.Options{Strategy: s})
}

// EvalOptions evaluates with full planner control.
func (e *Engine) EvalOptions(src string, opts plan.Options) (*Result, error) {
	expr, err := flwor.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.EvalExpr(expr, opts)
}

// EvalExpr evaluates a parsed query.
func (e *Engine) EvalExpr(expr flwor.Expr, opts plan.Options) (*Result, error) {
	if opts.Strategy == plan.Navigational {
		return e.evalNavigational(expr)
	}
	q, isPath, err := compile(expr)
	if err != nil {
		return nil, err
	}
	doc, ix, stats, err := e.planContext(q)
	if err != nil {
		return nil, err
	}
	if opts.Index == nil {
		opts.Index = ix
	}
	if opts.Stats.Nodes == 0 {
		opts.Stats = stats
	}
	pl, err := plan.Build(q, doc, opts)
	if err != nil {
		return nil, err
	}
	instances, err := pl.Execute()
	if err != nil {
		return nil, err
	}
	res := &Result{Query: q, Plan: pl, Instances: instances}
	if isPath {
		res.Nodes = projectPathResult(q, instances)
		return res, nil
	}
	if err := e.finishFLWOR(expr, q, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Explain compiles the query and renders its physical plan.
func (e *Engine) Explain(src string) (string, error) {
	expr, err := flwor.Parse(src)
	if err != nil {
		return "", err
	}
	q, _, err := compile(expr)
	if err != nil {
		return "", err
	}
	doc, ix, stats, err := e.planContext(q)
	if err != nil {
		return "", err
	}
	pl, err := plan.Build(q, doc, plan.Options{Index: ix, Stats: stats})
	if err != nil {
		return "", err
	}
	// Building the operator tree records the access-method notes.
	if _, err := pl.Operator(); err != nil {
		return "", err
	}
	return pl.Explain(), nil
}

// compile builds the BlossomTree query from a parsed expression.
func compile(expr flwor.Expr) (*core.Query, bool, error) {
	if pe, ok := expr.(*flwor.PathExpr); ok {
		q, err := core.FromPath(pe.Path)
		return q, true, err
	}
	q, err := core.FromFLWOR(expr)
	return q, false, err
}

// planContext picks the document all the query's pattern trees anchor at
// (the engine evaluates single-document queries; the paper's fragment
// likewise correlates paths over one input document).
func (e *Engine) planContext(q *core.Query) (*xmltree.Document, *index.TagIndex, xmltree.Stats, error) {
	var doc *xmltree.Document
	var uri string
	for u := range q.Tree.Docs {
		d, err := e.resolve(u)
		if err != nil {
			return nil, nil, xmltree.Stats{}, err
		}
		if doc != nil && d != doc {
			return nil, nil, xmltree.Stats{}, fmt.Errorf("exec: query spans multiple documents (%q, %q); evaluate per document", uri, u)
		}
		doc, uri = d, u
	}
	if doc == nil {
		return nil, nil, xmltree.Stats{}, fmt.Errorf("exec: query references no document")
	}
	ix := e.indexes[uri]
	if ix == nil {
		ix = e.indexes[e.first]
	}
	if ix != nil && ix.Document() != doc {
		ix = nil
	}
	st := e.stats[uri]
	if st.Nodes == 0 {
		st = e.stats[e.first]
	}
	return doc, ix, st, nil
}

// projectPathResult extracts the path query's node result: the "result"
// slot across all instances, distinct, in document order.
func projectPathResult(q *core.Query, ls []*nestedlist.List) []*xmltree.Node {
	rn, ok := q.Return.ByVar("result")
	if !ok {
		return nil
	}
	seen := map[*xmltree.Node]bool{}
	var out []*xmltree.Node
	for _, l := range ls {
		for _, n := range l.ProjectSlot(rn.Slot) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// finishFLWOR turns instances into environment rows, applies residual
// conditions, restores iteration order, applies order by, and constructs
// the output document.
func (e *Engine) finishFLWOR(expr flwor.Expr, q *core.Query, res *Result) error {
	f, err := topFLWOR(expr)
	if err != nil {
		return err
	}
	envs := make([]naveval.Env, 0, len(res.Instances))
	for _, l := range res.Instances {
		env := naveval.Env{}
		for name := range q.Vars {
			ns, err := l.ProjectVar(name)
			if err != nil {
				return err
			}
			env[name] = ns
		}
		envs = append(envs, env)
	}

	// Residual where-conditions (outside the conjunctive fragment).
	if len(q.Residual) > 0 {
		kept := envs[:0]
		for _, env := range envs {
			ok := true
			for _, c := range q.Residual {
				v, err := naveval.EvalCond(e.resolve, env, c)
				if err != nil {
					return err
				}
				if !v {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, env)
			}
		}
		envs = kept
	}

	// FLWOR iteration order: clause-major document order of the
	// for-variables.
	var forVars []string
	for _, cl := range f.Clauses {
		if cl.Kind == flwor.ForClause {
			forVars = append(forVars, cl.Var)
		}
	}

	// One row per for-variable combination: operators that enumerate
	// existential witnesses (TwigStack matches, per-pair joins over
	// predicate subtrees) may emit the same iteration several times.
	seen := make(map[string]bool, len(envs))
	dedup := envs[:0]
	for _, env := range envs {
		key := make([]byte, 0, 8*len(forVars))
		for _, v := range forVars {
			for _, n := range env[v] {
				s := n.Start
				for i := 0; i < 8; i++ {
					key = append(key, byte(s>>(i*8)))
				}
			}
			key = append(key, '|')
		}
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		dedup = append(dedup, env)
	}
	envs = dedup
	sort.SliceStable(envs, func(i, j int) bool {
		for _, v := range forVars {
			a, b := envs[i][v], envs[j][v]
			if len(a) == 0 || len(b) == 0 {
				continue
			}
			if a[0].Start != b[0].Start {
				return a[0].Start < b[0].Start
			}
		}
		return false
	})

	if f.OrderBy != nil {
		keys := make([]string, len(envs))
		for i, env := range envs {
			ns, err := naveval.EvalPathEnv(e.resolve, env, f.OrderBy)
			if err != nil {
				return err
			}
			if len(ns) > 0 {
				keys[i] = xmltree.StringValue(ns[0])
			}
		}
		idx := make([]int, len(envs))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		sorted := make([]naveval.Env, len(envs))
		for i, j := range idx {
			sorted[i] = envs[j]
		}
		envs = sorted
	}
	res.Envs = envs
	return e.constructOutput(expr, f, res)
}

// evalNavigational runs the whole query through the navigational
// evaluator (the XH stand-in).
func (e *Engine) evalNavigational(expr flwor.Expr) (*Result, error) {
	if pe, ok := expr.(*flwor.PathExpr); ok {
		// Resolve against the path's own document.
		uri := ""
		if pe.Path.Source.Kind == xpath.SourceDoc {
			uri = pe.Path.Source.Doc
		}
		doc, err := e.resolve(uri)
		if err != nil {
			return nil, err
		}
		nodes, err := naveval.EvalPath(doc, pe.Path)
		if err != nil {
			return nil, err
		}
		return &Result{Nodes: nodes}, nil
	}
	f, err := topFLWOR(expr)
	if err != nil {
		return nil, err
	}
	envs, err := naveval.EvalFLWOR(e.resolve, f)
	if err != nil {
		return nil, err
	}
	res := &Result{Envs: envs}
	return res, e.constructOutput(expr, f, res)
}

// topFLWOR unwraps constructors down to the single FLWOR body.
func topFLWOR(expr flwor.Expr) (*flwor.FLWOR, error) {
	switch t := expr.(type) {
	case *flwor.FLWOR:
		return t, nil
	case *flwor.ElemCtor:
		for _, c := range t.Content {
			if f, err := topFLWOR(c); err == nil {
				return f, nil
			}
		}
		return nil, fmt.Errorf("exec: constructor contains no FLWOR expression")
	default:
		return nil, fmt.Errorf("exec: %T is not a FLWOR expression", expr)
	}
}
