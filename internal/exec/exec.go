// Package exec is the query executor: it ties the compiler (xpath,
// flwor, core), the planner (plan) and the algebra (nestedlist, nok,
// join) into an engine that evaluates queries end to end — the full data
// flow of the paper's Figure 2: XMLTree → NoK → NestedList →
// selection/projection/join → variable binding (Env) → construction.
//
// The executor owns the stages the algebra leaves abstract: binding
// variables from instance slots into environments, applying residual
// where-conditions that fall outside the conjunctive BlossomTree
// fragment, enforcing FLWOR iteration order and order by, and
// constructing the output XML document from return-clause constructors.
package exec

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blossomtree/internal/core"
	"blossomtree/internal/flwor"
	"blossomtree/internal/gov"
	"blossomtree/internal/index"
	"blossomtree/internal/naveval"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/segstore"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

// Config configures an Engine.
type Config struct {
	// BuildIndexes builds tag-name indexes for every added document,
	// enabling TwigStack plans and index-driven NoK scans. On by default
	// via New.
	BuildIndexes bool
}

// Engine evaluates queries over registered documents.
//
// An Engine is safe for concurrent use: registration (Add) installs a
// fresh immutable snapshot of the document catalog under a writer lock,
// and every evaluation reads exactly one snapshot for its whole
// lifetime. Any number of goroutines may therefore call Eval*,
// Explain, Document and Add concurrently; an evaluation that started
// before an Add completes sees the catalog as it was when the
// evaluation began.
type Engine struct {
	cfg  Config
	mu   sync.Mutex // serializes writers (Add); readers use snap
	snap atomic.Pointer[snapshot]
}

// snapshot is an immutable view of the registered documents and their
// derived structures. Snapshots are never mutated after publication;
// Add copies the maps and swaps the pointer.
type snapshot struct {
	docs    map[string]*xmltree.Document
	stats   map[string]xmltree.Stats
	indexes map[string]*index.TagIndex
	first   string
	// store, when non-nil, serves the URIs in storeURIs lazily out of a
	// persistent segment directory: a store-backed document is mmap'd
	// and materialized on first resolution (and LRU-cached inside the
	// store), so attaching a large catalog costs no parsing up front.
	// Heap-registered documents (docs) shadow store URIs.
	store     *segstore.Store
	storeURIs map[string]struct{}
	// version identifies this catalog state; it is unique across every
	// snapshot of the process (engines, Adds, pins), so it keys the plan
	// cache without an engine identity: a cached plan is reusable exactly
	// while the snapshot it was compiled against is the current one, and
	// any Add publishes a new version, invalidating without locking.
	version uint64

	// pinned memoizes the derived single-document snapshots of pin, so
	// repeated EvalAllDocs calls over the same catalog state share pin
	// versions — and therefore cached plans. Lazily built under pinMu;
	// the catalog maps above stay immutable.
	pinMu  sync.Mutex
	pinned map[string]*snapshot
}

// snapshotVersions hands out process-unique snapshot versions.
var snapshotVersions atomic.Uint64

// New returns an engine with index building enabled.
func New() *Engine { return NewWithConfig(Config{BuildIndexes: true}) }

// NewWithConfig returns an engine with explicit configuration.
func NewWithConfig(cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	e.snap.Store(&snapshot{
		docs:    map[string]*xmltree.Document{},
		stats:   map[string]xmltree.Stats{},
		indexes: map[string]*index.TagIndex{},
		version: snapshotVersions.Add(1),
	})
	return e
}

// snapshot returns the current immutable catalog view.
func (e *Engine) snapshot() *snapshot { return e.snap.Load() }

// Add registers a document under a URI (the name queries use in
// doc("…")). The first added document also serves absolute paths, so
// single-document queries work regardless of the URI they mention.
//
// Add is safe to call while other goroutines evaluate queries: statistics
// and indexes are computed outside the lock, and the catalog is replaced
// copy-on-write, so in-flight evaluations keep their snapshot.
func (e *Engine) Add(uri string, doc *xmltree.Document) {
	obs.Default.Add(obs.MetricDocumentsAdded, 1)
	st := xmltree.ComputeStats(doc)
	var ix *index.TagIndex
	if e.cfg.BuildIndexes {
		ix = index.Build(doc)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.snap.Load()
	next := &snapshot{
		docs:    make(map[string]*xmltree.Document, len(old.docs)+1),
		stats:   make(map[string]xmltree.Stats, len(old.stats)+1),
		indexes: make(map[string]*index.TagIndex, len(old.indexes)+1),
		first:   old.first,
		version: snapshotVersions.Add(1),
	}
	for k, v := range old.docs {
		next.docs[k] = v
	}
	for k, v := range old.stats {
		next.stats[k] = v
	}
	for k, v := range old.indexes {
		next.indexes[k] = v
	}
	next.store = old.store
	next.storeURIs = old.storeURIs
	next.docs[uri] = doc
	next.stats[uri] = st
	if ix != nil {
		next.indexes[uri] = ix
	}
	if next.first == "" {
		next.first = uri
	}
	e.snap.Store(next)
}

// AttachStore registers every servable document of a persistent segment
// store with the engine. Documents are not parsed or decoded here: they
// materialize lazily (mmap + decode, LRU-cached by the store) on first
// resolution. Like Add, AttachStore publishes one new snapshot version,
// so cached plans compiled against the previous catalog invalidate —
// and the feedback store, keyed by query hash alone, carries over.
//
// Heap documents registered under the same URI (before or after) shadow
// the store's copy.
func (e *Engine) AttachStore(st *segstore.Store) {
	e.AttachStoreURIs(st, st.URIs())
}

// AttachStoreURIs is AttachStore restricted to a subset of the store's
// URIs — the shard tier attaches one store to every shard, each shard
// seeing only the URIs the hash ring routed to it.
func (e *Engine) AttachStoreURIs(st *segstore.Store, uris []string) {
	obs.Default.Add(obs.MetricDocumentsAdded, int64(len(uris)))

	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.snap.Load()
	next := &snapshot{
		docs:    old.docs,
		stats:   old.stats,
		indexes: old.indexes,
		first:   old.first,
		store:   st,
		version: snapshotVersions.Add(1),
	}
	next.storeURIs = make(map[string]struct{}, len(old.storeURIs)+len(uris))
	if old.store != nil && old.store != st {
		// Replacing a store drops its URIs; attaching the same store again
		// (e.g. after more Saves) refreshes the URI set below.
		next.storeURIs = make(map[string]struct{}, len(uris))
	} else {
		for u := range old.storeURIs {
			next.storeURIs[u] = struct{}{}
		}
	}
	for _, u := range uris {
		next.storeURIs[u] = struct{}{}
		if next.first == "" {
			next.first = u
		}
	}
	e.snap.Store(next)
}

// Store returns the attached segment store, or nil.
func (e *Engine) Store() *segstore.Store { return e.snapshot().store }

// URIs returns the sorted URIs of every resolvable document: heap
// registrations plus store-backed documents.
func (e *Engine) URIs() []string {
	s := e.snapshot()
	out := make([]string, 0, len(s.docs)+len(s.storeURIs))
	for u := range s.docs {
		out = append(out, u)
	}
	for u := range s.storeURIs {
		if _, ok := s.docs[u]; !ok {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// Document returns the document registered under uri (with the same
// fallback rules queries use) and whether any document could be
// resolved.
func (e *Engine) Document(uri string) (*xmltree.Document, bool) {
	d, err := e.snapshot().resolve(uri)
	return d, err == nil
}

// resolve maps a URI to a document against the current snapshot. It is
// the engine-level entry point; evaluations resolve against the
// snapshot they captured instead.
func (e *Engine) resolve(uri string) (*xmltree.Document, error) {
	return e.snapshot().resolve(uri)
}

// resolve maps a URI to a document. The empty URI (absolute paths)
// resolves to the first registered document, and an engine holding a
// single document serves it for any URI — but once several documents
// are registered, an unknown doc("…") URI is an error rather than a
// silent alias for the first document.
func (s *snapshot) resolve(uri string) (*xmltree.Document, error) {
	d, _, _, err := s.resolveFull(uri)
	return d, err
}

// resolveFull is resolve carrying the resolved document's index and
// statistics, so store-backed documents hand planContext the posting
// lists and stats persisted in their segment instead of rebuilding
// them. It applies the same fallback rules as resolve.
func (s *snapshot) resolveFull(uri string) (*xmltree.Document, *index.TagIndex, xmltree.Stats, error) {
	d, ix, st, ok, err := s.entryFor(uri)
	if err != nil {
		return nil, nil, xmltree.Stats{}, err
	}
	if ok {
		return d, ix, st, nil
	}
	if s.first == "" {
		return nil, nil, xmltree.Stats{}, fmt.Errorf("exec: no document registered for %q", uri)
	}
	if uri == "" || s.docCount() == 1 {
		d, ix, st, _, err := s.entryFor(s.first)
		if err != nil {
			return nil, nil, xmltree.Stats{}, err
		}
		return d, ix, st, nil
	}
	return nil, nil, xmltree.Stats{}, fmt.Errorf("exec: no document registered for %q (%d documents loaded; doc(\"…\") must name one of them)", uri, s.docCount())
}

// entryFor resolves uri strictly (no fallback): heap registrations
// first, then the attached segment store, whose documents materialize
// on demand. ok reports whether the catalog knows the URI at all; a
// known-but-unreadable store document (quarantined after open) is
// (ok, err) so the caller surfaces the corruption instead of silently
// aliasing another document.
func (s *snapshot) entryFor(uri string) (*xmltree.Document, *index.TagIndex, xmltree.Stats, bool, error) {
	if d, ok := s.docs[uri]; ok {
		return d, s.indexes[uri], s.stats[uri], true, nil
	}
	if s.store != nil {
		if _, ok := s.storeURIs[uri]; ok {
			od, err := s.store.Document(uri)
			if err != nil {
				return nil, nil, xmltree.Stats{}, true, fmt.Errorf("exec: store document %q: %w", uri, err)
			}
			return od.Doc, od.Index, od.Stats, true, nil
		}
	}
	return nil, nil, xmltree.Stats{}, false, nil
}

// has reports whether the catalog can resolve uri without fallback.
func (s *snapshot) has(uri string) bool {
	if _, ok := s.docs[uri]; ok {
		return true
	}
	_, ok := s.storeURIs[uri]
	return ok
}

// docCount counts distinct resolvable documents (heap + store).
func (s *snapshot) docCount() int {
	n := len(s.docs)
	for u := range s.storeURIs {
		if _, ok := s.docs[u]; !ok {
			n++
		}
	}
	return n
}

// Result is the outcome of a query evaluation.
type Result struct {
	// QueryID identifies this evaluation in the query log and the trace
	// store (GET /trace/{queryID} on the daemon).
	QueryID   string
	Query     *core.Query
	Plan      *plan.Plan // nil for navigational evaluation
	Instances []*nestedlist.List
	// Envs holds one variable-binding row per surviving iteration, in
	// FLWOR iteration order (or order-by order).
	Envs []naveval.Env
	// Nodes is the node result of path queries (distinct, document
	// order).
	Nodes []*xmltree.Node
	// Output is the constructed XML document when the query has
	// constructors; nil otherwise.
	Output *xmltree.Document
	// Cached reports whether the evaluation reused a compiled plan from
	// the process-wide plan cache instead of compiling from scratch.
	Cached bool
	// NavReason carries the routing reason when a query outside the
	// BlossomTree fragment fell back to the navigational evaluator
	// (empty for planned runs and for an explicitly requested XH
	// strategy).
	NavReason string
	// Replanned reports that the cached plan template was recompiled
	// with history-corrected cardinalities before this evaluation,
	// because its estimates had drifted from the feedback store's
	// observed actuals by FeedbackDrift× (the ratio that crossed the
	// threshold).
	Replanned     bool
	FeedbackDrift float64
	// Degraded is non-nil when this result came from a scatter-gather
	// whose fan-out lost one or more shards after retry: the result is a
	// correct but partial view covering only the surviving shards.
	Degraded *DegradedInfo
}

// DegradedInfo describes a partial scatter-gather result.
type DegradedInfo struct {
	// FailedShards lists the shard indexes whose sub-queries failed even
	// after the retry, in ascending order.
	FailedShards []int
	// Errors holds one message per failed shard, aligned with
	// FailedShards.
	Errors []string
	// Stats is a synthetic gather-level stats tree: one child per shard
	// attempt, including the partial abort stats of the shards that
	// failed (what they had scanned before dying).
	Stats *obs.OpStats
}

// FallbackExplain renders the EXPLAIN form of a navigational-fallback
// evaluation ("" for planned runs), mirroring Engine.ExplainOptions on
// the same query.
func (r *Result) FallbackExplain() string {
	if r.NavReason == "" {
		return ""
	}
	return "plan strategy: XH\n  navigational fallback: " + r.NavReason + "\n"
}

// Eval parses and evaluates a query with the Auto strategy.
func (e *Engine) Eval(src string) (*Result, error) {
	return e.EvalOptions(src, plan.Options{})
}

// EvalStrategy evaluates with a forced join strategy.
func (e *Engine) EvalStrategy(src string, s plan.Strategy) (*Result, error) {
	return e.EvalOptions(src, plan.Options{Strategy: s})
}

// EvalOptions evaluates with full planner control. It keeps the query
// text alongside the parsed form, so the evaluation can hit the plan
// cache under the text's hash (EvalExpr falls back to the printed
// expression).
func (e *Engine) EvalOptions(src string, opts plan.Options) (*Result, error) {
	return evalSource(e.snapshot(), src, opts)
}

// EvalExpr evaluates a parsed query.
func (e *Engine) EvalExpr(expr flwor.Expr, opts plan.Options) (*Result, error) {
	return evalExpr(e.snapshot(), expr, opts, "")
}

// EvalDocOptions evaluates src against the single registered document
// uri, pinning resolution so every doc("…") reference and absolute path
// resolves to that document — the routing entry point of the shard
// tier, which must preserve the unsharded engine's resolution semantics
// even when a shard's local catalog has a different first document.
func (e *Engine) EvalDocOptions(uri, src string, opts plan.Options) (*Result, error) {
	snap := e.snapshot()
	if !snap.has(uri) {
		return nil, fmt.Errorf("exec: no document registered for %q", uri)
	}
	return evalSource(snap.pin(uri), src, opts)
}

// evalExpr evaluates a parsed query against one immutable snapshot, so
// a concurrent Add cannot change the catalog mid-evaluation. Engine-wide
// metrics in obs.Default are updated once per evaluation (counter adds
// are atomic, so concurrent evaluations aggregate safely).
//
// It is the executor's governance boundary: the query governor is
// created here (an already-canceled context returns gov.ErrCanceled
// before anything is compiled or scanned), governance aborts are
// counted, and any panic escaping an operator is recovered into an
// error so one bad query cannot crash a batch worker.
//
// It is also the telemetry boundary (src is the query text when the
// caller has it, "" to fall back on the printed expr): each evaluation
// gets a query ID, observes the query-duration histogram, stores a
// span trace, and — with Options.Logger — emits a structured log
// record, on success and failure alike.
func evalExpr(s *snapshot, expr flwor.Expr, opts plan.Options, src string) (res *Result, err error) {
	t0 := time.Now()
	tel := &telemetry{queryID: opts.QueryID, src: src, start: t0}
	if tel.queryID == "" {
		tel.queryID = NewQueryID()
	}
	if tel.src == "" {
		tel.src = expr.String()
	}
	defer func() {
		obs.Default.Add(obs.MetricQueries, 1)
		obs.Default.Add(obs.MetricQueryNanos, time.Since(t0).Nanoseconds())
		if err != nil {
			obs.Default.Add(obs.MetricQueryErrors, 1)
			if errors.Is(err, gov.ErrCanceled) || errors.Is(err, gov.ErrBudgetExceeded) {
				obs.Default.Add(obs.MetricQueryAborts, 1)
			}
		} else if res != nil && res.Plan != nil {
			recordPlanMetrics(res.Plan)
		}
		if res != nil {
			res.QueryID = tel.queryID
		}
		tel.emit(opts, res, err)
	}()
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("exec: evaluation panicked: %v\n%s", r, debug.Stack())
			obs.Default.Add(obs.MetricQueryPanics, 1)
		}
	}()
	g := opts.Gov
	if g == nil {
		g = gov.New(opts.Ctx, opts.Budget, opts.Fault)
		opts.Gov = g
	}
	tel.gov = g
	if err := g.CheckNow(); err != nil {
		return nil, err
	}
	if opts.Strategy == plan.Navigational {
		tel.strategy = "XH"
		return evalNavigational(s, expr, g)
	}
	c, hit, err := compiledFor(s, expr, tel.src, opts)
	if err != nil {
		return nil, err
	}
	if c.nav {
		// Outside the BlossomTree fragment: the cached routing decision
		// sends the query to the navigational evaluator, still under this
		// evaluation's governor and telemetry.
		tel.strategy = "XH"
		tel.cached = hit
		tel.navReason = c.navReason
		res, err := evalNavigational(s, expr, g)
		if res != nil {
			res.Cached = hit
			res.NavReason = c.navReason
		}
		return res, err
	}
	pl := c.tmpl.Fork(opts)
	pl.Cached = hit
	tel.plan = pl
	tel.cached = hit
	tel.replanned = c.replanned
	tel.drift = c.fbDrift
	instances, err := pl.Execute()
	if err != nil {
		return nil, err
	}
	res = &Result{Query: c.q, Plan: pl, Instances: instances, Cached: hit,
		Replanned: c.replanned, FeedbackDrift: c.fbDrift}
	if c.isPath {
		res.Nodes = projectPathResult(c.q, instances, c.textTail)
		return res, nil
	}
	if err := finishFLWOR(s, expr, c.q, res, g); err != nil {
		return nil, err
	}
	return res, nil
}

// compiledFor resolves the query's compiled form against snapshot s:
// served from the shared plan cache when possible, compiled (and
// cached) otherwise. Caller-supplied planning inputs (an explicit
// index or statistics) bypass the cache entirely — the cache only
// holds plans shaped by the snapshot itself. hit reports whether the
// cache served the entry.
func compiledFor(s *snapshot, expr flwor.Expr, src string, opts plan.Options) (*compiled, bool, error) {
	bypass := opts.Index != nil || opts.Stats.Nodes != 0
	var key planKey
	if !bypass {
		key = planKey{version: s.version, hash: obs.QueryHash(src), fp: planFingerprint(opts)}
		if c, ok := sharedPlanCache.get(key); ok {
			// A hit is where the feedback loop closes: if observed history
			// has drifted past the threshold, the template is recompiled
			// with corrected cardinalities and re-cached under this key.
			if c2 := maybeReplan(s, expr, key, c, opts); c2 != nil {
				return c2, true, nil
			}
			return c, true, nil
		}
	}
	c, err := compileTemplate(s, expr, opts)
	if err != nil {
		return nil, false, err
	}
	if !bypass {
		sharedPlanCache.put(key, c)
	}
	return c, false, nil
}

// compileTemplate runs the full compile pipeline and builds the
// pristine plan template the cache shares: only planning-time options
// reach the Build — per-run state (governor, context, budgets,
// telemetry) is installed later by Fork, so the template never holds a
// run's resources.
// Compile or Build errors wrapping core.ErrOutsideFragment are not
// failures: the query parses but cannot be expressed in the pattern-tree
// fragment, so the template records a navigational-fallback routing
// decision instead of a plan.
func compileTemplate(s *snapshot, expr flwor.Expr, opts plan.Options) (*compiled, error) {
	q, isPath, tail, err := compile(expr)
	if err != nil {
		if errors.Is(err, core.ErrOutsideFragment) {
			return &compiled{nav: true, navReason: err.Error()}, nil
		}
		return nil, err
	}
	doc, ix, stats, err := s.planContext(q)
	if err != nil {
		return nil, err
	}
	popts := plan.Options{
		Strategy:   opts.Strategy,
		MergeScans: opts.MergeScans,
		Index:      opts.Index,
		Stats:      opts.Stats,
		CardHints:  opts.CardHints,
	}
	if popts.Index == nil {
		popts.Index = ix
	}
	if popts.Stats.Nodes == 0 {
		popts.Stats = stats
	}
	tmpl, err := plan.Build(q, doc, popts)
	if err != nil {
		if errors.Is(err, core.ErrOutsideFragment) {
			return &compiled{nav: true, navReason: err.Error()}, nil
		}
		return nil, err
	}
	return &compiled{q: q, isPath: isPath, textTail: tail, tmpl: tmpl}, nil
}

// Explain compiles the query and renders its physical plan: the
// decomposition, the cost model's strategy table, and the annotated
// operator tree with per-operator estimates.
func (e *Engine) Explain(src string) (string, error) {
	return e.ExplainOptions(src, plan.Options{})
}

// ExplainOptions is Explain with planner control (forced strategy,
// parallelism, …).
func (e *Engine) ExplainOptions(src string, opts plan.Options) (string, error) {
	return explainSnapshot(e.snapshot(), src, opts)
}

// ExplainDocOptions is ExplainOptions with resolution pinned to the
// registered document uri (the shard tier's explain routing).
func (e *Engine) ExplainDocOptions(uri, src string, opts plan.Options) (string, error) {
	snap := e.snapshot()
	if !snap.has(uri) {
		return "", fmt.Errorf("exec: no document registered for %q", uri)
	}
	return explainSnapshot(snap.pin(uri), src, opts)
}

// explainSnapshot renders EXPLAIN against a fixed snapshot. The
// feedback store is consulted the same way a cache hit would: a query
// whose history armed a replan explains cost-based with hints, and a
// hash with enough history gets a feedback header line.
func explainSnapshot(s *snapshot, src string, opts plan.Options) (string, error) {
	opts, fbLine := feedbackExplainOpts(src, opts)
	pl, err := buildPlan(s, src, opts)
	if err != nil {
		if errors.Is(err, core.ErrOutsideFragment) {
			return navExplain(err), nil
		}
		return "", err
	}
	// Building the operator tree records the access-method notes and
	// creates the stats tree the estimate columns render from.
	if _, err := pl.Operator(); err != nil {
		return "", err
	}
	return pl.Explain() + fbLine + pl.ExplainCosts() + pl.ExplainTree(false), nil
}

// ExplainAnalyze compiles the query, executes it with per-operator
// timing enabled, and renders the operator tree with the cost model's
// estimates side by side with the counters the run actually recorded.
func (e *Engine) ExplainAnalyze(src string) (string, error) {
	return e.ExplainAnalyzeOptions(src, plan.Options{})
}

// ExplainAnalyzeOptions is ExplainAnalyze with planner control.
func (e *Engine) ExplainAnalyzeOptions(src string, opts plan.Options) (string, error) {
	return explainAnalyzeSnapshot(e.snapshot(), src, opts)
}

// ExplainAnalyzeDocOptions is ExplainAnalyzeOptions with resolution
// pinned to the registered document uri.
func (e *Engine) ExplainAnalyzeDocOptions(uri, src string, opts plan.Options) (string, error) {
	snap := e.snapshot()
	if !snap.has(uri) {
		return "", fmt.Errorf("exec: no document registered for %q", uri)
	}
	return explainAnalyzeSnapshot(snap.pin(uri), src, opts)
}

// explainAnalyzeSnapshot renders EXPLAIN ANALYZE against a fixed
// snapshot.
func explainAnalyzeSnapshot(s *snapshot, src string, opts plan.Options) (string, error) {
	opts.Analyze = true
	opts, fbLine := feedbackExplainOpts(src, opts)
	pl, err := buildPlan(s, src, opts)
	if err != nil {
		if errors.Is(err, core.ErrOutsideFragment) {
			// The fallback has no operator tree to instrument; run the
			// query navigationally (metered by evalExpr's telemetry like
			// any other evaluation) and report the row count.
			res, rerr := evalSource(s, src, opts)
			if rerr != nil {
				return "", rerr
			}
			return navExplain(err) + fmt.Sprintf("  rows: %d\n", len(res.Envs)+len(res.Nodes)), nil
		}
		return "", err
	}
	t0 := time.Now()
	if _, err := pl.Execute(); err != nil {
		obs.Default.Add(obs.MetricQueries, 1)
		obs.Default.Add(obs.MetricQueryErrors, 1)
		obs.Default.Histogram(obs.HistQueryDuration, obs.LatencyBuckets).ObserveDuration(time.Since(t0))
		return "", err
	}
	obs.Default.Add(obs.MetricQueries, 1)
	obs.Default.Add(obs.MetricQueryNanos, time.Since(t0).Nanoseconds())
	obs.Default.Histogram(obs.HistQueryDuration, obs.LatencyBuckets).ObserveDuration(time.Since(t0))
	recordPlanMetrics(pl)
	return pl.Explain() + fbLine + pl.ExplainCosts() + pl.ExplainTree(true), nil
}

// navExplain renders the EXPLAIN header for queries outside the
// BlossomTree fragment, which evaluate via the navigational fallback.
func navExplain(err error) string {
	return "plan strategy: XH\n  navigational fallback: " + err.Error() + "\n"
}

// recordPlanMetrics folds an executed plan's stats tree into the
// process-wide registry.
func recordPlanMetrics(pl *plan.Plan) {
	st := pl.StatsTree()
	if st == nil {
		return
	}
	obs.Default.Add(obs.MetricNodesScanned, st.TotalScanned())
	obs.Default.Add(obs.MetricInstancesOut, st.TotalEmitted())
	obs.Default.Add(obs.MetricComparisons, st.TotalComparisons())
	obs.Default.Add(obs.MetricOperatorCalls, st.TotalCalls())
}

// buildPlan compiles src against a fixed snapshot without running it,
// filling the snapshot's index and statistics into opts.
func buildPlan(s *snapshot, src string, opts plan.Options) (*plan.Plan, error) {
	expr, err := flwor.Parse(src)
	if err != nil {
		return nil, err
	}
	q, _, _, err := compile(expr)
	if err != nil {
		return nil, err
	}
	doc, ix, stats, err := s.planContext(q)
	if err != nil {
		return nil, err
	}
	if opts.Index == nil {
		opts.Index = ix
	}
	if opts.Stats.Nodes == 0 {
		opts.Stats = stats
	}
	return plan.Build(q, doc, opts)
}

// compile builds the BlossomTree query from a parsed expression. A
// trailing text() step on a bare path is outside the pattern-tree
// fragment; it is peeled off here and returned as the tail step
// projectPathResult re-applies to the matched elements.
func compile(expr flwor.Expr) (*core.Query, bool, *xpath.Step, error) {
	if pe, ok := expr.(*flwor.PathExpr); ok {
		p := pe.Path
		var tail *xpath.Step
		if n := len(p.Steps); n > 0 && p.Steps[n-1].TextTest {
			t := p.Steps[n-1]
			tail = &t
			p = &xpath.Path{Source: p.Source, Steps: p.Steps[:n-1]}
		}
		q, err := core.FromPath(p)
		return q, true, tail, err
	}
	q, err := core.FromFLWOR(expr)
	return q, false, nil, err
}

// planContext picks the document all the query's pattern trees anchor at
// (the engine evaluates single-document queries; the paper's fragment
// likewise correlates paths over one input document).
func (s *snapshot) planContext(q *core.Query) (*xmltree.Document, *index.TagIndex, xmltree.Stats, error) {
	var doc *xmltree.Document
	var ix *index.TagIndex
	var st xmltree.Stats
	var uri string
	for u := range q.Tree.Docs {
		d, dix, dst, err := s.resolveFull(u)
		if err != nil {
			return nil, nil, xmltree.Stats{}, err
		}
		if doc != nil && d != doc {
			return nil, nil, xmltree.Stats{}, fmt.Errorf("exec: query spans multiple documents (%q, %q); evaluate per document", uri, u)
		}
		doc, ix, st, uri = d, dix, dst, u
	}
	if doc == nil {
		return nil, nil, xmltree.Stats{}, fmt.Errorf("exec: query references no document")
	}
	// resolveFull hands back the index of the resolved entry itself
	// (heap or store), so index and document always agree; the guard
	// stays for the BuildIndexes=false case, where ix is nil anyway.
	if ix != nil && ix.Document() != doc {
		ix = nil
	}
	return doc, ix, st, nil
}

// projectPathResult extracts the path query's node result: the "result"
// slot across all instances, distinct, in document order. A text()
// tail step the compiler peeled off the path is re-applied here,
// projecting the matched elements onto their text children (child
// axis) or text descendants (descendant axis).
func projectPathResult(q *core.Query, ls []*nestedlist.List, textTail *xpath.Step) []*xmltree.Node {
	rn, ok := q.Return.ByVar("result")
	if !ok {
		return nil
	}
	seen := map[*xmltree.Node]bool{}
	var out []*xmltree.Node
	add := func(n *xmltree.Node) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, l := range ls {
		for _, n := range l.ProjectSlot(rn.Slot) {
			switch {
			case textTail == nil:
				add(n)
			case textTail.Axis == xpath.Descendant:
				for _, t := range xmltree.TextDescendants(n) {
					add(t)
				}
			default:
				for _, t := range xmltree.TextChildren(n) {
					add(t)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// finishFLWOR turns instances into environment rows, applies residual
// conditions, restores iteration order, applies order by, and constructs
// the output document. Residual-condition and order-by path evaluation
// run under the query's governor, so a pathological residual cannot
// escape the budget the operators honored.
func finishFLWOR(s *snapshot, expr flwor.Expr, q *core.Query, res *Result, g *gov.Governor) error {
	f, err := topFLWOR(expr)
	if err != nil {
		return err
	}
	envs := make([]naveval.Env, 0, len(res.Instances))
	for _, l := range res.Instances {
		env := naveval.Env{}
		for name := range q.Vars {
			ns, err := l.ProjectVar(name)
			if err != nil {
				return err
			}
			env[name] = ns
		}
		envs = append(envs, env)
	}

	// Residual where-conditions (outside the conjunctive fragment).
	if len(q.Residual) > 0 {
		kept := envs[:0]
		for _, env := range envs {
			ok := true
			for _, c := range q.Residual {
				v, err := naveval.EvalCondGov(s.resolve, env, c, g)
				if err != nil {
					return err
				}
				if !v {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, env)
			}
		}
		envs = kept
	}

	// FLWOR iteration order: clause-major document order of the
	// for-variables.
	var forVars []string
	for _, cl := range f.Clauses {
		if cl.Kind == flwor.ForClause {
			forVars = append(forVars, cl.Var)
		}
	}

	envs = dedupEnvs(envs, forVars)
	sort.SliceStable(envs, func(i, j int) bool {
		for _, v := range forVars {
			a, b := envs[i][v], envs[j][v]
			if len(a) == 0 || len(b) == 0 {
				continue
			}
			if a[0].Start != b[0].Start {
				return a[0].Start < b[0].Start
			}
		}
		return false
	})

	if f.OrderBy != nil {
		keys := make([]string, len(envs))
		for i, env := range envs {
			ns, err := naveval.EvalPathGov(s.resolve, env, f.OrderBy, g)
			if err != nil {
				return err
			}
			if len(ns) > 0 {
				keys[i] = xmltree.StringValue(ns[0])
			}
		}
		idx := make([]int, len(envs))
		for i := range idx {
			idx[i] = i
		}
		less := naveval.OrderLess(f.OrderDesc)
		sort.SliceStable(idx, func(a, b int) bool { return less(keys[idx[a]], keys[idx[b]]) })
		sorted := make([]naveval.Env, len(envs))
		for i, j := range idx {
			sorted[i] = envs[j]
		}
		envs = sorted
	}
	res.Envs = envs
	return constructOutput(s.resolve, expr, f, res)
}

// dedupEnvs keeps one row per for-variable combination: operators that
// enumerate existential witnesses (TwigStack matches, per-pair joins
// over predicate subtrees) may emit the same iteration several times.
// Keys are built from node identity rather than region labels, so
// bindings from different documents that happen to share Start offsets
// never collide.
func dedupEnvs(envs []naveval.Env, forVars []string) []naveval.Env {
	ids := make(map[*xmltree.Node]int)
	nodeID := func(n *xmltree.Node) int {
		id, ok := ids[n]
		if !ok {
			id = len(ids)
			ids[n] = id
		}
		return id
	}
	seen := make(map[string]bool, len(envs))
	dedup := envs[:0]
	for _, env := range envs {
		key := make([]byte, 0, 8*len(forVars))
		for _, v := range forVars {
			for _, n := range env[v] {
				id := nodeID(n)
				for i := 0; i < 8; i++ {
					key = append(key, byte(id>>(i*8)))
				}
			}
			key = append(key, '|')
		}
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		dedup = append(dedup, env)
	}
	return dedup
}

// evalNavigational runs the whole query through the navigational
// evaluator (the XH stand-in) under the query's governor. The output
// budget is charged on the materialized rows (the navigational oracle
// has no pull-based root to meter).
func evalNavigational(s *snapshot, expr flwor.Expr, g *gov.Governor) (*Result, error) {
	if pe, ok := expr.(*flwor.PathExpr); ok {
		// Resolve against the path's own document.
		uri := ""
		if pe.Path.Source.Kind == xpath.SourceDoc {
			uri = pe.Path.Source.Doc
		}
		doc, err := s.resolve(uri)
		if err != nil {
			return nil, err
		}
		nodes, err := naveval.EvalPathGov(naveval.SingleDoc(doc), nil, pe.Path, g)
		if err != nil {
			return nil, err
		}
		if err := g.Output(int64(len(nodes))); err != nil {
			return nil, err
		}
		return &Result{Nodes: nodes}, nil
	}
	f, err := topFLWOR(expr)
	if err != nil {
		return nil, err
	}
	envs, err := naveval.EvalFLWORGov(s.resolve, f, g)
	if err != nil {
		return nil, err
	}
	if err := g.Output(int64(len(envs))); err != nil {
		return nil, err
	}
	res := &Result{Envs: envs}
	return res, constructOutput(s.resolve, expr, f, res)
}

// topFLWOR unwraps constructors down to the single FLWOR body.
func topFLWOR(expr flwor.Expr) (*flwor.FLWOR, error) {
	switch t := expr.(type) {
	case *flwor.FLWOR:
		return t, nil
	case *flwor.ElemCtor:
		for _, c := range t.Content {
			if f, err := topFLWOR(c); err == nil {
				return f, nil
			}
		}
		return nil, fmt.Errorf("exec: constructor contains no FLWOR expression")
	default:
		return nil, fmt.Errorf("exec: %T is not a FLWOR expression", expr)
	}
}
