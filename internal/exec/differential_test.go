package exec

import (
	"math/rand"
	"strings"
	"testing"

	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
)

// The differential harness: every (document, query) pair is evaluated
// under every join strategy, with and without parallel pre-scans, and
// against the navigational evaluator; all runs must produce
// byte-identical canonical results. Documents are randomized (seeded,
// so failures reproduce) and include recursive shapes, which exercise
// the strategies' soundness preconditions.

// differentialQueries mixes path queries and FLWOR queries over the
// random documents' tag alphabet.
var differentialQueries = []string{
	`//a`,
	`//a//b`,
	`//a/b`,
	`//a[b]//c`,
	`//a[//c]//b`,
	`//a//b//c`,
	`//b[c]`,
	`//b[c]/a`,
	`//a/text()`,
	`//a//text()`,
	`//a[b]/text()`,
	`for $x in doc("d")//a return $x`,
	`for $x in doc("d")//a, $y in doc("d")//b where $x << $y return $y`,
	`for $x in doc("d")//a where exists($x//b) return <r>{ $x }</r>`,
	`for $x in doc("d")//a let $c := $x//b return $x`,
	`for $x in doc("d")//a order by $x/b return $x`,
	`for $x in doc("d")//a order by $x/b ascending return $x`,
	`for $x in doc("d")//a order by $x/b descending return $x`,
	`for $x in doc("d")//a order by $x/b/text() descending return $x`,
	`for $x in doc("d")//a return <r>{ $x/b/text() }</r>`,
	// Attribute-axis value tests (the attributed documents below give
	// these non-trivial selectivity; on attribute-free documents they
	// pin the empty-result path).
	`//a[@id]`,
	`//a[@id="1"]/b`,
	`//a/@id`,
	`//b[@k!="2"]`,
	`for $x in doc("d")//a where $x/@id = "1" return $x`,
	`for $x in doc("d")//a, $y in doc("d")//b where $x/@id = $y/@id return <r>{ $x }</r>`,
	// Core function library: routed through the navigational fallback
	// (path predicates) or residual filters (where-clauses).
	`//a[contains(b, "a")]`,
	`//a[starts-with(@id, "1")]`,
	`//a[count(b) = 1]`,
	`for $x in doc("d")//a where contains($x/b, "b") return $x`,
	`for $x in doc("d")//a where count($x/b) >= 1 return $x`,
	`for $x in doc("d")//a where number($x/@id) < 3 return $x`,
	`for $x in doc("d")//a where string-join($x/b, "-") != "" return $x`,
	// Parent/ancestor axes (rewritten onto /-edges where possible,
	// navigational otherwise).
	`//a/b/..`,
	`//b/parent::a`,
	`//c/ancestor::a`,
	`//a/b/../c`,
	// Positional predicates and positional variables.
	`//a[1]`,
	`//a/b[2]`,
	`//a[2]/b`,
	`for $x at $i in doc("d")//a where $i <= 2 return $x`,
	// Multi-clause iteration over the wider surface.
	`for $x in doc("d")//a let $l := $x/b where exists($l//c) return $l`,
	`for $x in doc("d")//a let $l := $x//b where $l/@id != "1" return <r>{ $x }</r>`,
}

// differentialDocs generates the randomized document population: small
// three-tag documents (dense matches, frequent recursion) and larger
// five-tag documents (sparser matches).
func differentialDocs() []*xmltree.Document {
	var docs []*xmltree.Document
	for seed := int64(1); seed <= 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		docs = append(docs, xmlgen.MustRandom(r, xmlgen.RandomSpec{
			Tags: []string{"a", "b", "c"}, MaxNodes: 60, MaxDepth: 6,
		}))
	}
	for seed := int64(101); seed <= 104; seed++ {
		r := rand.New(rand.NewSource(seed))
		docs = append(docs, xmlgen.MustRandom(r, xmlgen.RandomSpec{
			Tags: []string{"a", "b", "c", "d", "e"}, MaxNodes: 150, MaxDepth: 8,
		}))
	}
	// Attributed documents give the @-axis and function queries
	// non-trivial selectivity.
	for seed := int64(201); seed <= 203; seed++ {
		r := rand.New(rand.NewSource(seed))
		docs = append(docs, xmlgen.MustRandom(r, xmlgen.RandomSpec{
			Tags: []string{"a", "b", "c"}, MaxNodes: 80, MaxDepth: 6,
			AttrProb: 50, Attrs: []string{"id", "k"},
		}))
	}
	return docs
}

// strategyVariants lists the evaluation configurations compared against
// the navigational baseline. The pipelined join is only sound on
// non-recursive documents (Theorem 2), so it is gated on the document's
// statistics rather than silently producing wrong answers.
func strategyVariants(recursive bool) []struct {
	name string
	opts plan.Options
} {
	vs := []struct {
		name string
		opts plan.Options
	}{
		{"auto", plan.Options{}},
		{"auto-parallel", plan.Options{Parallel: -1}},
		{"bounded-nl", plan.Options{Strategy: plan.BoundedNL}},
		{"bounded-nl-parallel", plan.Options{Strategy: plan.BoundedNL, Parallel: -1}},
		{"naive-nl", plan.Options{Strategy: plan.NaiveNL}},
		{"twigstack", plan.Options{Strategy: plan.Twig}},
		{"cost-based", plan.Options{Strategy: plan.CostBased}},
		{"merged-scans", plan.Options{MergeScans: true}},
		// The vectorized columnar path; queries outside its chain
		// fragment fall back at Build time, so the axis is total.
		{"vectorized", plan.Options{Strategy: plan.Vectorized}},
	}
	if !recursive {
		vs = append(vs,
			struct {
				name string
				opts plan.Options
			}{"pipelined", plan.Options{Strategy: plan.Pipelined}},
			struct {
				name string
				opts plan.Options
			}{"pipelined-parallel", plan.Options{Strategy: plan.Pipelined, Parallel: -1}},
		)
	}
	return vs
}

// canonicalResult is the exported Canonical; the tests predate the
// export and keep the local name.
func canonicalResult(res *Result) string { return Canonical(res) }

// explainTree renders a result's EXPLAIN ANALYZE tree for failure
// reports ("" for navigational results, which have no plan).
func explainTree(res *Result) string {
	if res == nil || res.Plan == nil {
		return "(no plan: navigational evaluation)"
	}
	return res.Plan.ExplainTree(true)
}

// TestDifferentialAllStrategies is the harness itself. It requires at
// least 50 (document, query) pairs and byte-identical canonical results
// from every strategy variant; on disagreement it prints the EXPLAIN
// ANALYZE trees of the disagreeing plans.
func TestDifferentialAllStrategies(t *testing.T) {
	docs := differentialDocs()
	pairs := 0
	for di, doc := range docs {
		stats := xmltree.ComputeStats(doc)
		e := New()
		e.Add("d", doc)
		for _, q := range differentialQueries {
			pairs++
			baseline, err := e.EvalOptions(q, plan.Options{Strategy: plan.Navigational})
			if err != nil {
				t.Fatalf("doc %d (recursive=%v), query %q: navigational baseline: %v", di, stats.Recursive, q, err)
			}
			want := canonicalResult(baseline)

			var reference *Result // first plan-based result, for failure reports
			for _, v := range strategyVariants(stats.Recursive) {
				res, err := e.EvalOptions(q, v.opts)
				if err != nil {
					if v.opts.Strategy == plan.Twig && strings.Contains(err.Error(), "TwigStack") {
						continue // query outside TwigStack's fragment
					}
					t.Errorf("doc %d, query %q, variant %s: %v", di, q, v.name, err)
					continue
				}
				if reference == nil {
					reference = res
				}
				got := canonicalResult(res)
				if got != want {
					t.Errorf("doc %d (recursive=%v), query %q: variant %s disagrees with navigational baseline\n"+
						"--- %s result ---\n%s--- baseline result ---\n%s"+
						"--- EXPLAIN ANALYZE (%s) ---\n%s\n--- EXPLAIN ANALYZE (first agreeing variant) ---\n%s",
						di, stats.Recursive, q, v.name, v.name, got, want,
						v.name, explainTree(res), explainTree(reference))
				}
			}
		}
	}
	if pairs < 50 {
		t.Fatalf("harness covered only %d (document, query) pairs; need >= 50", pairs)
	}
	t.Logf("differential harness: %d (document, query) pairs across %d documents", pairs, len(docs))
}

// TestDifferentialExplainAnalyzeConsistency spot-checks, on one pair per
// strategy, that the EXPLAIN ANALYZE tree is internally consistent: the
// root's emitted count matches the materialized instance count, and
// every operator's calls are at least its emissions (one GetNext per
// instance plus the exhausting nil).
func TestDifferentialExplainAnalyzeConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{Tags: []string{"a", "b", "c"}, MaxNodes: 80, MaxDepth: 6})
	stats := xmltree.ComputeStats(doc)
	e := New()
	e.Add("d", doc)
	for _, v := range strategyVariants(stats.Recursive) {
		res, err := e.EvalOptions(`//a//b`, v.opts)
		if err != nil {
			t.Fatalf("variant %s: %v", v.name, err)
		}
		st := res.Plan.StatsTree()
		if st == nil {
			t.Fatalf("variant %s: no stats tree", v.name)
		}
		if got := st.Emitted(); got != int64(len(res.Instances)) {
			t.Errorf("variant %s: root emitted %d, materialized %d instances\n%s",
				v.name, got, len(res.Instances), st.Render(true))
		}
		var check func(s *obs.OpStats)
		check = func(s *obs.OpStats) {
			// Vectorized batch cursors exchange whole batches below the
			// instance-stream adapter: emissions are rows, GetNext never
			// runs (calls == 0), so their invariant is batch-level. The
			// VecMaterialize adapter on top streams tuples normally and
			// keeps the standard calls >= emitted check.
			if strings.HasPrefix(s.Name, "Vec") && s.Calls() == 0 {
				if s.Emitted() > 0 && s.Batches() == 0 {
					t.Errorf("variant %s: vectorized operator %s emitted %d rows across 0 batches\n%s",
						v.name, s.Name, s.Emitted(), st.Render(true))
				}
			} else if s.Calls() < s.Emitted() {
				t.Errorf("variant %s: operator %s has %d calls < %d emitted\n%s",
					v.name, s.Name, s.Calls(), s.Emitted(), st.Render(true))
			}
			for _, c := range s.Children {
				check(c)
			}
		}
		check(st)
	}
}
