package exec

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"blossomtree/internal/naveval"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

// TestConcurrentAddEval mixes writers registering documents with
// readers evaluating planned and navigational queries on one shared
// engine. Run under -race it fails on the pre-snapshot engine (bare
// map writes in Add racing Eval's map reads) and must pass now.
func TestConcurrentAddEval(t *testing.T) {
	doc, err := xmltree.ParseString(bibXML)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	e.Add("bib.xml", doc)

	const writers, readers, iters = 4, 8, 25
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, writers+readers)

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				d, err := xmltree.ParseString(bibXML)
				if err != nil {
					errs <- err
					return
				}
				e.Add(fmt.Sprintf("doc-%d-%d.xml", g, i), d)
			}
		}(g)
	}
	queries := []string{
		`doc("bib.xml")//book/title`,
		`//book[author/last="Knuth"]`,
		`for $b in doc("bib.xml")//book where $b/author return <k>{ $b/title }</k>`,
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				src := queries[(g+i)%len(queries)]
				strat := plan.Auto
				if (g+i)%4 == 0 {
					strat = plan.Navigational
				}
				res, err := e.EvalStrategy(src, strat)
				if err != nil {
					errs <- fmt.Errorf("eval %q: %w", src, err)
					return
				}
				if len(res.Nodes) == 0 && len(res.Envs) == 0 {
					errs <- fmt.Errorf("eval %q: empty result", src)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := len(e.snapshot().docs); n != 1+writers*iters {
		t.Errorf("documents registered = %d, want %d", n, 1+writers*iters)
	}
}

// TestEvalConsistentSnapshot checks that one evaluation cannot observe
// a half-registered catalog: the snapshot captured at Eval time serves
// resolve, planning and construction alike.
func TestEvalConsistentSnapshot(t *testing.T) {
	e := bibEngine(t)
	d2, _ := xmltree.ParseString(`<other><x/></other>`)
	e.Add("other.xml", d2)
	snapBefore := e.snapshot()
	d3, _ := xmltree.ParseString(`<third><y/></third>`)
	e.Add("third.xml", d3)
	if e.snapshot() == snapBefore {
		t.Fatal("Add did not install a new snapshot")
	}
	if _, err := snapBefore.resolve("third.xml"); err == nil {
		t.Error("old snapshot should not see the new document")
	}
	if _, err := e.snapshot().resolve("third.xml"); err != nil {
		t.Errorf("new snapshot should see the new document: %v", err)
	}
}

func TestEvalBatchMatchesSerial(t *testing.T) {
	e := bibEngine(t)
	queries := []string{
		`doc("bib.xml")//book/title`,
		`//book[author]/title`,
		`//book//last`,
		`for $b in doc("bib.xml")//book return $b`,
		`this is not a query`,
	}
	batch := e.EvalBatch(queries, plan.Options{}, 4)
	if len(batch) != len(queries) {
		t.Fatalf("batch results = %d, want %d", len(batch), len(queries))
	}
	for i, q := range queries {
		res, err := e.Eval(q)
		if (err == nil) != (batch[i].Err == nil) {
			t.Fatalf("query %q: serial err=%v batch err=%v", q, err, batch[i].Err)
		}
		if err != nil {
			continue
		}
		if len(res.Nodes) != len(batch[i].Result.Nodes) || len(res.Envs) != len(batch[i].Result.Envs) {
			t.Errorf("query %q: serial (%d nodes, %d envs) != batch (%d nodes, %d envs)",
				q, len(res.Nodes), len(res.Envs), len(batch[i].Result.Nodes), len(batch[i].Result.Envs))
		}
	}
	if got := e.EvalBatch(nil, plan.Options{}, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

func TestEvalAllDocs(t *testing.T) {
	e := bibEngine(t)
	d2, _ := xmltree.ParseString(`<bib><book><title>A</title></book></bib>`)
	e.Add("two.xml", d2)
	d3, _ := xmltree.ParseString(`<bib><magazine/></bib>`)
	e.Add("three.xml", d3)

	results, err := e.EvalAllDocs(`doc("ignored.xml")//book/title`, plan.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"bib.xml": 4, "three.xml": 0, "two.xml": 1}
	if len(results) != len(want) {
		t.Fatalf("results = %d, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("doc %s: %v", r.URI, r.Err)
		}
		if len(r.Result.Nodes) != want[r.URI] {
			t.Errorf("doc %s: %d titles, want %d", r.URI, len(r.Result.Nodes), want[r.URI])
		}
		if i > 0 && results[i-1].URI > r.URI {
			t.Error("results not sorted by URI")
		}
	}
}

// TestParallelPlanMatchesSerial checks the intra-plan fan-out: plans
// executed with parallel NoK pre-scans produce the same results as
// serial execution under every join strategy.
func TestParallelPlanMatchesSerial(t *testing.T) {
	e := bibEngine(t)
	queries := []string{
		`doc("bib.xml")//book/title`,
		`//book[author/last="Knuth"]/title`,
		`//book//last`,
		`//bib[//author]//title`,
		example1,
	}
	strategies := []plan.Strategy{plan.Auto, plan.Pipelined, plan.BoundedNL, plan.NaiveNL}
	for _, strat := range strategies {
		for _, q := range queries {
			serial, err1 := e.EvalOptions(q, plan.Options{Strategy: strat})
			par, err2 := e.EvalOptions(q, plan.Options{Strategy: strat, Parallel: 4})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s %q: serial err=%v parallel err=%v", strat, q, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if len(serial.Nodes) != len(par.Nodes) || len(serial.Envs) != len(par.Envs) {
				t.Errorf("%s %q: serial (%d nodes, %d envs) != parallel (%d nodes, %d envs)",
					strat, q, len(serial.Nodes), len(serial.Envs), len(par.Nodes), len(par.Envs))
				continue
			}
			for i := range serial.Nodes {
				if serial.Nodes[i] != par.Nodes[i] {
					t.Errorf("%s %q: node %d differs", strat, q, i)
					break
				}
			}
		}
	}
}

// TestParallelWithMergeScans checks the precedence rule: a parallel
// pre-scan materializes the lists first and MergeScans must not
// overwrite them.
func TestParallelWithMergeScans(t *testing.T) {
	e := NewWithConfig(Config{BuildIndexes: false})
	doc, _ := xmltree.ParseString(bibXML)
	e.Add("bib.xml", doc)
	serial, err := e.Eval(`//book[author]//last`)
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.EvalOptions(`//book[author]//last`, plan.Options{MergeScans: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Nodes) != len(par.Nodes) {
		t.Errorf("merge+parallel: %d nodes, want %d", len(par.Nodes), len(serial.Nodes))
	}
}

func TestResolveUnknownURIMultiDoc(t *testing.T) {
	e := bibEngine(t)
	// Single document: any URI falls back to it.
	if _, err := e.resolve("unknown.xml"); err != nil {
		t.Errorf("single-document fallback broken: %v", err)
	}
	if _, err := e.Eval(`doc("unknown.xml")//book`); err != nil {
		t.Errorf("single-document query via unknown URI should work: %v", err)
	}

	d2, _ := xmltree.ParseString(`<other/>`)
	e.Add("other.xml", d2)
	// Known URIs and absolute paths still resolve.
	if d, err := e.resolve("other.xml"); err != nil || d == nil {
		t.Errorf("known URI failed: %v", err)
	}
	if d, err := e.resolve(""); err != nil || d == nil {
		t.Errorf("absolute-path resolution failed: %v", err)
	}
	// Unknown URIs no longer silently alias the first document.
	if _, err := e.resolve("unknown.xml"); err == nil {
		t.Error("unknown URI with multiple documents should error")
	}
	if _, err := e.Eval(`doc("unknown.xml")//book`); err == nil {
		t.Error("query naming an unknown URI with multiple documents should error")
	}
	for _, strat := range []plan.Strategy{plan.Auto, plan.Navigational} {
		if _, err := e.EvalStrategy(`doc("bib.xml")//book`, strat); err != nil {
			t.Errorf("%s: known URI query failed: %v", strat, err)
		}
	}
}

func TestOrderByNumericKeys(t *testing.T) {
	e := New()
	doc, err := xmltree.ParseString(`<items>
<item><price>10</price><name>ten</name></item>
<item><price>9</price><name>nine</name></item>
<item><price>100</price><name>hundred</name></item>
<item><price>2</price><name>two</name></item>
</items>`)
	if err != nil {
		t.Fatal(err)
	}
	e.Add("items.xml", doc)
	for _, strat := range []plan.Strategy{plan.Auto, plan.Navigational} {
		res, err := e.EvalStrategy(`for $i in doc("items.xml")//item order by $i/price return <n>{ $i/name }</n>`, strat)
		if err != nil {
			t.Fatal(err)
		}
		out := xmltree.Serialize(res.Output.Root, xmltree.WriteOptions{})
		wantOrder := []string{"two", "nine", "ten", "hundred"}
		last := -1
		for _, w := range wantOrder {
			pos := strings.Index(out, w)
			if pos < 0 || pos < last {
				t.Fatalf("%s: numeric order violated, want %v in order: %s", strat, wantOrder, out)
			}
			last = pos
		}
	}
}

func TestOrderByStringKeysStillLexicographic(t *testing.T) {
	e := New()
	doc, err := xmltree.ParseString(`<items>
<item><k>banana</k></item>
<item><k>10a</k></item>
<item><k>apple</k></item>
</items>`)
	if err != nil {
		t.Fatal(err)
	}
	e.Add("items.xml", doc)
	res, err := e.Eval(`for $i in doc("items.xml")//item order by $i/k return <o>{ $i/k }</o>`)
	if err != nil {
		t.Fatal(err)
	}
	out := xmltree.Serialize(res.Output.Root, xmltree.WriteOptions{})
	wantOrder := []string{"10a", "apple", "banana"}
	last := -1
	for _, w := range wantOrder {
		pos := strings.Index(out, w)
		if pos < 0 || pos < last {
			t.Fatalf("lexicographic order violated, want %v in order: %s", wantOrder, out)
		}
		last = pos
	}
}

func TestOrderKeyLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"9", "10", true},
		{"10", "9", false},
		{"2", "2", false},
		{"1.5", "1.25", false},
		{"-3", "2", true},
		{"apple", "banana", true},
		{"10", "apple", true},
		{"", "0", true},
	}
	for _, c := range cases {
		if got := naveval.OrderKeyLess(c.a, c.b); got != c.want {
			t.Errorf("OrderKeyLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestDedupEnvsDocumentIdentity regression-tests the dedup key: two
// bindings from different documents share region labels (both docs
// parse the same XML, so every Start offset coincides) and must not
// collapse into one row.
func TestDedupEnvsDocumentIdentity(t *testing.T) {
	const xml = `<bib><book><title>A</title></book></bib>`
	docA, _ := xmltree.ParseString(xml)
	docB, _ := xmltree.ParseString(xml)
	bookA := docA.DocumentElement().FirstChild
	bookB := docB.DocumentElement().FirstChild
	if bookA.Start != bookB.Start {
		t.Fatal("test setup: region labels should coincide")
	}
	envs := []naveval.Env{
		{"b": []*xmltree.Node{bookA}},
		{"b": []*xmltree.Node{bookB}},
		{"b": []*xmltree.Node{bookA}}, // genuine duplicate
	}
	got := dedupEnvs(envs, []string{"b"})
	if len(got) != 2 {
		t.Fatalf("dedupEnvs kept %d rows, want 2 (distinct docs) — equal labels collided", len(got))
	}
	if got[0]["b"][0] != bookA || got[1]["b"][0] != bookB {
		t.Error("dedupEnvs kept the wrong rows")
	}
}
