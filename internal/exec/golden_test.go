package exec

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"blossomtree/internal/plan"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// Executor-level EXPLAIN goldens: unlike the plan-package goldens,
// these run through the engine (snapshot catalog, plan cache, text()
// peeling, FLWOR order-by), pinning the renderings the plan package
// cannot express — order-by modifiers, text() tails stripped from the
// pattern, and the cache-hit header a warm evaluation carries.
func TestEngineExplainGolden(t *testing.T) {
	cases := []struct {
		name  string
		query string
		opts  plan.Options
		// warm evaluates the query twice and renders the second (cached)
		// plan's EXPLAIN instead of the engine's uncached Explain.
		warm bool
	}{
		{name: "order_by_descending", query: `for $b in doc("bib.xml")//book order by $b/title descending return $b`},
		{name: "order_by_ascending", query: `for $b in doc("bib.xml")//book order by $b/title ascending return $b`},
		{name: "text_tail_path", query: `//book/title/text()`},
		{name: "text_tail_descendant", query: `//book//text()`, opts: plan.Options{Strategy: plan.BoundedNL}},
		{name: "plan_cache_hit", query: `//book[author]/title`, warm: true},
		// The vectorized strategy through the engine: the chain plan's
		// EXPLAIN, and a warm repeat pinning that the columnar plan
		// round-trips the plan cache with the cache-hit header.
		{name: "vectorized_chain", query: `//book//last`, opts: plan.Options{Strategy: plan.Vectorized}},
		{name: "vectorized_cache_hit", query: `//book//title`, opts: plan.Options{Strategy: plan.Vectorized}, warm: true},
		// New query surface: function predicates, positional variables
		// and non-rewritable upward axes run through the navigational
		// fallback; its EXPLAIN names the routing reason.
		{name: "nav_fallback_contains", query: `//book[contains(title, "Art")]`},
		{name: "nav_fallback_positional_var", query: `for $b at $i in doc("bib.xml")//book where $i < 2 return $b`},
		{name: "nav_fallback_ancestor", query: `//last/ancestor::book`},
		// Rewritable parent steps, attribute constraints and positional
		// predicates stay planned.
		{name: "parent_rewrite", query: `//book/title/..`},
		{name: "position_filter", query: `//book[2]`},
		{name: "residual_function_where", query: `for $b in doc("bib.xml")//book where count($b/author) = 1 return $b`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := bibEngine(t)
			var got string
			if tc.warm {
				if _, err := e.EvalOptions(tc.query, tc.opts); err != nil {
					t.Fatal(err)
				}
				res, err := e.EvalOptions(tc.query, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Cached {
					t.Fatal("second evaluation did not hit the plan cache")
				}
				got = res.Plan.Explain()
			} else {
				s, err := e.ExplainOptions(tc.query, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				got = s
			}

			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/exec -run TestEngineExplainGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output drifted from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
