package exec

import (
	"testing"

	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

// subtreeNodes collects every node under (and including) n.
func subtreeNodes(n *xmltree.Node, into map[*xmltree.Node]bool) {
	into[n] = true
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		subtreeNodes(c, into)
	}
}

// TestMultiDocumentIdentity registers two documents parsed from the
// same XML — so every region label coincides — and checks the engine
// keeps the documents' nodes apart by identity rather than by label.
// The planned path is single-document by design, so the cross-document
// join runs navigationally; the per-document planned queries must still
// bind nodes of exactly the document their doc() clause names.
func TestMultiDocumentIdentity(t *testing.T) {
	docA, err := xmltree.ParseString(bibXML)
	if err != nil {
		t.Fatal(err)
	}
	docB, err := xmltree.ParseString(bibXML)
	if err != nil {
		t.Fatal(err)
	}
	inA := map[*xmltree.Node]bool{}
	subtreeNodes(docA.Root, inA)
	inB := map[*xmltree.Node]bool{}
	subtreeNodes(docB.Root, inB)

	e := New()
	e.Add("a", docA)
	e.Add("b", docB)

	// Cross-document join (navigational: the planned path rejects queries
	// spanning documents). Four books per document with distinct titles:
	// exactly four rows, each pairing a book with its same-labelled twin.
	const q = `for $x in doc("a")//book, $y in doc("b")//book where $x/title = $y/title return $x`
	res, err := e.EvalOptions(q, plan.Options{Strategy: plan.Navigational})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Envs) != 4 {
		t.Fatalf("cross-document join produced %d rows, want 4 (one per title pair)", len(res.Envs))
	}
	for i, env := range res.Envs {
		if len(env["x"]) != 1 || len(env["y"]) != 1 {
			t.Fatalf("row %d: unexpected binding arity", i)
		}
		x, y := env["x"][0], env["y"][0]
		if !inA[x] || inB[x] {
			t.Errorf("row %d: $x is not a node of document a", i)
		}
		if !inB[y] || inA[y] {
			t.Errorf("row %d: $y is not a node of document b", i)
		}
		if x.Start != y.Start {
			t.Errorf("row %d: twins should share region labels (got %d vs %d)", i, x.Start, y.Start)
		}
	}

	// Per-document planned evaluation: with coinciding labels, the only
	// thing separating the result sets is node identity.
	for _, v := range strategyVariants(false) {
		resA, err := e.EvalOptions(`doc("a")//book[author]`, v.opts)
		if err != nil {
			t.Fatalf("variant %s on doc a: %v", v.name, err)
		}
		resB, err := e.EvalOptions(`doc("b")//book[author]`, v.opts)
		if err != nil {
			t.Fatalf("variant %s on doc b: %v", v.name, err)
		}
		if len(resA.Nodes) != 2 || len(resB.Nodes) != 2 {
			t.Fatalf("variant %s: got %d/%d authored books, want 2/2", v.name, len(resA.Nodes), len(resB.Nodes))
		}
		for i := range resA.Nodes {
			a, b := resA.Nodes[i], resB.Nodes[i]
			if !inA[a] {
				t.Errorf("variant %s: doc(\"a\") result %d is not a node of document a", v.name, i)
			}
			if !inB[b] {
				t.Errorf("variant %s: doc(\"b\") result %d is not a node of document b", v.name, i)
			}
			if a.Start != b.Start {
				t.Errorf("variant %s: result %d labels should coincide (got %d vs %d)", v.name, i, a.Start, b.Start)
			}
		}
	}
}
