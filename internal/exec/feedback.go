package exec

// The executor's side of the feedback loop (ROADMAP item 5). Two hooks
// close the estimate→actual circle:
//
//   - telemetry.emit records every successful planned evaluation's
//     per-operator est/act counters into feedback.Shared, keyed by the
//     query-text hash (not the snapshot version — history is a workload
//     property and survives Add churn);
//   - compiledFor, on a plan-cache hit, asks the store whether the
//     cached template's estimates have drifted past the threshold and,
//     if so, recompiles it cost-based with the observed cardinalities
//     injected as plan.Options.CardHints and re-caches it under the
//     same key.
//
// Forced strategies still observe (their actuals warm the store) but
// never replan — a user who pinned a strategy gets that strategy.

import (
	"fmt"
	"math"

	"blossomtree/internal/feedback"
	"blossomtree/internal/flwor"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
)

// ResetFeedback drops the process-wide feedback history. Benchmarks and
// tests use it (usually next to ResetPlanCache) to measure cold
// behaviour on a warm process; serving code has no reason to call it.
func ResetFeedback() { feedback.Shared.Reset() }

// feedbackOps walks a stats tree and aggregates the est/act counters of
// every operator carrying a FeedbackKey, one observation per key (two
// NoKs may share a root label; their counters sum, matching how a hint
// on that label prices both).
func feedbackOps(st *obs.OpStats) []feedback.OpObservation {
	agg := make(map[string]*feedback.OpObservation)
	var order []string
	var walk func(*obs.OpStats)
	walk = func(s *obs.OpStats) {
		if s == nil {
			return
		}
		if s.FeedbackKey != "" {
			o, ok := agg[s.FeedbackKey]
			if !ok {
				o = &feedback.OpObservation{Key: s.FeedbackKey, EstOut: -1, EstNodes: -1}
				agg[s.FeedbackKey] = o
				order = append(order, s.FeedbackKey)
			}
			if s.EstOut >= 0 {
				o.EstOut = math.Max(o.EstOut, 0) + s.EstOut
			}
			if s.EstNodes >= 0 {
				o.EstNodes = math.Max(o.EstNodes, 0) + s.EstNodes
			}
			o.Emitted += s.Emitted()
			o.Scanned += s.Scanned()
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(st)
	out := make([]feedback.OpObservation, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}

// maybeReplan recompiles a cache-hit template with history-corrected
// cardinalities when the feedback store reports drift past the
// threshold, re-caching the result under the original key so later hits
// get the corrected template directly. Returns nil when nothing
// replans (the common case). Only strategy-choosing requests replan:
// forced strategies and navigational-fallback entries pass through
// untouched. The store's BeginReplan is an atomic check-and-arm, so
// concurrent hits on the same hash arm at most one replan.
func maybeReplan(s *snapshot, expr flwor.Expr, key planKey, c *compiled, opts plan.Options) *compiled {
	if c.nav || (opts.Strategy != plan.Auto && opts.Strategy != plan.CostBased) {
		return nil
	}
	hints, drift, ok := feedback.Shared.BeginReplan(key.hash)
	if !ok {
		return nil
	}
	ropts := opts
	ropts.Strategy = plan.CostBased
	ropts.CardHints = hints
	c2, err := compileTemplate(s, expr, ropts)
	if err != nil || c2.nav {
		// A query that compiled before compiles again; treat any surprise
		// as "keep the working template" rather than failing the request.
		return nil
	}
	c2.replanned = true
	c2.fbDrift = drift
	sharedPlanCache.put(key, c2)
	return c2
}

// feedbackExplainOpts mirrors the cache-hit replan on the explain
// paths: when the query's history has armed a replan, EXPLAIN prices
// the plan the way the executor now runs it (cost-based with hints).
// It also renders the feedback header line, "" when the hash has too
// little history to be worth a line (below MinSamples and never
// replanned) so sparse test fixtures keep their golden output.
func feedbackExplainOpts(src string, opts plan.Options) (plan.Options, string) {
	sum, ok := feedback.Shared.Lookup(obs.QueryHash(src))
	if !ok {
		return opts, ""
	}
	if sum.Replanned && (opts.Strategy == plan.Auto || opts.Strategy == plan.CostBased) {
		hints := make(map[string]float64, len(sum.Ops))
		for _, o := range sum.Ops {
			hints[o.Key] = math.Max(o.ActOut, 1)
		}
		opts.Strategy = plan.CostBased
		opts.CardHints = hints
	}
	cfg := feedback.Shared.ConfigSnapshot()
	if sum.N < cfg.MinSamples && !sum.Replanned {
		return opts, ""
	}
	line := fmt.Sprintf("  feedback: n=%d, est/act drift=%.2fx", sum.N, sum.Drift)
	if sum.Replanned {
		line += ", replanned"
	}
	return opts, line + "\n"
}
