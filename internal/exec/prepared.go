package exec

import (
	"context"

	"blossomtree/internal/flwor"
	"blossomtree/internal/plan"
)

// Prepared is a parsed, compile-checked query bound to an engine — the
// prepared-statement shape of the serving API. Preparation parses once
// and eagerly compiles against the engine's current catalog snapshot,
// so syntax and planning errors surface at Prepare time and the
// compiled plan is seeded into the shared plan cache; each Run then
// evaluates against the snapshot current at that moment, hitting the
// cache while the catalog is unchanged and transparently recompiling
// (through the same cache) after any Add.
//
// A Prepared is immutable and safe for concurrent use: concurrent Runs
// share the cached plan template and each Forks private per-run state.
type Prepared struct {
	e    *Engine
	src  string
	expr flwor.Expr
	opts plan.Options
}

// Prepare parses and compile-checks a query for repeated execution
// with the given options. The options are captured; per-run control
// (a context) is supplied to RunContext.
func (e *Engine) Prepare(src string, opts plan.Options) (*Prepared, error) {
	expr, err := flwor.Parse(src)
	if err != nil {
		return nil, err
	}
	// Eager compile: surfaces planning errors now and warms the cache.
	// Navigational evaluation never builds a physical plan, and a
	// catalog without documents has nothing to plan against yet — both
	// defer compilation to Run.
	if opts.Strategy != plan.Navigational && e.snapshot().docCount() > 0 {
		if _, _, err := compiledFor(e.snapshot(), expr, src, opts); err != nil {
			return nil, err
		}
	}
	return &Prepared{e: e, src: src, expr: expr, opts: opts}, nil
}

// Source returns the prepared query's text.
func (p *Prepared) Source() string { return p.src }

// Run evaluates the prepared query against the engine's current
// catalog snapshot.
func (p *Prepared) Run() (*Result, error) {
	return evalExpr(p.e.snapshot(), p.expr, p.opts, p.src)
}

// RunContext evaluates the prepared query under a context: the run is
// canceled when ctx is. The prepared options are not mutated, so
// concurrent RunContext calls with different contexts are safe.
func (p *Prepared) RunContext(ctx context.Context) (*Result, error) {
	opts := p.opts
	opts.Ctx = ctx
	opts.Gov = nil // force a fresh governor bound to this run's context
	return evalExpr(p.e.snapshot(), p.expr, opts, p.src)
}
