package exec

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"blossomtree/internal/feedback"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

// skewedDoc builds a corpus the static cost model misestimates: parts
// nested in parts (recursive, so Auto picks the twig plan) where only
// one part in skewEvery carries the <bolt/> child the probe query
// filters on. The twig root's estimate is card(part) — thousands —
// while only a handful of parts match.
func skewedDoc(t *testing.T, parts, skewEvery int) *xmltree.Document {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<assembly>")
	for i := 0; i < parts; i++ {
		sb.WriteString("<part>")
		if i%skewEvery == 0 {
			sb.WriteString("<bolt/>")
		}
		for j := 0; j < 12; j++ {
			sb.WriteString("<subpart/>")
		}
		sb.WriteString("<part><subpart/></part></part>")
	}
	sb.WriteString("</assembly>")
	doc, err := xmltree.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// withFeedbackConfig tightens the shared store's trigger for the test
// and restores defaults (plus a clean store and plan cache) after.
func withFeedbackConfig(t *testing.T, cfg feedback.Config) {
	t.Helper()
	prev := feedback.Shared.ConfigSnapshot()
	feedback.Shared.SetConfig(cfg)
	ResetFeedback()
	ResetPlanCache()
	t.Cleanup(func() {
		feedback.Shared.SetConfig(prev)
		ResetFeedback()
		ResetPlanCache()
	})
}

// TestFeedbackReplanFromHistory pins the whole loop end to end:
// estimates drift from observed actuals, a cache hit replans onto a
// different strategy with history-corrected cardinalities, the result
// and EXPLAIN surface the replan, and the replan is judged a win.
func TestFeedbackReplanFromHistory(t *testing.T) {
	const q = "//part[bolt]//subpart"
	// MinSamples well past RingSize so the first replan's judgement
	// completes before the re-arm guard can open again, and the run
	// count below stays under 2×MinSamples so exactly one replan fires.
	withFeedbackConfig(t, feedback.Config{DriftThreshold: 2, MinSamples: 8, RingSize: 3})

	e := New()
	e.Add("skew", skewedDoc(t, 1000, 200))

	cold, err := e.EvalOptions(q, plan.Options{Strategy: plan.Auto})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Plan == nil {
		t.Fatal("cold run routed to navigational fallback")
	}
	coldStrategy := cold.Plan.Strategy
	if cold.Replanned {
		t.Fatal("cold run claims to be replanned")
	}
	want := cold.Nodes

	before := obs.Default.Snapshot()[obs.MetricFeedbackReplans]

	// Warm the history past MinSamples, then keep running: the first
	// cache hit at n >= MinSamples must replan, and every post-replan
	// run must return the identical result.
	var replanRun = -1
	var last *Result
	for i := 0; i < 13; i++ {
		res, err := e.EvalOptions(q, plan.Options{Strategy: plan.Auto})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(res.Nodes) != len(want) {
			t.Fatalf("run %d: %d nodes, want %d", i, len(res.Nodes), len(want))
		}
		if res.Replanned && replanRun < 0 {
			replanRun = i
			if res.FeedbackDrift < 2 {
				t.Errorf("replan drift = %v, want >= threshold 2", res.FeedbackDrift)
			}
		}
		last = res
	}
	if replanRun < 0 {
		t.Fatal("no run executed a replanned template")
	}
	if last.Plan.Strategy == coldStrategy {
		t.Errorf("warm strategy %s did not flip from cold %s", last.Plan.Strategy, coldStrategy)
	}
	if !last.Replanned {
		t.Error("post-replan runs lost the replanned mark")
	}

	after := obs.Default.Snapshot()[obs.MetricFeedbackReplans]
	if after <= before {
		t.Errorf("feedback_replans_total did not move (%d -> %d)", before, after)
	}

	// EXPLAIN surfaces the history: the feedback header line with the
	// replanned mark, and the cost model's hint note.
	expl, err := e.ExplainOptions(q, plan.Options{Strategy: plan.Auto})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expl, "feedback: n=") || !strings.Contains(expl, "replanned") {
		t.Errorf("EXPLAIN lacks the feedback header:\n%s", expl)
	}
	if !strings.Contains(expl, "cardinality hints applied to the cost model") {
		t.Errorf("EXPLAIN lacks the hint note:\n%s", expl)
	}

	// The store judged the replan against the pre-replan latency EWMA;
	// the corrected plan scans a fraction of the twig's streams, so it
	// must win.
	sum, ok := feedback.Shared.Lookup(obs.QueryHash(q))
	if !ok {
		t.Fatal("hash missing from feedback store")
	}
	if !sum.Judged {
		t.Fatalf("replan not judged after %d post-replan runs: %+v", 13-replanRun, sum)
	}
	if !sum.Won {
		t.Errorf("replan judged a loss: %+v", sum)
	}
}

// TestFeedbackForcedStrategyObservesButNeverReplans: forced strategies
// contribute history but the replan trigger only fires for Auto and
// cost-based evaluations.
func TestFeedbackForcedStrategyObservesButNeverReplans(t *testing.T) {
	const q = "//part[bolt]//subpart"
	withFeedbackConfig(t, feedback.Config{DriftThreshold: 2, MinSamples: 2, RingSize: 2})

	e := New()
	e.Add("skew", skewedDoc(t, 200, 40))

	for i := 0; i < 6; i++ {
		res, err := e.EvalOptions(q, plan.Options{Strategy: plan.Twig})
		if err != nil {
			t.Fatal(err)
		}
		if res.Replanned {
			t.Fatalf("run %d: forced Twig evaluation replanned", i)
		}
	}
	sum, ok := feedback.Shared.Lookup(obs.QueryHash(q))
	if !ok || sum.N != 6 {
		t.Fatalf("forced runs did not observe history: ok=%v sum=%+v", ok, sum)
	}
	if sum.Replanned {
		t.Error("forced runs armed a replan")
	}
}

// TestFeedbackStressConcurrentReplans hammers the feedback loop under
// the race detector: concurrent queriers (whose cache hits race to arm
// the same replan), catalog writers bumping the engine snapshot, and
// readers walking summaries and EXPLAIN — the interleavings the
// process-wide store and plan cache must survive.
func TestFeedbackStressConcurrentReplans(t *testing.T) {
	const q = "//part[bolt]//subpart"
	withFeedbackConfig(t, feedback.Config{DriftThreshold: 2, MinSamples: 2, RingSize: 2})

	e := New()
	e.Add("skew", skewedDoc(t, 120, 24))

	// Establish the expected count before the racers start (the count
	// is stable: the writer adds unrelated documents).
	res, err := e.EvalOptions(q, plan.Options{Strategy: plan.Auto})
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Nodes)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := e.EvalOptions(q, plan.Options{Strategy: plan.Auto})
				if err != nil {
					t.Errorf("querier: %v", err)
					return
				}
				if len(res.Nodes) != want {
					t.Errorf("querier: %d nodes, want %d", len(res.Nodes), want)
					return
				}
			}
		}()
	}

	wg.Add(2)
	go func() { // catalog writer: snapshot bumps invalidate cached templates
		defer wg.Done()
		for i := 0; i < 20; i++ {
			doc, err := xmltree.ParseString(fmt.Sprintf("<extra n=\"%d\"/>", i))
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			e.Add(fmt.Sprintf("extra-%d", i), doc)
		}
	}()
	go func() { // readers: summaries and EXPLAIN race the writers
		defer wg.Done()
		for i := 0; i < 40; i++ {
			feedback.Shared.Summaries()
			if _, err := e.ExplainOptions(q, plan.Options{Strategy: plan.Auto}); err != nil {
				t.Errorf("explain: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
