// Package segstore implements the persistent, memory-mapped document
// store: one self-contained segment file per document (see format.go
// for the layout) plus a manifest recording URIs, checksums, source
// fingerprints, and a monotonically increasing generation.
//
// The write path is crash-safe: segment files and the manifest are
// written to a temp file, fsync'd, and atomically renamed, so a crash
// mid-write leaves either the old state or the new state, never a torn
// file that gets served. OpenDir verifies every manifest'd segment's
// whole-file CRC-32C by streaming it off disk before the segment is
// admitted; corrupt or truncated segments are quarantined (Has reports
// false, so callers fall back to re-parsing the source) rather than
// decoded.
//
// The read path is lazy: OpenDir restores the catalog (URIs, stats,
// generation) without touching document bytes beyond the checksum
// stream; a document is mmap'd and materialized on first use, its
// posting lists served zero-copy out of the mapping, and evicted LRU
// when the resident-byte budget is exceeded. Eviction drops the
// store's reference — the mapping is unmapped by a finalizer once the
// last ColumnSet aliasing it is collected, so the budget bounds what
// the store keeps warm, not what in-flight queries pin.
package segstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"blossomtree/internal/index"
	"blossomtree/internal/xmltree"
)

const (
	manifestName = "manifest.json"
	feedbackName = "feedback.json"

	// DefaultByteBudget bounds the resident (materialized) set: segment
	// bytes plus an estimate of the decoded tree's heap footprint.
	DefaultByteBudget = 256 << 20

	// nodeHeapCost approximates the heap bytes one decoded tree node
	// costs (struct, pointers, interning amortized). Used only for the
	// LRU accounting, so precision is unimportant.
	nodeHeapCost = 160
)

// Options configures a store.
type Options struct {
	// ByteBudget caps the estimated resident bytes of materialized
	// documents; least-recently-used documents are evicted past it.
	// Zero means DefaultByteBudget; negative means unlimited.
	ByteBudget int64
}

// SourceInfo fingerprints the file a segment was parsed from, so a
// reopened store can tell whether the segment is still current.
type SourceInfo struct {
	Path    string `json:"path"`
	Size    int64  `json:"size"`
	ModTime int64  `json:"mtime_unix_nano"`
}

// FileInfo builds a SourceInfo from a file on disk.
func FileInfo(path string) (SourceInfo, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return SourceInfo{}, err
	}
	return SourceInfo{Path: path, Size: fi.Size(), ModTime: fi.ModTime().UnixNano()}, nil
}

// manifestEntry is one segment's catalog record.
type manifestEntry struct {
	URI        string        `json:"uri"`
	File       string        `json:"file"` // basename within the store dir
	Size       int64         `json:"size"`
	CRC32C     uint32        `json:"crc32c"`
	Generation uint64        `json:"generation"` // store generation when written
	Stats      xmltree.Stats `json:"stats"`
	Source     *SourceInfo   `json:"source,omitempty"`
}

// manifest is the store's catalog file.
type manifest struct {
	Version    int             `json:"version"`
	Generation uint64          `json:"generation"`
	Segments   []manifestEntry `json:"segments"`
}

const manifestVersion = 1

// OpenDoc is one materialized document: the decoded labeled tree, a tag
// index whose posting lists are served off the segment file, and the
// statistics recorded at save time.
type OpenDoc struct {
	Doc   *xmltree.Document
	Index *index.TagIndex
	Stats xmltree.Stats
}

// mapping owns one mmap'd segment region. ColumnSets built over the
// region hold the mapping as their backing, so the finalizer — mapped
// memory is invisible to the GC, making a finalizer the only safe
// unmap trigger — runs only after the last aliasing slice is gone.
type mapping struct {
	data   []byte
	mapped bool
}

func newMapping(data []byte, mapped bool) *mapping {
	m := &mapping{data: data, mapped: mapped}
	if mapped {
		runtime.SetFinalizer(m, func(m *mapping) { _ = munmap(m.data) })
	}
	return m
}

// entry is one catalog slot.
type entry struct {
	man     manifestEntry
	corrupt string // non-empty: quarantine reason; never served

	// matMu serializes materialization of this entry; the store lock is
	// not held while decoding, so two URIs can materialize in parallel.
	matMu sync.Mutex
	mat   *materialized

	lruEl *list.Element // position in Store.lru when materialized
	cost  int64
}

// Store is an open segment directory.
type Store struct {
	dir    string
	budget int64

	mu       sync.Mutex
	gen      uint64
	entries  map[string]*entry
	lru      *list.List // of *entry; front = most recent
	resident int64
	warnings []string
}

// OpenDir opens (creating if needed) a segment store rooted at dir.
// Every segment named by the manifest is checksum-verified by streaming
// it off disk; failures quarantine the segment (reported via Warnings
// and Corrupt) instead of failing the open. Leftover temp files from
// interrupted writes are removed.
func OpenDir(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	budget := opts.ByteBudget
	if budget == 0 {
		budget = DefaultByteBudget
	}
	st := &Store{
		dir:     dir,
		budget:  budget,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}

	// Sweep temp files from interrupted writes: they were never renamed
	// into place, so nothing references them.
	if names, err := filepath.Glob(filepath.Join(dir, "tmp-*")); err == nil {
		for _, n := range names {
			_ = os.Remove(n)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		var m manifest
		if jerr := json.Unmarshal(raw, &m); jerr != nil || m.Version != manifestVersion {
			// A corrupt manifest loses the catalog but must not serve
			// anything unverifiable: start empty and let callers re-parse.
			st.warnings = append(st.warnings,
				fmt.Sprintf("manifest unreadable (%v); starting empty", jerr))
		} else {
			st.gen = m.Generation
			for _, me := range m.Segments {
				e := &entry{man: me}
				if reason := st.verifyEntry(me); reason != "" {
					e.corrupt = reason
					st.warnings = append(st.warnings,
						fmt.Sprintf("segment %s (%s) quarantined: %s", me.File, me.URI, reason))
				}
				st.entries[me.URI] = e
			}
		}
	case isNotExist(err):
		// Fresh store.
	default:
		return nil, err
	}
	return st, nil
}

func isNotExist(err error) bool { return os.IsNotExist(err) || err == fs.ErrNotExist }

// verifyEntry streams the segment file and checks its size, footer, and
// whole-file CRC-32C against both the footer and the manifest. Returns
// a non-empty reason on failure.
func (st *Store) verifyEntry(me manifestEntry) string {
	path := filepath.Join(st.dir, me.File)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Sprintf("open: %v", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Sprintf("stat: %v", err)
	}
	if fi.Size() != me.Size {
		return fmt.Sprintf("size %d, manifest says %d (truncated?)", fi.Size(), me.Size)
	}
	if fi.Size() < headerSize+footerSize {
		return "shorter than header+footer"
	}
	h := crc32.New(castagnoli)
	if _, err := io.CopyN(h, f, fi.Size()-footerSize); err != nil {
		return fmt.Sprintf("read: %v", err)
	}
	var foot [footerSize]byte
	if _, err := io.ReadFull(f, foot[:]); err != nil {
		return fmt.Sprintf("footer read: %v", err)
	}
	if string(foot[:4]) != string(footerMagic) {
		return "bad footer magic (torn write?)"
	}
	if sz := binary.LittleEndian.Uint64(foot[8:]); sz != uint64(fi.Size()) {
		return fmt.Sprintf("footer size %d != file size %d", sz, fi.Size())
	}
	crc := binary.LittleEndian.Uint32(foot[4:])
	if got := h.Sum32(); got != crc {
		return fmt.Sprintf("checksum mismatch: footer %08x, computed %08x", crc, got)
	}
	if crc != me.CRC32C {
		return fmt.Sprintf("checksum %08x does not match manifest %08x", crc, me.CRC32C)
	}
	return ""
}

// segmentFileName derives a stable, filesystem-safe basename for a URI.
func segmentFileName(uri string) string {
	sum := sha256.Sum256([]byte(uri))
	return "seg-" + hex.EncodeToString(sum[:8]) + ".seg"
}

// atomicWrite writes data to dir/name via a temp file + fsync + rename,
// then fsyncs the directory so the rename itself is durable.
func atomicWrite(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Save persists one document as a segment file and records it in the
// manifest, bumping the store generation. An existing segment for the
// same URI is atomically replaced. source, when non-nil, fingerprints
// the file the document was parsed from (see UpToDate).
func (st *Store) Save(uri string, doc *xmltree.Document, stats xmltree.Stats, source *SourceInfo) error {
	st.mu.Lock()
	gen := st.gen + 1
	st.mu.Unlock()

	img, err := encodeSegmentFile(uri, gen, doc, stats)
	if err != nil {
		return err
	}
	file := segmentFileName(uri)
	if err := atomicWrite(st.dir, file, img); err != nil {
		return err
	}
	crc := binary.LittleEndian.Uint32(img[len(img)-footerSize+4:])

	st.mu.Lock()
	defer st.mu.Unlock()
	// Re-bump under the lock: concurrent saves each get a distinct
	// generation, and the manifest generation only moves forward.
	st.gen++
	me := manifestEntry{
		URI: uri, File: file, Size: int64(len(img)), CRC32C: crc,
		Generation: st.gen, Stats: stats, Source: source,
	}
	if old := st.entries[uri]; old != nil {
		st.dropLocked(old)
	}
	st.entries[uri] = &entry{man: me}
	return st.writeManifestLocked()
}

// writeManifestLocked rewrites the manifest atomically. Caller holds mu.
func (st *Store) writeManifestLocked() error {
	m := manifest{Version: manifestVersion, Generation: st.gen}
	uris := make([]string, 0, len(st.entries))
	for u := range st.entries {
		uris = append(uris, u)
	}
	sort.Strings(uris)
	for _, u := range uris {
		e := st.entries[u]
		if e.corrupt != "" {
			continue // quarantined segments drop out of the catalog
		}
		m.Segments = append(m.Segments, e.man)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(st.dir, manifestName, raw)
}

// Has reports whether the store can serve uri (present and not
// quarantined).
func (st *Store) Has(uri string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entries[uri]
	return e != nil && e.corrupt == ""
}

// URIs returns the servable document URIs, sorted.
func (st *Store) URIs() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.entries))
	for u, e := range st.entries {
		if e.corrupt == "" {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// Corrupt returns the quarantined URIs and their reasons.
func (st *Store) Corrupt() map[string]string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]string)
	for u, e := range st.entries {
		if e.corrupt != "" {
			out[u] = e.corrupt
		}
	}
	return out
}

// Warnings returns open-time diagnostics (quarantines, manifest loss).
func (st *Store) Warnings() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.warnings...)
}

// Generation returns the store's current generation: it increases by
// one with every Save and survives restarts via the manifest, so
// (generation, uri-set) uniquely identifies the catalog state.
func (st *Store) Generation() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gen
}

// DocStats returns the saved statistics for uri without materializing
// the document — the catalog is fully described by the manifest.
func (st *Store) DocStats(uri string) (xmltree.Stats, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entries[uri]
	if e == nil || e.corrupt != "" {
		return xmltree.Stats{}, false
	}
	return e.man.Stats, true
}

// UpToDate reports whether the stored segment for uri was built from
// path as it exists now (same path, size, and mtime). False when the
// segment is missing, quarantined, has no source fingerprint, or the
// file changed — callers should re-parse then.
func (st *Store) UpToDate(uri, path string) bool {
	st.mu.Lock()
	e := st.entries[uri]
	st.mu.Unlock()
	if e == nil || e.corrupt != "" || e.man.Source == nil {
		return false
	}
	now, err := FileInfo(path)
	if err != nil {
		return false
	}
	src := *e.man.Source
	return src.Path == now.Path && src.Size == now.Size && src.ModTime == now.ModTime
}

// Document materializes uri: mmaps the segment on first use, decodes
// the tree, and wires the posting lists into a zero-copy TagIndex. The
// result stays resident (LRU) until the byte budget evicts it; the
// returned OpenDoc remains valid regardless — its column sets pin the
// mapping.
func (st *Store) Document(uri string) (OpenDoc, error) {
	st.mu.Lock()
	e := st.entries[uri]
	if e == nil {
		st.mu.Unlock()
		return OpenDoc{}, fmt.Errorf("segstore: no segment for %q", uri)
	}
	if e.corrupt != "" {
		st.mu.Unlock()
		return OpenDoc{}, fmt.Errorf("segstore: segment for %q quarantined: %s: %w", uri, e.corrupt, ErrCorrupt)
	}
	if e.mat != nil {
		st.touchLocked(e)
		mat := e.mat
		st.mu.Unlock()
		return OpenDoc{Doc: mat.doc, Index: mat.ix, Stats: mat.stats}, nil
	}
	st.mu.Unlock()

	e.matMu.Lock()
	defer e.matMu.Unlock()
	// Re-check: another goroutine may have materialized while we waited.
	st.mu.Lock()
	if e.mat != nil {
		st.touchLocked(e)
		mat := e.mat
		st.mu.Unlock()
		return OpenDoc{Doc: mat.doc, Index: mat.ix, Stats: mat.stats}, nil
	}
	st.mu.Unlock()

	mat, err := st.materialize(e)
	if err != nil {
		// Late-detected corruption (structural, after the checksum
		// passed — e.g. an inconsistency between sections) quarantines
		// the segment like an open-time failure would.
		st.mu.Lock()
		e.corrupt = err.Error()
		st.warnings = append(st.warnings,
			fmt.Sprintf("segment %s (%s) quarantined at read: %v", e.man.File, e.man.URI, err))
		st.mu.Unlock()
		return OpenDoc{}, err
	}

	st.mu.Lock()
	e.mat = mat
	e.cost = e.man.Size + int64(e.man.Stats.Nodes)*nodeHeapCost
	st.resident += e.cost
	st.touchLocked(e)
	st.evictLocked(e)
	st.mu.Unlock()
	return OpenDoc{Doc: mat.doc, Index: mat.ix, Stats: mat.stats}, nil
}

// materialize mmaps and decodes one segment. Called without st.mu held.
func (st *Store) materialize(e *entry) (*materialized, error) {
	path := filepath.Join(st.dir, e.man.File)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, mapped, err := mmapFile(f, int(fi.Size()))
	if err != nil {
		return nil, err
	}
	backing := newMapping(data, mapped)
	sf, err := openSegFile(data)
	if err != nil {
		return nil, err
	}
	return materializeSegFile(sf, backing)
}

// touchLocked moves e to the LRU front. Caller holds mu.
func (st *Store) touchLocked(e *entry) {
	if e.lruEl != nil {
		st.lru.MoveToFront(e.lruEl)
	} else {
		e.lruEl = st.lru.PushFront(e)
	}
}

// evictLocked drops least-recently-used materialized entries until the
// resident estimate fits the budget, never evicting keep. Dropping only
// removes the store's reference: mappings unmap via finalizer once all
// column sets aliasing them are collected. Caller holds mu.
func (st *Store) evictLocked(keep *entry) {
	if st.budget < 0 {
		return
	}
	for st.resident > st.budget {
		back := st.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		if e == keep {
			// The newest document alone exceeds the budget; keep it —
			// evicting what we are about to return would thrash.
			return
		}
		st.dropLocked(e)
	}
}

// dropLocked forgets e's materialization. Caller holds mu.
func (st *Store) dropLocked(e *entry) {
	if e.lruEl != nil {
		st.lru.Remove(e.lruEl)
		e.lruEl = nil
	}
	if e.mat != nil {
		e.mat = nil
		st.resident -= e.cost
		e.cost = 0
	}
}

// Resident returns the estimated bytes of currently materialized
// documents (for tests and diagnostics).
func (st *Store) Resident() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.resident
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Close drops all materializations. Mapped regions unmap once their
// last user is collected; the store must not be used afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range st.entries {
		st.dropLocked(e)
	}
	return nil
}

// String summarizes the catalog.
func (st *Store) String() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	n, bad := 0, 0
	var bytes int64
	for _, e := range st.entries {
		if e.corrupt != "" {
			bad++
			continue
		}
		n++
		bytes += e.man.Size
	}
	s := fmt.Sprintf("segstore %s: gen %d, %d segment(s), %s", st.dir, st.gen, n, xmltree.FormatBytes(bytes))
	if bad > 0 {
		s += fmt.Sprintf(", %d quarantined", bad)
	}
	return s
}

// SaveFeedback persists opaque feedback-store bytes (JSON) alongside
// the segments, atomically.
func (st *Store) SaveFeedback(data []byte) error {
	return atomicWrite(st.dir, feedbackName, data)
}

// LoadFeedback returns the persisted feedback bytes, or (nil, nil) when
// none have been saved.
func (st *Store) LoadFeedback() ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(st.dir, feedbackName))
	if isNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(strings.TrimSpace(string(raw)), "{") {
		return nil, fmt.Errorf("segstore: feedback file is not JSON")
	}
	return raw, nil
}
