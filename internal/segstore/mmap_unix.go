//go:build unix

package segstore

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The returned slice aliases
// the page cache: reads fault pages in on demand, so opening a segment
// costs no I/O until its bytes are actually touched.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Fall back to a plain read (some filesystems refuse mmap); the
		// store still works, just without demand paging.
		buf := make([]byte, size)
		if _, rerr := f.ReadAt(buf, 0); rerr != nil {
			return nil, false, rerr
		}
		return buf, false, nil
	}
	return data, true, nil
}

func munmap(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
