//go:build !unix

package segstore

import "os"

// mmapFile on platforms without a usable mmap syscall reads the whole
// file; the store behaves identically, minus demand paging.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

func munmap(data []byte) error { return nil }
