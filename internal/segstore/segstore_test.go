package segstore

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blossomtree/internal/index"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
)

const bibXML = `<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><author><last>Stevens</last><first>W.</first></author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><author><last>Abiteboul</last><first>Serge</first></author><price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology</title><editor><last>Gerbarg</last><first>Darcy</first></editor><price>129.95</price></book>
</bib>`

func mustParse(t *testing.T, xml string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func saveDoc(t *testing.T, st *Store, uri, xml string) {
	t.Helper()
	doc := mustParse(t, xml)
	if err := st.Save(uri, doc, xmltree.ComputeStats(doc), nil); err != nil {
		t.Fatalf("Save(%s): %v", uri, err)
	}
}

// sameIndex verifies a store-served TagIndex against a freshly built
// one: identical tag alphabets, identical region labels per posting
// list, identical column sets.
func sameIndex(t *testing.T, got, want *index.TagIndex) {
	t.Helper()
	gt, wt := got.Tags(), want.Tags()
	if len(gt) != len(wt) {
		t.Fatalf("tag alphabets differ: got %v want %v", gt, wt)
	}
	for i := range gt {
		if gt[i] != wt[i] {
			t.Fatalf("tag alphabets differ at %d: %q vs %q", i, gt[i], wt[i])
		}
	}
	for _, tag := range append(wt, "*") {
		gn, wn := got.Nodes(tag), want.Nodes(tag)
		if len(gn) != len(wn) {
			t.Fatalf("tag %q: %d nodes, want %d", tag, len(gn), len(wn))
		}
		gc, wc := got.Columns(tag), want.Columns(tag)
		if gc.Len() != wc.Len() {
			t.Fatalf("tag %q: column len %d, want %d", tag, gc.Len(), wc.Len())
		}
		for i := range wn {
			if gn[i].Start != wn[i].Start || gn[i].End != wn[i].End || gn[i].Level != wn[i].Level {
				t.Fatalf("tag %q node %d: labels (%d,%d,%d) want (%d,%d,%d)", tag, i,
					gn[i].Start, gn[i].End, gn[i].Level, wn[i].Start, wn[i].End, wn[i].Level)
			}
			if gc.Start[i] != wc.Start[i] || gc.End[i] != wc.End[i] || gc.Level[i] != wc.Level[i] {
				t.Fatalf("tag %q column %d differs", tag, i)
			}
		}
	}
}

func TestSaveReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	saveDoc(t, st, "bib.xml", bibXML)

	// Same-process read back.
	od, err := st.Document("bib.xml")
	if err != nil {
		t.Fatalf("Document: %v", err)
	}
	orig := mustParse(t, bibXML)
	if xmltree.Serialize(od.Doc.Root, xmltree.WriteOptions{}) != xmltree.Serialize(orig.Root, xmltree.WriteOptions{}) {
		t.Fatal("materialized document serializes differently from the original")
	}
	sameIndex(t, od.Index, index.Build(orig))
	if od.Stats.Elements != xmltree.ComputeStats(orig).Elements {
		t.Fatalf("stats elements %d, want %d", od.Stats.Elements, xmltree.ComputeStats(orig).Elements)
	}

	// Cross-process reopen.
	st2, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Warnings()) != 0 {
		t.Fatalf("reopen warnings: %v", st2.Warnings())
	}
	if got := st2.URIs(); len(got) != 1 || got[0] != "bib.xml" {
		t.Fatalf("URIs after reopen: %v", got)
	}
	if st2.Generation() != st.Generation() {
		t.Fatalf("generation %d after reopen, want %d", st2.Generation(), st.Generation())
	}
	od2, err := st2.Document("bib.xml")
	if err != nil {
		t.Fatalf("Document after reopen: %v", err)
	}
	sameIndex(t, od2.Index, index.Build(orig))
}

func TestGeneratedDocsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{MaxNodes: 200, MaxDepth: 6, AttrProb: 30})
		uri := "gen" + string(rune('a'+i)) + ".xml"
		if err := st.Save(uri, doc, xmltree.ComputeStats(doc), nil); err != nil {
			t.Fatalf("Save: %v", err)
		}
		od, err := st.Document(uri)
		if err != nil {
			t.Fatalf("Document: %v", err)
		}
		if xmltree.Serialize(od.Doc.Root, xmltree.WriteOptions{}) != xmltree.Serialize(doc.Root, xmltree.WriteOptions{}) {
			t.Fatalf("doc %d: serialization differs after round trip", i)
		}
		sameIndex(t, od.Index, index.Build(doc))
	}
}

func TestGenerationMonotonic(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenDir(dir, Options{})
	if st.Generation() != 0 {
		t.Fatalf("fresh store generation %d", st.Generation())
	}
	saveDoc(t, st, "a.xml", `<a><x/></a>`)
	saveDoc(t, st, "b.xml", `<b><y/></b>`)
	if st.Generation() != 2 {
		t.Fatalf("generation %d after two saves", st.Generation())
	}
	// Re-persisting an existing URI still bumps: the catalog changed.
	saveDoc(t, st, "a.xml", `<a><x/><x/></a>`)
	if st.Generation() != 3 {
		t.Fatalf("generation %d after re-save", st.Generation())
	}
	st2, _ := OpenDir(dir, Options{})
	if st2.Generation() != 3 {
		t.Fatalf("generation %d after reopen, want 3", st2.Generation())
	}
	saveDoc(t, st2, "c.xml", `<c/>`)
	if st2.Generation() != 4 {
		t.Fatalf("generation %d, want 4: generations must keep rising across restarts", st2.Generation())
	}
}

// corruptOneByte flips one byte in the middle of the named segment file.
func corruptOneByte(t *testing.T, dir, uri string) {
	t.Helper()
	path := filepath.Join(dir, segmentFileName(uri))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenDir(dir, Options{})
	saveDoc(t, st, "bib.xml", bibXML)
	saveDoc(t, st, "ok.xml", `<ok><v>1</v></ok>`)
	corruptOneByte(t, dir, "bib.xml")

	st2, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatalf("OpenDir over corrupt segment must not fail: %v", err)
	}
	if st2.Has("bib.xml") {
		t.Fatal("corrupt segment still served")
	}
	if !st2.Has("ok.xml") {
		t.Fatal("intact segment lost alongside the corrupt one")
	}
	if _, err := st2.Document("bib.xml"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Document on quarantined segment: %v, want ErrCorrupt", err)
	}
	reasons := st2.Corrupt()
	if r, ok := reasons["bib.xml"]; !ok || !strings.Contains(r, "checksum") {
		t.Fatalf("quarantine reasons: %v", reasons)
	}
	if len(st2.Warnings()) == 0 {
		t.Fatal("no warning for quarantined segment")
	}
}

func TestTornWriteQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenDir(dir, Options{})
	saveDoc(t, st, "bib.xml", bibXML)
	// Simulate a crash mid-write that somehow survived as the real file
	// (e.g. a torn rename on a non-atomic filesystem): truncate it.
	path := filepath.Join(dir, segmentFileName("bib.xml"))
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Has("bib.xml") {
		t.Fatal("truncated segment still served")
	}
}

func TestInterruptedWriteLeavesOldStateAndCleansTemp(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenDir(dir, Options{})
	saveDoc(t, st, "bib.xml", bibXML)
	// A crash between temp-file write and rename leaves tmp-* garbage;
	// the segment and manifest still describe the pre-crash state.
	if err := os.WriteFile(filepath.Join(dir, "tmp-123456"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Has("bib.xml") {
		t.Fatal("old state lost")
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp-123456")); !os.IsNotExist(err) {
		t.Fatal("leftover temp file not swept on open")
	}
}

func TestCorruptManifestStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenDir(dir, Options{})
	saveDoc(t, st, "bib.xml", bibXML)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatalf("OpenDir over corrupt manifest must recover: %v", err)
	}
	if len(st2.URIs()) != 0 {
		t.Fatalf("URIs served without a manifest: %v", st2.URIs())
	}
	if len(st2.Warnings()) == 0 {
		t.Fatal("no warning for lost manifest")
	}
	// The store remains writable: re-persisting rebuilds the catalog.
	saveDoc(t, st2, "bib.xml", bibXML)
	if !st2.Has("bib.xml") {
		t.Fatal("store not writable after manifest recovery")
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenDir(dir, Options{})
	saveDoc(t, st, "a.xml", `<a><x>one</x><x>two</x></a>`)
	saveDoc(t, st, "b.xml", `<b><y>three</y></b>`)

	// Budget below one document: each materialization evicts the other.
	tight, err := OpenDir(dir, Options{ByteBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	odA, err := tight.Document("a.xml")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tight.Document("b.xml"); err != nil {
		t.Fatal(err)
	}
	// a.xml was evicted; its OpenDoc must remain fully usable.
	if got := odA.Index.Count("x"); got != 2 {
		t.Fatalf("evicted document's index broken: count(x)=%d", got)
	}
	// Re-materialization serves identical content.
	odA2, err := tight.Document("a.xml")
	if err != nil {
		t.Fatal(err)
	}
	if xmltree.Serialize(odA2.Doc.Root, xmltree.WriteOptions{}) != xmltree.Serialize(odA.Doc.Root, xmltree.WriteOptions{}) {
		t.Fatal("re-materialized document differs")
	}

	// Unlimited budget keeps both resident and returns identical pointers.
	wide, _ := OpenDir(dir, Options{ByteBudget: -1})
	w1, _ := wide.Document("a.xml")
	w2, _ := wide.Document("a.xml")
	if w1.Doc != w2.Doc {
		t.Fatal("resident document re-materialized under unlimited budget")
	}
	if wide.Resident() <= 0 {
		t.Fatal("resident accounting empty with materialized documents")
	}
}

func TestUpToDate(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(src, []byte(bibXML), 0o644); err != nil {
		t.Fatal(err)
	}
	st, _ := OpenDir(dir, Options{})
	doc := mustParse(t, bibXML)
	info, err := FileInfo(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("doc.xml", doc, xmltree.ComputeStats(doc), &info); err != nil {
		t.Fatal(err)
	}
	if !st.UpToDate("doc.xml", src) {
		t.Fatal("unchanged file reported stale")
	}
	st2, _ := OpenDir(dir, Options{})
	if !st2.UpToDate("doc.xml", src) {
		t.Fatal("fingerprint lost across reopen")
	}
	// Change the file: content and size differ, so the segment is stale.
	if err := os.WriteFile(src, []byte(bibXML+"<!-- changed -->"), 0o644); err != nil {
		t.Fatal(err)
	}
	if st2.UpToDate("doc.xml", src) {
		t.Fatal("changed file reported up to date")
	}
	if st2.UpToDate("doc.xml", src+".missing") {
		t.Fatal("missing file reported up to date")
	}
	if st2.UpToDate("other.xml", src) {
		t.Fatal("unknown URI reported up to date")
	}
}

func TestFeedbackFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenDir(dir, Options{})
	if data, err := st.LoadFeedback(); err != nil || data != nil {
		t.Fatalf("fresh store feedback: %v %v", data, err)
	}
	payload := []byte(`{"version":1,"entries":[]}`)
	if err := st.SaveFeedback(payload); err != nil {
		t.Fatal(err)
	}
	st2, _ := OpenDir(dir, Options{})
	got, err := st2.LoadFeedback()
	if err != nil || string(got) != string(payload) {
		t.Fatalf("feedback round trip: %q %v", got, err)
	}
}

func TestDocStats(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenDir(dir, Options{})
	saveDoc(t, st, "bib.xml", bibXML)
	stats, ok := st.DocStats("bib.xml")
	if !ok {
		t.Fatal("DocStats miss")
	}
	want := xmltree.ComputeStats(mustParse(t, bibXML))
	if stats.Elements != want.Elements || stats.Nodes != want.Nodes || stats.MaxDepth != want.MaxDepth {
		t.Fatalf("stats %+v, want %+v", stats, want)
	}
	// Stats come straight off the manifest: no materialization happened.
	if st.Resident() != 0 {
		t.Fatal("DocStats materialized the document")
	}
}

func TestEncodeDecodeFileImage(t *testing.T) {
	doc := mustParse(t, bibXML)
	img, err := encodeSegmentFile("bib.xml", 42, doc, xmltree.ComputeStats(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyChecksum(img); err != nil {
		t.Fatalf("fresh image fails checksum: %v", err)
	}
	sf, err := openSegFile(img)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := sf.decodeMeta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.URI != "bib.xml" || meta.Generation != 42 {
		t.Fatalf("meta %+v", meta)
	}
	mat, err := materializeSegFile(sf, newMapping(img, false))
	if err != nil {
		t.Fatal(err)
	}
	if mat.doc.Name != "bib.xml" {
		t.Fatalf("doc name %q", mat.doc.Name)
	}
	sameIndex(t, mat.ix, index.Build(doc))

	// Every truncation of the image must fail structural validation or
	// checksum, never panic.
	for n := 0; n < len(img); n += 7 {
		trunc := img[:n]
		if err := verifyChecksum(trunc); err == nil {
			if sf, err := openSegFile(trunc); err == nil {
				if _, err := materializeSegFile(sf, newMapping(trunc, false)); err == nil {
					t.Fatalf("truncation to %d bytes accepted", n)
				}
			}
		}
	}
}
