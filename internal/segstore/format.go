// Segment file format (one file per document, all integers
// little-endian):
//
//	[0,8)    magic "BSEGF1\n\x00"
//	[8,12)   u32 format version (currently 1)
//	[12,16)  u32 section count
//	[16,…)   section directory: count × { u32 id, u32 reserved,
//	         u64 offset, u64 length } (24 bytes each)
//	…        section payloads, each padded to 8-byte alignment so the
//	         u32 column arrays inside are naturally aligned when the
//	         file is memory-mapped
//	[EOF-16) footer: "BSGE", u32 crc32c(file[0 : size-16]), u64 size
//
// Sections:
//
//	meta (1)     JSON: URI, segment generation, document statistics
//	             (the planner's inputs, available without materializing)
//	topo (2)     the succinct topology bytecode — a verbatim
//	             storage.Segment (dedup tag table + preorder
//	             open/text/close bytecode)
//	elem (3)     u32 count, u32 pad, then start[count], end[count],
//	             level[count] as u32 arrays: the region labels of every
//	             element in document order (the "*" wildcard ColumnSet,
//	             served zero-copy off the mapping)
//	csr (4)      u32 count, u32 nChildren, offsets[count+1],
//	             children[nChildren]: the Figure-6 CSR child-offset
//	             layout over element ordinals — element i's child
//	             elements are children[offsets[i]:offsets[i+1]], used as
//	             a structural integrity check on open and shareable by
//	             future out-of-process readers
//	post (5)     u32 nLists, then per list: u32 tagID (into the topo
//	             tag table), u32 count, ordinals[count], start[count],
//	             end[count], level[count]: the per-tag posting lists as
//	             region-label triples in document order — directly
//	             servable as index.ColumnSet backing without copying
//
// The whole-file crc32c (Castagnoli) in the footer is what OpenDir
// verifies before a segment is ever served, so a torn or bit-flipped
// write is quarantined instead of decoded.
package segstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"

	"blossomtree/internal/index"
	"blossomtree/internal/storage"
	"blossomtree/internal/xmltree"
)

// ErrCorrupt is wrapped by every segment-file decode error; it also
// wraps storage.ErrCorrupt failures bubbling up from the topology
// bytecode.
var ErrCorrupt = errors.New("corrupt segment file")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("segstore: "+format+": %w", append(args, ErrCorrupt)...)
}

var (
	fileMagic   = []byte("BSEGF1\n\x00")
	footerMagic = []byte("BSGE")
)

const (
	formatVersion = 1
	headerSize    = 16
	dirEntSize    = 24
	footerSize    = 16

	secMeta = 1
	secTopo = 2
	secElem = 3
	secCSR  = 4
	secPost = 5
)

// castagnoli is the CRC-32C table used for every file checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segMeta is the JSON meta section: everything the catalog needs
// without touching the document itself.
type segMeta struct {
	URI        string        `json:"uri"`
	Generation uint64        `json:"generation"`
	Stats      xmltree.Stats `json:"stats"`
}

// sectionWriter accumulates aligned sections and assembles the final
// file image.
type sectionWriter struct {
	ids      []uint32
	payloads [][]byte
}

func (w *sectionWriter) add(id uint32, payload []byte) {
	w.ids = append(w.ids, id)
	w.payloads = append(w.payloads, payload)
}

func pad8(n int) int { return (8 - n%8) % 8 }

func (w *sectionWriter) finish() []byte {
	off := headerSize + dirEntSize*len(w.ids)
	off += pad8(off)
	size := off
	offsets := make([]int, len(w.payloads))
	for i, p := range w.payloads {
		offsets[i] = size
		size += len(p) + pad8(len(p))
	}
	size += footerSize

	out := make([]byte, size)
	copy(out, fileMagic)
	binary.LittleEndian.PutUint32(out[8:], formatVersion)
	binary.LittleEndian.PutUint32(out[12:], uint32(len(w.ids)))
	for i := range w.ids {
		d := out[headerSize+i*dirEntSize:]
		binary.LittleEndian.PutUint32(d, w.ids[i])
		binary.LittleEndian.PutUint64(d[8:], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(d[16:], uint64(len(w.payloads[i])))
	}
	for i, p := range w.payloads {
		copy(out[offsets[i]:], p)
	}
	foot := out[size-footerSize:]
	copy(foot, footerMagic)
	binary.LittleEndian.PutUint32(foot[4:], crc32.Checksum(out[:size-footerSize], castagnoli))
	binary.LittleEndian.PutUint64(foot[8:], uint64(size))
	return out
}

// u32Writer appends little-endian u32 values to a byte slice.
func appendU32(b []byte, vs ...uint32) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

func appendU32Slice(b []byte, vs []uint32) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

// encodeSegmentFile renders one document as a self-contained segment
// file image: meta + topology bytecode + element region columns + CSR
// child offsets + per-tag posting triples, checksummed.
func encodeSegmentFile(uri string, generation uint64, doc *xmltree.Document, stats xmltree.Stats) ([]byte, error) {
	topo := storage.Encode(doc)
	topoBytes, err := topo.MarshalBinary()
	if err != nil {
		return nil, err
	}

	meta, err := json.Marshal(segMeta{URI: uri, Generation: generation, Stats: stats})
	if err != nil {
		return nil, err
	}

	// Element columns + ordinals in document order.
	var elements []*xmltree.Node
	ordinal := make(map[*xmltree.Node]int)
	xmltree.Elements(doc.Root, func(n *xmltree.Node) {
		ordinal[n] = len(elements)
		elements = append(elements, n)
	})
	n := len(elements)
	elem := make([]byte, 0, 8+12*n)
	elem = appendU32(elem, uint32(n), 0)
	for _, e := range elements {
		elem = appendU32(elem, uint32(e.Start))
	}
	for _, e := range elements {
		elem = appendU32(elem, uint32(e.End))
	}
	for _, e := range elements {
		elem = appendU32(elem, uint32(e.Level))
	}

	// CSR child offsets over element ordinals.
	offsets := make([]uint32, n+1)
	var children []uint32
	for i, e := range elements {
		offsets[i] = uint32(len(children))
		for c := e.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind == xmltree.ElementNode {
				children = append(children, uint32(ordinal[c]))
			}
		}
		_ = i
	}
	offsets[n] = uint32(len(children))
	csr := make([]byte, 0, 8+4*(n+1)+4*len(children))
	csr = appendU32(csr, uint32(n), uint32(len(children)))
	csr = appendU32Slice(csr, offsets)
	csr = appendU32Slice(csr, children)

	// Per-tag posting lists, in tag-table order (deterministic output).
	tagID := make(map[string]uint32, len(topo.Tags()))
	for id, t := range topo.Tags() {
		if _, ok := tagID[t]; !ok {
			tagID[t] = uint32(id)
		}
	}
	perTag := make(map[string][]uint32)
	for i, e := range elements {
		perTag[e.Tag] = append(perTag[e.Tag], uint32(i))
	}
	post := appendU32(nil, 0) // list count, patched below
	lists := 0
	for id, t := range topo.Tags() {
		ords, ok := perTag[t]
		if !ok || tagID[t] != uint32(id) {
			// Attribute-only names have no postings; a duplicate table
			// entry (cannot happen with the current interner, but cheap to
			// guard) is emitted once under its first id.
			continue
		}
		lists++
		post = appendU32(post, uint32(id), uint32(len(ords)))
		post = appendU32Slice(post, ords)
		for _, o := range ords {
			post = appendU32(post, uint32(elements[o].Start))
		}
		for _, o := range ords {
			post = appendU32(post, uint32(elements[o].End))
		}
		for _, o := range ords {
			post = appendU32(post, uint32(elements[o].Level))
		}
	}
	binary.LittleEndian.PutUint32(post, uint32(lists))

	var w sectionWriter
	w.add(secMeta, meta)
	w.add(secTopo, topoBytes)
	w.add(secElem, elem)
	w.add(secCSR, csr)
	w.add(secPost, post)
	return w.finish(), nil
}

// segFile is a structurally validated view over a segment file's bytes
// (typically an mmap'd region).
type segFile struct {
	data     []byte
	sections map[uint32][]byte
}

// openSegFile validates the framing of data — magic, version, footer
// size field, directory bounds — and indexes the sections. It does NOT
// verify the checksum (that would fault in every page); OpenDir streams
// the CRC from disk before a segment is ever admitted.
func openSegFile(data []byte) (*segFile, error) {
	if len(data) < headerSize+footerSize || string(data[:8]) != string(fileMagic) {
		return nil, corruptf("bad magic or truncated header")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return nil, corruptf("unsupported format version %d", v)
	}
	foot := data[len(data)-footerSize:]
	if string(foot[:4]) != string(footerMagic) {
		return nil, corruptf("bad footer magic (torn write?)")
	}
	if sz := binary.LittleEndian.Uint64(foot[8:]); sz != uint64(len(data)) {
		return nil, corruptf("footer size %d != file size %d (truncated)", sz, len(data))
	}
	count := binary.LittleEndian.Uint32(data[12:])
	if uint64(count) > uint64(len(data)-headerSize-footerSize)/dirEntSize {
		return nil, corruptf("section count %d exceeds file", count)
	}
	f := &segFile{data: data, sections: make(map[uint32][]byte, count)}
	for i := 0; i < int(count); i++ {
		d := data[headerSize+i*dirEntSize:]
		id := binary.LittleEndian.Uint32(d)
		off := binary.LittleEndian.Uint64(d[8:])
		length := binary.LittleEndian.Uint64(d[16:])
		if off > uint64(len(data)-footerSize) || length > uint64(len(data)-footerSize)-off {
			return nil, corruptf("section %d out of bounds", id)
		}
		f.sections[id] = data[off : off+length : off+length]
	}
	return f, nil
}

// verifyChecksum recomputes the footer CRC over data. Used by tests and
// by callers holding the full image in memory; OpenDir uses the
// streaming equivalent so it never materializes a segment to verify it.
func verifyChecksum(data []byte) error {
	if len(data) < footerSize {
		return corruptf("file shorter than footer")
	}
	foot := data[len(data)-footerSize:]
	want := binary.LittleEndian.Uint32(foot[4:])
	if got := crc32.Checksum(data[:len(data)-footerSize], castagnoli); got != want {
		return corruptf("checksum mismatch: file %08x, computed %08x", want, got)
	}
	return nil
}

func (f *segFile) section(id uint32) ([]byte, error) {
	s, ok := f.sections[id]
	if !ok {
		return nil, corruptf("missing section %d", id)
	}
	return s, nil
}

// hostLittleEndian reports whether u32 arrays can be aliased in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// u32view returns n uint32 values starting at byte offset off of b —
// zero-copy on little-endian hosts when the offset is 4-aligned, a
// decoded copy otherwise. The bool reports whether the result aliases b.
func u32view(b []byte, off, n int) ([]uint32, bool, error) {
	if n == 0 {
		return nil, false, nil
	}
	if off < 0 || n < 0 || off+4*n > len(b) || off+4*n < off {
		return nil, false, corruptf("u32 array [%d,+%d) out of bounds", off, n)
	}
	if hostLittleEndian && (off%4 == 0) && uintptr(unsafe.Pointer(&b[off]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[off])), n), true, nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[off+4*i:])
	}
	return out, false, nil
}

// decodeMeta parses the meta section.
func (f *segFile) decodeMeta() (segMeta, error) {
	sec, err := f.section(secMeta)
	if err != nil {
		return segMeta{}, err
	}
	var m segMeta
	if err := json.Unmarshal(sec, &m); err != nil {
		return segMeta{}, corruptf("meta: %v", err)
	}
	return m, nil
}

// materialized is a fully opened segment: the decoded labeled tree, the
// tag index wired to the segment's posting lists, and the statistics
// saved at encode time.
type materialized struct {
	doc   *xmltree.Document
	ix    *index.TagIndex
	stats xmltree.Stats
	// backing pins the mapped region every zero-copy column aliases.
	backing *mapping
}

// materializeSegFile decodes the tree from the topology bytecode,
// cross-checks it against the element columns and the CSR child
// offsets, and wires the posting lists into a TagIndex whose ColumnSets
// alias the mapping without copying.
func materializeSegFile(f *segFile, backing *mapping) (*materialized, error) {
	meta, err := f.decodeMeta()
	if err != nil {
		return nil, err
	}
	topoSec, err := f.section(secTopo)
	if err != nil {
		return nil, err
	}
	topo, err := storage.View(topoSec)
	if err != nil {
		return nil, corruptf("topology: %v", err)
	}
	doc, err := topo.Decode()
	if err != nil {
		return nil, corruptf("topology decode: %v", err)
	}
	doc.Name = meta.URI
	if meta.Stats.Bytes > 0 {
		doc.Bytes = meta.Stats.Bytes
	}

	// Element columns: the decoded tree must reproduce them exactly —
	// labels are deterministic, so any disagreement means the sections
	// are inconsistent with each other.
	elemSec, err := f.section(secElem)
	if err != nil {
		return nil, err
	}
	if len(elemSec) < 8 {
		return nil, corruptf("elem section truncated")
	}
	nElem := int(binary.LittleEndian.Uint32(elemSec))
	starts, _, err := u32view(elemSec, 8, nElem)
	if err != nil {
		return nil, err
	}
	ends, _, err := u32view(elemSec, 8+4*nElem, nElem)
	if err != nil {
		return nil, err
	}
	levels, _, err := u32view(elemSec, 8+8*nElem, nElem)
	if err != nil {
		return nil, err
	}
	var elements []*xmltree.Node
	xmltree.Elements(doc.Root, func(n *xmltree.Node) { elements = append(elements, n) })
	if len(elements) != nElem {
		return nil, corruptf("element count %d, columns say %d", len(elements), nElem)
	}
	for i, e := range elements {
		if uint32(e.Start) != starts[i] || uint32(e.End) != ends[i] || uint32(e.Level) != levels[i] {
			return nil, corruptf("element column %d disagrees with decoded tree", i)
		}
	}

	// CSR structural check: element i's child elements, by ordinal.
	csrSec, err := f.section(secCSR)
	if err != nil {
		return nil, err
	}
	if len(csrSec) < 8 {
		return nil, corruptf("csr section truncated")
	}
	if int(binary.LittleEndian.Uint32(csrSec)) != nElem {
		return nil, corruptf("csr element count mismatch")
	}
	nChildren := int(binary.LittleEndian.Uint32(csrSec[4:]))
	offsets, _, err := u32view(csrSec, 8, nElem+1)
	if err != nil {
		return nil, err
	}
	children, _, err := u32view(csrSec, 8+4*(nElem+1), nChildren)
	if err != nil {
		return nil, err
	}
	ordinal := make(map[*xmltree.Node]uint32, nElem)
	for i, e := range elements {
		ordinal[e] = uint32(i)
	}
	for i, e := range elements {
		lo, hi := offsets[i], offsets[i+1]
		if lo > hi || int(hi) > nChildren {
			return nil, corruptf("csr offsets of element %d out of range", i)
		}
		k := lo
		for c := e.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind != xmltree.ElementNode {
				continue
			}
			if k >= hi || children[k] != ordinal[c] {
				return nil, corruptf("csr children of element %d disagree with tree", i)
			}
			k++
		}
		if k != hi {
			return nil, corruptf("csr group of element %d has %d extra entries", i, hi-k)
		}
	}

	// Posting lists → inverted lists + zero-copy ColumnSets.
	postSec, err := f.section(secPost)
	if err != nil {
		return nil, err
	}
	if len(postSec) < 4 {
		return nil, corruptf("post section truncated")
	}
	nLists := int(binary.LittleEndian.Uint32(postSec))
	tags := topo.Tags()
	lists := make(map[string][]*xmltree.Node, nLists)
	cols := make(map[string]*ColumnSetRaw, nLists)
	pos := 4
	for li := 0; li < nLists; li++ {
		if pos+8 > len(postSec) {
			return nil, corruptf("posting list %d truncated", li)
		}
		tagID := binary.LittleEndian.Uint32(postSec[pos:])
		count := int(binary.LittleEndian.Uint32(postSec[pos+4:]))
		pos += 8
		if tagID >= uint32(len(tags)) {
			return nil, corruptf("posting list %d names tag %d of %d", li, tagID, len(tags))
		}
		ords, _, err := u32view(postSec, pos, count)
		if err != nil {
			return nil, err
		}
		pos += 4 * count
		pStart, _, err := u32view(postSec, pos, count)
		if err != nil {
			return nil, err
		}
		pos += 4 * count
		pEnd, _, err := u32view(postSec, pos, count)
		if err != nil {
			return nil, err
		}
		pos += 4 * count
		pLevel, _, err := u32view(postSec, pos, count)
		if err != nil {
			return nil, err
		}
		pos += 4 * count
		tag := tags[tagID]
		nodes := make([]*xmltree.Node, count)
		for i, o := range ords {
			if int(o) >= nElem {
				return nil, corruptf("posting for %q references element %d of %d", tag, o, nElem)
			}
			n := elements[o]
			if n.Tag != tag || uint32(n.Start) != pStart[i] {
				return nil, corruptf("posting for %q row %d disagrees with tree", tag, i)
			}
			nodes[i] = n
		}
		lists[tag] = nodes
		cols[tag] = &ColumnSetRaw{Start: pStart, End: pEnd, Level: pLevel, Nodes: nodes}
	}
	if len(lists) != countTags(elements) {
		return nil, corruptf("%d posting lists for %d element tags", len(lists), countTags(elements))
	}

	ixCols := make(map[string]*index.ColumnSet, len(cols)+1)
	for tag, c := range cols {
		ixCols[tag] = index.NewColumnSet(c.Start, c.End, c.Level, c.Nodes, backing)
	}
	ixCols["*"] = index.NewColumnSet(starts, ends, levels, elements, backing)
	ix := index.FromColumns(doc, elements, lists, ixCols)

	stats := meta.Stats
	if stats.TagCounts == nil {
		stats.TagCounts = map[string]int{}
	}
	return &materialized{doc: doc, ix: ix, stats: stats, backing: backing}, nil
}

// ColumnSetRaw is an intermediate posting-list view during materialize.
type ColumnSetRaw struct {
	Start, End, Level []uint32
	Nodes             []*xmltree.Node
}

func countTags(elements []*xmltree.Node) int {
	seen := make(map[string]struct{})
	for _, e := range elements {
		seen[e.Tag] = struct{}{}
	}
	return len(seen)
}
