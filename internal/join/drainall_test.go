package join

import (
	"testing"

	"blossomtree/internal/nestedlist"
)

func TestDrainAll(t *testing.T) {
	mk := func(n int) []*nestedlist.List {
		out := make([]*nestedlist.List, n)
		for i := range out {
			out[i] = &nestedlist.List{}
		}
		return out
	}
	inputs := [][]*nestedlist.List{mk(3), nil, mk(1), mk(7), mk(0), mk(2)}
	for _, workers := range []int{-1, 1, 2, 16} {
		ops := make([]Operator, len(inputs))
		for i, ls := range inputs {
			ops[i] = NewSliceOperator(ls)
		}
		got := DrainAll(ops, workers)
		if len(got) != len(inputs) {
			t.Fatalf("workers=%d: %d outputs, want %d", workers, len(got), len(inputs))
		}
		for i, ls := range inputs {
			if len(got[i]) != len(ls) {
				t.Errorf("workers=%d: op %d drained %d instances, want %d", workers, i, len(got[i]), len(ls))
				continue
			}
			for j := range ls {
				if got[i][j] != ls[j] {
					t.Errorf("workers=%d: op %d instance %d out of order", workers, i, j)
				}
			}
		}
	}
	if got := DrainAll(nil, 4); len(got) != 0 {
		t.Errorf("empty input returned %d outputs", len(got))
	}
}
