package join

import (
	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// PipelinedDescJoin is the pipelined //-join of §4.2: a merge-join over
// two instance streams whose slot projections are in document order
// (Theorem 1 guarantees this for NoK outputs; Theorem 2 makes the
// composition sound on non-recursive documents). Each GetNext pulls from
// the two input iterators without materializing either side.
//
// OuterSlot is the Dewey slot of the link's outer (ancestor) endpoint;
// InnerSlot is the inner NoK's root slot, which holds exactly one node
// per instance.
//
// PerPair controls the emission mode: true emits one merged instance per
// (outer, inner) pair — the for-bound case, where each inner match is its
// own iteration; false groups all inner matches inside one outer
// instance into a single merged instance — the existential case
// (predicate subtrees, let-bound regions). Optional keeps outer
// instances with no inner match (the "l" link mode), emitting them with
// the inner region left empty.
type PipelinedDescJoin struct {
	Outer, Inner Operator
	OuterSlot    int
	InnerSlot    int
	PerPair      bool
	Optional     bool

	// Stats, when non-nil, accumulates containment-test counts for
	// EXPLAIN ANALYZE (the merge's comparison work).
	Stats *obs.OpStats
	// Gov, when non-nil, polls cancellation as the merge advances and
	// fires emission faults; a violation sets Err and ends the stream.
	Gov *gov.Governor

	m       *nestedlist.List // current outer instance
	mHi     int              // max end of the outer slot's region
	n       *nestedlist.List // current inner instance
	matched bool             // current outer produced at least one pair
	started bool
	done    bool
	// Err records a merge failure (malformed composition); the stream
	// ends when it is set.
	Err error
}

// GetNext returns the next joined instance or nil.
func (j *PipelinedDescJoin) GetNext() *nestedlist.List {
	if j.done {
		return nil
	}
	if !j.started {
		j.started = true
		j.advanceOuter()
		j.n = j.Inner.GetNext()
	}
	for {
		if err := j.Gov.Poll(); err != nil {
			j.fail(err)
			return nil
		}
		if j.m == nil {
			j.done = true
			return nil
		}
		if j.n == nil {
			// Inner exhausted: flush remaining outers (optional mode).
			out := j.flushOuter()
			if out != nil {
				return out
			}
			if j.m == nil {
				j.done = true
				return nil
			}
			continue
		}
		inner := j.n.ProjectSlot(j.InnerSlot)
		if len(inner) == 0 {
			j.n = j.Inner.GetNext()
			continue
		}
		nn := inner[0]
		if j.mHi < nn.Start {
			// Outer region ends before the inner node: this outer can
			// never match later inners either.
			out := j.flushOuter()
			if out != nil {
				return out
			}
			continue
		}
		outerNodes := j.m.ProjectSlot(j.OuterSlot)
		j.Stats.AddComparisons(1)
		if !containsAny(outerNodes, nn) {
			// Inner node precedes the outer region or sits in a gap.
			j.n = j.Inner.GetNext()
			continue
		}
		if j.PerPair {
			merged, err := nestedlist.Merge(j.m, j.n)
			if err != nil {
				j.fail(err)
				return nil
			}
			j.matched = true
			j.n = j.Inner.GetNext()
			if err := j.Gov.Emitted(fault.SitePipelined); err != nil {
				j.fail(err)
				return nil
			}
			return merged
		}
		// Existential grouping: absorb every inner whose node falls in
		// this outer's region (they are consecutive: inners arrive in
		// document order and the region is one interval on non-recursive
		// inputs).
		acc := j.m
		var anchors []*xmltree.Node
		var batch []*nestedlist.List
		single := len(outerNodes) == 1
		for j.n != nil {
			in := j.n.ProjectSlot(j.InnerSlot)
			if len(in) == 0 {
				j.n = j.Inner.GetNext()
				continue
			}
			j.Stats.AddComparisons(1)
			if in[0].Start > j.mHi || !containsAny(outerNodes, in[0]) {
				break
			}
			if single {
				// Batch the inners and merge balanced below: absorbing k
				// instances one by one re-copies the accumulator k times.
				batch = append(batch, j.n)
			} else {
				// Grouped outer slots need per-inner attachment so each
				// witness lands under its own containing item.
				merged, err := nestedlist.Merge(acc, j.n)
				if err != nil {
					j.fail(err)
					return nil
				}
				acc = merged
			}
			anchors = append(anchors, in[0])
			j.n = j.Inner.GetNext()
		}
		if len(batch) > 0 {
			inner, err := nestedlist.MergeBalanced(batch)
			if err == nil {
				acc, err = nestedlist.Merge(acc, inner)
			}
			if err != nil {
				j.fail(err)
				return nil
			}
		}
		j.advanceOuter()
		if !j.Optional {
			pruned, ok := pruneWitnessless(acc, j.OuterSlot, anchors)
			if !ok {
				continue
			}
			acc = pruned
		}
		if err := j.Gov.Emitted(fault.SitePipelined); err != nil {
			j.fail(err)
			return nil
		}
		return acc
	}
}

// flushOuter finishes the current outer instance: in optional mode an
// unmatched outer is emitted with its inner region empty; then the next
// outer is loaded. It returns the instance to emit, or nil.
func (j *PipelinedDescJoin) flushOuter() *nestedlist.List {
	m, wasMatched := j.m, j.matched
	j.advanceOuter()
	if m != nil && !wasMatched && j.Optional {
		if err := j.Gov.Emitted(fault.SitePipelined); err != nil {
			j.fail(err)
			return nil
		}
		return m
	}
	return nil
}

func (j *PipelinedDescJoin) advanceOuter() {
	j.m = j.Outer.GetNext()
	j.matched = false
	for j.m != nil {
		if _, hi, ok := region(j.m, j.OuterSlot); ok {
			j.mHi = hi
			return
		}
		// Outer instance with an empty join slot can never match.
		if j.Optional {
			// Still emit it downstream? An empty mandatory-side slot means
			// the outer kept an optional region empty; it joins nothing,
			// and optional mode passes it through via flushOuter on the
			// next cycle. Mark as matched=false with an empty region that
			// precedes everything.
			j.mHi = -1
			return
		}
		j.m = j.Outer.GetNext()
	}
}

func (j *PipelinedDescJoin) fail(err error) {
	j.Err = err
	j.done = true
}
