package join

import (
	"blossomtree/internal/core"
	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// Predicate evaluates a join condition between two instances.
type Predicate func(m, n *nestedlist.List) (bool, error)

// CrossingPredicate adapts a BlossomTree crossing edge to a join
// predicate over the Dewey slots of its two endpoints.
func CrossingPredicate(c *core.Crossing, fromSlot, toSlot int) Predicate {
	return func(m, n *nestedlist.List) (bool, error) {
		return c.Eval(m.ProjectSlot(fromSlot), n.ProjectSlot(toSlot)), nil
	}
}

// DescPredicate is the structural //-join predicate: some node of the
// outer slot properly contains the inner slot's node.
func DescPredicate(outerSlot, innerSlot int) Predicate {
	return func(m, n *nestedlist.List) (bool, error) {
		inner := n.ProjectSlot(innerSlot)
		if len(inner) == 0 {
			return false, nil
		}
		return containsAny(m.ProjectSlot(outerSlot), inner[0]), nil
	}
}

// NestedLoopJoin is the naive nested-loop join of §4.3, required for the
// joins that are not order-preserving — <<, following, value-based joins
// and deep-equal (Example 5 shows why << cannot be pipelined). Both
// inputs are materialized; every pair is tested.
type NestedLoopJoin struct {
	Outer, Inner Operator
	Pred         Predicate
	// Stop, when non-nil, is polled per outer row; returning true ends
	// the stream early.
	Stop func() bool
	// Gov, when non-nil, polls cancellation per pair test and fires
	// emission faults; a violation sets Err and ends the stream.
	Gov *gov.Governor

	// Stats, when non-nil, counts predicate evaluations (the pair tests
	// of the quadratic loop) for EXPLAIN ANALYZE.
	Stats *obs.OpStats

	outer  []*nestedlist.List
	inner  []*nestedlist.List
	oi, ii int
	init   bool
	Err    error
}

// GetNext returns the next joined instance or nil.
func (j *NestedLoopJoin) GetNext() *nestedlist.List {
	if j.Err != nil {
		return nil
	}
	if !j.init {
		j.outer = Drain(j.Outer)
		j.inner = Drain(j.Inner)
		j.init = true
	}
	for ; j.oi < len(j.outer); j.oi++ {
		if j.Stop != nil && j.Stop() {
			return nil
		}
		for j.ii < len(j.inner) {
			m, n := j.outer[j.oi], j.inner[j.ii]
			j.ii++
			j.Stats.AddComparisons(1)
			if err := j.Gov.Poll(); err != nil {
				j.Err = err
				return nil
			}
			ok, err := j.Pred(m, n)
			if err != nil {
				j.Err = err
				return nil
			}
			if !ok {
				continue
			}
			merged, err := nestedlist.Merge(m, n)
			if err != nil {
				j.Err = err
				return nil
			}
			if err := j.Gov.Emitted(fault.SiteNestedLoop); err != nil {
				j.Err = err
				return nil
			}
			return merged
		}
		j.ii = 0
	}
	return nil
}

// CrossingFilter applies a crossing predicate whose two endpoints are
// already present in each input instance (a selection, used after the
// instances carrying both endpoints have been joined).
type CrossingFilter struct {
	Input            Operator
	Crossing         *core.Crossing
	FromSlot, ToSlot int

	// Stats, when non-nil, counts crossing-predicate evaluations.
	Stats *obs.OpStats
}

// GetNext returns the next passing instance or nil.
func (f *CrossingFilter) GetNext() *nestedlist.List {
	for {
		l := f.Input.GetNext()
		if l == nil {
			return nil
		}
		f.Stats.AddComparisons(1)
		if f.Crossing.Eval(l.ProjectSlot(f.FromSlot), l.ProjectSlot(f.ToSlot)) {
			return l
		}
	}
}

// PositionFilter keeps only the k-th instance of the stream whose slot
// projection is non-empty — the σ_position(ID)=k selection of §3.3,
// applied when a positional predicate lands on a cut-edge target (e.g.
// //book[2], where position counts across the whole anchor sequence).
type PositionFilter struct {
	Input Operator
	Slot  int
	Pos   int // 1-based

	seen int
	done bool
}

// GetNext returns the selected instance once, then nil.
func (f *PositionFilter) GetNext() *nestedlist.List {
	if f.done {
		return nil
	}
	for {
		l := f.Input.GetNext()
		if l == nil {
			f.done = true
			return nil
		}
		if len(l.ProjectSlot(f.Slot)) == 0 {
			continue
		}
		f.seen++
		if f.seen == f.Pos {
			f.done = true
			return l
		}
	}
}

// SelectFilter applies a node-level selection σ_ϕ(ID) to each instance,
// dropping instances the selection invalidates.
type SelectFilter struct {
	Input Operator
	Dewey core.Dewey
	Pred  func(n *xmltree.Node, pos int) bool
	Err   error
}

// GetNext returns the next valid filtered instance or nil.
func (f *SelectFilter) GetNext() *nestedlist.List {
	if f.Err != nil {
		return nil
	}
	for {
		l := f.Input.GetNext()
		if l == nil {
			return nil
		}
		out, ok, err := l.Select(f.Dewey, f.Pred)
		if err != nil {
			f.Err = err
			return nil
		}
		if ok {
			return out
		}
	}
}
