package join

import (
	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/nok"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// BoundedNLJoin is the bounded nested-loop //-join of §4.3: the outer
// NoK is always on the left, and for every outer instance the inner NoK
// is re-matched by a scan bounded to the region (p₁, p₂) of the outer
// join node — the outer match's subtree — instead of the whole document.
// It remains correct on recursive documents (where the pipelined join is
// not), at the cost of one bounded scan per outer instance.
type BoundedNLJoin struct {
	Outer     Operator
	OuterSlot int
	Inner     *nok.Matcher
	InnerSlot int
	PerPair   bool
	Optional  bool

	// Stop, when non-nil, is polled per outer instance; returning true
	// ends the stream early.
	Stop func() bool
	// Gov, when non-nil, governs the inner bounded scans (their node
	// visits charge the query's node budget through the inner iterators)
	// and fires emission faults; a violation sets Err and ends the
	// stream.
	Gov *gov.Governor

	// Stats, when non-nil, receives the inner scans' node visits and
	// the per-inner containment/dedup tests for EXPLAIN ANALYZE.
	Stats *obs.OpStats

	queue []*nestedlist.List
	done  bool
	// ScannedNodes accumulates the inner scans' node visits (the I/O
	// proxy the experiments report).
	ScannedNodes int
	Err          error
}

// GetNext returns the next joined instance or nil.
func (j *BoundedNLJoin) GetNext() *nestedlist.List {
	for {
		if j.Err != nil {
			return nil
		}
		if len(j.queue) > 0 {
			l := j.queue[0]
			j.queue = j.queue[1:]
			if err := j.Gov.Emitted(fault.SiteBoundedNL); err != nil {
				j.Err = err
				return nil
			}
			return l
		}
		if j.done {
			return nil
		}
		if j.Stop != nil && j.Stop() {
			j.done = true
			return nil
		}
		m := j.Outer.GetNext()
		if m == nil {
			j.done = true
			return nil
		}
		j.joinOne(m)
	}
}

// joinOne computes all join results for one outer instance, appending
// them to the queue.
func (j *BoundedNLJoin) joinOne(m *nestedlist.List) {
	outerNodes := m.ProjectSlot(j.OuterSlot)
	matched := false
	acc := m
	var anchors []*xmltree.Node
	var batch []*nestedlist.List
	single := len(outerNodes) == 1
	// Deduplicate inner instances across overlapping outer regions
	// (nested outer nodes in recursive documents re-scan shared
	// subtrees); an instance is identified by its anchor node plus its
	// ordinal among the anchor's expanded instances, which is stable
	// across scans.
	seen := map[[2]int]bool{}
	for _, a := range outerNodes {
		it := nok.NewSubtreeIterator(j.Inner, a)
		it.Stop = j.Stop
		it.Gov = j.Gov
		local := map[int]int{}
		for n := it.GetNext(); n != nil; n = it.GetNext() {
			j.Stats.AddComparisons(1)
			if anchor := n.ProjectSlot(j.InnerSlot); len(anchor) > 0 {
				start := anchor[0].Start
				key := [2]int{start, local[start]}
				local[start]++
				if seen[key] {
					continue
				}
				seen[key] = true
			}
			if j.PerPair {
				merged, err := nestedlist.Merge(m, n)
				if err != nil {
					j.Err = err
					return
				}
				j.queue = append(j.queue, merged)
				matched = true
			} else {
				if single {
					batch = append(batch, n)
				} else {
					merged, err := nestedlist.Merge(acc, n)
					if err != nil {
						j.Err = err
						return
					}
					acc = merged
				}
				matched = true
				if as := n.ProjectSlot(j.InnerSlot); len(as) > 0 {
					anchors = append(anchors, as[0])
				}
			}
		}
		j.ScannedNodes += it.ScannedNodes
		j.Stats.AddScanned(int64(it.ScannedNodes))
		if it.Err != nil {
			j.Err = it.Err
			return
		}
	}
	if len(batch) > 0 {
		inner, err := nestedlist.MergeBalanced(batch)
		if err == nil {
			acc, err = nestedlist.Merge(acc, inner)
		}
		if err != nil {
			j.Err = err
			return
		}
	}
	switch {
	case matched && !j.PerPair:
		if !j.Optional {
			// Mandatory predicate subtree: every outer-slot item needs
			// its own witness.
			pruned, ok := pruneWitnessless(acc, j.OuterSlot, anchors)
			if !ok {
				return
			}
			acc = pruned
		}
		j.queue = append(j.queue, acc)
	case !matched && j.Optional:
		j.queue = append(j.queue, m)
	}
}
