package join

import (
	"fmt"
	"sort"

	"blossomtree/internal/core"
	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/index"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// TwigStack is the holistic twig-join baseline of Table 3 ("TS"), after
// Bruno, Koudas and Srivastava [7]. It evaluates a whole pattern tree
// against a document using per-vertex tag-index streams and chained
// stacks: each root-to-leaf path of the twig is evaluated by the
// PathStack algorithm (linear merge of the path's streams with a stack
// per pattern vertex, emitting compactly-encoded path solutions), and
// the per-leaf path solutions are then merge-joined on their shared
// prefix vertices into twig matches.
//
// As in the original system, ancestor-descendant edges are enforced by
// the stacks; parent-child (and the root's document-element anchoring)
// are post-filtered on the merged matches, which preserves correctness
// for the mixed //-and-/ queries of the benchmark suite while staying
// optimal for the all-// queries TwigStack is optimal on.
//
// Restrictions (the plan layer falls back to the other operators when
// they apply): no following-sibling edges, no positional constraints, no
// optional ("l") edges — the classic algorithm is defined for mandatory
// structural twigs.
type TwigStack struct {
	root     *core.Vertex
	vertices []*core.Vertex
	ix       *index.TagIndex
	paths    [][]*core.Vertex // root-to-leaf vertex chains

	// PushCount counts stack pushes across all PathStack runs (a proxy
	// for holistic-join work reported by the ablation benches).
	PushCount int
	// Stats, when non-nil, receives stream-element scans, merge-phase
	// pair tests, and per-vertex stack depths for EXPLAIN ANALYZE.
	Stats *obs.OpStats
	// Stop, when non-nil, is polled periodically; returning true aborts
	// the run with ErrStopped.
	Stop func() bool
	// Gov, when non-nil, charges stream advances against the query's
	// node budget (through the per-vertex index streams), polls
	// cancellation alongside Stop, and fires a fault per emitted path
	// solution; a violation aborts Run with the typed error.
	Gov *gov.Governor
	// Keep lists the vertices whose bindings the caller needs (returning
	// variables). When set, the merge phase projects intermediate
	// matches onto Keep plus the vertices still required by later path
	// joins and deduplicates — a semi-join reduction that keeps the
	// distinct-binding result while avoiding the combinatorial
	// enumeration of existential witnesses. Nil keeps every vertex (full
	// twig-match enumeration).
	Keep []*core.Vertex
}

// ErrStopped reports a cancelled TwigStack run.
var ErrStopped = fmt.Errorf("join: twig join stopped by deadline")

// TwigMatch assigns a matched node to every pattern vertex (keyed by
// vertex ID).
type TwigMatch map[int]*xmltree.Node

// NewTwigStack prepares a holistic join for the pattern tree rooted at
// root (which must not be a document-root vertex; pass its child and let
// the root edge be post-filtered).
func NewTwigStack(root *core.Vertex, ix *index.TagIndex) (*TwigStack, error) {
	ts := &TwigStack{root: root, ix: ix}
	var walk func(v *core.Vertex, chain []*core.Vertex) error
	walk = func(v *core.Vertex, chain []*core.Vertex) error {
		if v.ParentRel == core.RelFollowingSibling && v != root {
			return fmt.Errorf("join: TwigStack does not support following-sibling edges")
		}
		if _, has := v.PositionConstraint(); has {
			return fmt.Errorf("join: TwigStack does not support positional constraints")
		}
		if v != root && v.ParentMode == core.Optional {
			return fmt.Errorf("join: TwigStack does not support optional edges")
		}
		ts.vertices = append(ts.vertices, v)
		chain = append(chain, v)
		if len(v.Children) == 0 {
			path := make([]*core.Vertex, len(chain))
			copy(path, chain)
			ts.paths = append(ts.paths, path)
			return nil
		}
		for _, c := range v.Children {
			if err := walk(c, chain); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, nil); err != nil {
		return nil, err
	}
	return ts, nil
}

// stream builds the vertex's input stream: its tag's inverted list
// filtered by the vertex's value constraints.
func (ts *TwigStack) stream(v *core.Vertex) []*xmltree.Node {
	nodes := ts.ix.Nodes(v.Test)
	if len(v.Constraints) == 0 {
		return nodes
	}
	var out []*xmltree.Node
	for _, n := range nodes {
		if v.MatchesNode(n) {
			out = append(out, n)
		}
	}
	return out
}

// tsEntry is one stack entry: a node plus the index of its containing
// entry in the parent vertex's stack at push time.
type tsEntry struct {
	node      *xmltree.Node
	parentIdx int
}

// pathSolution assigns nodes to one root-to-leaf chain, root first.
type pathSolution []*xmltree.Node

// pathStack runs the PathStack algorithm over one root-to-leaf chain
// and returns all its path solutions (each a containment chain
// node₀ ≻ node₁ ≻ … ≻ nodeₗ). A governance violation aborts it with
// the typed error.
func (ts *TwigStack) pathStack(path []*core.Vertex) ([]pathSolution, error) {
	k := len(path)
	streams := make([]*index.Stream, k)
	for i, v := range path {
		streams[i] = index.NewStream(ts.stream(v))
		streams[i].Stats = ts.Stats
		streams[i].Gov = ts.Gov
	}
	stacks := make([][]tsEntry, k)
	var solutions []pathSolution
	leaf := k - 1

	var expand func(level, upTo int, suffix pathSolution)
	expand = func(level, upTo int, suffix pathSolution) {
		if level < 0 {
			sol := make(pathSolution, len(suffix))
			copy(sol, suffix)
			solutions = append(solutions, sol)
			// A fired fault or exhausted budget becomes sticky in the
			// governor; the main loop aborts at its next check.
			_ = ts.Gov.Emitted(fault.SiteTwigStack)
			return
		}
		for idx := 0; idx <= upTo && idx < len(stacks[level]); idx++ {
			e := stacks[level][idx]
			if e.node == suffix[0] {
				// Containment is strict: a node cannot be its own
				// ancestor (same-tag chains share inverted lists, so the
				// same node can sit on two adjacent stacks).
				continue
			}
			expand(level-1, e.parentIdx, append(pathSolution{e.node}, suffix...))
		}
	}

	steps := 0
	for !streams[leaf].EOF() {
		steps++
		if ts.Stop != nil && steps%1024 == 0 && ts.Stop() {
			return nil, ErrStopped
		}
		if err := ts.Gov.Poll(); err != nil {
			return nil, err
		}
		// qmin: the non-exhausted stream with the smallest head.
		qmin := -1
		for i := 0; i < k; i++ {
			if streams[i].EOF() {
				continue
			}
			if qmin == -1 || streams[i].Head().Start < streams[qmin].Head().Start {
				qmin = i
			}
		}
		if qmin == -1 {
			break
		}
		h := streams[qmin].Head()
		// Pop every entry that ends before the new node starts.
		for i := 0; i < k; i++ {
			for len(stacks[i]) > 0 && stacks[i][len(stacks[i])-1].node.End < h.Start {
				stacks[i] = stacks[i][:len(stacks[i])-1]
			}
		}
		if qmin == 0 || len(stacks[qmin-1]) > 0 {
			parentIdx := -1
			if qmin > 0 {
				parentIdx = len(stacks[qmin-1]) - 1
			}
			stacks[qmin] = append(stacks[qmin], tsEntry{node: h, parentIdx: parentIdx})
			ts.PushCount++
			ts.Stats.ObserveStackDepth(len(stacks[qmin]))
			if qmin == leaf {
				e := stacks[leaf][len(stacks[leaf])-1]
				expand(leaf-1, e.parentIdx, pathSolution{e.node})
				stacks[leaf] = stacks[leaf][:len(stacks[leaf])-1]
				if err := ts.Gov.Err(); err != nil {
					return nil, err
				}
			}
		}
		streams[qmin].Advance()
	}
	return solutions, ts.Gov.Err()
}

// Run evaluates the twig and returns its matches. With Keep unset every
// twig match is enumerated; with Keep set, matches are the distinct
// combinations of the kept vertices' bindings (sufficient for XPath
// result projection and variable binding, and immune to the witness
// blowup of existential branches). Matches are grouped by the merge, not
// globally document-ordered — consumers sort as needed.
func (ts *TwigStack) Run() ([]TwigMatch, error) {
	if len(ts.paths) == 0 {
		return nil, nil
	}
	// Evaluate each root-to-leaf path; parent-child edges and the root's
	// anchoring are enforced per path solution here, so the merge phase
	// is containment-complete.
	pathSols := make([][]pathSolution, len(ts.paths))
	for i, p := range ts.paths {
		raw, err := ts.pathStack(p)
		if err != nil {
			return nil, err
		}
		if ts.Stop != nil && ts.Stop() {
			return nil, ErrStopped
		}
		kept := raw[:0]
		for _, sol := range raw {
			if ts.pathStructOK(p, sol) {
				kept = append(kept, sol)
			}
		}
		pathSols[i] = kept
		if len(kept) == 0 {
			return nil, nil // a mandatory path with no solutions kills the twig
		}
	}

	// needed(i): vertex IDs that must survive after joining path i —
	// the kept vertices plus everything later paths join or bind on.
	keepIDs := map[int]bool{}
	if ts.Keep == nil {
		for _, v := range ts.vertices {
			keepIDs[v.ID] = true
		}
	} else {
		for _, v := range ts.Keep {
			keepIDs[v.ID] = true
		}
	}
	needed := func(pi int) map[int]bool {
		out := map[int]bool{}
		for id := range keepIDs {
			out[id] = true
		}
		for _, path := range ts.paths[pi+1:] {
			for _, v := range path {
				out[v.ID] = true
			}
		}
		return out
	}
	reduce := func(ms []TwigMatch, need map[int]bool) []TwigMatch {
		seen := map[string]bool{}
		out := ms[:0]
		for _, m := range ms {
			pm := TwigMatch{}
			for _, v := range ts.vertices {
				if need[v.ID] {
					if n, ok := m[v.ID]; ok {
						pm[v.ID] = n
					}
				}
			}
			k := twigKey(pm, ts.vertices)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, pm)
		}
		return out
	}

	matches := make([]TwigMatch, 0, len(pathSols[0]))
	for _, sol := range pathSols[0] {
		m := TwigMatch{}
		for j, v := range ts.paths[0] {
			m[v.ID] = sol[j]
		}
		matches = append(matches, m)
	}
	matches = reduce(matches, needed(0))

	for pi := 1; pi < len(ts.paths); pi++ {
		path := ts.paths[pi]
		// Shared prefix: vertices of this path already bound by earlier
		// paths (tree structure and DFS path order make this a prefix).
		bound := map[int]bool{}
		for _, p := range ts.paths[:pi] {
			for _, v := range p {
				bound[v.ID] = true
			}
		}
		shared := 0
		for shared < len(path) && bound[path[shared].ID] {
			shared++
		}
		// Hash the new path's solutions by their shared-prefix nodes.
		idx := make(map[string][]pathSolution)
		for _, sol := range pathSols[pi] {
			k := prefixKey(sol[:shared])
			idx[k] = append(idx[k], sol)
		}
		var next []TwigMatch
		for mi, m := range matches {
			if ts.Stop != nil && mi%1024 == 0 && ts.Stop() {
				return nil, ErrStopped
			}
			if err := ts.Gov.Poll(); err != nil {
				return nil, err
			}
			pk := matchKey(m, path[:shared])
			ts.Stats.AddComparisons(1)
			for _, sol := range idx[pk] {
				nm := TwigMatch{}
				for id, n := range m {
					nm[id] = n
				}
				for j := shared; j < len(path); j++ {
					nm[path[j].ID] = sol[j]
				}
				next = append(next, nm)
			}
		}
		matches = reduce(next, needed(pi))
		if len(matches) == 0 {
			return nil, nil
		}
	}
	return matches, nil
}

// pathStructOK verifies one path solution's parent-child edges and the
// pattern root's document-element anchoring.
func (ts *TwigStack) pathStructOK(path []*core.Vertex, sol pathSolution) bool {
	root := path[0]
	if root.Parent != nil && root.Parent.IsDocRoot() && root.ParentRel == core.RelChild && sol[0].Level != 1 {
		return false
	}
	for j := 1; j < len(path); j++ {
		if path[j].ParentRel == core.RelChild && sol[j].Parent != sol[j-1] {
			return false
		}
	}
	return true
}

// twigKey serializes a match's bindings in vertex order.
func twigKey(m TwigMatch, vs []*core.Vertex) string {
	b := make([]byte, 0, len(m)*12)
	for _, v := range vs {
		if n, ok := m[v.ID]; ok {
			for i := 0; i < 4; i++ {
				b = append(b, byte(v.ID>>(i*8)))
			}
			s := n.Start
			for i := 0; i < 8; i++ {
				b = append(b, byte(s>>(i*8)))
			}
		}
	}
	return string(b)
}

func prefixKey(nodes []*xmltree.Node) string {
	b := make([]byte, 0, len(nodes)*8)
	for _, n := range nodes {
		s := n.Start
		for i := 0; i < 8; i++ {
			b = append(b, byte(s>>(i*8)))
		}
	}
	return string(b)
}

func matchKey(m TwigMatch, vs []*core.Vertex) string {
	nodes := make([]*xmltree.Node, len(vs))
	for i, v := range vs {
		nodes[i] = m[v.ID]
	}
	return prefixKey(nodes)
}

// Project returns the distinct nodes matched by the given vertex across
// all matches, in document order.
func Project(matches []TwigMatch, v *core.Vertex) []*xmltree.Node {
	seen := map[*xmltree.Node]bool{}
	var out []*xmltree.Node
	for _, m := range matches {
		if n := m[v.ID]; n != nil && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

func sortNodes(ns []*xmltree.Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Start < ns[j].Start })
}
