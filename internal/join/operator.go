// Package join implements the physical join operators of §4.2–4.3 and
// the holistic baselines they are compared against:
//
//   - PipelinedDescJoin — the merge-join-style //-join over two NoK
//     iterators (§4.2), valid on order-preserving inputs (Theorem 2:
//     non-recursive documents);
//   - BoundedNLJoin — the bounded nested-loop //-join of §4.3, whose
//     inner NoK scans only the outer match's (p₁, p₂) region;
//   - NestedLoopJoin — the naive nested-loop join for predicates that
//     are not order-preserving (<<, value joins, deep-equal);
//   - CrossingFilter — the selection form of a crossing predicate whose
//     endpoints already live in one instance;
//   - StackJoin — the stack-based binary structural join of [2]
//     (Al-Khalifa et al.), used node-level;
//   - TwigStack — the holistic twig join of [7] (Bruno et al.), the
//     "TS" baseline of Table 3.
package join

import (
	"runtime"
	"sync"

	"blossomtree/internal/nestedlist"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// Operator is a pull-based stream of NestedList instances; GetNext
// returns nil when exhausted. nok.Iterator and every join operator here
// implement it.
//
// Operators are single-consumer: one operator must not be pulled from
// two goroutines. Distinct operator trees over the same (immutable)
// document are independent and may be drained concurrently — that is
// the fan-out DrainAll and the planner's parallel pre-scan exploit.
type Operator interface {
	GetNext() *nestedlist.List
}

// Instrumented wraps an operator and attributes its stream-level work —
// GetNext calls, instances emitted, and (when enabled) inclusive wall
// time — to an obs.OpStats node. Operators count their internal work
// (nodes scanned, comparisons, stack depth) into the same node
// themselves; the wrapper owns the measurements every operator shares,
// so instrumentation does not disturb the operators' control flow.
//
// Elapsed time is inclusive of children: a parent's GetNext pulls its
// inputs, as in a conventional EXPLAIN ANALYZE actual-time column.
type Instrumented struct {
	Op    Operator
	Stats *obs.OpStats
}

// Instrument wraps op so its emissions and wall time are recorded in
// stats. A nil stats returns op unchanged.
func Instrument(op Operator, stats *obs.OpStats) Operator {
	if stats == nil {
		return op
	}
	return &Instrumented{Op: op, Stats: stats}
}

// GetNext pulls from the wrapped operator, recording the call.
func (w *Instrumented) GetNext() *nestedlist.List {
	start := w.Stats.Start()
	l := w.Op.GetNext()
	w.Stats.Stop(start)
	w.Stats.AddCall()
	if l != nil {
		w.Stats.AddEmitted(1)
	}
	return l
}

// Unwrap returns the underlying operator.
func (w *Instrumented) Unwrap() Operator { return w.Op }

// Drain collects all remaining instances of an operator.
func Drain(op Operator) []*nestedlist.List {
	var out []*nestedlist.List
	for l := op.GetNext(); l != nil; l = op.GetNext() {
		out = append(out, l)
	}
	return out
}

// DrainAll drains several independent operators concurrently across at
// most workers goroutines (workers <= 0 means GOMAXPROCS) and returns
// each operator's instances at its input position. Every operator must
// be exclusively owned by the call: DrainAll distributes operators, not
// GetNext calls, so the single-consumer contract holds.
func DrainAll(ops []Operator, workers int) [][]*nestedlist.List {
	out := make([][]*nestedlist.List, len(ops))
	if len(ops) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	if workers == 1 {
		for i, op := range ops {
			out[i] = Drain(op)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = Drain(ops[i])
			}
		}()
	}
	for i := range ops {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// SliceOperator replays a materialized instance sequence.
type SliceOperator struct {
	ls  []*nestedlist.List
	pos int
}

// NewSliceOperator wraps a slice as an Operator.
func NewSliceOperator(ls []*nestedlist.List) *SliceOperator { return &SliceOperator{ls: ls} }

// GetNext returns the next instance or nil.
func (s *SliceOperator) GetNext() *nestedlist.List {
	if s.pos >= len(s.ls) {
		return nil
	}
	l := s.ls[s.pos]
	s.pos++
	return l
}

// region returns the covering label interval of an instance's slot
// projection, and whether the slot has any nodes.
func region(l *nestedlist.List, slot int) (lo, hi int, ok bool) {
	ns := l.ProjectSlot(slot)
	if len(ns) == 0 {
		return 0, 0, false
	}
	lo = ns[0].Start
	hi = ns[0].End
	for _, n := range ns[1:] {
		if n.Start < lo {
			lo = n.Start
		}
		if n.End > hi {
			hi = n.End
		}
	}
	return lo, hi, true
}

// pruneWitnessless removes outer-slot items that contain none of the
// matched inner anchors — the per-item existential semantics of a
// mandatory predicate subtree (a c2 in //b1//c2[//c3] qualifies only if
// it has its own c3 witness). It reports false when the selection
// invalidates the instance (every item of a mandatory slot removed).
func pruneWitnessless(l *nestedlist.List, outerSlot int, anchors []*xmltree.Node) (*nestedlist.List, bool) {
	return l.SelectSlot(outerSlot, func(n *xmltree.Node, _ int) bool {
		for _, a := range anchors {
			if n.IsAncestorOf(a) {
				return true
			}
		}
		return false
	})
}

// containsAny reports whether any node of ancs properly contains d.
func containsAny(ancs []*xmltree.Node, d *xmltree.Node) bool {
	for _, a := range ancs {
		if a.IsAncestorOf(d) {
			return true
		}
	}
	return false
}
