// Package join implements the physical join operators of §4.2–4.3 and
// the holistic baselines they are compared against:
//
//   - PipelinedDescJoin — the merge-join-style //-join over two NoK
//     iterators (§4.2), valid on order-preserving inputs (Theorem 2:
//     non-recursive documents);
//   - BoundedNLJoin — the bounded nested-loop //-join of §4.3, whose
//     inner NoK scans only the outer match's (p₁, p₂) region;
//   - NestedLoopJoin — the naive nested-loop join for predicates that
//     are not order-preserving (<<, value joins, deep-equal);
//   - CrossingFilter — the selection form of a crossing predicate whose
//     endpoints already live in one instance;
//   - StackJoin — the stack-based binary structural join of [2]
//     (Al-Khalifa et al.), used node-level;
//   - TwigStack — the holistic twig join of [7] (Bruno et al.), the
//     "TS" baseline of Table 3.
package join

import (
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/xmltree"
)

// Operator is a pull-based stream of NestedList instances; GetNext
// returns nil when exhausted. nok.Iterator and every join operator here
// implement it.
type Operator interface {
	GetNext() *nestedlist.List
}

// Drain collects all remaining instances of an operator.
func Drain(op Operator) []*nestedlist.List {
	var out []*nestedlist.List
	for l := op.GetNext(); l != nil; l = op.GetNext() {
		out = append(out, l)
	}
	return out
}

// SliceOperator replays a materialized instance sequence.
type SliceOperator struct {
	ls  []*nestedlist.List
	pos int
}

// NewSliceOperator wraps a slice as an Operator.
func NewSliceOperator(ls []*nestedlist.List) *SliceOperator { return &SliceOperator{ls: ls} }

// GetNext returns the next instance or nil.
func (s *SliceOperator) GetNext() *nestedlist.List {
	if s.pos >= len(s.ls) {
		return nil
	}
	l := s.ls[s.pos]
	s.pos++
	return l
}

// region returns the covering label interval of an instance's slot
// projection, and whether the slot has any nodes.
func region(l *nestedlist.List, slot int) (lo, hi int, ok bool) {
	ns := l.ProjectSlot(slot)
	if len(ns) == 0 {
		return 0, 0, false
	}
	lo = ns[0].Start
	hi = ns[0].End
	for _, n := range ns[1:] {
		if n.Start < lo {
			lo = n.Start
		}
		if n.End > hi {
			hi = n.End
		}
	}
	return lo, hi, true
}

// pruneWitnessless removes outer-slot items that contain none of the
// matched inner anchors — the per-item existential semantics of a
// mandatory predicate subtree (a c2 in //b1//c2[//c3] qualifies only if
// it has its own c3 witness). It reports false when the selection
// invalidates the instance (every item of a mandatory slot removed).
func pruneWitnessless(l *nestedlist.List, outerSlot int, anchors []*xmltree.Node) (*nestedlist.List, bool) {
	return l.SelectSlot(outerSlot, func(n *xmltree.Node, _ int) bool {
		for _, a := range anchors {
			if n.IsAncestorOf(a) {
				return true
			}
		}
		return false
	})
}

// containsAny reports whether any node of ancs properly contains d.
func containsAny(ancs []*xmltree.Node, d *xmltree.Node) bool {
	for _, a := range ancs {
		if a.IsAncestorOf(d) {
			return true
		}
	}
	return false
}
