package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blossomtree/internal/core"
	"blossomtree/internal/flwor"
	"blossomtree/internal/index"
	"blossomtree/internal/naveval"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/nok"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

func parse(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// randomNonRecursive builds a random document whose tag is determined by
// depth, so no element nests inside a same-tag element.
func randomNonRecursive(r *rand.Rand, maxNodes int) *xmltree.Document {
	tags := []string{"a", "b", "c", "d", "e", "f"}
	b := xmltree.NewBuilder()
	var gen func(depth, budget int) int
	gen = func(depth, budget int) int {
		used := 0
		kids := 1 + r.Intn(3)
		for i := 0; i < kids && used < budget; i++ {
			used++
			b.Start(tags[depth])
			if depth < len(tags)-1 && r.Intn(3) > 0 {
				used += gen(depth+1, budget-used)
			}
			b.End()
		}
		return used
	}
	b.Start("r")
	n := 1
	for n < maxNodes {
		n += gen(0, maxNodes-n)
	}
	b.End()
	return b.MustDone()
}

// twoNoKPipeline compiles //X…//Y… style queries into NoK iterators and
// the structural join between them, with the given join constructor.
type pipelineParts struct {
	q          *core.Query
	d          *core.Decomposition
	outerIt    *nok.Iterator
	innerM     *nok.Matcher
	innerIt    *nok.Iterator
	outerSlot  int
	innerSlot  int
	perPair    bool
	optional   bool
	resultSlot int
}

func buildTwoNoK(t *testing.T, doc *xmltree.Document, query string) pipelineParts {
	t.Helper()
	q, err := core.FromPath(xpath.MustParse(query))
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Decompose(q.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.NoKs) != 3 {
		t.Fatalf("query %s: want exactly root + 2 NoKs, got:\n%s", query, d)
	}
	var link core.Link
	found := false
	for _, l := range d.Links {
		if !l.IsScan() {
			link = l
			found = true
		}
	}
	if !found {
		t.Fatalf("query %s has no join link", query)
	}
	outer := d.NoKs[1]
	inner := link.Child
	mOuter, err := nok.NewMatcher(outer, q.Return)
	if err != nil {
		t.Fatal(err)
	}
	mInner, err := nok.NewMatcher(inner, q.Return)
	if err != nil {
		t.Fatal(err)
	}
	outerSlot, _ := q.Return.ByVertex(link.Parent)
	innerSlot, _ := q.Return.ByVertex(inner.Root)
	resSlot, _ := q.Return.ByVar("result")
	return pipelineParts{
		q: q, d: d,
		outerIt:    nok.NewIterator(mOuter, doc),
		innerM:     mInner,
		innerIt:    nok.NewIterator(mInner, doc),
		outerSlot:  outerSlot.Slot,
		innerSlot:  innerSlot.Slot,
		perPair:    inner.Root.ForBound,
		optional:   link.Mode == core.Optional,
		resultSlot: resSlot.Slot,
	}
}

func projectResults(ls []*nestedlist.List, slot int) []*xmltree.Node {
	seen := map[*xmltree.Node]bool{}
	var out []*xmltree.Node
	for _, l := range ls {
		for _, n := range l.ProjectSlot(slot) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sortNodes(out)
	return out
}

func oracle(t *testing.T, doc *xmltree.Document, query string) []*xmltree.Node {
	t.Helper()
	want, err := naveval.EvalPath(doc, xpath.MustParse(query))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func sameNodes(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const sampleDoc = `<r>
  <a><x><b>1</b></x><b>2</b></a>
  <a><b>3</b></a>
  <a><x/></a>
  <b>4</b>
</r>`

func TestPipelinedDescJoin(t *testing.T) {
	doc := parse(t, sampleDoc)
	p := buildTwoNoK(t, doc, `//a//b`)
	j := &PipelinedDescJoin{
		Outer: p.outerIt, Inner: p.innerIt,
		OuterSlot: p.outerSlot, InnerSlot: p.innerSlot,
		PerPair: p.perPair, Optional: p.optional,
	}
	got := projectResults(Drain(j), p.resultSlot)
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	want := oracle(t, doc, `//a//b`)
	if !sameNodes(got, want) {
		t.Errorf("PL //a//b: got %d nodes, want %d", len(got), len(want))
	}
}

func TestPipelinedExistentialPredicate(t *testing.T) {
	doc := parse(t, sampleDoc)
	// //a[//b]: inner NoK is existential (not for-bound), so each outer
	// emits at most once.
	p := buildTwoNoK(t, doc, `//a[//b]`)
	if p.perPair {
		t.Fatal("predicate NoK should not be per-pair")
	}
	j := &PipelinedDescJoin{
		Outer: p.outerIt, Inner: p.innerIt,
		OuterSlot: p.outerSlot, InnerSlot: p.innerSlot,
		PerPair: false, Optional: p.optional,
	}
	ls := Drain(j)
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	if len(ls) != 2 {
		t.Fatalf("instances = %d, want 2 (two a's contain b's)", len(ls))
	}
	got := projectResults(ls, p.resultSlot)
	want := oracle(t, doc, `//a[//b]`)
	if !sameNodes(got, want) {
		t.Errorf("PL //a[//b]: got %v, want %v", got, want)
	}
}

func TestBoundedNLJoin(t *testing.T) {
	// Recursive document — the BNLJ territory.
	doc := parse(t, `<r><a><a><b/></a><b/></a><a/><b/></r>`)
	p := buildTwoNoK(t, doc, `//a//b`)
	j := &BoundedNLJoin{
		Outer: p.outerIt, OuterSlot: p.outerSlot,
		Inner: p.innerM, InnerSlot: p.innerSlot,
		PerPair: p.perPair, Optional: p.optional,
	}
	got := projectResults(Drain(j), p.resultSlot)
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	want := oracle(t, doc, `//a//b`)
	if !sameNodes(got, want) {
		t.Errorf("BNLJ //a//b: got %d, want %d", len(got), len(want))
	}
	if j.ScannedNodes == 0 {
		t.Error("BNLJ reported no scanned nodes")
	}
}

func TestBoundedNLJoinBoundsScans(t *testing.T) {
	// The inner side must scan only within outer regions.
	doc := parse(t, `<r><a><b/></a><z><z/><z/><z/><z/><z/><z/></z></r>`)
	p := buildTwoNoK(t, doc, `//a//b`)
	j := &BoundedNLJoin{
		Outer: p.outerIt, OuterSlot: p.outerSlot,
		Inner: p.innerM, InnerSlot: p.innerSlot,
		PerPair: p.perPair,
	}
	Drain(j)
	if j.ScannedNodes > 3 {
		t.Errorf("BNLJ scanned %d nodes; the z-subtree should be skipped", j.ScannedNodes)
	}
}

func TestNestedLoopDescJoin(t *testing.T) {
	doc := parse(t, sampleDoc)
	p := buildTwoNoK(t, doc, `//a//b`)
	j := &NestedLoopJoin{
		Outer: p.outerIt, Inner: p.innerIt,
		Pred: DescPredicate(p.outerSlot, p.innerSlot),
	}
	got := projectResults(Drain(j), p.resultSlot)
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	want := oracle(t, doc, `//a//b`)
	if !sameNodes(got, want) {
		t.Errorf("NLJ //a//b: got %d, want %d", len(got), len(want))
	}
}

// TestQuickJoinAlgorithmsAgree: on random non-recursive documents, the
// pipelined join, the bounded nested-loop join and the naive nested-loop
// join all produce the same //-join result as the navigational oracle.
func TestQuickJoinAlgorithmsAgree(t *testing.T) {
	queries := []string{`//a//b`, `//b//c`, `//a//c`, `//a[//c]`, `//b[//d]`, `//a//d`}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomNonRecursive(r, 40+r.Intn(60))
		query := queries[r.Intn(len(queries))]
		want := make(map[*xmltree.Node]bool)
		wantList, err := naveval.EvalPath(doc, xpath.MustParse(query))
		if err != nil {
			return false
		}
		for _, n := range wantList {
			want[n] = true
		}

		check := func(name string, got []*xmltree.Node) bool {
			if len(got) != len(wantList) {
				t.Logf("%s on %s: %d vs oracle %d (seed %d)", name, query, len(got), len(wantList), seed)
				return false
			}
			for _, n := range got {
				if !want[n] {
					t.Logf("%s on %s: spurious node", name, query)
					return false
				}
			}
			return true
		}

		p := buildTwoNoK(t, doc, query)
		pl := &PipelinedDescJoin{Outer: p.outerIt, Inner: p.innerIt,
			OuterSlot: p.outerSlot, InnerSlot: p.innerSlot, PerPair: p.perPair, Optional: p.optional}
		if !check("PL", projectResults(Drain(pl), p.resultSlot)) || pl.Err != nil {
			return false
		}

		p = buildTwoNoK(t, doc, query)
		bn := &BoundedNLJoin{Outer: p.outerIt, OuterSlot: p.outerSlot,
			Inner: p.innerM, InnerSlot: p.innerSlot, PerPair: p.perPair, Optional: p.optional}
		if !check("BNLJ", projectResults(Drain(bn), p.resultSlot)) || bn.Err != nil {
			return false
		}

		p = buildTwoNoK(t, doc, query)
		nl := &NestedLoopJoin{Outer: p.outerIt, Inner: p.innerIt,
			Pred: DescPredicate(p.outerSlot, p.innerSlot)}
		if !check("NLJ", projectResults(Drain(nl), p.resultSlot)) || nl.Err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickBNLJOnRecursiveDocs: BNLJ (built for recursive data) matches
// the oracle on recursive random documents.
func TestQuickBNLJOnRecursiveDocs(t *testing.T) {
	queries := []string{`//a//b`, `//a//a`, `//b[//a]`}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{Tags: []string{"a", "b", "c"}, MaxNodes: 50, MaxDepth: 8, TextProb: -1})
		query := queries[r.Intn(len(queries))]
		wantList, err := naveval.EvalPath(doc, xpath.MustParse(query))
		if err != nil {
			return false
		}
		p := buildTwoNoK(t, doc, query)
		bn := &BoundedNLJoin{Outer: p.outerIt, OuterSlot: p.outerSlot,
			Inner: p.innerM, InnerSlot: p.innerSlot, PerPair: p.perPair, Optional: p.optional}
		got := projectResults(Drain(bn), p.resultSlot)
		if bn.Err != nil {
			t.Logf("BNLJ error: %v", bn.Err)
			return false
		}
		if !sameNodes(got, wantList) {
			t.Logf("BNLJ %s: %d vs %d (seed %d)", query, len(got), len(wantList), seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStackJoin(t *testing.T) {
	doc := parse(t, `<r><a><a><b/></a><b/></a><b/><a/></r>`)
	ix := index.Build(doc)
	pairs := StackJoin(ix.Nodes("a"), ix.Nodes("b"))
	// a1 contains b1,b2; a2 contains b1 → 3 pairs.
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d, want 3: %v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if !p.Anc.IsAncestorOf(p.Desc) {
			t.Errorf("non-containment pair %v", p)
		}
	}
	ancs := StackJoinAnc(ix.Nodes("a"), ix.Nodes("b"))
	if len(ancs) != 2 {
		t.Errorf("semi-join ancestors = %d, want 2", len(ancs))
	}
	for i := 1; i < len(ancs); i++ {
		if !ancs[i-1].Before(ancs[i]) {
			t.Error("semi-join not in document order")
		}
	}
}

// TestQuickStackJoinEqualsBruteForce cross-checks StackJoin on random
// recursive documents against the quadratic definition.
func TestQuickStackJoinEqualsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{Tags: []string{"a", "b"}, MaxNodes: 60, MaxDepth: 10, TextProb: -1})
		ix := index.Build(doc)
		ancs, descs := ix.Nodes("a"), ix.Nodes("b")
		got := StackJoin(ancs, descs)
		want := 0
		for _, a := range ancs {
			for _, d := range descs {
				if a.IsAncestorOf(d) {
					want++
				}
			}
		}
		if len(got) != want {
			t.Logf("seed %d: StackJoin %d vs brute %d", seed, len(got), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// twigRoot extracts the non-docroot pattern root of a compiled path
// query.
func twigRoot(t *testing.T, query string) (*core.Query, *core.Vertex) {
	t.Helper()
	q, err := core.FromPath(xpath.MustParse(query))
	if err != nil {
		t.Fatal(err)
	}
	root := q.Tree.Roots[0]
	if !root.IsDocRoot() {
		return q, root
	}
	if len(root.Children) != 1 {
		t.Fatalf("query %s: doc root with %d children", query, len(root.Children))
	}
	return q, root.Children[0]
}

func TestTwigStackSimple(t *testing.T) {
	doc := parse(t, sampleDoc)
	ix := index.Build(doc)
	q, root := twigRoot(t, `//a//b`)
	ts, err := NewTwigStack(root, ix)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := ts.Run()
	if err != nil {
		t.Fatal(err)
	}
	resV := q.Vars["result"]
	got := Project(matches, resV)
	want := oracle(t, doc, `//a//b`)
	if !sameNodes(got, want) {
		t.Errorf("TS //a//b: %v vs %v", got, want)
	}
	if ts.PushCount == 0 {
		t.Error("no pushes counted")
	}
}

func TestTwigStackAppendixQueries(t *testing.T) {
	docs := map[string]*xmltree.Document{
		"d1": xmlgen.MustGenerate("d1", xmlgen.Config{Seed: 5, TargetNodes: 1500}),
		"d2": xmlgen.MustGenerate("d2", xmlgen.Config{Seed: 5, TargetNodes: 1500}),
		"d5": xmlgen.MustGenerate("d5", xmlgen.Config{Seed: 5, TargetNodes: 1500}),
	}
	queries := map[string][]string{
		"d1": {`//a//b4`, `//a[//b2][//b1]//b3`, `//b1//c2//b1`, `//b1//c2[//c3]//b1`, `//a//c2/b1/c2/b1//c3`},
		"d2": {`//addresses//street_address//name_of_state`, `//addresses[//zip_code][//country_id]`,
			`//address[//name_of_state][//zip_code]//street_address`},
		"d5": {`//phdthesis//author`, `//phdthesis[//author][//school]`, `//www[//url]`,
			`//proceedings[//editor][//year][//url]`},
	}
	for id, doc := range docs {
		ix := index.Build(doc)
		for _, query := range queries[id] {
			t.Run(id+"/"+query, func(t *testing.T) {
				q, root := twigRoot(t, query)
				ts, err := NewTwigStack(root, ix)
				if err != nil {
					t.Fatal(err)
				}
				matches, err := ts.Run()
				if err != nil {
					t.Fatal(err)
				}
				got := Project(matches, q.Vars["result"])
				want := oracle(t, doc, query)
				if !sameNodes(got, want) {
					t.Errorf("TS %s: %d nodes vs oracle %d", query, len(got), len(want))
				}
			})
		}
	}
}

// TestQuickTwigStackEqualsOracle: random recursive docs × random twigs.
func TestQuickTwigStackEqualsOracle(t *testing.T) {
	queries := []string{`//a//b`, `//a//b//c`, `//a[//b]//c`, `//a[//b][//c]`, `//a//a`, `//b[//a//c]`, `//a/b`, `//a/b//c`}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{Tags: []string{"a", "b", "c"}, MaxNodes: 50, MaxDepth: 8, TextProb: -1})
		query := queries[r.Intn(len(queries))]
		ix := index.Build(doc)
		q, err := core.FromPath(xpath.MustParse(query))
		if err != nil {
			return false
		}
		root := q.Tree.Roots[0].Children[0]
		ts, err := NewTwigStack(root, ix)
		if err != nil {
			t.Logf("NewTwigStack: %v", err)
			return false
		}
		matches, err := ts.Run()
		if err != nil {
			t.Logf("Run: %v", err)
			return false
		}
		got := Project(matches, q.Vars["result"])
		want, err := naveval.EvalPath(doc, xpath.MustParse(query))
		if err != nil {
			return false
		}
		if !sameNodes(got, want) {
			t.Logf("TS %s: %d vs %d (seed %d)", query, len(got), len(want), seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTwigStackUnsupported(t *testing.T) {
	doc := parse(t, sampleDoc)
	ix := index.Build(doc)
	for _, query := range []string{`//a/following-sibling::b//c`, `//a[2]//b`} {
		_, root := twigRoot(t, query)
		if _, err := NewTwigStack(root, ix); err == nil {
			t.Errorf("NewTwigStack(%s) should fail", query)
		}
	}
}

func TestTwigStackValueConstraint(t *testing.T) {
	doc := parse(t, `<r><a><b>x</b></a><a><b>y</b></a></r>`)
	ix := index.Build(doc)
	q, root := twigRoot(t, `//a[//b="x"]`)
	ts, err := NewTwigStack(root, ix)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := ts.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := Project(matches, q.Vars["result"])
	if len(got) != 1 {
		t.Errorf("value-constrained twig = %d matches", len(got))
	}
}

func TestCrossingFilter(t *testing.T) {
	doc := parse(t, `<r><a>1</a><b>1</b><b>2</b></r>`)
	q, err := core.FromPath(xpath.MustParse(`//a`))
	if err != nil {
		t.Fatal(err)
	}
	// Build single-slot instances by hand around the a node, then filter
	// on a self-crossing (slot compared to itself, trivially equal).
	a := xmltree.Descendants(doc.DocumentElement(), "a")[0]
	l := nestedlist.NewInstance(q.Return)
	l.Root.Groups[0] = []*nestedlist.Item{nestedlist.NewItem(a, 0)}
	l.SetFilled(1)

	eq := &core.Crossing{Kind: core.CrossValue, Op: xpath.OpEq}
	f := &CrossingFilter{Input: NewSliceOperator([]*nestedlist.List{l}), Crossing: eq, FromSlot: 1, ToSlot: 1}
	if got := Drain(f); len(got) != 1 {
		t.Errorf("self-equality filter dropped the instance")
	}
	ne := &core.Crossing{Kind: core.CrossValue, Op: xpath.OpEq, Negate: true}
	f = &CrossingFilter{Input: NewSliceOperator([]*nestedlist.List{l}), Crossing: ne, FromSlot: 1, ToSlot: 1}
	if got := Drain(f); len(got) != 0 {
		t.Errorf("negated self-equality kept the instance")
	}
}

func TestPositionFilter(t *testing.T) {
	doc := parse(t, `<r><a/><a/><a/></r>`)
	p := buildSingle(t, doc, `//a`)
	f := &PositionFilter{Input: p.op, Slot: p.slot, Pos: 2}
	out := Drain(f)
	if len(out) != 1 {
		t.Fatalf("position filter kept %d", len(out))
	}
	as := xmltree.Descendants(doc.DocumentElement(), "a")
	if got := out[0].ProjectSlot(p.slot); len(got) != 1 || got[0] != as[1] {
		t.Errorf("position filter selected %v, want second a", got)
	}
}

func TestSelectFilter(t *testing.T) {
	doc := parse(t, `<r><a>keep</a><a>drop</a></r>`)
	p := buildSingle(t, doc, `//a`)
	f := &SelectFilter{Input: p.op, Dewey: core.Dewey{1, 1}, Pred: func(n *xmltree.Node, pos int) bool {
		return xmltree.StringValue(n) == "keep"
	}}
	out := Drain(f)
	if f.Err != nil {
		t.Fatal(f.Err)
	}
	if len(out) != 1 {
		t.Errorf("SelectFilter kept %d instances, want 1", len(out))
	}
}

type singleParts struct {
	op   Operator
	slot int
}

func buildSingle(t *testing.T, doc *xmltree.Document, query string) singleParts {
	t.Helper()
	q, err := core.FromPath(xpath.MustParse(query))
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Decompose(q.Tree)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nok.NewMatcher(d.NoKs[1], q.Return)
	if err != nil {
		t.Fatal(err)
	}
	rn, _ := q.Return.ByVar("result")
	return singleParts{op: nok.NewIterator(m, doc), slot: rn.Slot}
}

func TestDrainAndSliceOperator(t *testing.T) {
	s := NewSliceOperator(nil)
	if s.GetNext() != nil {
		t.Error("empty slice operator should yield nil")
	}
	doc := parse(t, `<r><a/><a/></r>`)
	p := buildSingle(t, doc, `//a`)
	ls := Drain(p.op)
	if len(ls) != 2 {
		t.Fatalf("drained %d", len(ls))
	}
	s = NewSliceOperator(ls)
	if got := len(Drain(s)); got != 2 {
		t.Errorf("replay = %d", got)
	}
}

func TestPipelinedOptionalLink(t *testing.T) {
	// let $x := $b//isbn — an optional //-link: books without isbn
	// survive with an empty region.
	doc := parse(t, `<r><b><x><isbn>1</isbn></x></b><b/><b><isbn>2</isbn></b></r>`)
	q, err := core.FromFLWOR(flwor.MustParse(
		`for $b in doc("d")//b let $i := $b//isbn return $b`))
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Decompose(q.Tree)
	if err != nil {
		t.Fatal(err)
	}
	var link core.Link
	for _, l := range d.Links {
		if !l.IsScan() {
			link = l
		}
	}
	if link.Mode != core.Optional {
		t.Fatalf("link mode = %v, want optional", link.Mode)
	}
	mOuter, _ := nok.NewMatcher(d.NoKs[1], q.Return)
	mInner, _ := nok.NewMatcher(link.Child, q.Return)
	outerSlot, _ := q.Return.ByVertex(link.Parent)
	innerSlot, _ := q.Return.ByVertex(link.Child.Root)

	j := &PipelinedDescJoin{
		Outer: nok.NewIterator(mOuter, doc), Inner: nok.NewIterator(mInner, doc),
		OuterSlot: outerSlot.Slot, InnerSlot: innerSlot.Slot,
		PerPair: false, Optional: true,
	}
	ls := Drain(j)
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	if len(ls) != 3 {
		t.Fatalf("optional PL kept %d instances, want all 3 books", len(ls))
	}
	iSlot, _ := q.Return.ByVar("i")
	counts := map[int]int{}
	for _, l := range ls {
		counts[len(l.ProjectSlot(iSlot.Slot))]++
	}
	if counts[0] != 1 || counts[1] != 2 {
		t.Errorf("isbn group sizes = %v, want one empty, two singletons", counts)
	}

	// Same semantics through the bounded join.
	j2 := &BoundedNLJoin{
		Outer: nok.NewIterator(mOuter, doc), OuterSlot: outerSlot.Slot,
		Inner: mInner, InnerSlot: innerSlot.Slot,
		PerPair: false, Optional: true,
	}
	ls2 := Drain(j2)
	if j2.Err != nil {
		t.Fatal(j2.Err)
	}
	if len(ls2) != 3 {
		t.Errorf("optional BNLJ kept %d instances, want 3", len(ls2))
	}
}

func TestCrossingPredicateDirect(t *testing.T) {
	doc := parse(t, `<r><x><v>1</v></x><y><v>1</v></y></r>`)
	q, err := core.FromFLWOR(flwor.MustParse(
		`for $a in doc("d")//x, $b in doc("d")//y where $a/v = $b/v return $b`))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := core.Decompose(q.Tree)
	var mx, my *nok.Matcher
	for _, n := range d.NoKs {
		if n.Root.Test == "x" {
			mx, _ = nok.NewMatcher(n, q.Return)
		}
		if n.Root.Test == "y" {
			my, _ = nok.NewMatcher(n, q.Return)
		}
	}
	c := q.Tree.Crossings[0]
	fromRN, _ := q.Return.ByVertex(c.From)
	toRN, _ := q.Return.ByVertex(c.To)
	pred := CrossingPredicate(c, fromRN.Slot, toRN.Slot)
	lx := Drain(nok.NewIterator(mx, doc))
	ly := Drain(nok.NewIterator(my, doc))
	ok, err := pred(lx[0], ly[0])
	if err != nil || !ok {
		t.Errorf("predicate = %v, %v, want true", ok, err)
	}
}

func TestNestedLoopStop(t *testing.T) {
	doc := parse(t, sampleDoc)
	p := buildTwoNoK(t, doc, `//a//b`)
	j := &NestedLoopJoin{
		Outer: p.outerIt, Inner: p.innerIt,
		Pred: DescPredicate(p.outerSlot, p.innerSlot),
		Stop: func() bool { return true },
	}
	if got := Drain(j); len(got) != 0 {
		t.Errorf("stopped NLJ produced %d", len(got))
	}
}

func TestTwigStackStop(t *testing.T) {
	doc := parse(t, sampleDoc)
	ix := index.Build(doc)
	_, root := twigRoot(t, `//a//b`)
	ts, err := NewTwigStack(root, ix)
	if err != nil {
		t.Fatal(err)
	}
	ts.Stop = func() bool { return true }
	if _, err := ts.Run(); err == nil {
		t.Error("stopped twig run should report ErrStopped")
	}
}

func TestTwigStackKeepReduces(t *testing.T) {
	// //a[//b][//c] with Keep = result vertex only: matches collapse to
	// distinct a bindings regardless of witness multiplicity.
	doc := parse(t, `<r><a><b/><b/><b/><c/><c/></a></r>`)
	ix := index.Build(doc)
	q, root := twigRoot(t, `//a[//b][//c]`)
	full, err := NewTwigStack(root, ix)
	if err != nil {
		t.Fatal(err)
	}
	fullMatches, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(fullMatches) != 6 { // 3 b's × 2 c's
		t.Errorf("full enumeration = %d, want 6", len(fullMatches))
	}
	reduced, err := NewTwigStack(root, ix)
	if err != nil {
		t.Fatal(err)
	}
	reduced.Keep = []*core.Vertex{q.Vars["result"]}
	redMatches, err := reduced.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(redMatches) != 1 {
		t.Errorf("reduced matches = %d, want 1", len(redMatches))
	}
	if got := Project(redMatches, q.Vars["result"]); len(got) != 1 {
		t.Errorf("projection = %d", len(got))
	}
}
