package join

import (
	"errors"
	"testing"

	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/index"
)

// TestStackJoinGovFaults injects faults at the first, middle, and last
// emission of the binary structural join and checks the partial output
// produced up to the fault is a prefix of the clean result.
func TestStackJoinGovFaults(t *testing.T) {
	doc := parse(t, `<r><a><a><b/><b/></a><b/></a><a><b/></a></r>`)
	ix := index.Build(doc)
	ancs, descs := ix.Nodes("a"), ix.Nodes("b")
	clean, err := StackJoinGov(ancs, descs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(clean))
	if total < 3 {
		t.Fatalf("need at least 3 pairs, got %d", total)
	}
	boom := errors.New("boom")
	// The upfront input charge occupies site hit 1, so emission j is
	// hit j+1.
	for _, emit := range []int64{1, total / 2, total} {
		inj := fault.New().FailAt(fault.SiteStackJoin, emit+1, boom)
		g := gov.New(nil, gov.Budget{}, inj)
		out, err := StackJoinGov(ancs, descs, nil, g)
		if !errors.Is(err, boom) {
			t.Fatalf("fault at emission %d: err = %v, want boom", emit, err)
		}
		if int64(len(out)) != emit-1 {
			t.Errorf("fault at emission %d: partial output %d pairs, want %d", emit, len(out), emit-1)
		}
		for i, p := range out {
			if p != clean[i] {
				t.Errorf("partial output diverges from clean result at pair %d", i)
				break
			}
		}
	}
}

// TestStackJoinGovNodeBudget aborts the structural join on its upfront
// input charge.
func TestStackJoinGovNodeBudget(t *testing.T) {
	doc := parse(t, `<r><a><a><b/><b/></a><b/></a><a><b/></a></r>`)
	ix := index.Build(doc)
	g := gov.New(nil, gov.Budget{MaxNodes: 2}, nil)
	_, err := StackJoinGov(ix.Nodes("a"), ix.Nodes("b"), nil, g)
	if !errors.Is(err, gov.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestStackJoinGovNilGovernor checks the ungoverned path matches
// StackJoin exactly.
func TestStackJoinGovNilGovernor(t *testing.T) {
	doc := parse(t, `<r><a><a><b/><b/></a><b/></a></r>`)
	ix := index.Build(doc)
	want := StackJoin(ix.Nodes("a"), ix.Nodes("b"))
	got, err := StackJoinGov(ix.Nodes("a"), ix.Nodes("b"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("governed nil-path: %d pairs, want %d", len(got), len(want))
	}
}
