package join

import (
	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// AncDescPair is one result of a binary structural join.
type AncDescPair struct {
	Anc, Desc *xmltree.Node
}

// StackJoin is the stack-based binary structural join of Al-Khalifa et
// al. [2] (Stack-Tree-Desc): given the ancestor candidates and the
// descendant candidates, each sorted by document order, it emits every
// (ancestor, descendant) containment pair in a single merge pass with a
// stack of nested ancestors. Output is ordered by descendant.
func StackJoin(ancs, descs []*xmltree.Node) []AncDescPair {
	return StackJoinStats(ancs, descs, nil)
}

// StackJoinStats is StackJoin with instrumentation: when stats is
// non-nil it records both input lists as scanned nodes, each
// containment test as a comparison, the stack's high-water mark, and
// the emitted pair count.
func StackJoinStats(ancs, descs []*xmltree.Node, stats *obs.OpStats) []AncDescPair {
	out, _ := StackJoinGov(ancs, descs, stats, nil)
	return out
}

// StackJoinGov is the governed structural join: the input lists charge
// the query's node budget, every emitted pair is a fault point, and a
// governance violation aborts the merge, returning the pairs emitted so
// far alongside the typed error.
func StackJoinGov(ancs, descs []*xmltree.Node, stats *obs.OpStats, g *gov.Governor) ([]AncDescPair, error) {
	stats.AddScanned(int64(len(ancs) + len(descs)))
	if err := g.Scanned(fault.SiteStackJoin, int64(len(ancs)+len(descs))); err != nil {
		return nil, err
	}
	var out []AncDescPair
	var stack []*xmltree.Node
	ai := 0
	for _, d := range descs {
		if err := g.Poll(); err != nil {
			stats.AddEmitted(int64(len(out)))
			return out, err
		}
		// Pop ancestors that end before d starts.
		for len(stack) > 0 && stack[len(stack)-1].End < d.Start {
			stack = stack[:len(stack)-1]
		}
		// Push ancestors that start before d.
		for ai < len(ancs) && ancs[ai].Start <= d.Start {
			a := ancs[ai]
			ai++
			if a.End < d.Start {
				continue // already over
			}
			// Maintain the nesting invariant.
			for len(stack) > 0 && stack[len(stack)-1].End < a.Start {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, a)
			stats.ObserveStackDepth(len(stack))
		}
		for _, a := range stack {
			stats.AddComparisons(1)
			if a != d && a.IsAncestorOf(d) {
				if err := g.Emitted(fault.SiteStackJoin); err != nil {
					stats.AddEmitted(int64(len(out)))
					return out, err
				}
				out = append(out, AncDescPair{Anc: a, Desc: d})
			}
		}
	}
	stats.AddEmitted(int64(len(out)))
	return out, nil
}

// StackJoinAnc emits only the distinct ancestors that contain at least
// one descendant candidate (the semi-join used for existential
// predicates), in document order.
func StackJoinAnc(ancs, descs []*xmltree.Node) []*xmltree.Node {
	matched := make(map[*xmltree.Node]bool)
	for _, p := range StackJoin(ancs, descs) {
		matched[p.Anc] = true
	}
	out := make([]*xmltree.Node, 0, len(matched))
	for _, a := range ancs {
		if matched[a] {
			out = append(out, a)
		}
	}
	return out
}
