package bench

import (
	"strings"
	"testing"
	"time"

	"blossomtree/internal/naveval"
	"blossomtree/internal/xpath"
)

func TestSuiteShape(t *testing.T) {
	for _, id := range Datasets() {
		qs := Suite(id)
		if len(qs) != 6 {
			t.Fatalf("%s has %d queries, want 6", id, len(qs))
		}
		wantCats := []Category{HC, HB, MC, MB, LC, LB}
		for i, q := range qs {
			if q.Category != wantCats[i] {
				t.Errorf("%s %s category = %s, want %s", id, q.ID, q.Category, wantCats[i])
			}
			if _, err := xpath.Parse(q.Text); err != nil {
				t.Errorf("%s %s does not parse: %v", id, q.ID, err)
			}
		}
	}
	if Suite("nope") != nil {
		t.Error("unknown dataset should have no suite")
	}
}

func TestApplicable(t *testing.T) {
	if Applicable(PL, true) || !Applicable(PL, false) {
		t.Error("PL applicability wrong")
	}
	if Applicable(NL, false) || !Applicable(NL, true) {
		t.Error("NL applicability wrong")
	}
	if !Applicable(XH, true) || !Applicable(TS, false) {
		t.Error("XH/TS must always apply")
	}
	if !Applicable(VEC, true) || !Applicable(VEC, false) {
		t.Error("VEC must always apply (its fallback keeps it total)")
	}
}

// TestQueriesHaveMatches: every suite query returns at least one result
// on its generated dataset — otherwise the measured cells are vacuous.
func TestQueriesHaveMatches(t *testing.T) {
	for _, id := range Datasets() {
		ds, err := LoadDataset(id, 12000, 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range Suite(id) {
			res, err := naveval.EvalPath(ds.Doc, xpath.MustParse(q.Text))
			if err != nil {
				t.Fatalf("%s %s: %v", id, q.ID, err)
			}
			if len(res) == 0 {
				t.Errorf("%s %s (%s) has no matches on the generated data", id, q.ID, q.Text)
			}
		}
	}
}

// TestSelectivityOrdering: within each dataset, the low-selectivity
// queries return more results than the high-selectivity ones (the
// Table 2 class structure).
func TestSelectivityOrdering(t *testing.T) {
	for _, id := range Datasets() {
		ds, err := LoadDataset(id, 12000, 42)
		if err != nil {
			t.Fatal(err)
		}
		count := func(q Query) int {
			res, err := naveval.EvalPath(ds.Doc, xpath.MustParse(q.Text))
			if err != nil {
				t.Fatalf("%s %s: %v", id, q.ID, err)
			}
			return len(res)
		}
		qs := Suite(id)
		hc, lc := count(qs[0]), count(qs[4])
		if hc >= lc {
			t.Errorf("%s: hc query returns %d ≥ lc query's %d", id, hc, lc)
		}
	}
}

// TestAllSystemsAgreeOnCounts: every applicable system reports the same
// result count per cell (the cross-system correctness invariant behind
// Table 3).
func TestAllSystemsAgreeOnCounts(t *testing.T) {
	for _, id := range Datasets() {
		ds, err := LoadDataset(id, 6000, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range Suite(id) {
			want := -1
			for _, sys := range Systems() {
				if !Applicable(sys, ds.Stats.Recursive) {
					continue
				}
				cell := RunCell(ds, q, sys, 30*time.Second)
				if cell.Err != nil {
					t.Fatalf("%s %s %s: %v", id, q.ID, sys, cell.Err)
				}
				if cell.DNF {
					t.Fatalf("%s %s %s: unexpected DNF at test scale", id, q.ID, sys)
				}
				if want == -1 {
					want = cell.Results
				} else if cell.Results != want {
					t.Errorf("%s %s: %s reports %d results, others %d", id, q.ID, sys, cell.Results, want)
				}
			}
			if want == 0 {
				t.Logf("%s %s: zero matches at this scale", id, q.ID)
			}
		}
	}
}

func TestRunCellTimeout(t *testing.T) {
	ds, err := LoadDataset("d1", 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	cell := RunCell(ds, Suite("d1")[4], NL, time.Nanosecond)
	if !cell.DNF {
		t.Errorf("nanosecond deadline should DNF, got %v in %v", cell.Results, cell.Elapsed)
	}
	if cell.String() != "DNF" {
		t.Errorf("cell string = %q", cell.String())
	}
}

func TestRunCellBadQuery(t *testing.T) {
	ds, err := LoadDataset("d2", 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	cell := RunCell(ds, Query{ID: "QX", Text: "///"}, TS, time.Second)
	if cell.Err == nil {
		t.Error("bad query should error")
	}
	if cell.String() != "ERR" {
		t.Errorf("cell string = %q", cell.String())
	}
	cell = RunCell(ds, Query{ID: "QY", Text: "//address"}, System("??"), time.Second)
	if cell.Err == nil {
		t.Error("unknown system should error")
	}
}

func TestTables(t *testing.T) {
	rows1, err := RunTable1(11, map[string]int{"d1": 2000, "d2": 2000, "d3": 2000, "d4": 2000, "d5": 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows1) != 5 {
		t.Fatalf("Table 1 rows = %d", len(rows1))
	}
	out := FormatTable1(rows1)
	for _, frag := range []string{"d1", "dblp", "treebank", "paper nodes"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 1 output missing %q:\n%s", frag, out)
		}
	}

	out2 := FormatTable2()
	for _, frag := range []string{"hc", "lb", "//addresses", "//phdthesis"} {
		if !strings.Contains(out2, frag) {
			t.Errorf("Table 2 output missing %q", frag)
		}
	}

	var msgs []string
	rows3, err := RunTable3(Table3Config{
		Seed:        11,
		TargetNodes: map[string]int{"d2": 1500, "d5": 1500},
		Datasets:    []string{"d2", "d5"},
		Timeout:     20 * time.Second,
		Repeats:     2,
	}, func(s string) { msgs = append(msgs, s) })
	if err != nil {
		t.Fatal(err)
	}
	// d2 and d5 are non-recursive: XH, TS, PL, VEC rows each.
	if len(rows3) != 8 {
		t.Fatalf("Table 3 rows = %d, want 8", len(rows3))
	}
	out3 := FormatTable3(rows3)
	for _, frag := range []string{"file", "XH", "TS", "PL", "VEC", "Q6"} {
		if !strings.Contains(out3, frag) {
			t.Errorf("Table 3 output missing %q:\n%s", frag, out3)
		}
	}
	if strings.Contains(out3, "NL") && !strings.Contains(out3, "NLJ") {
		t.Errorf("NL must not run on non-recursive datasets:\n%s", out3)
	}
	if len(msgs) == 0 {
		t.Error("no progress messages")
	}
}
