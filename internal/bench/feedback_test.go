package bench

import "testing"

// TestFeedbackCompareReplans pins the harness's headline behavior on
// the skewed corpus: the probe with the skewed predicate must replan
// from history onto a different strategy than the cold plan, the
// well-estimated control must not replan, and across all judged
// replans wins must be at least losses (the CI gate).
func TestFeedbackCompareReplans(t *testing.T) {
	rows, err := RunFeedbackCompare(FeedbackConfig{}, nil)
	if err != nil {
		t.Fatalf("RunFeedbackCompare: %v", err)
	}
	if len(rows) != len(feedbackProbes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(feedbackProbes))
	}

	skew := rows[0]
	if !skew.Replanned {
		t.Fatalf("skewed probe %s did not replan: %+v", skew.Query, skew)
	}
	if skew.WarmStrategy == skew.ColdStrategy {
		t.Errorf("skewed probe kept strategy %s after replan", skew.ColdStrategy)
	}
	if skew.Drift < 2 {
		t.Errorf("skewed probe drift = %.2f, want >= 2", skew.Drift)
	}

	control := rows[1]
	if control.Replanned {
		t.Errorf("control probe %s replanned (drift %.2f); estimates should match actuals", control.Query, control.Drift)
	}

	wins, losses := 0, 0
	for _, r := range rows {
		if !r.Judged {
			continue
		}
		if r.Won {
			wins++
		} else {
			losses++
		}
	}
	if wins < losses {
		t.Errorf("feedback wins %d < losses %d", wins, losses)
	}
	t.Logf("\n%s", FormatFeedback(rows))
}
