package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"blossomtree/internal/exec"
	"blossomtree/internal/plan"
	"blossomtree/internal/segstore"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
)

// Cold-parse vs reopen: how much of a restart does the persistent
// segment store save? For each dataset the harness measures the
// time-to-first-result of a fresh engine that parses the XML text
// (what a daemon without -data pays on every start) against one that
// attaches a reopened segment store (manifest read + checksum stream +
// lazy mmap/decode on the probe query). The store's open-only time —
// the catalog-restore cost before any query arrives — is reported
// separately.

// PersistConfig configures the cold-parse vs reopen comparison.
type PersistConfig struct {
	Seed        int64
	TargetNodes map[string]int // per dataset; missing = default scale
	Datasets    []string       // default: all five
	Repeats     int            // runs per side, best-of; <= 0 = 3
}

// PersistRow is one dataset's restart comparison.
type PersistRow struct {
	Dataset  string
	Nodes    int64         // elements + texts in the generated document
	XMLBytes int64         // serialized source size
	SegBytes int64         // segment file size on disk
	Cold     time.Duration // parse text + probe query
	OpenOnly time.Duration // OpenDir: manifest + checksum streams
	Reopen   time.Duration // OpenDir + attach + probe query (mmap decode)
	Speedup  float64       // Cold / Reopen
}

// RunPersistCompare generates each dataset, persists it into a fresh
// store directory, and times cold parse against store reopen,
// best-of-Repeats on both sides.
func RunPersistCompare(cfg PersistConfig, progress func(string)) ([]PersistRow, error) {
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = Datasets()
	}
	tmp, err := os.MkdirTemp("", "blossom-persist-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	var rows []PersistRow
	for _, id := range datasets {
		suite, ok := suites[id]
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q", id)
		}
		probe := suite[0].Text
		doc, err := xmlgen.Generate(id, xmlgen.Config{Seed: cfg.Seed, TargetNodes: cfg.TargetNodes[id]})
		if err != nil {
			return nil, err
		}
		stats := xmltree.ComputeStats(doc)
		xml := xmltree.Serialize(doc.Root, xmltree.WriteOptions{})
		uri := id + ".xml"

		dir := filepath.Join(tmp, id)
		st, err := segstore.OpenDir(dir, segstore.Options{})
		if err != nil {
			return nil, err
		}
		if err := st.Save(uri, doc, stats, nil); err != nil {
			return nil, err
		}
		if err := st.Close(); err != nil {
			return nil, err
		}
		var segBytes int64
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".seg") {
				if fi, err := e.Info(); err == nil {
					segBytes += fi.Size()
				}
			}
		}

		row := PersistRow{
			Dataset:  id,
			Nodes:    int64(stats.Nodes),
			XMLBytes: int64(len(xml)),
			SegBytes: segBytes,
		}

		// Cold: fresh engine, parse the text, answer the probe.
		for i := 0; i < repeats; i++ {
			start := time.Now()
			e := exec.New()
			d, err := xmltree.ParseString(xml)
			if err != nil {
				return nil, err
			}
			d.Name = uri
			e.Add(uri, d)
			if _, err := e.EvalDocOptions(uri, probe, plan.Options{}); err != nil {
				return nil, err
			}
			if el := time.Since(start); row.Cold == 0 || el < row.Cold {
				row.Cold = el
			}
		}

		// Reopen: open the store (checksum stream), attach, answer the
		// probe off the mmap'd segment.
		for i := 0; i < repeats; i++ {
			start := time.Now()
			st, err := segstore.OpenDir(dir, segstore.Options{})
			if err != nil {
				return nil, err
			}
			opened := time.Since(start)
			e := exec.New()
			e.AttachStore(st)
			if _, err := e.EvalDocOptions(uri, probe, plan.Options{}); err != nil {
				return nil, err
			}
			el := time.Since(start)
			if err := st.Close(); err != nil {
				return nil, err
			}
			if row.Reopen == 0 || el < row.Reopen {
				row.Reopen = el
				row.OpenOnly = opened
			}
		}
		if row.Reopen > 0 {
			row.Speedup = float64(row.Cold) / float64(row.Reopen)
		}
		if progress != nil {
			progress(fmt.Sprintf("%s: cold %v reopen %v (%.1fx)", id, row.Cold, row.Reopen, row.Speedup))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPersist renders the comparison as an aligned table.
func FormatPersist(rows []PersistRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %10s %10s %10s %12s %12s %12s %8s\n",
		"data", "nodes", "xml-bytes", "seg-bytes", "cold-parse", "open-only", "reopen", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %10d %10d %10d %12s %12s %12s %7.1fx\n",
			r.Dataset, r.Nodes, r.XMLBytes, r.SegBytes,
			r.Cold.Round(time.Microsecond), r.OpenOnly.Round(time.Microsecond),
			r.Reopen.Round(time.Microsecond), r.Speedup)
	}
	return sb.String()
}
