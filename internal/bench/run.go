package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"blossomtree/internal/core"
	"blossomtree/internal/gov"
	"blossomtree/internal/index"
	"blossomtree/internal/naveval"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

// System is one of the compared engines of Table 3.
type System string

// Systems. XH is the navigational whole-query evaluator standing in for
// X-Hive/DB (see DESIGN.md §2); TS, PL and NL are the paper's join
// operators. Per §5.2, PL applies only to non-recursive datasets (its
// order-preservation precondition) and NL is reported on the recursive
// ones where PL is unavailable. VEC goes beyond the paper: the
// batch-at-a-time columnar executor, which runs pure descendant/child
// chains natively and falls back per its totality contract everywhere
// else (so its cells on branching queries measure the fallback plan).
const (
	XH  System = "XH"
	TS  System = "TS"
	PL  System = "PL"
	NL  System = "NL"
	VEC System = "VEC"
)

// Systems lists the Table 3 systems in paper order, plus VEC.
func Systems() []System { return []System{XH, TS, PL, NL, VEC} }

// Applicable reports whether the paper runs the system on a dataset of
// the given recursiveness (Table 3 shows NL on recursive d1/d4, PL on
// non-recursive d2/d3/d5; XH, TS and VEC run everywhere — VEC's
// Build-time fallback keeps it total).
func Applicable(s System, recursive bool) bool {
	switch s {
	case PL:
		return !recursive
	case NL:
		return recursive
	default:
		return true
	}
}

// Dataset is a generated dataset ready for measurement.
type Dataset struct {
	ID    string
	Doc   *xmltree.Document
	Index *index.TagIndex
	Stats xmltree.Stats
}

// LoadDataset generates dataset id at the given node count (0 = default
// scale) and builds its index and statistics.
func LoadDataset(id string, targetNodes int, seed int64) (*Dataset, error) {
	doc, err := xmlgen.Generate(id, xmlgen.Config{Seed: seed, TargetNodes: targetNodes})
	if err != nil {
		return nil, err
	}
	return &Dataset{
		ID:    id,
		Doc:   doc,
		Index: index.Build(doc),
		Stats: xmltree.ComputeStats(doc),
	}, nil
}

// Cell is the result of one (dataset, query, system) measurement.
type Cell struct {
	Dataset string
	Query   string
	System  System
	Elapsed time.Duration
	Results int
	DNF     bool
	Err     error
	// Scanned is the document/index nodes the measured run inspected
	// (operator stats for the planned systems, governor accounting for
	// the navigational XH).
	Scanned int64
	// Samples holds the per-repeat elapsed times of an averaged cell
	// (runAveraged), the raw material of the JSON report's p50/p99.
	Samples []time.Duration
}

// String formats the cell like the paper's table entries.
func (c Cell) String() string {
	switch {
	case c.Err != nil:
		return "ERR"
	case c.DNF:
		return "DNF"
	default:
		return fmt.Sprintf("%.3f", c.Elapsed.Seconds())
	}
}

// RunCell evaluates one query under one system with a DNF timeout,
// enforced by the query governor: a cell that exhausts its wall-clock
// budget aborts mid-operator and is reported as DNF rather than an
// error, matching the paper's "did not finish" cutoff.
func RunCell(ds *Dataset, q Query, sys System, timeout time.Duration) Cell {
	cell := Cell{Dataset: ds.ID, Query: q.ID, System: sys}
	budget := gov.Budget{Timeout: timeout}

	path, err := xpath.Parse(q.Text)
	if err != nil {
		cell.Err = err
		return cell
	}
	start := time.Now()
	var n int
	var scanned int64
	switch sys {
	case XH:
		n, scanned, err = runNavigational(ds, path, budget)
	default:
		n, scanned, err = runPlanned(ds, path, sys, budget)
	}
	cell.Elapsed = time.Since(start)
	cell.Scanned = scanned
	if err != nil {
		if errors.Is(err, gov.ErrBudgetExceeded) || errors.Is(err, gov.ErrCanceled) {
			cell.DNF = true
			return cell
		}
		cell.Err = err
		return cell
	}
	cell.Results = n
	return cell
}

// runNavigational measures the XH stand-in under the same governed
// deadline as the planned systems: the step evaluator polls the
// governor per axis step, so an over-budget navigational cell aborts
// mid-walk instead of running to completion. The second return is the
// governor's nodes-scanned accounting.
func runNavigational(ds *Dataset, path *xpath.Path, budget gov.Budget) (int, int64, error) {
	g := gov.New(context.Background(), budget, nil)
	res, err := naveval.EvalPathGov(naveval.SingleDoc(ds.Doc), nil, path, g)
	if err != nil {
		return 0, g.NodesScanned(), err
	}
	return len(res), g.NodesScanned(), nil
}

// runPlanned measures a BlossomTree plan under a forced join strategy.
// PL and NL run index-free (the paper: the pipelined join "does not rely
// on indexes, thus it resembles a sequential scan operator"); TS gets
// the tag index it requires.
func runPlanned(ds *Dataset, path *xpath.Path, sys System, budget gov.Budget) (int, int64, error) {
	q, err := core.FromPath(path)
	if err != nil {
		return 0, 0, err
	}
	opts := plan.Options{Stats: ds.Stats, Budget: budget}
	switch sys {
	case TS:
		opts.Strategy = plan.Twig
		opts.Index = ds.Index
	case PL:
		opts.Strategy = plan.Pipelined
	case NL:
		opts.Strategy = plan.BoundedNL
	case VEC:
		opts.Strategy = plan.Vectorized
		opts.Index = ds.Index
	default:
		return 0, 0, fmt.Errorf("bench: unknown system %q", sys)
	}
	p, err := plan.Build(q, ds.Doc, opts)
	if err != nil {
		return 0, 0, err
	}
	ls, err := p.Execute()
	scanned := p.StatsTree().TotalScanned()
	if err != nil {
		return 0, scanned, err
	}
	rn, ok := q.Return.ByVar("result")
	if !ok {
		return 0, scanned, fmt.Errorf("bench: no result slot")
	}
	seen := make(map[int]bool)
	for _, l := range ls {
		for _, n := range l.ProjectSlot(rn.Slot) {
			seen[n.Start] = true
		}
	}
	return len(seen), scanned, nil
}

// Table3Config configures a full Table 3 run.
type Table3Config struct {
	Seed        int64
	TargetNodes map[string]int // per dataset; missing = default scale
	Timeout     time.Duration  // per cell; the paper's 15-minute DNF cutoff scaled down
	Datasets    []string       // default: all five
	Repeats     int            // per cell; the paper averages three runs
}

// Table3Row is one (dataset, system) row of Table 3: six query cells.
type Table3Row struct {
	Dataset string
	System  System
	Cells   []Cell // Q1..Q6
}

// RunTable3 executes the full grid and returns the rows in paper order.
func RunTable3(cfg Table3Config, progress func(string)) ([]Table3Row, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = Datasets()
	}
	var rows []Table3Row
	for _, id := range datasets {
		ds, err := LoadDataset(id, cfg.TargetNodes[id], cfg.Seed)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("dataset %s: %d elements, recursive=%v",
				id, ds.Stats.Elements, ds.Stats.Recursive))
		}
		for _, sys := range Systems() {
			if !Applicable(sys, ds.Stats.Recursive) {
				continue
			}
			row := Table3Row{Dataset: id, System: sys}
			for _, q := range Suite(id) {
				cell := runAveraged(ds, q, sys, cfg)
				row.Cells = append(row.Cells, cell)
				if progress != nil {
					progress(fmt.Sprintf("  %s %s %s: %s (%d results)",
						id, sys, q.ID, cell, cell.Results))
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runAveraged(ds *Dataset, q Query, sys System, cfg Table3Config) Cell {
	var total time.Duration
	var samples []time.Duration
	var last Cell
	for i := 0; i < cfg.Repeats; i++ {
		last = RunCell(ds, q, sys, cfg.Timeout)
		samples = append(samples, last.Elapsed)
		if last.DNF || last.Err != nil {
			last.Samples = samples
			return last
		}
		total += last.Elapsed
	}
	last.Elapsed = total / time.Duration(cfg.Repeats)
	last.Samples = samples
	return last
}

// FormatTable3 renders the rows as the paper's Table 3.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %-4s %10s %10s %10s %10s %10s %10s\n",
		"file", "sys.", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6")
	prev := ""
	for _, r := range rows {
		ds := r.Dataset
		if ds == prev {
			ds = ""
		} else {
			prev = ds
		}
		fmt.Fprintf(&sb, "%-5s %-4s", ds, r.System)
		for _, c := range r.Cells {
			fmt.Fprintf(&sb, " %10s", c.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Table1Row is one dataset-statistics row.
type Table1Row struct {
	Info  xmlgen.Info
	Stats xmltree.Stats
}

// RunTable1 generates every dataset and computes its Table 1 statistics.
func RunTable1(seed int64, targetNodes map[string]int) ([]Table1Row, error) {
	var rows []Table1Row
	for _, id := range Datasets() {
		ds, err := LoadDataset(id, targetNodes[id], seed)
		if err != nil {
			return nil, err
		}
		info, _ := xmlgen.LookupInfo(id)
		rows = append(rows, Table1Row{Info: info, Stats: ds.Stats})
	}
	return rows, nil
}

// FormatTable1 renders dataset statistics next to the paper's figures.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-12s %-5s %10s %10s %9s %9s %7s %12s %10s\n",
		"id", "name", "rec?", "size", "#nodes", "avg dep", "max dep", "|tags|", "paper nodes", "paper size")
	for _, r := range rows {
		rec := "N"
		if r.Stats.Recursive {
			rec = "Y"
		}
		fmt.Fprintf(&sb, "%-4s %-12s %-5s %10s %10d %9.1f %9d %7d %12d %10s\n",
			r.Info.ID, r.Info.Name, rec, xmltree.FormatBytes(r.Stats.Bytes),
			r.Stats.Nodes, r.Stats.AvgDepth, r.Stats.MaxDepth, r.Stats.Tags,
			r.Info.PaperNodes, r.Info.PaperSize)
	}
	return sb.String()
}

// FormatTable2 renders the query-category table.
func FormatTable2() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %-38s %s\n", "category", "meaning", "example query")
	for _, r := range Table2 {
		fmt.Fprintf(&sb, "%-9s %-38s %s\n", r.Category, r.Meaning, r.Example)
	}
	sb.WriteString("\nper-dataset suites (Appendix A):\n")
	for _, id := range Datasets() {
		for _, q := range Suite(id) {
			fmt.Fprintf(&sb, "%-3s %s (%s): %s\n", id, q.ID, q.Category, q.Text)
		}
	}
	return sb.String()
}
