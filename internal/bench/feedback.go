package bench

// Static-vs-feedback harness (ROADMAP item 5): measure whether the
// feedback loop's history-corrected replans actually pay off. The
// harness builds a deliberately skewed corpus — one where the static
// cost model's cardinality estimates are wrong by orders of magnitude —
// then runs each probe query through two arms:
//
//   static   — the cold plan's strategy, forced, for every repeat
//              (forced strategies observe into the feedback store but
//              never replan), and
//   feedback — Strategy Auto throughout, so the plan cache hit path is
//              free to replan from the history the static arm and the
//              warm-up accumulated.
//
// A row compares the mean warm latency of the two arms and records
// whether the feedback arm replanned, which strategy it flipped to,
// and the drift that triggered the flip.

import (
	"fmt"
	"strings"
	"time"

	"blossomtree/internal/exec"
	"blossomtree/internal/feedback"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

// FeedbackConfig sizes the harness.
type FeedbackConfig struct {
	// Parts is the number of top-level part elements in the skewed
	// corpus (default 1200). Only one in SkewEvery of them carries the
	// <bolt/> child the probe query selects on, which is exactly the
	// skew the static model cannot see.
	Parts int
	// SkewEvery spaces the bolt-bearing parts (default 240 → 5 matches
	// at the default Parts).
	SkewEvery int
	// Repeats is the number of timed warm repeats per arm (default:
	// the feedback ring size, so the replan is judged within the run).
	Repeats int
}

func (c FeedbackConfig) withDefaults() FeedbackConfig {
	if c.Parts <= 0 {
		c.Parts = 1200
	}
	if c.SkewEvery <= 0 {
		c.SkewEvery = 240
	}
	// At least RingSize warm repeats, so the replan's win/loss verdict
	// is judged within the run.
	if c.Repeats < feedback.DefaultRingSize {
		c.Repeats = feedback.DefaultRingSize
	}
	return c
}

// FeedbackRow is one probe query's static-vs-feedback comparison.
type FeedbackRow struct {
	Query        string
	ColdStrategy string  // strategy the static model picked cold
	WarmStrategy string  // strategy the feedback arm ended on
	Replanned    bool    // did the feedback arm replan from history
	Drift        float64 // est/act ratio that armed the replan (0 if none)
	Samples      int64   // feedback-store observation count at the end
	StaticMean   time.Duration
	FeedbackMean time.Duration
	// Judged/Won mirror the store's own win/loss verdict for the replan
	// (the verdict behind feedback_wins_total / feedback_losses_total).
	Judged bool
	Won    bool
}

// Speedup is the static/feedback latency ratio (>1 = feedback faster).
func (r FeedbackRow) Speedup() float64 {
	if r.FeedbackMean <= 0 {
		return 0
	}
	return float64(r.StaticMean) / float64(r.FeedbackMean)
}

// feedbackProbes are the harness queries. The first is the headline
// strategy flip: `//part[bolt]//subpart` estimates its twig root at
// card(part) ≈ thousands while only a handful of parts carry a bolt, so
// history drives a twig→nested-loop replan. The second is a well
// estimated control — every part matches — that must NOT replan.
var feedbackProbes = []string{
	"//part[bolt]//subpart",
	"//part//subpart",
}

// SkewedCorpus builds the harness document: parts top-level part
// elements, each holding twelve subparts plus one nested part (the
// nesting makes the tag recursive, which routes Auto to the twig plan),
// with a <bolt/> child on every skewEvery-th part only.
func SkewedCorpus(parts, skewEvery int) (*xmltree.Document, error) {
	var sb strings.Builder
	sb.WriteString("<assembly>")
	for i := 0; i < parts; i++ {
		sb.WriteString("<part>")
		if i%skewEvery == 0 {
			sb.WriteString("<bolt/>")
		}
		for j := 0; j < 12; j++ {
			fmt.Fprintf(&sb, "<subpart id=\"%d-%d\"/>", i, j)
		}
		sb.WriteString("<part><subpart/></part>")
		sb.WriteString("</part>")
	}
	sb.WriteString("</assembly>")
	return xmltree.ParseString(sb.String())
}

// RunFeedbackCompare runs the static-vs-feedback comparison. It resets
// the process-wide plan cache and feedback store around each probe (the
// harness owns both for the duration) and restores the feedback
// configuration it tightened before returning.
func RunFeedbackCompare(cfg FeedbackConfig, progress func(string)) ([]FeedbackRow, error) {
	cfg = cfg.withDefaults()
	if progress == nil {
		progress = func(string) {}
	}

	doc, err := SkewedCorpus(cfg.Parts, cfg.SkewEvery)
	if err != nil {
		return nil, fmt.Errorf("bench: skewed corpus: %w", err)
	}
	eng := exec.New()
	eng.Add("skew", doc)

	// Tighten the trigger so one harness run crosses it: warmRuns
	// observations arm the replan on the feedback arm's first cache
	// hit, and Repeats stays under MinSamples so the re-arm guard
	// spaces any second replan past the end of the run.
	prev := feedback.Shared.ConfigSnapshot()
	warmRuns := int64(2 * feedback.DefaultRingSize)
	feedback.Shared.SetConfig(feedback.Config{
		DriftThreshold: feedback.DefaultDriftThreshold,
		MinSamples:     warmRuns,
		RingSize:       feedback.DefaultRingSize,
		MaxQueries:     prev.MaxQueries,
	})
	defer feedback.Shared.SetConfig(prev)

	var rows []FeedbackRow
	for _, q := range feedbackProbes {
		progress(fmt.Sprintf("feedback probe %s", q))
		row, err := runFeedbackProbe(eng, q, cfg, warmRuns)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runFeedbackProbe measures one query through both arms.
func runFeedbackProbe(eng *exec.Engine, q string, cfg FeedbackConfig, warmRuns int64) (FeedbackRow, error) {
	exec.ResetPlanCache()
	exec.ResetFeedback()

	// Cold probe: what does the static model pick with no history?
	cold, err := eng.EvalOptions(q, plan.Options{Strategy: plan.Auto})
	if err != nil {
		return FeedbackRow{}, fmt.Errorf("bench: cold probe %s: %w", q, err)
	}
	if cold.Plan == nil {
		return FeedbackRow{}, fmt.Errorf("bench: cold probe %s routed to navigational fallback", q)
	}
	coldStrategy := cold.Plan.Strategy

	// Static arm: the cold strategy, forced. Warms the hash's history
	// to warmRuns observations (the cold probe was the first) and
	// yields the static-plan baseline timing over the last Repeats.
	var staticMean time.Duration
	for i := int64(1); i < warmRuns; i++ {
		start := time.Now()
		if _, err := eng.EvalOptions(q, plan.Options{Strategy: coldStrategy}); err != nil {
			return FeedbackRow{}, fmt.Errorf("bench: static arm %s: %w", q, err)
		}
		if warmRuns-i <= int64(cfg.Repeats) {
			staticMean += time.Since(start)
		}
	}
	staticMean /= time.Duration(cfg.Repeats)

	// Feedback arm: Auto repeats. The first repeat hits the cold
	// probe's cached template with n ≥ MinSamples of history, so a
	// drifted estimate replans right there; the timed repeats then run
	// the corrected template.
	var (
		feedbackMean time.Duration
		warm         = FeedbackRow{Query: q, ColdStrategy: coldStrategy.String()}
	)
	for i := 0; i < cfg.Repeats; i++ {
		start := time.Now()
		res, err := eng.EvalOptions(q, plan.Options{Strategy: plan.Auto})
		if err != nil {
			return FeedbackRow{}, fmt.Errorf("bench: feedback arm %s: %w", q, err)
		}
		feedbackMean += time.Since(start)
		if res.Plan != nil {
			warm.WarmStrategy = res.Plan.Strategy.String()
		}
		if res.Replanned {
			warm.Replanned = true
			warm.Drift = res.FeedbackDrift
		}
	}
	feedbackMean /= time.Duration(cfg.Repeats)

	warm.StaticMean = staticMean
	warm.FeedbackMean = feedbackMean
	if sum, ok := feedback.Shared.Lookup(obs.QueryHash(q)); ok {
		warm.Samples = sum.N
		warm.Judged = sum.Judged
		warm.Won = sum.Won
	}
	return warm, nil
}

// FormatFeedback renders the comparison as an aligned table.
func FormatFeedback(rows []FeedbackRow) string {
	var sb strings.Builder
	sb.WriteString("Feedback-driven planning: static plan vs. history-corrected replan\n")
	fmt.Fprintf(&sb, "%-26s %6s %6s %10s %8s %12s %12s %8s %8s\n",
		"query", "cold", "warm", "replanned", "drift", "static", "feedback", "speedup", "verdict")
	for _, r := range rows {
		replanned := "no"
		if r.Replanned {
			replanned = "yes"
		}
		drift := "-"
		if r.Drift > 0 {
			drift = fmt.Sprintf("%.1fx", r.Drift)
		}
		verdict := "-"
		if r.Judged {
			if r.Won {
				verdict = "win"
			} else {
				verdict = "loss"
			}
		}
		fmt.Fprintf(&sb, "%-26s %6s %6s %10s %8s %12s %12s %7.2fx %8s\n",
			r.Query, r.ColdStrategy, r.WarmStrategy, replanned, drift,
			r.StaticMean.Round(time.Microsecond), r.FeedbackMean.Round(time.Microsecond),
			r.Speedup(), verdict)
	}
	return sb.String()
}
