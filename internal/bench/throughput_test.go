package bench

import (
	"strings"
	"testing"
)

func TestRunThroughput(t *testing.T) {
	cfg := ThroughputConfig{
		Seed:        1,
		TargetNodes: map[string]int{"d2": 2000},
		Datasets:    []string{"d2"},
		Workers:     4,
		Rounds:      2,
		Shards:      2,
	}
	rows, err := RunThroughput(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Dataset != "d2" || r.Workers != 4 {
		t.Errorf("row metadata = %+v", r)
	}
	if want := 2 * len(Suite("d2")); r.Queries != want {
		t.Errorf("batch size = %d, want %d", r.Queries, want)
	}
	if r.Errors != 0 {
		t.Errorf("batch had %d errors", r.Errors)
	}
	if r.SerialQPS <= 0 || r.ParallelQPS <= 0 || r.Speedup <= 0 {
		t.Errorf("throughput not measured: %+v", r)
	}
	if r.Shards != 2 || r.AllDocsQPS <= 0 || r.ShardedQPS <= 0 || r.ShardSpeedup <= 0 {
		t.Errorf("sharded scatter not measured: %+v", r)
	}
	out := FormatThroughput(rows)
	for _, frag := range []string{"d2", "speedup", "workers", "shards", "sharded q/s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FormatThroughput missing %q:\n%s", frag, out)
		}
	}
}
