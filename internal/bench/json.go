package bench

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// Machine-readable benchmark output (BENCH_results.json): the Table 3
// grid and the throughput report as structured records — per
// (dataset, system, query): mean/p50/p99 latency over the repeats,
// nodes scanned and results produced per run, and DNF/error flags — so
// the repo's perf trajectory can be tracked across commits instead of
// eyeballed from formatted tables. The schema is documented in
// EXPERIMENTS.md; schema_version gates readers against future shape
// changes.

// ResultsFile is the root of BENCH_results.json.
type ResultsFile struct {
	SchemaVersion int           `json:"schema_version"`
	GeneratedAt   string        `json:"generated_at"` // RFC 3339 UTC
	Config        ResultsConfig `json:"config"`
	// Table3 holds one record per measured (dataset, system, query)
	// cell of the paper's running-time grid.
	Table3 []CellResult `json:"table3,omitempty"`
	// Vectorized holds the tuple-at-a-time vs columnar comparison cells
	// (schema v2): per descendant chain, the mean latency of the chained
	// stack semi-join and of the vectorized executor, and their ratio.
	Vectorized []VectorizedResult `json:"vectorized,omitempty"`
	// Throughput holds the serial-vs-parallel batch comparison rows of
	// the -qps mode.
	Throughput []ThroughputResult `json:"throughput,omitempty"`
	// Feedback holds the static-plan vs feedback-replan comparison rows
	// of the -feedback mode (schema v3).
	Feedback []FeedbackResult `json:"feedback,omitempty"`
	// Persist holds the cold-parse vs segment-store-reopen restart
	// comparison rows of the -persist mode (schema v4).
	Persist []PersistResult `json:"persist,omitempty"`
}

// ResultsConfig records the knobs the run used, for apples-to-apples
// comparisons across commits.
type ResultsConfig struct {
	Seed        int64          `json:"seed"`
	TimeoutS    float64        `json:"timeout_s,omitempty"`
	Repeats     int            `json:"repeats,omitempty"`
	Workers     int            `json:"workers,omitempty"`
	Rounds      int            `json:"rounds,omitempty"`
	Shards      int            `json:"shards,omitempty"`
	TargetNodes map[string]int `json:"target_nodes,omitempty"`
}

// CellResult is one (dataset, system, query) measurement.
type CellResult struct {
	Dataset string `json:"dataset"`
	System  string `json:"system"`
	Query   string `json:"query"`
	// MeanS/P50S/P99S summarize the per-repeat samples, in seconds.
	MeanS float64 `json:"mean_s"`
	P50S  float64 `json:"p50_s"`
	P99S  float64 `json:"p99_s"`
	// ScannedPerQuery is the document/index nodes one run inspected;
	// OutPerQuery the result nodes it produced.
	ScannedPerQuery int64  `json:"scanned_per_q"`
	OutPerQuery     int64  `json:"out_per_q"`
	DNF             bool   `json:"dnf"`
	Error           string `json:"error,omitempty"`
}

// VectorizedResult is one chain query's tuple-vs-columnar comparison.
type VectorizedResult struct {
	Dataset string `json:"dataset"`
	Query   string `json:"query"`
	Text    string `json:"text"`
	Rows    int    `json:"rows"`
	// TupleMeanS times the chained binary stack semi-join over node
	// pointers; VectorizedMeanS the batch-at-a-time columnar pipeline.
	TupleMeanS      float64 `json:"tuple_mean_s"`
	VectorizedMeanS float64 `json:"vectorized_mean_s"`
	Speedup         float64 `json:"speedup"`
}

// ThroughputResult is one dataset's serial-vs-parallel comparison.
type ThroughputResult struct {
	Dataset string `json:"dataset"`
	Queries int    `json:"queries"`
	Workers int    `json:"workers"`
	// ColdPassS/WarmPassS time repeated compile (Prepare) passes over
	// the suite — cold with the plan cache emptied each round, warm with
	// every Prepare a cache hit; WarmSpeedup is their ratio.
	ColdPassS       float64 `json:"cold_pass_s"`
	WarmPassS       float64 `json:"warm_pass_s"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	SerialQPS       float64 `json:"serial_qps"`
	ParallelQPS     float64 `json:"parallel_qps"`
	Speedup         float64 `json:"speedup"`
	Errors          int     `json:"errors"`
	ScannedPerQuery float64 `json:"scanned_per_q"`
	EmittedPerQuery float64 `json:"out_per_q"`
	// Sharded scatter comparison, present when the run passed -shards:
	// the same catalog-wide queries through the flat engine's fan-out
	// versus a shard group's scatter-gather over Shards copies.
	Shards       int     `json:"shards,omitempty"`
	AllDocsQPS   float64 `json:"all_docs_qps,omitempty"`
	ShardedQPS   float64 `json:"sharded_qps,omitempty"`
	ShardSpeedup float64 `json:"shard_speedup,omitempty"`
}

// durationQuantile returns the q-quantile of the samples by
// nearest-rank (q in [0,1]; empty input yields 0).
func durationQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	// Nearest-rank rounds up: rank = ceil(q*n).
	if float64(idx+1) < q*float64(len(sorted)) {
		idx++
	}
	return sorted[idx]
}

// Table3Results flattens the grid rows into JSON cell records.
func Table3Results(rows []Table3Row) []CellResult {
	var out []CellResult
	for _, r := range rows {
		for _, c := range r.Cells {
			rec := CellResult{
				Dataset:         c.Dataset,
				System:          string(c.System),
				Query:           c.Query,
				MeanS:           c.Elapsed.Seconds(),
				P50S:            durationQuantile(c.Samples, 0.50).Seconds(),
				P99S:            durationQuantile(c.Samples, 0.99).Seconds(),
				ScannedPerQuery: c.Scanned,
				OutPerQuery:     int64(c.Results),
				DNF:             c.DNF,
			}
			if c.Err != nil {
				rec.Error = c.Err.Error()
			}
			out = append(out, rec)
		}
	}
	return out
}

// VectorizedResults converts comparison rows into JSON records.
func VectorizedResults(rows []VectorizedRow) []VectorizedResult {
	var out []VectorizedResult
	for _, r := range rows {
		out = append(out, VectorizedResult{
			Dataset:         r.Dataset,
			Query:           r.Query,
			Text:            r.Text,
			Rows:            r.Rows,
			TupleMeanS:      r.TupleMean.Seconds(),
			VectorizedMeanS: r.VecMean.Seconds(),
			Speedup:         r.Speedup,
		})
	}
	return out
}

// ThroughputResults converts throughput rows into JSON records.
func ThroughputResults(rows []ThroughputRow) []ThroughputResult {
	var out []ThroughputResult
	for _, r := range rows {
		out = append(out, ThroughputResult{
			Dataset:         r.Dataset,
			Queries:         r.Queries,
			Workers:         r.Workers,
			ColdPassS:       r.Cold.Seconds(),
			WarmPassS:       r.Warm.Seconds(),
			WarmSpeedup:     r.WarmSpeedup,
			SerialQPS:       r.SerialQPS,
			ParallelQPS:     r.ParallelQPS,
			Speedup:         r.Speedup,
			Errors:          r.Errors,
			ScannedPerQuery: r.ScannedPerQuery,
			EmittedPerQuery: r.EmittedPerQuery,
			Shards:          r.Shards,
			AllDocsQPS:      r.AllDocsQPS,
			ShardedQPS:      r.ShardedQPS,
			ShardSpeedup:    r.ShardSpeedup,
		})
	}
	return out
}

// FeedbackResult is one static-vs-feedback comparison row: did the
// history-corrected replan beat the static plan it replaced?
type FeedbackResult struct {
	Query        string  `json:"query"`
	ColdStrategy string  `json:"cold_strategy"`
	WarmStrategy string  `json:"warm_strategy"`
	Replanned    bool    `json:"replanned"`
	Drift        float64 `json:"drift,omitempty"`
	Samples      int64   `json:"samples"`
	StaticMeanS  float64 `json:"static_mean_s"`
	WarmMeanS    float64 `json:"feedback_mean_s"`
	Speedup      float64 `json:"speedup"`
	// Verdict is the feedback store's own judgement of the replan
	// ("win", "loss", or "" when unjudged / no replan), the per-row view
	// of feedback_wins_total and feedback_losses_total.
	Verdict string `json:"verdict,omitempty"`
}

// FeedbackResults converts feedback comparison rows into JSON records.
func FeedbackResults(rows []FeedbackRow) []FeedbackResult {
	var out []FeedbackResult
	for _, r := range rows {
		res := FeedbackResult{
			Query:        r.Query,
			ColdStrategy: r.ColdStrategy,
			WarmStrategy: r.WarmStrategy,
			Replanned:    r.Replanned,
			Drift:        r.Drift,
			Samples:      r.Samples,
			StaticMeanS:  r.StaticMean.Seconds(),
			WarmMeanS:    r.FeedbackMean.Seconds(),
			Speedup:      r.Speedup(),
		}
		if r.Judged {
			if r.Won {
				res.Verdict = "win"
			} else {
				res.Verdict = "loss"
			}
		}
		out = append(out, res)
	}
	return out
}

// PersistResult is one dataset's cold-parse vs store-reopen row: the
// time-to-first-result of a fresh engine parsing the XML text against
// one attaching a reopened segment store.
type PersistResult struct {
	Dataset  string `json:"dataset"`
	Nodes    int64  `json:"nodes"`
	XMLBytes int64  `json:"xml_bytes"`
	SegBytes int64  `json:"seg_bytes"`
	// ColdParseS parses the serialized text and answers the probe query;
	// ReopenS opens the store (manifest + checksum streams, OpenOnlyS)
	// then answers the same probe off the mmap'd segment.
	ColdParseS float64 `json:"cold_parse_s"`
	OpenOnlyS  float64 `json:"open_only_s"`
	ReopenS    float64 `json:"reopen_s"`
	Speedup    float64 `json:"speedup"`
}

// PersistResults converts persist comparison rows into JSON records.
func PersistResults(rows []PersistRow) []PersistResult {
	var out []PersistResult
	for _, r := range rows {
		out = append(out, PersistResult{
			Dataset:    r.Dataset,
			Nodes:      r.Nodes,
			XMLBytes:   r.XMLBytes,
			SegBytes:   r.SegBytes,
			ColdParseS: r.Cold.Seconds(),
			OpenOnlyS:  r.OpenOnly.Seconds(),
			ReopenS:    r.Reopen.Seconds(),
			Speedup:    r.Speedup,
		})
	}
	return out
}

// WriteResults marshals a results file (indented, trailing newline) to
// path.
func WriteResults(path string, f *ResultsFile) error {
	// v2 added the VEC system's table3 cells and the vectorized
	// tuple-vs-columnar comparison section; v3 added the feedback
	// static-vs-replan comparison section; v4 added the persist
	// cold-parse-vs-reopen comparison section.
	f.SchemaVersion = 4
	if f.GeneratedAt == "" {
		f.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
