package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"blossomtree/internal/exec"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/shard"
)

// ThroughputConfig configures a serial-vs-parallel batch throughput
// measurement: the same batch of queries is evaluated once on a single
// worker and once across Workers workers on a shared engine, and the
// two runs are compared.
type ThroughputConfig struct {
	Seed        int64
	TargetNodes map[string]int // per dataset; missing = default scale
	Datasets    []string       // default: all five
	Workers     int            // parallel worker count; <= 0 = GOMAXPROCS
	Rounds      int            // suite repetitions per batch; <= 0 = 20
	// Shards, when > 1, adds a scatter-gather comparison per dataset:
	// Shards copies of the document are served once by a flat engine's
	// catalog-wide fan-out and once through a shard group's scatter, and
	// the two QPS figures are compared (the shard tier's routing,
	// per-shard governors, and ordered merge are its overhead).
	Shards int
}

// ThroughputRow is the serial-vs-parallel comparison for one dataset.
type ThroughputRow struct {
	Dataset     string
	Queries     int // batch size (rounds × suite)
	Workers     int
	Serial      time.Duration
	Parallel    time.Duration
	SerialQPS   float64
	ParallelQPS float64
	Speedup     float64
	Errors      int
	// Cold and Warm time repeated compile passes (Prepare) over the
	// dataset's query suite: cold with the plan cache emptied before each
	// round so every Prepare runs the full compile pipeline, warm with
	// the cache populated so every Prepare is a hit. Both sides pay the
	// parse, so WarmSpeedup = Cold/Warm isolates the planning cost the
	// cache removes from a repeated query.
	Cold        time.Duration
	Warm        time.Duration
	WarmSpeedup float64
	// ScannedPerQuery and EmittedPerQuery are the average operator-level
	// nodes-scanned and instances-emitted per query of the serial run,
	// read from the metrics registry delta around the batch.
	ScannedPerQuery float64
	EmittedPerQuery float64
	// Sharded scatter comparison (zero unless ThroughputConfig.Shards
	// > 1): the same catalog-wide queries through the flat engine's
	// fan-out (AllDocsQPS) versus the shard group's scatter-gather
	// (ShardedQPS); ShardSpeedup = ShardedQPS / AllDocsQPS.
	Shards       int
	AllDocsQPS   float64
	ShardedQPS   float64
	ShardSpeedup float64
}

// RunThroughput measures batch throughput per dataset. Each dataset's
// Appendix-A suite is repeated Rounds times into one batch; the batch
// runs through exec.Engine.EvalBatch with 1 worker and again with
// cfg.Workers workers. A warm-up pass precedes the timed runs so both
// measure a hot engine.
func RunThroughput(cfg ThroughputConfig, progress func(string)) ([]ThroughputRow, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 20
	}
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = Datasets()
	}
	var rows []ThroughputRow
	for _, id := range datasets {
		ds, err := LoadDataset(id, cfg.TargetNodes[id], cfg.Seed)
		if err != nil {
			return nil, err
		}
		eng := exec.New()
		eng.Add(ds.ID, ds.Doc)

		var batch []string
		for r := 0; r < rounds; r++ {
			for _, q := range Suite(id) {
				batch = append(batch, q.Text)
			}
		}
		if progress != nil {
			progress(fmt.Sprintf("dataset %s: %d elements, batch of %d queries (%d CPUs available)",
				id, ds.Stats.Elements, len(batch), runtime.NumCPU()))
		}

		opts := plan.Options{}
		row := ThroughputRow{Dataset: id, Queries: len(batch), Workers: workers}

		// Cold vs warm compile: Prepare the whole suite with the plan
		// cache emptied before each round (every Prepare runs the full
		// compile pipeline) versus with the cache left populated (every
		// Prepare is a lookup). The rounds keep both timings well above
		// clock noise, and each side takes its best of three repetitions
		// so a stray GC pause or scheduler preemption inside the
		// millisecond-scale window cannot flip the ratio. The last cold
		// round leaves the cache seeded, so the warm pass is hits
		// throughout.
		suite := Suite(id)
		compilePass := func(cold bool) (time.Duration, error) {
			const compileRounds = 20
			best := time.Duration(0)
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				for r := 0; r < compileRounds; r++ {
					if cold {
						exec.ResetPlanCache()
					}
					for _, q := range suite {
						if _, err := eng.Prepare(q.Text, opts); err != nil {
							return 0, fmt.Errorf("bench: compile %s on %s: %w", q.ID, id, err)
						}
					}
				}
				if d := time.Since(start); rep == 0 || d < best {
					best = d
				}
			}
			return best, nil
		}
		if row.Cold, err = compilePass(true); err != nil {
			return nil, err
		}
		if row.Warm, err = compilePass(false); err != nil {
			return nil, err
		}
		if row.Warm > 0 {
			row.WarmSpeedup = row.Cold.Seconds() / row.Warm.Seconds()
		}

		// Warm-up evaluation pass so the timed batch runs below measure a
		// hot engine, as before the compile columns existed.
		for _, q := range suite {
			if _, err := eng.Eval(q.Text); err != nil {
				return nil, fmt.Errorf("bench: warm-up %s on %s: %w", q.ID, id, err)
			}
		}

		before := obs.Default.Snapshot()
		start := time.Now()
		serial := eng.EvalBatch(batch, opts, 1)
		row.Serial = time.Since(start)
		if d := obs.Default.Delta(before); len(batch) > 0 {
			row.ScannedPerQuery = float64(d[obs.MetricNodesScanned]) / float64(len(batch))
			row.EmittedPerQuery = float64(d[obs.MetricInstancesOut]) / float64(len(batch))
		}

		start = time.Now()
		par := eng.EvalBatch(batch, opts, workers)
		row.Parallel = time.Since(start)

		for i := range serial {
			if serial[i].Err != nil || par[i].Err != nil {
				row.Errors++
			}
		}
		row.SerialQPS = qps(len(batch), row.Serial)
		row.ParallelQPS = qps(len(batch), row.Parallel)
		if row.Parallel > 0 {
			row.Speedup = row.Serial.Seconds() / row.Parallel.Seconds()
		}

		if cfg.Shards > 1 {
			if err := measureSharded(&row, ds, suite, cfg.Shards, workers, progress); err != nil {
				return nil, err
			}
		}
		if progress != nil {
			progress(fmt.Sprintf("  %s: compile cold %.4fs vs warm %.4fs (%.2f×), serial %.3fs (%.0f q/s), parallel[%d] %.3fs (%.0f q/s), speedup %.2f×, %.0f nodes scanned/query",
				id, row.Cold.Seconds(), row.Warm.Seconds(), row.WarmSpeedup,
				row.Serial.Seconds(), row.SerialQPS, workers,
				row.Parallel.Seconds(), row.ParallelQPS, row.Speedup, row.ScannedPerQuery))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// measureSharded times the scatter-gather comparison for one dataset:
// n copies of its document served by a flat engine's catalog-wide
// fan-out versus a shard group's scatter across n shards.
func measureSharded(row *ThroughputRow, ds *Dataset, suite []Query, shards, workers int, progress func(string)) error {
	row.Shards = shards
	flat := exec.New()
	grp := shard.New(shard.Config{Shards: shards, BuildIndexes: true})
	for i := 0; i < shards; i++ {
		uri := fmt.Sprintf("%s-copy-%d.xml", ds.ID, i)
		flat.Add(uri, ds.Doc)
		grp.Add(uri, ds.Doc)
	}
	opts := plan.Options{}
	// Warm-up plus correctness guard: both paths must agree before the
	// timed passes (one scatter per suite query).
	for _, q := range suite {
		if _, err := flat.EvalAllDocs(q.Text, opts, workers); err != nil {
			return fmt.Errorf("bench: flat fan-out %s on %s: %w", q.ID, ds.ID, err)
		}
		if _, deg, err := grp.EvalAllDocs(q.Text, opts, 0, 1); err != nil || deg != nil {
			return fmt.Errorf("bench: sharded scatter %s on %s: err=%v degraded=%v", q.ID, ds.ID, err, deg != nil)
		}
	}
	const scatterRounds = 5
	start := time.Now()
	for r := 0; r < scatterRounds; r++ {
		for _, q := range suite {
			if _, err := flat.EvalAllDocs(q.Text, opts, workers); err != nil {
				return err
			}
		}
	}
	flatD := time.Since(start)
	start = time.Now()
	for r := 0; r < scatterRounds; r++ {
		for _, q := range suite {
			if _, _, err := grp.EvalAllDocs(q.Text, opts, 0, 1); err != nil {
				return err
			}
		}
	}
	shardD := time.Since(start)
	n := scatterRounds * len(suite)
	row.AllDocsQPS = qps(n, flatD)
	row.ShardedQPS = qps(n, shardD)
	if row.AllDocsQPS > 0 {
		row.ShardSpeedup = row.ShardedQPS / row.AllDocsQPS
	}
	if progress != nil {
		progress(fmt.Sprintf("  %s: %d-copy scatter — flat fan-out %.0f q/s vs %d-shard %.0f q/s (%.2f×)",
			ds.ID, shards, row.AllDocsQPS, shards, row.ShardedQPS, row.ShardSpeedup))
	}
	return nil
}

func qps(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// FormatThroughput renders the serial-vs-parallel comparison table.
func FormatThroughput(rows []ThroughputRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %8s %8s %10s %10s %7s %10s %10s %12s %12s %8s %7s %10s %8s\n",
		"file", "queries", "workers", "cold", "warm", "warmup", "serial", "parallel", "serial q/s", "parall q/s", "speedup", "errors", "scanned/q", "out/q")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-5s %8d %8d %9.4fs %9.4fs %6.2fx %9.3fs %9.3fs %12.0f %12.0f %7.2fx %7d %10.0f %8.1f\n",
			r.Dataset, r.Queries, r.Workers, r.Cold.Seconds(), r.Warm.Seconds(), r.WarmSpeedup,
			r.Serial.Seconds(), r.Parallel.Seconds(),
			r.SerialQPS, r.ParallelQPS, r.Speedup, r.Errors, r.ScannedPerQuery, r.EmittedPerQuery)
	}
	sharded := false
	for _, r := range rows {
		if r.Shards > 0 {
			sharded = true
		}
	}
	if sharded {
		fmt.Fprintf(&sb, "\n%-5s %7s %13s %13s %8s\n",
			"file", "shards", "alldocs q/s", "sharded q/s", "speedup")
		for _, r := range rows {
			if r.Shards == 0 {
				continue
			}
			fmt.Fprintf(&sb, "%-5s %7d %13.0f %13.0f %7.2fx\n",
				r.Dataset, r.Shards, r.AllDocsQPS, r.ShardedQPS, r.ShardSpeedup)
		}
	}
	return sb.String()
}
