package bench

import (
	"fmt"
	"strings"
	"time"

	"blossomtree/internal/index"
	"blossomtree/internal/join"
	"blossomtree/internal/obs"
	"blossomtree/internal/vexec"
	"blossomtree/internal/xmltree"
)

// The vectorized-vs-tuple comparison (beyond the paper): the same
// descendant chain evaluated by the tuple-at-a-time binary structural
// join (chained stack semi-joins over node-pointer lists, the §4.3
// operator) and by the batch-at-a-time columnar executor
// (internal/vexec, fixed-size batches of region-label triples over flat
// uint32 columns). Both consume the same tag-index inverted lists, so
// the delta isolates the execution model: pointer chasing and
// per-tuple call overhead vs branch-light column loops.

// VectorizedQuery is one chain query of the comparison suite.
type VectorizedQuery struct {
	Dataset string
	ID      string // Appendix-A query id on that dataset
	Text    string
}

// VectorizedSuite lists the descendant-heavy pure-chain queries of the
// Appendix-A suites — the fragment the columnar executor accepts
// natively, so both sides run the identical logical plan.
func VectorizedSuite() []VectorizedQuery {
	return []VectorizedQuery{
		{"d1", "Q1", `//a//b4`},
		{"d2", "Q1", `//addresses//street_address//name_of_state`},
		{"d2", "Q3", `//addresses//street_address`},
		{"d3", "Q3", `//publisher//street_information//street_address`},
		{"d3", "Q5", `//author//mailing_address//street_address`},
	}
}

// ChainTags splits a pure descendant chain (`//a//b//c`) into its tag
// sequence.
func ChainTags(text string) []string {
	return strings.Split(strings.TrimPrefix(text, "//"), "//")
}

// TupleChainJoin is the tuple-at-a-time baseline: the chain evaluated
// as a cascade of binary stack semi-joins over the inverted lists,
// deduplicating the descendant side between steps (the StackJoinAnc
// idiom, kept on the descendant side), and returns the surviving tail
// nodes in document order.
func TupleChainJoin(ix *index.TagIndex, tags []string) []*xmltree.Node {
	cur := ix.Nodes(tags[0])
	for _, tag := range tags[1:] {
		descs := ix.Nodes(tag)
		matched := make(map[*xmltree.Node]bool, len(descs))
		for _, p := range join.StackJoin(cur, descs) {
			matched[p.Desc] = true
		}
		next := make([]*xmltree.Node, 0, len(matched))
		for _, d := range descs {
			if matched[d] {
				next = append(next, d)
			}
		}
		cur = next
	}
	return cur
}

// ColumnarChainJoin evaluates the same chain through the vectorized
// pipeline and returns the surviving tail nodes in document order.
func ColumnarChainJoin(ix *index.TagIndex, tags []string) ([]*xmltree.Node, error) {
	stages := make([]vexec.Stage, len(tags))
	for i, tag := range tags {
		stages[i] = vexec.Stage{
			Cols:      ix.Columns(tag),
			Edge:      vexec.EdgeDescendant,
			ScanStats: obs.NewOpStats("VecScan", tag),
			JoinStats: obs.NewOpStats("VecSemiJoin", tag),
		}
	}
	a := vexec.NewArena()
	defer a.Release()
	ords, err := vexec.Run(stages, nil, a)
	if err != nil {
		return nil, err
	}
	tail := stages[len(stages)-1].Cols
	out := make([]*xmltree.Node, len(ords))
	for i, o := range ords {
		out[i] = tail.Nodes[o]
	}
	return out, nil
}

// VectorizedRow is one query's comparison: mean per-run latency of both
// execution models over the repeats and their ratio.
type VectorizedRow struct {
	Dataset   string
	Query     string
	Text      string
	Rows      int // result rows (identical on both sides by construction)
	TupleMean time.Duration
	VecMean   time.Duration
	Speedup   float64 // tuple mean / vectorized mean
}

// VectorizedConfig configures the comparison run.
type VectorizedConfig struct {
	Seed        int64
	TargetNodes map[string]int // per dataset; missing = default scale
	Repeats     int            // timed runs per side per query
	Datasets    []string       // restrict the suite to these datasets (empty = all)
}

// RunVectorizedCompare measures the suite. Before timing, each query's
// two sides are cross-checked row-for-row — a disagreement is an error,
// not a slow cell, so the table can't silently compare different work.
func RunVectorizedCompare(cfg VectorizedConfig, progress func(string)) ([]VectorizedRow, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 5
	}
	allowed := map[string]bool{}
	for _, id := range cfg.Datasets {
		allowed[id] = true
	}
	datasets := map[string]*Dataset{}
	var rows []VectorizedRow
	for _, vq := range VectorizedSuite() {
		if len(allowed) > 0 && !allowed[vq.Dataset] {
			continue
		}
		ds, ok := datasets[vq.Dataset]
		if !ok {
			var err error
			ds, err = LoadDataset(vq.Dataset, cfg.TargetNodes[vq.Dataset], cfg.Seed)
			if err != nil {
				return nil, err
			}
			datasets[vq.Dataset] = ds
		}
		tags := ChainTags(vq.Text)

		tup := TupleChainJoin(ds.Index, tags)
		vec, err := ColumnarChainJoin(ds.Index, tags)
		if err != nil {
			return nil, fmt.Errorf("bench: %s %s vectorized: %w", vq.Dataset, vq.ID, err)
		}
		if len(tup) != len(vec) {
			return nil, fmt.Errorf("bench: %s %s: tuple join returns %d rows, vectorized %d",
				vq.Dataset, vq.ID, len(tup), len(vec))
		}
		for i := range tup {
			if tup[i] != vec[i] {
				return nil, fmt.Errorf("bench: %s %s: row %d differs between execution models",
					vq.Dataset, vq.ID, i)
			}
		}

		tupMean := timeMean(cfg.Repeats, func() { TupleChainJoin(ds.Index, tags) })
		vecMean := timeMean(cfg.Repeats, func() { ColumnarChainJoin(ds.Index, tags) })
		row := VectorizedRow{
			Dataset:   vq.Dataset,
			Query:     vq.ID,
			Text:      vq.Text,
			Rows:      len(tup),
			TupleMean: tupMean,
			VecMean:   vecMean,
		}
		if vecMean > 0 {
			row.Speedup = float64(tupMean) / float64(vecMean)
		}
		rows = append(rows, row)
		if progress != nil {
			progress(fmt.Sprintf("  %s %s: tuple %v, vectorized %v (%.2fx, %d rows)",
				vq.Dataset, vq.ID, tupMean, vecMean, row.Speedup, row.Rows))
		}
	}
	return rows, nil
}

func timeMean(repeats int, f func()) time.Duration {
	var total time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		f()
		total += time.Since(start)
	}
	return total / time.Duration(repeats)
}

// FormatVectorized renders the comparison rows as a table.
func FormatVectorized(rows []VectorizedRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-3s %-48s %8s %12s %12s %8s\n",
		"file", "q", "chain", "rows", "tuple", "vectorized", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %-3s %-48s %8d %12s %12s %7.2fx\n",
			r.Dataset, r.Query, r.Text, r.Rows, r.TupleMean, r.VecMean, r.Speedup)
	}
	return sb.String()
}
