// Package bench holds the experiment harness that regenerates the
// paper's evaluation: the Table 2 query categories, the Appendix-A query
// suites for the five datasets of Table 1, and the per-cell runner that
// produces the Table 3 grid (running time of XH / TS / PL / NL per
// dataset × query, with DNF timeout handling).
package bench

// Category is one of the six selectivity × topology classes of Table 2.
type Category string

// Table 2 categories: {high, moderate, low} selectivity × {chain,
// branching} topology.
const (
	HC Category = "hc"
	HB Category = "hb"
	MC Category = "mc"
	MB Category = "mb"
	LC Category = "lc"
	LB Category = "lb"
)

// Table2 lists the categories with their generic example queries, as
// printed in the paper's Table 2.
var Table2 = []struct {
	Category Category
	Meaning  string
	Example  string
}{
	{HC, "high selectivity (≈1%), chain", "/a/b//[c/d//e]"},
	{HB, "high selectivity (≈1%), branching", "/a//b[//c/d]//e/f"},
	{MC, "moderate selectivity (≈10%), chain", "//a//b//c"},
	{MB, "moderate selectivity (≈10%), branching", "//a/b[//c][//d][//e]"},
	{LC, "low selectivity (≈50%), chain", "//a//b"},
	{LB, "low selectivity (≈50%), branching", "//a[//b][//c]//e"},
}

// Query is one benchmark query of a dataset's suite.
type Query struct {
	ID       string // "Q1".."Q6"
	Category Category
	Text     string
}

// suites holds the Appendix-A query suites, adapted where needed to the
// synthetic generators' vocabularies (chain queries over d1's random
// recursive nesting use one-step-shorter chains so the selectivity
// classes survive the 1/40 default scale; d3's Q5 relies on authors
// carrying mailing_address wrappers, which the generator produces).
var suites = map[string][]Query{
	"d1": {
		{"Q1", HC, `//a//b4`},
		{"Q2", HB, `//a[//b2][//b1]//b3`},
		{"Q3", MC, `//a//c2/b1//c3`},
		{"Q4", MB, `//a//c2[//b1]/b1//c3`},
		{"Q5", LC, `//b1//c2//b1`},
		{"Q6", LB, `//b1//c2[//c3]//b1`},
	},
	"d2": {
		{"Q1", HC, `//addresses//street_address//name_of_state`},
		{"Q2", HB, `//addresses[//zip_code][//country_id]`},
		{"Q3", MC, `//addresses//street_address`},
		{"Q4", MB, `//address[//name_of_state][//zip_code]//street_address`},
		{"Q5", LC, `//address[//street_address]`},
		{"Q6", LB, `//address[//street_address][//zip_code][//name_of_city]`},
	},
	"d3": {
		{"Q1", HC, `//item/attributes//length`},
		{"Q2", HB, `//item/title[//author/contact_information//street_address]`},
		{"Q3", MC, `//publisher//street_information//street_address`},
		{"Q4", MB, `//publisher[//mailing_address]//street_address`},
		{"Q5", LC, `//author//mailing_address//street_address`},
		{"Q6", LB, `//author[date_of_birth][//last_name]//street_address`},
	},
	"d4": {
		{"Q1", HC, `//VP//VP/NP//PP/PP`},
		{"Q2", HB, `//VP[VP]//VP[PP]/NP[PP]/NN`},
		{"Q3", MC, `//VP/VP/NP//NN`},
		{"Q4", MB, `//VP[VP]//VP/NP//NN`},
		{"Q5", LC, `//VP//VP/NP//PP/IN`},
		{"Q6", LB, `//VP[//NP][//VB]//JJ`},
	},
	"d5": {
		{"Q1", HC, `//phdthesis//author`},
		{"Q2", HB, `//phdthesis[//author][//school]`},
		{"Q3", MC, `//www[//url]`},
		{"Q4", MB, `//www[//editor][//title][//year]`},
		{"Q5", LC, `//proceedings[//editor]`},
		{"Q6", LB, `//proceedings[//editor][//year][//url]`},
	},
}

// Suite returns the six Appendix-A queries of a dataset.
func Suite(dataset string) []Query { return suites[dataset] }

// Datasets lists the dataset IDs in paper order.
func Datasets() []string { return []string{"d1", "d2", "d3", "d4", "d5"} }
