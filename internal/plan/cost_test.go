package plan

import (
	"strings"
	"testing"

	"blossomtree/internal/index"
	"blossomtree/internal/naveval"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

func TestCostModelPrefersTwigOnRecursiveIndexed(t *testing.T) {
	doc := xmlgen.MustGenerate("d1", xmlgen.Config{Seed: 2, TargetNodes: 3000})
	ix := index.Build(doc)
	stats := xmltree.ComputeStats(doc)
	p, err := Build(compilePath(t, `//b1//c2//b1`), doc,
		Options{Strategy: CostBased, Index: ix, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != Twig {
		t.Errorf("strategy = %v, want TS on recursive indexed data\n%s", p.Strategy, p.ExplainCosts())
	}
	ests := p.EstimateCosts()
	if len(ests) != 3 {
		t.Fatalf("estimates = %d", len(ests))
	}
	for _, e := range ests {
		if e.Strategy == Pipelined && e.Sound {
			t.Error("PL must be unsound on recursive data")
		}
	}
}

func TestCostModelPrefersBNLWithoutIndex(t *testing.T) {
	doc := xmlgen.MustGenerate("d1", xmlgen.Config{Seed: 2, TargetNodes: 3000})
	stats := xmltree.ComputeStats(doc)
	p, err := Build(compilePath(t, `//b1//c2//b1`), doc,
		Options{Strategy: CostBased, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != BoundedNL {
		t.Errorf("strategy = %v, want NL (recursive, no index)\n%s", p.Strategy, p.ExplainCosts())
	}
}

func TestCostModelSelectiveIndexFavorsCheapStreams(t *testing.T) {
	// phdthesis-style query: tiny inverted lists → TS streams far
	// cheaper than full scans.
	doc := xmlgen.MustGenerate("d5", xmlgen.Config{Seed: 2, TargetNodes: 8000})
	ix := index.Build(doc)
	stats := xmltree.ComputeStats(doc)
	p, err := Build(compilePath(t, `//phdthesis[//author][//school]`), doc,
		Options{Strategy: CostBased, Index: ix, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != Twig {
		t.Errorf("strategy = %v, want TS for selective streams\n%s", p.Strategy, p.ExplainCosts())
	}
	// The winning estimate must actually be cheapest among sound ones.
	ests := p.EstimateCosts()
	if !ests[0].Sound || ests[0].Strategy != Twig {
		t.Errorf("estimates[0] = %+v", ests[0])
	}
	for _, e := range ests[1:] {
		if e.Sound && e.Cost < ests[0].Cost {
			t.Errorf("ordering broken: %+v cheaper than %+v", e, ests[0])
		}
	}
}

func TestCostModelFallsBackWhenTwigUnsound(t *testing.T) {
	doc := xmlgen.MustGenerate("d2", xmlgen.Config{Seed: 2, TargetNodes: 2000})
	ix := index.Build(doc)
	stats := xmltree.ComputeStats(doc)
	// Positional predicate disables TwigStack.
	p, err := Build(compilePath(t, `//address[2]//zip_code`), doc,
		Options{Strategy: CostBased, Index: ix, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy == Twig {
		t.Errorf("TS chosen despite incompatibility\n%s", p.ExplainCosts())
	}
	found := false
	for _, e := range p.EstimateCosts() {
		if e.Strategy == Twig {
			if e.Sound {
				t.Error("Twig estimate should be unsound")
			}
			if !strings.Contains(e.Detail, "unsound") {
				t.Errorf("detail = %q", e.Detail)
			}
			found = true
		}
	}
	if !found {
		t.Error("no Twig estimate")
	}
}

func TestCostBasedPlansExecuteCorrectly(t *testing.T) {
	for _, id := range []string{"d1", "d2", "d5"} {
		doc := xmlgen.MustGenerate(id, xmlgen.Config{Seed: 4, TargetNodes: 3000})
		ix := index.Build(doc)
		stats := xmltree.ComputeStats(doc)
		queries := map[string]string{
			"d1": `//b1//c2[//c3]//b1`,
			"d2": `//address[//zip_code]//name_of_city`,
			"d5": `//proceedings[//editor]`,
		}
		q := queries[id]
		p, err := Build(compilePath(t, q), doc, Options{Strategy: CostBased, Index: ix, Stats: stats})
		if err != nil {
			t.Fatal(err)
		}
		ls, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		want, err := naveval.EvalPath(doc, xpath.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		rn, _ := p.Query.Return.ByVar("result")
		seen := map[*xmltree.Node]bool{}
		for _, l := range ls {
			for _, n := range l.ProjectSlot(rn.Slot) {
				seen[n] = true
			}
		}
		if len(seen) != len(want) {
			t.Errorf("%s %s via %s: %d results, want %d", id, q, p.Strategy, len(seen), len(want))
		}
	}
}

func TestExplainCosts(t *testing.T) {
	doc := parse(t, sample)
	ix := index.Build(doc)
	p, err := Build(compilePath(t, `//a//c`), doc, Options{Index: ix, Stats: xmltree.ComputeStats(doc)})
	if err != nil {
		t.Fatal(err)
	}
	out := p.ExplainCosts()
	for _, frag := range []string{"cost estimates", "PL", "NL", "TS"} {
		if !strings.Contains(out, frag) {
			t.Errorf("ExplainCosts missing %q:\n%s", frag, out)
		}
	}
}

func TestCardinalityFallbacks(t *testing.T) {
	doc := parse(t, sample)
	stats := xmltree.ComputeStats(doc)
	p, err := Build(compilePath(t, `//a//zzz`), doc, Options{Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	// zzz is unknown: with stats but no index the model assumes a
	// uniform share rather than zero or the whole document.
	ests := p.EstimateCosts()
	for _, e := range ests {
		if e.Cost < 0 {
			t.Errorf("negative cost: %+v", e)
		}
	}
	// Wildcard cardinality equals the element count.
	p2, err := Build(compilePath(t, `//a//*`), doc, Options{Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if p2.EstimateCosts()[0].Cost <= 0 {
		t.Error("wildcard cost should be positive")
	}
}
