package plan

import (
	"fmt"
	"sort"

	"blossomtree/internal/core"
	"blossomtree/internal/join"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/nok"
)

// component is a connected part of the join graph under construction:
// the operator computing it and the set of NoKs whose slots it fills.
type component struct {
	op   join.Operator
	noks map[*core.NoK]bool
}

// buildNoKPlan wires NoK scans and structural joins along the
// decomposition's links, then connects remaining components through
// crossing-edge joins, and finally applies same-component crossings and
// positional filters as selections.
func (p *Plan) buildNoKPlan() (join.Operator, error) {
	d := p.Decomp
	matchers := make(map[*core.NoK]*nok.Matcher, len(d.NoKs))
	for _, n := range d.NoKs {
		m, err := nok.NewMatcher(n, p.Query.Return)
		if err != nil {
			return nil, err
		}
		matchers[n] = m
	}

	// Merged-NoK optimization (§4.2): evaluate every sequentially-scanned
	// NoK in one shared document traversal instead of one scan each. A
	// parallel pre-scan (preScanParallel) has already materialized these
	// lists when preScanned is non-nil.
	if p.opts.MergeScans && p.preScanned == nil && p.opts.Index == nil && p.Strategy != BoundedNL {
		var ms []*nok.Matcher
		for _, n := range d.NoKs {
			if !trivialNoK(n) {
				ms = append(ms, matchers[n])
			}
		}
		results := nok.MultiScan(ms, p.doc)
		p.preScanned = make(map[*core.NoK][]*nestedlist.List, len(ms))
		for i, m := range ms {
			p.preScanned[m.NoK] = results[i]
		}
		p.note("merged %d NoK scans into one traversal", len(ms))
	}

	linked := make(map[*core.NoK]bool)
	for _, l := range d.Links {
		linked[l.Child] = true
	}

	var comps []*component
	newComponent := func(n *core.NoK) *component {
		c := &component{op: p.baseScan(matchers[n]), noks: map[*core.NoK]bool{n: true}}
		comps = append(comps, c)
		return c
	}
	findComp := func(n *core.NoK) *component {
		for _, c := range comps {
			if c.noks[n] {
				return c
			}
		}
		return nil
	}
	removeComp := func(c *component) {
		for i, x := range comps {
			if x == c {
				comps = append(comps[:i], comps[i+1:]...)
				return
			}
		}
	}

	// Pattern-tree root NoKs seed the components (skipping trivial
	// doc-root-only NoKs, which carry no slots).
	for _, n := range d.NoKs {
		if !linked[n] && !trivialNoK(n) {
			newComponent(n)
		}
	}

	// Wire the cut //-edges in decomposition (BFS) order: each link's
	// parent NoK is already in a component when the link is processed.
	for _, l := range d.Links {
		childM := matchers[l.Child]
		if l.IsScan() {
			// Cut edge from a document root: the child NoK scans the
			// whole document. It either seeds a new component or
			// Cartesian-joins with the component already holding other
			// NoKs of the query (the for × for case of Example 1).
			parentComp := findComp(p.noKOfVertex(l.Parent))
			childComp := newComponent(l.Child)
			if parentComp != nil && parentComp != childComp {
				p.combine(parentComp, childComp, nil, l)
				removeComp(childComp)
			}
			continue
		}
		parentComp := findComp(p.noKOfVertex(l.Parent))
		if parentComp == nil {
			return nil, fmt.Errorf("plan: link parent %s has no component", l.Parent.Label())
		}
		op, err := p.descJoin(parentComp.op, childM, l)
		if err != nil {
			return nil, err
		}
		parentComp.op = op
		parentComp.noks[l.Child] = true
	}

	// Crossing edges: joins between components, selections within one.
	var filters []*core.Crossing
	for _, c := range p.Query.Tree.Crossings {
		if p.usedCrossings[c] {
			continue
		}
		fromC := findComp(p.noKOfVertex(c.From))
		toC := findComp(p.noKOfVertex(c.To))
		if fromC == nil || toC == nil {
			return nil, fmt.Errorf("plan: crossing %s endpoints not planned", c)
		}
		if fromC == toC {
			filters = append(filters, c)
			continue
		}
		fromSlot, toSlot := p.slotOf(c.From), p.slotOf(c.To)
		p.note("crossing %s joins two components (nested-loop)", c)
		nl := &join.NestedLoopJoin{
			Outer: fromC.op,
			Inner: toC.op,
			Pred:  join.CrossingPredicate(c, fromSlot, toSlot),
			Stop:  p.opts.Stop,
		}
		p.watch(func() error { return nl.Err })
		fromC.op = nl
		for n := range toC.noks {
			fromC.noks[n] = true
		}
		removeComp(toC)
	}

	// Any components still disconnected combine by Cartesian product.
	for len(comps) > 1 {
		a, b := comps[0], comps[1]
		p.note("cartesian product of disconnected components")
		nl := &join.NestedLoopJoin{Outer: a.op, Inner: b.op, Stop: p.opts.Stop,
			Pred: func(_, _ *nestedlist.List) (bool, error) { return true, nil }}
		p.watch(func() error { return nl.Err })
		a.op = nl
		for n := range b.noks {
			a.noks[n] = true
		}
		removeComp(b)
	}
	if len(comps) == 0 {
		return join.NewSliceOperator(nil), nil
	}
	op := comps[0].op

	for _, c := range filters {
		op = &join.CrossingFilter{Input: op, Crossing: c,
			FromSlot: p.slotOf(c.From), ToSlot: p.slotOf(c.To)}
	}

	// Positional predicates on cut targets become stream selections
	// (σ_position, §3.3); only top-level targets have well-defined
	// stream positions.
	for _, l := range d.Links {
		if pos, has := l.Child.Root.PositionConstraint(); has {
			if !l.IsScan() {
				return nil, fmt.Errorf("plan: positional predicate on nested //-step %s is unsupported", l.Child.Root.Label())
			}
			slot := p.slotOf(l.Child.Root)
			op = &join.PositionFilter{Input: op, Slot: slot, Pos: pos}
		}
	}
	return op, nil
}

// combine Cartesian-joins two components, using any crossing that spans
// them as the join predicate when available (the ϕ-join of Figure 5).
func (p *Plan) combine(a, b *component, _ *core.Crossing, l core.Link) {
	var pred join.Predicate
	for _, c := range p.Query.Tree.Crossings {
		fromIn := a.noks[p.noKOfVertex(c.From)]
		toIn := b.noks[p.noKOfVertex(c.To)]
		if fromIn && toIn {
			pred = join.CrossingPredicate(c, p.slotOf(c.From), p.slotOf(c.To))
			p.markCrossingUsed(c)
			p.note("pushed crossing %s into the %s-join", c, l.Mode)
			break
		}
	}
	if pred == nil {
		pred = func(_, _ *nestedlist.List) (bool, error) { return true, nil }
		p.note("cartesian join of independent for-clauses")
	}
	nl := &join.NestedLoopJoin{Outer: a.op, Inner: b.op, Pred: pred, Stop: p.opts.Stop}
	p.watch(func() error { return nl.Err })
	a.op = nl
	for n := range b.noks {
		a.noks[n] = true
	}
}

// markCrossingUsed records a crossing already applied as a join
// predicate so it is not re-applied as a filter.
func (p *Plan) markCrossingUsed(c *core.Crossing) {
	if p.usedCrossings == nil {
		p.usedCrossings = make(map[*core.Crossing]bool)
	}
	p.usedCrossings[c] = true
}

// baseScan picks the access method for a NoK's anchors: tag-index scan
// when an index exists and the root has a selective name test,
// sequential scan otherwise.
func (p *Plan) baseScan(m *nok.Matcher) join.Operator {
	if ls, ok := p.preScanned[m.NoK]; ok {
		return join.NewSliceOperator(ls)
	}
	if p.opts.Index != nil && !m.NoK.Root.IsDocRoot() && m.RootTest() != "*" && len(m.NoK.Root.Constraints) == 0 {
		p.note("NoK%d anchors via tag index %q (%d candidates)",
			m.NoK.Index, m.RootTest(), p.opts.Index.Count(m.RootTest()))
		it := nok.NewIndexIterator(m, p.opts.Index.Nodes(m.RootTest()))
		it.Stop = p.opts.Stop
		return it
	}
	p.note("NoK%d anchors via sequential scan", m.NoK.Index)
	it := nok.NewIterator(m, p.doc)
	it.Stop = p.opts.Stop
	return it
}

// descJoin builds the structural join for one cut //-edge under the
// plan's strategy.
func (p *Plan) descJoin(outer join.Operator, inner *nok.Matcher, l core.Link) (join.Operator, error) {
	outerSlot := p.slotOf(l.Parent)
	innerSlot := p.slotOf(l.Child.Root)
	perPair := l.Child.Root.ForBound
	optional := l.Mode == core.Optional
	switch p.Strategy {
	case Pipelined:
		p.note("link %s//NoK%d: pipelined merge join", l.Parent.Label(), l.Child.Index)
		pl := &join.PipelinedDescJoin{
			Outer: outer, Inner: p.baseScan(inner),
			OuterSlot: outerSlot, InnerSlot: innerSlot,
			PerPair: perPair, Optional: optional,
		}
		p.watch(func() error { return pl.Err })
		return pl, nil
	case BoundedNL:
		p.note("link %s//NoK%d: bounded nested-loop join", l.Parent.Label(), l.Child.Index)
		bn := &join.BoundedNLJoin{
			Outer: outer, OuterSlot: outerSlot,
			Inner: inner, InnerSlot: innerSlot,
			PerPair: perPair, Optional: optional,
			Stop: p.opts.Stop,
		}
		p.watch(func() error { return bn.Err })
		return bn, nil
	case NaiveNL:
		if optional || !perPair {
			// The materializing NLJ has no optional/grouping modes; fall
			// back to the bounded variant which shares its loop shape.
			bn := &join.BoundedNLJoin{
				Outer: outer, OuterSlot: outerSlot,
				Inner: inner, InnerSlot: innerSlot,
				PerPair: perPair, Optional: optional,
				Stop: p.opts.Stop,
			}
			p.watch(func() error { return bn.Err })
			return bn, nil
		}
		p.note("link %s//NoK%d: naive nested-loop join", l.Parent.Label(), l.Child.Index)
		nl := &join.NestedLoopJoin{
			Outer: outer, Inner: p.baseScan(inner),
			Pred: join.DescPredicate(outerSlot, innerSlot),
			Stop: p.opts.Stop,
		}
		p.watch(func() error { return nl.Err })
		return nl, nil
	default:
		return nil, fmt.Errorf("plan: strategy %s cannot build //-joins", p.Strategy)
	}
}

// buildTwig runs the holistic TwigStack and adapts its matches to the
// instance stream interface.
func (p *Plan) buildTwig() (join.Operator, error) {
	root := p.Query.Tree.Roots[0]
	start := root
	if root.IsDocRoot() {
		start = root.Children[0]
	}
	ts, err := join.NewTwigStack(start, p.opts.Index)
	if err != nil {
		return nil, err
	}
	ts.Stop = p.opts.Stop
	// Keep only the variables' bindings: the executor needs distinct
	// variable combinations, not every existential witness.
	for _, v := range p.Query.Vars {
		ts.Keep = append(ts.Keep, v)
	}
	matches, err := ts.Run()
	if err != nil {
		return nil, err
	}
	p.note("TwigStack produced %d matches (%d stack pushes)", len(matches), ts.PushCount)
	ls := make([]*nestedlist.List, 0, len(matches))
	for _, m := range matches {
		ls = append(ls, p.matchToInstance(m))
	}
	// Twig matches arrive merge-grouped; order instances by their
	// returning-slot nodes so downstream consumers see document order.
	sort.SliceStable(ls, func(i, j int) bool {
		return instanceKeyLess(ls[i], ls[j], p.Query.Return)
	})
	return join.NewSliceOperator(ls), nil
}

// matchToInstance converts one TwigMatch into a NestedList instance:
// each returning vertex contributes a single item, nested per the
// returning tree.
func (p *Plan) matchToInstance(m join.TwigMatch) *nestedlist.List {
	rt := p.Query.Return
	l := nestedlist.NewInstance(rt)
	var build func(rn *core.ReturnNode, parent *nestedlist.Item)
	build = func(rn *core.ReturnNode, parent *nestedlist.Item) {
		node, bound := m[rn.Vertex.ID]
		it := nestedlist.NewItem(node, len(rn.Children))
		ord := rn.ChildOrdinal()
		parent.Groups[ord] = append(parent.Groups[ord], it)
		if bound {
			l.SetFilled(rn.Slot)
		}
		for _, c := range rn.Children {
			build(c, it)
		}
	}
	for _, c := range rt.Root.Children {
		build(c, l.Root)
	}
	return l
}

func instanceKeyLess(a, b *nestedlist.List, rt *core.ReturnTree) bool {
	for slot := 1; slot < len(rt.Nodes); slot++ {
		an := a.ProjectSlot(slot)
		bn := b.ProjectSlot(slot)
		if len(an) == 0 || len(bn) == 0 {
			continue
		}
		if an[0].Start != bn[0].Start {
			return an[0].Start < bn[0].Start
		}
	}
	return false
}

// noKOfVertex resolves the NoK containing a vertex.
func (p *Plan) noKOfVertex(v *core.Vertex) *core.NoK {
	n, _ := p.Decomp.NoKOf(v)
	return n
}

// slotOf resolves a returning vertex's slot.
func (p *Plan) slotOf(v *core.Vertex) int {
	if rn, ok := p.Query.Return.ByVertex(v); ok {
		return rn.Slot
	}
	return 0
}

// trivialNoK reports whether the NoK is a bare document-root vertex with
// no returning members (it contributes nothing to instances).
func trivialNoK(n *core.NoK) bool {
	return n.Root.IsDocRoot() && n.Size() == 1
}
