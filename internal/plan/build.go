package plan

import (
	"fmt"
	"sort"

	"blossomtree/internal/core"
	"blossomtree/internal/join"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/nok"
	"blossomtree/internal/obs"
)

// component is a connected part of the join graph under construction:
// the operator computing it, the stats node tracking it, and the set of
// NoKs whose slots it fills.
type component struct {
	op    join.Operator
	stats *obs.OpStats
	noks  map[*core.NoK]bool
}

// buildNoKPlan wires NoK scans and structural joins along the
// decomposition's links, then connects remaining components through
// crossing-edge joins, and finally applies same-component crossings and
// positional filters as selections.
func (p *Plan) buildNoKPlan() (join.Operator, *obs.OpStats, error) {
	d := p.Decomp
	matchers := make(map[*core.NoK]*nok.Matcher, len(d.NoKs))
	for _, n := range d.NoKs {
		m, err := nok.NewMatcher(n, p.Query.Return)
		if err != nil {
			return nil, nil, err
		}
		matchers[n] = m
	}

	// Merged-NoK optimization (§4.2): evaluate every sequentially-scanned
	// NoK in one shared document traversal instead of one scan each. A
	// parallel pre-scan (preScanParallel) has already materialized these
	// lists when preScanned is non-nil.
	if p.opts.MergeScans && p.preScanned == nil && p.opts.Index == nil && p.Strategy != BoundedNL {
		var ms []*nok.Matcher
		for _, n := range d.NoKs {
			if !trivialNoK(n) {
				ms = append(ms, matchers[n])
			}
		}
		results := nok.MultiScan(ms, p.doc)
		p.preScanned = make(map[*core.NoK][]*nestedlist.List, len(ms))
		for i, m := range ms {
			p.preScanned[m.NoK] = results[i]
		}
		p.note("merged %d NoK scans into one traversal", len(ms))
	}

	linked := make(map[*core.NoK]bool)
	for _, l := range d.Links {
		linked[l.Child] = true
	}

	var comps []*component
	newComponent := func(n *core.NoK) *component {
		op, st := p.baseScan(matchers[n])
		c := &component{op: op, stats: st, noks: map[*core.NoK]bool{n: true}}
		comps = append(comps, c)
		return c
	}
	findComp := func(n *core.NoK) *component {
		for _, c := range comps {
			if c.noks[n] {
				return c
			}
		}
		return nil
	}
	removeComp := func(c *component) {
		for i, x := range comps {
			if x == c {
				comps = append(comps[:i], comps[i+1:]...)
				return
			}
		}
	}

	// Pattern-tree root NoKs seed the components (skipping trivial
	// doc-root-only NoKs, which carry no slots).
	for _, n := range d.NoKs {
		if !linked[n] && !trivialNoK(n) {
			newComponent(n)
		}
	}

	// Wire the cut //-edges in decomposition (BFS) order: each link's
	// parent NoK is already in a component when the link is processed.
	for _, l := range d.Links {
		childM := matchers[l.Child]
		if l.IsScan() {
			// Cut edge from a document root: the child NoK scans the
			// whole document. It either seeds a new component or
			// Cartesian-joins with the component already holding other
			// NoKs of the query (the for × for case of Example 1).
			parentComp := findComp(p.noKOfVertex(l.Parent))
			childComp := newComponent(l.Child)
			if pos, has := l.Child.Root.PositionConstraint(); has {
				// Positional predicates on cut targets become stream
				// selections (σ_position, §3.3). The filter must wrap the
				// target's own scan before any join multiplies the stream:
				// position() counts the target's instances, not joined
				// rows. The nested (non-scan) case is rejected in Build
				// with a fragment error and runs navigationally.
				slot := p.slotOf(l.Child.Root)
				st := obs.NewOpStats("PositionFilter", fmt.Sprintf("position()=%d", pos))
				st.EstOut = 1
				st.Adopt(childComp.stats)
				childComp.op = join.Instrument(&join.PositionFilter{Input: childComp.op, Slot: slot, Pos: pos}, st)
				childComp.stats = st
			}
			if parentComp != nil && parentComp != childComp {
				p.combine(parentComp, childComp, nil, l)
				removeComp(childComp)
			}
			continue
		}
		parentComp := findComp(p.noKOfVertex(l.Parent))
		if parentComp == nil {
			return nil, nil, fmt.Errorf("plan: link parent %s has no component", l.Parent.Label())
		}
		op, st, err := p.descJoin(parentComp.op, parentComp.stats, childM, l)
		if err != nil {
			return nil, nil, err
		}
		parentComp.op = op
		parentComp.stats = st
		parentComp.noks[l.Child] = true
	}

	// Crossing edges: joins between components, selections within one.
	var filters []*core.Crossing
	for _, c := range p.Query.Tree.Crossings {
		if p.usedCrossings[c] {
			continue
		}
		fromC := findComp(p.noKOfVertex(c.From))
		toC := findComp(p.noKOfVertex(c.To))
		if fromC == nil || toC == nil {
			return nil, nil, fmt.Errorf("plan: crossing %s endpoints not planned", c)
		}
		if fromC == toC {
			filters = append(filters, c)
			continue
		}
		fromSlot, toSlot := p.slotOf(c.From), p.slotOf(c.To)
		p.note("crossing %s joins two components (nested-loop)", c)
		st := obs.NewOpStats("NestedLoopJoin", fmt.Sprintf("crossing %s", c))
		st.EstNodes = p.cardinality(c.From) * p.cardinality(c.To)
		st.Adopt(fromC.stats, toC.stats)
		nl := &join.NestedLoopJoin{
			Outer: fromC.op,
			Inner: toC.op,
			Pred:  join.CrossingPredicate(c, fromSlot, toSlot),
			Stop:  p.opts.Stop,
			Gov:   p.gov,
			Stats: st,
		}
		p.watch(func() error { return nl.Err })
		fromC.op = join.Instrument(nl, st)
		fromC.stats = st
		for n := range toC.noks {
			fromC.noks[n] = true
		}
		removeComp(toC)
	}

	// Any components still disconnected combine by Cartesian product.
	for len(comps) > 1 {
		a, b := comps[0], comps[1]
		p.note("cartesian product of disconnected components")
		st := obs.NewOpStats("NestedLoopJoin", "cartesian product")
		st.Adopt(a.stats, b.stats)
		nl := &join.NestedLoopJoin{Outer: a.op, Inner: b.op, Stop: p.opts.Stop, Gov: p.gov, Stats: st,
			Pred: func(_, _ *nestedlist.List) (bool, error) { return true, nil }}
		p.watch(func() error { return nl.Err })
		a.op = join.Instrument(nl, st)
		a.stats = st
		for n := range b.noks {
			a.noks[n] = true
		}
		removeComp(b)
	}
	if len(comps) == 0 {
		st := obs.NewOpStats("Empty", "no components")
		return join.Instrument(join.NewSliceOperator(nil), st), st, nil
	}
	op, stats := comps[0].op, comps[0].stats

	for _, c := range filters {
		st := obs.NewOpStats("CrossingFilter", fmt.Sprintf("σ %s", c))
		st.Adopt(stats)
		op = join.Instrument(&join.CrossingFilter{Input: op, Crossing: c,
			FromSlot: p.slotOf(c.From), ToSlot: p.slotOf(c.To), Stats: st}, st)
		stats = st
	}

	return op, stats, nil
}

// combine Cartesian-joins two components, using any crossing that spans
// them as the join predicate when available (the ϕ-join of Figure 5).
func (p *Plan) combine(a, b *component, _ *core.Crossing, l core.Link) {
	var pred join.Predicate
	for _, c := range p.Query.Tree.Crossings {
		fromIn := a.noks[p.noKOfVertex(c.From)]
		toIn := b.noks[p.noKOfVertex(c.To)]
		if fromIn && toIn {
			pred = join.CrossingPredicate(c, p.slotOf(c.From), p.slotOf(c.To))
			p.markCrossingUsed(c)
			p.note("pushed crossing %s into the %s-join", c, l.Mode)
			break
		}
	}
	if pred == nil {
		pred = func(_, _ *nestedlist.List) (bool, error) { return true, nil }
		p.note("cartesian join of independent for-clauses")
	}
	st := obs.NewOpStats("NestedLoopJoin", fmt.Sprintf("%s-join of for-clauses", l.Mode))
	st.Adopt(a.stats, b.stats)
	nl := &join.NestedLoopJoin{Outer: a.op, Inner: b.op, Pred: pred, Stop: p.opts.Stop, Gov: p.gov, Stats: st}
	p.watch(func() error { return nl.Err })
	a.op = join.Instrument(nl, st)
	a.stats = st
	for n := range b.noks {
		a.noks[n] = true
	}
}

// markCrossingUsed records a crossing already applied as a join
// predicate so it is not re-applied as a filter.
func (p *Plan) markCrossingUsed(c *core.Crossing) {
	if p.usedCrossings == nil {
		p.usedCrossings = make(map[*core.Crossing]bool)
	}
	p.usedCrossings[c] = true
}

// baseScan picks the access method for a NoK's anchors: tag-index scan
// when an index exists and the root has a selective name test,
// sequential scan otherwise. The returned stats node carries the cost
// model's scan estimate and receives the scan's actual counters.
func (p *Plan) baseScan(m *nok.Matcher) (join.Operator, *obs.OpStats) {
	scanStats := func(kind string) *obs.OpStats {
		st := obs.NewOpStats("NoKScan", fmt.Sprintf("NoK%d %s", m.NoK.Index, kind))
		st.EstNodes = p.scanCost(m.NoK)
		st.EstOut = p.cardinality(m.NoK.Root)
		// The telemetry boundary records this scan's est/act counters
		// under the root label — the key CardHints resolve on a replan.
		st.FeedbackKey = m.NoK.Root.Label()
		return st
	}
	if ls, ok := p.preScanned[m.NoK]; ok {
		st := scanStats("replay")
		// The pre-scan already visited the nodes; attribute them here so
		// the tree's scan totals match a serial run of the same plan.
		st.AddScanned(p.preScanScanned[m.NoK])
		return join.Instrument(join.NewSliceOperator(ls), st), st
	}
	if p.opts.Index != nil && !m.NoK.Root.IsDocRoot() && m.RootTest() != "*" && len(m.NoK.Root.Constraints) == 0 {
		p.note("NoK%d anchors via tag index %q (%d candidates)",
			m.NoK.Index, m.RootTest(), p.opts.Index.Count(m.RootTest()))
		st := scanStats(fmt.Sprintf("index(%s)", m.RootTest()))
		it := nok.NewIndexIterator(m, p.opts.Index.Nodes(m.RootTest()))
		it.Stop = p.opts.Stop
		it.Gov = p.gov
		it.Stats = st
		p.watch(func() error { return it.Err })
		return join.Instrument(it, st), st
	}
	p.note("NoK%d anchors via sequential scan", m.NoK.Index)
	st := scanStats("seq")
	it := nok.NewIterator(m, p.doc)
	it.Stop = p.opts.Stop
	it.Gov = p.gov
	it.Stats = st
	p.watch(func() error { return it.Err })
	return join.Instrument(it, st), st
}

// descJoin builds the structural join for one cut //-edge under the
// plan's strategy, wiring the outer's stats node (and the inner scan's,
// when the inner is a base scan) as children of the join's.
func (p *Plan) descJoin(outer join.Operator, outerStats *obs.OpStats, inner *nok.Matcher, l core.Link) (join.Operator, *obs.OpStats, error) {
	outerSlot := p.slotOf(l.Parent)
	innerSlot := p.slotOf(l.Child.Root)
	perPair := l.Child.Root.ForBound
	optional := l.Mode == core.Optional
	detail := fmt.Sprintf("%s//NoK%d", l.Parent.Label(), l.Child.Index)
	// Output-cardinality estimate: per-pair joins emit about one instance
	// per inner match; grouping joins emit about one per outer match.
	estOut := p.cardinality(l.Parent)
	if perPair {
		estOut = p.cardinality(l.Child.Root)
	}
	boundedNL := func() (join.Operator, *obs.OpStats, error) {
		st := obs.NewOpStats("BoundedNLJoin", detail)
		st.EstNodes = p.cardinality(l.Parent) * p.avgRegion(l.Parent)
		st.EstOut = estOut
		st.Adopt(outerStats)
		bn := &join.BoundedNLJoin{
			Outer: outer, OuterSlot: outerSlot,
			Inner: inner, InnerSlot: innerSlot,
			PerPair: perPair, Optional: optional,
			Stop: p.opts.Stop, Gov: p.gov, Stats: st,
		}
		p.watch(func() error { return bn.Err })
		return join.Instrument(bn, st), st, nil
	}
	switch p.Strategy {
	case Pipelined:
		p.note("link %s//NoK%d: pipelined merge join", l.Parent.Label(), l.Child.Index)
		innerOp, innerStats := p.baseScan(inner)
		st := obs.NewOpStats("PipelinedDescJoin", detail)
		st.EstNodes = p.cardinality(l.Parent) + p.cardinality(l.Child.Root)
		st.EstOut = estOut
		st.Adopt(outerStats, innerStats)
		pl := &join.PipelinedDescJoin{
			Outer: outer, Inner: innerOp,
			OuterSlot: outerSlot, InnerSlot: innerSlot,
			PerPair: perPair, Optional: optional,
			Gov:   p.gov,
			Stats: st,
		}
		p.watch(func() error { return pl.Err })
		return join.Instrument(pl, st), st, nil
	case BoundedNL:
		p.note("link %s//NoK%d: bounded nested-loop join", l.Parent.Label(), l.Child.Index)
		return boundedNL()
	case NaiveNL:
		if optional || !perPair {
			// The materializing NLJ has no optional/grouping modes; fall
			// back to the bounded variant which shares its loop shape.
			return boundedNL()
		}
		p.note("link %s//NoK%d: naive nested-loop join", l.Parent.Label(), l.Child.Index)
		innerOp, innerStats := p.baseScan(inner)
		st := obs.NewOpStats("NestedLoopJoin", detail)
		st.EstNodes = p.cardinality(l.Parent) * p.cardinality(l.Child.Root)
		st.EstOut = estOut
		st.Adopt(outerStats, innerStats)
		nl := &join.NestedLoopJoin{
			Outer: outer, Inner: innerOp,
			Pred: join.DescPredicate(outerSlot, innerSlot),
			Stop: p.opts.Stop, Gov: p.gov, Stats: st,
		}
		p.watch(func() error { return nl.Err })
		return join.Instrument(nl, st), st, nil
	default:
		return nil, nil, fmt.Errorf("plan: strategy %s cannot build //-joins", p.Strategy)
	}
}

// buildTwig runs the holistic TwigStack and adapts its matches to the
// instance stream interface.
func (p *Plan) buildTwig() (join.Operator, *obs.OpStats, error) {
	root := p.Query.Tree.Roots[0]
	start := root
	if root.IsDocRoot() {
		start = root.Children[0]
	}
	ts, err := join.NewTwigStack(start, p.opts.Index)
	if err != nil {
		return nil, nil, err
	}
	ts.Stop = p.opts.Stop
	ts.Gov = p.gov
	st := obs.NewOpStats("TwigStack", fmt.Sprintf("twig rooted at %s", start.Label()))
	// The operator emits one instance per distinct kept-variable
	// combination, so the output estimate the feedback loop compares
	// against must come from the kept variables' vertices (the widest
	// dominates), not from the pattern root.
	for _, v := range p.Query.Vars {
		if c := p.cardinality(v); c > st.EstOut {
			st.EstOut = c
		}
	}
	if st.EstOut < 0 {
		st.EstOut = p.cardinality(start)
	}
	st.FeedbackKey = start.Label()
	for _, v := range p.Query.Tree.Vertices {
		if !v.IsDocRoot() {
			if st.EstNodes < 0 {
				st.EstNodes = 0
			}
			st.EstNodes += p.cardinality(v)
		}
	}
	ts.Stats = st
	// Keep only the variables' bindings: the executor needs distinct
	// variable combinations, not every existential witness.
	for _, v := range p.Query.Vars {
		ts.Keep = append(ts.Keep, v)
	}
	matches, err := ts.Run()
	if err != nil {
		// The twig runs at build time, so a governed abort here must
		// still hand back the stats recorded up to the abort.
		return nil, st, err
	}
	p.note("TwigStack produced %d matches (%d stack pushes)", len(matches), ts.PushCount)
	ls := make([]*nestedlist.List, 0, len(matches))
	for _, m := range matches {
		ls = append(ls, p.matchToInstance(m))
	}
	// Twig matches arrive merge-grouped; order instances by their
	// returning-slot nodes so downstream consumers see document order.
	sort.SliceStable(ls, func(i, j int) bool {
		return instanceKeyLess(ls[i], ls[j], p.Query.Return)
	})
	return join.Instrument(join.NewSliceOperator(ls), st), st, nil
}

// matchToInstance converts one TwigMatch into a NestedList instance:
// each returning vertex contributes a single item, nested per the
// returning tree.
func (p *Plan) matchToInstance(m join.TwigMatch) *nestedlist.List {
	rt := p.Query.Return
	l := nestedlist.NewInstance(rt)
	var build func(rn *core.ReturnNode, parent *nestedlist.Item)
	build = func(rn *core.ReturnNode, parent *nestedlist.Item) {
		node, bound := m[rn.Vertex.ID]
		it := nestedlist.NewItem(node, len(rn.Children))
		ord := rn.ChildOrdinal()
		parent.Groups[ord] = append(parent.Groups[ord], it)
		if bound {
			l.SetFilled(rn.Slot)
		}
		for _, c := range rn.Children {
			build(c, it)
		}
	}
	for _, c := range rt.Root.Children {
		build(c, l.Root)
	}
	return l
}

func instanceKeyLess(a, b *nestedlist.List, rt *core.ReturnTree) bool {
	for slot := 1; slot < len(rt.Nodes); slot++ {
		an := a.ProjectSlot(slot)
		bn := b.ProjectSlot(slot)
		if len(an) == 0 || len(bn) == 0 {
			continue
		}
		if an[0].Start != bn[0].Start {
			return an[0].Start < bn[0].Start
		}
	}
	return false
}

// noKOfVertex resolves the NoK containing a vertex.
func (p *Plan) noKOfVertex(v *core.Vertex) *core.NoK {
	n, _ := p.Decomp.NoKOf(v)
	return n
}

// slotOf resolves a returning vertex's slot.
func (p *Plan) slotOf(v *core.Vertex) int {
	if rn, ok := p.Query.Return.ByVertex(v); ok {
		return rn.Slot
	}
	return 0
}

// trivialNoK reports whether the NoK is a bare document-root vertex with
// no returning members (it contributes nothing to instances).
func trivialNoK(n *core.NoK) bool {
	return n.Root.IsDocRoot() && n.Size() == 1
}
