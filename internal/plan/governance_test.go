package plan

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/index"
	"blossomtree/internal/xmltree"
)

// govDoc is a non-recursive document large enough that every join
// operator emits many instances, so faults can target first, middle,
// and last emissions distinctly.
func govDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	return parse(t, "<r>"+strings.Repeat("<a><b><c/></b><b/><c/></a>", 200)+"</r>")
}

func govExecute(t *testing.T, doc *xmltree.Document, ix *index.TagIndex, strat Strategy, opts Options) error {
	t.Helper()
	opts.Strategy = strat
	if strat == Twig {
		opts.Index = ix
	}
	p, err := Build(compilePath(t, `//a//c`), doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Execute()
	return err
}

// TestFaultInjectionPerOperator drives every planned operator family
// with a fault armed at its first, middle, and last instrumentation
// hit, asserting the injected error surfaces from Execute each time.
// The per-site hit totals come from a fault-free counting run, so the
// "last" case really is the operator's final emission.
func TestFaultInjectionPerOperator(t *testing.T) {
	doc := govDoc(t)
	ix := index.Build(doc)
	cases := []struct {
		name  string
		strat Strategy
		site  fault.Site
	}{
		{"pipelined-join", Pipelined, fault.SitePipelined},
		{"bounded-nl-join", BoundedNL, fault.SiteBoundedNL},
		{"nested-loop-join", NaiveNL, fault.SiteNestedLoop},
		{"twigstack", Twig, fault.SiteTwigStack},
		{"nok-emit", Pipelined, fault.SiteNoKEmit},
		{"nok-scan", NaiveNL, fault.SiteNoKScan},
		{"index-stream", Twig, fault.SiteIndexStream},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Counting run: an injector with no rules armed observes how
			// often the operator hits its site in a clean evaluation.
			counter := fault.New()
			if err := govExecute(t, doc, ix, tc.strat, Options{Fault: counter}); err != nil {
				t.Fatalf("counting run failed: %v", err)
			}
			total := counter.Hits(tc.site)
			if total < 3 {
				t.Fatalf("site %s hit only %d times; document too small to test first/middle/last", tc.site, total)
			}
			boom := errors.New("injected operator failure")
			for _, k := range []int64{1, total / 2, total} {
				inj := fault.New().FailAt(tc.site, k, boom)
				err := govExecute(t, doc, ix, tc.strat, Options{Fault: inj})
				if !errors.Is(err, boom) {
					t.Errorf("fault at hit %d/%d of %s: Execute = %v, want the injected error", k, total, tc.site, err)
				}
			}
		})
	}
}

// TestBudgetAbortCarriesPartialStats checks the tentpole acceptance
// criterion: a node-budget abort mid-join returns ErrBudgetExceeded
// carrying the partial per-operator statistics recorded up to the
// abort — a partial EXPLAIN ANALYZE.
func TestBudgetAbortCarriesPartialStats(t *testing.T) {
	doc := govDoc(t)
	ix := index.Build(doc)
	for _, strat := range []Strategy{Pipelined, BoundedNL, NaiveNL, Twig} {
		t.Run(strat.String(), func(t *testing.T) {
			err := govExecute(t, doc, ix, strat, Options{Budget: gov.Budget{MaxNodes: 50}})
			if !errors.Is(err, gov.ErrBudgetExceeded) {
				t.Fatalf("Execute = %v, want ErrBudgetExceeded", err)
			}
			st, ok := gov.StatsOf(err)
			if !ok || st == nil {
				t.Fatal("abort carries no partial stats tree")
			}
			if r := st.Render(true); r == "" {
				t.Fatal("partial stats render empty")
			}
		})
	}
}

func TestOutputBudgetAbort(t *testing.T) {
	doc := govDoc(t)
	err := govExecute(t, doc, nil, Pipelined, Options{Budget: gov.Budget{MaxOutput: 3}})
	if !errors.Is(err, gov.ErrBudgetExceeded) {
		t.Fatalf("Execute = %v, want ErrBudgetExceeded", err)
	}
	if _, ok := gov.StatsOf(err); !ok {
		t.Fatal("output abort carries no partial stats")
	}
}

// TestCanceledContextScansNothing checks the zero-work guarantee: a
// context canceled before Execute returns ErrCanceled without the
// operators touching a single node.
func TestCanceledContextScansNothing(t *testing.T) {
	doc := govDoc(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counter := fault.New()
	p, err := Build(compilePath(t, `//a//c`), doc, Options{Strategy: Pipelined, Ctx: ctx, Fault: counter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(); !errors.Is(err, gov.ErrCanceled) {
		t.Fatalf("Execute = %v, want ErrCanceled", err)
	}
	for _, site := range []fault.Site{fault.SiteNoKScan, fault.SiteNoKEmit, fault.SitePipelined, fault.SiteOutput} {
		if n := counter.Hits(site); n != 0 {
			t.Errorf("site %s hit %d times after pre-canceled context; want 0", site, n)
		}
	}
	if n := p.gov.NodesScanned(); n != 0 {
		t.Errorf("governor charged %d nodes after pre-canceled context", n)
	}
}

// TestDeadlineAbort checks wall-clock governance end to end with an
// already-expired budget deadline.
func TestDeadlineAbort(t *testing.T) {
	doc := govDoc(t)
	p, err := Build(compilePath(t, `//a//c`), doc,
		Options{Strategy: Pipelined, Budget: gov.Budget{Timeout: time.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	if _, err := p.Execute(); !errors.Is(err, gov.ErrBudgetExceeded) {
		t.Fatalf("Execute = %v, want ErrBudgetExceeded", err)
	}
}

// TestParallelPreScanAborts checks that a governance violation inside
// the parallel NoK fan-out surfaces from Execute instead of the plan
// replaying truncated lists as a silently-wrong result.
func TestParallelPreScanAborts(t *testing.T) {
	doc := govDoc(t)
	boom := errors.New("fan-out failure")
	inj := fault.New().FailAt(fault.SiteNoKScan, 10, boom)
	p, err := Build(compilePath(t, `//a//c`), doc,
		Options{Strategy: Pipelined, Parallel: 4, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(); !errors.Is(err, boom) {
		t.Fatalf("Execute = %v, want the injected fan-out error", err)
	}
}
