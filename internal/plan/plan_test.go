package plan

import (
	"errors"
	"strings"
	"testing"

	"blossomtree/internal/core"
	"blossomtree/internal/flwor"
	"blossomtree/internal/index"
	"blossomtree/internal/naveval"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

const sample = `<r>
  <a><b><c/></b><b/></a>
  <a><c/></a>
  <b><c/></b>
</r>`

func compilePath(t *testing.T, q string) *core.Query {
	t.Helper()
	cq, err := core.FromPath(xpath.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

func parse(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		Auto: "auto", Pipelined: "PL", BoundedNL: "NL", NaiveNL: "NLJ",
		Twig: "TS", Navigational: "XH",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
	if !strings.Contains(Strategy(99).String(), "99") {
		t.Error("unknown strategy String")
	}
}

func TestAutoRules(t *testing.T) {
	doc := parse(t, sample)
	ix := index.Build(doc)
	cases := []struct {
		name      string
		opts      Options
		recursive bool
		want      Strategy
	}{
		{"nonrec", Options{}, false, Pipelined},
		{"rec no index", Options{Stats: xmltree.Stats{Recursive: true, Nodes: 1}}, true, BoundedNL},
		{"rec with index", Options{Stats: xmltree.Stats{Recursive: true, Nodes: 1}, Index: ix}, true, Twig},
		{"forced", Options{Strategy: NaiveNL}, false, NaiveNL},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := Build(compilePath(t, `//a//c`), doc, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if p.Strategy != c.want {
				t.Errorf("strategy = %v, want %v", p.Strategy, c.want)
			}
		})
	}
}

func TestAutoTwigFallback(t *testing.T) {
	doc := parse(t, sample)
	ix := index.Build(doc)
	// Positional constraint makes TwigStack incompatible; Auto on
	// recursive stats must fall back rather than fail.
	p, err := Build(compilePath(t, `//a[2]//c`), doc,
		Options{Stats: xmltree.Stats{Recursive: true, Nodes: 1}, Index: ix})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy == Twig {
		t.Errorf("expected fallback, got %v", p.Strategy)
	}
	// Forced Twig surfaces the error at build or operator time.
	if p2, err := Build(compilePath(t, `//a[2]//c`), doc, Options{Strategy: Twig, Index: ix}); err == nil {
		if _, err := p2.Operator(); err == nil {
			t.Error("forced incompatible Twig should fail")
		}
	}
}

func TestExecuteAcrossStrategies(t *testing.T) {
	doc := parse(t, sample)
	ix := index.Build(doc)
	want, err := naveval.EvalPath(doc, xpath.MustParse(`//a//c`))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Pipelined, BoundedNL, NaiveNL, Twig} {
		t.Run(s.String(), func(t *testing.T) {
			p, err := Build(compilePath(t, `//a//c`), doc, Options{Strategy: s, Index: ix})
			if err != nil {
				t.Fatal(err)
			}
			ls, err := p.Execute()
			if err != nil {
				t.Fatal(err)
			}
			rn, _ := p.Query.Return.ByVar("result")
			seen := map[*xmltree.Node]bool{}
			count := 0
			for _, l := range ls {
				for _, n := range l.ProjectSlot(rn.Slot) {
					if !seen[n] {
						seen[n] = true
						count++
					}
				}
			}
			if count != len(want) {
				t.Errorf("%s: %d distinct results, want %d", s, count, len(want))
			}
		})
	}
}

func TestIndexScanNote(t *testing.T) {
	doc := parse(t, sample)
	ix := index.Build(doc)
	p, err := Build(compilePath(t, `//a//c`), doc, Options{Strategy: Pipelined, Index: ix})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Operator(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "tag index") {
		t.Errorf("expected index scans in explain:\n%s", p.Explain())
	}
}

func TestPositionFilterOnNestedCutFails(t *testing.T) {
	doc := parse(t, sample)
	_, err := Build(compilePath(t, `//a//b[2]//c`), doc, Options{Strategy: BoundedNL})
	if err == nil {
		t.Fatal("nested positional //-step should be rejected at Build time")
	}
	if !errors.Is(err, core.ErrOutsideFragment) {
		t.Errorf("err = %v, want ErrOutsideFragment (so the executor can fall back)", err)
	}
}

func TestFLWORCrossingPlan(t *testing.T) {
	doc := parse(t, `<r><x><v>1</v></x><y><v>1</v></y><y><v>2</v></y></r>`)
	q, err := core.FromFLWOR(flwor.MustParse(
		`for $a in doc("d")//x, $b in doc("d")//y where $a/v = $b/v return $b`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 {
		t.Fatalf("join rows = %d, want 1", len(ls))
	}
	bn, _ := q.Return.ByVar("b")
	got := ls[0].ProjectSlot(bn.Slot)
	if len(got) != 1 || xmltree.StringValue(got[0]) != "1" {
		t.Errorf("joined b = %v", got)
	}
	if !strings.Contains(p.Explain(), "joins two components") {
		t.Errorf("crossing should drive the component join:\n%s", p.Explain())
	}
}

func TestDocRootChainPlan(t *testing.T) {
	doc := parse(t, sample)
	// Query whose first NoK is the doc-root NoK with members: /r/a//c.
	p, err := Build(compilePath(t, `/r/a//c`), doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naveval.EvalPath(doc, xpath.MustParse(`/r/a//c`))
	count := 0
	rn, _ := p.Query.Return.ByVar("result")
	seen := map[*xmltree.Node]bool{}
	for _, l := range ls {
		for _, n := range l.ProjectSlot(rn.Slot) {
			if !seen[n] {
				seen[n] = true
				count++
			}
		}
	}
	if count != len(want) {
		t.Errorf("/r/a//c = %d results, want %d", count, len(want))
	}
}

func TestTrivialEmptyPlan(t *testing.T) {
	doc := parse(t, sample)
	p, err := Build(compilePath(t, `//zzz//c`), doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 0 {
		t.Errorf("no-match query produced %d instances", len(ls))
	}
}

func TestCombineScanLinkWithDocRootMembers(t *testing.T) {
	// First clause anchors in the doc-root NoK (/r/x has only child
	// edges); the second clause scan-links a fresh NoK, exercising the
	// combine path that pushes a crossing into the Cartesian join.
	doc := parse(t, `<r><x><v>1</v></x><y><v>1</v></y><y><v>2</v></y></r>`)
	q, err := core.FromFLWOR(flwor.MustParse(
		`for $a in doc("d")/r/x, $b in doc("d")//y where $a/v = $b/v return $b`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", len(ls), p.Explain())
	}
	if !strings.Contains(p.Explain(), "pushed crossing") {
		t.Errorf("crossing should be pushed into the scan-link join:\n%s", p.Explain())
	}
}

func TestCombineWithoutCrossingIsCartesian(t *testing.T) {
	doc := parse(t, `<r><x/><x/><y/><y/><y/></r>`)
	q, err := core.FromFLWOR(flwor.MustParse(
		`for $a in doc("d")/r/x, $b in doc("d")//y return $b`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 6 {
		t.Fatalf("cartesian rows = %d, want 6", len(ls))
	}
	if !strings.Contains(p.Explain(), "cartesian join") {
		t.Errorf("expected cartesian note:\n%s", p.Explain())
	}
}

func TestNaiveNLFallsBackForExistentialLinks(t *testing.T) {
	doc := parse(t, sample)
	// //a[//c]: existential inner NoK under NaiveNL falls back to the
	// bounded variant for grouping semantics.
	p, err := Build(compilePath(t, `//a[//c]`), doc, Options{Strategy: NaiveNL})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naveval.EvalPath(doc, xpath.MustParse(`//a[//c]`))
	if len(ls) != len(want) {
		t.Errorf("NLJ existential = %d, want %d", len(ls), len(want))
	}
}

func TestStopCancelsExecution(t *testing.T) {
	doc := parse(t, sample)
	stopped := true
	p, err := Build(compilePath(t, `//a//c`), doc, Options{
		Strategy: BoundedNL,
		Stop:     func() bool { return stopped },
	})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 0 {
		t.Errorf("stopped plan produced %d instances", len(ls))
	}
}
