package plan

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"blossomtree/internal/index"
	"blossomtree/internal/xmltree"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenCase is one EXPLAIN rendering pinned against a golden file.
// Analyze goldens execute the plan first; they stay deterministic
// because wall-clock timing is only rendered when Options.Analyze
// enables it, which these cases do not.
type goldenCase struct {
	name     string
	query    string
	strategy Strategy
	indexed  bool
	analyze  bool
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{name: "pipelined_explain", query: "//a[//c]//b", strategy: Pipelined},
		{name: "bounded_nl_explain", query: "//a//c", strategy: BoundedNL},
		{name: "naive_nl_explain", query: "//a//c", strategy: NaiveNL, indexed: true},
		{name: "twig_explain", query: "//a[b]//c", strategy: Twig, indexed: true},
		{name: "cost_based_explain", query: "//a//b//c", strategy: CostBased, indexed: true},
		{name: "vectorized_explain", query: "//a//b//c", strategy: Vectorized, indexed: true},
		// Outside the chain fragment: the branching predicate forces the
		// Build-time fallback, whose note the golden pins.
		{name: "vectorized_fallback_explain", query: "//a[b]//c", strategy: Vectorized, indexed: true},
		{name: "pipelined_analyze", query: "//a[//c]//b", strategy: Pipelined, analyze: true},
		{name: "bounded_nl_analyze", query: "//a//c", strategy: BoundedNL, analyze: true},
		{name: "twig_analyze", query: "//a[b]//c", strategy: Twig, indexed: true, analyze: true},
		// The analyze rendering carries the per-stage batch counters
		// (batches=N) the tuple operators never show.
		{name: "vectorized_analyze", query: "//a//b//c", strategy: Vectorized, indexed: true, analyze: true},
	}
}

func TestExplainGolden(t *testing.T) {
	doc := parse(t, sample)
	ix := index.Build(doc)
	stats := xmltree.ComputeStats(doc)
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Strategy: tc.strategy, Stats: stats}
			if tc.indexed || tc.strategy == Twig {
				opts.Index = ix
			}
			pl, err := Build(compilePath(t, tc.query), doc, opts)
			if err != nil {
				t.Fatal(err)
			}
			if tc.analyze {
				if _, err := pl.Execute(); err != nil {
					t.Fatal(err)
				}
			} else if _, err := pl.Operator(); err != nil {
				t.Fatal(err)
			}
			got := pl.Explain() + pl.ExplainCosts() + pl.ExplainTree(tc.analyze)

			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/plan -run TestExplainGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output drifted from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
