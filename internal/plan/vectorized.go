package plan

import (
	"fmt"

	"blossomtree/internal/core"
	"blossomtree/internal/join"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/obs"
	"blossomtree/internal/vexec"
	"blossomtree/internal/xmltree"
)

// The vectorized strategy runs chain queries — a single pattern tree
// that is a pure /- and //-chain off the document root — as a
// batch-at-a-time columnar pipeline (internal/vexec) instead of the
// tuple-at-a-time operator tree. Results are materialized as
// tail-slot-only NestedList instances, which project to exactly the
// node sets the tuple plans produce, so the executor's canonical output
// is byte-identical by construction. Queries outside the chain fragment
// fall back to the standard strategies at Build time (with a note);
// unlike Twig the fallback also applies to explicit requests, keeping
// the strategy total over the whole query surface for the differential
// and property harnesses.

// vexecCompatible reports whether the query can run natively on the
// vectorized executor.
func (p *Plan) vexecCompatible() error {
	if p.opts.Index == nil {
		return fmt.Errorf("plan: vectorized executor needs a tag index")
	}
	q := p.Query
	if len(q.Tree.Roots) != 1 || len(q.Tree.Crossings) > 0 || len(q.Residual) > 0 {
		return fmt.Errorf("plan: vectorized executor handles single pattern trees without crossings")
	}
	root := q.Tree.Roots[0]
	if !root.IsDocRoot() || len(root.Children) != 1 {
		return fmt.Errorf("plan: vectorized executor needs one chain off the document root")
	}
	chain, err := p.vexecChain()
	if err != nil {
		return err
	}
	tail := chain[len(chain)-1]
	for name, v := range q.Vars {
		if v != tail {
			return fmt.Errorf("plan: vectorized executor binds only the chain tail ($%s is bound mid-chain)", name)
		}
	}
	return nil
}

// vexecChain returns the pattern tree's vertices as a root-to-tail
// chain, validating the chain shape (one child per vertex, mandatory
// /- or //-edges, no positional predicates).
func (p *Plan) vexecChain() ([]*core.Vertex, error) {
	var chain []*core.Vertex
	for v := p.Query.Tree.Roots[0].Children[0]; ; v = v.Children[0] {
		if v.ParentRel != core.RelChild && v.ParentRel != core.RelDescendant {
			return nil, fmt.Errorf("plan: vectorized executor supports /- and //-edges only (%s edge to %s)",
				v.ParentRel, v.Label())
		}
		if v.ParentMode != core.Mandatory {
			return nil, fmt.Errorf("plan: vectorized executor supports mandatory edges only (%s)", v.Label())
		}
		if _, has := v.PositionConstraint(); has {
			return nil, fmt.Errorf("plan: vectorized executor cannot order positional predicates (%s)", v.Label())
		}
		chain = append(chain, v)
		if len(v.Children) == 0 {
			return chain, nil
		}
		if len(v.Children) > 1 {
			return nil, fmt.Errorf("plan: vectorized executor handles chains, not branching patterns (%s)", v.Label())
		}
	}
}

// buildVectorized runs the columnar pipeline and adapts the surviving
// tail rows to the instance stream interface. Like buildTwig it runs at
// build time: on a governed abort the stats recorded so far are handed
// back with the error as the partial EXPLAIN ANALYZE.
func (p *Plan) buildVectorized() (join.Operator, *obs.OpStats, error) {
	chain, err := p.vexecChain()
	if err != nil {
		return nil, nil, err
	}
	ix := p.opts.Index

	// One stage per chain step. The stats tree nests left-deep like the
	// operator pipeline it mirrors: each semi-join adopts the previous
	// stage's node and its own scan.
	stages := make([]vexec.Stage, len(chain))
	var prev *obs.OpStats
	for i, v := range chain {
		edge := vexec.EdgeDescendant
		if v.ParentRel == core.RelChild {
			edge = vexec.EdgeChild
		}
		cols := ix.Columns(v.Test)
		scan := obs.NewOpStats("VecScan", fmt.Sprintf("columns(%s) batch=%d", v.Test, vexec.BatchSize))
		scan.EstNodes = float64(cols.Len())
		scan.EstOut = p.cardinality(v)
		stages[i] = vexec.Stage{Cols: cols, Edge: edge, ScanStats: scan}
		if len(v.Constraints) > 0 {
			stages[i].Filter = v.MatchesNode
		}
		if i == 0 {
			prev = scan
			continue
		}
		jn := obs.NewOpStats("VecSemiJoin",
			fmt.Sprintf("%s%s%s", chain[i-1].Label(), edge, v.Label()))
		jn.EstNodes = p.cardinality(chain[i-1]) + p.cardinality(v)
		jn.EstOut = p.cardinality(v)
		jn.Adopt(prev, scan)
		stages[i].JoinStats = jn
		prev = jn
	}
	tail := chain[len(chain)-1]
	rootStats := obs.NewOpStats("VecMaterialize", fmt.Sprintf("%d-stage chain, tail %s", len(chain), tail.Label()))
	rootStats.EstOut = p.cardinality(tail)
	rootStats.Adopt(prev)

	a := vexec.NewArena()
	defer a.Release()
	ords, err := vexec.Run(stages, p.gov, a)
	if err != nil {
		// The pipeline runs at build time, so a governed abort here must
		// still hand back the stats recorded up to the abort.
		return nil, rootStats, err
	}
	rn, ok := p.Query.Return.ByVertex(tail)
	if !ok {
		return nil, rootStats, fmt.Errorf("plan: vectorized chain tail %s has no returning slot", tail.Label())
	}
	tailCols := ix.Columns(tail.Test)
	ls := make([]*nestedlist.List, 0, len(ords))
	for _, o := range ords {
		ls = append(ls, p.vexecInstance(rn, tailCols.Nodes[o]))
	}
	p.note("vectorized pipeline: %d stages, %d matches", len(stages), len(ls))
	return join.Instrument(join.NewSliceOperator(ls), rootStats), rootStats, nil
}

// vexecInstance builds a tail-slot-only NestedList instance for one
// surviving tail node: a placeholder spine down the returning tree with
// the tail's item as the only real match. Projection skips placeholder
// items, so the instance projects to exactly {n} on the tail slot and
// to nothing elsewhere — which is all the executor's result projection
// (path results and FLWOR variable environments, both tail-bound under
// vexecCompatible) ever reads.
func (p *Plan) vexecInstance(rn *core.ReturnNode, n *xmltree.Node) *nestedlist.List {
	var spine []*core.ReturnNode
	for x := rn; x.Parent != nil; x = x.Parent {
		spine = append(spine, x)
	}
	l := nestedlist.NewInstance(p.Query.Return)
	sink := l.Root
	for i := len(spine) - 1; i >= 0; i-- {
		sn := spine[i]
		var node *xmltree.Node
		if i == 0 {
			node = n
		}
		it := nestedlist.NewItem(node, len(sn.Children))
		sink.Groups[sn.ChildOrdinal()] = append(sink.Groups[sn.ChildOrdinal()], it)
		sink = it
	}
	l.SetFilled(rn.Slot)
	return l
}
