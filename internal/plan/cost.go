package plan

import (
	"fmt"
	"sort"
	"strings"

	"blossomtree/internal/core"
)

// This file implements the cost model the paper's conclusion defers to
// future work ("To choose an optimal plan automatically, the optimizer
// needs a cost model or similar mechanism"). The model estimates, from
// document statistics and tag-index cardinalities, the node-visit cost
// of evaluating the decomposed query under each join strategy, and
// CostBased planning picks the cheapest sound one.
//
// The unit of cost is "nodes touched": the paper's experiments are
// I/O-bound and every compared operator's running time is proportional
// to the nodes it scans (sequential scans visit the whole document,
// index scans visit the inverted list, bounded inner scans visit the
// outer match's region, TwigStack visits its streams).

// CostEstimate is one strategy's estimated cost.
type CostEstimate struct {
	Strategy Strategy
	Cost     float64
	Sound    bool   // false when the strategy's preconditions fail
	Detail   string // one-line justification
}

// cardinality estimates how many elements match a vertex, preferring —
// in order — feedback hints (observed output history injected by a
// replan), exact index counts, and statistics. Hints are keyed by
// Vertex.Label() so a hint targets the constrained vertex ("part[bolt]")
// rather than every vertex sharing its tag.
func (p *Plan) cardinality(v *core.Vertex) float64 {
	if h, ok := p.opts.CardHints[v.Label()]; ok && !v.IsDocRoot() {
		return h
	}
	return p.staticCardinality(v)
}

// staticCardinality is the synopsis-only estimate, ignoring feedback
// hints. avgRegion depends on it: a region size is a document property,
// and pricing it with a hinted (workload) cardinality would inflate
// regions exactly when hints shrink — cancelling the hint out of every
// nested-loop cost.
func (p *Plan) staticCardinality(v *core.Vertex) float64 {
	if v.IsDocRoot() {
		return 1
	}
	if p.opts.Index != nil {
		return float64(p.opts.Index.Count(v.Test))
	}
	if v.Test == "*" {
		return float64(p.opts.Stats.Elements)
	}
	if c, ok := p.opts.Stats.TagCounts[v.Test]; ok {
		return float64(c)
	}
	// Unknown tag without an index: assume a uniform share.
	if p.opts.Stats.Tags > 0 {
		return float64(p.opts.Stats.Elements) / float64(p.opts.Stats.Tags)
	}
	return 0
}

// docNodes is the sequential-scan cost.
func (p *Plan) docNodes() float64 {
	if n := p.opts.Stats.Nodes; n > 0 {
		return float64(n)
	}
	if p.opts.Index != nil {
		return float64(p.opts.Index.TotalElements())
	}
	return 1
}

// avgRegion estimates the average subtree size of a vertex's matches: a
// match at depth d of a tree with N nodes and max depth D covers about
// N^((D-d)/D)… which is more precision than the statistics support, so
// the model uses the uniform share N / max(card, depth) with a floor of
// the average root-to-leaf path length.
func (p *Plan) avgRegion(v *core.Vertex) float64 {
	card := p.staticCardinality(v)
	n := p.docNodes()
	if card <= 0 {
		return 0
	}
	region := n / card
	if min := p.opts.Stats.AvgDepth; region < min {
		region = min
	}
	return region
}

// scanCost is the cost of one NoK base scan under the access methods
// baseScan would pick.
func (p *Plan) scanCost(n *core.NoK) float64 {
	root := n.Root
	if p.opts.Index != nil && !root.IsDocRoot() && root.Test != "*" && len(root.Constraints) == 0 {
		return p.cardinality(root)
	}
	return p.docNodes()
}

// EstimateCosts scores every join strategy for this plan's decomposition
// and returns the estimates sorted cheapest-first (unsound strategies
// last).
func (p *Plan) EstimateCosts() []CostEstimate {
	d := p.Decomp
	recursive := p.opts.Stats.Recursive

	// Base scans feed every NoK-based strategy.
	var base float64
	for _, n := range d.NoKs {
		if !trivialNoK(n) {
			base += p.scanCost(n)
		}
	}
	// Crossing joins are strategy-independent nested loops over the
	// joined components' instance counts.
	var crossCost float64
	for _, c := range p.Query.Tree.Crossings {
		crossCost += p.cardinality(c.From) * p.cardinality(c.To)
	}

	var out []CostEstimate

	// Pipelined merge joins: each link consumes both streams once.
	pl := CostEstimate{Strategy: Pipelined, Sound: !recursive}
	pl.Cost = base + crossCost
	for _, l := range d.Links {
		if !l.IsScan() {
			pl.Cost += p.cardinality(l.Parent) + p.cardinality(l.Child.Root)
		}
	}
	if !pl.Sound {
		pl.Detail = "unsound: recursive input breaks order preservation (Theorem 2)"
	} else {
		pl.Detail = fmt.Sprintf("scans %.0f + merge %.0f", base, pl.Cost-base)
	}
	out = append(out, pl)

	// Bounded nested loops: per outer match, a scan of its region.
	nl := CostEstimate{Strategy: BoundedNL, Sound: true}
	nl.Cost = crossCost
	for _, n := range d.NoKs {
		if !trivialNoK(n) {
			if isOuterOnly(d, n) {
				nl.Cost += p.scanCost(n)
			}
		}
	}
	for _, l := range d.Links {
		if !l.IsScan() {
			nl.Cost += p.cardinality(l.Parent) * p.avgRegion(l.Parent)
		} else {
			nl.Cost += p.scanCost(l.Child)
		}
	}
	nl.Detail = fmt.Sprintf("outer scans + %.0f bounded inner visits", nl.Cost)
	out = append(out, nl)

	// TwigStack: one pass over every vertex's stream (when compatible).
	ts := CostEstimate{Strategy: Twig, Sound: p.twigCompatible() == nil}
	if ts.Sound {
		for _, v := range p.Query.Tree.Vertices {
			if !v.IsDocRoot() {
				ts.Cost += p.cardinality(v)
			}
		}
		ts.Detail = fmt.Sprintf("streams total %.0f", ts.Cost)
	} else {
		ts.Detail = "unsound: " + p.twigIncompatibility()
	}
	out = append(out, ts)

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Sound != out[j].Sound {
			return out[i].Sound
		}
		return out[i].Cost < out[j].Cost
	})
	return out
}

// isOuterOnly reports whether the NoK is never the child of a non-scan
// link (i.e. it is scanned directly rather than re-matched per outer).
func isOuterOnly(d *core.Decomposition, n *core.NoK) bool {
	for _, l := range d.Links {
		if l.Child == n && !l.IsScan() {
			return false
		}
	}
	return true
}

func (p *Plan) twigIncompatibility() string {
	if err := p.twigCompatible(); err != nil {
		return err.Error()
	}
	return ""
}

// chooseCostBased picks the cheapest sound strategy from the model.
func (p *Plan) chooseCostBased() Strategy {
	ests := p.EstimateCosts()
	for _, e := range ests {
		if e.Sound {
			p.note("cost model: %s wins (%s)", e.Strategy, e.Detail)
			for _, other := range ests {
				if other.Strategy != e.Strategy {
					p.note("cost model: %s cost %.0f sound=%v (%s)", other.Strategy, other.Cost, other.Sound, other.Detail)
				}
			}
			return e.Strategy
		}
	}
	return BoundedNL // always sound
}

// ExplainCosts renders the cost table, cheapest first.
func (p *Plan) ExplainCosts() string {
	var sb strings.Builder
	sb.WriteString("cost estimates (nodes touched):\n")
	for _, e := range p.EstimateCosts() {
		mark := " "
		if !e.Sound {
			mark = "✗"
		}
		fmt.Fprintf(&sb, "  %s %-3s %12.0f  %s\n", mark, e.Strategy, e.Cost, e.Detail)
	}
	return sb.String()
}
