// Package plan turns a compiled BlossomTree query into an executable
// physical plan. It decomposes the BlossomTree into NoK pattern trees
// (Algorithm 1), chooses access methods for each NoK (sequential scan,
// tag-index scan), picks a structural-join algorithm for the cut
// //-edges — pipelined merge join, bounded nested-loop join, naive
// nested-loop join, or the holistic TwigStack — wires crossing edges as
// join predicates or selections, and exposes the result as a pull stream
// of NestedList instances.
//
// Strategy selection implements the decision rules the paper's
// experiments motivate (§5.2): the pipelined join requires
// order-preserving inputs and is therefore only chosen on non-recursive
// documents, where it is comparable to or faster than TwigStack and
// needs no indexes; TwigStack is preferred on recursive documents when
// tag indexes exist; the bounded nested-loop join is the fallback for
// recursive data without indexes.
package plan

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"blossomtree/internal/core"
	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/index"
	"blossomtree/internal/join"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// Strategy selects the structural-join algorithm family.
type Strategy int

// Strategies.
const (
	Auto         Strategy = iota // rule-based choice from document statistics
	Pipelined                    // PL: merge-join over NoK iterators (§4.2)
	BoundedNL                    // NL: bounded nested-loop join (§4.3)
	NaiveNL                      // naive nested-loop join (materializing)
	Twig                         // TS: holistic TwigStack over tag indexes
	Navigational                 // whole-query navigational evaluation (the XH stand-in)
	CostBased                    // pick the cheapest sound strategy from the cost model
	Vectorized                   // VEC: batch-at-a-time columnar pipeline over the tag index
)

// String names the strategy as in the paper's tables.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Pipelined:
		return "PL"
	case BoundedNL:
		return "NL"
	case NaiveNL:
		return "NLJ"
	case Twig:
		return "TS"
	case Navigational:
		return "XH"
	case CostBased:
		return "cost"
	case Vectorized:
		return "VEC"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures planning.
type Options struct {
	Strategy Strategy
	// Index enables TwigStack and index-driven NoK anchor scans. Nil
	// means no tag indexes exist (the streaming situation of §5.2).
	Index *index.TagIndex
	// Stats drives the Auto rules; if zero-valued, Auto assumes
	// non-recursive input.
	Stats xmltree.Stats
	// MergeScans shares one traversal across NoK base scans instead of
	// scanning per NoK (the merged-NoK optimization). Only meaningful
	// without Index.
	MergeScans bool
	// CardHints overrides the cost model's cardinality synopsis for
	// specific vertices, keyed by core.Vertex.Label(). The feedback loop
	// injects observed output EWMAs here when a cached template's
	// estimates drift from history, so a replan prices strategies with
	// what actually happened instead of the static synopsis. Hints feed
	// cardinality() only; avgRegion() keeps the static figures, because
	// a region size is a document property, not a workload one.
	CardHints map[string]float64
	// Parallel fans the plan's independent NoK base scans out across at
	// most Parallel worker goroutines before the operator tree runs
	// (0 or 1 = serial; negative = GOMAXPROCS). Sound because documents
	// and indexes are immutable during evaluation; it takes precedence
	// over MergeScans, which shares a single serial traversal instead.
	Parallel int
	// Stop, when non-nil, is polled by the plan's operators; returning
	// true ends execution early (the DNF timeout of the experiments).
	// Unlike Ctx/Budget governance it ends streams silently — new code
	// should prefer Ctx and Budget, which return typed errors.
	Stop func() bool
	// Analyze enables per-operator wall-clock timing on the plan's stats
	// tree (EXPLAIN ANALYZE). Counters are collected regardless; only
	// timing is gated, because it costs two clock reads per GetNext.
	Analyze bool
	// Ctx, when non-nil, cancels the evaluation: operators poll it
	// (amortized) and Execute returns gov.ErrCanceled-wrapped errors.
	Ctx context.Context
	// Budget bounds the evaluation's resources (nodes scanned, result
	// tuples, wall clock); exhaustion aborts with gov.ErrBudgetExceeded.
	Budget gov.Budget
	// Fault, when non-nil, is the test-only deterministic fault
	// injector the operators consult at their instrumentation points.
	Fault *fault.Injector
	// Gov, when non-nil, is an externally created governor to use
	// instead of building one from Ctx/Budget/Fault (the executor
	// shares one governor between planning and residual evaluation).
	Gov *gov.Governor
	// QueryID identifies the evaluation in the query log, the latency
	// histogram's trace store, and the daemon's /trace endpoint. Empty
	// means the executor generates one.
	QueryID string
	// Logger, when non-nil, receives one structured record per
	// evaluation (query ID, hash, strategy, verdict, work, latency).
	Logger *slog.Logger
	// SlowQueryThreshold promotes evaluations at or past the threshold
	// to Warn-level log records carrying the full EXPLAIN ANALYZE tree;
	// 0 disables slow-query capture.
	SlowQueryThreshold time.Duration
}

// governor returns the options' governor, building one on demand.
func (o *Options) governor() *gov.Governor {
	if o.Gov == nil {
		o.Gov = gov.New(o.Ctx, o.Budget, o.Fault)
	}
	return o.Gov
}

// Plan is an executable physical plan.
//
// A Plan has two lives: freshly Built, it is a template whose skeleton
// (query, decomposition, strategy, document, planning inputs) is
// immutable and safe to share — the executor's plan cache holds such
// templates; Fork derives an execution copy carrying the per-run state
// (governor, operator bookkeeping, stats tree), and any number of
// forks may execute concurrently.
type Plan struct {
	Query    *core.Query
	Decomp   *core.Decomposition
	Strategy Strategy
	// Cached marks a fork derived from a plan-cache hit; Explain renders
	// it as a "plan cache: hit" line.
	Cached bool

	doc  *xmltree.Document
	opts Options
	gov  *gov.Governor // nil when ungoverned (no ctx/budget/fault)
	expl []string

	usedCrossings map[*core.Crossing]bool
	errChecks     []func() error
	preScanned    map[*core.NoK][]*nestedlist.List
	// preScanScanned carries the node-visit counts of a parallel
	// pre-scan into the stats tree the next Operator build creates (the
	// replayed SliceOperators did the scanning up front).
	preScanScanned map[*core.NoK]int64
	// stats is the root of the per-operator statistics tree of the most
	// recent Operator build; rebuilt fresh on every build so a plan
	// explained and then executed does not double-count.
	stats *obs.OpStats
}

// watch registers a deferred-error source to be checked after draining.
func (p *Plan) watch(f func() error) { p.errChecks = append(p.errChecks, f) }

// Build compiles the query into a plan against the document.
func Build(q *core.Query, doc *xmltree.Document, opts Options) (*Plan, error) {
	// Upward tree edges (parent/ancestor steps the compiler could not
	// rewrite away) have no join-algebra form: reject them before
	// decomposition so the executor can route the query to the
	// navigational fallback.
	for _, v := range q.Tree.Vertices {
		if v.Parent != nil && v.ParentRel.Upward() {
			return nil, fmt.Errorf("plan: %s edge to %s is %w", v.ParentRel, v.Label(), core.ErrOutsideFragment)
		}
	}
	d, err := core.Decompose(q.Tree)
	if err != nil {
		return nil, err
	}
	// Positional predicates under a nested //-cut have no well-defined
	// stream position in the join algebra (the PositionFilter needs a
	// top-level scan). And even on a top-level scan, the PositionFilter
	// counts the instances the matcher emits — so any other constraint or
	// same-NoK mandatory child on the target would be applied BEFORE the
	// position, inverting the step's filter order ([1] counts the step's
	// tag matches before later filters). Detect both shapes at build time
	// so they fall back navigationally instead of answering wrong.
	for _, l := range d.Links {
		root := l.Child.Root
		if _, has := root.PositionConstraint(); !has {
			continue
		}
		if !l.IsScan() {
			return nil, fmt.Errorf("plan: positional predicate on nested //-step %s is %w",
				root.Label(), core.ErrOutsideFragment)
		}
		if len(root.Constraints) > 1 {
			return nil, fmt.Errorf("plan: positional predicate combined with other filters on scan target %s is %w",
				root.Label(), core.ErrOutsideFragment)
		}
		for _, c := range root.Children {
			if c.ParentRel.Local() && c.ParentMode == core.Mandatory {
				return nil, fmt.Errorf("plan: positional predicate on scan target %s with mandatory subtree %s is %w",
					root.Label(), c.Label(), core.ErrOutsideFragment)
			}
		}
	}
	p := &Plan{Query: q, Decomp: d, doc: doc, opts: opts}
	p.gov = p.opts.governor()
	p.Strategy = p.chooseStrategy()
	if p.Strategy == Twig {
		if err := p.twigCompatible(); err != nil {
			// Auto falls back; an explicit Twig request surfaces the error.
			if opts.Strategy == Twig {
				return nil, err
			}
			p.note("TwigStack incompatible (%v); falling back", err)
			if opts.Stats.Recursive {
				p.Strategy = BoundedNL
			} else {
				p.Strategy = Pipelined
			}
		}
	}
	if p.Strategy == Vectorized {
		if err := p.vexecCompatible(); err != nil {
			// Unlike Twig, even an explicit Vectorized request falls back
			// (with an EXPLAIN note) instead of erroring: the vectorized
			// path is an optimization over a fragment, and the harness
			// runs it as a blanket strategy axis over every query.
			p.note("vectorized executor incompatible (%v); falling back", err)
			if opts.Stats.Recursive {
				p.Strategy = BoundedNL
			} else {
				p.Strategy = Pipelined
			}
		}
	}
	if len(opts.CardHints) > 0 {
		p.note("feedback: %d cardinality hints applied to the cost model", len(opts.CardHints))
	}
	p.note("strategy %s over %d NoKs, %d links, %d crossings",
		p.Strategy, len(d.NoKs), len(d.Links), len(q.Tree.Crossings))
	return p, nil
}

func (p *Plan) note(format string, args ...any) {
	p.expl = append(p.expl, fmt.Sprintf(format, args...))
}

// chooseStrategy applies the Auto rules (the decision rules of §5.2) or
// delegates to the cost model.
func (p *Plan) chooseStrategy() Strategy {
	if p.opts.Strategy == CostBased {
		return p.chooseCostBased()
	}
	if p.opts.Strategy != Auto {
		return p.opts.Strategy
	}
	switch {
	case p.opts.Stats.Recursive && p.opts.Index != nil:
		return Twig
	case p.opts.Stats.Recursive:
		return BoundedNL
	default:
		return Pipelined
	}
}

// twigCompatible reports whether the whole query can run as one holistic
// twig join: a single pattern tree, no crossings, no optional edges, no
// positional or following-sibling features, and an index.
func (p *Plan) twigCompatible() error {
	if p.opts.Index == nil {
		return fmt.Errorf("plan: TwigStack needs a tag index")
	}
	if len(p.Query.Tree.Roots) != 1 || len(p.Query.Tree.Crossings) > 0 || len(p.Query.Residual) > 0 {
		return fmt.Errorf("plan: TwigStack handles single pattern trees without crossings")
	}
	root := p.Query.Tree.Roots[0]
	if root.IsDocRoot() && len(root.Children) != 1 {
		return fmt.Errorf("plan: TwigStack needs a single twig root")
	}
	start := root
	if root.IsDocRoot() {
		start = root.Children[0]
	}
	_, err := join.NewTwigStack(start, p.opts.Index)
	return err
}

// Fork returns an execution copy of a compiled plan template. The
// immutable skeleton is shared; planning-time inputs (strategy, index,
// statistics, merged scans) come from the template so a cached plan
// cannot be re-shaped by run options, while everything per-run —
// context, budget, fault injector, parallelism, analyze, telemetry
// identity and the governor — comes from opts. The explain notes are
// copied, not aliased: Operator builds append access-method notes, and
// concurrent forks must not race on the template's slice.
func (p *Plan) Fork(opts Options) *Plan {
	opts.Strategy = p.opts.Strategy
	opts.Index = p.opts.Index
	opts.Stats = p.opts.Stats
	opts.MergeScans = p.opts.MergeScans
	opts.CardHints = p.opts.CardHints
	f := &Plan{
		Query:    p.Query,
		Decomp:   p.Decomp,
		Strategy: p.Strategy,
		doc:      p.doc,
		opts:     opts,
		expl:     append([]string(nil), p.expl...),
	}
	f.gov = f.opts.governor()
	return f
}

// Explain renders the decomposition and the chosen physical operators.
func (p *Plan) Explain() string {
	var sb strings.Builder
	sb.WriteString("plan strategy: " + p.Strategy.String() + "\n")
	if p.Cached {
		// On its own line, not the headline: the daemon parses the first
		// line for the strategy name.
		sb.WriteString("  plan cache: hit\n")
	}
	for _, e := range p.expl {
		sb.WriteString("  " + e + "\n")
	}
	sb.WriteString(p.Decomp.String())
	return sb.String()
}

// Execute runs the plan and materializes the resulting instances. A
// governance violation (cancellation, deadline, budget) aborts with the
// typed gov error carrying the partial per-operator stats tree recorded
// up to the abort — the partial EXPLAIN ANALYZE.
func (p *Plan) Execute() ([]*nestedlist.List, error) {
	if err := p.gov.CheckNow(); err != nil {
		return nil, gov.WithStats(err, p.stats)
	}
	if p.opts.Parallel != 0 && p.opts.Parallel != 1 {
		if err := p.preScanParallel(p.opts.Parallel); err != nil {
			return nil, gov.WithStats(err, p.stats)
		}
	}
	op, err := p.Operator()
	if err != nil {
		return nil, gov.WithStats(err, p.stats)
	}
	var out []*nestedlist.List
	for l := op.GetNext(); l != nil; l = op.GetNext() {
		out = append(out, l)
		// Root-level results are the only emissions charged against the
		// output budget (intermediate operators emit freely).
		if err := p.gov.Output(1); err != nil {
			return nil, gov.WithStats(err, p.stats)
		}
	}
	if err := p.Err(); err != nil {
		return nil, gov.WithStats(err, p.stats)
	}
	return out, nil
}

// Err surfaces any deferred stream error from the plan's operators or
// its governor.
func (p *Plan) Err() error {
	for _, f := range p.errChecks {
		if err := f(); err != nil {
			return err
		}
	}
	return p.gov.Err()
}

// Operator builds the root operator of the plan, along with a fresh
// per-operator statistics tree (StatsTree) mirroring its shape.
func (p *Plan) Operator() (join.Operator, error) {
	var op join.Operator
	var st *obs.OpStats
	var err error
	switch p.Strategy {
	case Twig:
		op, st, err = p.buildTwig()
	case Vectorized:
		op, st, err = p.buildVectorized()
	default:
		op, st, err = p.buildNoKPlan()
	}
	// Install the stats tree even when the build aborts (a governed
	// violation mid-TwigStack): the abort error carries it as the
	// partial EXPLAIN ANALYZE.
	if st != nil {
		p.stats = st
	}
	if err != nil {
		return nil, err
	}
	if p.opts.Analyze {
		st.EnableTiming()
	}
	return op, nil
}

// StatsTree returns the root of the per-operator statistics tree built
// by the most recent Operator call (nil before the first build). Each
// node pairs the cost model's estimates with the counters the operators
// accumulate while running.
func (p *Plan) StatsTree() *obs.OpStats { return p.stats }

// ExplainTree renders the annotated operator tree: the chosen strategy,
// per-operator cost estimates, and — with analyze — the actual counters
// and wall time recorded during execution.
func (p *Plan) ExplainTree(analyze bool) string {
	var sb strings.Builder
	sb.WriteString("plan strategy: " + p.Strategy.String() + "\n")
	sb.WriteString(p.stats.Render(analyze))
	return sb.String()
}
