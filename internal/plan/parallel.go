package plan

import (
	"blossomtree/internal/core"
	"blossomtree/internal/join"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/nok"
	"blossomtree/internal/obs"
)

// preScanParallel materializes every NoK base scan the operator tree
// will pull, draining them concurrently across at most workers
// goroutines (workers < 0 means GOMAXPROCS). Base scans over distinct
// NoKs are independent subproblems — each owns its matcher and iterator
// and only reads the immutable document and tag index — so they are the
// natural intra-query fan-out points. The joins above them stay serial:
// they are pipelined and cheap relative to the scans they consume.
//
// baseScan consults preScanned first, so the subsequent operator build
// replays the materialized lists instead of re-scanning.
func (p *Plan) preScanParallel(workers int) error {
	if p.Strategy == Twig || p.Strategy == Navigational || p.Strategy == Vectorized {
		return nil
	}
	targets := p.scanTargets()
	if len(targets) == 0 {
		return nil
	}
	// Operator construction stays serial: baseScan appends Explain
	// notes, which must not race.
	ops := make([]join.Operator, len(targets))
	stats := make([]*obs.OpStats, len(targets))
	for i, n := range targets {
		m, err := nok.NewMatcher(n, p.Query.Return)
		if err != nil {
			return err
		}
		ops[i], stats[i] = p.baseScan(m)
	}
	results := join.DrainAll(ops, workers)
	// A governance violation during the fan-out (cancellation, budget,
	// injected fault) ended the affected scans early; surface it before
	// the operator tree replays truncated lists.
	if err := p.Err(); err != nil {
		return err
	}
	p.preScanned = make(map[*core.NoK][]*nestedlist.List, len(targets))
	p.preScanScanned = make(map[*core.NoK]int64, len(targets))
	for i, n := range targets {
		p.preScanned[n] = results[i]
		// The pre-scan's stats nodes are discarded (the final tree is
		// built afterwards); carry their node-visit counts over so the
		// replayed scans report what they actually cost.
		p.preScanScanned[n] = stats[i].Scanned()
	}
	p.note("pre-scanned %d NoKs in parallel (%d workers requested)", len(targets), workers)
	return nil
}

// scanTargets lists the NoKs whose base scans the operator tree will
// drain in full. Children of cut //-edges are excluded under BoundedNL,
// whose inner scans are region-bounded per outer match rather than full
// document scans (pre-scanning them would waste the bound).
func (p *Plan) scanTargets() []*core.NoK {
	innerViaBaseScan := p.Strategy == Pipelined || p.Strategy == NaiveNL
	nonScanChild := make(map[*core.NoK]bool)
	for _, l := range p.Decomp.Links {
		if !l.IsScan() {
			nonScanChild[l.Child] = true
		}
	}
	var out []*core.NoK
	for _, n := range p.Decomp.NoKs {
		if trivialNoK(n) {
			continue
		}
		if nonScanChild[n] && !innerViaBaseScan {
			continue
		}
		out = append(out, n)
	}
	return out
}
