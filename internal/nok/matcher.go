// Package nok implements the navigational NoK pattern-matching operator
// of §4.1 (Algorithm 2): matching a next-of-kin pattern tree — child and
// following-sibling axes only, mandatory ("f") and optional ("l") edges,
// multiple returning nodes — against XML subtrees, producing NestedList
// instances whose per-slot match lists are built in document order
// (Theorem 1: projection is order-preserving).
//
// The matcher runs in four access-method forms, which is what the plan
// layer trades off:
//
//   - a whole-document sequential scan (Scan / Iterator);
//   - a subtree-bounded scan (SubtreeIterator), the inner side of the
//     bounded nested-loop join of §4.3;
//   - an index-driven scan over a tag's inverted list (IndexIterator);
//   - merged multi-NoK scans sharing one traversal (MultiScan), the
//     "combining multiple NoK pattern matching operators into one scan"
//     optimization of §2.1.
package nok

import (
	"fmt"

	"blossomtree/internal/core"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/xmltree"
)

// Matcher matches one NoK pattern tree of a decomposed BlossomTree.
type Matcher struct {
	NoK   *core.NoK
	Shape *core.ReturnTree

	// spinePath is the chain of shape nodes strictly between the shape
	// root and the NoK's top returning vertex: the placeholder spine
	// every emitted instance carries.
	spinePath []*core.ReturnNode
	// sinkShape is the shape node instances attach under (parent of the
	// NoK's top returning node, or the shape root for doc-root NoKs).
	sinkShape *core.ReturnNode
	// forSlots are the for-bound returning slots inside this NoK, in
	// shape order, used to unnest grouped matches into per-iteration
	// instances.
	forSlots []int
}

// NewMatcher prepares a matcher for one NoK of the decomposition.
func NewMatcher(nok *core.NoK, shape *core.ReturnTree) (*Matcher, error) {
	m := &Matcher{NoK: nok, Shape: shape}
	root := nok.Root
	if root.Returning {
		sn, ok := shape.ByVertex(root)
		if !ok {
			return nil, fmt.Errorf("nok: root %s is returning but absent from the returning tree", root.Label())
		}
		for p := sn.Parent; p != nil && p.Parent != nil; p = p.Parent {
			m.spinePath = append([]*core.ReturnNode{p}, m.spinePath...)
		}
		m.sinkShape = sn.Parent
	} else {
		m.sinkShape = shape.Root
	}
	for _, v := range nok.ReturningVertices() {
		if v.ForBound && v != root {
			if sn, ok := shape.ByVertex(v); ok {
				m.forSlots = append(m.forSlots, sn.Slot)
			}
		}
	}
	return m, nil
}

// RootTest returns the NoK root's tag test ("*" for wildcard roots, "~"
// for document-root NoKs), which the plan layer uses to pick an access
// method.
func (m *Matcher) RootTest() string { return m.NoK.Root.Test }

// MatchAt attempts to match the NoK pattern tree anchored at x,
// returning the NestedList instance or nil if x does not match. The
// instance fills exactly the returning slots of this NoK; shape regions
// belonging to other NoKs stay placeholders (Example 4).
func (m *Matcher) MatchAt(x *xmltree.Node) *nestedlist.List {
	l := nestedlist.NewInstance(m.Shape)
	// Build the placeholder spine down to the attachment point.
	sink := l.Root
	for _, sn := range m.spinePath {
		ph := nestedlist.NewItem(nil, len(sn.Children))
		sink.Groups[sn.ChildOrdinal()] = []*nestedlist.Item{ph}
		sink = ph
	}
	if !m.match(m.NoK.Root, x, sink, m.sinkShape) {
		return nil
	}
	for _, v := range m.NoK.ReturningVertices() {
		if sn, ok := m.Shape.ByVertex(v); ok {
			l.SetFilled(sn.Slot)
		}
	}
	return l
}

// match implements the recursive core of Algorithm 2: x has already been
// chosen as the candidate for v; the function checks v's constraints,
// recursively matches v's local children against x's children (and v's
// following-sibling pattern children against x's following siblings),
// honors mandatory/optional edge modes, and appends matched items to
// sink in document order. Partial results of failed subtrees are
// discarded, mirroring lines 21–23 of the paper's pseudo-code.
func (m *Matcher) match(v *core.Vertex, x *xmltree.Node, sink *nestedlist.Item, sinkShape *core.ReturnNode) bool {
	if !v.MatchesNode(x) {
		return false
	}
	childSink := sink
	childShape := sinkShape
	var it *nestedlist.Item
	var sn *core.ReturnNode
	if v.Returning {
		var ok bool
		sn, ok = m.Shape.ByVertex(v)
		if !ok {
			return false
		}
		it = nestedlist.NewItem(x, len(sn.Children))
		childSink, childShape = it, sn
	} else {
		// Accumulate into a temporary so a failed sibling subtree cannot
		// leave partial matches behind.
		it = nestedlist.NewItem(nil, len(sinkShape.Children))
		childSink = it
	}

	for _, c := range m.NoK.LocalChildren(v) {
		var matched bool
		switch c.ParentRel {
		case core.RelChild:
			matched = m.matchAgainst(c, x.FirstChild, childSink, childShape)
		case core.RelFollowingSibling:
			matched = m.matchAgainst(c, x.NextSibling, childSink, childShape)
		default:
			return false // cut edges never appear inside a NoK
		}
		if !matched && c.ParentMode == core.Mandatory {
			return false
		}
	}

	if v.Returning {
		ord := sn.ChildOrdinal()
		sink.Groups[ord] = append(sink.Groups[ord], it)
	} else {
		for i, g := range it.Groups {
			sink.Groups[i] = append(sink.Groups[i], g...)
		}
	}
	return true
}

// matchAgainst runs pattern child c over the sibling chain starting at
// first (children of the parent match for child edges, following
// siblings for following-sibling edges). Positional constraints count
// 1-based among the chain's elements that pass c's tag test.
func (m *Matcher) matchAgainst(c *core.Vertex, first *xmltree.Node, sink *nestedlist.Item, sinkShape *core.ReturnNode) bool {
	pos, hasPos := c.PositionConstraint()
	matched := false
	tagIdx := 0
	for y := first; y != nil; y = y.NextSibling {
		if y.Kind != xmltree.ElementNode || !c.MatchesTag(y.Tag) {
			continue
		}
		tagIdx++
		if hasPos && tagIdx != pos {
			continue
		}
		if m.match(c, y, sink, sinkShape) {
			matched = true
		}
	}
	return matched
}

// Expand unnests the for-bound slots of one instance into per-iteration
// instances (Example 4: one NestedList per book match). Instances with
// no for-bound slots below the root pass through unchanged.
func (m *Matcher) Expand(l *nestedlist.List) []*nestedlist.List {
	out := []*nestedlist.List{l}
	for _, slot := range m.forSlots {
		var next []*nestedlist.List
		for _, inst := range out {
			next = append(next, nestedlist.Unnest(inst, slot)...)
		}
		out = next
	}
	return out
}
