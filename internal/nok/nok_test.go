package nok

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"blossomtree/internal/core"
	"blossomtree/internal/flwor"
	"blossomtree/internal/naveval"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

const bib = `<bib>
  <book><title>Maximum Security</title><price>39</price></book>
  <book><title>The Art of Computer Programming</title>
    <author><last>Knuth</last><first>Donald</first></author><price>120</price></book>
  <book><title>Terrorist Hunter</title><price>25</price></book>
  <book><title>TeX Book</title>
    <author><last>Knuth</last><first>Donald</first></author><price>30</price></book>
</bib>`

func parse(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// singleNoKMatcher compiles a path query and returns the matcher of its
// single non-root NoK (the query must decompose into root + one NoK).
func singleNoKMatcher(t *testing.T, q string) (*core.Query, *Matcher) {
	t.Helper()
	cq, err := core.FromPath(xpath.MustParse(q))
	if err != nil {
		t.Fatalf("FromPath(%s): %v", q, err)
	}
	d, err := core.Decompose(cq.Tree)
	if err != nil {
		t.Fatal(err)
	}
	var target *core.NoK
	for _, n := range d.NoKs {
		if !n.Root.IsDocRoot() {
			if target != nil {
				t.Fatalf("query %s has more than one non-root NoK:\n%s", q, d)
			}
			target = n
		} else if n.Size() > 1 {
			target = n
		}
	}
	if target == nil {
		t.Fatalf("no NoK for %s", q)
	}
	m, err := NewMatcher(target, cq.Return)
	if err != nil {
		t.Fatal(err)
	}
	return cq, m
}

// scanProject runs a sequential scan and projects the "result" variable
// across all instances.
func scanProject(t *testing.T, cq *core.Query, m *Matcher, doc *xmltree.Document) []*xmltree.Node {
	t.Helper()
	rn, ok := cq.Return.ByVar("result")
	if !ok {
		t.Fatal("no result slot")
	}
	var out []*xmltree.Node
	seen := map[*xmltree.Node]bool{}
	for _, l := range Scan(m, doc) {
		for _, n := range l.ProjectSlot(rn.Slot) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// checkAgainstNaveval compares the NoK evaluation of a single-NoK path
// query with the navigational oracle.
func checkAgainstNaveval(t *testing.T, doc *xmltree.Document, q string) {
	t.Helper()
	cq, m := singleNoKMatcher(t, q)
	got := scanProject(t, cq, m, doc)
	want, err := naveval.EvalPath(doc, xpath.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: NoK found %d nodes, oracle %d", q, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs: %v vs %v", q, i, got[i], want[i])
		}
	}
}

func TestMatchSimpleChains(t *testing.T) {
	doc := parse(t, bib)
	queries := []string{
		`//book`,
		`//book/title`,
		`//book[author]/title`,
		`//book[author/last="Knuth"]/title`,
		`//book[price<35]/title`,
		`//book[author][price<35]`,
		`//author/last`,
		`//book/author/first`,
		`//missing`,
		`//book[price="39"]`,
		`/bib/book/title`,
		`/bib/*/price`,
	}
	for _, q := range queries {
		t.Run(q, func(t *testing.T) { checkAgainstNaveval(t, doc, q) })
	}
}

func TestMatchFollowingSibling(t *testing.T) {
	doc := parse(t, `<r><a/><b/><a/><c/><b/></r>`)
	checkAgainstNaveval(t, doc, `//a/following-sibling::b`)
}

func TestMatchDocRootNoK(t *testing.T) {
	doc := parse(t, bib)
	checkAgainstNaveval(t, doc, `/bib/book/author`)
}

func TestOptionalEdgesKeepEmptyGroups(t *testing.T) {
	doc := parse(t, bib)
	q, err := core.FromFLWOR(flwor.MustParse(
		`for $b in doc("d")//book let $a := $b/author return $b`))
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Decompose(q.Tree)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatcher(d.NoKs[1], q.Return)
	if err != nil {
		t.Fatal(err)
	}
	ls := Scan(m, doc)
	if len(ls) != 4 {
		t.Fatalf("instances = %d, want 4 (every book, authors optional)", len(ls))
	}
	aSlot, _ := q.Return.ByVar("a")
	counts := []int{0, 1, 0, 1}
	for i, l := range ls {
		if got := len(l.ProjectSlot(aSlot.Slot)); got != counts[i] {
			t.Errorf("instance %d: authors = %d, want %d", i, got, counts[i])
		}
	}
}

func TestMandatoryEdgeFiltersAnchors(t *testing.T) {
	doc := parse(t, bib)
	q, err := core.FromFLWOR(flwor.MustParse(
		`for $b in doc("d")//book where exists($b/author) return $b`))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := core.Decompose(q.Tree)
	m, err := NewMatcher(d.NoKs[1], q.Return)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Scan(m, doc)); got != 2 {
		t.Errorf("instances = %d, want 2 (books with authors)", got)
	}
}

func TestExpandForBound(t *testing.T) {
	doc := parse(t, `<r><b><t>1</t><t>2</t></b><b><t>3</t></b></r>`)
	// //b/t: instance per b anchor, then expanded per t (for-bound result).
	cq, m := singleNoKMatcher(t, `//b/t`)
	ls := Scan(m, doc)
	if len(ls) != 3 {
		t.Fatalf("instances = %d, want 3 (t matches enumerate)", len(ls))
	}
	rn, _ := cq.Return.ByVar("result")
	for _, l := range ls {
		if len(l.ProjectSlot(rn.Slot)) != 1 {
			t.Error("expanded instance must hold exactly one result node")
		}
	}
}

func TestSubtreeIterator(t *testing.T) {
	doc := parse(t, `<r><x><a><b/></a></x><y><a><b/></a><a/></y></r>`)
	cq, m := singleNoKMatcher(t, `//a[b]`)
	root := doc.DocumentElement()
	y := xmltree.Children(root, "y")[0]
	it := NewSubtreeIterator(m, y)
	var got []*xmltree.Node
	rn, _ := cq.Return.ByVar("result")
	for l := it.GetNext(); l != nil; l = it.GetNext() {
		got = append(got, l.ProjectSlot(rn.Slot)...)
	}
	if len(got) != 1 {
		t.Fatalf("bounded scan found %d, want 1 (only the a under y)", len(got))
	}
	if !y.IsAncestorOf(got[0]) {
		t.Error("bounded scan escaped its subtree")
	}
	if it.ScannedNodes >= doc.NodeCount() {
		t.Errorf("bounded scan visited %d nodes of %d", it.ScannedNodes, doc.NodeCount())
	}
}

func TestIndexIterator(t *testing.T) {
	doc := parse(t, bib)
	cq, m := singleNoKMatcher(t, `//book[author]/title`)
	var books []*xmltree.Node
	xmltree.Elements(doc.Root, func(n *xmltree.Node) {
		if n.Tag == "book" {
			books = append(books, n)
		}
	})
	it := NewIndexIterator(m, books)
	var got []*xmltree.Node
	rn, _ := cq.Return.ByVar("result")
	for l := it.GetNext(); l != nil; l = it.GetNext() {
		got = append(got, l.ProjectSlot(rn.Slot)...)
	}
	want, _ := naveval.EvalPath(doc, xpath.MustParse(`//book[author]/title`))
	if len(got) != len(want) {
		t.Fatalf("index scan = %d, oracle = %d", len(got), len(want))
	}
	if it.ScannedNodes != len(books) {
		t.Errorf("index scan visited %d anchors, want %d", it.ScannedNodes, len(books))
	}
}

func TestMultiScanMatchesIndividualScans(t *testing.T) {
	doc := parse(t, bib)
	cq1, m1 := singleNoKMatcher(t, `//book[author]`)
	cq2, m2 := singleNoKMatcher(t, `//title`)
	_ = cq1
	_ = cq2
	merged := MultiScan([]*Matcher{m1, m2}, doc)
	if len(merged) != 2 {
		t.Fatal("MultiScan shape wrong")
	}
	if got, want := len(merged[0]), len(Scan(m1, doc)); got != want {
		t.Errorf("NoK1 via MultiScan = %d, solo = %d", got, want)
	}
	if got, want := len(merged[1]), len(Scan(m2, doc)); got != want {
		t.Errorf("NoK2 via MultiScan = %d, solo = %d", got, want)
	}
}

func TestMultiScanDocRootNoK(t *testing.T) {
	doc := parse(t, bib)
	_, m := singleNoKMatcher(t, `/bib/book`)
	merged := MultiScan([]*Matcher{m}, doc)
	if len(merged[0]) != 4 {
		t.Errorf("doc-root NoK via MultiScan = %d instances, want 4", len(merged[0]))
	}
}

func TestRootTest(t *testing.T) {
	_, m := singleNoKMatcher(t, `//book/title`)
	if m.RootTest() != "book" {
		t.Errorf("RootTest = %q", m.RootTest())
	}
}

func TestRecursiveDocumentGrouping(t *testing.T) {
	// Recursive document: a's nested within a's; each anchor produces its
	// own instance, with matches grouped under the right anchor.
	doc := parse(t, `<r><a><b/><a><b/><b/></a></a></r>`)
	cq, m := singleNoKMatcher(t, `//a/b`)
	ls := Scan(m, doc)
	// Anchors: outer a (1 b child), inner a (2 b children); expansion per
	// for-bound b → 3 instances.
	if len(ls) != 3 {
		t.Fatalf("instances = %d, want 3", len(ls))
	}
	got := scanProject(t, cq, m, doc)
	want, _ := naveval.EvalPath(doc, xpath.MustParse(`//a/b`))
	if len(got) != len(want) {
		t.Errorf("recursive doc: got %d, want %d", len(got), len(want))
	}
}

// TestQuickNoKEqualsOracle cross-checks the NoK matcher against the
// navigational oracle on random documents × random single-NoK queries.
func TestQuickNoKEqualsOracle(t *testing.T) {
	tags := []string{"a", "b", "c", "d"}
	genQuery := func(r *rand.Rand) string {
		// Random local-axis-only path: //t0[p?]/t1[p?]/…
		depth := 1 + r.Intn(3)
		q := "//" + tags[r.Intn(len(tags))]
		for i := 0; i < depth; i++ {
			if r.Intn(3) == 0 {
				q += fmt.Sprintf("[%s]", tags[r.Intn(len(tags))])
			}
			if r.Intn(2) == 0 {
				q += "/" + tags[r.Intn(len(tags))]
			}
		}
		return q
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{Tags: tags, MaxNodes: 60, MaxDepth: 7})
		q := genQuery(r)
		cq, err := core.FromPath(xpath.MustParse(q))
		if err != nil {
			t.Logf("FromPath(%s): %v", q, err)
			return false
		}
		d, err := core.Decompose(cq.Tree)
		if err != nil || len(d.NoKs) != 2 {
			return true // not single-NoK; skip
		}
		m, err := NewMatcher(d.NoKs[1], cq.Return)
		if err != nil {
			t.Logf("NewMatcher: %v", err)
			return false
		}
		rn, _ := cq.Return.ByVar("result")
		var got []*xmltree.Node
		seen := map[*xmltree.Node]bool{}
		for _, l := range Scan(m, doc) {
			for _, n := range l.ProjectSlot(rn.Slot) {
				if !seen[n] {
					seen[n] = true
					got = append(got, n)
				}
			}
		}
		want, err := naveval.EvalPath(doc, xpath.MustParse(q))
		if err != nil {
			t.Logf("oracle: %v", err)
			return false
		}
		if len(got) != len(want) {
			t.Logf("query %s: NoK %d vs oracle %d\ndoc: %s", q, len(got), len(want),
				xmltree.Serialize(doc.Root, xmltree.WriteOptions{}))
			return false
		}
		// On recursive documents instance concatenation is not document-
		// ordered (the Theorem 2 caveat), so compare as sets there and as
		// ordered sequences otherwise.
		if xmltree.ComputeStats(doc).Recursive {
			wantSet := map[*xmltree.Node]bool{}
			for _, n := range want {
				wantSet[n] = true
			}
			for _, n := range got {
				if !wantSet[n] {
					t.Logf("query %s: spurious node %v", q, n)
					return false
				}
			}
			return true
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("query %s: order mismatch at %d", q, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickTheorem1 verifies Theorem 1: for every slot of every instance
// produced by a sequential scan, the projection is in document order —
// and so is the concatenation across the instance sequence for each
// anchor group.
func TestQuickTheorem1(t *testing.T) {
	tags := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{Tags: tags, MaxNodes: 50, MaxDepth: 8})
		queries := []string{`//a/b`, `//a[b]/c`, `//b/a[c]`, `//a/b/c`}
		q := queries[r.Intn(len(queries))]
		cq, err := core.FromPath(xpath.MustParse(q))
		if err != nil {
			return false
		}
		d, err := core.Decompose(cq.Tree)
		if err != nil {
			return false
		}
		m, err := NewMatcher(d.NoKs[1], cq.Return)
		if err != nil {
			return false
		}
		for _, l := range Scan(m, doc) {
			for slot := 1; slot < len(cq.Return.Nodes); slot++ {
				ns := l.ProjectSlot(slot)
				for i := 1; i < len(ns); i++ {
					if !ns[i-1].Before(ns[i]) {
						t.Logf("slot %d of %s not in document order", slot, q)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEmptyDocumentScan(t *testing.T) {
	doc := parse(t, `<only/>`)
	_, m := singleNoKMatcher(t, `//book/title`)
	if got := Scan(m, doc); len(got) != 0 {
		t.Errorf("scan of non-matching doc = %d instances", len(got))
	}
}

func TestNestedListShapeOfInstance(t *testing.T) {
	// Instances of one NoK of a multi-NoK query carry placeholder spines.
	doc := parse(t, `<r><a><b/></a></r>`)
	cq, err := core.FromPath(xpath.MustParse(`//a//b`))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := core.Decompose(cq.Tree)
	// NoKs: {~}, {a}, {b} — match the b NoK alone.
	mb, err := NewMatcher(d.NoKs[2], cq.Return)
	if err != nil {
		t.Fatal(err)
	}
	ls := Scan(mb, doc)
	if len(ls) != 1 {
		t.Fatalf("instances = %d", len(ls))
	}
	l := ls[0]
	aSlot := cq.Return.Nodes[1].Slot
	bSlot := cq.Return.Nodes[2].Slot
	if l.IsFilled(aSlot) || !l.IsFilled(bSlot) {
		t.Errorf("filled = a:%v b:%v, want a placeholder, b filled", l.IsFilled(aSlot), l.IsFilled(bSlot))
	}
	if got := len(l.ProjectSlot(bSlot)); got != 1 {
		t.Errorf("π(b) = %d", got)
	}
	if got := len(l.ProjectSlot(aSlot)); got != 0 {
		t.Errorf("π(a) = %d, want 0 (placeholder)", got)
	}
	var mergeTarget *nestedlist.List
	_ = mergeTarget
}

func TestPositionConstraintInsideNoK(t *testing.T) {
	doc := parse(t, `<r><b><t>1</t><t>2</t><x/><t>3</t></b><b><t>4</t></b></r>`)
	// title[2] within the NoK: position counts among tag-matching
	// siblings.
	checkAgainstNaveval(t, doc, `//b/t[2]`)
}

func TestMultipleForBoundSlotsExpand(t *testing.T) {
	doc := parse(t, `<r><a><b/><b/></a><a><b/></a></r>`)
	q, err := core.FromFLWOR(flwor.MustParse(
		`for $x in doc("d")/r/a, $y in $x/b return $y`))
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Decompose(q.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.NoKs) != 1 {
		t.Fatalf("expected a single doc-root NoK, got %d", len(d.NoKs))
	}
	m, err := NewMatcher(d.NoKs[0], q.Return)
	if err != nil {
		t.Fatal(err)
	}
	ls := Scan(m, doc)
	// One anchor (document node), expanded per a (for) × per b (for):
	// 2 + 1 = 3 iterations.
	if len(ls) != 3 {
		t.Fatalf("instances = %d, want 3", len(ls))
	}
	xSlot, _ := q.Return.ByVar("x")
	ySlot, _ := q.Return.ByVar("y")
	for _, l := range ls {
		if len(l.ProjectSlot(xSlot.Slot)) != 1 || len(l.ProjectSlot(ySlot.Slot)) != 1 {
			t.Error("for-bound slots must be singletons after expansion")
		}
	}
}

func TestFollowingSiblingInsideNoK(t *testing.T) {
	doc := parse(t, `<r><a/><b><c/></b><a/><b/><x/><b><c/></b></r>`)
	checkAgainstNaveval(t, doc, `//a/following-sibling::b[c]`)
}
