package nok

import (
	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/nestedlist"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// Iterator is the pull form of the NoK operator: each GetNext returns
// one NestedList instance, in document order of the anchor matches. It
// is the building block of the pipelined //-join (§4.2), which composes
// GetNext calls merge-join style.
type Iterator struct {
	m *Matcher

	// Exactly one anchor source is active.
	cur   *xmltree.Node // preorder cursor (sequential / subtree scans)
	stop  *xmltree.Node // subtree bound; nil for whole-document scans
	nodes []*xmltree.Node
	pos   int
	byIdx bool

	queue []*nestedlist.List // expanded instances pending delivery
	// ScannedNodes counts anchor candidates inspected, the I/O proxy the
	// experiments report.
	ScannedNodes int
	// Stats, when non-nil, mirrors ScannedNodes and counts pattern-match
	// attempts (MatchAt calls) as comparisons for EXPLAIN ANALYZE.
	Stats *obs.OpStats
	// Stop, when non-nil, is polled periodically; returning true ends
	// the stream early (deadline enforcement for DNF experiment cells).
	Stop func() bool
	// Gov, when non-nil, charges every anchor scan against the query's
	// node budget and polls cancellation/faults; a violation sets Err
	// and ends the stream.
	Gov *gov.Governor
	// Err records the governance violation that ended the stream early;
	// the plan layer surfaces it after draining.
	Err error
}

// NewIterator returns a whole-document sequential-scan iterator: every
// node in document order is tried as an anchor (the paper's "sequential
// scan of the XML tree against the blossom tree").
func NewIterator(m *Matcher, doc *xmltree.Document) *Iterator {
	if m.NoK.Root.IsDocRoot() {
		return &Iterator{m: m, byIdx: true, nodes: []*xmltree.Node{doc.Root}}
	}
	return &Iterator{m: m, cur: doc.DocumentElement()}
}

// NewSubtreeIterator bounds the scan to the subtree rooted at top
// (excluding top itself): the inner side of the bounded nested-loop join,
// which scans only the outer match's (p₁, p₂) region.
func NewSubtreeIterator(m *Matcher, top *xmltree.Node) *Iterator {
	return &Iterator{m: m, cur: top.FirstChild, stop: top}
}

// NewIndexIterator anchors only at the given candidate nodes, which must
// be in document order (typically a tag index inverted list).
func NewIndexIterator(m *Matcher, nodes []*xmltree.Node) *Iterator {
	return &Iterator{m: m, byIdx: true, nodes: nodes}
}

// GetNext returns the next instance, or nil when exhausted.
func (it *Iterator) GetNext() *nestedlist.List {
	if it.Err != nil {
		return nil
	}
	for {
		if len(it.queue) > 0 {
			l := it.queue[0]
			it.queue = it.queue[1:]
			if err := it.Gov.Emitted(fault.SiteNoKEmit); err != nil {
				it.Err = err
				return nil
			}
			return l
		}
		x := it.nextAnchor()
		if x == nil {
			return nil
		}
		it.ScannedNodes++
		it.Stats.AddScanned(1)
		if err := it.Gov.Scanned(fault.SiteNoKScan, 1); err != nil {
			it.Err = err
			return nil
		}
		if it.Stop != nil && it.ScannedNodes%1024 == 0 && it.Stop() {
			return nil
		}
		if x.Kind == xmltree.ElementNode && !it.m.NoK.Root.MatchesTag(x.Tag) && !it.m.NoK.Root.IsDocRoot() {
			continue
		}
		it.Stats.AddComparisons(1)
		if l := it.m.MatchAt(x); l != nil {
			it.queue = it.m.Expand(l)
		}
	}
}

func (it *Iterator) nextAnchor() *xmltree.Node {
	if it.byIdx {
		if it.pos >= len(it.nodes) {
			return nil
		}
		n := it.nodes[it.pos]
		it.pos++
		return n
	}
	n := it.cur
	if n != nil {
		it.cur = xmltree.NextPreorder(n, it.stop)
	}
	return n
}

// Drain collects all remaining instances.
func (it *Iterator) Drain() []*nestedlist.List {
	var out []*nestedlist.List
	for l := it.GetNext(); l != nil; l = it.GetNext() {
		out = append(out, l)
	}
	return out
}

// Scan runs a full sequential scan and returns all instances.
func Scan(m *Matcher, doc *xmltree.Document) []*nestedlist.List {
	return NewIterator(m, doc).Drain()
}

// MultiScan evaluates several NoK operators over the same document in a
// single shared traversal (the merged-NoK optimization of §4.2: "when a
// new XML tree node arrives, it is matched to both sets of frontier
// nodes"), returning each matcher's instance sequence. The traversal
// visits every node once; per-matcher match attempts are made at each
// node, so total I/O is one scan regardless of the number of NoKs.
func MultiScan(ms []*Matcher, doc *xmltree.Document) [][]*nestedlist.List {
	out := make([][]*nestedlist.List, len(ms))
	for i, m := range ms {
		if m.NoK.Root.IsDocRoot() {
			if l := m.MatchAt(doc.Root); l != nil {
				out[i] = append(out[i], m.Expand(l)...)
			}
		}
	}
	for n := doc.DocumentElement(); n != nil; n = xmltree.NextPreorder(n, nil) {
		if n.Kind != xmltree.ElementNode {
			continue
		}
		for i, m := range ms {
			if m.NoK.Root.IsDocRoot() || !m.NoK.Root.MatchesTag(n.Tag) {
				continue
			}
			if l := m.MatchAt(n); l != nil {
				out[i] = append(out[i], m.Expand(l)...)
			}
		}
	}
	return out
}
