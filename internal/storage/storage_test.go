package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
)

func parse(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	doc := parse(t, `<bib><book year="1994"><title>Maximum &amp; Security</title></book><book/><note>x<b/>y</note></bib>`)
	seg := Encode(doc)
	if seg.Nodes() != doc.NodeCount() {
		t.Errorf("Nodes = %d, want %d", seg.Nodes(), doc.NodeCount())
	}
	back, err := seg.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.DeepEqual(doc.DocumentElement(), back.DocumentElement()) {
		t.Errorf("round trip differs:\n%s\nvs\n%s",
			xmltree.Serialize(doc.Root, xmltree.WriteOptions{}),
			xmltree.Serialize(back.Root, xmltree.WriteOptions{}))
	}
	// Region labels on the decoded tree are consistent.
	prev := -1
	xmltree.Walk(back.DocumentElement(), func(n *xmltree.Node) bool {
		if n.Start <= prev || n.End < n.Start {
			t.Error("decoded labels inconsistent")
		}
		prev = n.Start
		return true
	})
}

func TestScanEvents(t *testing.T) {
	doc := parse(t, `<a x="1"><b>t</b></a>`)
	seg := Encode(doc)
	var got []EventKind
	var tags []string
	err := seg.Scan(func(ev Event) bool {
		got = append(got, ev.Kind)
		if ev.Kind == EventOpen {
			tags = append(tags, ev.Tag)
			if ev.Tag == "a" {
				if len(ev.Attrs) != 1 || ev.Attrs[0].Name != "x" || ev.Attrs[0].Value != "1" {
					t.Errorf("attrs = %v", ev.Attrs)
				}
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []EventKind{EventOpen, EventOpen, EventText, EventClose, EventClose}
	if len(got) != len(want) {
		t.Fatalf("events = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
	if tags[0] != "a" || tags[1] != "b" {
		t.Errorf("tags = %v", tags)
	}
}

func TestScanEarlyStop(t *testing.T) {
	doc := parse(t, `<a><b/><c/><d/></a>`)
	seg := Encode(doc)
	count := 0
	if err := seg.Scan(func(Event) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("visited %d events after early stop", count)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	doc := xmlgen.MustGenerate("d3", xmlgen.Config{Seed: 3, TargetNodes: 800})
	seg := Encode(doc)
	data, err := seg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Segment
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Nodes() != seg.Nodes() {
		t.Errorf("nodes = %d, want %d", back.Nodes(), seg.Nodes())
	}
	d2, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.DeepEqual(doc.DocumentElement(), d2.DocumentElement()) {
		t.Error("marshal round trip differs")
	}
	if back.Stats() == "" {
		t.Error("empty stats")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var s Segment
	bad := [][]byte{
		nil,
		[]byte("nope"),
		[]byte("BTSG1\n"),                       // truncated after magic
		[]byte("BTSG1\n\x05\x02\x03ab"),         // truncated tag
		[]byte("BTSG1\n\x01\x00\xff\xff"),       // truncated code length
		append([]byte("BTSG1\n\x01\x00"), 0xff), // bad varint
	}
	for i, data := range bad {
		if err := s.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: UnmarshalBinary accepted corrupt data", i)
		}
	}
}

func TestScanCorruption(t *testing.T) {
	seg := &Segment{code: []byte{0x07}}
	if err := seg.Scan(func(Event) bool { return true }); err == nil {
		t.Error("unknown opcode accepted")
	}
	seg = &Segment{code: []byte{opClose}}
	if err := seg.Scan(func(Event) bool { return true }); err == nil {
		t.Error("unbalanced close accepted")
	}
	seg = &Segment{code: []byte{opOpen, 0x00, 0x00}, tags: []string{"a"}}
	if err := seg.Scan(func(Event) bool { return true }); err == nil {
		t.Error("unclosed element accepted")
	}
	seg = &Segment{code: []byte{opOpen, 0x09, 0x00}, tags: []string{"a"}}
	if err := seg.Scan(func(Event) bool { return true }); err == nil {
		t.Error("out-of-range tag id accepted")
	}
	seg = &Segment{code: []byte{opText, 0x7f}, tags: nil}
	if err := seg.Scan(func(Event) bool { return true }); err == nil {
		t.Error("truncated text accepted")
	}
}

func TestCompressionOnDatasets(t *testing.T) {
	for _, id := range []string{"d1", "d2", "d3", "d4", "d5"} {
		doc := xmlgen.MustGenerate(id, xmlgen.Config{Seed: 5, TargetNodes: 3000})
		seg := Encode(doc)
		ratio := CompressionRatio(doc, seg)
		if ratio < 1.3 {
			t.Errorf("%s: compression ratio %.2f, want > 1.3 (succinct claim)", id, ratio)
		}
	}
	empty := &Segment{}
	doc := parse(t, `<a/>`)
	if CompressionRatio(doc, empty) != 0 {
		t.Error("empty segment ratio should be 0")
	}
}

// TestQuickStorageRoundTrip: random documents encode/decode losslessly
// and Scan produces balanced event streams.
func TestQuickStorageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{MaxNodes: 70, MaxDepth: 9})
		seg := Encode(doc)
		back, err := seg.Decode()
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if !xmltree.DeepEqual(doc.DocumentElement(), back.DocumentElement()) {
			return false
		}
		depth := 0
		ok := true
		seg.Scan(func(ev Event) bool {
			switch ev.Kind {
			case EventOpen:
				depth++
			case EventClose:
				depth--
				if depth < 0 {
					ok = false
				}
			}
			return true
		})
		return ok && depth == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
