// Package storage implements a succinct physical storage scheme for XML
// documents, after the substrate the hybrid approach builds on (Zhang,
// Kacholia, Özsu, "A Succinct Physical Storage Scheme for Efficient
// Evaluation of Path Queries in XML", ICDE 2004 — the paper's reference
// [22]): the document's topology is stored as a compact preorder
// bytecode (open/text/close operations with varint-coded tag ids over a
// deduplicated tag table), which supports exactly the access pattern the
// NoK pattern-matching operator needs — a single sequential scan
// replaying the tree in document order — while being several times
// smaller than the serialized XML.
//
// The segment can be scanned without materializing the tree (Scan), or
// decoded back into a fully labeled xmltree.Document (Decode). Segments
// marshal to a self-contained binary format.
//
// The decoder trusts nothing: every varint-coded length and id is
// bounds-checked against the remaining input in uint64 space before any
// allocation or slice, so corrupt or adversarial segments (including the
// persistent segment-store files that arrive via mmap) fail with an
// error wrapping ErrCorrupt instead of over-allocating or panicking.
// FuzzSegmentRoundTrip exercises exactly this contract.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"blossomtree/internal/xmltree"
)

// ErrCorrupt is wrapped by every decode error: the input is not a valid
// segment (bad magic, truncated varint, out-of-range id, or a length
// that exceeds the remaining input). Callers branch with errors.Is to
// distinguish corruption from I/O failures.
var ErrCorrupt = errors.New("corrupt segment")

// corruptf builds a decode error wrapping ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("storage: "+format+": %w", append(args, ErrCorrupt)...)
}

// Opcodes of the topology bytecode.
const (
	opOpen  = 0x01 // varint tagID, varint attrCount, attrCount × (varint nameID, varint len, bytes)
	opText  = 0x02 // varint len, bytes
	opClose = 0x03
)

// Segment is one encoded document.
type Segment struct {
	tags  []string // deduplicated tag and attribute names
	code  []byte   // preorder topology bytecode
	nodes int      // element + text count
}

// Encode serializes a document into a segment.
func Encode(doc *xmltree.Document) *Segment {
	s := &Segment{}
	ids := map[string]int{}
	intern := func(t string) int {
		if id, ok := ids[t]; ok {
			return id
		}
		id := len(s.tags)
		ids[t] = id
		s.tags = append(s.tags, t)
		return id
	}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		switch n.Kind {
		case xmltree.ElementNode:
			s.nodes++
			s.code = append(s.code, opOpen)
			s.code = binary.AppendUvarint(s.code, uint64(intern(n.Tag)))
			s.code = binary.AppendUvarint(s.code, uint64(len(n.Attrs)))
			for _, a := range n.Attrs {
				s.code = binary.AppendUvarint(s.code, uint64(intern(a.Name)))
				s.code = binary.AppendUvarint(s.code, uint64(len(a.Value)))
				s.code = append(s.code, a.Value...)
			}
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				walk(c)
			}
			s.code = append(s.code, opClose)
		case xmltree.TextNode:
			s.nodes++
			s.code = append(s.code, opText)
			s.code = binary.AppendUvarint(s.code, uint64(len(n.Text)))
			s.code = append(s.code, n.Text...)
		}
	}
	if doc.Root != nil {
		for c := doc.Root.FirstChild; c != nil; c = c.NextSibling {
			walk(c)
		}
	}
	return s
}

// Size returns the encoded byte size (bytecode plus tag table).
func (s *Segment) Size() int {
	n := len(s.code)
	for _, t := range s.tags {
		n += len(t) + 2
	}
	return n
}

// Nodes returns the number of element and text nodes in the segment.
func (s *Segment) Nodes() int { return s.nodes }

// Tags returns the deduplicated tag/attribute-name table. The returned
// slice is shared; callers must not modify it.
func (s *Segment) Tags() []string { return s.tags }

// EventKind discriminates scan events.
type EventKind uint8

// Scan event kinds: the SAX-style callbacks the navigational operator
// consumes.
const (
	EventOpen EventKind = iota
	EventText
	EventClose
)

// Event is one step of a sequential segment scan.
type Event struct {
	Kind  EventKind
	Tag   string         // for EventOpen
	Attrs []xmltree.Attr // for EventOpen
	Text  string         // for EventText
}

// Scan replays the document in document order without building a tree:
// the single-scan access method of the NoK operator. The visitor returns
// false to stop early. Scan reports any corruption it encounters (the
// error wraps ErrCorrupt).
func (s *Segment) Scan(visit func(Event) bool) error {
	pos := 0
	depth := 0
	// remaining returns the bytes left after pos; every length read from
	// the bytecode is validated against it in uint64 space before it is
	// converted to int, so a huge varint can neither wrap negative nor
	// drive an over-allocation.
	for pos < len(s.code) {
		op := s.code[pos]
		pos++
		switch op {
		case opOpen:
			tagID, n := binary.Uvarint(s.code[pos:])
			if n <= 0 || tagID >= uint64(len(s.tags)) {
				return corruptf("bad tag id at %d", pos)
			}
			pos += n
			nattrs, n := binary.Uvarint(s.code[pos:])
			// Each attribute costs at least two bytes (name id + value
			// length), so an attr count past the remaining bytes is corrupt
			// regardless of what follows.
			if n <= 0 || nattrs > uint64(len(s.code)-pos) {
				return corruptf("bad attr count at %d", pos)
			}
			pos += n
			var attrs []xmltree.Attr
			for i := uint64(0); i < nattrs; i++ {
				nameID, n := binary.Uvarint(s.code[pos:])
				if n <= 0 || nameID >= uint64(len(s.tags)) {
					return corruptf("bad attr name at %d", pos)
				}
				pos += n
				vlen, n := binary.Uvarint(s.code[pos:])
				if n <= 0 || vlen > uint64(len(s.code)-pos-n) {
					return corruptf("bad attr value at %d", pos)
				}
				pos += n
				attrs = append(attrs, xmltree.Attr{Name: s.tags[nameID], Value: string(s.code[pos : pos+int(vlen)])})
				pos += int(vlen)
			}
			depth++
			if !visit(Event{Kind: EventOpen, Tag: s.tags[tagID], Attrs: attrs}) {
				return nil
			}
		case opText:
			tlen, n := binary.Uvarint(s.code[pos:])
			if n <= 0 || tlen > uint64(len(s.code)-pos-n) {
				return corruptf("bad text at %d", pos)
			}
			pos += n
			if !visit(Event{Kind: EventText, Text: string(s.code[pos : pos+int(tlen)])}) {
				return nil
			}
			pos += int(tlen)
		case opClose:
			if depth == 0 {
				return corruptf("unbalanced close at %d", pos-1)
			}
			depth--
			if !visit(Event{Kind: EventClose}) {
				return nil
			}
		default:
			return corruptf("unknown opcode %#x at %d", op, pos-1)
		}
	}
	if depth != 0 {
		return corruptf("%d unclosed element(s)", depth)
	}
	return nil
}

// Decode rebuilds a fully labeled document from the segment.
func (s *Segment) Decode() (*xmltree.Document, error) {
	b := xmltree.NewBuilder()
	err := s.Scan(func(ev Event) bool {
		switch ev.Kind {
		case EventOpen:
			b.StartAttrs(ev.Tag, ev.Attrs)
		case EventText:
			b.Text(ev.Text)
		case EventClose:
			b.End()
		}
		return b.Err() == nil
	})
	if err != nil {
		return nil, err
	}
	doc, err := b.Done()
	if err != nil {
		// A scan the bytecode validator accepted but the tree builder
		// rejects (e.g. text outside any element) is still a corrupt
		// segment: Encode never produces such shapes.
		return nil, corruptf("decode: %v", err)
	}
	doc.Bytes = int64(s.Size())
	return doc, nil
}

// magic identifies marshaled segments.
var magic = []byte("BTSG1\n")

// MarshalBinary serializes the segment.
func (s *Segment) MarshalBinary() ([]byte, error) {
	var out []byte
	out = append(out, magic...)
	out = binary.AppendUvarint(out, uint64(s.nodes))
	out = binary.AppendUvarint(out, uint64(len(s.tags)))
	for _, t := range s.tags {
		out = binary.AppendUvarint(out, uint64(len(t)))
		out = append(out, t...)
	}
	out = binary.AppendUvarint(out, uint64(len(s.code)))
	out = append(out, s.code...)
	return out, nil
}

// UnmarshalBinary parses a marshaled segment, copying the bytecode out
// of data so the segment stays valid after the caller reuses the buffer.
// Decode errors wrap ErrCorrupt.
func (s *Segment) UnmarshalBinary(data []byte) error {
	if err := s.view(data); err != nil {
		return err
	}
	s.code = append([]byte(nil), s.code...)
	return nil
}

// View parses a marshaled segment without copying: the returned
// segment's bytecode aliases data, so data must stay valid (and
// unmodified) for the segment's lifetime. This is the segment store's
// mmap read path — the topology bytecode is scanned straight out of the
// mapped file. Decode errors wrap ErrCorrupt.
func View(data []byte) (*Segment, error) {
	s := &Segment{}
	if err := s.view(data); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Segment) view(data []byte) error {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return corruptf("bad magic")
	}
	pos := len(magic)
	read := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, corruptf("truncated varint at %d", pos)
		}
		pos += n
		return v, nil
	}
	nodes, err := read()
	if err != nil {
		return err
	}
	ntags, err := read()
	if err != nil {
		return err
	}
	// Every tag costs at least one byte (its length varint) and every
	// node at least one bytecode byte, so counts past the remaining input
	// are corrupt. Checking before the make() caps allocation at the
	// input's own size.
	if ntags > uint64(len(data)-pos) {
		return corruptf("tag count %d exceeds input", ntags)
	}
	if nodes > uint64(len(data)-pos) {
		return corruptf("node count %d exceeds input", nodes)
	}
	tags := make([]string, 0, ntags)
	for i := uint64(0); i < ntags; i++ {
		l, err := read()
		if err != nil {
			return err
		}
		if l > uint64(len(data)-pos) {
			return corruptf("truncated tag at %d", pos)
		}
		tags = append(tags, string(data[pos:pos+int(l)]))
		pos += int(l)
	}
	clen, err := read()
	if err != nil {
		return err
	}
	if clen > uint64(len(data)-pos) {
		return corruptf("truncated code at %d", pos)
	}
	s.nodes = int(nodes)
	s.tags = tags
	s.code = data[pos : pos+int(clen) : pos+int(clen)]
	return nil
}

// Stats summarizes a segment for diagnostics.
func (s *Segment) Stats() string {
	return fmt.Sprintf("segment: %d nodes, %d tags, %s encoded",
		s.nodes, len(s.tags), xmltree.FormatBytes(int64(s.Size())))
}

// CompressionRatio compares the segment against the document's
// serialized XML size.
func CompressionRatio(doc *xmltree.Document, s *Segment) float64 {
	xml := xmltree.Serialize(doc.Root, xmltree.WriteOptions{})
	if s.Size() == 0 {
		return 0
	}
	return float64(len(xml)) / float64(s.Size())
}
