package storage

import (
	"bytes"
	"errors"
	"testing"

	"blossomtree/internal/xmltree"
)

// FuzzSegmentRoundTrip is the decoder-hardening contract as a fuzz
// target: arbitrary bytes fed to UnmarshalBinary must either be rejected
// with an error wrapping ErrCorrupt or produce a segment whose Decode
// (if it succeeds) re-encodes and re-decodes to the identical document.
// No input may panic or drive an allocation past the input's own size —
// the varint-coded counts and lengths are attacker-controlled and the
// segment store hands this decoder mmap'd file contents.
func FuzzSegmentRoundTrip(f *testing.F) {
	seedDocs := []string{
		`<a/>`,
		`<bib><book year="1994"><title>TCP/IP</title><price>65.95</price></book></bib>`,
		`<r><p id="1">x<q/>y</p><p id="2"><q><q>deep</q></q></p></r>`,
		`<mixed a="&lt;" b="">text &amp; more<child xmlns="ignored">t</child></mixed>`,
	}
	for _, src := range seedDocs {
		doc, err := xmltree.ParseString(src)
		if err != nil {
			f.Fatal(err)
		}
		data, err := Encode(doc).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// A truncated valid segment exercises every "exceeds input" path.
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte("BTSG1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Segment
		if err := s.UnmarshalBinary(data); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// View must agree with the copying decoder on accepted inputs.
		v, err := View(data)
		if err != nil {
			t.Fatalf("UnmarshalBinary accepted but View rejected: %v", err)
		}
		if !bytes.Equal(v.code, s.code) || len(v.tags) != len(s.tags) {
			t.Fatal("View and UnmarshalBinary disagree")
		}
		doc, err := s.Decode()
		if err != nil {
			// Structurally invalid bytecode (bad opcode, unbalanced close)
			// inside a well-framed segment: must be typed corruption.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted input: the decoded document must round-trip losslessly
		// through a fresh encode/decode cycle.
		re, err := Encode(doc).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var s2 Segment
		if err := s2.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-encoded segment rejected: %v", err)
		}
		doc2, err := s2.Decode()
		if err != nil {
			t.Fatalf("re-encoded segment failed to decode: %v", err)
		}
		a := xmltree.Serialize(doc.Root, xmltree.WriteOptions{})
		b := xmltree.Serialize(doc2.Root, xmltree.WriteOptions{})
		if a != b {
			t.Fatalf("round trip differs:\n%s\nvs\n%s", a, b)
		}
	})
}

// TestUnmarshalCorrupt pins the hardening paths the fuzzer explores:
// every malformed shape is rejected with ErrCorrupt instead of a panic
// or an over-allocation.
func TestUnmarshalCorrupt(t *testing.T) {
	doc, err := xmltree.ParseString(`<a x="1"><b>t</b><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := Encode(doc).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("NOTSEG\n\x00"),
		"magic only": []byte("BTSG1\n"),
		// Huge varint tag count: must be rejected before allocation.
		"huge tag count": append(append([]byte{}, "BTSG1\n\x02"...),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
		"truncated half": valid[:len(valid)/2],
		"truncated tail": valid[:len(valid)-1],
	}
	for name, data := range cases {
		var s Segment
		if err := s.UnmarshalBinary(data); err == nil {
			// Truncations can still frame correctly if they cut on a
			// boundary; then Decode must catch the damage.
			if _, derr := s.Decode(); derr == nil {
				t.Errorf("%s: accepted and decoded", name)
			} else if !errors.Is(derr, ErrCorrupt) {
				t.Errorf("%s: Decode error not ErrCorrupt: %v", name, derr)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error not ErrCorrupt: %v", name, err)
		}
	}

	// Out-of-range ids inside otherwise framed bytecode.
	s := &Segment{tags: []string{"a"}, nodes: 1}
	s.code = []byte{opOpen, 0x7f, 0x00} // tag id 127 with a 1-entry table
	if err := s.Scan(func(Event) bool { return true }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad tag id: %v", err)
	}
	s.code = []byte{opOpen, 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f} // huge attr count
	if err := s.Scan(func(Event) bool { return true }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge attr count: %v", err)
	}
	s.code = []byte{opClose}
	if err := s.Scan(func(Event) bool { return true }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unbalanced close: %v", err)
	}
	s.code = []byte{opText, 0xff, 0x01, 'x'} // text length past input
	if err := s.Scan(func(Event) bool { return true }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("text overrun: %v", err)
	}
}
