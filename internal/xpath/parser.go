package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a complete path expression, e.g.
//
//	doc("bib.xml")//book[author/last="Knuth"]/title
//	//a[//b][//c]//e
//	$book1/title
//	/a/b//[c/d//e]
//
// The grammar is the paper's fragment: child and descendant axes, name
// tests and wildcards, predicate lists with nested relative paths, value
// comparisons, position predicates, and `following-sibling::` (the second
// local axis NoK trees admit).
func Parse(src string) (*Path, error) {
	l := NewLexer(src)
	p, err := ParseFrom(l)
	if err != nil {
		return nil, err
	}
	if l.Tok().Kind != TokEOF {
		return nil, fmt.Errorf("xpath: trailing input %q at offset %d", l.Tok().Text, l.Tok().Pos)
	}
	return p, nil
}

// MustParse is Parse for known-good expressions (tests, examples).
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseFrom parses a path starting at the lexer's current token, leaving
// the lexer positioned after the path. It is the entry point the FLWOR
// parser uses for embedded paths.
func ParseFrom(l *Lexer) (*Path, error) {
	p := parsePath(l)
	if l.Err() != nil {
		return nil, fmt.Errorf("xpath: %w", l.Err())
	}
	return p, nil
}

func parsePath(l *Lexer) *Path {
	p := &Path{}
	switch tok := l.Tok(); tok.Kind {
	case TokName:
		if tok.Text == "doc" {
			// doc("uri") prefix
			save := tok
			l.Advance()
			if l.Tok().Kind == TokLParen {
				l.Advance()
				if l.Tok().Kind != TokString {
					l.Errorf("expected string literal in doc()")
					return p
				}
				p.Source = Source{Kind: SourceDoc, Doc: l.Tok().Text}
				l.Advance()
				if !expect(l, TokRParen) {
					return p
				}
				parseSteps(l, p, true)
				return p
			}
			l.Push(save)
		}
		// Relative path.
		p.Source = Source{Kind: SourceContext}
		parseRelativeSteps(l, p)
	case TokVar:
		p.Source = Source{Kind: SourceVar, Var: tok.Text}
		l.Advance()
		parseSteps(l, p, true)
	case TokSlash, TokDSlash:
		p.Source = Source{Kind: SourceRoot}
		parseSteps(l, p, true)
	case TokDot, TokDotDot, TokStar, TokAt, TokAxis:
		p.Source = Source{Kind: SourceContext}
		parseRelativeSteps(l, p)
	default:
		l.Errorf("expected path expression, got %s", tok.Kind)
	}
	return p
}

// parseSteps parses zero or more (/step | //step) continuations.
// requireLeading is true after a source prefix (doc(), $var, absolute
// root), where every step must be introduced by / or //.
func parseSteps(l *Lexer, p *Path, requireLeading bool) {
	_ = requireLeading
	for {
		var axis Axis
		switch l.Tok().Kind {
		case TokSlash:
			axis = Child
		case TokDSlash:
			axis = Descendant
		default:
			return
		}
		l.Advance()
		st, ok := parseStep(l, axis)
		if !ok {
			return
		}
		p.Steps = append(p.Steps, st)
	}
}

// parseRelativeSteps parses a relative path: first step has implicit
// child axis (or is "."), then continuations.
func parseRelativeSteps(l *Lexer, p *Path) {
	st, ok := parseStep(l, Child)
	if !ok {
		return
	}
	p.Steps = append(p.Steps, st)
	parseSteps(l, p, false)
}

// parseStep parses a single step after its axis separator has been
// consumed. The default axis may be overridden by an explicit axis::
// prefix or @ shorthand. A bare predicate list (e.g. the paper's
// "//[c/d//e]") is a wildcard test.
func parseStep(l *Lexer, axis Axis) (Step, bool) {
	st := Step{Axis: axis}
	switch tok := l.Tok(); tok.Kind {
	case TokAxis:
		ax, ok := AxisByName(tok.Text)
		if !ok {
			l.Errorf("unsupported axis %q (supported axes: %s)", tok.Text, SupportedAxes())
			return st, false
		}
		st.Axis = ax
		l.Advance()
		return parseNodeTest(l, st)
	case TokDotDot:
		st.Axis = Parent
		st.Test = "*"
		l.Advance()
		parsePredicates(l, &st)
		return st, l.Err() == nil
	case TokAt:
		st.Axis = Attribute
		l.Advance()
		return parseNodeTest(l, st)
	case TokDot:
		st.Axis = Self
		st.Test = "*"
		l.Advance()
		parsePredicates(l, &st)
		return st, l.Err() == nil
	case TokLBracket:
		// "//[pred]" — wildcard test with predicates.
		st.Test = "*"
		parsePredicates(l, &st)
		return st, l.Err() == nil
	default:
		return parseNodeTest(l, st)
	}
}

func parseNodeTest(l *Lexer, st Step) (Step, bool) {
	switch tok := l.Tok(); tok.Kind {
	case TokName:
		if tok.Text == "text" {
			// text() kind test: selects text nodes. Only meaningful on the
			// downward axes; a text node has no attributes, siblings are
			// not part of the fragment, and self would need a text context.
			save := tok
			l.Advance()
			if l.Tok().Kind == TokLParen {
				l.Advance()
				if !expect(l, TokRParen) {
					return st, false
				}
				if st.Axis != Child && st.Axis != Descendant {
					l.Errorf("text() is only supported on the child and descendant axes")
					return st, false
				}
				if l.Tok().Kind == TokLBracket {
					l.Errorf("predicates on text() are outside the fragment")
					return st, false
				}
				st.Test = "text()"
				st.TextTest = true
				return st, l.Err() == nil
			}
			l.Push(save)
		}
		st.Test = tok.Text
	case TokStar:
		st.Test = "*"
	default:
		l.Errorf("expected node test, got %s", tok.Kind)
		return st, false
	}
	l.Advance()
	parsePredicates(l, &st)
	return st, l.Err() == nil
}

func parsePredicates(l *Lexer, st *Step) {
	for l.Tok().Kind == TokLBracket {
		l.Advance()
		e := parseOr(l)
		if !expect(l, TokRBracket) {
			return
		}
		st.Preds = append(st.Preds, e)
	}
}

// parseOr heads every expression recursion cycle (nested predicates
// recurse through parseOperand's relative paths, parentheses through
// parseUnary), so it alone carries the MaxDepth guard.
func parseOr(l *Lexer) Expr {
	if !l.Enter() {
		return Exists{Path: &Path{}}
	}
	defer l.Leave()
	e := parseAnd(l)
	for l.Tok().Kind == TokName && l.Tok().Text == "or" {
		l.Advance()
		e = Or{L: e, R: parseAnd(l)}
	}
	return e
}

func parseAnd(l *Lexer) Expr {
	e := parseUnary(l)
	for l.Tok().Kind == TokName && l.Tok().Text == "and" {
		l.Advance()
		e = And{L: e, R: parseUnary(l)}
	}
	return e
}

func parseUnary(l *Lexer) Expr {
	if tok := l.Tok(); tok.Kind == TokName && tok.Text == "not" {
		save := tok
		l.Advance()
		if l.Tok().Kind == TokLParen {
			l.Advance()
			inner := parseOr(l)
			expect(l, TokRParen)
			return Not{E: inner}
		}
		l.Push(save)
	}
	if tok := l.Tok(); tok.Kind == TokLParen {
		l.Advance()
		inner := parseOr(l)
		expect(l, TokRParen)
		return inner
	}
	return parseComparison(l)
}

func parseComparison(l *Lexer) Expr {
	// Positional shorthand [2].
	if tok := l.Tok(); tok.Kind == TokNumber {
		n, err := strconv.Atoi(tok.Text)
		if err != nil || n < 1 {
			l.Errorf("positional predicate must be a positive integer, got %q", tok.Text)
			return Position{N: 1}
		}
		l.Advance()
		return Position{N: n}
	}
	left, isPosition := parseOperand(l)
	op, isCmp := cmpOp(l.Tok().Kind)
	if !isCmp {
		if isPosition {
			l.Errorf("position() requires a comparison")
			return Position{N: 1}
		}
		if left.Kind == OperandFunc {
			// Bare function call in boolean position: its effective
			// boolean value is the predicate.
			return left.Fn
		}
		if left.Kind != OperandPath {
			l.Errorf("literal predicate must be part of a comparison")
			return Exists{Path: left.Path}
		}
		return Exists{Path: left.Path}
	}
	l.Advance()
	right, rightPos := parseOperand(l)
	if rightPos {
		l.Errorf("position() must appear on the left of a comparison")
	}
	if isPosition {
		if op != OpEq || right.Kind != OperandNumber {
			l.Errorf("only position() = N is supported")
			return Position{N: 1}
		}
		return Position{N: int(right.Num)}
	}
	return Compare{Left: left, Op: op, Right: right}
}

func cmpOp(k TokKind) (CmpOp, bool) {
	switch k {
	case TokEq:
		return OpEq, true
	case TokNeq:
		return OpNeq, true
	case TokLt:
		return OpLt, true
	case TokLe:
		return OpLe, true
	case TokGt:
		return OpGt, true
	case TokGe:
		return OpGe, true
	}
	return 0, false
}

// parseOperand parses one comparison operand; the bool result reports
// whether it was the position() function.
func parseOperand(l *Lexer) (Operand, bool) {
	switch tok := l.Tok(); tok.Kind {
	case TokString:
		l.Advance()
		return Operand{Kind: OperandString, Str: tok.Text}, false
	case TokNumber:
		n, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			l.Errorf("bad number %q", tok.Text)
		}
		l.Advance()
		return Operand{Kind: OperandNumber, Num: n}, false
	case TokName:
		if tok.Text == "position" {
			save := tok
			l.Advance()
			if l.Tok().Kind == TokLParen {
				l.Advance()
				expect(l, TokRParen)
				return Operand{Kind: OperandPath}, true
			}
			l.Push(save)
		}
		if fn := TryParseFuncCall(l); fn != nil {
			return Operand{Kind: OperandFunc, Fn: fn}, false
		}
	}
	// Relative path operand (includes "." and "@attr").
	p := &Path{Source: Source{Kind: SourceContext}}
	switch l.Tok().Kind {
	case TokDot, TokDotDot, TokName, TokStar, TokAt, TokAxis, TokSlash, TokDSlash:
		if l.Tok().Kind == TokSlash || l.Tok().Kind == TokDSlash {
			parseSteps(l, p, true)
		} else {
			parseRelativeSteps(l, p)
		}
	default:
		l.Errorf("expected operand, got %s", l.Tok().Kind)
	}
	return Operand{Kind: OperandPath, Path: p}, false
}

// TryParseFuncCall parses a core library function call when the current
// token names one and an argument list follows; otherwise it restores
// the lexer and returns nil. The FLWOR parser shares it for function
// operands in where-conditions.
func TryParseFuncCall(l *Lexer) *FuncCall {
	tok := l.Tok()
	if tok.Kind != TokName || !IsCoreFunction(tok.Text) {
		return nil
	}
	save := tok
	l.Advance()
	if l.Tok().Kind != TokLParen {
		l.Push(save)
		return nil
	}
	l.Advance()
	f := &FuncCall{Name: save.Text}
	// Nested calls recurse through parseOperand; bound the cycle here.
	if !l.Enter() {
		return f
	}
	defer l.Leave()
	if l.Tok().Kind != TokRParen {
		for {
			var arg Operand
			if l.Tok().Kind == TokVar {
				// Variable paths are valid arguments in where-condition
				// context even though bare predicate operands stay
				// relative-only.
				arg = Operand{Kind: OperandPath, Path: parsePath(l)}
			} else {
				var isPos bool
				arg, isPos = parseOperand(l)
				if isPos {
					l.Errorf("position() cannot be a function argument")
					return f
				}
			}
			f.Args = append(f.Args, arg)
			if l.Tok().Kind != TokComma {
				break
			}
			l.Advance()
		}
	}
	if !expect(l, TokRParen) {
		return f
	}
	ok := false
	for _, n := range funcArities[f.Name] {
		if n == len(f.Args) {
			ok = true
		}
	}
	if !ok {
		counts := make([]string, len(funcArities[f.Name]))
		for i, n := range funcArities[f.Name] {
			counts[i] = strconv.Itoa(n)
		}
		l.Errorf("%s() takes %s argument(s), got %d", f.Name, strings.Join(counts, " or "), len(f.Args))
	}
	return f
}

func expect(l *Lexer, k TokKind) bool {
	if l.Tok().Kind != k {
		l.Errorf("expected %s, got %s", k, l.Tok().Kind)
		return false
	}
	l.Advance()
	return true
}
