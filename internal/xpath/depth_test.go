package xpath

import (
	"strings"
	"testing"
)

// TestParseDepthBounded feeds the parser inputs whose recursion depth
// grows linearly with input length. Each must be rejected with the
// nesting-bound error — not by running out of goroutine stack.
func TestParseDepthBounded(t *testing.T) {
	n := 4 * MaxDepth
	cases := []struct {
		name string
		src  string
	}{
		{"nested predicates", strings.Repeat("//a[", n)},
		{"open parens", "//a[" + strings.Repeat("(", n)},
		{"not chains", "//a[" + strings.Repeat("not(", n)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("deeply nested input parsed without error")
			}
			if !strings.Contains(err.Error(), "nesting") {
				t.Fatalf("expected the nesting-bound error, got: %v", err)
			}
		})
	}
}

// TestParseDeepButLegal checks that well-formed nesting below the bound
// still parses: the guard must reject attacks, not real queries.
func TestParseDeepButLegal(t *testing.T) {
	d := MaxDepth / 2
	cases := []struct {
		name string
		src  string
	}{
		{"parens", "//a[" + strings.Repeat("(", d) + "b" + strings.Repeat(")", d) + "]"},
		{"predicates", strings.Repeat("//a[", d) + "b" + strings.Repeat("]", d)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err != nil {
				t.Fatalf("legal nesting at depth %d rejected: %v", d, err)
			}
		})
	}
}
