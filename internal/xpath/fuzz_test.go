package xpath

import (
	"strings"
	"testing"
)

// FuzzXPathParse asserts two properties over arbitrary input: the parser
// never panics, and any path it accepts round-trips through the printer
// — parse → String → parse yields a path that prints identically, so
// the printed form is a fixpoint of the grammar.
func FuzzXPathParse(f *testing.F) {
	for _, seed := range []string{
		"//a",
		"//a//b/c",
		"/a/b[c]/@id",
		`doc("bib.xml")//book[author/last="Knuth"]/title`,
		"$x//b[2]",
		"//a[.//b and not(c)]",
		"//a[b/@n=1.5 or c]",
		"//a/following-sibling::b",
		"//a[price<49.99]",
		"//*[b]",
		".",
		"//a['it''s'!=\"x\"]",
		// Function calls in predicates.
		`//a[contains(b, "x")]`,
		`//a[starts-with(@id, "1")]`,
		`//a[count(b) >= 2]`,
		`//a[number(@n) < 3.5]`,
		`//a[string-join(b, "-") = "x-y"]`,
		`//book[name() = "book"]`,
		// Upward axes.
		"//a/b/..",
		"//b/parent::a/c",
		"//c/ancestor::a",
		"//c/ancestor::*[b]",
		// Positional predicates, mixed with other shapes.
		"//a[1]",
		"//a/b[2]/c",
		"//a[@id][3]",
	} {
		f.Add(seed)
	}
	// Depth-bound seeds: nesting past MaxDepth must be rejected, not
	// overflow the stack (see depth_test.go).
	f.Add(strings.Repeat("//a[", MaxDepth+8))
	f.Add("//a[" + strings.Repeat("(", MaxDepth+8))
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejected input only needs to not panic
		}
		printed := p.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse:\n  input  %q\n  printed %q\n  error  %v", src, printed, err)
		}
		if again := p2.String(); again != printed {
			t.Fatalf("printer is not a fixpoint:\n  input   %q\n  printed %q\n  reprint %q", src, printed, again)
		}
	})
}
