// Package xpath implements the path-expression subset of the paper: the
// lexer (shared with the FLWOR compiler), an AST, and a recursive-descent
// parser for location paths with child (/) and descendant-or-self (//)
// axes, name tests, wildcards, nested structural predicates, value
// comparisons, and positional predicates — the fragment the BlossomTree
// formalism and all Appendix-A benchmark queries are built from.
package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates token kinds. The lexer is shared by the FLWOR
// parser, so it knows about the few extra operators FLWOR needs (:=, <<,
// braces, comma).
type TokKind int

// Token kinds.
const (
	TokEOF      TokKind = iota
	TokName             // element names and keywords (for, let, where, …)
	TokVar              // $name
	TokString           // "…" or '…'
	TokNumber           // integer or decimal literal
	TokSlash            // /
	TokDSlash           // //
	TokLBracket         // [
	TokRBracket         // ]
	TokLParen           // (
	TokRParen           // )
	TokLBrace           // {
	TokRBrace           // }
	TokAt               // @
	TokStar             // *
	TokDot              // .
	TokDotDot           // .. (abbreviated parent axis)
	TokComma            // ,
	TokEq               // =
	TokNeq              // !=
	TokLt               // <
	TokLe               // <=
	TokGt               // >
	TokGe               // >=
	TokBefore           // <<
	TokAfter            // >>
	TokAssign           // :=
	TokAxis             // axis:: prefix (value holds the axis name)
)

// String names the kind for diagnostics.
func (k TokKind) String() string {
	names := map[TokKind]string{
		TokEOF: "EOF", TokName: "name", TokVar: "$var", TokString: "string",
		TokNumber: "number", TokSlash: "/", TokDSlash: "//", TokLBracket: "[",
		TokRBracket: "]", TokLParen: "(", TokRParen: ")", TokLBrace: "{",
		TokRBrace: "}", TokAt: "@", TokStar: "*", TokDot: ".", TokComma: ",",
		TokEq: "=", TokNeq: "!=", TokLt: "<", TokLe: "<=", TokGt: ">",
		TokGe: ">=", TokBefore: "<<", TokAfter: ">>", TokAssign: ":=",
		TokAxis: "axis::", TokDotDot: "..",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Token is a lexed token with its source position (byte offset).
type Token struct {
	Kind TokKind
	Text string // identifier text, string value, or number text
	Pos  int
}

// MaxDepth bounds the nesting depth the recursive-descent parsers
// accept (predicates, parenthesized expressions, element constructors,
// nested FLWORs). Adversarial inputs like "[[[[…" otherwise recurse
// once per character and overflow the goroutine stack; beyond the bound
// parsing fails with an ordinary error instead.
const MaxDepth = 512

// Lexer tokenizes a query string. It also carries the recursion-depth
// counter shared by the XPath and FLWOR parsers, since both parse from
// the same lexer (FLWOR embeds paths, paths embed predicates).
type Lexer struct {
	src   string
	pos   int
	tok   Token
	err   error
	next  *Token // one-token pushback
	depth int    // current recursive-production nesting, bounded by MaxDepth
}

// NewLexer returns a lexer positioned before the first token; call
// Advance to load it.
func NewLexer(src string) *Lexer {
	l := &Lexer{src: src}
	l.Advance()
	return l
}

// Tok returns the current token.
func (l *Lexer) Tok() Token { return l.tok }

// Err returns the first lexing error.
func (l *Lexer) Err() error { return l.err }

// Errorf records a parse error at the current token, keeping the first.
func (l *Lexer) Errorf(format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf("%s at offset %d", fmt.Sprintf(format, args...), l.tok.Pos)
	}
}

// Enter records entry into one level of a recursive production and
// reports whether parsing may continue. On overflow it records a parse
// error and jumps the lexer to EOF, so every enclosing production's
// loop terminates and the parsers unwind without further recursion.
func (l *Lexer) Enter() bool {
	l.depth++
	if l.depth > MaxDepth {
		l.fail(l.tok.Pos, "expression nesting deeper than %d levels", MaxDepth)
		return false
	}
	return true
}

// Leave exits a recursive production entered with Enter.
func (l *Lexer) Leave() { l.depth-- }

// Push pushes the current token back and makes prev current again; only a
// single token of lookahead is supported.
func (l *Lexer) Push(prev Token) {
	t := l.tok
	l.next = &t
	l.tok = prev
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Advance moves to the next token.
func (l *Lexer) Advance() {
	if l.next != nil {
		l.tok = *l.next
		l.next = nil
		return
	}
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		l.tok = Token{Kind: TokEOF, Pos: start}
		return
	}
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	emit := func(k TokKind, n int, text string) {
		l.tok = Token{Kind: k, Text: text, Pos: start}
		l.pos += n
	}
	switch {
	case two == "//":
		emit(TokDSlash, 2, "//")
	case two == "!=":
		emit(TokNeq, 2, "!=")
	case two == "<=":
		emit(TokLe, 2, "<=")
	case two == ">=":
		emit(TokGe, 2, ">=")
	case two == "<<":
		emit(TokBefore, 2, "<<")
	case two == ">>":
		emit(TokAfter, 2, ">>")
	case two == ":=":
		emit(TokAssign, 2, ":=")
	case two == "..":
		emit(TokDotDot, 2, "..")
	case c == '/':
		emit(TokSlash, 1, "/")
	case c == '[':
		emit(TokLBracket, 1, "[")
	case c == ']':
		emit(TokRBracket, 1, "]")
	case c == '(':
		emit(TokLParen, 1, "(")
	case c == ')':
		emit(TokRParen, 1, ")")
	case c == '{':
		emit(TokLBrace, 1, "{")
	case c == '}':
		emit(TokRBrace, 1, "}")
	case c == '@':
		emit(TokAt, 1, "@")
	case c == '*':
		emit(TokStar, 1, "*")
	case c == ',':
		emit(TokComma, 1, ",")
	case c == '=':
		emit(TokEq, 1, "=")
	case c == '<':
		emit(TokLt, 1, "<")
	case c == '>':
		emit(TokGt, 1, ">")
	case c == '.':
		// "." is the context-node test; ".5" style numbers are not in the
		// fragment, so a lone dot is always TokDot.
		emit(TokDot, 1, ".")
	case c == '"' || c == '\'':
		l.lexString(c)
	case c >= '0' && c <= '9':
		end := l.pos
		for end < len(l.src) && (l.src[end] >= '0' && l.src[end] <= '9' || l.src[end] == '.') {
			end++
		}
		emit(TokNumber, end-l.pos, l.src[l.pos:end])
	case c == '$':
		l.pos++
		if l.pos >= len(l.src) || !isNameStart(rune(l.src[l.pos])) {
			l.fail(start, "expected variable name after $")
			return
		}
		end := l.pos
		for end < len(l.src) && isNameChar(rune(l.src[end])) {
			end++
		}
		l.tok = Token{Kind: TokVar, Text: l.src[l.pos:end], Pos: start}
		l.pos = end
	case isNameStart(rune(c)):
		end := l.pos
		for end < len(l.src) && isNameChar(rune(l.src[end])) {
			end++
		}
		name := l.src[l.pos:end]
		// axis::name syntax
		if strings.HasPrefix(l.src[end:], "::") {
			l.tok = Token{Kind: TokAxis, Text: name, Pos: start}
			l.pos = end + 2
			return
		}
		emit(TokName, end-l.pos, name)
	default:
		l.fail(start, "unexpected character %q", c)
	}
}

func (l *Lexer) lexString(quote byte) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.tok = Token{Kind: TokString, Text: sb.String(), Pos: start}
			return
		}
		sb.WriteByte(c)
		l.pos++
	}
	l.fail(start, "unterminated string literal")
}

func (l *Lexer) fail(pos int, format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf("%s at offset %d", fmt.Sprintf(format, args...), pos)
	}
	l.tok = Token{Kind: TokEOF, Pos: pos}
	// Drop any pushed-back token: a pending Push could otherwise
	// resurrect a non-EOF token after the jump to end-of-input and keep
	// a parser loop alive.
	l.next = nil
	l.pos = len(l.src)
}
