package xpath

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimplePaths(t *testing.T) {
	cases := []struct {
		in   string
		want string // round-tripped String()
	}{
		{`/a/b/c`, `/a/b/c`},
		{`//a//b`, `//a//b`},
		{`/a//b/c`, `/a//b/c`},
		{`doc("bib.xml")//book`, `doc("bib.xml")//book`},
		{`$book1/title`, `$book1/title`},
		{`$x`, `$x`},
		{`a/b`, `a/b`},
		{`.`, `.`},
		{`*`, `*`},
		{`//a/*/b`, `//a/*/b`},
		{`/a/following-sibling::b`, `/a/following-sibling::b`},
		{`@id`, `@id`},
		{`a/@id`, `a/@id`},
		{`//a[//b][//c]//e`, `//a[//b][//c]//e`},
		{`//a[b/c]`, `//a[b/c]`},
		{`//book[2]`, `//book[2]`},
		{`//a[.="x"]`, `//a[.="x"]`},
		{`//a[b="x" and c="y"]`, `//a[b="x" and c="y"]`},
		{`//a[not(b)]`, `//a[not(b)]`},
		{`//a[b or c]`, `//a[b or c]`},
		{`//a[@id="7"]`, `//a[@id="7"]`},
		{`//a[price<10]`, `//a[price<10]`},
		{`//a[price>=10.5]`, `//a[price>=10.5]`},
	}
	for _, c := range cases {
		t.Run(c.in, func(t *testing.T) {
			p, err := Parse(c.in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", c.in, err)
			}
			if got := p.String(); got != c.want {
				t.Errorf("round trip: %q -> %q, want %q", c.in, got, c.want)
			}
		})
	}
}

func TestParseBareDescendantPredicate(t *testing.T) {
	// From §2.1 and Table 2: "/a/b//[c/d//e]" — a descendant step that is
	// all predicate, meaning descendant::*[c/d//e].
	p, err := Parse(`/a/b//[c/d//e]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("got %d steps", len(p.Steps))
	}
	last := p.Steps[2]
	if last.Axis != Descendant || last.Test != "*" || len(last.Preds) != 1 {
		t.Errorf("last step = %+v", last)
	}
	ex, ok := last.Preds[0].(Exists)
	if !ok {
		t.Fatalf("pred = %T", last.Preds[0])
	}
	if got := ex.Path.String(); got != "c/d//e" {
		t.Errorf("pred path = %q", got)
	}
}

func TestParseAppendixQueries(t *testing.T) {
	queries := []string{
		// Table 2 categories
		`/a/b//[c/d//e]`,
		`/a//b[//c/d]//e/f`,
		`//a//b//c`,
		`//a/b[//c][//d][//e]`,
		`//a//b`,
		`//a[//b][//c]//e`,
		// d1
		`//a//b4`,
		`//a[//b2][//b1]//b3`,
		`//a//c2/b1/c2/b1//c3`,
		`//a//c2//b1/c2[//c2[b1]]/b1//c3`,
		`//b1//c2//b1`,
		`//b1//c2[//c3]//b1`,
		// d2
		`//addresses//street_address//name_of_state`,
		`//addresses[//zip_code][//country_id]`,
		`//address[//name_of_state][//zip_code]//street_address`,
		`//address[//street_address][//zip_code][//name_of_city]`,
		// d3
		`//item/attributes//length`,
		`//item/title[//author/contact_information//street_address]`,
		`//publisher[//mailing_address]//street_address`,
		`//author[date_of_birth][//last_name]//street_address`,
		// d4
		`//VP//VP/NP//PP/PP`,
		`//VP[VP]//VP[PP]/NP[PP]/NN`,
		`//VP[//NP][//VB]//JJ`,
		// d5
		`//phdthesis[//author][//school]`,
		`//www[//editor][//title][//year]`,
		`//proceedings[//editor][//year][//url]`,
	}
	for _, q := range queries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`/`,
		`//`,
		`/a[`,
		`/a[]`,
		`/a]`,
		`/a[b=]`,
		`$`,
		`doc(`,
		`doc(bib)`,
		`doc("x"`,
		`/a[="x"]`,
		`/a["lit"]`,
		`/a[position()]`,
		`/a[position()>2]`,
		`/a[b=position()]`,
		`/a[0]`,
		`/a/preceding-sibling::b`,
		`/a/b extra`,
		`/a[not(]`,
		`/a b`,
		`"str"`,
		`/a[b="unterminated]`,
		`/a#b`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParsePositionForms(t *testing.T) {
	p := MustParse(`//book[position()=2]`)
	pos, ok := p.Steps[0].Preds[0].(Position)
	if !ok || pos.N != 2 {
		t.Errorf("pred = %#v", p.Steps[0].Preds[0])
	}
	p = MustParse(`//book[3]`)
	pos, ok = p.Steps[0].Preds[0].(Position)
	if !ok || pos.N != 3 {
		t.Errorf("pred = %#v", p.Steps[0].Preds[0])
	}
}

func TestParseNestedPredicates(t *testing.T) {
	p := MustParse(`//a//c2[//c2[b1]]/b1`)
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	c2 := p.Steps[1]
	ex, ok := c2.Preds[0].(Exists)
	if !ok {
		t.Fatalf("pred type %T", c2.Preds[0])
	}
	inner := ex.Path
	if len(inner.Steps) != 1 || inner.Steps[0].Axis != Descendant || inner.Steps[0].Test != "c2" {
		t.Errorf("inner = %+v", inner.Steps)
	}
	if len(inner.Steps[0].Preds) != 1 {
		t.Errorf("inner preds = %v", inner.Steps[0].Preds)
	}
}

func TestCmpOpEval(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r string
		want bool
	}{
		{OpEq, "abc", "abc", true},
		{OpEq, "10", "10.0", true}, // numeric comparison
		{OpNeq, "10", "10.0", false},
		{OpLt, "2", "10", true},   // numeric, not lexicographic
		{OpLt, "b", "a10", false}, // string comparison
		{OpLe, "2", "2", true},
		{OpGt, "3.5", "3", true},
		{OpGe, "z", "a", true},
		{OpNeq, "x", "y", true},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.l, c.r); got != c.want {
			t.Errorf("%q %s %q = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestAxisProperties(t *testing.T) {
	if Descendant.Local() {
		t.Error("// must be global")
	}
	for _, a := range []Axis{Child, Self, FollowingSibling, Attribute} {
		if !a.Local() {
			t.Errorf("%v should be local", a)
		}
	}
	if Child.String() != "/" || Descendant.String() != "//" {
		t.Error("axis String wrong")
	}
}

func TestStepMatches(t *testing.T) {
	s := Step{Test: "book"}
	if !s.Matches("book") || s.Matches("title") {
		t.Error("name test wrong")
	}
	w := Step{Test: "*"}
	if !w.Matches("anything") {
		t.Error("wildcard test wrong")
	}
}

func TestExprStrings(t *testing.T) {
	p := MustParse(`//a[not(b="x" or c!="y") and d]`)
	got := p.String()
	for _, want := range []string{"not(", " or ", " and ", `b="x"`, `c!="y"`} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func TestLexerPushback(t *testing.T) {
	l := NewLexer("a b")
	first := l.Tok()
	l.Advance()
	second := l.Tok()
	l.Push(first)
	if l.Tok().Text != "a" {
		t.Errorf("after Push, tok = %v", l.Tok())
	}
	l.Advance()
	if l.Tok() != second {
		t.Errorf("after re-Advance, tok = %v, want %v", l.Tok(), second)
	}
}

func TestLexerFLWORTokens(t *testing.T) {
	l := NewLexer(`for $x in doc("f") where $a << $b return { $x } , y := 1 >> .`)
	var kinds []TokKind
	for l.Tok().Kind != TokEOF {
		kinds = append(kinds, l.Tok().Kind)
		l.Advance()
	}
	if l.Err() != nil {
		t.Fatal(l.Err())
	}
	want := []TokKind{
		TokName, TokVar, TokName, TokName, TokLParen, TokString, TokRParen,
		TokName, TokVar, TokBefore, TokVar, TokName, TokLBrace, TokVar,
		TokRBrace, TokComma, TokName, TokAssign, TokNumber, TokAfter, TokDot,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestOperandString(t *testing.T) {
	p := MustParse(`//a[b="x"]`)
	cmp := p.Steps[0].Preds[0].(Compare)
	if cmp.Left.String() != "b" || cmp.Right.String() != `"x"` {
		t.Errorf("operands = %q, %q", cmp.Left.String(), cmp.Right.String())
	}
	p = MustParse(`//a[b=3]`)
	cmp = p.Steps[0].Preds[0].(Compare)
	if cmp.Right.String() != "3" {
		t.Errorf("number operand = %q", cmp.Right.String())
	}
}

// TestQuickParseStringIdempotent: reparsing a parsed path's String()
// yields the same String() — the printer and parser agree.
func TestQuickParseStringIdempotent(t *testing.T) {
	tags := []string{"a", "bb", "c1", "*"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		steps := 1 + r.Intn(4)
		for i := 0; i < steps; i++ {
			if r.Intn(2) == 0 {
				sb.WriteString("//")
			} else {
				sb.WriteString("/")
			}
			sb.WriteString(tags[r.Intn(len(tags))])
			if r.Intn(4) == 0 {
				sb.WriteString("[" + tags[r.Intn(3)] + "]")
			}
			if r.Intn(5) == 0 {
				sb.WriteString(`[.="v"]`)
			}
		}
		src := sb.String()
		p1, err := Parse(src)
		if err != nil {
			t.Logf("Parse(%q): %v", src, err)
			return false
		}
		s1 := p1.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Logf("reparse(%q): %v", s1, err)
			return false
		}
		return p2.String() == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
