package xpath

import (
	"strings"
	"testing"
)

// text() is the kind test selecting text nodes (satellite of the
// serialization work): parsed as a marked step, round-tripping through
// String, and rejected outside the supported child/descendant axes.

func TestParseTextTest(t *testing.T) {
	cases := []string{
		`//a/text()`,
		`/a/b/text()`,
		`a/text()`,
		`$x/b/text()`,
		`doc("bib.xml")//book/title/text()`,
		`//a//text()`,
	}
	for _, in := range cases {
		t.Run(in, func(t *testing.T) {
			p, err := Parse(in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", in, err)
			}
			last := p.Steps[len(p.Steps)-1]
			if !last.TextTest {
				t.Errorf("last step of %q not marked TextTest: %+v", in, last)
			}
			if last.Test != "text()" {
				t.Errorf("last step Test = %q, want \"text()\"", last.Test)
			}
			if got := p.String(); got != in {
				t.Errorf("round trip: %q -> %q", in, got)
			}
		})
	}
}

func TestParseTextTestErrors(t *testing.T) {
	bad := []struct {
		in, wantErr string
	}{
		{`//a/text()[1]`, "predicates on text()"},
		{`/a/following-sibling::text()`, "child and descendant axes"},
		{`//a/@text()`, ""}, // attribute axis: rejected, message unpinned
		{`//a/text(`, ""},   // unclosed parens
	}
	for _, c := range bad {
		t.Run(c.in, func(t *testing.T) {
			_, err := Parse(c.in)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", c.in)
			}
			if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Parse(%q) error = %q, want substring %q", c.in, err, c.wantErr)
			}
		})
	}
}

// TestParseTextElementName: "text" without parentheses stays an
// ordinary element name test.
func TestParseTextElementName(t *testing.T) {
	for _, in := range []string{`//text`, `/a/text/b`, `//text[c]`} {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		for _, st := range p.Steps {
			if st.TextTest {
				t.Errorf("Parse(%q): element name \"text\" parsed as kind test", in)
			}
		}
		if got := p.String(); got != in {
			t.Errorf("round trip: %q -> %q", in, got)
		}
	}
}
