package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Axis is the step axis. The fragment covers the axes the paper's
// formalism uses: child (/), descendant (//), self (.), attribute (@) and
// following-sibling (which NoK pattern trees admit as a local axis).
type Axis int

// Axes.
const (
	Child Axis = iota
	Descendant
	Self
	FollowingSibling
	Attribute
)

// Local reports whether the axis is local in the paper's sense (usable
// inside a NoK pattern tree without recursive matching). Descendant is
// the global axis along which BlossomTrees are cut into NoK trees.
func (a Axis) Local() bool { return a != Descendant }

// String renders the axis in abbreviated XPath syntax.
func (a Axis) String() string {
	switch a {
	case Child:
		return "/"
	case Descendant:
		return "//"
	case Self:
		return "."
	case FollowingSibling:
		return "/following-sibling::"
	case Attribute:
		return "/@"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// SourceKind says where a path starts.
type SourceKind int

// Source kinds.
const (
	SourceContext SourceKind = iota // relative path (context node)
	SourceRoot                      // absolute path: / or //
	SourceDoc                       // doc("file.xml")
	SourceVar                       // $variable
)

// Source is the origin of a path expression.
type Source struct {
	Kind SourceKind
	Doc  string // for SourceDoc
	Var  string // for SourceVar
}

// quoteLit renders a string literal in lexer syntax. The lexer has no
// escape sequences, so the literal must be wrapped in a quote character
// it does not contain; a string lexed from source never contains its own
// delimiter, so one of the two quote kinds always works.
func quoteLit(s string) string {
	if strings.Contains(s, `"`) {
		return "'" + s + "'"
	}
	return `"` + s + `"`
}

// String renders the source prefix.
func (s Source) String() string {
	switch s.Kind {
	case SourceDoc:
		return "doc(" + quoteLit(s.Doc) + ")"
	case SourceVar:
		return "$" + s.Var
	default:
		return ""
	}
}

// Step is one location step: an axis, a node test, and predicates.
type Step struct {
	Axis  Axis
	Test  string // tag name, or "*" for any element; attribute name when Axis == Attribute
	Preds []Expr
	// TextTest marks the text() kind test: the step selects text nodes
	// instead of elements. Test holds "text()" so printing round-trips.
	TextTest bool
}

// Matches reports whether the step's node test accepts the tag.
func (s Step) Matches(tag string) bool { return s.Test == "*" || s.Test == tag }

// String renders the step without its leading axis separator.
func (s Step) String() string {
	var sb strings.Builder
	sb.WriteString(s.Test)
	for _, p := range s.Preds {
		sb.WriteByte('[')
		sb.WriteString(p.String())
		sb.WriteByte(']')
	}
	return sb.String()
}

// Path is a parsed path expression.
type Path struct {
	Source Source
	Steps  []Step
}

// String reprints the path in source syntax.
func (p *Path) String() string {
	var sb strings.Builder
	sb.WriteString(p.Source.String())
	for i, st := range p.Steps {
		switch st.Axis {
		case Descendant:
			sb.WriteString("//")
		case Self:
			if i == 0 && p.Source.Kind == SourceContext {
				sb.WriteString(".")
			} else {
				sb.WriteString("/.")
			}
			for _, pr := range st.Preds {
				sb.WriteString("[" + pr.String() + "]")
			}
			continue
		case FollowingSibling:
			sb.WriteString("/following-sibling::")
		case Attribute:
			if i > 0 || p.Source.Kind != SourceContext {
				sb.WriteString("/")
			}
			sb.WriteString("@")
		default:
			if i > 0 || p.Source.Kind != SourceContext {
				sb.WriteString("/")
			}
		}
		sb.WriteString(st.String())
	}
	return sb.String()
}

// CmpOp is a general comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Eval applies the operator to a string comparison result following
// XPath's general-comparison semantics for untyped values: numeric
// comparison when both sides parse as numbers, string comparison
// otherwise.
func (o CmpOp) Eval(left, right string) bool {
	if ln, errL := strconv.ParseFloat(strings.TrimSpace(left), 64); errL == nil {
		if rn, errR := strconv.ParseFloat(strings.TrimSpace(right), 64); errR == nil {
			switch o {
			case OpEq:
				return ln == rn
			case OpNeq:
				return ln != rn
			case OpLt:
				return ln < rn
			case OpLe:
				return ln <= rn
			case OpGt:
				return ln > rn
			case OpGe:
				return ln >= rn
			}
		}
	}
	switch o {
	case OpEq:
		return left == right
	case OpNeq:
		return left != right
	case OpLt:
		return left < right
	case OpLe:
		return left <= right
	case OpGt:
		return left > right
	case OpGe:
		return left >= right
	}
	return false
}

// OperandKind discriminates comparison operands.
type OperandKind int

// Operand kinds.
const (
	OperandPath OperandKind = iota
	OperandString
	OperandNumber
)

// Operand is one side of a comparison inside a predicate: a relative
// path (including "." for the context node), or a literal.
type Operand struct {
	Kind OperandKind
	Path *Path
	Str  string
	Num  float64
}

// String renders the operand.
func (o Operand) String() string {
	switch o.Kind {
	case OperandPath:
		return o.Path.String()
	case OperandString:
		return quoteLit(o.Str)
	default:
		// 'f' keeps the rendering inside the lexer's digits-and-dot number
		// syntax; 'g' would emit exponent forms the lexer cannot read back.
		return strconv.FormatFloat(o.Num, 'f', -1, 64)
	}
}

// Expr is a predicate expression.
type Expr interface {
	String() string
	isExpr()
}

// Exists tests whether a relative path has at least one match.
type Exists struct{ Path *Path }

// Compare applies a general comparison between two operands.
type Compare struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// And is logical conjunction.
type And struct{ L, R Expr }

// Or is logical disjunction.
type Or struct{ L, R Expr }

// Not is logical negation.
type Not struct{ E Expr }

// Position is a positional predicate [n] (1-based within the matched
// sibling group, per XPath).
type Position struct{ N int }

func (Exists) isExpr()   {}
func (Compare) isExpr()  {}
func (And) isExpr()      {}
func (Or) isExpr()       {}
func (Not) isExpr()      {}
func (Position) isExpr() {}

// String renders the predicate.
func (e Exists) String() string { return e.Path.String() }

// String renders the comparison.
func (e Compare) String() string {
	return e.Left.String() + e.Op.String() + e.Right.String()
}

// String renders the conjunction.
func (e And) String() string { return e.L.String() + " and " + e.R.String() }

// String renders the disjunction.
func (e Or) String() string { return e.L.String() + " or " + e.R.String() }

// String renders the negation.
func (e Not) String() string { return "not(" + e.E.String() + ")" }

// String renders the positional predicate.
func (e Position) String() string { return strconv.Itoa(e.N) }
