package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Axis is the step axis. The fragment covers the axes the paper's
// formalism uses — child (/), descendant (//), self (.), attribute (@)
// and following-sibling (which NoK pattern trees admit as a local axis)
// — plus the upward parent (..) and ancestor axes, which light up the
// reverse tree-pattern edge kinds of the survey literature.
type Axis int

// Axes.
const (
	Child Axis = iota
	Descendant
	Self
	FollowingSibling
	Attribute
	Parent
	Ancestor
)

// axisTable is the single source of truth for the axis surface: every
// supported axis, its axis::-syntax name, and its abbreviated rendering.
// The parser's allow-list, the evaluators' error messages and the
// printers all derive from it, so the "supported axes" diagnostics can
// never drift from what the parser actually accepts.
var axisTable = []struct {
	axis   Axis
	name   string // axis::-prefix spelling
	abbrev string // abbreviated step prefix ("" when only axis:: syntax exists)
}{
	{Child, "child", "/"},
	{Descendant, "descendant", "//"},
	{Self, "self", "."},
	{FollowingSibling, "following-sibling", ""},
	{Attribute, "attribute", "/@"},
	{Parent, "parent", "/.."},
	{Ancestor, "ancestor", ""},
}

// AxisByName resolves an axis::-prefix name against the axis table.
func AxisByName(name string) (Axis, bool) {
	for _, e := range axisTable {
		if e.name == name {
			return e.axis, true
		}
	}
	return 0, false
}

// Name returns the axis's axis::-syntax name ("child", "parent", …).
func (a Axis) Name() string {
	for _, e := range axisTable {
		if e.axis == a {
			return e.name
		}
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// SupportedAxes renders the current allow-list ("child, descendant, …")
// for diagnostics. It is generated from the axis table, so error
// messages always report exactly the axes the parser accepts.
func SupportedAxes() string {
	names := make([]string, len(axisTable))
	for i, e := range axisTable {
		names[i] = e.name
	}
	return strings.Join(names, ", ")
}

// Local reports whether the axis is local in the paper's sense (usable
// inside a NoK pattern tree without recursive matching). Descendant is
// the global axis along which BlossomTrees are cut into NoK trees;
// ancestor is its upward mirror and equally non-local.
func (a Axis) Local() bool { return a != Descendant && a != Ancestor }

// String renders the axis in abbreviated XPath syntax.
func (a Axis) String() string {
	switch a {
	case Child:
		return "/"
	case Descendant:
		return "//"
	case Self:
		return "."
	case FollowingSibling:
		return "/following-sibling::"
	case Attribute:
		return "/@"
	case Parent:
		return "/.."
	case Ancestor:
		return "/ancestor::"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// SourceKind says where a path starts.
type SourceKind int

// Source kinds.
const (
	SourceContext SourceKind = iota // relative path (context node)
	SourceRoot                      // absolute path: / or //
	SourceDoc                       // doc("file.xml")
	SourceVar                       // $variable
)

// Source is the origin of a path expression.
type Source struct {
	Kind SourceKind
	Doc  string // for SourceDoc
	Var  string // for SourceVar
}

// quoteLit renders a string literal in lexer syntax. The lexer has no
// escape sequences, so the literal must be wrapped in a quote character
// it does not contain; a string lexed from source never contains its own
// delimiter, so one of the two quote kinds always works.
func quoteLit(s string) string {
	if strings.Contains(s, `"`) {
		return "'" + s + "'"
	}
	return `"` + s + `"`
}

// String renders the source prefix.
func (s Source) String() string {
	switch s.Kind {
	case SourceDoc:
		return "doc(" + quoteLit(s.Doc) + ")"
	case SourceVar:
		return "$" + s.Var
	default:
		return ""
	}
}

// Step is one location step: an axis, a node test, and predicates.
type Step struct {
	Axis  Axis
	Test  string // tag name, or "*" for any element; attribute name when Axis == Attribute
	Preds []Expr
	// TextTest marks the text() kind test: the step selects text nodes
	// instead of elements. Test holds "text()" so printing round-trips.
	TextTest bool
}

// Matches reports whether the step's node test accepts the tag.
func (s Step) Matches(tag string) bool { return s.Test == "*" || s.Test == tag }

// String renders the step without its leading axis separator.
func (s Step) String() string {
	var sb strings.Builder
	sb.WriteString(s.Test)
	for _, p := range s.Preds {
		sb.WriteByte('[')
		sb.WriteString(p.String())
		sb.WriteByte(']')
	}
	return sb.String()
}

// Path is a parsed path expression.
type Path struct {
	Source Source
	Steps  []Step
}

// String reprints the path in source syntax.
func (p *Path) String() string {
	var sb strings.Builder
	sb.WriteString(p.Source.String())
	for i, st := range p.Steps {
		switch st.Axis {
		case Descendant:
			sb.WriteString("//")
		case Self:
			if i == 0 && p.Source.Kind == SourceContext {
				sb.WriteString(".")
			} else {
				sb.WriteString("/.")
			}
			for _, pr := range st.Preds {
				sb.WriteString("[" + pr.String() + "]")
			}
			continue
		case FollowingSibling:
			sb.WriteString("/following-sibling::")
		case Parent:
			if i > 0 || p.Source.Kind != SourceContext {
				sb.WriteString("/")
			}
			if st.Test == "*" {
				sb.WriteString("..")
				for _, pr := range st.Preds {
					sb.WriteString("[" + pr.String() + "]")
				}
				continue
			}
			sb.WriteString("parent::")
		case Ancestor:
			if i > 0 || p.Source.Kind != SourceContext {
				sb.WriteString("/")
			}
			sb.WriteString("ancestor::")
		case Attribute:
			if i > 0 || p.Source.Kind != SourceContext {
				sb.WriteString("/")
			}
			sb.WriteString("@")
		default:
			if i > 0 || p.Source.Kind != SourceContext {
				sb.WriteString("/")
			}
		}
		sb.WriteString(st.String())
	}
	return sb.String()
}

// CmpOp is a general comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Eval applies the operator to a string comparison result following
// XPath's general-comparison semantics for untyped values: numeric
// comparison when both sides parse as numbers, string comparison
// otherwise.
func (o CmpOp) Eval(left, right string) bool {
	if ln, errL := strconv.ParseFloat(strings.TrimSpace(left), 64); errL == nil {
		if rn, errR := strconv.ParseFloat(strings.TrimSpace(right), 64); errR == nil {
			switch o {
			case OpEq:
				return ln == rn
			case OpNeq:
				return ln != rn
			case OpLt:
				return ln < rn
			case OpLe:
				return ln <= rn
			case OpGt:
				return ln > rn
			case OpGe:
				return ln >= rn
			}
		}
	}
	switch o {
	case OpEq:
		return left == right
	case OpNeq:
		return left != right
	case OpLt:
		return left < right
	case OpLe:
		return left <= right
	case OpGt:
		return left > right
	case OpGe:
		return left >= right
	}
	return false
}

// OperandKind discriminates comparison operands.
type OperandKind int

// Operand kinds.
const (
	OperandPath OperandKind = iota
	OperandString
	OperandNumber
	OperandFunc
)

// Operand is one side of a comparison inside a predicate: a relative
// path (including "." for the context node), a literal, or a core
// library function call.
type Operand struct {
	Kind OperandKind
	Path *Path
	Str  string
	Num  float64
	Fn   *FuncCall
}

// String renders the operand.
func (o Operand) String() string {
	switch o.Kind {
	case OperandPath:
		return o.Path.String()
	case OperandString:
		return quoteLit(o.Str)
	case OperandFunc:
		return o.Fn.String()
	default:
		// 'f' keeps the rendering inside the lexer's digits-and-dot number
		// syntax; 'g' would emit exponent forms the lexer cannot read back.
		return strconv.FormatFloat(o.Num, 'f', -1, 64)
	}
}

// funcArities maps each core library function to its accepted argument
// counts. The table is the parser's allow-list; evaluators switch on the
// same names, so an accepted call always has an evaluation.
var funcArities = map[string][]int{
	"contains":    {2},
	"starts-with": {2},
	"count":       {1},
	"sum":         {1},
	"string-join": {1, 2},
	"number":      {0, 1},
	"name":        {0, 1},
}

// IsCoreFunction reports whether name is one of the core library
// functions (contains, starts-with, count, sum, string-join, number,
// name). Parser-level pseudo-functions (position, not, text, doc,
// exists, deep-equal) are not in this set — they have their own grammar
// productions.
func IsCoreFunction(name string) bool {
	_, ok := funcArities[name]
	return ok
}

// FuncCall is a call to a core library function. Calls appear as
// comparison operands (count(a) = 2, number(@n) < 5) and, for the
// boolean functions, directly as predicates ([contains(., "x")]) and
// where-conditions; non-boolean calls in boolean position take their
// XPath-1.0 effective boolean value (number ≠ 0, string ≠ "").
type FuncCall struct {
	Name string
	Args []Operand
}

func (*FuncCall) isExpr() {}

// String renders the call in source syntax.
func (f *FuncCall) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Expr is a predicate expression.
type Expr interface {
	String() string
	isExpr()
}

// Exists tests whether a relative path has at least one match.
type Exists struct{ Path *Path }

// Compare applies a general comparison between two operands.
type Compare struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// And is logical conjunction.
type And struct{ L, R Expr }

// Or is logical disjunction.
type Or struct{ L, R Expr }

// Not is logical negation.
type Not struct{ E Expr }

// Position is a positional predicate [n] (1-based within the matched
// sibling group, per XPath).
type Position struct{ N int }

func (Exists) isExpr()   {}
func (Compare) isExpr()  {}
func (And) isExpr()      {}
func (Or) isExpr()       {}
func (Not) isExpr()      {}
func (Position) isExpr() {}

// String renders the predicate.
func (e Exists) String() string { return e.Path.String() }

// String renders the comparison.
func (e Compare) String() string {
	return e.Left.String() + e.Op.String() + e.Right.String()
}

// String renders the conjunction.
func (e And) String() string { return e.L.String() + " and " + e.R.String() }

// String renders the disjunction.
func (e Or) String() string { return e.L.String() + " or " + e.R.String() }

// String renders the negation.
func (e Not) String() string { return "not(" + e.E.String() + ")" }

// String renders the positional predicate.
func (e Position) String() string { return strconv.Itoa(e.N) }
