// Package vexec is the batch-at-a-time vectorized execution path for
// chain queries: cursors exchange fixed-size batches of region-label
// triples (start, end, level) over flat []uint32 columns sourced from
// the tag index's columnar projections (index.ColumnSet), instead of
// pulling one NestedList instance at a time through pointer-chasing
// operators.
//
// The pipeline shape mirrors the paper's index scan → stack-based
// structural join plan: a scan cursor per chain step filters the step's
// column set, and a semi-join cursor per edge keeps the descendant-side
// rows that have a qualifying ancestor on the previous stage, using the
// classic merge stack carried across batch boundaries. Because every
// stream is in document order and region labels nest, both edge kinds
// reduce to O(1) checks per row against the stack:
//
//   - //-edge: after popping entries that end before the row starts,
//     every remaining stack entry contains the row, so a proper
//     ancestor exists iff the stack bottom started strictly before it;
//   - /-edge: the remaining entries are exactly the row's containing
//     candidates in nesting (= level) order, so the parent qualifies
//     iff the topmost proper entry sits one level up.
//
// Batch memory comes from a per-query Arena over a process-wide slab
// pool, so steady-state execution allocates nothing per batch; governor
// node-accounting is charged once per batch rather than once per row.
package vexec

import (
	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/index"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// BatchSize is the number of rows exchanged per batch: matched to the
// governor's 1024-tick amortization window, so one budget check per
// batch gives the same granularity the tuple-at-a-time operators get
// from their per-row amortized ticks.
const BatchSize = 1024

// Batch is one unit of exchange: parallel region-label columns plus the
// row's ordinal in its stage's ColumnSet (for materializing the node
// pointers of surviving rows). Only the first N rows are valid.
type Batch struct {
	Start, End, Level, Ord []uint32
	N                      int
}

// Edge is the structural relationship between a stage and its
// predecessor (for the first stage: the document root).
type Edge uint8

// Edge kinds.
const (
	EdgeDescendant Edge = iota // //-edge: previous stage is a proper ancestor
	EdgeChild                  // /-edge: previous stage is the parent
)

// String renders the edge in XPath syntax.
func (e Edge) String() string {
	if e == EdgeChild {
		return "/"
	}
	return "//"
}

// Stage is one chain step: the step's columnar inverted list, an
// optional row filter (value constraints; nil accepts every row), the
// edge connecting it to the previous stage, and the stats nodes its
// cursors report into. ScanStats receives the column scan's counters;
// JoinStats (unused on the first stage, which has no join) receives the
// semi-join's.
type Stage struct {
	Cols      *index.ColumnSet
	Filter    func(*xmltree.Node) bool
	Edge      Edge
	ScanStats *obs.OpStats
	JoinStats *obs.OpStats
}

// cursor produces batches; fill leaves out.N == 0 at end of stream.
type cursor interface {
	fill(out *Batch) error
}

// Run executes the chain pipeline and returns the ColumnSet ordinals of
// the tail stage's surviving rows, in document order. The returned
// slice is an ordinary allocation — it stays valid after the arena is
// released. A governance violation (budget, cancellation, injected
// fault) aborts with the governor's sticky error; the stages' stats
// carry the partial counts recorded up to the abort.
func Run(stages []Stage, g *gov.Governor, a *Arena) ([]uint32, error) {
	if len(stages) == 0 {
		return nil, nil
	}
	var cur cursor = newScanCursor(stages[0], g)
	for _, st := range stages[1:] {
		cur = newSemiJoinCursor(cur, st, g, a)
	}
	out := a.NewBatch()
	var ords []uint32
	for {
		if err := cur.fill(out); err != nil {
			return nil, err
		}
		if out.N == 0 {
			return ords, nil
		}
		ords = append(ords, out.Ord[:out.N]...)
	}
}

// scanCursor streams a stage's ColumnSet in batches, applying the row
// filter and — for a /-edge off the document root — the level==1
// restriction (children of the document element's parent are exactly
// the level-1 elements).
type scanCursor struct {
	cols      *index.ColumnSet
	filter    func(*xmltree.Node) bool
	rootChild bool
	pos       int
	stats     *obs.OpStats
	gov       *gov.Governor
}

func newScanCursor(st Stage, g *gov.Governor) *scanCursor {
	return &scanCursor{
		cols:      st.Cols,
		filter:    st.Filter,
		rootChild: st.Edge == EdgeChild,
		stats:     st.ScanStats,
		gov:       g,
	}
}

func (c *scanCursor) fill(out *Batch) error {
	out.N = 0
	cs := c.cols
	n := cs.Len()
	from := c.pos
	if c.filter == nil && !c.rootChild {
		// Fast path: straight column copy, no per-row branches.
		take := n - from
		if take > BatchSize {
			take = BatchSize
		}
		copy(out.Start[:take], cs.Start[from:from+take])
		copy(out.End[:take], cs.End[from:from+take])
		copy(out.Level[:take], cs.Level[from:from+take])
		for k := 0; k < take; k++ {
			out.Ord[k] = uint32(from + k)
		}
		out.N = take
		c.pos += take
	} else {
		for c.pos < n && out.N < BatchSize {
			i := c.pos
			c.pos++
			if c.rootChild && cs.Level[i] != 1 {
				continue
			}
			if c.filter != nil && !c.filter(cs.Nodes[i]) {
				continue
			}
			k := out.N
			out.Start[k] = cs.Start[i]
			out.End[k] = cs.End[i]
			out.Level[k] = cs.Level[i]
			out.Ord[k] = uint32(i)
			out.N++
		}
	}
	scanned := int64(c.pos - from)
	if scanned == 0 {
		return nil // exhausted; no work, no tick
	}
	c.stats.AddScanned(scanned)
	c.stats.AddEmitted(int64(out.N))
	c.stats.AddBatches(1)
	// One governor charge per batch — the whole point of batching the
	// accounting. The check granularity matches the tuple operators'
	// 1024-tick amortization.
	return c.gov.Scanned(fault.SiteVexec, scanned)
}

// semiJoinCursor keeps the descendant-side (inner) rows that have a
// qualifying ancestor in the outer stream, via the merge stack carried
// across batch boundaries. Output order is the inner stream's order
// (document order), which keeps the order invariant for the next stage.
type semiJoinCursor struct {
	outer, inner cursor
	child        bool // /-edge (parent) vs //-edge (proper ancestor)

	ob, ib     *Batch // live input batches
	op, ip     int    // read positions
	oEOF, iEOF bool

	// The merge stack: region labels of outer candidates whose regions
	// are still open at the merge frontier, outermost at the bottom.
	// Plain slices, not pooled — depth is bounded by document depth.
	sStart, sEnd, sLevel []uint32

	stats *obs.OpStats
	gov   *gov.Governor
}

func newSemiJoinCursor(outer cursor, st Stage, g *gov.Governor, a *Arena) *semiJoinCursor {
	// The inner scan is a plain column scan (the rootChild restriction
	// only applies to the first stage, so Edge is pinned descendant).
	inner := Stage{Cols: st.Cols, Filter: st.Filter, ScanStats: st.ScanStats, Edge: EdgeDescendant}
	return &semiJoinCursor{
		outer: outer,
		inner: newScanCursor(inner, g),
		child: st.Edge == EdgeChild,
		ob:    a.NewBatch(),
		ib:    a.NewBatch(),
		stats: st.JoinStats,
		gov:   g,
	}
}

func (c *semiJoinCursor) fill(out *Batch) error {
	out.N = 0
	for out.N < BatchSize {
		// Refill the inner (descendant) side.
		if c.ip >= c.ib.N {
			if c.iEOF {
				break
			}
			if err := c.inner.fill(c.ib); err != nil {
				return err
			}
			c.ip = 0
			if c.ib.N == 0 {
				c.iEOF = true
				break
			}
		}
		dStart := c.ib.Start[c.ip]
		// Push every outer candidate starting at or before d. Candidates
		// whose region closed before d never contain anything at or past
		// d and are dropped without a push; otherwise entries that ended
		// before the candidate opens are popped first, keeping the stack
		// strictly nested.
		for !c.oEOF {
			if c.op >= c.ob.N {
				if err := c.outer.fill(c.ob); err != nil {
					return err
				}
				c.op = 0
				if c.ob.N == 0 {
					c.oEOF = true
					break
				}
			}
			aStart := c.ob.Start[c.op]
			if aStart > dStart {
				break
			}
			aEnd := c.ob.End[c.op]
			aLevel := c.ob.Level[c.op]
			c.op++
			c.stats.AddComparisons(1)
			if aEnd < dStart {
				continue
			}
			for n := len(c.sStart); n > 0 && c.sEnd[n-1] < aStart; n = len(c.sStart) {
				c.popStack()
			}
			c.sStart = append(c.sStart, aStart)
			c.sEnd = append(c.sEnd, aEnd)
			c.sLevel = append(c.sLevel, aLevel)
			c.stats.ObserveStackDepth(len(c.sStart))
		}
		// Close candidates that ended before d. What remains all
		// contains d (start <= dStart <= end), nested, levels strictly
		// increasing toward the top.
		for n := len(c.sStart); n > 0 && c.sEnd[n-1] < dStart; n = len(c.sStart) {
			c.popStack()
		}
		c.stats.AddComparisons(1)
		ok := false
		if n := len(c.sStart); n > 0 {
			if c.child {
				// The only possible non-proper entry is d itself (equal
				// start), necessarily on top; the parent, if it is a
				// candidate, sits directly below at level-1.
				top := n - 1
				if c.sStart[top] == dStart {
					top--
				}
				ok = top >= 0 && c.sLevel[top] == c.ib.Level[c.ip]-1
			} else {
				// Any proper ancestor suffices; the bottom entry is the
				// outermost, so it is proper iff it started before d.
				ok = c.sStart[0] < dStart
			}
		}
		if ok {
			k := out.N
			out.Start[k] = dStart
			out.End[k] = c.ib.End[c.ip]
			out.Level[k] = c.ib.Level[c.ip]
			out.Ord[k] = c.ib.Ord[c.ip]
			out.N++
		}
		c.ip++
	}
	c.stats.AddEmitted(int64(out.N))
	if out.N > 0 {
		c.stats.AddBatches(1)
	}
	// Amortized cancellation/fault point, once per produced batch.
	return c.gov.Emitted(fault.SiteVexec)
}

func (c *semiJoinCursor) popStack() {
	n := len(c.sStart) - 1
	c.sStart = c.sStart[:n]
	c.sEnd = c.sEnd[:n]
	c.sLevel = c.sLevel[:n]
}
