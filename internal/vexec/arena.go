package vexec

import "sync"

// slabWords is the size of one pooled allocation: the four uint32
// columns of one batch, carved from a single contiguous slab so a batch
// costs one allocation (amortized to zero once the pool is warm).
const slabWords = 4 * BatchSize

// slabPool recycles column slabs across queries. Slabs are plain
// []uint32 — they hold no pointers, so pooling them is GC-transparent.
var slabPool = sync.Pool{
	New: func() any {
		s := make([]uint32, slabWords)
		return &s
	},
}

// Arena owns the batch memory of one query execution. All batches of a
// pipeline are carved from pooled slabs the arena tracks; Release
// returns every slab at once when the pipeline has materialized its
// result. An arena is single-query, single-goroutine — concurrent
// queries each build their own, and the pool underneath is what they
// share safely.
//
// Lifetime contract: batch columns are dead the moment Release runs.
// Nothing allocated from an arena may outlive it — the pipeline's
// output (node ordinals) is copied into an ordinary slice before the
// arena is released, and only *xmltree.Node pointers resolved from
// those ordinals escape to the instance stream.
type Arena struct {
	slabs []*[]uint32
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// NewBatch carves one batch (four BatchSize columns) from a pooled slab.
func (a *Arena) NewBatch() *Batch {
	sp := slabPool.Get().(*[]uint32)
	a.slabs = append(a.slabs, sp)
	s := *sp
	return &Batch{
		Start: s[0*BatchSize : 1*BatchSize],
		End:   s[1*BatchSize : 2*BatchSize],
		Level: s[2*BatchSize : 3*BatchSize],
		Ord:   s[3*BatchSize : 4*BatchSize],
	}
}

// Release returns every slab to the pool. The arena is reusable but
// every batch carved before Release is invalidated.
func (a *Arena) Release() {
	for _, s := range a.slabs {
		slabPool.Put(s)
	}
	a.slabs = nil
}
