package vexec

import (
	"fmt"
	"testing"

	"blossomtree/internal/gov"
	"blossomtree/internal/index"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// chainDoc builds a document whose //a//b result set has exactly n rows:
// one <a> under the root holding n <b/> children, plus a decoy <c> with
// a <b/> outside any <a> (which must not qualify).
func chainDoc(t *testing.T, n int) *xmltree.Document {
	t.Helper()
	b := xmltree.NewBuilder()
	b.Start("r")
	b.Start("c")
	b.Start("b")
	b.End()
	b.End()
	b.Start("a")
	for i := 0; i < n; i++ {
		b.Start("b")
		b.End()
	}
	b.End()
	b.End()
	return b.MustDone()
}

// runChain executes a stage pipeline over the index for the given tags
// and edges and returns the surviving tail nodes.
func runChain(t *testing.T, ix *index.TagIndex, g *gov.Governor, steps []Stage) ([]*xmltree.Node, error) {
	t.Helper()
	a := NewArena()
	defer a.Release()
	ords, err := Run(steps, g, a)
	if err != nil {
		return nil, err
	}
	tail := steps[len(steps)-1].Cols
	out := make([]*xmltree.Node, len(ords))
	for i, o := range ords {
		out[i] = tail.Nodes[o]
	}
	return out, nil
}

// stage builds a Stage with fresh stats for tag under edge.
func stage(ix *index.TagIndex, tag string, edge Edge) Stage {
	return Stage{
		Cols:      ix.Columns(tag),
		Edge:      edge,
		ScanStats: obs.NewOpStats("VecScan", tag),
		JoinStats: obs.NewOpStats("VecSemiJoin", tag),
	}
}

// oracle computes the expected tail set forward, one step at a time:
// level i keeps the elements of tags[i] whose parent (child edge) or
// some proper ancestor (descendant edge) survived level i-1. child[0]
// pins the head at level 1 (a /-edge off the document root).
func oracle(doc *xmltree.Document, tags []string, child []bool) []*xmltree.Node {
	cur := map[*xmltree.Node]bool{}
	xmltree.Elements(doc.Root, func(n *xmltree.Node) {
		if n.Tag == tags[0] && (!child[0] || n.Level == 1) {
			cur[n] = true
		}
	})
	for i := 1; i < len(tags); i++ {
		next := map[*xmltree.Node]bool{}
		xmltree.Elements(doc.Root, func(n *xmltree.Node) {
			if n.Tag != tags[i] {
				return
			}
			if child[i] {
				if cur[n.Parent] {
					next[n] = true
				}
				return
			}
			for p := n.Parent; p != nil; p = p.Parent {
				if cur[p] {
					next[n] = true
					return
				}
			}
		})
		cur = next
	}
	var out []*xmltree.Node
	xmltree.Elements(doc.Root, func(n *xmltree.Node) {
		if cur[n] {
			out = append(out, n)
		}
	})
	return out
}

func sameNodes(t *testing.T, got, want []*xmltree.Node, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: got start=%d, want start=%d", label, i, got[i].Start, want[i].Start)
		}
	}
}

// TestBatchBoundarySizes pins the batch-edge off-by-ones: result sets
// sized exactly 0, 1, BatchSize-1, BatchSize, BatchSize+1 and
// 2*BatchSize+1 must all come through the two-stage pipeline intact.
func TestBatchBoundarySizes(t *testing.T) {
	for _, n := range []int{0, 1, BatchSize - 1, BatchSize, BatchSize + 1, 2*BatchSize + 1} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			doc := chainDoc(t, n)
			ix := index.Build(doc)
			got, err := runChain(t, ix, nil, []Stage{
				stage(ix, "a", EdgeDescendant),
				stage(ix, "b", EdgeDescendant),
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("//a//b over chainDoc(%d): got %d rows", n, len(got))
			}
			for _, g := range got {
				if g.Tag != "b" || g.Parent.Tag != "a" {
					t.Fatalf("row start=%d tag=%s parent=%s", g.Start, g.Tag, g.Parent.Tag)
				}
			}
		})
	}
}

// TestEdgeKinds cross-checks child and descendant edges — including the
// self-nesting //a//a and //a/a shapes whose stack top can be the row
// itself — against a navigational oracle on a nested document.
func TestEdgeKinds(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Start("a") // level 1
	b.Start("a") // nested a: //a//a row, //a/a row
	b.Start("b")
	b.Start("a") // a under b: //a//a row, not //a/a
	b.End()
	b.End()
	b.Start("a")
	b.End()
	b.End()
	b.Start("b")
	b.Start("b")
	b.End()
	b.End()
	b.End()
	doc := b.MustDone()
	ix := index.Build(doc)

	cases := []struct {
		name  string
		tags  []string
		child []bool // edge kinds, index 0 = edge off the document root
	}{
		{"desc-desc aa", []string{"a", "a"}, []bool{false, false}},
		{"desc-child aa", []string{"a", "a"}, []bool{false, true}},
		{"desc-desc ab", []string{"a", "b"}, []bool{false, false}},
		{"desc-child ab", []string{"a", "b"}, []bool{false, true}},
		{"rootchild-desc ab", []string{"a", "b"}, []bool{true, false}},
		{"desc-desc bb", []string{"b", "b"}, []bool{false, false}},
		{"three-stage aba", []string{"a", "b", "a"}, []bool{false, false, false}},
		{"three-stage child", []string{"a", "b", "a"}, []bool{false, true, true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			steps := make([]Stage, len(tc.tags))
			for i, tag := range tc.tags {
				e := EdgeDescendant
				if tc.child[i] {
					e = EdgeChild
				}
				steps[i] = stage(ix, tag, e)
			}
			got, err := runChain(t, ix, nil, steps)
			if err != nil {
				t.Fatal(err)
			}
			want := oracle(doc, tc.tags, tc.child)
			sameNodes(t, got, want, tc.name)
		})
	}
}

// TestGovernedBudgetAbortMidBatch arms a node budget smaller than the
// pipeline's scan volume and asserts the typed abort arrives and the
// stage stats carry the partial counts recorded up to the abort.
func TestGovernedBudgetAbortMidBatch(t *testing.T) {
	doc := chainDoc(t, 2*BatchSize+1)
	ix := index.Build(doc)
	g := gov.New(nil, gov.Budget{MaxNodes: BatchSize + 10}, nil)
	steps := []Stage{
		stage(ix, "a", EdgeDescendant),
		stage(ix, "b", EdgeDescendant),
	}
	_, err := runChain(t, ix, g, steps)
	if err == nil {
		t.Fatal("expected budget abort")
	}
	var scanned int64
	for _, s := range steps {
		scanned += s.ScanStats.Scanned()
	}
	if scanned == 0 {
		t.Fatal("partial stats lost: no scanned counts survived the abort")
	}
	if b := steps[1].ScanStats.Batches(); b == 0 {
		t.Errorf("inner scan recorded no batches before the abort")
	}
}

// TestArenaReuse runs many pipelines back to back so slabs recycle
// through the pool, and checks results stay correct — a regression
// guard for batch memory leaking across queries.
func TestArenaReuse(t *testing.T) {
	doc := chainDoc(t, BatchSize+7)
	ix := index.Build(doc)
	for i := 0; i < 50; i++ {
		got, err := runChain(t, ix, nil, []Stage{
			stage(ix, "a", EdgeDescendant),
			stage(ix, "b", EdgeDescendant),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != BatchSize+7 {
			t.Fatalf("iteration %d: got %d rows, want %d", i, len(got), BatchSize+7)
		}
	}
}
