package xmlgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blossomtree/internal/xmltree"
)

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("d9", Config{}); err == nil {
		t.Error("Generate(d9) should fail")
	}
}

func TestLookupInfo(t *testing.T) {
	in, ok := LookupInfo("d4")
	if !ok || in.Name != "treebank" || !in.Recursive {
		t.Errorf("LookupInfo(d4) = %+v, %v", in, ok)
	}
	if _, ok := LookupInfo("nope"); ok {
		t.Error("LookupInfo(nope) succeeded")
	}
	if len(Catalog) != 5 {
		t.Errorf("Catalog has %d entries, want 5", len(Catalog))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("d2", Config{Seed: 7, TargetNodes: 500})
	b := MustGenerate("d2", Config{Seed: 7, TargetNodes: 500})
	if !xmltree.DeepEqual(a.DocumentElement(), b.DocumentElement()) {
		t.Error("same seed produced different documents")
	}
	c := MustGenerate("d2", Config{Seed: 8, TargetNodes: 500})
	if xmltree.DeepEqual(a.DocumentElement(), c.DocumentElement()) {
		t.Error("different seeds produced identical documents")
	}
}

// TestDatasetShapes checks each generated dataset against the Table 1
// properties the generators are tuned to reproduce: recursion flag, tag
// alphabet size (within tolerance), and depth bounds.
func TestDatasetShapes(t *testing.T) {
	type bounds struct {
		minTags, maxTags     int
		maxDepth             int // generated max depth must not exceed this
		minMaxDepth          int // and must reach at least this
		recursive            bool
		requiredTags         []string
		forbiddenRecursonTag bool
	}
	// Depth convention: xmltree counts the document element as level 1.
	cases := map[string]bounds{
		"d1": {minTags: 6, maxTags: 8, maxDepth: 8, minMaxDepth: 6, recursive: true,
			requiredTags: []string{"a", "b1", "c2", "c3", "b4"}},
		"d2": {minTags: 6, maxTags: 7, maxDepth: 4, minMaxDepth: 3, recursive: false,
			requiredTags: []string{"addresses", "address", "street_address", "name_of_state", "zip_code", "country_id", "name_of_city"}},
		"d3": {minTags: 20, maxTags: 51, maxDepth: 8, minMaxDepth: 6, recursive: false,
			requiredTags: []string{"item", "attributes", "length", "title", "author", "publisher", "street_information", "street_address", "mailing_address", "date_of_birth", "last_name", "contact_information"}},
		"d4": {minTags: 25, maxTags: 280, maxDepth: 36, minMaxDepth: 15, recursive: true,
			requiredTags: []string{"VP", "NP", "PP", "NN", "IN", "JJ", "VB"}},
		"d5": {minTags: 20, maxTags: 35, maxDepth: 6, minMaxDepth: 2, recursive: false,
			requiredTags: []string{"dblp", "phdthesis", "author", "school", "www", "url", "proceedings", "editor", "title", "year"}},
	}
	for id, bb := range cases {
		t.Run(id, func(t *testing.T) {
			doc := MustGenerate(id, Config{Seed: 42, TargetNodes: 20000})
			s := xmltree.ComputeStats(doc)
			if s.Recursive != bb.recursive {
				t.Errorf("%s recursive = %v, want %v (max recursion %d)", id, s.Recursive, bb.recursive, s.MaxRecursion)
			}
			if s.Tags < bb.minTags || s.Tags > bb.maxTags {
				t.Errorf("%s |tags| = %d, want in [%d, %d]", id, s.Tags, bb.minTags, bb.maxTags)
			}
			if s.MaxDepth > bb.maxDepth {
				t.Errorf("%s max depth = %d, cap %d", id, s.MaxDepth, bb.maxDepth)
			}
			if s.MaxDepth < bb.minMaxDepth {
				t.Errorf("%s max depth = %d, want >= %d", id, s.MaxDepth, bb.minMaxDepth)
			}
			for _, tag := range bb.requiredTags {
				if s.TagCounts[tag] == 0 {
					t.Errorf("%s missing required tag %q", id, tag)
				}
			}
			if s.Elements < 15000 {
				t.Errorf("%s produced only %d elements for target 20000", id, s.Elements)
			}
			if s.Elements > 22000 {
				t.Errorf("%s overshot: %d elements for target 20000", id, s.Elements)
			}
			if doc.Bytes == 0 {
				t.Errorf("%s has zero size estimate", id)
			}
		})
	}
}

// TestDatasetSerializable ensures every dataset serializes to well-formed
// XML that reparses to a deep-equal tree.
func TestDatasetSerializable(t *testing.T) {
	for _, in := range Catalog {
		doc := MustGenerate(in.ID, Config{Seed: 1, TargetNodes: 800})
		out := xmltree.Serialize(doc.Root, xmltree.WriteOptions{})
		doc2, err := xmltree.ParseString(out)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v", in.ID, err)
		}
		if !xmltree.DeepEqual(doc.DocumentElement(), doc2.DocumentElement()) {
			t.Errorf("%s: serialize/parse round trip not deep-equal", in.ID)
		}
	}
}

func TestRandomSpecDefaults(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	doc := MustRandom(r, RandomSpec{})
	if doc.DocumentElement() == nil {
		t.Fatal("random doc has no root")
	}
	s := xmltree.ComputeStats(doc)
	if s.Elements == 0 || s.Elements > 50 {
		t.Errorf("elements = %d, want 1..50", s.Elements)
	}
	// TextProb: -1 disables text entirely.
	doc = MustRandom(r, RandomSpec{TextProb: -1, MaxNodes: 40})
	s = xmltree.ComputeStats(doc)
	if s.Texts != 0 {
		t.Errorf("TextProb -1 still produced %d text nodes", s.Texts)
	}
}

// TestQuickRandomWellFormed: every random document has consistent labels
// and respects the caps.
func TestQuickRandomWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := RandomSpec{MaxNodes: 60, MaxDepth: 6}
		doc := MustRandom(r, spec)
		s := xmltree.ComputeStats(doc)
		if s.Elements < 1 || s.Elements > spec.MaxNodes || s.MaxDepth > spec.MaxDepth {
			return false
		}
		prev := -1
		ok := true
		xmltree.Walk(doc.DocumentElement(), func(n *xmltree.Node) bool {
			if n.Start <= prev || n.End < n.Start {
				ok = false
			}
			prev = n.Start
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDefaultTargetNodes(t *testing.T) {
	doc := MustGenerate("d2", Config{Seed: 1})
	want := 403_201 / DefaultScaleDivisor
	s := xmltree.ComputeStats(doc)
	if s.Elements < want*3/4 || s.Elements > want*5/4 {
		t.Errorf("default d2 elements = %d, want ≈%d", s.Elements, want)
	}
}
