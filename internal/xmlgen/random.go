package xmlgen

import (
	"math/rand"

	"blossomtree/internal/xmltree"
)

// RandomSpec controls Random document generation for property-based
// tests.
type RandomSpec struct {
	// Tags is the alphabet; defaults to {"a".."e"}.
	Tags []string
	// MaxNodes caps the element count (default 50).
	MaxNodes int
	// MaxDepth caps element nesting (default 10).
	MaxDepth int
	// TextProb is the per-position probability (in percent) of emitting a
	// text node (default 15).
	TextProb int
}

func (s *RandomSpec) defaults() {
	if len(s.Tags) == 0 {
		s.Tags = []string{"a", "b", "c", "d", "e"}
	}
	if s.MaxNodes <= 0 {
		s.MaxNodes = 50
	}
	if s.MaxDepth <= 0 {
		s.MaxDepth = 10
	}
	if s.TextProb < 0 {
		s.TextProb = 0
	} else if s.TextProb == 0 {
		s.TextProb = 15
	}
}

// Random generates a random well-formed document. Generation is
// deterministic in r. Tag recursion is allowed, so random documents
// exercise the recursive-document code paths of the matcher and joins.
func Random(r *rand.Rand, spec RandomSpec) (*xmltree.Document, error) {
	spec.defaults()
	b := xmltree.NewBuilder()
	budget := 1 + r.Intn(spec.MaxNodes)
	b.Start(spec.Tags[r.Intn(len(spec.Tags))])
	budget--
	depth := 1
	lastWasText := false
	for budget > 0 {
		switch {
		case depth > 1 && r.Intn(3) == 0:
			b.End()
			depth--
			lastWasText = false
		case !lastWasText && r.Intn(100) < spec.TextProb:
			b.Text(words[r.Intn(len(words))])
			lastWasText = true
		case depth < spec.MaxDepth:
			b.Start(spec.Tags[r.Intn(len(spec.Tags))])
			depth++
			budget--
			lastWasText = false
		default:
			b.End()
			depth--
			lastWasText = false
		}
	}
	for depth > 0 {
		b.End()
		depth--
	}
	return b.Done()
}

// MustRandom is Random for tests, where a generation bug should fail
// loudly rather than be handled.
func MustRandom(r *rand.Rand, spec RandomSpec) *xmltree.Document {
	doc, err := Random(r, spec)
	if err != nil {
		panic(err)
	}
	return doc
}
