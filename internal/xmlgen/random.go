package xmlgen

import (
	"math/rand"

	"blossomtree/internal/xmltree"
)

// RandomSpec controls Random document generation for property-based
// tests.
type RandomSpec struct {
	// Tags is the alphabet; defaults to {"a".."e"}.
	Tags []string
	// MaxNodes caps the element count (default 50).
	MaxNodes int
	// MaxDepth caps element nesting (default 10).
	MaxDepth int
	// TextProb is the per-position probability (in percent) of emitting a
	// text node (default 15).
	TextProb int
	// AttrProb is the per-element probability (in percent) of each
	// attribute name in Attrs being present (default 0: no attributes).
	AttrProb int
	// Attrs is the attribute-name alphabet, used when AttrProb > 0
	// (defaults to {"id", "k"}). Values are drawn from a small alphabet of
	// short strings and numerals so random value comparisons collide
	// often enough to be interesting.
	Attrs []string
}

func (s *RandomSpec) defaults() {
	if len(s.Tags) == 0 {
		s.Tags = []string{"a", "b", "c", "d", "e"}
	}
	if s.MaxNodes <= 0 {
		s.MaxNodes = 50
	}
	if s.MaxDepth <= 0 {
		s.MaxDepth = 10
	}
	if s.TextProb < 0 {
		s.TextProb = 0
	} else if s.TextProb == 0 {
		s.TextProb = 15
	}
	if s.AttrProb > 0 && len(s.Attrs) == 0 {
		s.Attrs = []string{"id", "k"}
	}
}

// attrValues is the attribute-value alphabet: a handful of short strings
// and numerals, so equality joins and numeric comparisons over random
// documents produce both matches and misses.
var attrValues = []string{"1", "2", "3", "10", "x", "y", "z1"}

// Words returns the text-content vocabulary Random draws from, so query
// generators can produce string literals that actually occur in
// generated documents.
func Words() []string { return words }

// AttrValues returns the attribute-value alphabet Random draws from.
func AttrValues() []string { return attrValues }

// randAttrs draws each spec attribute independently with AttrProb.
func randAttrs(r *rand.Rand, spec RandomSpec) []xmltree.Attr {
	if spec.AttrProb <= 0 {
		return nil
	}
	var attrs []xmltree.Attr
	for _, name := range spec.Attrs {
		if r.Intn(100) < spec.AttrProb {
			attrs = append(attrs, xmltree.Attr{Name: name, Value: attrValues[r.Intn(len(attrValues))]})
		}
	}
	return attrs
}

// Random generates a random well-formed document. Generation is
// deterministic in r. Tag recursion is allowed, so random documents
// exercise the recursive-document code paths of the matcher and joins.
func Random(r *rand.Rand, spec RandomSpec) (*xmltree.Document, error) {
	spec.defaults()
	b := xmltree.NewBuilder()
	budget := 1 + r.Intn(spec.MaxNodes)
	b.StartAttrs(spec.Tags[r.Intn(len(spec.Tags))], randAttrs(r, spec))
	budget--
	depth := 1
	lastWasText := false
	for budget > 0 {
		switch {
		case depth > 1 && r.Intn(3) == 0:
			b.End()
			depth--
			lastWasText = false
		case !lastWasText && r.Intn(100) < spec.TextProb:
			b.Text(words[r.Intn(len(words))])
			lastWasText = true
		case depth < spec.MaxDepth:
			b.StartAttrs(spec.Tags[r.Intn(len(spec.Tags))], randAttrs(r, spec))
			depth++
			budget--
			lastWasText = false
		default:
			b.End()
			depth--
			lastWasText = false
		}
	}
	for depth > 0 {
		b.End()
		depth--
	}
	return b.Done()
}

// MustRandom is Random for tests, where a generation bug should fail
// loudly rather than be handled.
func MustRandom(r *rand.Rand, spec RandomSpec) *xmltree.Document {
	doc, err := Random(r, spec)
	if err != nil {
		panic(err)
	}
	return doc
}
