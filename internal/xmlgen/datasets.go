package xmlgen

import (
	"fmt"
	"math/rand"

	"blossomtree/internal/xmltree"
)

// counter tracks remaining element budget during generation.
type counter struct{ left int }

func (c *counter) take() bool {
	if c.left <= 0 {
		return false
	}
	c.left--
	return true
}

// weighted is one weighted child-tag choice.
type weighted struct {
	tag string
	w   int
}

func pickWeighted(r *rand.Rand, ws []weighted) string {
	total := 0
	for _, w := range ws {
		total += w.w
	}
	n := r.Intn(total)
	for _, w := range ws {
		if n < w.w {
			return w.tag
		}
		n -= w.w
	}
	return ws[0].tag
}

// d1 generates the recursive-DTD synthetic document over the 8-tag
// alphabet {a, b1..b4, c1..c3} (Table 1: 8 tags, max depth 8, recursive).
// Child-tag weights are tuned to the Appendix-A d1 selectivity classes:
// b4 is rare (≈1%, the hc target), b1 and c2 are frequent and
// mutually nesting (the lc chains //b1//c2//b1), and a recurses.
var d1Weights = []weighted{
	{"b1", 24}, {"c2", 24}, {"a", 10}, {"c1", 10}, {"c3", 10},
	{"b2", 6}, {"b3", 6}, {"b4", 1},
}

func d1(r *rand.Rand, target int) (*xmltree.Document, error) {
	const maxDepth = 8
	b := xmltree.NewBuilder()
	c := &counter{left: target}

	var gen func(depth int)
	gen = func(depth int) {
		kids := 2 + r.Intn(3)
		for i := 0; i < kids && c.left > 0; i++ {
			if !c.take() {
				return
			}
			tag := pickWeighted(r, d1Weights)
			if tag == "b4" || depth >= maxDepth-1 || r.Intn(100) < 22 {
				b.Elem(tag, randText(r, 1))
				continue
			}
			b.Start(tag)
			gen(depth + 1)
			b.End()
		}
	}

	c.take()
	b.Start("a")
	for c.left > 0 {
		gen(2)
	}
	b.End()
	return b.Done()
}

// d2 generates the XBench-address-like document: 7 tags, shallow, bushy,
// non-recursive. Presence probabilities of the optional fields tune the
// selectivity spread that the Appendix-A d2 queries rely on (name_of_state
// is rare, street_address universal).
func d2(r *rand.Rand, target int) (*xmltree.Document, error) {
	b := xmltree.NewBuilder()
	c := &counter{left: target}
	c.take()
	b.Start("addresses")
	for c.left > 0 {
		c.take()
		b.Start("address")
		if c.take() {
			b.Start("street_address")
			if r.Intn(100) < 12 && c.take() {
				b.Elem("name_of_state", stateName(r))
			}
			if r.Intn(100) < 85 && c.take() {
				b.Elem("name_of_city", randText(r, 1))
			}
			b.End()
		}
		if r.Intn(100) < 50 && c.take() {
			b.Elem("zip_code", fmt.Sprintf("%05d", r.Intn(100000)))
		}
		if r.Intn(100) < 30 && c.take() {
			b.Elem("country_id", countryID(r))
		}
		b.End()
	}
	b.End()
	return b.Done()
}

func stateName(r *rand.Rand) string {
	states := []string{"Ontario", "Quebec", "Alberta", "Manitoba", "Yukon"}
	return states[r.Intn(len(states))]
}

func countryID(r *rand.Rand) string {
	ids := []string{"CA", "US", "IN", "DE", "JP", "BR"}
	return ids[r.Intn(len(ids))]
}

// catalogAttrTags pads the catalog tag alphabet to 51 tags, matching
// Table 1.
var catalogAttrTags = []string{
	"length", "width", "height", "weight", "color", "material",
	"size_of_book", "number_of_pages", "reading_level", "binding",
	"edition", "language", "format", "genre", "awards",
}

// d3 generates the XBench-catalog-like document: non-recursive, 51 tags,
// average depth ~5, max depth 8. The schema follows the Appendix-A d3
// queries: item/attributes//length, item/title,
// author/contact_information//street_address, author/date_of_birth,
// author/last_name, publisher//street_information/street_address,
// publisher/mailing_address.
func d3(r *rand.Rand, target int) (*xmltree.Document, error) {
	b := xmltree.NewBuilder()
	c := &counter{left: target}

	address := func(withMailing bool) {
		// contact_information/(mailing_address)?/street_information/street_address
		if !c.take() {
			return
		}
		b.Start("contact_information")
		wrap := withMailing && r.Intn(100) < 70
		if wrap && c.take() {
			b.Start("mailing_address")
		} else {
			wrap = false
		}
		if c.take() {
			b.Start("street_information")
			if c.take() {
				b.Elem("street_address", randText(r, 3))
			}
			if r.Intn(2) == 0 && c.take() {
				b.Elem("name_of_city", randText(r, 1))
			}
			if r.Intn(100) < 20 && c.take() {
				b.Elem("zip_code", fmt.Sprintf("%05d", r.Intn(100000)))
			}
			b.End()
		}
		if wrap {
			b.End()
		}
		b.End()
	}

	c.take()
	b.Start("catalog")
	for c.left > 0 {
		c.take()
		b.Start("item")
		if c.take() {
			b.Start("attributes")
			n := 1 + r.Intn(5)
			for i := 0; i < n && c.left > 0; i++ {
				if c.take() {
					b.Elem(catalogAttrTags[r.Intn(len(catalogAttrTags))], randText(r, 1))
				}
			}
			b.End()
		}
		if c.take() {
			b.Start("title")
			b.Text(randText(r, 4))
			if r.Intn(100) < 25 { // nested author inside title, per d3 Q2
				author(b, r, c, address)
			}
			b.End()
		}
		if r.Intn(100) < 60 {
			author(b, r, c, address)
		}
		if r.Intn(100) < 45 && c.take() {
			b.Start("publisher")
			if c.take() {
				b.Elem("name_of_publisher", randText(r, 2))
			}
			if r.Intn(100) < 75 {
				address(true)
			}
			b.End()
		}
		if r.Intn(100) < 30 && c.take() {
			b.Elem("date_of_release", fmt.Sprintf("19%02d-0%d-1%d", r.Intn(100), 1+r.Intn(9), r.Intn(9)))
		}
		for _, extra := range []string{"isbn", "publication_type", "number_of_copies", "cost", "subject"} {
			if r.Intn(100) < 25 && c.take() {
				b.Elem(extra, randText(r, 1))
			}
		}
		b.End()
	}
	b.End()
	return b.Done()
}

func author(b *xmltree.Builder, r *rand.Rand, c *counter, address func(bool)) {
	if !c.take() {
		return
	}
	b.Start("author")
	if c.take() {
		b.Elem("first_name", randText(r, 1))
	}
	if c.take() {
		b.Elem("last_name", randText(r, 1))
	}
	if r.Intn(100) < 40 && c.take() {
		b.Elem("date_of_birth", fmt.Sprintf("19%02d", r.Intn(100)))
	}
	if r.Intn(100) < 55 {
		address(true)
	}
	if r.Intn(100) < 15 && c.take() {
		b.Elem("biography", randText(r, 6))
	}
	b.End()
}

// d4Rules drive the Treebank-like generator: weighted production rules
// mapping each nonterminal to its plausible children, so the grammar
// chains the Appendix-A d4 queries rely on (VP/VP, VP/NP, NP/PP, PP/PP,
// PP/IN, NP/NN) occur with realistic frequency. Terminal tags are
// leaves carrying a token of text.
var d4Rules = map[string][]weighted{
	"EMPTY": {{"S", 6}, {"VP", 2}, {"NP", 2}},
	"S":     {{"NP", 3}, {"VP", 4}, {"S", 1}, {"SBAR", 1}, {"PP", 1}, {"ADVP", 1}},
	"VP":    {{"VP", 3}, {"NP", 3}, {"PP", 2}, {"VB", 3}, {"MD", 1}, {"SBAR", 1}, {"ADVP", 1}, {"NN", 1}},
	"NP":    {{"NN", 4}, {"NP", 2}, {"PP", 2}, {"DT", 2}, {"JJ", 2}, {"PRP", 1}, {"SBAR", 1}, {"QP", 1}},
	"PP":    {{"IN", 3}, {"NP", 3}, {"PP", 2}, {"NN", 1}},
	"SBAR":  {{"IN", 2}, {"S", 3}, {"WHNP", 1}},
	"ADJP":  {{"JJ", 3}, {"RB", 1}},
	"ADVP":  {{"RB", 3}, {"JJ", 1}},
	"WHNP":  {{"PRP", 1}, {"NN", 2}, {"DT", 1}},
	"QP":    {{"CD", 3}, {"NN", 1}},
}

// d4Terminals are the leaf part-of-speech tags; a 4% long tail of
// numbered variants pads the alphabet toward Table 1's 250 tags.
var d4Terminals = map[string]bool{
	"NN": true, "IN": true, "JJ": true, "VB": true, "DT": true,
	"PRP": true, "RB": true, "CD": true, "MD": true, "NNS": true,
	"VBD": true, "VBZ": true, "TO": true, "NNP": true, "CC": true,
}

// d4 generates Treebank-like deep recursive parse trees: grammar-rule
// expansion with max depth 36, heavy recursion on VP/NP/PP and a long
// tail of annotated label variants.
func d4(r *rand.Rand, target int) (*xmltree.Document, error) {
	const maxDepth = 36
	b := xmltree.NewBuilder()
	c := &counter{left: target}

	var gen func(tag string, depth int)
	gen = func(tag string, depth int) {
		kids := 1 + r.Intn(3)
		rules := d4Rules[tag]
		for i := 0; i < kids && c.left > 0; i++ {
			child := pickWeighted(r, rules)
			if !c.take() {
				return
			}
			// Force leaves with probability growing in depth, so the
			// depth distribution matches Table 1 (average ≈8, long tail
			// to the 36 cap).
			if d4Terminals[child] || depth >= maxDepth-1 || r.Intn(100) < (depth-6)*4 {
				leaf := child
				if r.Intn(100) < 4 {
					leaf = fmt.Sprintf("%s_%03d", leaf, r.Intn(15))
				}
				b.Elem(leaf, randText(r, 1))
				continue
			}
			b.Start(child)
			gen(child, depth+1)
			b.End()
		}
	}

	c.take()
	b.Start("FILE")
	for c.left > 0 {
		if !c.take() {
			break
		}
		b.Start("EMPTY")
		gen("EMPTY", 3)
		b.End()
	}
	b.End()
	return b.Done()
}

// dblpEntryKinds and the per-entry fields give the 35-tag alphabet of
// Table 1's d5 and the selectivities of the Appendix-A d5 queries
// (phdthesis rare → high selectivity; proceedings/editor moderate; www
// moderate; author/title/year ubiquitous → low selectivity).
var dblpEntryKinds = []struct {
	tag    string
	weight int
}{
	{"article", 32},
	{"inproceedings", 38},
	{"proceedings", 8},
	{"book", 4},
	{"incollection", 5},
	{"phdthesis", 2},
	{"mastersthesis", 2},
	{"www", 9},
}

func d5(r *rand.Rand, target int) (*xmltree.Document, error) {
	totalWeight := 0
	for _, k := range dblpEntryKinds {
		totalWeight += k.weight
	}
	pick := func() string {
		w := r.Intn(totalWeight)
		for _, k := range dblpEntryKinds {
			if w < k.weight {
				return k.tag
			}
			w -= k.weight
		}
		return "article"
	}

	b := xmltree.NewBuilder()
	c := &counter{left: target}
	c.take()
	b.Start("dblp")
	for c.left > 0 {
		kind := pick()
		if !c.take() {
			break
		}
		b.Start(kind)
		nAuthors := 1 + r.Intn(3)
		if kind == "proceedings" {
			nAuthors = 0
		}
		for i := 0; i < nAuthors && c.left > 0; i++ {
			if c.take() {
				b.Elem("author", randText(r, 2))
			}
		}
		if c.take() {
			b.Elem("title", randText(r, 5))
		}
		if r.Intn(100) < 92 && c.take() {
			b.Elem("year", fmt.Sprintf("%d", 1970+r.Intn(35)))
		}
		switch kind {
		case "proceedings":
			if r.Intn(100) < 85 && c.take() {
				b.Elem("editor", randText(r, 2))
			}
			if r.Intn(100) < 60 && c.take() {
				b.Elem("publisher", randText(r, 2))
			}
			if r.Intn(100) < 55 && c.take() {
				b.Elem("isbn", fmt.Sprintf("%d", r.Int63n(1e10)))
			}
			if r.Intn(100) < 50 && c.take() {
				b.Elem("url", "db/conf/x"+randText(r, 1))
			}
		case "www":
			if r.Intn(100) < 80 && c.take() {
				b.Elem("url", "http://"+randText(r, 1)+".org")
			}
			if r.Intn(100) < 25 && c.take() {
				b.Elem("editor", randText(r, 2))
			}
			if r.Intn(100) < 15 && c.take() {
				b.Elem("note", randText(r, 3))
			}
		case "phdthesis", "mastersthesis":
			if r.Intn(100) < 90 && c.take() {
				b.Elem("school", randText(r, 2))
			}
			if r.Intn(100) < 30 && c.take() {
				b.Elem("url", "http://"+randText(r, 1)+".edu")
			}
		case "article":
			if c.take() {
				b.Elem("journal", randText(r, 2))
			}
			if r.Intn(100) < 70 && c.take() {
				b.Elem("volume", fmt.Sprintf("%d", 1+r.Intn(40)))
			}
			if r.Intn(100) < 75 && c.take() {
				b.Elem("pages", fmt.Sprintf("%d-%d", r.Intn(500), 500+r.Intn(500)))
			}
			if r.Intn(100) < 35 && c.take() {
				b.Elem("ee", "db/journals/"+randText(r, 1))
			}
		case "inproceedings":
			if c.take() {
				b.Elem("booktitle", randText(r, 2))
			}
			if r.Intn(100) < 70 && c.take() {
				b.Elem("pages", fmt.Sprintf("%d-%d", r.Intn(500), 500+r.Intn(500)))
			}
			if r.Intn(100) < 40 && c.take() {
				b.Elem("crossref", "conf/"+randText(r, 1))
			}
			if r.Intn(100) < 20 && c.take() {
				b.Elem("url", "db/conf/"+randText(r, 1))
			}
		case "book", "incollection":
			if r.Intn(100) < 60 && c.take() {
				b.Elem("publisher", randText(r, 2))
			}
			if r.Intn(100) < 30 && c.take() {
				b.Elem("isbn", fmt.Sprintf("%d", r.Int63n(1e10)))
			}
			if r.Intn(100) < 25 && c.take() {
				b.Elem("series", randText(r, 2))
			}
		}
		for _, extra := range []string{"month", "cdrom", "cite", "chapter", "number", "address"} {
			if r.Intn(100) < 4 && c.take() {
				b.Elem(extra, randText(r, 1))
			}
		}
		b.End()
	}
	b.End()
	return b.Done()
}
