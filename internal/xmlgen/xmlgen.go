// Package xmlgen generates the five datasets of the paper's evaluation
// (Table 1) as synthetic equivalents, plus random documents for
// property-based testing.
//
// The paper uses two synthetic XBench documents (address, catalog), one
// synthetic recursive-DTD document, and two real datasets (Treebank and
// DBLP from the UW XML repository). The real datasets are no longer
// reliably obtainable, so this package generates statistically matched
// substitutes tuned to the published Table 1 statistics — tag-alphabet
// size, average and maximum depth, recursion — which are the document
// properties the compared join algorithms are sensitive to. Sizes are
// scale-accurate: TargetNodes defaults to 1/40 of the paper's node counts
// so the full experiment grid runs in minutes; pass a larger value (e.g.
// via cmd/xmlgen -scale) for paper-scale files.
package xmlgen

import (
	"fmt"
	"math/rand"

	"blossomtree/internal/xmltree"
)

// Config controls dataset generation.
type Config struct {
	// Seed makes generation deterministic. The same (dataset, Seed,
	// TargetNodes) always yields the same document.
	Seed int64
	// TargetNodes is the approximate number of element nodes to generate;
	// 0 selects the dataset's default (paper count / 40).
	TargetNodes int
}

// Info describes one dataset of Table 1.
type Info struct {
	ID          string // "d1".."d5"
	Name        string
	Category    string // "synthetic" or "real"
	Recursive   bool
	PaperNodes  int    // node count reported in Table 1
	PaperSize   string // file size reported in Table 1
	PaperAvgDep int
	PaperMaxDep int
	PaperTags   int
	Description string
}

// Catalog lists the five datasets in paper order.
var Catalog = []Info{
	{
		ID: "d1", Name: "recursive-dtd", Category: "synthetic", Recursive: true,
		PaperNodes: 1_212_548, PaperSize: "69 MB", PaperAvgDep: 7, PaperMaxDep: 8, PaperTags: 8,
		Description: "synthetic document from a recursive DTD over the 8-tag alphabet a, b1..b4, c1..c3",
	},
	{
		ID: "d2", Name: "address", Category: "synthetic", Recursive: false,
		PaperNodes: 403_201, PaperSize: "17 MB", PaperAvgDep: 3, PaperMaxDep: 3, PaperTags: 7,
		Description: "XBench address: shallow, bushy, non-recursive",
	},
	{
		ID: "d3", Name: "catalog", Category: "synthetic", Recursive: false,
		PaperNodes: 620_604, PaperSize: "30 MB", PaperAvgDep: 5, PaperMaxDep: 8, PaperTags: 51,
		Description: "XBench catalog: moderate depth, 51 tags, non-recursive",
	},
	{
		ID: "d4", Name: "treebank", Category: "real", Recursive: true,
		PaperNodes: 2_437_666, PaperSize: "82 MB", PaperAvgDep: 8, PaperMaxDep: 36, PaperTags: 250,
		Description: "Treebank-like deep recursive parse trees (synthetic substitute)",
	},
	{
		ID: "d5", Name: "dblp", Category: "real", Recursive: false,
		PaperNodes: 3_332_130, PaperSize: "133 MB", PaperAvgDep: 3, PaperMaxDep: 6, PaperTags: 35,
		Description: "DBLP-like shallow bibliographic records (synthetic substitute)",
	},
}

// LookupInfo returns the catalog entry for a dataset ID.
func LookupInfo(id string) (Info, bool) {
	for _, in := range Catalog {
		if in.ID == id {
			return in, true
		}
	}
	return Info{}, false
}

// DefaultScaleDivisor is the factor by which default TargetNodes shrink
// the paper's node counts.
const DefaultScaleDivisor = 40

// Generate produces the named dataset ("d1".."d5").
func Generate(id string, cfg Config) (*xmltree.Document, error) {
	info, ok := LookupInfo(id)
	if !ok {
		return nil, fmt.Errorf("xmlgen: unknown dataset %q (want d1..d5)", id)
	}
	if cfg.TargetNodes <= 0 {
		cfg.TargetNodes = info.PaperNodes / DefaultScaleDivisor
	}
	r := rand.New(rand.NewSource(cfg.Seed*1469598103 + int64(len(id))))
	var doc *xmltree.Document
	var err error
	switch id {
	case "d1":
		doc, err = d1(r, cfg.TargetNodes)
	case "d2":
		doc, err = d2(r, cfg.TargetNodes)
	case "d3":
		doc, err = d3(r, cfg.TargetNodes)
	case "d4":
		doc, err = d4(r, cfg.TargetNodes)
	case "d5":
		doc, err = d5(r, cfg.TargetNodes)
	}
	if err != nil {
		return nil, fmt.Errorf("xmlgen: generating %s: %w", id, err)
	}
	doc.Name = id
	if doc.Bytes == 0 {
		doc.Bytes = estimateBytes(doc)
	}
	return doc, nil
}

// MustGenerate is Generate for known-good dataset IDs.
func MustGenerate(id string, cfg Config) *xmltree.Document {
	doc, err := Generate(id, cfg)
	if err != nil {
		panic(err)
	}
	return doc
}

// estimateBytes approximates the serialized size without serializing:
// tags appear twice plus angle brackets, text appears once.
func estimateBytes(doc *xmltree.Document) int64 {
	var total int64
	xmltree.Walk(doc.Root, func(n *xmltree.Node) bool {
		switch n.Kind {
		case xmltree.ElementNode:
			total += int64(2*len(n.Tag) + 5)
		case xmltree.TextNode:
			total += int64(len(n.Text))
		}
		return true
	})
	return total
}

// words is a tiny vocabulary for text content.
var words = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	"oscar", "papa", "quebec", "romeo", "sierra", "tango",
}

func randText(r *rand.Rand, maxWords int) string {
	n := 1 + r.Intn(maxWords)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += words[r.Intn(len(words))]
	}
	return s
}
