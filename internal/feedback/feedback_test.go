package feedback

import (
	"fmt"
	"sync"
	"testing"

	"blossomtree/internal/obs"
)

func testStore(cfg Config) (*Store, *obs.Registry) {
	reg := obs.NewRegistry()
	return NewStore(cfg, reg), reg
}

func obsOf(est float64, act int64) []OpObservation {
	return []OpObservation{{Key: "part", EstOut: est, Emitted: act, Scanned: act * 2}}
}

func TestObserveEWMAAndDrift(t *testing.T) {
	s, _ := testStore(Config{})
	// First observation seeds the EWMA; later ones converge on it.
	s.Observe("h", "TS", 0.010, obsOf(1000, 10))
	sum, ok := s.Lookup("h")
	if !ok {
		t.Fatal("hash not tracked")
	}
	if sum.N != 1 || sum.LatencyMS != 10 {
		t.Fatalf("after seed: n=%d lat=%.3fms, want n=1 lat=10ms", sum.N, sum.LatencyMS)
	}
	if got := sum.Ops[0].ActOut; got != 10 {
		t.Fatalf("seed act_out = %v, want 10", got)
	}
	if got := sum.Drift; got != 100 {
		t.Fatalf("drift = %v, want est/act = 1000/10 = 100", got)
	}

	// An accurate estimate keeps drift at the floor of 1 even when the
	// actual exceeds it slightly in the other direction.
	s.Observe("h2", "PL", 0.010, obsOf(10, 10))
	sum2, _ := s.Lookup("h2")
	if sum2.Drift != 1 {
		t.Fatalf("exact estimate drift = %v, want 1", sum2.Drift)
	}

	for i := 0; i < 50; i++ {
		s.Observe("h", "TS", 0.020, obsOf(1000, 10))
	}
	sum, _ = s.Lookup("h")
	if sum.LatencyMS < 19 || sum.LatencyMS > 20 {
		t.Fatalf("latency EWMA %.3fms did not converge on 20ms", sum.LatencyMS)
	}
	if len(sum.Ops[0].Ring) != DefaultRingSize {
		t.Fatalf("ring holds %d samples, want %d", len(sum.Ops[0].Ring), DefaultRingSize)
	}
}

func TestStoreBound(t *testing.T) {
	s, _ := testStore(Config{MaxQueries: 4})
	for i := 0; i < 10; i++ {
		s.Observe(fmt.Sprintf("h%d", i), "PL", 0.001, obsOf(1, 1))
	}
	if s.Len() != 4 {
		t.Fatalf("store holds %d hashes, want bound 4", s.Len())
	}
	// Least recently observed evicted: h0..h5 gone, h6..h9 kept.
	if _, ok := s.Lookup("h0"); ok {
		t.Error("h0 survived eviction")
	}
	if _, ok := s.Lookup("h9"); !ok {
		t.Error("h9 evicted despite being most recent")
	}
	// Re-observing an old hash moves it to the front.
	s.Observe("h6", "PL", 0.001, obsOf(1, 1))
	s.Observe("hNew", "PL", 0.001, obsOf(1, 1))
	if _, ok := s.Lookup("h6"); !ok {
		t.Error("h6 evicted right after being touched")
	}
}

func TestBeginReplanGates(t *testing.T) {
	s, reg := testStore(Config{DriftThreshold: 2, MinSamples: 4, RingSize: 2})

	// Not enough samples yet.
	for i := 0; i < 3; i++ {
		s.Observe("h", "TS", 0.010, obsOf(1000, 10))
	}
	if _, _, ok := s.BeginReplan("h"); ok {
		t.Fatal("replanned below MinSamples")
	}

	// Fourth sample crosses the gate; drift 100 >= 2 arms the replan.
	s.Observe("h", "TS", 0.010, obsOf(1000, 10))
	hints, drift, ok := s.BeginReplan("h")
	if !ok {
		t.Fatal("did not replan at MinSamples with 100x drift")
	}
	if drift != 100 {
		t.Fatalf("drift = %v, want 100", drift)
	}
	if got := hints["part"]; got != 10 {
		t.Fatalf("hint = %v, want observed EWMA 10", got)
	}
	if got := reg.Snapshot()[obs.MetricFeedbackReplans]; got != 1 {
		t.Fatalf("replans counter = %d, want 1", got)
	}

	// Re-arm guard: the next MinSamples-1 observations may not replan
	// again, even though drift persists.
	for i := 0; i < 3; i++ {
		s.Observe("h", "TS", 0.010, obsOf(1000, 10))
		if _, _, ok := s.BeginReplan("h"); ok {
			t.Fatalf("replanned again %d observations after the last replan", i+1)
		}
	}
	s.Observe("h", "TS", 0.010, obsOf(1000, 10))
	if _, _, ok := s.BeginReplan("h"); !ok {
		t.Fatal("re-arm guard still closed after MinSamples further observations")
	}

	// An undrifted hash never replans regardless of sample count.
	for i := 0; i < 10; i++ {
		s.Observe("flat", "PL", 0.010, obsOf(10, 10))
	}
	if _, _, ok := s.BeginReplan("flat"); ok {
		t.Fatal("replanned with drift 1")
	}
}

func TestWinLossJudgement(t *testing.T) {
	s, reg := testStore(Config{DriftThreshold: 2, MinSamples: 2, RingSize: 2})

	// Win: post-replan latency mean below the pre-replan EWMA.
	for i := 0; i < 2; i++ {
		s.Observe("win", "TS", 0.100, obsOf(1000, 10))
	}
	if _, _, ok := s.BeginReplan("win"); !ok {
		t.Fatal("win hash did not arm")
	}
	s.Observe("win", "NL", 0.010, obsOf(10, 10))
	if sum, _ := s.Lookup("win"); sum.Judged {
		t.Fatal("judged before RingSize post-replan samples")
	}
	s.Observe("win", "NL", 0.010, obsOf(10, 10))
	sum, _ := s.Lookup("win")
	if !sum.Judged || !sum.Won {
		t.Fatalf("want judged win, got %+v", sum)
	}

	// Loss: post-replan latency above the pre-replan EWMA.
	for i := 0; i < 2; i++ {
		s.Observe("loss", "TS", 0.010, obsOf(1000, 10))
	}
	if _, _, ok := s.BeginReplan("loss"); !ok {
		t.Fatal("loss hash did not arm")
	}
	s.Observe("loss", "NL", 0.100, obsOf(10, 10))
	s.Observe("loss", "NL", 0.100, obsOf(10, 10))
	sum, _ = s.Lookup("loss")
	if !sum.Judged || sum.Won {
		t.Fatalf("want judged loss, got %+v", sum)
	}

	snap := reg.Snapshot()
	if snap[obs.MetricFeedbackWins] != 1 || snap[obs.MetricFeedbackLosses] != 1 {
		t.Fatalf("counters wins=%d losses=%d, want 1/1", snap[obs.MetricFeedbackWins], snap[obs.MetricFeedbackLosses])
	}

	// Each replan is judged exactly once: further samples don't re-judge.
	s.Observe("loss", "NL", 0.100, obsOf(10, 10))
	if got := reg.Snapshot()[obs.MetricFeedbackLosses]; got != 1 {
		t.Fatalf("losses counter re-bumped to %d after judgement", got)
	}
}

// TestConcurrentObserve exercises the store's locking under -race:
// parallel observers, replanners and readers on overlapping hashes.
func TestConcurrentObserve(t *testing.T) {
	s, _ := testStore(Config{MinSamples: 2, DriftThreshold: 2, MaxQueries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hash := fmt.Sprintf("h%d", g%3)
			for i := 0; i < 200; i++ {
				s.Observe(hash, "TS", 0.001, obsOf(1000, 10))
				s.BeginReplan(hash)
				s.Lookup(hash)
				s.Summaries()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 3 {
		t.Fatalf("store holds %d hashes, want 3", s.Len())
	}
}
