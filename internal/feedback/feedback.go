// Package feedback closes the estimate→actual loop of the cost model
// (ROADMAP item 5): a concurrency-safe, bounded store of observed
// per-operator cardinalities and scan counts, keyed by (query hash,
// operator path). The telemetry boundary records every successful
// evaluation's actuals here; on a plan-cache hit the executor compares
// the cached template's estimates against this history and, when they
// diverge past a configurable ratio threshold, recompiles the template
// with history-corrected cardinalities (plan.Options.CardHints) and
// re-caches it — so cached plans get better as traffic repeats.
//
// The store is keyed by query hash only, deliberately ignoring the
// snapshot version that keys the plan cache: observed cardinalities are
// a property of the workload, not of one catalog snapshot, so history
// survives Engine.Add churn and warms replans across snapshot bumps.
//
// Each replan is judged exactly once: the pre-replan latency EWMA is
// snapshotted when the replan is armed, and after RingSize post-replan
// samples accumulate the mean is compared against it, bumping
// feedback_wins_total or feedback_losses_total.
package feedback

import (
	"container/list"
	"math"
	"sort"
	"sync"

	"blossomtree/internal/obs"
)

// Config bounds the store and tunes the replan trigger. The zero value
// of any field means "use the default".
type Config struct {
	// DriftThreshold is the est/act ratio (always ≥ 1; max of over- and
	// under-estimate directions) at or past which a cache hit replans.
	DriftThreshold float64
	// MinSamples gates replanning until the hash has at least this many
	// observations, and spaces consecutive replans of the same hash at
	// least MinSamples observations apart.
	MinSamples int64
	// RingSize is the length of the per-operator last-N observation ring
	// and the number of post-replan latency samples collected before a
	// replan is judged win or loss.
	RingSize int
	// MaxQueries bounds the number of query hashes tracked; least
	// recently observed hashes are evicted past it.
	MaxQueries int
}

// Defaults for Config fields left zero.
const (
	DefaultDriftThreshold = 2.0
	DefaultMinSamples     = 32
	DefaultRingSize       = 8
	DefaultMaxQueries     = 4096
)

func (c Config) withDefaults() Config {
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = DefaultDriftThreshold
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = DefaultMaxQueries
	}
	return c
}

// ewmaAlpha weights new observations; ~0.25 keeps roughly the last few
// samples dominant while still converging fast on a shifted workload.
const ewmaAlpha = 0.25

// OpObservation is one operator's est/act counters from a single
// successful evaluation, reported by the telemetry boundary.
type OpObservation struct {
	// Key is the operator's stable feedback key (obs.OpStats.FeedbackKey
	// — the NoK/twig root label the cost model's CardHints use).
	Key string
	// EstOut/EstNodes are the plan's estimates (negative = unknown).
	EstOut   float64
	EstNodes float64
	// Emitted/Scanned are the operator's actual counters.
	Emitted int64
	Scanned int64
}

// opHistory accumulates one (query hash, operator path) cell.
type opHistory struct {
	estOut   float64 // latest template estimate
	estNodes float64
	outEWMA  float64 // observed emitted, exponentially weighted
	scanEWMA float64 // observed scanned, exponentially weighted
	n        int64
	ring     []float64 // last-N observed emitted counts, oldest first
}

func (o *opHistory) observe(ob OpObservation, ringSize int) {
	if ob.EstOut >= 0 {
		o.estOut = ob.EstOut
	}
	if ob.EstNodes >= 0 {
		o.estNodes = ob.EstNodes
	}
	out, scan := float64(ob.Emitted), float64(ob.Scanned)
	if o.n == 0 {
		o.outEWMA, o.scanEWMA = out, scan
	} else {
		o.outEWMA += ewmaAlpha * (out - o.outEWMA)
		o.scanEWMA += ewmaAlpha * (scan - o.scanEWMA)
	}
	o.n++
	o.ring = append(o.ring, out)
	if len(o.ring) > ringSize {
		o.ring = o.ring[len(o.ring)-ringSize:]
	}
}

// drift is the larger of the over- and under-estimate ratios between
// the template's output estimate and the observed EWMA, with both
// floored at 1 so empty results don't divide by zero.
func (o *opHistory) drift() float64 {
	est := math.Max(o.estOut, 1)
	act := math.Max(o.outEWMA, 1)
	return math.Max(est/act, act/est)
}

// history is everything the store knows about one query hash.
type history struct {
	hash     string
	elem     *list.Element
	strategy string // strategy of the most recent observation
	n        int64
	latEWMA  float64 // seconds
	ops      map[string]*opHistory

	// Replan lifecycle: armed by BeginReplan, judged once after RingSize
	// post-replan latency samples.
	replanned    bool
	replans      int64
	lastReplanN  int64
	preReplanLat float64
	postN        int
	postSum      float64
	judged       bool
	won          bool
}

func (h *history) drift() float64 {
	d := 1.0
	for _, o := range h.ops {
		if od := o.drift(); od > d {
			d = od
		}
	}
	return d
}

// Store is the feedback store. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	cfg     Config
	entries map[string]*history
	order   *list.List // front = most recently observed
	reg     *obs.Registry
}

// NewStore returns an empty store reporting its counters into reg
// (obs.Default when nil).
func NewStore(cfg Config, reg *obs.Registry) *Store {
	if reg == nil {
		reg = obs.Default
	}
	s := &Store{
		cfg:     cfg.withDefaults(),
		entries: make(map[string]*history),
		order:   list.New(),
		reg:     reg,
	}
	// Pre-register the counters so expositions show explicit zeros
	// before the first replan (the plan cache does the same).
	reg.Add(obs.MetricFeedbackReplans, 0)
	reg.Add(obs.MetricFeedbackWins, 0)
	reg.Add(obs.MetricFeedbackLosses, 0)
	return s
}

// Shared is the process-wide store the engine's telemetry boundary and
// plan cache use, mirroring the process-wide plan cache.
var Shared = NewStore(Config{}, nil)

// SetConfig replaces the store's configuration (zero fields take
// defaults). Existing history is kept; only future decisions use the
// new thresholds.
func (s *Store) SetConfig(cfg Config) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg = cfg.withDefaults()
}

// ConfigSnapshot returns the active configuration.
func (s *Store) ConfigSnapshot() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// Reset drops all history (tests and benchmarks use this to isolate
// runs). Counters are process-lifetime and are not reset.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*history)
	s.order = list.New()
}

// Observe records one successful evaluation: per-operator est/act
// counters, the end-to-end latency in seconds, and the executed
// strategy. It also advances the win/loss judgement of a pending
// replan on this hash.
func (s *Store) Observe(hash, strategy string, latency float64, ops []OpObservation) {
	if hash == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.touch(hash)
	if h.n == 0 {
		h.latEWMA = latency
	} else {
		h.latEWMA += ewmaAlpha * (latency - h.latEWMA)
	}
	h.n++
	h.strategy = strategy
	for _, ob := range ops {
		if ob.Key == "" {
			continue
		}
		o, ok := h.ops[ob.Key]
		if !ok {
			o = &opHistory{estOut: -1, estNodes: -1}
			h.ops[ob.Key] = o
		}
		o.observe(ob, s.cfg.RingSize)
	}
	if h.replanned && !h.judged {
		h.postSum += latency
		h.postN++
		if h.postN >= s.cfg.RingSize {
			h.judged = true
			h.won = h.postSum/float64(h.postN) <= h.preReplanLat
			if h.won {
				s.reg.Add(obs.MetricFeedbackWins, 1)
			} else {
				s.reg.Add(obs.MetricFeedbackLosses, 1)
			}
		}
	}
}

// touch returns the hash's history, creating it and evicting the least
// recently observed entry past the bound. Caller holds s.mu.
func (s *Store) touch(hash string) *history {
	if h, ok := s.entries[hash]; ok {
		s.order.MoveToFront(h.elem)
		return h
	}
	h := &history{hash: hash, ops: make(map[string]*opHistory)}
	h.elem = s.order.PushFront(h)
	s.entries[hash] = h
	for len(s.entries) > s.cfg.MaxQueries {
		oldest := s.order.Back()
		old := oldest.Value.(*history)
		s.order.Remove(oldest)
		delete(s.entries, old.hash)
	}
	return h
}

// BeginReplan atomically checks whether the hash's history justifies a
// replan and, if so, arms the replan lifecycle and returns
// history-corrected cardinality hints (operator key → observed output
// EWMA, floored at 1) for plan.Options.CardHints. The check-and-arm is
// one critical section so concurrent cache hits on the same hash arm at
// most one replan.
//
// A replan fires when the hash has at least MinSamples observations,
// its max operator drift is at or past DriftThreshold, and at least
// MinSamples observations have landed since the previous replan (the
// re-arm guard that keeps a noisy query from replanning every hit).
func (s *Store) BeginReplan(hash string) (map[string]float64, float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.entries[hash]
	if !ok || h.n < s.cfg.MinSamples || h.n < h.lastReplanN+s.cfg.MinSamples {
		return nil, 0, false
	}
	drift := h.drift()
	if drift < s.cfg.DriftThreshold {
		return nil, 0, false
	}
	hints := make(map[string]float64, len(h.ops))
	for key, o := range h.ops {
		hints[key] = math.Max(o.outEWMA, 1)
	}
	h.lastReplanN = h.n
	h.replans++
	h.replanned = true
	h.preReplanLat = h.latEWMA
	h.postN, h.postSum, h.judged, h.won = 0, 0, false, false
	s.reg.Add(obs.MetricFeedbackReplans, 1)
	return hints, drift, true
}

// OpSummary is one operator cell of a Summary.
type OpSummary struct {
	Key      string    `json:"key"`
	EstOut   float64   `json:"est_out"`
	ActOut   float64   `json:"act_out"`
	EstNodes float64   `json:"est_nodes"`
	ActScan  float64   `json:"act_scan"`
	Drift    float64   `json:"drift"`
	N        int64     `json:"n"`
	Ring     []float64 `json:"last_out"`
}

// Summary is the exported view of one query hash's history, the shape
// GET /feedback and blossom -feedback render.
type Summary struct {
	Hash      string      `json:"hash"`
	Strategy  string      `json:"strategy"`
	N         int64       `json:"n"`
	LatencyMS float64     `json:"latency_ewma_ms"`
	Drift     float64     `json:"drift"`
	Replanned bool        `json:"replanned"`
	Replans   int64       `json:"replans,omitempty"`
	Judged    bool        `json:"judged,omitempty"`
	Won       bool        `json:"won,omitempty"`
	Ops       []OpSummary `json:"ops"`
}

func (h *history) summary() Summary {
	sum := Summary{
		Hash:      h.hash,
		Strategy:  h.strategy,
		N:         h.n,
		LatencyMS: h.latEWMA * 1e3,
		Drift:     h.drift(),
		Replanned: h.replanned,
		Replans:   h.replans,
		Judged:    h.judged,
		Won:       h.won,
	}
	for key, o := range h.ops {
		sum.Ops = append(sum.Ops, OpSummary{
			Key:      key,
			EstOut:   o.estOut,
			ActOut:   o.outEWMA,
			EstNodes: o.estNodes,
			ActScan:  o.scanEWMA,
			Drift:    o.drift(),
			N:        o.n,
			Ring:     append([]float64(nil), o.ring...),
		})
	}
	sort.Slice(sum.Ops, func(i, j int) bool { return sum.Ops[i].Key < sum.Ops[j].Key })
	return sum
}

// Lookup returns the summary for one query hash.
func (s *Store) Lookup(hash string) (Summary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.entries[hash]
	if !ok {
		return Summary{}, false
	}
	return h.summary(), true
}

// Summaries returns every tracked hash's summary, most-observed first
// (hash as tiebreak, so output is deterministic).
func (s *Store) Summaries() []Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Summary, 0, len(s.entries))
	for _, h := range s.entries {
		out = append(out, h.summary())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// Len returns the number of tracked query hashes.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
