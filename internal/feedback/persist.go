package feedback

import (
	"container/list"
	"encoding/json"
	"fmt"
)

// The persisted forms mirror the in-memory history cells field for
// field, so a daemon restart restores the estimate→actual loop exactly
// where it left off: EWMAs keep converging instead of restarting cold,
// armed replans keep their pending judgement, and the MinSamples gate
// doesn't re-open on queries that already earned a replan.

type persistedOp struct {
	EstOut   float64   `json:"est_out"`
	EstNodes float64   `json:"est_nodes"`
	OutEWMA  float64   `json:"out_ewma"`
	ScanEWMA float64   `json:"scan_ewma"`
	N        int64     `json:"n"`
	Ring     []float64 `json:"ring,omitempty"`
}

type persistedHistory struct {
	Hash     string                 `json:"hash"`
	Strategy string                 `json:"strategy,omitempty"`
	N        int64                  `json:"n"`
	LatEWMA  float64                `json:"lat_ewma"`
	Ops      map[string]persistedOp `json:"ops,omitempty"`

	Replanned    bool    `json:"replanned,omitempty"`
	Replans      int64   `json:"replans,omitempty"`
	LastReplanN  int64   `json:"last_replan_n,omitempty"`
	PreReplanLat float64 `json:"pre_replan_lat,omitempty"`
	PostN        int     `json:"post_n,omitempty"`
	PostSum      float64 `json:"post_sum,omitempty"`
	Judged       bool    `json:"judged,omitempty"`
	Won          bool    `json:"won,omitempty"`
}

type persistedStore struct {
	Version int `json:"version"`
	// Entries are in recency order, most recently observed first, so a
	// restored store evicts in the same order the live one would have.
	Entries []persistedHistory `json:"entries"`
}

const persistVersion = 1

// Export serializes the store's full history as JSON (the segment
// store's feedback.json payload).
func (s *Store) Export() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := persistedStore{Version: persistVersion}
	for el := s.order.Front(); el != nil; el = el.Next() {
		h := el.Value.(*history)
		ph := persistedHistory{
			Hash: h.hash, Strategy: h.strategy, N: h.n, LatEWMA: h.latEWMA,
			Replanned: h.replanned, Replans: h.replans, LastReplanN: h.lastReplanN,
			PreReplanLat: h.preReplanLat, PostN: h.postN, PostSum: h.postSum,
			Judged: h.judged, Won: h.won,
		}
		if len(h.ops) > 0 {
			ph.Ops = make(map[string]persistedOp, len(h.ops))
			for key, o := range h.ops {
				ph.Ops[key] = persistedOp{
					EstOut: o.estOut, EstNodes: o.estNodes,
					OutEWMA: o.outEWMA, ScanEWMA: o.scanEWMA,
					N: o.n, Ring: append([]float64(nil), o.ring...),
				}
			}
		}
		p.Entries = append(p.Entries, ph)
	}
	return json.MarshalIndent(p, "", " ")
}

// Import replaces the store's history with a previously Exported
// snapshot. Entries past the MaxQueries bound are dropped from the
// least-recent end, as live eviction would have done.
func (s *Store) Import(data []byte) error {
	var p persistedStore
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("feedback: import: %w", err)
	}
	if p.Version != persistVersion {
		return fmt.Errorf("feedback: import: unsupported version %d", p.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*history, len(p.Entries))
	s.order = list.New()
	for _, ph := range p.Entries {
		if ph.Hash == "" || len(s.entries) >= s.cfg.MaxQueries {
			continue
		}
		if _, dup := s.entries[ph.Hash]; dup {
			continue
		}
		h := &history{
			hash: ph.Hash, strategy: ph.Strategy, n: ph.N, latEWMA: ph.LatEWMA,
			ops:       make(map[string]*opHistory, len(ph.Ops)),
			replanned: ph.Replanned, replans: ph.Replans, lastReplanN: ph.LastReplanN,
			preReplanLat: ph.PreReplanLat, postN: ph.PostN, postSum: ph.PostSum,
			judged: ph.Judged, won: ph.Won,
		}
		for key, po := range ph.Ops {
			ring := po.Ring
			if len(ring) > s.cfg.RingSize {
				ring = ring[len(ring)-s.cfg.RingSize:]
			}
			h.ops[key] = &opHistory{
				estOut: po.EstOut, estNodes: po.EstNodes,
				outEWMA: po.OutEWMA, scanEWMA: po.ScanEWMA,
				n: po.N, ring: append([]float64(nil), ring...),
			}
		}
		// Entries arrive most-recent first; PushBack reproduces the order.
		h.elem = s.order.PushBack(h)
		s.entries[ph.Hash] = h
	}
	return nil
}
