// Package index implements the tag-name indexes the join-based operators
// depend on: per-tag inverted lists of element nodes in document order,
// plus stream cursors over them. In the paper's terms these are the input
// streams of TwigStack and of the stack-based binary structural join, and
// the source of tag-frequency selectivity estimates for the optimizer.
package index

import (
	"sort"
	"sync"

	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/obs"
	"blossomtree/internal/xmltree"
)

// TagIndex maps each element tag to its occurrences in document order.
type TagIndex struct {
	doc      *xmltree.Document
	lists    map[string][]*xmltree.Node
	elements []*xmltree.Node // all elements in document order

	// Columnar projections of the inverted lists, built lazily per tag
	// and cached for the index's lifetime (documents are immutable once
	// indexed). colMu only guards cache population; a cached ColumnSet
	// itself is immutable and shared.
	colMu sync.Mutex
	cols  map[string]*ColumnSet
}

// ColumnSet is the flat columnar form of one inverted list: the region
// labels (start, end, level) of the tag's elements as parallel []uint32
// columns in document order, plus the node pointers for materializing
// results. This is the Figure-6 compact layout projected per tag — the
// input format of the vectorized executor, which streams fixed-size
// batches of these triples through branch-light column loops.
//
// The uint32 narrowing is safe: region labels are preorder ranks,
// non-negative for every element (only the artificial document node
// carries Start -1, and it never appears in an inverted list).
type ColumnSet struct {
	Start, End, Level []uint32
	Nodes             []*xmltree.Node

	// backing pins whatever memory the columns alias — the segment
	// store's mmap'd file region. The columns of a set built from an
	// in-heap document are ordinary GC-managed slices and backing is
	// nil; a set served zero-copy off a mapped segment holds the
	// mapping here so the file stays mapped for the set's lifetime
	// (mapped memory is invisible to the garbage collector, so the
	// slices alone would not keep it alive).
	backing any
}

// NewColumnSet wraps pre-built columns (for the segment store's
// zero-copy open path). backing, when non-nil, is retained for the
// set's lifetime to keep memory the columns alias (an mmap'd segment)
// valid. The columns must be parallel, in document order, and aligned
// with nodes.
func NewColumnSet(start, end, level []uint32, nodes []*xmltree.Node, backing any) *ColumnSet {
	return &ColumnSet{Start: start, End: end, Level: level, Nodes: nodes, backing: backing}
}

// Len returns the number of rows in the column set.
func (cs *ColumnSet) Len() int { return len(cs.Start) }

// Columns returns the cached columnar projection of the tag's inverted
// list, building it on first use. The wildcard "*" (or "") projects all
// elements. Safe for concurrent use; the returned set is immutable.
func (ix *TagIndex) Columns(tag string) *ColumnSet {
	if tag == "" {
		tag = "*"
	}
	ix.colMu.Lock()
	defer ix.colMu.Unlock()
	if cs, ok := ix.cols[tag]; ok {
		return cs
	}
	nodes := ix.Nodes(tag)
	cs := &ColumnSet{
		Start: make([]uint32, len(nodes)),
		End:   make([]uint32, len(nodes)),
		Level: make([]uint32, len(nodes)),
		Nodes: nodes,
	}
	for i, n := range nodes {
		cs.Start[i] = uint32(n.Start)
		cs.End[i] = uint32(n.End)
		cs.Level[i] = uint32(n.Level)
	}
	if ix.cols == nil {
		ix.cols = make(map[string]*ColumnSet)
	}
	ix.cols[tag] = cs
	return cs
}

// Build scans the document once and constructs the index.
func Build(doc *xmltree.Document) *TagIndex {
	ix := &TagIndex{
		doc:   doc,
		lists: make(map[string][]*xmltree.Node),
	}
	xmltree.Elements(doc.Root, func(n *xmltree.Node) {
		ix.lists[n.Tag] = append(ix.lists[n.Tag], n)
		ix.elements = append(ix.elements, n)
	})
	return ix
}

// FromColumns constructs a TagIndex from pre-built inverted lists and
// columnar projections — the segment store's open path, which serves
// the per-tag posting lists recorded in a segment file instead of
// re-walking the document. lists must hold every tag's elements in
// document order and elements the all-elements list (the "*" wildcard);
// cols may pre-populate any subset of tags (including "*"), typically
// with mmap-backed column sets — tags without a pre-built set fall back
// to the usual lazy heap build.
func FromColumns(doc *xmltree.Document, elements []*xmltree.Node, lists map[string][]*xmltree.Node, cols map[string]*ColumnSet) *TagIndex {
	return &TagIndex{doc: doc, lists: lists, elements: elements, cols: cols}
}

// Document returns the indexed document.
func (ix *TagIndex) Document() *xmltree.Document { return ix.doc }

// Nodes returns the document-ordered list of elements with the given tag.
// The wildcard "*" (or "") returns all elements. The returned slice is
// shared; callers must not modify it.
func (ix *TagIndex) Nodes(tag string) []*xmltree.Node {
	if tag == "*" || tag == "" {
		return ix.elements
	}
	return ix.lists[tag]
}

// Count returns the number of elements with the given tag.
func (ix *TagIndex) Count(tag string) int { return len(ix.Nodes(tag)) }

// TotalElements returns the number of elements in the document.
func (ix *TagIndex) TotalElements() int { return len(ix.elements) }

// Tags returns the sorted tag alphabet.
func (ix *TagIndex) Tags() []string {
	out := make([]string, 0, len(ix.lists))
	for t := range ix.lists {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Selectivity returns the fraction of elements carrying the given tag,
// the quantity the paper's query categories (high ≈ 1%, moderate ≈ 10%,
// low ≈ 50%) are defined over.
func (ix *TagIndex) Selectivity(tag string) float64 {
	if len(ix.elements) == 0 {
		return 0
	}
	return float64(ix.Count(tag)) / float64(len(ix.elements))
}

// Stream is a forward cursor over a document-ordered node list, the input
// abstraction of the holistic join algorithms.
type Stream struct {
	nodes []*xmltree.Node
	pos   int

	// Stats, when non-nil, counts every cursor advance (including the
	// positions a SkipTo jumps over) as scanned nodes.
	Stats *obs.OpStats
	// Gov, when non-nil, charges every cursor advance against the
	// query's node budget. Advance cannot return an error, so a
	// violation only becomes sticky in the governor; the consuming
	// operator (TwigStack) observes it at its next poll and aborts.
	Gov *gov.Governor
}

// NewStream returns a cursor over nodes, which must be in document order.
func NewStream(nodes []*xmltree.Node) *Stream { return &Stream{nodes: nodes} }

// Stream returns a fresh cursor over the tag's inverted list.
func (ix *TagIndex) Stream(tag string) *Stream { return NewStream(ix.Nodes(tag)) }

// EOF reports whether the stream is exhausted.
func (s *Stream) EOF() bool { return s.pos >= len(s.nodes) }

// Head returns the current node without advancing, or nil at EOF.
func (s *Stream) Head() *xmltree.Node {
	if s.EOF() {
		return nil
	}
	return s.nodes[s.pos]
}

// Advance moves past the current node.
func (s *Stream) Advance() {
	if s.pos < len(s.nodes) {
		s.pos++
		s.Stats.AddScanned(1)
		_ = s.Gov.Scanned(fault.SiteIndexStream, 1)
	}
}

// Next returns the current node and advances, or nil at EOF.
func (s *Stream) Next() *xmltree.Node {
	n := s.Head()
	s.Advance()
	return n
}

// Len returns the number of nodes remaining.
func (s *Stream) Len() int { return len(s.nodes) - s.pos }

// Reset rewinds the stream to its beginning.
func (s *Stream) Reset() { s.pos = 0 }

// SkipTo advances the stream until Head().Start >= start or EOF, using
// binary search. It never moves backwards.
func (s *Stream) SkipTo(start int) {
	if s.EOF() || s.nodes[s.pos].Start >= start {
		return
	}
	lo, hi := s.pos+1, len(s.nodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.nodes[mid].Start < start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.Stats.AddScanned(int64(lo - s.pos))
	_ = s.Gov.Scanned(fault.SiteIndexStream, int64(lo-s.pos))
	s.pos = lo
}
