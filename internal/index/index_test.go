package index

import (
	"testing"

	"blossomtree/internal/xmltree"
)

func buildDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(`<a><b/><c><b/><d>t</d></c><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestBuildAndLookup(t *testing.T) {
	ix := Build(buildDoc(t))
	if got := ix.Count("b"); got != 3 {
		t.Errorf("Count(b) = %d, want 3", got)
	}
	if got := ix.Count("a"); got != 1 {
		t.Errorf("Count(a) = %d, want 1", got)
	}
	if got := ix.Count("zzz"); got != 0 {
		t.Errorf("Count(zzz) = %d, want 0", got)
	}
	if got := ix.TotalElements(); got != 6 {
		t.Errorf("TotalElements = %d, want 6", got)
	}
	if got := len(ix.Nodes("*")); got != 6 {
		t.Errorf("Nodes(*) = %d, want 6", got)
	}
	bs := ix.Nodes("b")
	for i := 1; i < len(bs); i++ {
		if !bs[i-1].Before(bs[i]) {
			t.Error("inverted list not in document order")
		}
	}
	tags := ix.Tags()
	want := []string{"a", "b", "c", "d"}
	if len(tags) != len(want) {
		t.Fatalf("Tags = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("Tags[%d] = %q, want %q", i, tags[i], want[i])
		}
	}
	if s := ix.Selectivity("b"); s != 0.5 {
		t.Errorf("Selectivity(b) = %v, want 0.5", s)
	}
	if ix.Document() == nil {
		t.Error("Document() is nil")
	}
}

func TestSelectivityEmpty(t *testing.T) {
	ix := &TagIndex{lists: map[string][]*xmltree.Node{}}
	if s := ix.Selectivity("x"); s != 0 {
		t.Errorf("Selectivity on empty index = %v", s)
	}
}

func TestStream(t *testing.T) {
	ix := Build(buildDoc(t))
	s := ix.Stream("b")
	if s.Len() != 3 || s.EOF() {
		t.Fatalf("fresh stream: Len=%d EOF=%v", s.Len(), s.EOF())
	}
	first := s.Head()
	if first == nil || first.Tag != "b" {
		t.Fatalf("Head = %v", first)
	}
	if got := s.Next(); got != first {
		t.Error("Next did not return head")
	}
	s.Advance()
	s.Advance()
	if !s.EOF() || s.Head() != nil || s.Next() != nil {
		t.Error("stream should be exhausted")
	}
	s.Advance() // no-op past EOF
	if s.Len() != 0 {
		t.Errorf("Len past EOF = %d", s.Len())
	}
	s.Reset()
	if s.Head() != first {
		t.Error("Reset did not rewind")
	}
}

func TestStreamSkipTo(t *testing.T) {
	ix := Build(buildDoc(t))
	s := ix.Stream("b")
	b3 := ix.Nodes("b")[2]
	s.SkipTo(b3.Start)
	if s.Head() != b3 {
		t.Errorf("SkipTo landed on %v, want %v", s.Head(), b3)
	}
	// SkipTo never moves backwards.
	s.SkipTo(0)
	if s.Head() != b3 {
		t.Error("SkipTo moved backwards")
	}
	s.SkipTo(b3.Start + 1000)
	if !s.EOF() {
		t.Error("SkipTo past end should exhaust stream")
	}
	s.SkipTo(0) // no-op at EOF
	if !s.EOF() {
		t.Error("SkipTo at EOF should stay EOF")
	}
}
