package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blossomtree"
	"blossomtree/internal/fault"
	"blossomtree/internal/feedback"
	"blossomtree/internal/obs"
	"blossomtree/internal/shard"
)

const bib = `<bib>
<book year="1994"><title>Maximum Security</title><price>39</price></book>
<book year="1997"><title>The Art of Computer Programming</title>
 <author><last>Knuth</last><first>Donald</first></author><price>120</price></book>
<book year="2003"><title>Terrorist Hunter</title><price>25</price></book>
<book year="1984"><title>TeX Book</title>
 <author><last>Knuth</last><first>Donald</first></author><price>30</price></book>
</bib>`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	e := blossomtree.NewEngine()
	if err := e.LoadString("bib.xml", bib); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Engine: e, MaxRequestTimeout: 5 * time.Second}))
	t.Cleanup(ts.Close)
	return ts
}

func postQuery(t *testing.T, ts *httptest.Server, req QueryRequest) (int, QueryResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpRes, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	var res QueryResponse
	if err := json.NewDecoder(httpRes.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return httpRes.StatusCode, res
}

func TestQueryEndpoint(t *testing.T) {
	ts := newTestServer(t)
	status, res := postQuery(t, ts, QueryRequest{Query: `//book[price<50]/title`, Explain: true})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %+v", status, res)
	}
	if res.Count != 3 || len(res.Nodes) != 3 {
		t.Errorf("count = %d, nodes = %d, want 3", res.Count, len(res.Nodes))
	}
	if res.QueryID == "" || res.TraceURL != "/trace/"+res.QueryID {
		t.Errorf("query_id = %q, trace_url = %q", res.QueryID, res.TraceURL)
	}
	if res.Verdict != "ok" || res.Error != "" {
		t.Errorf("verdict = %q, error = %q", res.Verdict, res.Error)
	}
	if res.Strategy == "" || strings.Contains(res.Strategy, "\n") {
		t.Errorf("strategy = %q, want a single-line strategy name", res.Strategy)
	}
	if res.Explain == "" {
		t.Error("explain requested but missing")
	}
}

func TestQueryEndpointFLWOR(t *testing.T) {
	ts := newTestServer(t)
	status, res := postQuery(t, ts, QueryRequest{Query: `for $b in doc("bib.xml")//book
		where $b/price < 50 return $b/title`})
	if status != http.StatusOK || res.Count != 3 {
		t.Fatalf("status = %d, count = %d, want 200/3", status, res.Count)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}
	if !strings.Contains(res.Rows[0]["b"], "<title>") {
		t.Errorf("row binding = %v", res.Rows[0])
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := newTestServer(t)

	status, res := postQuery(t, ts, QueryRequest{Query: `//book[`})
	if status != http.StatusUnprocessableEntity || res.Error == "" || res.Verdict != "error" {
		t.Errorf("parse error: status = %d, %+v", status, res)
	}
	// A failed query is still attributable: it has an ID and a trace URL.
	if res.QueryID == "" {
		t.Error("failed query should carry a query ID")
	}

	status, res = postQuery(t, ts, QueryRequest{Query: ``})
	if status != http.StatusBadRequest {
		t.Errorf("missing query: status = %d", status)
	}

	httpRes, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	httpRes.Body.Close()
	if httpRes.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status = %d", httpRes.StatusCode)
	}

	// A budget the query cannot fit in maps to 408 with the governance
	// verdict.
	status, res = postQuery(t, ts, QueryRequest{Query: `//book//last`, MaxNodes: 1})
	if status != http.StatusRequestTimeout || res.Verdict != "budget_exceeded" {
		t.Errorf("budget abort: status = %d, %+v", status, res)
	}
}

// TestQueryEndpointShed: a tenant over its quota is refused with 429, a
// Retry-After hint in both header and body, and a "shed" verdict.
func TestQueryEndpointShed(t *testing.T) {
	e := blossomtree.NewEngine()
	if err := e.LoadString("bib.xml", bib); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{
		Engine:    e,
		Admission: shard.NewAdmission(shard.AdmissionConfig{TenantQPS: 0.001, TenantBurst: 1}),
	}))
	defer ts.Close()

	// First query spends the tenant's only token; the second sheds.
	if status, res := postQuery(t, ts, QueryRequest{Query: `//book/title`}); status != http.StatusOK {
		t.Fatalf("first query status = %d, body %+v", status, res)
	}
	body, _ := json.Marshal(QueryRequest{Query: `//book/title`})
	httpRes, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	if httpRes.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query status = %d, want 429", httpRes.StatusCode)
	}
	if ra := httpRes.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive whole-second hint", ra)
	}
	var res QueryResponse
	if err := json.NewDecoder(httpRes.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != "shed" || res.Error == "" || res.RetryAfterMS <= 0 {
		t.Errorf("shed response = %+v", res)
	}
	if res.QueryID == "" {
		t.Error("shed query should still carry a query ID")
	}
}

// TestQueryEndpointInjectedShed: a deterministic shard.admission fault
// sheds exactly the k-th admission decision.
func TestQueryEndpointInjectedShed(t *testing.T) {
	e := blossomtree.NewEngine()
	if err := e.LoadString("bib.xml", bib); err != nil {
		t.Fatal(err)
	}
	inj := fault.New().FailAt(fault.SiteShardAdmission, 2, nil)
	ts := httptest.NewServer(New(Config{
		Engine:    e,
		Admission: shard.NewAdmission(shard.AdmissionConfig{Fault: inj}),
	}))
	defer ts.Close()

	if status, _ := postQuery(t, ts, QueryRequest{Query: `//book/title`}); status != http.StatusOK {
		t.Fatalf("first query status = %d, want 200", status)
	}
	status, res := postQuery(t, ts, QueryRequest{Query: `//book/title`})
	if status != http.StatusTooManyRequests || res.Verdict != "shed" {
		t.Errorf("injected shed: status = %d, %+v", status, res)
	}
	if status, _ := postQuery(t, ts, QueryRequest{Query: `//book/title`}); status != http.StatusOK {
		t.Errorf("third query status = %d, want 200 (fault fires once)", status)
	}
}

// TestQueryEndpointClientCanceled: a request whose own context is gone
// answers 499 (client closed request), distinct from the 408 budget
// abort — load balancers must not count client disconnects as server
// timeouts.
func TestQueryEndpointClientCanceled(t *testing.T) {
	e := blossomtree.NewEngine()
	if err := e.LoadString("bib.xml", bib); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Engine: e})
	body, _ := json.Marshal(QueryRequest{Query: `//book/title`})
	req := httptest.NewRequest("POST", "/query", bytes.NewReader(body))
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("canceled request status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	var res QueryResponse
	if err := json.NewDecoder(rec.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != "canceled" || res.Error == "" {
		t.Errorf("canceled response = %+v", res)
	}
}

// TestQueryEndpointAllDocuments: the scatter-gather form returns the
// merged per-document results of a sharded daemon in URI order.
func TestQueryEndpointAllDocuments(t *testing.T) {
	e := blossomtree.NewEngineSharded(3)
	for uri, doc := range map[string]string{
		"a.xml": `<bib><book><title>A</title><price>10</price></book></bib>`,
		"b.xml": `<bib><book><title>B</title><price>20</price></book></bib>`,
		"c.xml": `<bib><book><title>C</title><price>30</price></book></bib>`,
	} {
		if err := e.LoadString(uri, doc); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(Config{Engine: e}))
	defer ts.Close()

	status, res := postQuery(t, ts, QueryRequest{Query: `//book/title`, AllDocuments: true})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %+v", status, res)
	}
	if res.Count != 3 || len(res.Nodes) != 3 {
		t.Fatalf("count = %d, nodes = %v, want 3 titles", res.Count, res.Nodes)
	}
	// URI-ordered gather: a.xml, b.xml, c.xml.
	for i, want := range []string{"<title>A</title>", "<title>B</title>", "<title>C</title>"} {
		if res.Nodes[i] != want {
			t.Errorf("nodes[%d] = %q, want %q", i, res.Nodes[i], want)
		}
	}
	if res.Degraded != nil {
		t.Errorf("healthy gather reported degraded: %+v", res.Degraded)
	}
	if res.Strategy != "scatter" {
		t.Errorf("strategy = %q, want scatter", res.Strategy)
	}
}

// served from the plan cache and says so in its response.
func TestQueryEndpointWarmCache(t *testing.T) {
	ts := newTestServer(t)
	req := QueryRequest{Query: `//book[author/last="Knuth"]/title`}
	status, res := postQuery(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("first query status = %d, body %+v", status, res)
	}
	cold := res
	status, res = postQuery(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("second query status = %d, body %+v", status, res)
	}
	if !res.Cached {
		t.Error("repeated identical query did not report cached: true")
	}
	if res.Count != cold.Count || len(res.Nodes) != len(cold.Nodes) {
		t.Errorf("cached response diverges: count %d vs %d", res.Count, cold.Count)
	}
	if res.Strategy != cold.Strategy {
		t.Errorf("cached strategy %q differs from cold %q", res.Strategy, cold.Strategy)
	}
}

// TestQueryEndpointNewSurface round-trips one query per newly supported
// construct — core functions, attribute value tests, upward axes,
// positional predicates and positional variables — through POST /query,
// and repeats each to pin that the routing decision (planned, residual
// or navigational fallback) is served from the plan cache.
func TestQueryEndpointNewSurface(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name, query string
		count       int
	}{
		{"contains", `//book[contains(title, "Art")]`, 1},
		{"starts-with", `//book[starts-with(@year, "19")]`, 3},
		{"count", `//book[count(author) = 1]`, 2},
		{"sum", `//book[sum(price) >= 100]`, 1},
		{"number", `for $b in doc("bib.xml")//book where number($b/price) < 40 return $b`, 3},
		{"name", `//book[name() = "book"]`, 4},
		{"string-join", `for $b in doc("bib.xml")//book where string-join($b/author/last, "-") = "Knuth" return $b`, 2},
		{"attr-test", `//book[@year="1994"]/title`, 1},
		{"attr-value", `//book/@year`, 4},
		{"parent", `//title/parent::book`, 4},
		{"parent-rewrite", `//book/title/..`, 4},
		{"ancestor", `//last/ancestor::book`, 2},
		{"positional-pred", `//book[2]`, 1},
		{"positional-var", `for $b at $i in doc("bib.xml")//book where $i <= 2 return $b`, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, cold := postQuery(t, ts, QueryRequest{Query: tc.query, Explain: true})
			if status != http.StatusOK {
				t.Fatalf("status = %d, body %+v", status, cold)
			}
			if cold.Count != tc.count {
				t.Errorf("count = %d, want %d", cold.Count, tc.count)
			}
			if cold.Explain == "" {
				t.Error("explain missing from response")
			}
			status, warm := postQuery(t, ts, QueryRequest{Query: tc.query})
			if status != http.StatusOK {
				t.Fatalf("warm status = %d, body %+v", status, warm)
			}
			if !warm.Cached {
				t.Error("repeated query did not report cached: true")
			}
			if warm.Count != cold.Count {
				t.Errorf("warm count %d diverges from cold %d", warm.Count, cold.Count)
			}
		})
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// At least one evaluation so the latency histogram is non-empty.
	if status, _ := postQuery(t, ts, QueryRequest{Query: `//book/title`}); status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	httpRes, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	if ct := httpRes.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	b, err := io.ReadAll(httpRes.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		"# TYPE blossomtree_query_duration_seconds histogram",
		`blossomtree_query_duration_seconds_bucket{le="+Inf"}`,
		"blossomtree_queries_total",
		"blossomtree_plan_cache_hits",
		"blossomtree_plan_cache_misses",
		"blossomtree_plan_cache_evictions",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// The histogram must have recorded the query above (obs.Default is
	// process-wide, so assert non-zero rather than an exact count).
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "blossomtree_query_duration_seconds_count") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("latency histogram empty after a query: %s", line)
			}
			return
		}
	}
	t.Error("no query_duration_seconds_count line in exposition")
}

func TestTraceEndpointMatchesExplain(t *testing.T) {
	ts := newTestServer(t)
	status, res := postQuery(t, ts, QueryRequest{Query: `//book//last`, Analyze: true, Explain: true})
	if status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	httpRes, err := http.Get(ts.URL + res.TraceURL)
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	if httpRes.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", httpRes.StatusCode)
	}
	if ct := httpRes.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.NewDecoder(httpRes.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.OtherData["queryID"] != res.QueryID {
		t.Errorf("trace otherData = %v, want queryID %q", tr.OtherData, res.QueryID)
	}
	// The span tree matches the operator sites of the query's EXPLAIN
	// ANALYZE: one operator span per tree line, same names, same order.
	var explainOps []string
	for _, line := range strings.Split(strings.TrimRight(res.Explain, "\n"), "\n") {
		if !strings.HasPrefix(line, "plan strategy:") {
			explainOps = append(explainOps, line)
		}
	}
	var spans []string
	for _, ev := range tr.TraceEvents {
		if ev.Cat == "operator" {
			spans = append(spans, ev.Name)
		}
	}
	if len(spans) == 0 || len(spans) != len(explainOps) {
		t.Fatalf("operator spans = %v, explain lines = %v", spans, explainOps)
	}
	for i, name := range spans {
		if !strings.Contains(explainOps[i], name) {
			t.Errorf("explain line %d %q does not contain span %q", i, explainOps[i], name)
		}
	}
}

func TestTraceEndpointUnknownID(t *testing.T) {
	ts := newTestServer(t)
	httpRes, err := http.Get(ts.URL + "/trace/no-such-query")
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	if httpRes.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", httpRes.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(httpRes.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == "" {
		t.Error("404 body should explain the miss")
	}
}

func TestPprofEndpoint(t *testing.T) {
	ts := newTestServer(t)
	httpRes, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	if httpRes.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", httpRes.StatusCode)
	}
}

func TestRequestBodyLimit(t *testing.T) {
	e := blossomtree.NewEngine()
	if err := e.LoadString("bib.xml", bib); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Engine: e, MaxBodyBytes: 64}))
	defer ts.Close()
	big, err := json.Marshal(QueryRequest{Query: "//" + strings.Repeat("x", 200)})
	if err != nil {
		t.Fatal(err)
	}
	httpRes, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	httpRes.Body.Close()
	if httpRes.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body status = %d, want 400", httpRes.StatusCode)
	}
}

// TestQueryEndpointNavReason: fragment-outside queries must say why
// they routed to the navigational fallback; planned queries must omit
// the field.
func TestQueryEndpointNavReason(t *testing.T) {
	ts := newTestServer(t)
	status, res := postQuery(t, ts, QueryRequest{Query: `//book[contains(title, "Maximum")]`})
	if status != http.StatusOK || res.Verdict != "ok" {
		t.Fatalf("status = %d, verdict = %q", status, res.Verdict)
	}
	if res.NavReason == "" {
		t.Error("nav-fallback response omits nav_reason")
	}

	status, res = postQuery(t, ts, QueryRequest{Query: `//book/title`})
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if res.NavReason != "" {
		t.Errorf("planned response carries nav_reason %q", res.NavReason)
	}
}

// TestFeedbackEndpoint: repeated queries must show up in GET /feedback
// with their observation counts.
func TestFeedbackEndpoint(t *testing.T) {
	ts := newTestServer(t)
	const q = `//book[year>1900]/title`
	for i := 0; i < 3; i++ {
		if status, res := postQuery(t, ts, QueryRequest{Query: q}); status != http.StatusOK || res.Verdict != "ok" {
			t.Fatalf("post %d: status = %d, verdict = %q", i, status, res.Verdict)
		}
	}
	httpRes, err := http.Get(ts.URL + "/feedback")
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	if httpRes.StatusCode != http.StatusOK {
		t.Fatalf("GET /feedback status = %d", httpRes.StatusCode)
	}
	var fb struct {
		Queries []feedback.Summary `json:"queries"`
	}
	if err := json.NewDecoder(httpRes.Body).Decode(&fb); err != nil {
		t.Fatal(err)
	}
	hash := obs.QueryHash(q)
	for _, sum := range fb.Queries {
		if sum.Hash != hash {
			continue
		}
		if sum.N < 3 {
			t.Errorf("repeated query has n = %d, want >= 3", sum.N)
		}
		if len(sum.Ops) == 0 {
			t.Error("history has no per-operator cells")
		}
		return
	}
	t.Fatalf("hash %s missing from /feedback (%d entries)", hash, len(fb.Queries))
}
