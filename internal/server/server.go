// Package server is the HTTP serving layer of the blossomd daemon: a
// long-running engine process with per-request query evaluation
// (POST /query, honoring a per-request budget), Prometheus metrics
// exposition (GET /metrics), per-query trace export
// (GET /trace/{queryID}), and the standard pprof endpoints
// (GET /debug/pprof/*). Every evaluation flows through the same
// telemetry pipeline as the CLI and bench harness: query-duration
// histogram, trace store, structured query log.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"blossomtree"
	"blossomtree/internal/feedback"
	"blossomtree/internal/obs"
	"blossomtree/internal/shard"
)

// Config configures a Server.
type Config struct {
	// Engine serves the queries. Required.
	Engine *blossomtree.Engine
	// Logger receives the structured query log and daemon events; nil
	// disables logging.
	Logger *slog.Logger
	// SlowQueryThreshold is passed to every evaluation (see
	// blossomtree.Options.SlowQueryThreshold).
	SlowQueryThreshold time.Duration
	// MaxBodyBytes caps POST /query request bodies; <= 0 means 1 MiB.
	MaxBodyBytes int64
	// MaxRequestTimeout caps the per-request budget a client may ask
	// for (and is the default when the request sets none); <= 0 means
	// no cap is applied.
	MaxRequestTimeout time.Duration
	// Admission gates POST /query with per-tenant token buckets and a
	// weighted-fair inflight queue (tenant = X-Tenant header, "default"
	// when absent). A shed request answers 429 with a Retry-After hint
	// and a "shed" verdict in the query log. Nil admits everything.
	Admission *shard.Admission
}

// Server handles the daemon's HTTP API.
type Server struct {
	cfg Config
	mux *http.ServeMux
}

// New builds a server around an engine.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /trace/{queryID}", s.handleTrace)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// Query is the XPath or FLWOR expression. Required.
	Query string `json:"query"`
	// Strategy forces a join strategy ("auto", "pipelined",
	// "bounded-nl", "twigstack", "navigational", "cost"); default auto.
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMS / MaxNodes / MaxOutput form the per-request
	// Options.Budget; zero values mean unlimited (subject to the
	// server's MaxRequestTimeout cap).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	MaxNodes  int64 `json:"max_nodes,omitempty"`
	MaxOutput int64 `json:"max_output,omitempty"`
	// Analyze enables per-operator wall-clock timing, so the response's
	// explain tree and the stored trace carry real durations.
	Analyze bool `json:"analyze,omitempty"`
	// Explain includes the executed plan's EXPLAIN ANALYZE tree in the
	// response.
	Explain bool `json:"explain,omitempty"`
	// AllDocuments evaluates the query against every loaded document and
	// gathers the per-document results into one ordered response (the
	// scatter-gather path on a sharded daemon). A shard lost after its
	// retry degrades the response instead of failing it — see Degraded.
	AllDocuments bool `json:"all_documents,omitempty"`
}

// DegradedInfo reports a partial scatter-gather response: which shards
// failed (after the retry) and why. Present only when AllDocuments ran
// on a sharded daemon and at least one shard was lost.
type DegradedInfo struct {
	FailedShards []int    `json:"failed_shards"`
	Errors       []string `json:"errors"`
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	QueryID  string `json:"query_id"`
	Strategy string `json:"strategy,omitempty"`
	// Cached reports whether the evaluation reused a compiled plan from
	// the daemon's plan cache; a repeated identical query against an
	// unchanged catalog reports true.
	Cached    bool                `json:"cached"`
	ElapsedMS float64             `json:"elapsed_ms"`
	Count     int                 `json:"count"`
	XML       string              `json:"xml,omitempty"`
	Nodes     []string            `json:"nodes,omitempty"`
	Rows      []map[string]string `json:"rows,omitempty"`
	Explain   string              `json:"explain,omitempty"`
	TraceURL  string              `json:"trace_url"`
	Error     string              `json:"error,omitempty"`
	Verdict   string              `json:"verdict"`
	// NavReason says why the query routed to the navigational fallback
	// instead of a BlossomTree plan; absent for planned queries.
	NavReason string `json:"nav_reason,omitempty"`
	// Replanned marks an evaluation that ran a feedback-replanned plan
	// template (estimates drifted from observed history by Drift×).
	Replanned bool    `json:"replanned,omitempty"`
	Drift     float64 `json:"drift,omitempty"`
	// Degraded marks a partial scatter-gather result (some shards lost
	// after their retry); nil/absent for complete results.
	Degraded *DegradedInfo `json:"degraded,omitempty"`
	// RetryAfterMS echoes the Retry-After hint of a shed (429) response
	// in milliseconds, for clients that prefer the body to the header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// statusClientClosedRequest is the de-facto (nginx) status for requests
// aborted by the client; Go's net/http has no constant for it.
const statusClientClosedRequest = 499

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad request body: " + err.Error(), Verdict: "error"})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "missing query", Verdict: "error"})
		return
	}

	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if cap := s.cfg.MaxRequestTimeout; cap > 0 && (timeout <= 0 || timeout > cap) {
		timeout = cap
	}
	// The ID is generated before evaluation so failed queries stay
	// attributable in the log and the response.
	qid := blossomtree.NewQueryID()

	// Admission control runs after decode (so sheds are attributable to
	// a query hash in the log) and before any evaluation work.
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	admitStart := time.Now()
	release, admErr := s.cfg.Admission.Admit(r.Context(), tenant)
	if admErr != nil {
		s.writeAdmissionError(w, r, qid, req.Query, admErr, time.Since(admitStart))
		return
	}
	defer release()

	opts := blossomtree.Options{
		Strategy: blossomtree.Strategy(req.Strategy),
		Analyze:  req.Analyze,
		Budget: blossomtree.Budget{
			MaxNodes:  req.MaxNodes,
			MaxOutput: req.MaxOutput,
			Timeout:   timeout,
		},
		Logger:             s.cfg.Logger,
		SlowQueryThreshold: s.cfg.SlowQueryThreshold,
		QueryID:            qid,
	}

	start := time.Now()
	var res *blossomtree.Result
	var err error
	if req.AllDocuments {
		res, err = s.cfg.Engine.QueryAllGatheredContext(r.Context(), req.Query, opts, 0)
	} else {
		res, err = s.cfg.Engine.QueryWithContext(r.Context(), req.Query, opts)
	}
	resp := QueryResponse{
		QueryID:   qid,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		TraceURL:  "/trace/" + qid,
		Verdict:   blossomtree.Verdict(err),
	}
	if err != nil {
		resp.Error = err.Error()
		writeJSON(w, errorStatus(w, r, err), resp)
		return
	}
	switch {
	case req.AllDocuments:
		resp.Strategy = "scatter" // merged view has no single plan
	default:
		if pl := res.Plan(); pl != "" {
			// Plan() renders the whole decomposition; only its
			// "plan strategy: …" headline belongs in the response.
			resp.Strategy = strings.TrimPrefix(firstLine(pl), "plan strategy: ")
		} else {
			resp.Strategy = "XH" // navigational evaluation has no plan
		}
	}
	if d := res.Degraded(); d != nil {
		resp.Degraded = &DegradedInfo{FailedShards: d.FailedShards, Errors: d.Errors}
	}
	resp.NavReason = res.NavReason()
	resp.Replanned = res.Replanned()
	resp.Drift = res.Drift()
	resp.Cached = res.Cached()
	resp.Count = res.Len()
	resp.XML = res.XML()
	for _, n := range res.Nodes() {
		resp.Nodes = append(resp.Nodes, n.XML())
	}
	for _, row := range res.Rows() {
		m := make(map[string]string, len(row))
		for v, ns := range row {
			var xml string
			for _, n := range ns {
				xml += n.XML()
			}
			m[v] = xml
		}
		resp.Rows = append(resp.Rows, m)
	}
	if req.Explain {
		resp.Explain = res.ExplainAnalyze()
	}
	writeJSON(w, http.StatusOK, resp)
}

// errorStatus maps an evaluation error to its HTTP status, setting the
// Retry-After header for sheds. The distinctions a load balancer cares
// about: 429 = shed before evaluation (retry elsewhere / later), 499 =
// the client went away (not a server fault), 408 = the server aborted
// the query on its budget or deadline, 422 = the query itself is bad.
func errorStatus(w http.ResponseWriter, r *http.Request, err error) int {
	var sh *shard.ShedError
	switch {
	case errors.As(err, &sh):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(sh)))
		return http.StatusTooManyRequests
	case errors.Is(err, blossomtree.ErrShed):
		w.Header().Set("Retry-After", "1")
		return http.StatusTooManyRequests
	case errors.Is(err, blossomtree.ErrCanceled) && r.Context().Err() != nil:
		// The client disconnected or canceled; nobody is reading the
		// response, but the status keeps access logs honest.
		return statusClientClosedRequest
	case errors.Is(err, blossomtree.ErrCanceled), errors.Is(err, blossomtree.ErrBudgetExceeded):
		return http.StatusRequestTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// retryAfterSeconds renders a shed's hint as whole seconds, ≥ 1.
func retryAfterSeconds(sh *shard.ShedError) int {
	secs := int(math.Ceil(sh.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeAdmissionError answers a request refused before evaluation and
// records it in the structured query log (verdict "shed" or "canceled"),
// so shed traffic is visible alongside evaluated traffic.
func (s *Server) writeAdmissionError(w http.ResponseWriter, r *http.Request, qid, query string, err error, waited time.Duration) {
	resp := QueryResponse{
		QueryID:   qid,
		ElapsedMS: float64(waited.Microseconds()) / 1000,
		TraceURL:  "/trace/" + qid,
		Verdict:   blossomtree.Verdict(err),
		Error:     err.Error(),
	}
	var sh *shard.ShedError
	if errors.As(err, &sh) {
		resp.RetryAfterMS = sh.RetryAfter.Milliseconds()
	}
	status := errorStatus(w, r, err)
	ql := &obs.QueryLog{Logger: s.cfg.Logger}
	ql.Record(obs.QueryLogEntry{
		QueryID:   qid,
		QueryHash: obs.QueryHash(query),
		Verdict:   resp.Verdict,
		Latency:   waited,
		Err:       err.Error(),
	})
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := blossomtree.WritePrometheus(w); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("metrics exposition failed", "error", err)
	}
}

// handleFeedback exposes the feedback store: one JSON object per
// tracked query hash with its observation count, latency EWMA, per-
// operator est/act history, drift and replan state — the serving-side
// view of the estimate→actual loop.
func (s *Server) handleFeedback(w http.ResponseWriter, _ *http.Request) {
	type feedbackResponse struct {
		Queries []feedback.Summary `json:"queries"`
	}
	sums := feedback.Shared.Summaries()
	if sums == nil {
		sums = []feedback.Summary{}
	}
	writeJSON(w, http.StatusOK, feedbackResponse{Queries: sums})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("queryID")
	b, ok := blossomtree.TraceJSON(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no trace for query %q (traces are retained for recent queries only)", id)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
