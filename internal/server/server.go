// Package server is the HTTP serving layer of the blossomd daemon: a
// long-running engine process with per-request query evaluation
// (POST /query, honoring a per-request budget), Prometheus metrics
// exposition (GET /metrics), per-query trace export
// (GET /trace/{queryID}), and the standard pprof endpoints
// (GET /debug/pprof/*). Every evaluation flows through the same
// telemetry pipeline as the CLI and bench harness: query-duration
// histogram, trace store, structured query log.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"blossomtree"
)

// Config configures a Server.
type Config struct {
	// Engine serves the queries. Required.
	Engine *blossomtree.Engine
	// Logger receives the structured query log and daemon events; nil
	// disables logging.
	Logger *slog.Logger
	// SlowQueryThreshold is passed to every evaluation (see
	// blossomtree.Options.SlowQueryThreshold).
	SlowQueryThreshold time.Duration
	// MaxBodyBytes caps POST /query request bodies; <= 0 means 1 MiB.
	MaxBodyBytes int64
	// MaxRequestTimeout caps the per-request budget a client may ask
	// for (and is the default when the request sets none); <= 0 means
	// no cap is applied.
	MaxRequestTimeout time.Duration
}

// Server handles the daemon's HTTP API.
type Server struct {
	cfg Config
	mux *http.ServeMux
}

// New builds a server around an engine.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /trace/{queryID}", s.handleTrace)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// Query is the XPath or FLWOR expression. Required.
	Query string `json:"query"`
	// Strategy forces a join strategy ("auto", "pipelined",
	// "bounded-nl", "twigstack", "navigational", "cost"); default auto.
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMS / MaxNodes / MaxOutput form the per-request
	// Options.Budget; zero values mean unlimited (subject to the
	// server's MaxRequestTimeout cap).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	MaxNodes  int64 `json:"max_nodes,omitempty"`
	MaxOutput int64 `json:"max_output,omitempty"`
	// Analyze enables per-operator wall-clock timing, so the response's
	// explain tree and the stored trace carry real durations.
	Analyze bool `json:"analyze,omitempty"`
	// Explain includes the executed plan's EXPLAIN ANALYZE tree in the
	// response.
	Explain bool `json:"explain,omitempty"`
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	QueryID  string `json:"query_id"`
	Strategy string `json:"strategy,omitempty"`
	// Cached reports whether the evaluation reused a compiled plan from
	// the daemon's plan cache; a repeated identical query against an
	// unchanged catalog reports true.
	Cached    bool                `json:"cached"`
	ElapsedMS float64             `json:"elapsed_ms"`
	Count     int                 `json:"count"`
	XML       string              `json:"xml,omitempty"`
	Nodes     []string            `json:"nodes,omitempty"`
	Rows      []map[string]string `json:"rows,omitempty"`
	Explain   string              `json:"explain,omitempty"`
	TraceURL  string              `json:"trace_url"`
	Error     string              `json:"error,omitempty"`
	Verdict   string              `json:"verdict"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad request body: " + err.Error(), Verdict: "error"})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "missing query", Verdict: "error"})
		return
	}

	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if cap := s.cfg.MaxRequestTimeout; cap > 0 && (timeout <= 0 || timeout > cap) {
		timeout = cap
	}
	// The ID is generated before evaluation so failed queries stay
	// attributable in the log and the response.
	qid := blossomtree.NewQueryID()
	opts := blossomtree.Options{
		Strategy: blossomtree.Strategy(req.Strategy),
		Analyze:  req.Analyze,
		Budget: blossomtree.Budget{
			MaxNodes:  req.MaxNodes,
			MaxOutput: req.MaxOutput,
			Timeout:   timeout,
		},
		Logger:             s.cfg.Logger,
		SlowQueryThreshold: s.cfg.SlowQueryThreshold,
		QueryID:            qid,
	}

	start := time.Now()
	res, err := s.cfg.Engine.QueryWithContext(r.Context(), req.Query, opts)
	resp := QueryResponse{
		QueryID:   qid,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		TraceURL:  "/trace/" + qid,
		Verdict:   blossomtree.Verdict(err),
	}
	if err != nil {
		resp.Error = err.Error()
		status := http.StatusUnprocessableEntity
		if errors.Is(err, blossomtree.ErrBudgetExceeded) || errors.Is(err, blossomtree.ErrCanceled) {
			status = http.StatusRequestTimeout
		}
		writeJSON(w, status, resp)
		return
	}
	if pl := res.Plan(); pl != "" {
		// Plan() renders the whole decomposition; only its
		// "plan strategy: …" headline belongs in the response.
		resp.Strategy = strings.TrimPrefix(firstLine(pl), "plan strategy: ")
	} else {
		resp.Strategy = "XH" // navigational evaluation has no plan
	}
	resp.Cached = res.Cached()
	resp.Count = res.Len()
	resp.XML = res.XML()
	for _, n := range res.Nodes() {
		resp.Nodes = append(resp.Nodes, n.XML())
	}
	for _, row := range res.Rows() {
		m := make(map[string]string, len(row))
		for v, ns := range row {
			var xml string
			for _, n := range ns {
				xml += n.XML()
			}
			m[v] = xml
		}
		resp.Rows = append(resp.Rows, m)
	}
	if req.Explain {
		resp.Explain = res.ExplainAnalyze()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := blossomtree.WritePrometheus(w); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("metrics exposition failed", "error", err)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("queryID")
	b, ok := blossomtree.TraceJSON(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no trace for query %q (traces are retained for recent queries only)", id)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
