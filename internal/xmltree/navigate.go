package xmltree

// NextPreorder returns the node that follows n in document order
// (preorder), or nil when n is the last node. The optional stop node
// bounds the walk: the traversal never escapes the subtree rooted at
// stop. Pass nil to walk to the end of the document.
func NextPreorder(n, stop *Node) *Node {
	if n == nil {
		return nil
	}
	if n.FirstChild != nil {
		return n.FirstChild
	}
	for n != nil && n != stop {
		if n.NextSibling != nil {
			return n.NextSibling
		}
		n = n.Parent
	}
	return nil
}

// NextPreorderSkip returns the node that follows n in document order
// skipping n's subtree (i.e. the "following" axis's first node within the
// stop subtree), or nil.
func NextPreorderSkip(n, stop *Node) *Node {
	for n != nil && n != stop {
		if n.NextSibling != nil {
			return n.NextSibling
		}
		n = n.Parent
	}
	return nil
}

// Walk calls f for every node of the subtree rooted at n in document
// order, including n itself. If f returns false the walk descends no
// further into that node's subtree (but continues with its following
// nodes).
func Walk(n *Node, f func(*Node) bool) {
	if n == nil {
		return
	}
	if !f(n) {
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		Walk(c, f)
	}
}

// Elements calls f for every element of the subtree in document order.
func Elements(n *Node, f func(*Node)) {
	Walk(n, func(m *Node) bool {
		if m.Kind == ElementNode {
			f(m)
		}
		return true
	})
}

// Descendants returns all element descendants of n (excluding n) in
// document order, optionally filtered by tag ("" matches all).
func Descendants(n *Node, tag string) []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		Walk(c, func(m *Node) bool {
			if m.Kind == ElementNode && (tag == "" || m.Tag == tag) {
				out = append(out, m)
			}
			return true
		})
	}
	return out
}

// TextChildren returns the text-node children of n in document order
// (the child::text() axis).
func TextChildren(n *Node) []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Kind == TextNode {
			out = append(out, c)
		}
	}
	return out
}

// TextDescendants returns all text-node descendants of n (excluding n)
// in document order (the descendant::text() axis).
func TextDescendants(n *Node) []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		Walk(c, func(m *Node) bool {
			if m.Kind == TextNode {
				out = append(out, m)
			}
			return true
		})
	}
	return out
}

// Children returns the element children of n with the given tag (""
// matches all element children).
func Children(n *Node, tag string) []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Kind == ElementNode && (tag == "" || c.Tag == tag) {
			out = append(out, c)
		}
	}
	return out
}

// Ancestors returns the proper ancestors of n from parent to the document
// element (the document node itself is excluded).
func Ancestors(n *Node) []*Node {
	var out []*Node
	for p := n.Parent; p != nil && p.Kind != DocumentNode; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// Path returns the slash-separated tag path from the document element to
// n, e.g. "/bib/book/title". Useful for diagnostics and golden tests.
func Path(n *Node) string {
	if n == nil || n.Kind == DocumentNode {
		return "/"
	}
	var parts []string
	for m := n; m != nil && m.Kind == ElementNode; m = m.Parent {
		parts = append(parts, m.Tag)
	}
	out := ""
	for i := len(parts) - 1; i >= 0; i-- {
		out += "/" + parts[i]
	}
	return out
}
