package xmltree

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"
)

const bibXML = `<bib>
  <book>
    <title> Maximum Security </title>
  </book>
  <book>
    <title> The Art of Computer Programming </title>
    <author>
      <last> Knuth </last>
      <first> Donald </first>
    </author>
  </book>
  <book>
    <title> Terrorist Hunter </title>
  </book>
  <book>
    <title> TeX Book </title>
    <author>
      <last> Knuth </last>
      <first> Donald </first>
    </author>
  </book>
</bib>`

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	doc, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return doc
}

func TestParseBib(t *testing.T) {
	doc := mustParse(t, bibXML)
	root := doc.DocumentElement()
	if root == nil || root.Tag != "bib" {
		t.Fatalf("document element = %v, want <bib>", root)
	}
	books := Children(root, "book")
	if len(books) != 4 {
		t.Fatalf("got %d books, want 4", len(books))
	}
	authors := Descendants(root, "author")
	if len(authors) != 2 {
		t.Fatalf("got %d authors, want 2", len(authors))
	}
	if got := StringValue(Children(books[0], "title")[0]); got != "Maximum Security" {
		t.Errorf("title string-value = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></b>"},
		{"mismatched", "<a></b>"},
		{"text only", "hello"},
		{"stray end", "</a>"},
		{"two roots", "<a/><b/>"},
		{"garbage after", "<a/><"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.in); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestParseAttributesAndEscapes(t *testing.T) {
	doc := mustParse(t, `<a id="1" name="x&amp;y"><b q='z'>T&lt;U</b></a>`)
	a := doc.DocumentElement()
	if v, ok := a.Attr("name"); !ok || v != "x&y" {
		t.Errorf("attr name = %q, %v", v, ok)
	}
	if _, ok := a.Attr("missing"); ok {
		t.Error("Attr(missing) reported present")
	}
	b := Children(a, "b")[0]
	if got := StringValue(b); got != "T<U" {
		t.Errorf("string-value = %q, want T<U", got)
	}
}

func TestRegionEncoding(t *testing.T) {
	doc := mustParse(t, `<a><b><c/><d/></b><e/></a>`)
	a := doc.DocumentElement()
	b := Children(a, "b")[0]
	c := Children(b, "c")[0]
	d := Children(b, "d")[0]
	e := Children(a, "e")[0]

	if !a.IsAncestorOf(c) || !b.IsAncestorOf(d) || !a.IsAncestorOf(e) {
		t.Error("expected ancestor relationships missing")
	}
	if b.IsAncestorOf(e) || c.IsAncestorOf(d) || a.IsAncestorOf(a) {
		t.Error("unexpected ancestor relationships")
	}
	if !c.Before(d) || !b.Before(e) || !a.Before(c) || d.Before(c) {
		t.Error("document order wrong")
	}
	if !c.IsDescendantOf(a) || e.IsDescendantOf(b) {
		t.Error("descendant test wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.End()
	if _, err := b.Done(); err == nil {
		t.Error("End with no open element: want error")
	}

	b = NewBuilder()
	b.Start("a").End().Start("b").End()
	if _, err := b.Done(); err == nil {
		t.Error("two root elements: want error")
	}

	b = NewBuilder()
	b.Text("floating")
	if _, err := b.Done(); err == nil {
		t.Error("text outside element: want error")
	}

	b = NewBuilder()
	b.Start("a")
	if _, err := b.Done(); err == nil {
		t.Error("unclosed element: want error")
	}

	b = NewBuilder()
	b.Start("")
	if b.Err() == nil {
		t.Error("empty tag: want error")
	}
}

func TestNavigation(t *testing.T) {
	doc := mustParse(t, `<a><b><c/></b><d/></a>`)
	a := doc.DocumentElement()
	want := []string{"a", "b", "c", "d"}
	var got []string
	for n := a; n != nil; n = NextPreorder(n, nil) {
		if n.IsElement() {
			got = append(got, n.Tag)
		}
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("preorder = %v, want %v", got, want)
	}

	b := Children(a, "b")[0]
	if next := NextPreorderSkip(b, nil); next == nil || next.Tag != "d" {
		t.Errorf("NextPreorderSkip(b) = %v, want <d>", next)
	}
	c := Children(b, "c")[0]
	if got := Path(c); got != "/a/b/c" {
		t.Errorf("Path = %q", got)
	}
	anc := Ancestors(c)
	if len(anc) != 2 || anc[0].Tag != "b" || anc[1].Tag != "a" {
		t.Errorf("Ancestors = %v", anc)
	}
}

func TestDeepEqual(t *testing.T) {
	doc := mustParse(t, bibXML)
	authors := Descendants(doc.DocumentElement(), "author")
	if !DeepEqual(authors[0], authors[1]) {
		t.Error("the two Knuth author subtrees should be deep-equal")
	}
	titles := Descendants(doc.DocumentElement(), "title")
	if DeepEqual(titles[0], titles[1]) {
		t.Error("distinct titles reported deep-equal")
	}
	if !DeepEqualSeq(nil, nil) {
		t.Error("two empty sequences must be deep-equal")
	}
	if DeepEqualSeq([]*Node{authors[0]}, nil) {
		t.Error("non-empty vs empty sequence reported deep-equal")
	}
	if DeepEqual(authors[0], titles[0]) {
		t.Error("author vs title reported deep-equal")
	}
}

func TestStats(t *testing.T) {
	doc := mustParse(t, `<a><a><b/></a><b/><c>t</c></a>`)
	doc.Name = "test"
	s := ComputeStats(doc)
	if s.Elements != 5 {
		t.Errorf("Elements = %d, want 5", s.Elements)
	}
	if s.Texts != 1 || s.Nodes != 6 {
		t.Errorf("Texts=%d Nodes=%d, want 1, 6", s.Texts, s.Nodes)
	}
	if s.Tags != 3 {
		t.Errorf("Tags = %d, want 3", s.Tags)
	}
	if !s.Recursive || s.MaxRecursion != 2 {
		t.Errorf("Recursive=%v MaxRecursion=%d, want true, 2", s.Recursive, s.MaxRecursion)
	}
	if s.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3", s.MaxDepth)
	}
	if s.TagCounts["a"] != 2 || s.TagCounts["b"] != 2 || s.TagCounts["c"] != 1 {
		t.Errorf("TagCounts = %v", s.TagCounts)
	}
	top := s.TopTags(2)
	if len(top) != 2 || top[0] != "a" || top[1] != "b" {
		t.Errorf("TopTags = %v", top)
	}
	if !strings.Contains(s.String(), "recursive Y") {
		t.Errorf("Stats.String = %q", s.String())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	doc := mustParse(t, `<a id="1"><b>hello &amp; goodbye</b><c/><d>x<e/>y</d></a>`)
	out := Serialize(doc.Root, WriteOptions{})
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\nserialized: %s", err, out)
	}
	if !DeepEqual(doc.DocumentElement(), doc2.DocumentElement()) {
		t.Errorf("round trip not deep-equal:\n%s\nvs\n%s", out, Serialize(doc2.Root, WriteOptions{}))
	}
	pretty := Serialize(doc.Root, WriteOptions{Indent: true})
	doc3, err := ParseString(pretty)
	if err != nil {
		t.Fatalf("reparse indented: %v\n%s", err, pretty)
	}
	if doc3.DocumentElement().Tag != "a" {
		t.Error("indented reparse lost root")
	}
}

func TestWriteToWriter(t *testing.T) {
	doc := mustParse(t, `<a><b/></a>`)
	var sb strings.Builder
	if err := Write(&sb, doc.Root, WriteOptions{Indent: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<a>") {
		t.Errorf("Write output = %q", sb.String())
	}
}

// randomDoc builds a random labeled document with the given rng: up to
// maxNodes elements drawn from a small alphabet, random fan-out and depth.
func randomDoc(r *rand.Rand, maxNodes int) *Document {
	tags := []string{"a", "b", "c", "d", "e"}
	b := NewBuilder()
	n := 1 + r.Intn(maxNodes)
	b.Start(tags[r.Intn(len(tags))])
	count := 1
	depth := 1
	lastWasText := false
	for count < n {
		switch {
		case depth > 1 && r.Intn(3) == 0:
			b.End()
			depth--
			lastWasText = false
		case !lastWasText && r.Intn(5) == 0:
			b.Text("t")
			lastWasText = true
		default:
			b.Start(tags[r.Intn(len(tags))])
			depth++
			count++
			lastWasText = false
		}
	}
	for depth > 0 {
		b.End()
		depth--
	}
	return b.MustDone()
}

// TestQuickRegionLabelsMatchPointers cross-checks the O(1) region-encoded
// ancestor and order tests against the pointer-based ground truth on
// random documents.
func TestQuickRegionLabelsMatchPointers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r, 60)
		var nodes []*Node
		Walk(doc.DocumentElement(), func(n *Node) bool {
			nodes = append(nodes, n)
			return true
		})
		for i := 0; i < 200; i++ {
			u := nodes[r.Intn(len(nodes))]
			v := nodes[r.Intn(len(nodes))]
			truth := false
			for p := v.Parent; p != nil; p = p.Parent {
				if p == u {
					truth = true
					break
				}
			}
			if u.IsAncestorOf(v) != truth {
				t.Logf("ancestor mismatch: %v vs %v", u, v)
				return false
			}
			if u != v && u.Before(v) == v.Before(u) {
				t.Logf("order not antisymmetric: %v vs %v", u, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSerializeParseRoundTrip verifies parse(serialize(doc)) is
// deep-equal to doc for random documents.
func TestQuickSerializeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r, 80)
		out := Serialize(doc.Root, WriteOptions{})
		doc2, err := ParseString(out)
		if err != nil {
			t.Logf("reparse failed: %v", err)
			return false
		}
		return DeepEqual(doc.DocumentElement(), doc2.DocumentElement())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickPreorderMatchesStart verifies that Start labels enumerate in
// exactly document order and End bounds every descendant.
func TestQuickPreorderMatchesStart(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r, 80)
		prev := -1
		ok := true
		Walk(doc.DocumentElement(), func(n *Node) bool {
			if n.Start <= prev {
				ok = false
			}
			prev = n.Start
			if n.End < n.Start {
				ok = false
			}
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				if c.Start <= n.Start || c.End > n.End || c.Level != n.Level+1 {
					ok = false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNodeString(t *testing.T) {
	doc := mustParse(t, `<a>some quite long text content here</a>`)
	a := doc.DocumentElement()
	if !strings.Contains(a.String(), "<a>") {
		t.Errorf("element String = %q", a.String())
	}
	txt := a.FirstChild
	if !strings.Contains(txt.String(), "#text") {
		t.Errorf("text String = %q", txt.String())
	}
	if doc.Root.String() != "#document" {
		t.Errorf("document String = %q", doc.Root.String())
	}
	var nilNode *Node
	if nilNode.String() != "<nil>" {
		t.Errorf("nil String = %q", nilNode.String())
	}
	if DocumentNode.String() != "document" || ElementNode.String() != "element" || TextNode.String() != "text" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind = %q", Kind(9).String())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512 B",
		2048:      "2.0 KB",
		5 << 20:   "5.0 MB",
		69 << 20:  "69.0 MB",
		133 << 20: "133.0 MB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, want, got)
		}
	}
}

func TestBuilderElemAndDepth(t *testing.T) {
	b := NewBuilder()
	b.Start("r")
	if b.Depth() != 1 {
		t.Errorf("Depth = %d", b.Depth())
	}
	b.Elem("leaf", "text")
	b.Elem("empty", "")
	b.End()
	doc := b.MustDone()
	r := doc.DocumentElement()
	if r.NumChildren() != 2 {
		t.Errorf("NumChildren = %d", r.NumChildren())
	}
	kids := r.ChildElements()
	if len(kids) != 2 || kids[0].Tag != "leaf" {
		t.Errorf("ChildElements = %v", kids)
	}
	if StringValue(kids[0]) != "text" {
		t.Errorf("leaf value = %q", StringValue(kids[0]))
	}
	if kids[1].FirstChild != nil {
		t.Error("empty Elem should have no children")
	}
	if !kids[0].FirstChild.IsText() || kids[0].IsText() {
		t.Error("IsText wrong")
	}
	if doc.NodeCount() != 4 {
		t.Errorf("NodeCount = %d", doc.NodeCount())
	}
	if doc.MaxLabel() != 4 {
		t.Errorf("MaxLabel = %d", doc.MaxLabel())
	}
}

func TestElementsWalker(t *testing.T) {
	doc := mustParse(t, `<a>t<b/><c>u</c></a>`)
	var tags []string
	Elements(doc.Root, func(n *Node) { tags = append(tags, n.Tag) })
	if strings.Join(tags, " ") != "a b c" {
		t.Errorf("Elements = %v", tags)
	}
	// Walk early-stop: don't descend into b... make nested.
	doc = mustParse(t, `<a><b><c/></b><d/></a>`)
	var seen []string
	Walk(doc.DocumentElement(), func(n *Node) bool {
		seen = append(seen, n.Tag)
		return n.Tag != "b" // skip b's subtree
	})
	if strings.Join(seen, " ") != "a b d" {
		t.Errorf("Walk with prune = %v", seen)
	}
	Walk(nil, func(*Node) bool { return true }) // no panic
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/doc.xml"
	if err := os.WriteFile(path, []byte(`<a><b/></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.DocumentElement().Tag != "a" || doc.Bytes != 11 || doc.Name != path {
		t.Errorf("doc = %+v", doc)
	}
	if _, err := ParseFile(dir + "/missing.xml"); err == nil {
		t.Error("missing file should fail")
	}
	bad := dir + "/bad.xml"
	os.WriteFile(bad, []byte(`<a>`), 0o644)
	if _, err := ParseFile(bad); err == nil {
		t.Error("malformed file should fail")
	}
}

func TestBeforeNil(t *testing.T) {
	doc := mustParse(t, `<a/>`)
	a := doc.DocumentElement()
	var nilN *Node
	if a.Before(nilN) || nilN.Before(a) {
		t.Error("Before with nil should be false")
	}
	if a.IsAncestorOf(nil) || nilN.IsAncestorOf(a) {
		t.Error("IsAncestorOf with nil should be false")
	}
}

func TestDeepEqualSeqMismatch(t *testing.T) {
	doc := mustParse(t, `<r><a/><b/></r>`)
	r := doc.DocumentElement()
	a, b := r.FirstChild, r.FirstChild.NextSibling
	if DeepEqualSeq([]*Node{a}, []*Node{b}) {
		t.Error("different elements reported deep-equal")
	}
	if !DeepEqualSeq([]*Node{a, b}, []*Node{a, b}) {
		t.Error("identical sequences reported unequal")
	}
}
