package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"
)

// Parse reads an XML document from r and builds the labeled tree.
// Comments, processing instructions and directives are skipped;
// whitespace-only text between elements is dropped (it carries no query
// semantics in the paper's data model), other text is kept verbatim.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = true

	b := NewBuilder()
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			attrs := make([]Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				attrs = append(attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			b.StartAttrs(t.Name.Local, attrs)
			depth++
		case xml.EndElement:
			if depth == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end tag </%s>", t.Name.Local)
			}
			b.End()
			depth--
		case xml.CharData:
			if depth == 0 {
				continue // whitespace or stray text outside the document element
			}
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			b.Text(s)
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("xmltree: parse: %d unclosed element(s)", depth)
	}
	doc, err := b.Done()
	if err != nil {
		return nil, err
	}
	if doc.DocumentElement() == nil {
		return nil, fmt.Errorf("xmltree: parse: document has no element content")
	}
	return doc, nil
}

// ParseString parses a document from a string.
func ParseString(s string) (*Document, error) {
	doc, err := Parse(strings.NewReader(s))
	if err != nil {
		return nil, err
	}
	doc.Bytes = int64(len(s))
	return doc, nil
}

// ParseFile parses the named file and records its on-disk size.
func ParseFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmltree: %w", err)
	}
	defer f.Close()
	doc, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("xmltree: %s: %w", path, err)
	}
	if st, err := f.Stat(); err == nil {
		doc.Bytes = st.Size()
	}
	doc.Name = path
	return doc, nil
}
