package xmltree

import (
	"bufio"
	"io"
	"strings"
)

// xmlEscaper escapes the five predefined XML entities in text content and
// attribute values.
var xmlEscaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
	"'", "&apos;",
)

// WriteOptions controls serialization.
type WriteOptions struct {
	// Indent enables pretty-printing with two-space indentation. Text
	// content containing only inline text is kept on one line.
	Indent bool
}

// Write serializes the subtree rooted at n (or the whole document if n is
// a DocumentNode) to w.
func Write(w io.Writer, n *Node, opts WriteOptions) error {
	bw := bufio.NewWriter(w)
	if n != nil && n.Kind == DocumentNode {
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			writeNode(bw, c, 0, opts)
		}
	} else {
		writeNode(bw, n, 0, opts)
	}
	if opts.Indent {
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Serialize renders the subtree rooted at n as a string.
func Serialize(n *Node, opts WriteOptions) string {
	var sb strings.Builder
	if n != nil && n.Kind == DocumentNode {
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			writeNodeSB(&sb, c, 0, opts)
		}
	} else {
		writeNodeSB(&sb, n, 0, opts)
	}
	return sb.String()
}

type sbWriter interface {
	io.Writer
	WriteString(string) (int, error)
	WriteByte(byte) error
}

func writeNode(w *bufio.Writer, n *Node, depth int, opts WriteOptions) {
	writeNodeGeneric(w, n, depth, opts)
}

func writeNodeSB(sb *strings.Builder, n *Node, depth int, opts WriteOptions) {
	writeNodeGeneric(sb, n, depth, opts)
}

func writeNodeGeneric(w sbWriter, n *Node, depth int, opts WriteOptions) {
	if n == nil {
		return
	}
	indent := func(d int) {
		w.WriteByte('\n')
		for i := 0; i < d; i++ {
			w.WriteString("  ")
		}
	}
	switch n.Kind {
	case TextNode:
		w.WriteString(xmlEscaper.Replace(n.Text))
	case ElementNode:
		w.WriteByte('<')
		w.WriteString(n.Tag)
		for _, a := range n.Attrs {
			w.WriteByte(' ')
			w.WriteString(a.Name)
			w.WriteString(`="`)
			w.WriteString(xmlEscaper.Replace(a.Value))
			w.WriteByte('"')
		}
		if n.FirstChild == nil {
			w.WriteString("/>")
			return
		}
		w.WriteByte('>')
		textOnly := true
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if c.Kind != TextNode {
				textOnly = false
				break
			}
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if opts.Indent && !textOnly && c.Kind == ElementNode {
				indent(depth + 1)
			}
			writeNodeGeneric(w, c, depth+1, opts)
		}
		if opts.Indent && !textOnly {
			indent(depth)
		}
		w.WriteString("</")
		w.WriteString(n.Tag)
		w.WriteByte('>')
	}
}
