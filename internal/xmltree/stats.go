package xmltree

import (
	"fmt"
	"sort"
)

// Stats summarizes the document properties the paper's Table 1 reports
// and the plan optimizer consumes: size, node counts, depth distribution,
// tag alphabet, and recursion.
type Stats struct {
	Name     string
	Bytes    int64
	Nodes    int // element + text nodes (the paper's "#nodes")
	Elements int
	Texts    int

	AvgDepth float64 // average element depth (document element = 1)
	MaxDepth int

	Tags      int            // |tags|
	TagCounts map[string]int // occurrences per tag

	// Recursive reports whether any element has a proper ancestor with
	// the same tag. MaxRecursion is the largest same-tag nesting count on
	// any root-to-leaf path (1 = non-recursive).
	Recursive    bool
	MaxRecursion int
}

// ComputeStats walks the document once and derives its statistics.
func ComputeStats(d *Document) Stats {
	s := Stats{
		Name:         d.Name,
		Bytes:        d.Bytes,
		TagCounts:    make(map[string]int),
		MaxRecursion: 1,
	}
	onPath := make(map[string]int)
	var depthSum int64
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Kind {
		case ElementNode:
			s.Elements++
			s.TagCounts[n.Tag]++
			depthSum += int64(n.Level)
			if n.Level > s.MaxDepth {
				s.MaxDepth = n.Level
			}
			onPath[n.Tag]++
			if onPath[n.Tag] > s.MaxRecursion {
				s.MaxRecursion = onPath[n.Tag]
			}
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				walk(c)
			}
			onPath[n.Tag]--
			return
		case TextNode:
			s.Texts++
		}
	}
	if d.Root != nil {
		for c := d.Root.FirstChild; c != nil; c = c.NextSibling {
			walk(c)
		}
	}
	s.Nodes = s.Elements + s.Texts
	s.Tags = len(s.TagCounts)
	s.Recursive = s.MaxRecursion > 1
	if s.Elements > 0 {
		s.AvgDepth = float64(depthSum) / float64(s.Elements)
	}
	return s
}

// TopTags returns the n most frequent tags, most frequent first (ties by
// name), for diagnostics and selectivity estimation.
func (s Stats) TopTags(n int) []string {
	tags := make([]string, 0, len(s.TagCounts))
	for t := range s.TagCounts {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool {
		ci, cj := s.TagCounts[tags[i]], s.TagCounts[tags[j]]
		if ci != cj {
			return ci > cj
		}
		return tags[i] < tags[j]
	})
	if n < len(tags) {
		tags = tags[:n]
	}
	return tags
}

// String renders a one-line summary matching Table 1's columns.
func (s Stats) String() string {
	rec := "N"
	if s.Recursive {
		rec = "Y"
	}
	return fmt.Sprintf("%s: %s, %d nodes, avg dep %.1f, max dep %d, |tags| %d, recursive %s",
		s.Name, FormatBytes(s.Bytes), s.Nodes, s.AvgDepth, s.MaxDepth, s.Tags, rec)
}

// FormatBytes renders a byte count in human units (KB/MB with one
// decimal), matching the paper's table formatting.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
