package xmltree

import (
	"errors"
	"fmt"
)

// Builder constructs a Document incrementally in document order. It is
// used by the parser and by the synthetic data generators; labels (Start,
// End, Level) are assigned as the tree is built, so a finished document is
// always consistently region-encoded.
//
// Usage:
//
//	b := xmltree.NewBuilder()
//	b.Start("bib")
//	b.Start("book")
//	b.Text("…")
//	b.End()
//	b.End()
//	doc, err := b.Done()
type Builder struct {
	doc     *Document
	stack   []*Node
	counter int
	err     error
}

// NewBuilder returns a Builder with an empty document node on the stack.
func NewBuilder() *Builder {
	root := &Node{Kind: DocumentNode, Start: -1, Level: 0}
	return &Builder{
		doc:   &Document{Root: root},
		stack: []*Node{root},
	}
}

func (b *Builder) top() *Node { return b.stack[len(b.stack)-1] }

func (b *Builder) attach(n *Node) {
	p := b.top()
	n.Parent = p
	n.Level = p.Level + 1
	if p.LastChild == nil {
		p.FirstChild = n
		p.LastChild = n
	} else {
		p.LastChild.NextSibling = n
		n.PrevSibling = p.LastChild
		p.LastChild = n
	}
	n.Start = b.counter
	n.End = b.counter
	b.counter++
	b.doc.nodeCount++
}

// Start opens a new element with the given tag.
func (b *Builder) Start(tag string) *Builder { return b.StartAttrs(tag, nil) }

// StartAttrs opens a new element with the given tag and attributes.
func (b *Builder) StartAttrs(tag string, attrs []Attr) *Builder {
	if b.err != nil {
		return b
	}
	if tag == "" {
		b.err = errors.New("xmltree: Builder.Start: empty tag")
		return b
	}
	if len(b.stack) == 1 && b.doc.Root.FirstChild != nil {
		b.err = fmt.Errorf("xmltree: Builder.Start(%q): document already has a root element", tag)
		return b
	}
	n := &Node{Kind: ElementNode, Tag: tag, Attrs: attrs}
	b.attach(n)
	b.stack = append(b.stack, n)
	return b
}

// Text appends a text node under the currently open element.
func (b *Builder) Text(s string) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 1 {
		b.err = errors.New("xmltree: Builder.Text outside any element")
		return b
	}
	n := &Node{Kind: TextNode, Text: s}
	b.attach(n)
	return b
}

// Elem appends a complete leaf element with text content.
func (b *Builder) Elem(tag, text string) *Builder {
	b.Start(tag)
	if text != "" {
		b.Text(text)
	}
	return b.End()
}

// End closes the currently open element and finalizes its region label.
func (b *Builder) End() *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) <= 1 {
		b.err = errors.New("xmltree: Builder.End with no open element")
		return b
	}
	n := b.top()
	n.End = b.counter - 1
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Depth returns the number of currently open elements.
func (b *Builder) Depth() int { return len(b.stack) - 1 }

// Err returns the first error encountered, if any.
func (b *Builder) Err() error { return b.err }

// Done finalizes and returns the document. It fails if elements remain
// open or an earlier call failed.
func (b *Builder) Done() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 1 {
		return nil, fmt.Errorf("xmltree: Builder.Done: %d unclosed element(s)", len(b.stack)-1)
	}
	b.doc.Root.End = b.counter
	b.doc.maxLabel = b.counter
	return b.doc, nil
}

// MustDone is Done for tests with known-good build sequences; library
// and generator code must use Done and propagate the error.
func (b *Builder) MustDone() *Document {
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}
