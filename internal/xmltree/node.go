// Package xmltree implements the XML document substrate used by every
// other component of the BlossomTree engine: an in-memory ordered tree
// model with first-child/next-sibling pointers, region-encoded node labels
// (start, end, level) assigned at parse time, document statistics, a
// streaming parser built on encoding/xml, and a programmatic builder used
// by the synthetic data generators.
//
// Region labels make the structural primitives of the paper O(1):
//
//	u is an ancestor of v   iff  u.Start < v.Start && v.End <= u.End
//	u << v (document order) iff  u.Start < v.Start
//
// Start doubles as the node's position in document order (preorder rank),
// which is the property Theorems 1 and 2 of the paper rely on.
package xmltree

import (
	"fmt"
	"strings"
)

// Kind discriminates the node types of the simplified XML data model.
// Comments and processing instructions are dropped at parse time; CDATA is
// folded into text.
type Kind uint8

// Node kinds.
const (
	DocumentNode Kind = iota // the artificial root above the document element
	ElementNode
	TextNode
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr is a single attribute of an element node.
type Attr struct {
	Name  string
	Value string
}

// Node is a single node of an XML tree. Nodes are linked in the classic
// first-child/next-sibling representation and additionally carry their
// region encoding. The zero value is not useful; nodes are created by the
// parser or by a Builder so that labels are always consistent.
type Node struct {
	Kind  Kind
	Tag   string // element tag name; empty for text and document nodes
	Text  string // character data; empty for element and document nodes
	Attrs []Attr

	Parent      *Node
	FirstChild  *Node
	LastChild   *Node
	NextSibling *Node
	PrevSibling *Node

	// Region encoding. Start is the preorder rank (document order) of the
	// node, End is strictly greater than the Start of every descendant and
	// at least Start. Level is the depth (document node is level 0, the
	// document element level 1).
	Start int
	End   int
	Level int
}

// IsElement reports whether n is an element node.
func (n *Node) IsElement() bool { return n != nil && n.Kind == ElementNode }

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n != nil && n.Kind == TextNode }

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// IsAncestorOf reports whether n is a proper ancestor of v, using the
// region encoding (O(1)).
func (n *Node) IsAncestorOf(v *Node) bool {
	if n == nil || v == nil || n == v {
		return false
	}
	return n.Start < v.Start && v.Start <= n.End
}

// IsDescendantOf reports whether n is a proper descendant of v.
func (n *Node) IsDescendantOf(v *Node) bool { return v.IsAncestorOf(n) }

// Before reports whether n precedes v in document order (the << operator
// of XQuery restricted to distinct nodes; for ancestor/descendant pairs
// the ancestor precedes, matching preorder).
func (n *Node) Before(v *Node) bool {
	if n == nil || v == nil {
		return false
	}
	return n.Start < v.Start
}

// ChildElements returns the element children of n in document order.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// NumChildren returns the number of children (all kinds).
func (n *Node) NumChildren() int {
	k := 0
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		k++
	}
	return k
}

// String renders a short diagnostic description of the node.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	switch n.Kind {
	case DocumentNode:
		return "#document"
	case TextNode:
		t := n.Text
		if len(t) > 20 {
			t = t[:20] + "…"
		}
		return fmt.Sprintf("#text(%q)", t)
	default:
		return fmt.Sprintf("<%s>[%d,%d]@%d", n.Tag, n.Start, n.End, n.Level)
	}
}

// Document is a parsed or constructed XML document: the artificial
// document node, its single document element, and global metadata.
type Document struct {
	Root *Node // the DocumentNode; Root.FirstChild element is the document element
	Name string

	// Bytes is the serialized size in bytes (actual input size when
	// parsed, estimated when built programmatically).
	Bytes int64

	nodeCount int
	maxLabel  int
}

// DocumentElement returns the top-level element of the document, or nil
// for an empty document.
func (d *Document) DocumentElement() *Node {
	if d == nil || d.Root == nil {
		return nil
	}
	for c := d.Root.FirstChild; c != nil; c = c.NextSibling {
		if c.Kind == ElementNode {
			return c
		}
	}
	return nil
}

// NodeCount returns the total number of element and text nodes.
func (d *Document) NodeCount() int { return d.nodeCount }

// MaxLabel returns one past the largest Start label in the document; the
// half-open label space is [0, MaxLabel).
func (d *Document) MaxLabel() int { return d.maxLabel }

// StringValue computes the XPath string-value of a node: the
// concatenation of all descendant text, with surrounding whitespace
// trimmed (the engine normalizes values for comparisons, matching how the
// paper's value predicates such as [.="Smith"] are evaluated).
func StringValue(n *Node) string {
	if n == nil {
		return ""
	}
	if n.Kind == TextNode {
		return strings.TrimSpace(n.Text)
	}
	var sb strings.Builder
	appendText(&sb, n)
	return strings.TrimSpace(sb.String())
}

func appendText(sb *strings.Builder, n *Node) {
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		switch c.Kind {
		case TextNode:
			sb.WriteString(c.Text)
		case ElementNode:
			appendText(sb, c)
		}
	}
}

// DeepEqual implements the deep-equal() semantics the paper's Example 1
// depends on: two empty sequences are deep-equal; two nodes are deep-equal
// if they have the same kind, tag, attributes, and pairwise deep-equal
// "significant" children (whitespace-only text nodes are ignored, text is
// compared after trimming).
func DeepEqual(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TextNode:
		return strings.TrimSpace(a.Text) == strings.TrimSpace(b.Text)
	case ElementNode:
		if a.Tag != b.Tag || len(a.Attrs) != len(b.Attrs) {
			return false
		}
		for i := range a.Attrs {
			if a.Attrs[i] != b.Attrs[i] {
				return false
			}
		}
	}
	ac, bc := significantChildren(a), significantChildren(b)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !DeepEqual(ac[i], bc[i]) {
			return false
		}
	}
	return true
}

// DeepEqualSeq extends DeepEqual to sequences, per XQuery F&O: sequences
// are deep-equal iff they have the same length and are pairwise
// deep-equal. Two empty sequences are deep-equal.
func DeepEqualSeq(a, b []*Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func significantChildren(n *Node) []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Kind == TextNode && strings.TrimSpace(c.Text) == "" {
			continue
		}
		out = append(out, c)
	}
	return out
}
