package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"blossomtree/internal/exec"
	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmltree"
)

// testDoc builds one synthetic bib document with i+2 books whose prices
// and titles are distinct per document, so differential comparisons
// catch any cross-document mixup.
func testDoc(t *testing.T, i int) *xmltree.Document {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<bib>")
	for b := 0; b < i%3+2; b++ {
		fmt.Fprintf(&sb, `<book year="%d"><title>T%d-%d</title><price>%d</price></book>`,
			1990+i, i, b, 10*(b+1)+i)
	}
	sb.WriteString("</bib>")
	doc, err := xmltree.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// loadFixture registers docs on the group and a reference unsharded
// engine until every shard holds at least one document.
func loadFixture(t *testing.T, g *Group, ref *exec.Engine) []string {
	t.Helper()
	var uris []string
	populated := map[int]bool{}
	for i := 0; len(populated) < g.Shards() || len(uris) < 6; i++ {
		if i > 200 {
			t.Fatalf("could not populate all %d shards after %d docs", g.Shards(), i)
		}
		uri := fmt.Sprintf("doc-%d.xml", i)
		doc := testDoc(t, i)
		populated[g.Add(uri, doc)] = true
		if ref != nil {
			ref.Add(uri, doc)
		}
		uris = append(uris, uri)
	}
	return uris
}

var differentialQueries = []string{
	`//book/title`,
	`//book[price<30]/title`,
	`//book[starts-with(@year, "19")]`,
	`//book[position()=1]/price`,
	`for $b in doc("any.xml")//book where $b/price > 15 order by $b/title return $b/title`,
	`for $b in doc("any.xml")//book return <hit>{$b/title}</hit>`,
}

// TestEvalAllDocsDifferential: for every shard count, the scatter-gather
// result is byte-identical (per document, in the same URI order) to the
// unsharded engine's catalog-wide fan-out.
func TestEvalAllDocsDifferential(t *testing.T) {
	for n := 1; n <= 4; n++ {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			ref := exec.NewWithConfig(exec.Config{BuildIndexes: true})
			g := New(Config{Shards: n, BuildIndexes: true})
			loadFixture(t, g, ref)
			for _, q := range differentialQueries {
				want, err := ref.EvalAllDocs(q, plan.Options{}, 0)
				if err != nil {
					t.Fatalf("unsharded %q: %v", q, err)
				}
				got, deg, err := g.EvalAllDocs(q, plan.Options{}, 0, 0)
				if err != nil {
					t.Fatalf("sharded %q: %v", q, err)
				}
				if deg != nil {
					t.Fatalf("healthy scatter degraded: %+v", deg)
				}
				assertSameDocResults(t, q, want, got)
			}
		})
	}
}

// assertSameDocResults compares two per-document result lists for
// byte-identical canonical forms in identical URI order.
func assertSameDocResults(t *testing.T, q string, want, got []exec.DocResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%q: %d docs sharded vs %d unsharded", q, len(got), len(want))
	}
	for i := range want {
		if want[i].URI != got[i].URI {
			t.Fatalf("%q: doc %d URI %q vs %q (order diverged)", q, i, got[i].URI, want[i].URI)
		}
		we, ge := errString(want[i].Err), errString(got[i].Err)
		if we != ge {
			t.Fatalf("%q [%s]: err %q vs %q", q, want[i].URI, ge, we)
		}
		if want[i].Err != nil {
			continue
		}
		if w, g := exec.Canonical(want[i].Result), exec.Canonical(got[i].Result); w != g {
			t.Errorf("%q [%s]: canonical result diverged\nsharded:   %s\nunsharded: %s", q, want[i].URI, g, w)
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestEvalRoutesLikeUnsharded: single-document queries against the
// group return exactly what the unsharded engine returns, whichever
// shard owns the document.
func TestEvalRoutesLikeUnsharded(t *testing.T) {
	ref := exec.NewWithConfig(exec.Config{BuildIndexes: true})
	g := New(Config{Shards: 3, BuildIndexes: true})
	uris := loadFixture(t, g, ref)
	for _, uri := range uris {
		q := fmt.Sprintf(`for $b in doc(%q)//book where $b/price > 15 return $b/title`, uri)
		want, err := ref.EvalOptions(q, plan.Options{})
		if err != nil {
			t.Fatalf("unsharded %q: %v", q, err)
		}
		got, err := g.Eval(q, plan.Options{})
		if err != nil {
			t.Fatalf("sharded %q: %v", q, err)
		}
		if w, gs := exec.Canonical(want), exec.Canonical(got); w != gs {
			t.Errorf("%s: canonical diverged\nsharded:   %s\nunsharded: %s", uri, gs, w)
		}
	}
}

// TestRouteErrors: the group rejects what the unsharded engine rejects,
// with actionable messages.
func TestRouteErrors(t *testing.T) {
	g := New(Config{Shards: 2, BuildIndexes: true})
	if _, err := g.Eval(`//book`, plan.Options{}); err == nil || !strings.Contains(err.Error(), "no documents registered") {
		t.Errorf("empty catalog: err = %v", err)
	}

	loadFixture(t, g, nil)
	if _, err := g.Eval(`doc("nope.xml")//book`, plan.Options{}); err == nil || !strings.Contains(err.Error(), "no document registered") {
		t.Errorf("unknown URI: err = %v", err)
	}
	q := `for $x in doc("doc-0.xml")//book, $y in doc("doc-1.xml")//book return $x`
	if _, err := g.Eval(q, plan.Options{}); err == nil || !strings.Contains(err.Error(), "spans multiple documents") {
		t.Errorf("multi-doc query: err = %v", err)
	}

	// A single-document catalog serves any URI (the engine's fallback).
	g1 := New(Config{Shards: 2, BuildIndexes: true})
	g1.Add("only.xml", testDoc(t, 0))
	if _, err := g1.Eval(`doc("whatever.xml")//book`, plan.Options{}); err != nil {
		t.Errorf("single-doc fallback: %v", err)
	}
}

// chaosFixture returns a 3-shard group (every shard populated), its
// reference fault-free scatter result, and the participant list.
func chaosFixture(t *testing.T) (*Group, []exec.DocResult, []int) {
	t.Helper()
	g := New(Config{Shards: 3, BuildIndexes: true, RetryBackoff: time.Millisecond})
	loadFixture(t, g, nil)
	want, deg, err := g.EvalAllDocs(`//book[price<40]/title`, plan.Options{}, 0, 0)
	if err != nil || deg != nil {
		t.Fatalf("fault-free scatter: err=%v deg=%+v", err, deg)
	}
	return g, want, g.populatedShards()
}

// TestChaosScatterRetryRecovers: a transient scatter fault on the
// first, middle, and last shard is absorbed by the single retry — the
// result is byte-identical to the fault-free run and the retry counter
// moves.
func TestChaosScatterRetryRecovers(t *testing.T) {
	g, want, parts := chaosFixture(t)
	if len(parts) != 3 {
		t.Fatalf("participants = %v, want 3 shards", parts)
	}
	for pos, name := range map[int64]string{1: "first", 2: "middle", 3: "last"} {
		t.Run(name, func(t *testing.T) {
			before := obs.Default.Snapshot()
			// fanout=1 serializes the scatter in ascending shard order, so
			// the k-th scatter hit is deterministically shard parts[k-1].
			opts := plan.Options{Fault: fault.New().FailAt(fault.SiteShardScatter, pos, nil)}
			got, deg, err := g.EvalAllDocs(`//book[price<40]/title`, opts, 1, 0)
			if err != nil {
				t.Fatalf("scatter: %v", err)
			}
			if deg != nil {
				t.Fatalf("retry should have absorbed the fault, got degraded %+v", deg)
			}
			assertSameDocResults(t, "chaos-retry", want, got)
			d := obs.Default.Delta(before)
			if d[obs.MetricShardRetries] != 1 {
				t.Errorf("shard_retries_total delta = %d, want 1", d[obs.MetricShardRetries])
			}
			if d[obs.MetricShardFailures] != 1 {
				t.Errorf("shard_failures_total delta = %d, want 1", d[obs.MetricShardFailures])
			}
		})
	}
}

// TestChaosPersistentFailureDegrades: a shard that fails its attempt
// AND its retry degrades out of the gather. The partial result is a
// strict, correctly-ordered subset of the fault-free result, and the
// degradation record names exactly the dead shard.
func TestChaosPersistentFailureDegrades(t *testing.T) {
	g, want, parts := chaosFixture(t)
	for i, si := range parts {
		t.Run(fmt.Sprintf("shard=%d", si), func(t *testing.T) {
			before := obs.Default.Snapshot()
			// Two-hit fault starting at the shard's first attempt (hit i+1
			// under fanout=1): the retry (hit i+2) hits the same wall, and
			// the shards dispatched after it stay healthy.
			opts := plan.Options{Fault: fault.New().FailTimes(fault.SiteShardScatter, int64(i+1), 2, nil)}
			got, deg, err := g.EvalAllDocs(`//book[price<40]/title`, opts, 1, 0)
			if err != nil {
				t.Fatalf("scatter: %v", err)
			}
			if deg == nil {
				t.Fatal("persistent shard failure did not degrade")
			}
			if len(deg.FailedShards) != 1 || deg.FailedShards[0] != si {
				t.Errorf("FailedShards = %v, want [%d]", deg.FailedShards, si)
			}
			if len(deg.Errors) != 1 || deg.Errors[0] == "" {
				t.Errorf("Errors = %v, want one message", deg.Errors)
			}
			assertStrictOrderedSubset(t, g, want, got, si)
			d := obs.Default.Delta(before)
			if d[obs.MetricShardDegraded] != 1 {
				t.Errorf("shard_degraded_total delta = %d, want 1", d[obs.MetricShardDegraded])
			}
			// Both attempts of the dead shard (and the injected-fault retry in
			// between) are visible in the counters.
			if d[obs.MetricShardRetries] != 1 || d[obs.MetricShardFailures] != 2 {
				t.Errorf("retries/failures delta = %d/%d, want 1/2",
					d[obs.MetricShardRetries], d[obs.MetricShardFailures])
			}
		})
	}
}

// assertStrictOrderedSubset checks that got is exactly want minus the
// documents owned by deadShard, in the same relative (URI-sorted)
// order, with surviving documents byte-identical.
func assertStrictOrderedSubset(t *testing.T, g *Group, want, got []exec.DocResult, deadShard int) {
	t.Helper()
	var surviving []exec.DocResult
	for _, dr := range want {
		if si, ok := g.ShardOf(dr.URI); ok && si != deadShard {
			surviving = append(surviving, dr)
		}
	}
	if len(surviving) == len(want) {
		t.Fatalf("shard %d owns no documents; fixture broken", deadShard)
	}
	assertSameDocResults(t, "chaos-degraded", surviving, got)
}

// TestChaosGatherFaultDegrades: a response lost after evaluation (the
// gather fault site) degrades the request without a retry — there is
// nothing left to re-run.
func TestChaosGatherFaultDegrades(t *testing.T) {
	g, want, parts := chaosFixture(t)
	before := obs.Default.Snapshot()
	opts := plan.Options{Fault: fault.New().FailAt(fault.SiteShardGather, 1, nil)}
	got, deg, err := g.EvalAllDocs(`//book[price<40]/title`, opts, 1, 0)
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	if deg == nil {
		t.Fatal("lost gather response did not degrade")
	}
	// Under fanout=1 the gather walks outcomes in ascending shard order,
	// so the first gather hit is the first participant.
	if len(deg.FailedShards) != 1 || deg.FailedShards[0] != parts[0] {
		t.Errorf("FailedShards = %v, want [%d]", deg.FailedShards, parts[0])
	}
	assertStrictOrderedSubset(t, g, want, got, parts[0])
	d := obs.Default.Delta(before)
	if d[obs.MetricShardRetries] != 0 {
		t.Errorf("gather fault must not retry, retries delta = %d", d[obs.MetricShardRetries])
	}
}

// TestChaosAllShardsFailed: when every shard is dead the request fails
// outright instead of returning an empty "degraded" success.
func TestChaosAllShardsFailed(t *testing.T) {
	g, _, _ := chaosFixture(t)
	boom := errors.New("rack on fire")
	opts := plan.Options{Fault: fault.New().FailFrom(fault.SiteShardScatter, 1, boom)}
	got, deg, err := g.EvalAllDocs(`//book/title`, opts, 1, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if got != nil || deg != nil {
		t.Errorf("total failure returned results/degradation: %v %+v", got, deg)
	}
}

// TestScatterBudgetSplit: the request's node budget is divided across
// the shards; a budget the catalog cannot fit in aborts every shard and
// surfaces as a budget error, while a generous one passes untouched.
func TestScatterBudgetSplit(t *testing.T) {
	g, want, _ := chaosFixture(t)
	_, _, err := g.EvalAllDocs(`//book/title`, plan.Options{Budget: gov.Budget{MaxNodes: 1}}, 0, 0)
	if gov.Verdict(err) != "budget_exceeded" {
		t.Fatalf("starved scatter: err = %v, verdict %q", err, gov.Verdict(err))
	}
	got, deg, err := g.EvalAllDocs(`//book[price<40]/title`, plan.Options{Budget: gov.Budget{MaxNodes: 1 << 20, Timeout: time.Minute}}, 0, 0)
	if err != nil || deg != nil {
		t.Fatalf("funded scatter: err=%v deg=%+v", err, deg)
	}
	assertSameDocResults(t, "budget", want, got)
}

// TestShardBudget covers the arithmetic of the per-shard budget
// derivation.
func TestShardBudget(t *testing.T) {
	b := shardBudget(gov.Budget{MaxNodes: 10, MaxOutput: 7}, 3, time.Time{})
	if b.MaxNodes != 4 || b.MaxOutput != 7 || b.Timeout != 0 {
		t.Errorf("shardBudget = %+v, want nodes 4 (ceil 10/3), output 7, no timeout", b)
	}
	b = shardBudget(gov.Budget{}, 4, time.Now().Add(time.Hour))
	if b.MaxNodes != 0 || b.Timeout <= 0 || b.Timeout > time.Hour {
		t.Errorf("shardBudget = %+v, want remaining wall-clock timeout", b)
	}
	b = shardBudget(gov.Budget{}, 2, time.Now().Add(-time.Second))
	if b.Timeout != time.Nanosecond {
		t.Errorf("expired deadline timeout = %v, want 1ns fail-fast", b.Timeout)
	}
}

// TestScatterCanceledContext: a canceled parent context aborts the
// scatter with a canceled verdict and skips the (futile) retry.
func TestScatterCanceledContext(t *testing.T) {
	g, _, _ := chaosFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := obs.Default.Snapshot()
	_, _, err := g.EvalAllDocs(`//book/title`, plan.Options{Ctx: ctx}, 0, 0)
	if gov.Verdict(err) != "canceled" {
		t.Fatalf("err = %v, verdict %q, want canceled", err, gov.Verdict(err))
	}
	if d := obs.Default.Delta(before); d[obs.MetricShardRetries] != 0 {
		t.Errorf("canceled scatter retried %d times, want 0", d[obs.MetricShardRetries])
	}
}

// TestMergeResults: the merged single-result view concatenates the
// surviving documents in URI order and carries the degradation record.
func TestMergeResults(t *testing.T) {
	g, _, _ := chaosFixture(t)
	docs, deg, err := g.EvalAllDocs(`//book/title`, plan.Options{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := MergeResults(docs, deg)
	var n int
	for _, dr := range docs {
		if dr.Err == nil {
			n += len(dr.Result.Nodes)
		}
	}
	if len(res.Nodes) != n {
		t.Errorf("merged nodes = %d, want %d", len(res.Nodes), n)
	}
	if res.Degraded != nil {
		t.Errorf("healthy merge carries degradation: %+v", res.Degraded)
	}
	info := &exec.DegradedInfo{FailedShards: []int{1}}
	if MergeResults(docs, info).Degraded != info {
		t.Error("degradation record not carried through the merge")
	}
}

// TestLatencyHistogramMerge: per-shard latency observations fold into
// the merged cross-shard histogram.
func TestLatencyHistogramMerge(t *testing.T) {
	g, _, _ := chaosFixture(t)
	preCount := g.LatencyHistogram().Count()
	if _, _, err := g.EvalAllDocs(`//book/title`, plan.Options{}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := g.LatencyHistogram().Count(); got <= preCount {
		t.Errorf("merged histogram count %d did not grow past %d", got, preCount)
	}
}
