package shard

import (
	"blossomtree/internal/flwor"
	"blossomtree/internal/xpath"
)

// docRefs is the set of document references a query reaches: every
// doc("…") URI appearing in any path of the expression, plus whether
// any absolute (/, //) path appears — absolute paths resolve to the
// catalog's first registered document, so the router must treat them as
// a reference to it.
type docRefs struct {
	uris map[string]bool
	root bool
}

// collectDocRefs walks a parsed expression and gathers its document
// references. The walk must reach every position a path can occupy —
// clauses, where-conditions and their operands, function-call
// arguments, step predicates, order-by, return expressions and
// constructor content — or the router could send a query to a shard
// missing one of its documents.
func collectDocRefs(e flwor.Expr) docRefs {
	r := docRefs{uris: map[string]bool{}}
	r.expr(e)
	return r
}

func (r *docRefs) expr(e flwor.Expr) {
	switch t := e.(type) {
	case *flwor.PathExpr:
		r.path(t.Path)
	case *flwor.Sequence:
		for _, it := range t.Items {
			r.expr(it)
		}
	case *flwor.ElemCtor:
		for _, c := range t.Content {
			r.expr(c)
		}
	case *flwor.TextCtor:
	case *flwor.FLWOR:
		for _, cl := range t.Clauses {
			r.path(cl.Path)
		}
		r.cond(t.Where)
		r.path(t.OrderBy)
		r.expr(t.Return)
	}
}

func (r *docRefs) cond(c flwor.Cond) {
	switch t := c.(type) {
	case nil:
	case flwor.CondAnd:
		r.cond(t.L)
		r.cond(t.R)
	case flwor.CondOr:
		r.cond(t.L)
		r.cond(t.R)
	case flwor.CondNot:
		r.cond(t.C)
	case flwor.CondCmp:
		r.operand(t.Left)
		r.operand(t.Right)
	case flwor.CondDocOrder:
		r.path(t.Left)
		r.path(t.Right)
	case flwor.CondDeepEqual:
		r.path(t.Left)
		r.path(t.Right)
	case flwor.CondExists:
		r.path(t.Path)
	case flwor.CondBool:
		r.funcCall(t.Fn)
	}
}

func (r *docRefs) path(p *xpath.Path) {
	if p == nil {
		return
	}
	switch p.Source.Kind {
	case xpath.SourceDoc:
		r.uris[p.Source.Doc] = true
	case xpath.SourceRoot:
		r.root = true
	}
	for _, st := range p.Steps {
		for _, pred := range st.Preds {
			r.pred(pred)
		}
	}
}

func (r *docRefs) pred(e xpath.Expr) {
	switch t := e.(type) {
	case nil:
	case xpath.Exists:
		r.path(t.Path)
	case xpath.Compare:
		r.operand(t.Left)
		r.operand(t.Right)
	case xpath.And:
		r.pred(t.L)
		r.pred(t.R)
	case xpath.Or:
		r.pred(t.L)
		r.pred(t.R)
	case xpath.Not:
		r.pred(t.E)
	case xpath.Position:
	case *xpath.FuncCall:
		r.funcCall(t)
	}
}

func (r *docRefs) operand(o xpath.Operand) {
	switch o.Kind {
	case xpath.OperandPath:
		r.path(o.Path)
	case xpath.OperandFunc:
		r.funcCall(o.Fn)
	}
}

func (r *docRefs) funcCall(f *xpath.FuncCall) {
	if f == nil {
		return
	}
	for _, a := range f.Args {
		r.operand(a)
	}
}
