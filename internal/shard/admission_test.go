package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/obs"
)

// TestAdmissionNil: a nil controller admits everything (the unguarded
// daemon configuration).
func TestAdmissionNil(t *testing.T) {
	var a *Admission
	release, err := a.Admit(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if a.Queued() != 0 || a.Inflight() != 0 {
		t.Error("nil admission has state")
	}
}

// TestAdmissionTokenBucket: each tenant gets TenantBurst immediate
// admits, then sheds until the bucket refills at TenantQPS; other
// tenants are unaffected.
func TestAdmissionTokenBucket(t *testing.T) {
	a := NewAdmission(AdmissionConfig{TenantQPS: 10, TenantBurst: 2})
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		release, err := a.Admit(context.Background(), "alice")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release()
	}
	before := obs.Default.Snapshot()
	_, err := a.Admit(context.Background(), "alice")
	var sh *ShedError
	if !errors.As(err, &sh) {
		t.Fatalf("over-quota admit: err = %v, want *ShedError", err)
	}
	if !errors.Is(err, gov.ErrShed) || gov.Verdict(err) != "shed" {
		t.Errorf("shed error does not unwrap to ErrShed: %v", err)
	}
	if sh.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s (wire clamp)", sh.RetryAfter)
	}
	if d := obs.Default.Delta(before); d[obs.MetricQueriesShed] != 1 {
		t.Errorf("queries_shed_total delta = %d, want 1", d[obs.MetricQueriesShed])
	}

	// A different tenant still has its own full bucket.
	if _, err := a.Admit(context.Background(), "bob"); err != nil {
		t.Errorf("fresh tenant shed alongside the hot one: %v", err)
	}

	// 100ms at 10 qps refills one token for alice.
	clock = clock.Add(100 * time.Millisecond)
	if release, err := a.Admit(context.Background(), "alice"); err != nil {
		t.Errorf("post-refill admit: %v", err)
	} else {
		release()
	}
}

// TestAdmissionInflightAndQueue: MaxInflight gates concurrency, the
// queue hands freed slots to waiters, and a full queue sheds.
func TestAdmissionInflightAndQueue(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 1, MaxWait: 5 * time.Second})
	r1, err := a.Admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if a.Inflight() != 1 {
		t.Fatalf("inflight = %d, want 1", a.Inflight())
	}

	granted := make(chan func(), 1)
	go func() {
		r2, err := a.Admit(context.Background(), "t")
		if err != nil {
			t.Error(err)
			granted <- func() {}
			return
		}
		granted <- r2
	}()
	waitFor(t, func() bool { return a.Queued() == 1 })

	// Queue is full now: the next request sheds immediately.
	if _, err := a.Admit(context.Background(), "t"); err == nil || !errors.Is(err, gov.ErrShed) {
		t.Fatalf("full queue: err = %v, want shed", err)
	}

	r1() // frees the slot, which must grant the queued waiter
	r2 := <-granted
	if a.Queued() != 0 || a.Inflight() != 1 {
		t.Errorf("after handoff: queued=%d inflight=%d, want 0/1", a.Queued(), a.Inflight())
	}
	r2()
	r2() // double release must be a no-op
	if a.Inflight() != 0 {
		t.Errorf("inflight = %d after release, want 0", a.Inflight())
	}
}

// TestAdmissionWeightedFairOrder: when a slot frees, the waiter with the
// smallest virtual finish tag wins — a weight-2 tenant beats a weight-1
// tenant that queued first.
func TestAdmissionWeightedFairOrder(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxInflight: 1,
		MaxQueue:    4,
		MaxWait:     5 * time.Second,
		Weights:     map[string]float64{"heavy": 2, "light": 1},
	})
	r1, err := a.Admit(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 2)
	enqueue := func(tenant string) {
		go func() {
			release, err := a.Admit(context.Background(), tenant)
			if err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			order <- tenant
			release()
		}()
	}
	// light queues first (finish tag 1/1=1), heavy second (1/2=0.5);
	// weighted fairness grants heavy first anyway.
	enqueue("light")
	waitFor(t, func() bool { return a.Queued() == 1 })
	enqueue("heavy")
	waitFor(t, func() bool { return a.Queued() == 2 })

	r1()
	if first := <-order; first != "heavy" {
		t.Errorf("first grant = %q, want the weight-2 tenant", first)
	}
	if second := <-order; second != "light" {
		t.Errorf("second grant = %q, want light", second)
	}
}

// TestAdmissionQueueTimeout: a waiter sheds after MaxWait with the wait
// as its retry hint.
func TestAdmissionQueueTimeout(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 2, MaxWait: 20 * time.Millisecond})
	release, err := a.Admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	_, err = a.Admit(context.Background(), "t")
	var sh *ShedError
	if !errors.As(err, &sh) {
		t.Fatalf("queued past MaxWait: err = %v, want *ShedError", err)
	}
	if a.Queued() != 0 {
		t.Errorf("timed-out waiter still queued: %d", a.Queued())
	}
}

// TestAdmissionCanceledWhileQueued: a context canceled in the queue is
// a client abort (verdict "canceled"), not a shed — the server must
// answer 499, not 429.
func TestAdmissionCanceledWhileQueued(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 2, MaxWait: 5 * time.Second})
	release, err := a.Admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Admit(ctx, "t")
		errc <- err
	}()
	waitFor(t, func() bool { return a.Queued() == 1 })
	cancel()
	err = <-errc
	if !errors.Is(err, gov.ErrCanceled) || errors.Is(err, gov.ErrShed) {
		t.Fatalf("canceled waiter: err = %v, want ErrCanceled (not shed)", err)
	}
	if gov.Verdict(err) != "canceled" {
		t.Errorf("verdict = %q, want canceled", gov.Verdict(err))
	}
	if a.Queued() != 0 {
		t.Errorf("canceled waiter still queued: %d", a.Queued())
	}
}

// TestAdmissionInjectedFault: the shard.admission fault site sheds the
// k-th admission decision deterministically.
func TestAdmissionInjectedFault(t *testing.T) {
	inj := fault.New().FailAt(fault.SiteShardAdmission, 2, nil)
	a := NewAdmission(AdmissionConfig{Fault: inj})
	if _, err := a.Admit(context.Background(), "t"); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if _, err := a.Admit(context.Background(), "t"); !errors.Is(err, gov.ErrShed) {
		t.Fatalf("second admit: err = %v, want injected shed", err)
	}
	if _, err := a.Admit(context.Background(), "t"); err != nil {
		t.Fatalf("third admit: %v (fault fires once)", err)
	}
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 1s")
		}
		time.Sleep(time.Millisecond)
	}
}
