package shard

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: the same URI always lands on the same shard,
// and the assignment is a pure function of the shard count.
func TestRingDeterministic(t *testing.T) {
	r1 := newRing(4)
	r2 := newRing(4)
	for i := 0; i < 200; i++ {
		uri := fmt.Sprintf("doc-%d.xml", i)
		a, b := r1.shardOf(uri), r2.shardOf(uri)
		if a != b {
			t.Fatalf("shardOf(%q) = %d vs %d across identical rings", uri, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("shardOf(%q) = %d out of range", uri, a)
		}
	}
}

// TestRingDistribution: with enough vnodes per shard, hashing many URIs
// spreads them over every shard without a pathological skew.
func TestRingDistribution(t *testing.T) {
	const shards, uris = 4, 1000
	r := newRing(shards)
	counts := make([]int, shards)
	for i := 0; i < uris; i++ {
		counts[r.shardOf(fmt.Sprintf("doc-%d.xml", i))]++
	}
	for si, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no documents: %v", si, counts)
		}
		// 64 vnodes/shard keeps the spread well inside 3x of fair share.
		if c > 3*uris/shards {
			t.Errorf("shard %d holds %d of %d URIs (skew): %v", si, c, uris, counts)
		}
	}
}

// TestRingStability: growing the ring moves only a fraction of the
// URIs — the consistent-hashing property that makes resharding cheap.
func TestRingStability(t *testing.T) {
	const uris = 1000
	r4, r5 := newRing(4), newRing(5)
	moved := 0
	for i := 0; i < uris; i++ {
		uri := fmt.Sprintf("doc-%d.xml", i)
		if r4.shardOf(uri) != r5.shardOf(uri) {
			moved++
		}
	}
	// Ideal is 1/5 of keys; allow generous slack but catch a rehash-the-world
	// implementation (which would move ~4/5 of them).
	if moved > uris/2 {
		t.Errorf("growing 4→5 shards moved %d/%d URIs; consistent hashing should move ~%d", moved, uris, uris/5)
	}
}

// TestRingSingleShard: a one-shard ring routes everything to shard 0.
func TestRingSingleShard(t *testing.T) {
	r := newRing(1)
	for i := 0; i < 50; i++ {
		if si := r.shardOf(fmt.Sprintf("u%d", i)); si != 0 {
			t.Fatalf("single-shard ring routed to %d", si)
		}
	}
}
