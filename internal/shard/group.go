package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"blossomtree/internal/exec"
	"blossomtree/internal/fault"
	"blossomtree/internal/flwor"
	"blossomtree/internal/gov"
	"blossomtree/internal/obs"
	"blossomtree/internal/plan"
	"blossomtree/internal/segstore"
	"blossomtree/internal/xmltree"
)

// Config configures a shard group.
type Config struct {
	// Shards is the number of in-process engine shards (minimum 1).
	Shards int
	// BuildIndexes is passed through to each shard engine.
	BuildIndexes bool
	// RetryBackoff is the base backoff before the single retry of a
	// failed shard sub-query; the actual sleep adds up to one extra
	// backoff of jitter. Defaults to 5ms when zero.
	RetryBackoff time.Duration
}

// Group is a consistent-hash router over N in-process engine shards.
// Documents are assigned to shards by URI hash at Add time; queries
// naming a single document route to its owning shard, and catalog-wide
// scatters fan out across every populated shard.
//
// A Group is safe for concurrent use under the same discipline as the
// engine: Add installs documents copy-on-write inside each shard, and
// the routing table is guarded by its own lock.
type Group struct {
	cfg  Config
	ring *ring

	shards []*exec.Engine
	// hists are the per-shard latency histograms
	// (shard_<i>_query_duration_seconds in the default registry); the
	// merged cross-shard view comes from LatencyHistogram via
	// Histogram.Merge.
	hists []*obs.Histogram

	mu    sync.RWMutex
	uris  map[string]int // URI → owning shard
	order []string       // registration order; order[0] anchors absolute paths
}

// New returns a group of cfg.Shards engine shards.
func New(cfg Config) *Group {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	g := &Group{
		cfg:    cfg,
		ring:   newRing(cfg.Shards),
		shards: make([]*exec.Engine, cfg.Shards),
		hists:  make([]*obs.Histogram, cfg.Shards),
		uris:   map[string]int{},
	}
	for i := range g.shards {
		g.shards[i] = exec.NewWithConfig(exec.Config{BuildIndexes: cfg.BuildIndexes})
		g.hists[i] = obs.Default.Histogram(fmt.Sprintf("shard_%d_query_duration_seconds", i), obs.LatencyBuckets)
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *Group) Shards() int { return len(g.shards) }

// Docs returns the number of registered documents.
func (g *Group) Docs() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.order)
}

// URIs returns the registered URIs sorted ascending.
func (g *Group) URIs() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := append([]string(nil), g.order...)
	sort.Strings(out)
	return out
}

// ShardOf returns the shard index owning uri and whether uri is
// registered.
func (g *Group) ShardOf(uri string) (int, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok := g.uris[uri]
	return s, ok
}

// Add registers a document, routing it to its ring-assigned shard, and
// returns the shard index. Re-adding a URI replaces the document on the
// shard that already owns it.
func (g *Group) Add(uri string, doc *xmltree.Document) int {
	g.mu.Lock()
	si, ok := g.uris[uri]
	if !ok {
		si = g.ring.shardOf(uri)
		g.uris[uri] = si
		g.order = append(g.order, uri)
	}
	g.mu.Unlock()
	g.shards[si].Add(uri, doc)
	return si
}

// AttachStore routes every servable document of a persistent segment
// store to its ring-owned shard: each shard engine attaches the same
// store restricted to the URI subset the consistent hash assigned it,
// so a store reopened after a restart reproduces the exact document
// placement the original Load produced (ring assignment depends only on
// the URI and the shard count). Documents stay lazy — a shard
// materializes a document only when a query first touches it.
func (g *Group) AttachStore(st *segstore.Store) {
	per := make([][]string, len(g.shards))
	g.mu.Lock()
	for _, uri := range st.URIs() {
		si, ok := g.uris[uri]
		if !ok {
			si = g.ring.shardOf(uri)
			g.uris[uri] = si
			g.order = append(g.order, uri)
		}
		per[si] = append(per[si], uri)
	}
	g.mu.Unlock()
	for si, uris := range per {
		if len(uris) > 0 {
			g.shards[si].AttachStoreURIs(st, uris)
		}
	}
}

// Document returns the document registered under uri, applying the
// same fallback rules as the unsharded engine (empty URI or a
// single-document catalog resolve to the first registered document).
func (g *Group) Document(uri string) (*xmltree.Document, bool) {
	target, _, err := g.route(docRefsFor(uri))
	if err != nil {
		return nil, false
	}
	return g.shards[g.owner(target)].Document(target)
}

// docRefsFor builds the reference set of a single literal URI ("" means
// an absolute path).
func docRefsFor(uri string) docRefs {
	r := docRefs{uris: map[string]bool{}}
	if uri == "" {
		r.root = true
	} else {
		r.uris[uri] = true
	}
	return r
}

// owner returns the shard owning uri (which must be registered).
func (g *Group) owner(uri string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.uris[uri]
}

// route resolves a query's document references to the single document
// it evaluates against, mirroring the unsharded engine's resolution
// rules: absolute paths anchor at the first registered document, a
// single-document catalog serves any URI, an unknown URI in a
// multi-document catalog is an error, and a query naming several
// distinct documents is rejected (evaluate per document).
func (g *Group) route(refs docRefs) (string, int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.order) == 0 {
		return "", 0, fmt.Errorf("shard: no documents registered")
	}
	first := g.order[0]
	targets := map[string]bool{}
	for u := range refs.uris {
		if _, ok := g.uris[u]; ok {
			targets[u] = true
			continue
		}
		if u == "" || len(g.order) == 1 {
			targets[first] = true
			continue
		}
		return "", 0, fmt.Errorf("shard: no document registered for %q (%d documents loaded; doc(\"…\") must name one of them)", u, len(g.order))
	}
	if refs.root || len(targets) == 0 {
		targets[first] = true
	}
	if len(targets) > 1 {
		us := make([]string, 0, len(targets))
		for u := range targets {
			us = append(us, u)
		}
		sort.Strings(us)
		return "", 0, fmt.Errorf("shard: query spans multiple documents (%q, %q); evaluate per document", us[0], us[1])
	}
	var uri string
	for u := range targets {
		uri = u
	}
	return uri, g.uris[uri], nil
}

// Eval routes a single-document query to the shard owning its document
// and evaluates it there with resolution pinned to that document, so
// sharded evaluation preserves the unsharded engine's semantics
// regardless of which other documents share the shard.
func (g *Group) Eval(src string, opts plan.Options) (*exec.Result, error) {
	expr, err := flwor.Parse(src)
	if err != nil {
		return nil, err
	}
	uri, si, err := g.route(collectDocRefs(expr))
	if err != nil {
		return nil, err
	}
	obs.Default.Add(obs.MetricShardQueries, 1)
	t0 := time.Now()
	res, err := g.shards[si].EvalDocOptions(uri, src, opts)
	g.hists[si].ObserveDuration(time.Since(t0))
	return res, err
}

// Explain routes EXPLAIN like Eval.
func (g *Group) Explain(src string, opts plan.Options) (string, error) {
	expr, err := flwor.Parse(src)
	if err != nil {
		return "", err
	}
	uri, si, err := g.route(collectDocRefs(expr))
	if err != nil {
		return "", err
	}
	return g.shards[si].ExplainDocOptions(uri, src, opts)
}

// ExplainAnalyze routes EXPLAIN ANALYZE like Eval.
func (g *Group) ExplainAnalyze(src string, opts plan.Options) (string, error) {
	expr, err := flwor.Parse(src)
	if err != nil {
		return "", err
	}
	uri, si, err := g.route(collectDocRefs(expr))
	if err != nil {
		return "", err
	}
	return g.shards[si].ExplainAnalyzeDocOptions(uri, src, opts)
}

// EvalBatch evaluates a batch of routed queries across the group with
// at most workers concurrent evaluations.
func (g *Group) EvalBatch(srcs []string, opts plan.Options, workers int) []exec.BatchResult {
	out := make([]exec.BatchResult, len(srcs))
	forEach(len(srcs), workers, func(i int) {
		qopts := opts
		if qopts.QueryID != "" {
			qopts.QueryID = fmt.Sprintf("%s-%d", qopts.QueryID, i)
		}
		res, err := g.Eval(srcs[i], qopts)
		out[i] = exec.BatchResult{Query: srcs[i], Result: res, Err: err}
	})
	return out
}

// shardOutcome is one shard's contribution to a scatter.
type shardOutcome struct {
	shard    int
	results  []exec.DocResult
	err      error // terminal failure (after the retry)
	attempts int
	stats    *obs.OpStats
}

// EvalAllDocs scatters one query across every populated shard and
// gathers the per-document results in URI order — the sharded form of
// the engine's catalog-wide scan.
//
// Fan-out is bounded: at most fanout shard sub-queries run concurrently
// (0 means all shards at once), each under its own per-shard governor
// derived from the request budget — the node budget is split evenly
// across participating shards and the deadline is shared (shards run
// concurrently, so each gets the full remaining wall-clock; MaxOutput
// stays per-shard). workersPerShard bounds each shard's internal
// per-document fan-out.
//
// A shard sub-query fails when fault injection kills its dispatch or
// its governor records a sticky violation; per-document errors without
// a shard-level failure stay per-document results, exactly as in the
// unsharded engine. A failed shard is retried once with jittered
// backoff; if it fails again the gather degrades — the failed shard's
// documents are omitted and the returned DegradedInfo carries the
// failed shard list, the errors, and a synthetic gather stats tree
// including the failed shards' partial abort stats. Only when every
// participating shard fails does EvalAllDocs return an error.
func (g *Group) EvalAllDocs(src string, opts plan.Options, fanout, workersPerShard int) ([]exec.DocResult, *exec.DegradedInfo, error) {
	if _, err := flwor.Parse(src); err != nil {
		return nil, nil, err
	}
	participants := g.populatedShards()
	if len(participants) == 0 {
		return nil, nil, nil
	}
	// The scatter deadline anchors here: retries recompute the remaining
	// wall-clock against it, so a retried shard never outlives the
	// budget the caller set.
	var deadline time.Time
	if opts.Budget.Timeout > 0 {
		deadline = time.Now().Add(opts.Budget.Timeout)
	}
	inj := opts.Fault
	outcomes := make([]shardOutcome, len(participants))
	forEach(len(participants), fanout, func(i int) {
		outcomes[i] = g.evalShard(participants[i], src, opts, deadline, len(participants), workersPerShard, inj)
	})
	return g.gather(outcomes, inj)
}

// populatedShards returns the indexes of shards holding at least one
// document, ascending.
func (g *Group) populatedShards() []int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[int]bool)
	for _, si := range g.uris {
		seen[si] = true
	}
	out := make([]int, 0, len(seen))
	for si := range seen {
		out = append(out, si)
	}
	sort.Ints(out)
	return out
}

// shardBudget derives one shard's budget from the request budget: the
// node budget splits evenly across n shards (ceiling, so the shard sum
// covers the request bound), the deadline is the remaining wall-clock
// (shards run concurrently), and MaxOutput passes through per shard.
func shardBudget(b gov.Budget, n int, deadline time.Time) gov.Budget {
	out := gov.Budget{MaxOutput: b.MaxOutput}
	if b.MaxNodes > 0 {
		out.MaxNodes = (b.MaxNodes + int64(n) - 1) / int64(n)
	}
	if !deadline.IsZero() {
		rem := time.Until(deadline)
		if rem <= 0 {
			rem = time.Nanosecond // already expired: fail fast in the governor
		}
		out.Timeout = rem
	}
	return out
}

// evalShard runs one shard's sub-query, retrying once on failure.
func (g *Group) evalShard(si int, src string, opts plan.Options, deadline time.Time, n, workers int, inj *fault.Injector) shardOutcome {
	out := shardOutcome{shard: si}
	for attempt := 0; attempt < 2; attempt++ {
		out.attempts++
		obs.Default.Add(obs.MetricShardQueries, 1)
		rs, sg, err := g.attemptShard(si, src, opts, deadline, n, workers, inj)
		st := obs.NewOpStats(fmt.Sprintf("shard[%d]", si), fmt.Sprintf("attempt %d", out.attempts))
		if sg != nil {
			st.AddScanned(sg.NodesScanned())
			st.AddEmitted(sg.Outputs())
		}
		if err == nil {
			out.results, out.err, out.stats = rs, nil, st
			return out
		}
		obs.Default.Add(obs.MetricShardFailures, 1)
		if ps, ok := gov.StatsOf(err); ok {
			st.Adopt(ps)
		}
		out.err, out.stats = err, st
		// A canceled parent context or an expired scatter deadline makes
		// the retry futile — every re-dispatch would abort the same way.
		if attempt == 0 {
			if opts.Ctx != nil && opts.Ctx.Err() != nil {
				return out
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return out
			}
			obs.Default.Add(obs.MetricShardRetries, 1)
			base := g.cfg.RetryBackoff
			time.Sleep(base + time.Duration(rand.Int63n(int64(base))))
		}
	}
	return out
}

// attemptShard is one dispatch of a shard sub-query: a scatter fault
// hit, a fresh per-shard governor, the shard-local all-documents
// evaluation, and the shard's latency observation.
func (g *Group) attemptShard(si int, src string, opts plan.Options, deadline time.Time, n, workers int, inj *fault.Injector) ([]exec.DocResult, *gov.Governor, error) {
	if err := inj.Hit(fault.SiteShardScatter); err != nil {
		return nil, nil, err
	}
	sopts := opts
	sopts.Budget = shardBudget(opts.Budget, n, deadline)
	sopts.Gov = gov.New(opts.Ctx, sopts.Budget, opts.Fault)
	if sopts.QueryID != "" {
		sopts.QueryID = fmt.Sprintf("%s-s%d", opts.QueryID, si)
	}
	t0 := time.Now()
	rs, err := g.shards[si].EvalAllDocs(src, sopts, workers)
	g.hists[si].ObserveDuration(time.Since(t0))
	if err != nil {
		return nil, sopts.Gov, err
	}
	if serr := sopts.Gov.Err(); serr != nil {
		return rs, sopts.Gov, serr
	}
	return rs, sopts.Gov, nil
}

// gather merges the per-shard outcomes into one URI-ordered result
// list, degrading failed shards out instead of failing the request.
func (g *Group) gather(outcomes []shardOutcome, inj *fault.Injector) ([]exec.DocResult, *exec.DegradedInfo, error) {
	root := obs.NewOpStats("shard.gather", fmt.Sprintf("%d shards", len(outcomes)))
	var failed []shardOutcome
	var lists [][]exec.DocResult
	for _, oc := range outcomes {
		root.Adopt(oc.stats)
		if oc.err == nil {
			// A gather fault models a shard whose response was lost after
			// evaluation: its results drop from the merge and the request
			// degrades (there is nothing left to retry).
			if err := inj.Hit(fault.SiteShardGather); err != nil {
				oc.err = err
				obs.Default.Add(obs.MetricShardFailures, 1)
				failed = append(failed, oc)
				continue
			}
			lists = append(lists, oc.results)
			continue
		}
		failed = append(failed, oc)
	}
	merged := mergeBalanced(lists)
	if len(failed) == 0 {
		return merged, nil, nil
	}
	if len(failed) == len(outcomes) {
		return nil, nil, failed[0].err
	}
	obs.Default.Add(obs.MetricShardDegraded, 1)
	deg := &exec.DegradedInfo{Stats: root}
	for _, oc := range failed {
		deg.FailedShards = append(deg.FailedShards, oc.shard)
		deg.Errors = append(deg.Errors, oc.err.Error())
	}
	return merged, deg, nil
}

// mergeBalanced folds the per-shard URI-sorted result lists pairwise —
// the same balanced-merge shape nestedlist.MergeBalanced uses — so the
// gather does O(log n) merge levels over n shards.
func mergeBalanced(lists [][]exec.DocResult) []exec.DocResult {
	if len(lists) == 0 {
		return nil
	}
	for len(lists) > 1 {
		next := make([][]exec.DocResult, 0, (len(lists)+1)/2)
		for i := 0; i < len(lists); i += 2 {
			if i+1 == len(lists) {
				next = append(next, lists[i])
				break
			}
			next = append(next, mergeTwo(lists[i], lists[i+1]))
		}
		lists = next
	}
	return lists[0]
}

// mergeTwo merges two URI-sorted result lists.
func mergeTwo(a, b []exec.DocResult) []exec.DocResult {
	out := make([]exec.DocResult, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].URI <= b[j].URI {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// MergeResults assembles the merged single-result view of a gather:
// node and environment rows concatenated in URI order over the
// surviving documents, carrying the degradation record. Constructed
// outputs stay per-document (they have no cross-document merge), so
// Output is nil.
func MergeResults(docs []exec.DocResult, deg *exec.DegradedInfo) *exec.Result {
	res := &exec.Result{Degraded: deg}
	for _, dr := range docs {
		if dr.Err != nil || dr.Result == nil {
			continue
		}
		res.Nodes = append(res.Nodes, dr.Result.Nodes...)
		res.Envs = append(res.Envs, dr.Result.Envs...)
	}
	return res
}

// LatencyHistogram returns the merged cross-shard latency view, built
// from the per-shard histograms with Histogram.Merge.
func (g *Group) LatencyHistogram() *obs.Histogram {
	merged := obs.NewHistogram("shard_query_duration_seconds", obs.LatencyBuckets)
	for _, h := range g.hists {
		merged.Merge(h)
	}
	return merged
}

// forEach runs fn(0..n-1) across at most workers goroutines (0 or
// negative means n) and waits for completion — the group-local version
// of the executor's worker-pool helper.
func forEach(n, workers int, fn func(int)) {
	if n == 0 {
		return
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
