package shard

import (
	"context"
	"fmt"
	"time"

	"blossomtree/internal/fault"
	"blossomtree/internal/gov"
	"blossomtree/internal/obs"
)

// ShedError is the typed refusal of admission control. It unwraps to
// gov.ErrShed, so gov.Verdict classifies it as "shed" and the HTTP
// layer maps it to 429 with the Retry-After hint.
type ShedError struct {
	// RetryAfter is the server's hint for when the client should retry:
	// the time until the tenant's next token for quota sheds, the
	// configured queue wait for queue sheds.
	RetryAfter time.Duration
	// Reason names the trigger ("tenant over quota", "queue full", …).
	Reason string
}

// Error formats the refusal.
func (e *ShedError) Error() string {
	return fmt.Sprintf("shard: query shed: %s (retry after %v)", e.Reason, e.RetryAfter)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *ShedError) Unwrap() error { return gov.ErrShed }

// AdmissionConfig configures the admission controller.
type AdmissionConfig struct {
	// MaxInflight caps concurrently admitted queries; 0 disables the
	// concurrency gate (only the per-tenant buckets apply).
	MaxInflight int
	// MaxQueue caps queries waiting for an inflight slot; a full queue
	// sheds immediately. Defaults to 2×MaxInflight when zero.
	MaxQueue int
	// MaxWait bounds how long a query may queue before it sheds.
	// Defaults to 1s when zero.
	MaxWait time.Duration
	// TenantQPS is each tenant's token refill rate; 0 disables the
	// per-tenant buckets.
	TenantQPS float64
	// TenantBurst is each tenant's bucket capacity. Defaults to
	// max(1, ceil(TenantQPS)) when zero.
	TenantBurst int
	// Weights maps tenant names to weighted-fair-queue weights
	// (default 1): a tenant with weight 2 drains its queued queries
	// twice as often under contention.
	Weights map[string]float64
	// Fault injects deterministic sheds at fault.SiteShardAdmission —
	// one hit per admission decision.
	Fault *fault.Injector
}

// Admission is a per-tenant token-bucket + weighted-fair queue in front
// of query evaluation. Admit either admits the query (returning a
// release function the caller must invoke when evaluation finishes),
// sheds it with a *ShedError, or — for a context canceled while queued
// — returns a canceled abort.
type Admission struct {
	cfg AdmissionConfig

	// All state below is guarded by a single mutex: admission decisions
	// are short critical sections at the request edge, far off the
	// evaluation hot path.
	mu       chan struct{} // 1-buffered semaphore used as the lock (keeps waiters simple)
	inflight int
	vtime    float64 // WFQ virtual time: max finish tag granted so far
	queue    []*waiter
	tenants  map[string]*tenantState
	now      func() time.Time // test hook
}

// tenantState is one tenant's bucket and fair-queue bookkeeping.
type tenantState struct {
	tokens     float64
	lastRefill time.Time
	lastFinish float64
	weight     float64
}

// waiter is one queued query.
type waiter struct {
	tenant string
	finish float64 // WFQ virtual finish tag; min tag dispatches first
	ch     chan struct{}
	done   bool // granted or abandoned; guarded by the Admission lock
}

// NewAdmission returns an admission controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 2 * cfg.MaxInflight
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = time.Second
	}
	if cfg.TenantBurst == 0 && cfg.TenantQPS > 0 {
		cfg.TenantBurst = int(cfg.TenantQPS)
		if float64(cfg.TenantBurst) < cfg.TenantQPS {
			cfg.TenantBurst++
		}
		if cfg.TenantBurst < 1 {
			cfg.TenantBurst = 1
		}
	}
	a := &Admission{
		cfg:     cfg,
		mu:      make(chan struct{}, 1),
		tenants: map[string]*tenantState{},
		now:     time.Now,
	}
	return a
}

func (a *Admission) lock()   { a.mu <- struct{}{} }
func (a *Admission) unlock() { <-a.mu }

// tenant returns (creating if needed) the tenant's state. Caller holds
// the lock.
func (a *Admission) tenant(name string) *tenantState {
	t, ok := a.tenants[name]
	if !ok {
		w := a.cfg.Weights[name]
		if w <= 0 {
			w = 1
		}
		t = &tenantState{
			tokens:     float64(a.cfg.TenantBurst),
			lastRefill: a.now(),
			weight:     w,
		}
		a.tenants[name] = t
	}
	return t
}

// shed records one shed in the default registry — the unlabeled
// aggregate plus the per-tenant labeled series (bounded top-K + "other"
// cardinality guard lives in obs.LabeledCounter) — and returns the
// typed refusal.
func shed(tenant string, retryAfter time.Duration, reason string) error {
	obs.Default.Add(obs.MetricQueriesShed, 1)
	obs.Default.AddLabeled(obs.MetricQueriesShed, "tenant", tenant, 1)
	if retryAfter < time.Second {
		retryAfter = time.Second // Retry-After is whole seconds on the wire
	}
	return &ShedError{RetryAfter: retryAfter, Reason: reason}
}

// Admit runs one admission decision for tenant. On admission it returns
// a release function the caller must invoke exactly once when the query
// finishes; on overload it returns a *ShedError. A nil *Admission
// admits everything.
func (a *Admission) Admit(ctx context.Context, tenant string) (func(), error) {
	if a == nil {
		return func() {}, nil
	}
	if err := a.cfg.Fault.Hit(fault.SiteShardAdmission); err != nil {
		return nil, shed(tenant, 0, fmt.Sprintf("injected: %v", err))
	}

	a.lock()
	// Per-tenant token bucket: refill by elapsed time, take one token or
	// shed with the time until the next token as the retry hint.
	if a.cfg.TenantQPS > 0 {
		t := a.tenant(tenant)
		now := a.now()
		t.tokens += now.Sub(t.lastRefill).Seconds() * a.cfg.TenantQPS
		if max := float64(a.cfg.TenantBurst); t.tokens > max {
			t.tokens = max
		}
		t.lastRefill = now
		if t.tokens < 1 {
			need := (1 - t.tokens) / a.cfg.TenantQPS
			a.unlock()
			return nil, shed(tenant, time.Duration(need*float64(time.Second)), fmt.Sprintf("tenant %q over quota (%.3g qps)", tenant, a.cfg.TenantQPS))
		}
		t.tokens--
	}
	if a.cfg.MaxInflight <= 0 {
		a.unlock()
		return a.releaseFunc(), nil
	}
	if a.inflight < a.cfg.MaxInflight {
		a.inflight++
		a.unlock()
		return a.releaseFunc(), nil
	}
	// Saturated: join the weighted-fair queue or shed when it is full.
	if len(a.queue) >= a.cfg.MaxQueue {
		a.unlock()
		return nil, shed(tenant, a.cfg.MaxWait, fmt.Sprintf("queue full (%d waiting, %d inflight)", a.cfg.MaxQueue, a.cfg.MaxInflight))
	}
	t := a.tenant(tenant)
	start := a.vtime
	if t.lastFinish > start {
		start = t.lastFinish
	}
	w := &waiter{tenant: tenant, finish: start + 1/t.weight, ch: make(chan struct{})}
	t.lastFinish = w.finish
	a.queue = append(a.queue, w)
	a.unlock()

	timer := time.NewTimer(a.cfg.MaxWait)
	defer timer.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ch:
		return a.releaseFunc(), nil
	case <-timer.C:
		if a.abandon(w) {
			return nil, shed(tenant, a.cfg.MaxWait, fmt.Sprintf("queued longer than %v", a.cfg.MaxWait))
		}
		// Granted concurrently with the timeout: the slot is ours.
		return a.releaseFunc(), nil
	case <-done:
		if a.abandon(w) {
			return nil, &gov.AbortError{Cause: gov.ErrCanceled, Reason: "canceled while queued for admission"}
		}
		return a.releaseFunc(), nil
	}
}

// abandon removes a waiter that timed out or was canceled. It reports
// false when the waiter was already granted — in that race the caller
// owns an inflight slot and must proceed (or release it).
func (a *Admission) abandon(w *waiter) bool {
	a.lock()
	defer a.unlock()
	if w.done {
		return false
	}
	w.done = true
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			break
		}
	}
	return true
}

// releaseFunc returns the once-only release of one inflight slot.
func (a *Admission) releaseFunc() func() {
	var once bool
	return func() {
		a.lock()
		defer a.unlock()
		if once {
			return
		}
		once = true
		if a.cfg.MaxInflight <= 0 {
			return
		}
		// Hand the slot to the queued waiter with the smallest virtual
		// finish tag (weighted-fair order); only drop inflight when no one
		// is waiting.
		best := -1
		for i, q := range a.queue {
			if q.done {
				continue
			}
			if best == -1 || q.finish < a.queue[best].finish {
				best = i
			}
		}
		if best == -1 {
			a.inflight--
			return
		}
		w := a.queue[best]
		a.queue = append(a.queue[:best], a.queue[best+1:]...)
		w.done = true
		if w.finish > a.vtime {
			a.vtime = w.finish
		}
		close(w.ch)
	}
}

// Queued returns the current queue length (for tests and /metrics
// debugging).
func (a *Admission) Queued() int {
	if a == nil {
		return 0
	}
	a.lock()
	defer a.unlock()
	return len(a.queue)
}

// Inflight returns the currently admitted query count.
func (a *Admission) Inflight() int {
	if a == nil {
		return 0
	}
	a.lock()
	defer a.unlock()
	return a.inflight
}
