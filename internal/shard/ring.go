// Package shard is the scatter-gather serving tier: a consistent-hash
// router assigns documents to N in-process engine shards, catalog-wide
// queries scatter across the shards under per-shard governors derived
// from the request budget, and per-shard results gather through an
// ordered merge into one result. Robustness is the point of the tier:
// a failed shard is retried once with jittered backoff and then
// degraded out of the gather (Result.Degraded) instead of failing the
// request, and an Admission controller in front of the HTTP handler
// sheds excess load per tenant (token bucket + weighted-fair queue)
// with Retry-After hints.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerShard is the number of virtual ring points per shard. 64
// points keep the document split within a few percent of even for
// realistic catalog sizes while the ring stays small enough to rebuild
// instantly.
const vnodesPerShard = 64

// ring is a consistent-hash ring over shard indexes. It is immutable
// after construction: membership is fixed at group creation (in-process
// shards don't come and go), so lookups are lock-free.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint32
	shard int
}

// newRing builds a ring with vnodesPerShard points per shard.
func newRing(shards int) *ring {
	r := &ring{points: make([]ringPoint, 0, shards*vnodesPerShard)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashString(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// shardOf maps a document URI to its owning shard: the first ring point
// clockwise from the URI's hash.
func (r *ring) shardOf(uri string) int {
	h := hashString(uri)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hashString is FNV-1a, the stdlib's dependency-free stable hash.
func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}
