// Package proptest is the randomized differential harness: it generates
// random documents (internal/xmlgen) and random XPath/FLWOR queries over
// each document's actual tag and attribute alphabet, then evaluates every
// (document, query) pair under every join strategy — with and without
// parallel pre-scans, cold and warm against the plan cache — and requires
// byte-identical canonical results (exec.Canonical) against the
// navigational oracle.
//
// Generation is deterministic in a base seed: case i derives its own
// seed (base + i·GoldenGamma), and one *rand.Rand per case drives both
// the document and its queries, so any failure reproduces from the case
// seed alone regardless of how many cases ran before it. The pinned CI
// seed is DefaultSeed; a second CI job runs with a randomized seed and
// logs it on failure (see EXPERIMENTS.md).
package proptest

import (
	"fmt"
	"math/rand"
	"strings"

	"blossomtree/internal/xmlgen"
)

// DefaultSeed is the pinned base seed ("BlOSS0" in hexspeak) used by
// `make proptest` and the fixed-seed CI job.
const DefaultSeed int64 = 0xB10550

// GoldenGamma spaces per-case seeds along the base seed (Weyl sequence
// constant), so neighboring cases decorrelate.
const GoldenGamma int64 = 0x9E3779B9

// Gen generates random queries over a fixed tag and attribute alphabet —
// the same alphabet the paired document was generated from, so paths
// actually match and comparisons actually collide.
type Gen struct {
	r     *rand.Rand
	tags  []string
	attrs []string
}

// NewGen returns a generator drawing from r over the given alphabets.
func NewGen(r *rand.Rand, tags, attrs []string) *Gen {
	return &Gen{r: r, tags: tags, attrs: attrs}
}

func (g *Gen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }
func (g *Gen) tag() string             { return g.pick(g.tags) }
func (g *Gen) attr() string            { return g.pick(g.attrs) }

// pct reports true with probability p percent.
func (g *Gen) pct(p int) bool { return g.r.Intn(100) < p }

// word returns a string literal from the document text vocabulary.
func (g *Gen) word() string { return g.pick(xmlgen.Words()) }

// substr returns a short literal likely to be a substring/prefix of
// document text or attribute values.
func (g *Gen) substr() string {
	return g.pick([]string{"a", "e", "o", "x", "1", "al", "ta", "z"})
}

// attrVal returns a literal from the attribute-value alphabet.
func (g *Gen) attrVal() string { return g.pick(xmlgen.AttrValues()) }

// Query returns one random query: a path query or a FLWOR query.
func (g *Gen) Query() string {
	if g.pct(45) {
		return g.pathQuery()
	}
	return g.flworQuery()
}

// pathQuery generates an absolute path with a mix of child/descendant
// steps, wildcards, predicates, and upward/value tails.
func (g *Gen) pathQuery() string {
	var sb strings.Builder
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		sb.WriteString(g.sep())
		sb.WriteString(g.step())
	}
	// Optional tail: text(), a trailing attribute, or an upward step.
	switch {
	case g.pct(10):
		sb.WriteString(g.sep())
		sb.WriteString("text()")
	case g.pct(10):
		fmt.Fprintf(&sb, "/@%s", g.attr())
	case g.pct(12):
		switch g.r.Intn(3) {
		case 0:
			sb.WriteString("/..")
		case 1:
			fmt.Fprintf(&sb, "/parent::%s", g.tag())
		default:
			fmt.Fprintf(&sb, "/ancestor::%s", g.tag())
		}
	}
	return sb.String()
}

// sep picks the step separator, descendant-heavy so random paths hit
// nodes in random trees.
func (g *Gen) sep() string {
	if g.pct(60) {
		return "//"
	}
	return "/"
}

// step generates one downward step with an optional predicate.
func (g *Gen) step() string {
	test := g.tag()
	if g.pct(8) {
		test = "*"
	}
	if !g.pct(30) {
		return test
	}
	return test + "[" + g.pred() + "]"
}

// pred generates one path predicate, spanning the planned fragment
// (existence, value, attribute, position) and the navigational-fallback
// fragment (function calls).
func (g *Gen) pred() string {
	switch g.r.Intn(10) {
	case 0:
		return g.tag()
	case 1:
		return fmt.Sprintf("%s = %q", g.tag(), g.word())
	case 2:
		return "@" + g.attr()
	case 3:
		return fmt.Sprintf("@%s = %q", g.attr(), g.attrVal())
	case 4:
		return fmt.Sprintf("%d", 1+g.r.Intn(3))
	case 5:
		return fmt.Sprintf("contains(%s, %q)", g.tag(), g.substr())
	case 6:
		return fmt.Sprintf("starts-with(@%s, %q)", g.attr(), g.substr())
	case 7:
		return fmt.Sprintf("count(%s) %s %d", g.tag(), g.cmpOp(), g.r.Intn(3))
	case 8:
		return fmt.Sprintf("number(@%s) %s %d", g.attr(), g.cmpOp(), 1+g.r.Intn(10))
	default:
		return "//" + g.tag()
	}
}

func (g *Gen) cmpOp() string {
	return g.pick([]string{"=", "!=", "<", "<=", ">", ">="})
}

// relSteps generates the relative tail of a for/let binding path.
func (g *Gen) relSteps() string {
	var sb strings.Builder
	n := 1 + g.r.Intn(2)
	for i := 0; i < n; i++ {
		sb.WriteString(g.sep())
		sb.WriteString(g.step())
	}
	return sb.String()
}

// flworQuery generates a FLWOR expression: one or two for-clauses
// (optionally with a positional variable), an optional let, an optional
// where over the bound variables, optional order by, and a return.
func (g *Gen) flworQuery() string {
	two := g.pct(45)
	pos := g.pct(20)
	hasLet := g.pct(25)

	var sb strings.Builder
	sb.WriteString("for $x ")
	if pos {
		sb.WriteString("at $i ")
	}
	fmt.Fprintf(&sb, `in doc("d")%s`, g.relSteps())
	if two {
		fmt.Fprintf(&sb, `, $y in doc("d")%s`, g.relSteps())
	}
	if hasLet {
		fmt.Fprintf(&sb, " let $l := $x%s%s", g.sep(), g.tag())
	}
	if g.pct(70) {
		sb.WriteString(" where ")
		sb.WriteString(g.cond(two, pos, hasLet))
		if g.pct(30) {
			op := " and "
			if g.pct(25) {
				op = " or "
			}
			sb.WriteString(op)
			sb.WriteString(g.cond(two, pos, hasLet))
		}
	}
	if g.pct(15) {
		fmt.Fprintf(&sb, " order by $x/%s", g.tag())
		if g.pct(30) {
			sb.WriteString(" descending")
		}
	}
	sb.WriteString(" return ")
	sb.WriteString(g.ret(two))
	return sb.String()
}

// v picks a path-valued variable usable in conditions.
func (g *Gen) v(two, hasLet bool) string {
	vars := []string{"$x"}
	if two {
		vars = append(vars, "$y")
	}
	if hasLet {
		vars = append(vars, "$l")
	}
	return g.pick(vars)
}

// cond generates one where-condition over the bound variables, covering
// crossings (value, doc-order, deep-equal), vertex constraints, residual
// shapes (not, or, functions) and positional-variable comparisons.
func (g *Gen) cond(two, pos, hasLet bool) string {
	if pos && g.pct(20) {
		return fmt.Sprintf("$i %s %d", g.cmpOp(), 1+g.r.Intn(4))
	}
	switch g.r.Intn(11) {
	case 0:
		return fmt.Sprintf("%s/%s %s %q", g.v(two, hasLet), g.tag(), g.cmpOp(), g.word())
	case 1:
		if two {
			return fmt.Sprintf("$x%s%s %s $y%s%s", g.sep(), g.tag(), g.pick([]string{"=", "!=", "<"}), g.sep(), g.tag())
		}
		return fmt.Sprintf("exists($x%s%s)", g.sep(), g.tag())
	case 2:
		if two {
			return fmt.Sprintf("$x/@%s = $y/@%s", g.attr(), g.attr())
		}
		return fmt.Sprintf("$x/@%s = %q", g.attr(), g.attrVal())
	case 3:
		return fmt.Sprintf("%s/@%s %s %q", g.v(two, hasLet), g.attr(), g.cmpOp(), g.attrVal())
	case 4:
		if two {
			if g.pct(50) {
				return "$x << $y"
			}
			return "$x >> $y"
		}
		return fmt.Sprintf("exists(%s//%s)", g.v(two, hasLet), g.tag())
	case 5:
		if two {
			return fmt.Sprintf("deep-equal($x%s%s, $y%s%s)", g.sep(), g.tag(), g.sep(), g.tag())
		}
		return fmt.Sprintf("deep-equal($x/%s, $x/%s)", g.tag(), g.tag())
	case 6:
		return fmt.Sprintf("not(%s)", g.cond(two, false, hasLet))
	case 7:
		return fmt.Sprintf("contains(%s/%s, %q)", g.v(two, hasLet), g.tag(), g.substr())
	case 8:
		return fmt.Sprintf("count(%s%s%s) %s %d", g.v(two, hasLet), g.sep(), g.tag(), g.cmpOp(), g.r.Intn(3))
	case 9:
		return fmt.Sprintf("number(%s/@%s) %s %d", g.v(two, hasLet), g.attr(), g.cmpOp(), 1+g.r.Intn(10))
	default:
		if g.pct(50) {
			return fmt.Sprintf("starts-with(%s/%s, %q)", g.v(two, hasLet), g.tag(), g.substr())
		}
		return fmt.Sprintf("string-join(%s/%s, %q) != %q", g.v(two, hasLet), g.tag(), "-", "")
	}
}

// ret generates the return clause.
func (g *Gen) ret(two bool) string {
	switch g.r.Intn(5) {
	case 0:
		return "$x"
	case 1:
		return fmt.Sprintf("$x/%s", g.tag())
	case 2:
		return "<r>{ $x }</r>"
	case 3:
		if two {
			return fmt.Sprintf("<r>{ $x/%s }{ $y }</r>", g.tag())
		}
		return fmt.Sprintf("<r>{ $x/%s/text() }</r>", g.tag())
	default:
		if two {
			return "<r>{ $x }{ $y }</r>"
		}
		return fmt.Sprintf("<r>{ $x/%s }</r>", g.tag())
	}
}
