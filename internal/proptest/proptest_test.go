package proptest

import (
	"flag"
	"math/rand"
	"strings"
	"testing"

	"blossomtree/internal/exec"
	"blossomtree/internal/flwor"
	"blossomtree/internal/plan"
	"blossomtree/internal/xmlgen"
	"blossomtree/internal/xmltree"
)

var (
	flagCases = flag.Int("proptest.cases", 300,
		"number of random document cases (each contributes proptest.queries pairs)")
	flagQueries = flag.Int("proptest.queries", 4,
		"random queries evaluated per document case")
	flagSeed = flag.Int64("proptest.seed", DefaultSeed,
		"base seed; failure reports include the per-case seed")
)

// variants lists the evaluation configurations compared against the
// navigational oracle — every join strategy, with and without parallel
// pre-scans. The pipelined join is only sound on non-recursive documents
// (Theorem 2), so it is gated on the document's statistics.
func variants(recursive bool) []struct {
	name string
	opts plan.Options
} {
	vs := []struct {
		name string
		opts plan.Options
	}{
		{"auto", plan.Options{}},
		{"auto-parallel", plan.Options{Parallel: -1}},
		{"bounded-nl", plan.Options{Strategy: plan.BoundedNL}},
		{"bounded-nl-parallel", plan.Options{Strategy: plan.BoundedNL, Parallel: -1}},
		{"naive-nl", plan.Options{Strategy: plan.NaiveNL}},
		{"twigstack", plan.Options{Strategy: plan.Twig}},
		{"cost-based", plan.Options{Strategy: plan.CostBased}},
		{"merged-scans", plan.Options{MergeScans: true}},
		// The vectorized columnar path: chain queries run batch-at-a-time
		// over flat region-label columns; everything else falls back at
		// Build time, so the axis covers every generated query.
		{"vectorized", plan.Options{Strategy: plan.Vectorized}},
	}
	if !recursive {
		vs = append(vs,
			struct {
				name string
				opts plan.Options
			}{"pipelined", plan.Options{Strategy: plan.Pipelined}},
			struct {
				name string
				opts plan.Options
			}{"pipelined-parallel", plan.Options{Strategy: plan.Pipelined, Parallel: -1}},
		)
	}
	return vs
}

// tagAlphabets are the tag sets documents draw from; small sets give
// dense matches, larger sets sparser ones.
var tagAlphabets = [][]string{
	{"a", "b", "c"},
	{"a", "b", "c", "d"},
	{"a", "b", "c", "d", "e"},
}

var attrAlphabet = []string{"id", "k"}

// TestRandomizedDifferential is the property harness. Every case derives
// its own seed, generates one random document and several random queries
// over the document's alphabet, and checks every strategy variant — cold
// and warm against the plan cache — for byte-identical canonical results
// against the navigational oracle. Failure reports carry the case seed,
// the query and the serialized document, so any failure replays with
// -proptest.seed=<case seed> -proptest.cases=1.
func TestRandomizedDifferential(t *testing.T) {
	pairs, failures := 0, 0
	for ci := 0; ci < *flagCases; ci++ {
		caseSeed := *flagSeed + int64(ci)*GoldenGamma
		r := rand.New(rand.NewSource(caseSeed))
		tags := tagAlphabets[r.Intn(len(tagAlphabets))]
		doc := xmlgen.MustRandom(r, xmlgen.RandomSpec{
			Tags:     tags,
			MaxNodes: 30 + r.Intn(90),
			MaxDepth: 4 + r.Intn(4),
			AttrProb: 40,
			Attrs:    attrAlphabet,
		})
		stats := xmltree.ComputeStats(doc)
		e := exec.New()
		e.Add("d", doc)
		g := NewGen(r, tags, attrAlphabet)
		for qi := 0; qi < *flagQueries; qi++ {
			q := g.Query()
			pairs++
			if !runPair(t, e, doc, stats.Recursive, q, caseSeed) {
				failures++
				if failures >= 5 {
					t.Fatalf("stopping after %d failing pairs (seed %#x)", failures, *flagSeed)
				}
			}
		}
	}
	t.Logf("proptest: %d (document, query) pairs across %d cases, base seed %#x",
		pairs, *flagCases, *flagSeed)
}

// runPair checks one (document, query) pair across all variants; it
// reports false if any check failed.
func runPair(t *testing.T, e *exec.Engine, doc *xmltree.Document, recursive bool, q string, caseSeed int64) bool {
	t.Helper()
	ok := true
	report := func(format string, args ...any) {
		t.Helper()
		t.Errorf(format, args...)
		if ok { // print the reproduction context once per pair
			t.Logf("repro: seed %#x, query %q, document:\n%s",
				caseSeed, q, xmltree.Serialize(doc.Root, xmltree.WriteOptions{}))
		}
		ok = false
	}

	oracle, oerr := e.EvalOptions(q, plan.Options{Strategy: plan.Navigational})
	if oerr != nil {
		// A query the oracle rejects must be rejected by every variant
		// too — never silently answered.
		for _, v := range variants(recursive) {
			if _, err := e.EvalOptions(q, v.opts); err == nil {
				report("seed %#x: query %q: oracle errored (%v) but variant %s succeeded",
					caseSeed, q, oerr, v.name)
			}
		}
		return ok
	}
	want := exec.Canonical(oracle)

	for _, v := range variants(recursive) {
		cold, err := e.EvalOptions(q, v.opts)
		if err != nil {
			if v.opts.Strategy == plan.Twig && strings.Contains(err.Error(), "TwigStack") {
				continue // query outside TwigStack's fragment
			}
			report("seed %#x: query %q: variant %s errored: %v", caseSeed, q, v.name, err)
			continue
		}
		if got := exec.Canonical(cold); got != want {
			report("seed %#x: query %q: variant %s disagrees with oracle\n--- %s ---\n%s--- oracle ---\n%s",
				caseSeed, q, v.name, v.name, got, want)
			continue
		}
		warm, err := e.EvalOptions(q, v.opts)
		if err != nil {
			report("seed %#x: query %q: variant %s warm run errored: %v", caseSeed, q, v.name, err)
			continue
		}
		if !warm.Cached {
			report("seed %#x: query %q: variant %s warm run missed the plan cache", caseSeed, q, v.name)
		}
		if got := exec.Canonical(warm); got != want {
			report("seed %#x: query %q: variant %s warm result disagrees with oracle\n--- warm ---\n%s--- oracle ---\n%s",
				caseSeed, q, v.name, got, want)
		}
	}
	return ok
}

// TestGeneratorAlwaysParses pins the generator's contract: every
// generated query must parse. A generator emitting unparseable text
// would silently shrink the harness's coverage to error-path checks.
func TestGeneratorAlwaysParses(t *testing.T) {
	r := rand.New(rand.NewSource(*flagSeed))
	g := NewGen(r, []string{"a", "b", "c"}, attrAlphabet)
	for i := 0; i < 2000; i++ {
		q := g.Query()
		if _, err := flwor.Parse(q); err != nil {
			t.Fatalf("generated query %q does not parse: %v", q, err)
		}
	}
}
