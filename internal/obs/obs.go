// Package obs is the engine's observability layer: a lightweight
// metrics registry of atomic counters, and per-query ExecStats trees
// that mirror a physical plan's operator tree with work counters
// (nodes scanned, instances emitted, comparisons, stack depth, wall
// time) next to the optimizer's estimates.
//
// Everything here is safe under the engine's concurrency model: the
// registry and all OpStats counters are plain atomics, so concurrent
// QueryBatch evaluations — and the planner's parallel NoK pre-scan,
// which drains sibling operators from several goroutines — may bump
// them without locks. Stats collection is near-zero-cost when
// disabled: every mutator is a nil-safe method on *OpStats, so
// uninstrumented operators pay one predictable branch, and wall-clock
// timing (the only expensive probe) is off unless explicitly enabled
// for EXPLAIN ANALYZE.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is an atomic monotonically-increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// LabeledCounter is a counter family with one label dimension (e.g.
// queries_shed_total{tenant=…}). Label values are unbounded input —
// tenants arrive from request headers — so the family guards its own
// cardinality: the first MaxSeries distinct values each get a series,
// and every later value folds into the reserved "other" series. The
// per-series counters are the same lock-free Counter as the unlabeled
// registry; only series creation takes the mutex.
type LabeledCounter struct {
	name  string
	label string

	mu     sync.Mutex
	max    int
	series map[string]*Counter
}

// LabelOther is the fold-over series value used once a LabeledCounter
// reaches its cardinality bound.
const LabelOther = "other"

// DefaultLabelSeries bounds the distinct label values a LabeledCounter
// tracks before folding into LabelOther.
const DefaultLabelSeries = 16

// Add bumps the series for the given label value, folding into
// LabelOther past the cardinality bound. Empty values count as
// LabelOther too, so callers can pass untrusted input straight through.
func (c *LabeledCounter) Add(value string, n int64) {
	if c == nil {
		return
	}
	c.counterFor(value).Add(n)
}

func (c *LabeledCounter) counterFor(value string) *Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	if value == "" {
		value = LabelOther
	}
	if ctr, ok := c.series[value]; ok {
		return ctr
	}
	if value != LabelOther && len(c.series) >= c.max {
		value = LabelOther
		if ctr, ok := c.series[value]; ok {
			return ctr
		}
	}
	ctr := &Counter{}
	c.series[value] = ctr
	return ctr
}

// Label returns the family's label name (e.g. "tenant").
func (c *LabeledCounter) Label() string { return c.label }

// Series returns a point-in-time copy of every series value.
func (c *LabeledCounter) Series() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.series))
	for v, ctr := range c.series {
		out[v] = ctr.Load()
	}
	return out
}

// Registry is a named set of counters and histograms. Registration is
// guarded by a mutex; the instruments themselves are lock-free, so the
// hot path (Add on an already-obtained *Counter, Observe on a
// *Histogram) never contends.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	labeled    map[string]*LabeledCounter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		labeled:    make(map[string]*LabeledCounter),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the engine reports into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add bumps the named counter by n (registering it if needed).
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// LabeledCounter returns the named counter family with one label
// dimension, creating it on first use with the DefaultLabelSeries
// cardinality bound. Later calls return the existing family regardless
// of the label they pass. The labeled family is additional detail next
// to — not a replacement for — the plain counter of the same name:
// callers keep bumping the unlabeled aggregate so existing dashboards
// and deltas stay whole.
func (r *Registry) LabeledCounter(name, label string) *LabeledCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.labeled[name]
	if !ok {
		c = &LabeledCounter{
			name:   name,
			label:  label,
			max:    DefaultLabelSeries,
			series: make(map[string]*Counter),
		}
		r.labeled[name] = c
	}
	return c
}

// AddLabeled bumps one series of the named labeled counter family.
func (r *Registry) AddLabeled(name, label, value string, n int64) {
	r.LabeledCounter(name, label).Add(value, n)
}

// labeledSnapshot copies the labeled-family map for rendering.
func (r *Registry) labeledSnapshot() map[string]*LabeledCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*LabeledCounter, len(r.labeled))
	for name, c := range r.labeled {
		out[name] = c
	}
	return out
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Later calls return the existing
// histogram regardless of the bounds they pass, so callers on the hot
// path may re-resolve by name without re-specifying buckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(name, bounds)
		r.histograms[name] = h
	}
	return h
}

// Observe records one observation on the named histogram, creating it
// with LatencyBuckets on first use.
func (r *Registry) Observe(name string, v float64) {
	r.Histogram(name, LatencyBuckets).Observe(v)
}

// Histograms returns the registered histograms, sorted by name.
func (r *Registry) Histograms() []*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot returns a point-in-time copy of every counter's value.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Delta subtracts an earlier snapshot from the current values, keeping
// only counters that moved. Counters present only in before (e.g.
// after the registry was swapped or reset between snapshots) are
// reported with negative deltas rather than dropped, so a delta always
// reconciles the two snapshots exactly.
func (r *Registry) Delta(before map[string]int64) map[string]int64 {
	now := r.Snapshot()
	out := make(map[string]int64)
	for name, v := range now {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	for name, v := range before {
		if _, ok := now[name]; !ok && v != 0 {
			out[name] = -v
		}
	}
	return out
}

// Format renders a snapshot (or delta) sorted by counter name.
func Format(values map[string]int64) string {
	names := make([]string, 0, len(values))
	for n := range values {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%-32s %d\n", n, values[n])
	}
	return sb.String()
}

// Registry counter names the executor reports. Kept here so readers of
// metrics output can find their producers.
const (
	MetricQueries        = "queries_total"
	MetricQueryErrors    = "query_errors_total"
	MetricQueryNanos     = "query_nanos_total"
	MetricNodesScanned   = "operator_nodes_scanned_total"
	MetricInstancesOut   = "operator_instances_emitted_total"
	MetricComparisons    = "operator_comparisons_total"
	MetricOperatorCalls  = "operator_getnext_calls_total"
	MetricDocumentsAdded = "documents_added_total"
	// MetricQueryAborts counts evaluations ended by governance: context
	// cancellation, deadline expiry, or resource-budget exhaustion.
	MetricQueryAborts = "query_aborts_total"
	// MetricQueryPanics counts operator panics converted to errors at
	// the executor boundary.
	MetricQueryPanics = "query_panics_total"
	// MetricSlowQueries counts queries whose latency met or exceeded the
	// configured slow-query threshold.
	MetricSlowQueries = "slow_queries_total"
	// Plan-cache counters (the names render in the Prometheus exposition
	// as blossomtree_plan_cache_{hits,misses,evictions}): lookups served
	// from the compiled-plan cache, lookups that compiled fresh, and
	// entries dropped by the LRU capacity bound. Snapshot invalidation is
	// not an eviction — superseded entries age out of the LRU naturally.
	MetricPlanCacheHits      = "plan_cache_hits"
	MetricPlanCacheMisses    = "plan_cache_misses"
	MetricPlanCacheEvictions = "plan_cache_evictions"
	// Shard-tier counters (internal/shard). Sheds are admission-control
	// refusals (429 at the HTTP edge); retries count shard sub-queries
	// re-dispatched after a first failure; failures count shard attempts
	// that failed (including the ones a retry later recovered); degraded
	// counts gathers that returned a partial result.
	MetricQueriesShed   = "queries_shed_total"
	MetricShardQueries  = "shard_queries_total"
	MetricShardRetries  = "shard_retries_total"
	MetricShardFailures = "shard_failures_total"
	MetricShardDegraded = "shard_degraded_total"
	// Feedback-loop counters (internal/feedback). Replans count cached
	// templates recompiled with history-corrected cardinalities after
	// their estimates drifted past the threshold; wins/losses judge each
	// replan once enough post-replan latency samples accumulate, against
	// the pre-replan latency EWMA.
	MetricFeedbackReplans = "feedback_replans_total"
	MetricFeedbackWins    = "feedback_wins_total"
	MetricFeedbackLosses  = "feedback_losses_total"
)

// HistQueryDuration is the registry name of the query-latency histogram
// every evaluation observes into (seconds; LatencyBuckets bounds). The
// Prometheus exposition renders it as
// blossomtree_query_duration_seconds.
const HistQueryDuration = "query_duration_seconds"
