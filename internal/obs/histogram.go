package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a lock-cheap fixed-bucket histogram. Observations are
// classified into one of len(bounds)+1 buckets (the last bucket is the
// implicit +Inf overflow) with a binary search and two atomic adds, so
// concurrent evaluations — batch workers, the daemon's request
// handlers — may Observe without locks, the same discipline as the
// registry's counters.
//
// Bucket bounds are upper bounds in ascending order, cumulative-style:
// an observation v lands in the first bucket whose bound satisfies
// v <= bound. Quantile estimates interpolate linearly inside the
// winning bucket, like Prometheus's histogram_quantile.
type Histogram struct {
	name   string
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit

	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// LatencyBuckets are the default bounds for query-latency histograms,
// in seconds: exponential-ish from 100µs to 10s, wide enough for both
// microbenchmark cells and DNF-scale outliers.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram returns a histogram with the given bucket upper bounds
// (which must be ascending; they are defensively copied and sorted).
func NewHistogram(name string, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		name:   name,
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1),
	}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one observation. Nil-safe, like the counters.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// bucketOf returns the index of the first bucket whose upper bound
// admits v (the last index for the +Inf overflow bucket).
func (h *Histogram) bucketOf(v float64) int {
	return sort.SearchFloat64s(h.bounds, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Counts returns a point-in-time copy of the per-bucket counts; the
// last entry is the +Inf overflow bucket.
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, interpolating linearly within the winning bucket. The +Inf
// bucket clamps to the largest finite bound; an empty histogram
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := h.Counts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(counts)-1 {
			// Overflow bucket: no finite upper bound to interpolate to.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		within := rank - float64(cum-c)
		return lo + (hi-lo)*(within/float64(c))
	}
	return h.bounds[len(h.bounds)-1]
}

// Merge adds o's observations into h. The histograms must share
// identical bounds (Merge is how per-run bench histograms fold into an
// aggregate); mismatched shapes are ignored rather than corrupting the
// buckets.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || len(h.bounds) != len(o.bounds) {
		return
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			return
		}
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + o.Sum())
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}
