package obs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"log/slog"
	"time"
)

// Structured query logging: one slog record per evaluation with the
// fields operators of a serving deployment grep for (query ID, query
// hash, strategy, governance verdict, work, latency), plus slow-query
// capture — a query at or past the threshold logs at Warn with its full
// EXPLAIN ANALYZE tree attached, rendered lazily so fast queries never
// pay for it.

// QueryHash returns a short stable content hash of a query text, so
// logs can group repeated queries without storing (possibly sensitive
// or huge) query bodies.
func QueryHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:8])
}

// QueryLogEntry is one evaluation's log record.
type QueryLogEntry struct {
	QueryID   string
	QueryHash string
	// Strategy is the executed join strategy ("PL", "TS", "XH", …), or
	// "" when the query failed before planning.
	Strategy string
	// Verdict is the governance outcome: "ok", "canceled",
	// "budget_exceeded", or "error".
	Verdict      string
	NodesScanned int64
	RowsOut      int64
	Latency      time.Duration
	// Cached reports whether the physical plan was served from the
	// compiled-plan cache rather than compiled for this evaluation.
	Cached bool
	// NavReason says why the query routed to the navigational fallback
	// instead of a BlossomTree plan; "" for planned queries.
	NavReason string
	// Replanned reports whether the plan was recompiled from feedback
	// history (estimates drifted past the threshold) before this
	// evaluation; Drift is the est/act ratio that triggered it.
	Replanned bool
	Drift     float64
	// Err is the evaluation error message, "" on success.
	Err string
	// Explain lazily renders the query's EXPLAIN ANALYZE tree; it is
	// called at most once, and only for slow queries.
	Explain func() string
}

// QueryLog emits structured query records to a slog.Logger. The zero
// value and a nil logger are valid no-ops, so the telemetry pipeline
// costs nothing when logging is not configured.
type QueryLog struct {
	// Logger receives one record per evaluation; nil disables logging.
	Logger *slog.Logger
	// SlowThreshold promotes queries with Latency >= SlowThreshold to
	// Warn level with the EXPLAIN ANALYZE payload attached; 0 disables
	// slow-query capture.
	SlowThreshold time.Duration
	// Registry counts slow queries (MetricSlowQueries); nil skips the
	// counter.
	Registry *Registry
}

// Record logs one evaluation. Slow queries (threshold configured and
// met) log at Warn with the explain payload; everything else logs at
// Info.
func (l *QueryLog) Record(e QueryLogEntry) {
	if l == nil || l.Logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("query_id", e.QueryID),
		slog.String("query_hash", e.QueryHash),
		slog.String("strategy", e.Strategy),
		slog.String("verdict", e.Verdict),
		slog.Int64("nodes_scanned", e.NodesScanned),
		slog.Int64("rows_out", e.RowsOut),
		slog.Duration("latency", e.Latency),
	}
	if e.Cached {
		attrs = append(attrs, slog.Bool("cached", true))
	}
	if e.NavReason != "" {
		attrs = append(attrs, slog.String("nav_reason", e.NavReason))
	}
	if e.Replanned {
		attrs = append(attrs, slog.Bool("replanned", true))
	}
	if e.Drift > 0 {
		attrs = append(attrs, slog.Float64("drift", e.Drift))
	}
	if e.Err != "" {
		attrs = append(attrs, slog.String("error", e.Err))
	}
	level := slog.LevelInfo
	if l.SlowThreshold > 0 && e.Latency >= l.SlowThreshold {
		level = slog.LevelWarn
		attrs = append(attrs, slog.Bool("slow", true))
		if e.Explain != nil {
			attrs = append(attrs, slog.String("explain", e.Explain()))
		}
		if l.Registry != nil {
			l.Registry.Add(MetricSlowQueries, 1)
		}
	}
	l.Logger.LogAttrs(context.Background(), level, "query", attrs...)
}
