package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Per-query trace export: the OpStats tree of an executed plan, laid
// out as Chrome trace-event JSON (chrome://tracing, Perfetto, and
// speedscope all load it). Each operator becomes one complete ("X")
// span; children nest inside their parent's time range, so the span
// tree mirrors the operator sites of the query's EXPLAIN ANALYZE
// output. Wall-clock durations are real when the query ran with
// Analyze (per-operator timing); otherwise spans carry zero duration
// but still record the tree shape and work counters in their args.

// TraceEvent is one event of the Chrome trace-event format.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace is one query's span tree in Chrome trace-event JSON shape.
type Trace struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// NewTrace derives a trace from a query's stats tree. The root event
// spans the whole evaluation (total wall time); operator spans nest
// inside it, each sized by its recorded elapsed time (inclusive of
// children, as OpStats measures) and clamped to its parent. A nil
// stats tree (navigational evaluation, or an abort before planning)
// yields a trace with only the query-level span.
func NewTrace(queryID string, root *OpStats, total time.Duration) *Trace {
	t := &Trace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"queryID": queryID},
	}
	totalUS := float64(total.Microseconds())
	t.TraceEvents = append(t.TraceEvents, TraceEvent{
		Name: "query " + queryID,
		Cat:  "query",
		Ph:   "X",
		Ts:   0,
		Dur:  totalUS,
		Pid:  1,
		Tid:  1,
	})
	if root != nil {
		rootDur := float64(root.Elapsed().Microseconds())
		if rootDur == 0 || rootDur > totalUS {
			rootDur = totalUS
		}
		appendSpans(t, root, 0, rootDur)
	}
	return t
}

// appendSpans lays the subtree rooted at s into [ts, ts+dur): the
// node's own span covers the whole window, and children are placed
// sequentially inside it, each sized by its recorded elapsed time.
func appendSpans(t *Trace, s *OpStats, ts, dur float64) {
	ev := TraceEvent{
		Name: s.Name,
		Cat:  "operator",
		Ph:   "X",
		Ts:   ts,
		Dur:  dur,
		Pid:  1,
		Tid:  1,
		Args: map[string]any{
			"detail":  s.Detail,
			"calls":   s.Calls(),
			"scanned": s.Scanned(),
			"emitted": s.Emitted(),
		},
	}
	if c := s.Comparisons(); c > 0 {
		ev.Args["comparisons"] = c
	}
	t.TraceEvents = append(t.TraceEvents, ev)
	cursor := ts
	for _, c := range s.Children {
		cd := float64(c.Elapsed().Microseconds())
		if remaining := ts + dur - cursor; cd > remaining {
			cd = remaining
		}
		if cd < 0 {
			cd = 0
		}
		appendSpans(t, c, cursor, cd)
		cursor += cd
	}
}

// JSON marshals the trace.
func (t *Trace) JSON() []byte {
	b, err := json.Marshal(t)
	if err != nil {
		return nil
	}
	return b
}

// SpanNames returns the operator-span names in depth-first order
// (excluding the query-level wrapper span) — the site list tests match
// against EXPLAIN ANALYZE.
func (t *Trace) SpanNames() []string {
	var out []string
	for _, ev := range t.TraceEvents {
		if ev.Cat == "operator" {
			out = append(out, ev.Name)
		}
	}
	return out
}

// TraceStore retains the most recent traces keyed by query ID, for the
// daemon's GET /trace/{queryID}. Bounded: when full, the oldest trace
// is evicted.
type TraceStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*Trace
	order []string
}

// NewTraceStore returns a store retaining up to capacity traces.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 1
	}
	return &TraceStore{cap: capacity, byID: make(map[string]*Trace)}
}

// DefaultTraces is the process-wide trace store the executor records
// into (sized for a scrape-and-inspect workflow, not long-term
// retention).
var DefaultTraces = NewTraceStore(512)

// Put stores a trace under its query ID, evicting the oldest entry at
// capacity.
func (ts *TraceStore) Put(queryID string, t *Trace) {
	if ts == nil || t == nil || queryID == "" {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, exists := ts.byID[queryID]; !exists {
		for len(ts.order) >= ts.cap {
			evict := ts.order[0]
			ts.order = ts.order[1:]
			delete(ts.byID, evict)
		}
		ts.order = append(ts.order, queryID)
	}
	ts.byID[queryID] = t
}

// Get returns the trace stored under queryID.
func (ts *TraceStore) Get(queryID string) (*Trace, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byID[queryID]
	return t, ok
}

// Len returns the number of retained traces.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.byID)
}
