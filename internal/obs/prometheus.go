package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a registry: every
// counter renders as a counter family, every histogram as a histogram
// family with cumulative le buckets, _sum and _count. Names are
// namespaced under "blossomtree_" so a scrape of several processes
// stays attributable; characters outside [a-zA-Z0-9_:] are mapped to
// '_' to keep arbitrary registry names valid.

// PromNamespace prefixes every exposed metric name.
const PromNamespace = "blossomtree_"

// promName maps a registry name to a valid namespaced Prometheus name.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString(PromNamespace)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat formats a float the way Prometheus clients do: shortest
// representation that round-trips.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry — counters and histograms — in
// Prometheus text exposition format, families sorted by name. Safe to
// call concurrently with evaluations; each value is a point-in-time
// atomic load.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, name := range sortedCounterNames(r) {
		c := r.Counter(name)
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, c.Load()); err != nil {
			return err
		}
	}
	for _, h := range r.Histograms() {
		if err := writePromHistogram(w, h); err != nil {
			return err
		}
	}
	return nil
}

func sortedCounterNames(r *Registry) []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

func writePromHistogram(w io.Writer, h *Histogram) error {
	pn := promName(h.Name())
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	bounds := h.Bounds()
	counts := h.Counts()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
		return err
	}
	// _count repeats the +Inf cumulative count (they must agree within
	// one exposition even while observations race the scrape).
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum()), pn, cum)
	return err
}

// PrometheusText renders WritePrometheus into a string.
func (r *Registry) PrometheusText() string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}
