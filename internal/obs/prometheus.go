package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a registry: every
// counter renders as a counter family, every histogram as a histogram
// family with cumulative le buckets, _sum and _count. Names are
// namespaced under "blossomtree_" so a scrape of several processes
// stays attributable; characters outside [a-zA-Z0-9_:] are mapped to
// '_' to keep arbitrary registry names valid.

// PromNamespace prefixes every exposed metric name.
const PromNamespace = "blossomtree_"

// promName maps a registry name to a valid namespaced Prometheus name.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString(PromNamespace)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat formats a float the way Prometheus clients do: shortest
// representation that round-trips.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// shardHistName matches the per-shard histogram naming convention
// (shard_<i>_<rest>) so the exposition can regroup N per-shard
// histograms into one family with a shard label, the shape Prometheus
// aggregation functions expect.
var shardHistName = regexp.MustCompile(`^shard_([0-9]+)_(.+)$`)

// WritePrometheus renders the registry — counters and histograms — in
// Prometheus text exposition format, families sorted by name. Safe to
// call concurrently with evaluations; each value is a point-in-time
// atomic load.
//
// A labeled counter family sharing a plain counter's name renders its
// series right after the unlabeled aggregate line, inside the same
// family. Histograms named shard_<i>_<rest> are regrouped into a
// single family blossomtree_shard_<rest> with a shard="<i>" label
// instead of one family per shard.
func (r *Registry) WritePrometheus(w io.Writer) error {
	labeled := r.labeledSnapshot()
	for _, name := range sortedCounterNames(r) {
		c := r.Counter(name)
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, c.Load()); err != nil {
			return err
		}
		if lc, ok := labeled[name]; ok {
			delete(labeled, name)
			if err := writePromLabeled(w, pn, lc); err != nil {
				return err
			}
		}
	}
	// Labeled families with no unlabeled aggregate render on their own.
	for _, name := range sortedLabeledNames(labeled) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		if err := writePromLabeled(w, pn, labeled[name]); err != nil {
			return err
		}
	}
	shardFamilies := make(map[string][]*Histogram)
	for _, h := range r.Histograms() {
		if m := shardHistName.FindStringSubmatch(h.Name()); m != nil {
			rest := m[2]
			shardFamilies[rest] = append(shardFamilies[rest], h)
			continue
		}
		if err := writePromHistogram(w, h); err != nil {
			return err
		}
	}
	for _, rest := range sortedKeys(shardFamilies) {
		if err := writePromShardFamily(w, rest, shardFamilies[rest]); err != nil {
			return err
		}
	}
	return nil
}

func sortedLabeledNames(labeled map[string]*LabeledCounter) []string {
	names := make([]string, 0, len(labeled))
	for n := range labeled {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedKeys(m map[string][]*Histogram) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writePromLabeled renders one labeled counter family's series, sorted
// by label value with the fold-over "other" series last.
func writePromLabeled(w io.Writer, pn string, lc *LabeledCounter) error {
	series := lc.Series()
	values := make([]string, 0, len(series))
	for v := range series {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool {
		if (values[i] == LabelOther) != (values[j] == LabelOther) {
			return values[j] == LabelOther
		}
		return values[i] < values[j]
	})
	for _, v := range values {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", pn, lc.Label(), v, series[v]); err != nil {
			return err
		}
	}
	return nil
}

// writePromShardFamily renders N per-shard histograms as one family
// with a shard label, shards in numeric order.
func writePromShardFamily(w io.Writer, rest string, hists []*Histogram) error {
	sort.Slice(hists, func(i, j int) bool {
		return shardIndex(hists[i].Name()) < shardIndex(hists[j].Name())
	})
	pn := promName("shard_" + rest)
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	for _, h := range hists {
		shard := strconv.Itoa(shardIndex(h.Name()))
		bounds := h.Bounds()
		counts := h.Counts()
		var cum int64
		for i, b := range bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{shard=%q,le=%q} %d\n", pn, shard, promFloat(b), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{shard=%q,le=\"+Inf\"} %d\n", pn, shard, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{shard=%q} %s\n%s_count{shard=%q} %d\n", pn, shard, promFloat(h.Sum()), pn, shard, cum); err != nil {
			return err
		}
	}
	return nil
}

func shardIndex(name string) int {
	m := shardHistName.FindStringSubmatch(name)
	if m == nil {
		return -1
	}
	i, _ := strconv.Atoi(m[1])
	return i
}

func sortedCounterNames(r *Registry) []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

func writePromHistogram(w io.Writer, h *Histogram) error {
	pn := promName(h.Name())
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	bounds := h.Bounds()
	counts := h.Counts()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
		return err
	}
	// _count repeats the +Inf cumulative count (they must agree within
	// one exposition even while observations race the scrape).
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum()), pn, cum)
	return err
}

// PrometheusText renders WritePrometheus into a string.
func (r *Registry) PrometheusText() string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}
