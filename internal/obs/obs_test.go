package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndDelta(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 3)
	r.Add("a", 2)
	r.Add("b", 1)
	before := r.Snapshot()
	if before["a"] != 5 || before["b"] != 1 {
		t.Fatalf("snapshot = %v", before)
	}
	r.Add("a", 10)
	d := r.Delta(before)
	if len(d) != 1 || d["a"] != 10 {
		t.Errorf("delta = %v, want only a=10", d)
	}
	if !strings.Contains(Format(before), "a") {
		t.Error("Format should list counter names")
	}
}

func TestDeltaKeepsCountersOnlyInBefore(t *testing.T) {
	// Regression: Delta used to drop counters present only in the
	// before-snapshot (a registry swapped or reset between snapshots),
	// silently unbalancing the reconciliation. They must surface as
	// negative deltas.
	r := NewRegistry()
	r.Add("a", 7)
	d := r.Delta(map[string]int64{"a": 2, "gone": 5, "zero": 0})
	if d["a"] != 5 {
		t.Errorf("a delta = %d, want 5", d["a"])
	}
	if d["gone"] != -5 {
		t.Errorf("counter only in before: delta = %d, want -5", d["gone"])
	}
	if _, ok := d["zero"]; ok {
		t.Error("zero-valued before-only counter should be omitted")
	}
}

func TestRegistryConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("hits", 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Load(); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
}

func TestOpStatsNilSafety(t *testing.T) {
	var s *OpStats
	// None of these may panic on a nil receiver.
	s.AddCall()
	s.AddScanned(1)
	s.AddEmitted(1)
	s.AddComparisons(1)
	s.ObserveStackDepth(3)
	s.AddElapsed(time.Second)
	s.Stop(s.Start())
	s.EnableTiming()
	if s.Adopt(NewOpStats("x", "")) != nil {
		t.Error("nil Adopt should stay nil")
	}
	if s.Calls()+s.Scanned()+s.Emitted()+s.Comparisons()+s.MaxStackDepth() != 0 {
		t.Error("nil accessors should read zero")
	}
	if s.Render(true) != "" {
		t.Error("nil Render should be empty")
	}
}

func TestOpStatsCountersAndTotals(t *testing.T) {
	root := NewOpStats("Join", "a//b")
	left := NewOpStats("Scan", "NoK0")
	right := NewOpStats("Scan", "NoK1")
	root.Adopt(left, right)

	left.AddScanned(10)
	right.AddScanned(20)
	root.AddComparisons(7)
	root.AddEmitted(3)
	root.ObserveStackDepth(2)
	root.ObserveStackDepth(5)
	root.ObserveStackDepth(4)

	if got := root.TotalScanned(); got != 30 {
		t.Errorf("TotalScanned = %d, want 30", got)
	}
	if got := root.TotalEmitted(); got != 3 {
		t.Errorf("TotalEmitted = %d, want 3", got)
	}
	if got := root.TotalComparisons(); got != 7 {
		t.Errorf("TotalComparisons = %d, want 7", got)
	}
	if got := root.MaxStackDepth(); got != 5 {
		t.Errorf("MaxStackDepth = %d, want 5", got)
	}
}

func TestOpStatsConcurrentSiblingDrain(t *testing.T) {
	// Models the parallel pre-scan: sibling stats bumped from separate
	// goroutines plus a shared parent counter.
	root := NewOpStats("root", "")
	kids := make([]*OpStats, 4)
	for i := range kids {
		kids[i] = NewOpStats("scan", "")
		root.Adopt(kids[i])
	}
	var wg sync.WaitGroup
	for _, k := range kids {
		wg.Add(1)
		go func(k *OpStats) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k.AddScanned(2)
				k.AddEmitted(1)
				root.AddComparisons(1)
			}
		}(k)
	}
	wg.Wait()
	if got := root.TotalScanned(); got != 4000 {
		t.Errorf("TotalScanned = %d, want 4000", got)
	}
	if got := root.Comparisons(); got != 2000 {
		t.Errorf("Comparisons = %d, want 2000", got)
	}
}

func TestTimingGate(t *testing.T) {
	s := NewOpStats("op", "")
	if !s.Start().IsZero() {
		t.Error("Start should be zero before EnableTiming")
	}
	s.EnableTiming()
	t0 := s.Start()
	if t0.IsZero() {
		t.Fatal("Start should measure after EnableTiming")
	}
	s.Stop(t0)
	if s.Elapsed() <= 0 {
		t.Error("Elapsed should accumulate")
	}
}

func TestRenderShape(t *testing.T) {
	root := NewOpStats("PipelinedDescJoin", "a//NoK1")
	root.EstNodes, root.EstOut = 30, 4
	child := NewOpStats("NoKScan", "NoK0 seq")
	child.EstNodes, child.EstOut = 20, 5
	root.Adopt(child)
	child.AddScanned(19)
	root.AddEmitted(4)

	plain := root.Render(false)
	if !strings.Contains(plain, "PipelinedDescJoin") || !strings.Contains(plain, "└─ NoKScan") {
		t.Errorf("tree shape missing:\n%s", plain)
	}
	if strings.Contains(plain, "act=") {
		t.Errorf("plain explain must not show actuals:\n%s", plain)
	}
	analyzed := root.Render(true)
	if !strings.Contains(analyzed, "out est=4 act=4") {
		t.Errorf("analyze should pair estimates with actuals:\n%s", analyzed)
	}
	if !strings.Contains(analyzed, "scanned est=20 act=19") {
		t.Errorf("child row should show scan counters:\n%s", analyzed)
	}
}
