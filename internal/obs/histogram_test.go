package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	// v <= bound places the observation: 0.05 and 0.1 in bucket 0 (le
	// 0.1), 0.5 in bucket 1, 5 in bucket 2, 100 in the +Inf overflow.
	want := []int64{2, 1, 1, 1}
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if diff := math.Abs(h.Sum() - 105.65); diff > 1e-9 {
		t.Errorf("Sum = %g, want 105.65", h.Sum())
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 6 {
		t.Errorf("Count after ObserveDuration = %d, want 6", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("h", []float64{1, 2, 4})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
	// 10 observations uniform in (0,1]: quantiles interpolate within
	// the first bucket.
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i) / 10)
	}
	if q := h.Quantile(0.5); math.Abs(q-0.5) > 1e-9 {
		t.Errorf("p50 = %g, want 0.5", q)
	}
	if q := h.Quantile(1); math.Abs(q-1) > 1e-9 {
		t.Errorf("p100 = %g, want 1", q)
	}
	// An observation past every bound clamps to the largest finite
	// bound rather than inventing a value.
	h.Observe(100)
	if q := h.Quantile(0.999); q != 4 {
		t.Errorf("overflow quantile = %g, want clamp to 4", q)
	}
	// Out-of-range q is clamped, not an error.
	if q := h.Quantile(-1); q < 0 {
		t.Errorf("q=-1 gave %g", q)
	}
	if q := h.Quantile(2); q != 4 {
		t.Errorf("q=2 gave %g, want 4", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram("a", []float64{1, 2})
	b := NewHistogram("b", []float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(9)
	a.Merge(b)
	if a.Count() != 3 {
		t.Errorf("merged Count = %d, want 3", a.Count())
	}
	if diff := math.Abs(a.Sum() - 11); diff > 1e-9 {
		t.Errorf("merged Sum = %g, want 11", a.Sum())
	}
	want := []int64{1, 1, 1}
	for i, c := range a.Counts() {
		if c != want[i] {
			t.Errorf("merged counts = %v, want %v", a.Counts(), want)
			break
		}
	}
	// Mismatched bounds must be ignored, not corrupt the buckets.
	c := NewHistogram("c", []float64{1, 2, 3})
	a.Merge(c)
	c.Observe(1)
	c.Merge(a)
	if a.Count() != 3 || c.Count() != 1 {
		t.Errorf("mismatched merge changed counts: a=%d c=%d", a.Count(), c.Count())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("h", LatencyBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d", h.Count(), workers*per)
	}
	var total int64
	for _, c := range h.Counts() {
		total += c
	}
	if total != workers*per {
		t.Errorf("bucket total = %d, want %d", total, workers*per)
	}
	// Sum is CAS-accumulated; 2000 observations each of 0.001, 0.002,
	// 0.003 plus 2000 zeros.
	want := float64(per*2) * (0.001 + 0.002 + 0.003)
	if diff := math.Abs(h.Sum() - want); diff > 1e-6 {
		t.Errorf("Sum = %g, want %g", h.Sum(), want)
	}
}

func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.Merge(NewHistogram("x", nil))
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram accessors should read zero")
	}
	if h.Name() != "" || h.Bounds() != nil || h.Counts() != nil {
		t.Error("nil histogram metadata should be empty")
	}
}

func TestRegistryHistogramRegistration(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("lat", []float64{1, 2})
	h2 := r.Histogram("lat", nil) // later bounds ignored
	if h1 != h2 {
		t.Error("Histogram should return the first-registered instance")
	}
	r.Observe("lat", 1.5)
	if h1.Count() != 1 {
		t.Errorf("Observe did not reach the registered histogram: count=%d", h1.Count())
	}
	r.Observe("other", 0.01)
	hs := r.Histograms()
	if len(hs) != 2 || hs[0].Name() != "lat" || hs[1].Name() != "other" {
		names := make([]string, len(hs))
		for i, h := range hs {
			names[i] = h.Name()
		}
		t.Errorf("Histograms() = %v, want [lat other]", names)
	}
}
