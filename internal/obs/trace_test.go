package obs

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// statsTree builds Join(ScanA, Filter(ScanB)) — a shape with both a
// leaf sibling and a nested child.
func statsTree() *OpStats {
	root := NewOpStats("Join", "a//b")
	scanA := NewOpStats("ScanA", "NoK0")
	filter := NewOpStats("Filter", "pred")
	scanB := NewOpStats("ScanB", "NoK1")
	filter.Adopt(scanB)
	root.Adopt(scanA, filter)
	scanA.AddScanned(10)
	scanB.AddScanned(20)
	root.AddEmitted(3)
	return root
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("q-1", statsTree(), 5*time.Millisecond)
	// Depth-first operator order, matching EXPLAIN ANALYZE's rendering.
	want := []string{"Join", "ScanA", "Filter", "ScanB"}
	if got := tr.SpanNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("SpanNames = %v, want %v", got, want)
	}
	// One query-level wrapper plus the four operators.
	if len(tr.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(tr.TraceEvents))
	}
	q := tr.TraceEvents[0]
	if q.Cat != "query" || q.Ph != "X" || q.Dur != 5000 {
		t.Errorf("query span = %+v", q)
	}
	// Spans nest: every operator stays inside the query window, and the
	// root operator covers the whole of it (zero-elapsed tree spreads to
	// the wall time).
	for _, ev := range tr.TraceEvents[1:] {
		if ev.Ts < 0 || ev.Ts+ev.Dur > q.Dur+1e-9 {
			t.Errorf("span %s [%g, %g] escapes query window %g", ev.Name, ev.Ts, ev.Ts+ev.Dur, q.Dur)
		}
	}
	// Work counters ride along in args even without Analyze timing.
	var scanA *TraceEvent
	for i := range tr.TraceEvents {
		if tr.TraceEvents[i].Name == "ScanA" {
			scanA = &tr.TraceEvents[i]
		}
	}
	if scanA == nil || scanA.Args["scanned"] != int64(10) {
		t.Errorf("ScanA args = %+v", scanA)
	}
}

func TestTraceNilStats(t *testing.T) {
	tr := NewTrace("q-nav", nil, time.Millisecond)
	if len(tr.TraceEvents) != 1 || tr.TraceEvents[0].Cat != "query" {
		t.Errorf("nil-stats trace = %+v", tr.TraceEvents)
	}
	if tr.SpanNames() != nil {
		t.Errorf("SpanNames = %v, want none", tr.SpanNames())
	}
}

func TestTraceJSONShape(t *testing.T) {
	b := NewTrace("q-2", statsTree(), time.Millisecond).JSON()
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(decoded.TraceEvents) != 5 {
		t.Errorf("decoded events = %d, want 5", len(decoded.TraceEvents))
	}
	if decoded.OtherData["queryID"] != "q-2" {
		t.Errorf("otherData = %v", decoded.OtherData)
	}
	// Chrome's loader requires ph and numeric ts/dur on every event.
	for _, ev := range decoded.TraceEvents {
		if ev["ph"] != "X" {
			t.Errorf("event ph = %v, want X", ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event ts not numeric: %v", ev["ts"])
		}
	}
}

func TestTraceStoreEviction(t *testing.T) {
	ts := NewTraceStore(3)
	for i := 0; i < 5; i++ {
		ts.Put(fmt.Sprintf("q-%d", i), NewTrace("x", nil, 0))
	}
	if ts.Len() != 3 {
		t.Errorf("Len = %d, want 3 (capacity)", ts.Len())
	}
	if _, ok := ts.Get("q-0"); ok {
		t.Error("oldest trace should be evicted")
	}
	if _, ok := ts.Get("q-4"); !ok {
		t.Error("newest trace should be retained")
	}
	// Overwriting an existing ID must not evict or grow.
	ts.Put("q-4", NewTrace("x", nil, 0))
	if ts.Len() != 3 {
		t.Errorf("Len after overwrite = %d, want 3", ts.Len())
	}
	// Nil-safety and empty IDs.
	var nilStore *TraceStore
	nilStore.Put("q", nil)
	if _, ok := nilStore.Get("q"); ok || nilStore.Len() != 0 {
		t.Error("nil store should be inert")
	}
	ts.Put("", NewTrace("x", nil, 0))
	if ts.Len() != 3 {
		t.Error("empty query ID should not be stored")
	}
}
