package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestQueryHashStable(t *testing.T) {
	a, b := QueryHash("//book/title"), QueryHash("//book/title")
	if a != b || len(a) != 16 {
		t.Errorf("QueryHash not stable 16-hex: %q vs %q", a, b)
	}
	if QueryHash("//other") == a {
		t.Error("distinct queries should hash differently")
	}
}

func TestQueryLogLevelsAndSlowCapture(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	explainCalls := 0
	l := &QueryLog{
		Logger:        slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowThreshold: 100 * time.Millisecond,
		Registry:      reg,
	}
	entry := QueryLogEntry{
		QueryID:   "q-1",
		QueryHash: QueryHash("//a"),
		Strategy:  "PL",
		Verdict:   "ok",
		Latency:   time.Millisecond,
		Explain:   func() string { explainCalls++; return "Join\n└─ Scan" },
	}
	l.Record(entry)

	entry.QueryID = "q-2"
	entry.Latency = 200 * time.Millisecond
	l.Record(entry)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("log lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var fast, slow map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &fast); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &slow); err != nil {
		t.Fatal(err)
	}
	if fast["level"] != "INFO" || fast["slow"] != nil || fast["explain"] != nil {
		t.Errorf("fast query record = %v", fast)
	}
	if slow["level"] != "WARN" || slow["slow"] != true {
		t.Errorf("slow query record = %v", slow)
	}
	if slow["explain"] != "Join\n└─ Scan" {
		t.Errorf("slow record explain = %v", slow["explain"])
	}
	// The explain payload is rendered lazily: only the slow query pays.
	if explainCalls != 1 {
		t.Errorf("Explain called %d times, want 1 (slow query only)", explainCalls)
	}
	if got := reg.Counter(MetricSlowQueries).Load(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricSlowQueries, got)
	}
	if fast["query_hash"] != QueryHash("//a") || fast["strategy"] != "PL" {
		t.Errorf("missing identity fields: %v", fast)
	}
}

func TestQueryLogNilSafety(t *testing.T) {
	var l *QueryLog
	l.Record(QueryLogEntry{QueryID: "q"}) // must not panic
	(&QueryLog{}).Record(QueryLogEntry{QueryID: "q"})
}
