package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// OpStats is one node of a per-query execution-statistics tree. The
// planner builds one OpStats per physical operator, records its
// cost-model estimates, and hands the node to the operator; the
// operator bumps the actual-work counters while it runs. All counters
// are atomics because sibling operators may be drained concurrently
// (the parallel NoK pre-scan) and EXPLAIN may render while a Stop
// deadline is still draining.
//
// Every mutator is nil-safe, so operators can be built without stats at
// zero cost beyond a nil check.
type OpStats struct {
	// Name is the physical operator, e.g. "PipelinedDescJoin".
	Name string
	// Detail is the planner's one-line annotation (link label, access
	// method, predicate form).
	Detail string

	// EstNodes is the cost model's estimate of nodes this operator
	// touches (its share of the strategy cost, in the model's
	// nodes-touched unit); negative when the model has no estimate.
	EstNodes float64
	// EstOut is the estimated number of instances the operator emits;
	// negative when unknown.
	EstOut float64

	// FeedbackKey, when non-empty, names this operator for the feedback
	// store: the telemetry boundary records the operator's est/act
	// counters under (query hash, FeedbackKey) so later plan-cache hits
	// can compare cached estimates against observed history. Planners set
	// it to the stable label of the NoK/twig root the operator produces
	// (the same label the cost model's CardHints are keyed by).
	FeedbackKey string

	// Children are the stats of the operator's input operators.
	Children []*OpStats

	timed bool

	calls       atomic.Int64 // GetNext invocations
	scanned     atomic.Int64 // document/index nodes inspected
	emitted     atomic.Int64 // instances produced
	comparisons atomic.Int64 // structural/value predicate evaluations
	maxStack    atomic.Int64 // deepest operator stack observed
	batches     atomic.Int64 // vectorized batches exchanged (0 for tuple-at-a-time operators)
	elapsed     atomic.Int64 // cumulative wall time, nanoseconds (inclusive of children)
}

// NewOpStats returns a stats node for one physical operator. Estimates
// default to unknown.
func NewOpStats(name, detail string) *OpStats {
	return &OpStats{Name: name, Detail: detail, EstNodes: -1, EstOut: -1}
}

// Adopt appends child operators' stats nodes.
func (s *OpStats) Adopt(children ...*OpStats) *OpStats {
	if s == nil {
		return nil
	}
	for _, c := range children {
		if c != nil {
			s.Children = append(s.Children, c)
		}
	}
	return s
}

// EnableTiming turns on wall-clock measurement for this node and its
// subtree (EXPLAIN ANALYZE mode).
func (s *OpStats) EnableTiming() {
	if s == nil {
		return
	}
	s.timed = true
	for _, c := range s.Children {
		c.EnableTiming()
	}
}

// Timed reports whether wall-clock measurement is on.
func (s *OpStats) Timed() bool { return s != nil && s.timed }

// AddCall counts one GetNext invocation.
func (s *OpStats) AddCall() {
	if s != nil {
		s.calls.Add(1)
	}
}

// AddScanned counts inspected input nodes.
func (s *OpStats) AddScanned(n int64) {
	if s != nil && n != 0 {
		s.scanned.Add(n)
	}
}

// AddEmitted counts produced instances.
func (s *OpStats) AddEmitted(n int64) {
	if s != nil && n != 0 {
		s.emitted.Add(n)
	}
}

// AddComparisons counts predicate/containment evaluations.
func (s *OpStats) AddComparisons(n int64) {
	if s != nil && n != 0 {
		s.comparisons.Add(n)
	}
}

// ObserveStackDepth records an operator-stack high-water mark.
func (s *OpStats) ObserveStackDepth(depth int) {
	if s == nil {
		return
	}
	d := int64(depth)
	for {
		cur := s.maxStack.Load()
		if d <= cur || s.maxStack.CompareAndSwap(cur, d) {
			return
		}
	}
}

// AddBatches counts batches exchanged by a vectorized operator.
func (s *OpStats) AddBatches(n int64) {
	if s != nil && n != 0 {
		s.batches.Add(n)
	}
}

// AddElapsed accumulates wall time.
func (s *OpStats) AddElapsed(d time.Duration) {
	if s != nil && d > 0 {
		s.elapsed.Add(int64(d))
	}
}

// Start begins a wall-clock measurement; it returns the zero time when
// timing is off, which Stop treats as a no-op. The pair keeps the
// per-GetNext cost to one branch when timing is disabled.
func (s *OpStats) Start() time.Time {
	if s == nil || !s.timed {
		return time.Time{}
	}
	return time.Now()
}

// Stop ends a measurement started by Start.
func (s *OpStats) Stop(start time.Time) {
	if start.IsZero() {
		return
	}
	s.elapsed.Add(int64(time.Since(start)))
}

// Calls returns the number of GetNext invocations.
func (s *OpStats) Calls() int64 {
	if s == nil {
		return 0
	}
	return s.calls.Load()
}

// Scanned returns the nodes inspected by this operator alone.
func (s *OpStats) Scanned() int64 {
	if s == nil {
		return 0
	}
	return s.scanned.Load()
}

// Emitted returns the instances this operator produced.
func (s *OpStats) Emitted() int64 {
	if s == nil {
		return 0
	}
	return s.emitted.Load()
}

// Comparisons returns the predicate evaluations performed.
func (s *OpStats) Comparisons() int64 {
	if s == nil {
		return 0
	}
	return s.comparisons.Load()
}

// Batches returns the vectorized batches exchanged (0 for
// tuple-at-a-time operators, which never touch the counter).
func (s *OpStats) Batches() int64 {
	if s == nil {
		return 0
	}
	return s.batches.Load()
}

// MaxStackDepth returns the deepest operator stack observed.
func (s *OpStats) MaxStackDepth() int64 {
	if s == nil {
		return 0
	}
	return s.maxStack.Load()
}

// Elapsed returns cumulative wall time (inclusive of children, like the
// actual-time column of a conventional EXPLAIN ANALYZE).
func (s *OpStats) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.elapsed.Load())
}

// TotalScanned sums nodes scanned across the subtree.
func (s *OpStats) TotalScanned() int64 {
	if s == nil {
		return 0
	}
	total := s.Scanned()
	for _, c := range s.Children {
		total += c.TotalScanned()
	}
	return total
}

// TotalEmitted sums instances emitted across the subtree.
func (s *OpStats) TotalEmitted() int64 {
	if s == nil {
		return 0
	}
	total := s.Emitted()
	for _, c := range s.Children {
		total += c.TotalEmitted()
	}
	return total
}

// TotalComparisons sums comparisons across the subtree.
func (s *OpStats) TotalComparisons() int64 {
	if s == nil {
		return 0
	}
	total := s.Comparisons()
	for _, c := range s.Children {
		total += c.TotalComparisons()
	}
	return total
}

// TotalCalls sums GetNext invocations across the subtree.
func (s *OpStats) TotalCalls() int64 {
	if s == nil {
		return 0
	}
	total := s.Calls()
	for _, c := range s.Children {
		total += c.TotalCalls()
	}
	return total
}

// Render draws the operator tree. Each row shows the operator, the
// planner's detail, and the cost-model estimates; with analyze true the
// actual counters are printed next to the estimates.
func (s *OpStats) Render(analyze bool) string {
	var sb strings.Builder
	s.render(&sb, "", "", analyze)
	return sb.String()
}

func (s *OpStats) render(sb *strings.Builder, prefix, childPrefix string, analyze bool) {
	if s == nil {
		return
	}
	sb.WriteString(prefix)
	sb.WriteString(s.Name)
	if s.Detail != "" {
		sb.WriteString(" [" + s.Detail + "]")
	}
	sb.WriteString("  (" + s.columns(analyze) + ")")
	sb.WriteByte('\n')
	for i, c := range s.Children {
		last := i == len(s.Children)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		c.render(sb, childPrefix+branch, childPrefix+cont, analyze)
	}
}

// columns renders the estimate/actual cells of one row.
func (s *OpStats) columns(analyze bool) string {
	var cols []string
	est := func(v float64) string {
		if v < 0 {
			return "?"
		}
		return fmt.Sprintf("%.0f", v)
	}
	if analyze {
		cols = append(cols,
			"out est="+est(s.EstOut)+" act="+fmt.Sprintf("%d", s.Emitted()),
			"scanned est="+est(s.EstNodes)+" act="+fmt.Sprintf("%d", s.Scanned()),
		)
		if c := s.Comparisons(); c > 0 {
			cols = append(cols, fmt.Sprintf("cmp=%d", c))
		}
		if d := s.MaxStackDepth(); d > 0 {
			cols = append(cols, fmt.Sprintf("stack=%d", d))
		}
		if b := s.Batches(); b > 0 {
			cols = append(cols, fmt.Sprintf("batches=%d", b))
		}
		cols = append(cols, fmt.Sprintf("calls=%d", s.Calls()))
		if s.timed {
			cols = append(cols, fmt.Sprintf("time=%s", s.Elapsed().Round(time.Microsecond)))
		}
	} else {
		cols = append(cols,
			"out est="+est(s.EstOut),
			"scanned est="+est(s.EstNodes),
		)
	}
	return strings.Join(cols, " · ")
}
