package obs

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestPrometheusGolden pins the text exposition byte-for-byte: a fresh
// registry with deterministic counters and histogram observations must
// render exactly the golden file, so format drift (family ordering,
// float formatting, cumulative bucket math) is caught by diff rather
// than by a scraper.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Add(MetricQueries, 42)
	r.Add(MetricQueryErrors, 3)
	r.Add("weird-name.0", 7) // exercises the [a-zA-Z0-9_:] sanitizer

	h := r.Histogram(HistQueryDuration, []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 0.5, 30} {
		h.Observe(v)
	}

	// Labeled series render inside the family of their unlabeled
	// aggregate: unlabeled line first (scrapers keyed on the bare name
	// keep working), then the per-value series sorted with "other" last.
	r.Add(MetricQueriesShed, 9)
	r.AddLabeled(MetricQueriesShed, "tenant", "acme", 5)
	r.AddLabeled(MetricQueriesShed, "tenant", "zeta", 3)
	r.AddLabeled(MetricQueriesShed, "tenant", "", 1) // empty value folds into "other"
	// A labeled family with no unlabeled counterpart renders standalone.
	r.AddLabeled("replica_lag_total", "replica", "r1", 2)

	// Per-shard histograms regroup at render time: shard_<i>_<rest>
	// becomes one blossomtree_shard_<rest> family with {shard="i"}
	// labels, shards in numeric order.
	for i, obsv := range []float64{0.002, 0.05} {
		sh := r.Histogram(fmt.Sprintf("shard_%d_query_duration_seconds", i), []float64{0.01, 0.1})
		sh.Observe(obsv)
	}

	got := r.PrometheusText()
	path := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/obs -run TestPrometheusGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("Prometheus exposition drifted from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestPrometheusHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(10)
	text := r.PrometheusText()
	for _, line := range []string{
		"# TYPE blossomtree_lat histogram",
		`blossomtree_lat_bucket{le="1"} 1`,
		`blossomtree_lat_bucket{le="2"} 2`,
		`blossomtree_lat_bucket{le="+Inf"} 3`,
		"blossomtree_lat_sum 12",
		"blossomtree_lat_count 3",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("exposition missing %q:\n%s", line, text)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"queries_total": "blossomtree_queries_total",
		"a.b/c-d":       "blossomtree_a_b_c_d",
		"ns:metric":     "blossomtree_ns:metric",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
