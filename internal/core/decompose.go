package core

import (
	"fmt"
	"strings"
)

// NoK is one next-of-kin pattern tree produced by decomposition: a
// maximal subgraph of the BlossomTree connected by local-axis tree edges
// (child and following-sibling) only. NoK pattern trees are the unit of
// navigational matching (Algorithm 2).
type NoK struct {
	Index   int
	Root    *Vertex
	Members map[*Vertex]bool
}

// Contains reports whether a vertex belongs to this NoK.
func (n *NoK) Contains(v *Vertex) bool { return n.Members[v] }

// LocalChildren returns v's children that stay inside this NoK, in
// construction order.
func (n *NoK) LocalChildren(v *Vertex) []*Vertex {
	var out []*Vertex
	for _, c := range v.Children {
		if n.Members[c] {
			out = append(out, c)
		}
	}
	return out
}

// ReturningVertices returns the NoK's returning vertices in depth-first
// order.
func (n *NoK) ReturningVertices() []*Vertex {
	var out []*Vertex
	var walk func(v *Vertex)
	walk = func(v *Vertex) {
		if v.Returning {
			out = append(out, v)
		}
		for _, c := range n.LocalChildren(v) {
			walk(c)
		}
	}
	walk(n.Root)
	return out
}

// Size returns the number of vertices in the NoK.
func (n *NoK) Size() int { return len(n.Members) }

// String renders the NoK as an outline.
func (n *NoK) String() string {
	var sb strings.Builder
	var walk func(v *Vertex, depth int)
	walk = func(v *Vertex, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if depth > 0 {
			sb.WriteString(v.ParentRel.String() + "(" + v.ParentMode.String() + ") ")
		}
		sb.WriteString(v.Label())
		sb.WriteByte('\n')
		for _, c := range n.LocalChildren(v) {
			walk(c, depth+1)
		}
	}
	walk(n.Root, 0)
	return sb.String()
}

// Link is a cut tree edge: the structural join connecting two NoK
// pattern trees. Parent is the vertex on the outer side (a returning
// vertex, or a document-root vertex for links that degenerate to
// whole-document scans); Child is the NoK rooted at the cut edge's
// target. The relationship is always RelDescendant — the only global
// axis in the fragment — with the cut edge's original mode.
type Link struct {
	Parent *Vertex
	Child  *NoK
	Mode   Mode
}

// IsScan reports whether the link's outer side is a document root, in
// which case no join is needed: the inner NoK simply scans the whole
// document (the situation of the paper's Figure 5, where doc()//book
// anchors NoK₁ and NoK₂ directly).
func (l Link) IsScan() bool { return l.Parent.IsDocRoot() }

// Decomposition is the result of Algorithm 1: the NoK pattern trees, the
// links (cut //-edges) between them, and the crossing edges, which
// together form the join graph the plan layer orders.
type Decomposition struct {
	Tree  *BlossomTree
	NoKs  []*NoK
	Links []Link

	byVertex map[*Vertex]*NoK
}

// NoKOf returns the NoK containing the given vertex.
func (d *Decomposition) NoKOf(v *Vertex) (*NoK, bool) {
	n, ok := d.byVertex[v]
	return n, ok
}

// Decompose implements Algorithm 1: depth-first edge-cutting of the
// (finalized) BlossomTree into interconnected NoK pattern trees. The set
// S of pending NoK roots is initialized with the pattern-tree roots;
// every edge labeled with a local axis extends the current NoK, every
// edge labeled with the global axis // is cut, its target joining S.
func Decompose(bt *BlossomTree) (*Decomposition, error) {
	if bt.returning == nil {
		bt.Finalize()
	}
	d := &Decomposition{Tree: bt, byVertex: make(map[*Vertex]*NoK)}
	type pending struct {
		root   *Vertex
		parent *Vertex // outer endpoint of the cut edge; nil for pattern roots
		mode   Mode
	}
	// S is the worklist of NoK roots (Algorithm 1's S).
	var S []pending
	for _, r := range bt.Roots {
		S = append(S, pending{root: r})
	}
	for len(S) > 0 {
		p := S[0]
		S = S[1:]
		nok := &NoK{Index: len(d.NoKs), Root: p.root, Members: map[*Vertex]bool{p.root: true}}
		d.NoKs = append(d.NoKs, nok)
		d.byVertex[p.root] = nok
		// T is the DFS worklist within the current NoK (Algorithm 1's T).
		T := []*Vertex{p.root}
		for len(T) > 0 {
			u := T[len(T)-1]
			T = T[:len(T)-1]
			for _, v := range u.Children {
				if v.ParentRel.Local() {
					nok.Members[v] = true
					d.byVertex[v] = nok
					T = append(T, v)
				} else {
					S = append(S, pending{root: v, parent: u, mode: v.ParentMode})
				}
			}
		}
		if p.parent != nil {
			d.Links = append(d.Links, Link{Parent: p.parent, Child: nok, Mode: p.mode})
		}
	}
	// Sanity: every vertex must land in exactly one NoK.
	for _, v := range bt.Vertices {
		if _, ok := d.byVertex[v]; !ok {
			return nil, fmt.Errorf("core: decompose: vertex %s unreachable from any root", v.Label())
		}
	}
	return d, nil
}

// String renders the decomposition for diagnostics.
func (d *Decomposition) String() string {
	var sb strings.Builder
	for _, n := range d.NoKs {
		fmt.Fprintf(&sb, "NoK%d:\n%s", n.Index, indent(n.String(), "  "))
	}
	for _, l := range d.Links {
		kind := "join"
		if l.IsScan() {
			kind = "scan"
		}
		fmt.Fprintf(&sb, "link (%s): %s //(%s) NoK%d\n", kind, l.Parent.Label(), l.Mode, l.Child.Index)
	}
	for _, c := range d.Tree.Crossings {
		sb.WriteString("cross: " + c.String() + "\n")
	}
	return sb.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
