package core

import (
	"fmt"
	"strings"

	"blossomtree/internal/xmltree"
	"blossomtree/internal/xpath"
)

// Rel is the structural relationship annotating a tree edge of a
// BlossomTree (the r of the paper's ⟨r, m⟩ annotation). Child and
// FollowingSibling are the local axes a NoK pattern tree admits;
// Descendant is the global axis along which Algorithm 1 cuts.
type Rel int

// Tree-edge relationships. RelParent and RelAncestor are the upward
// mirror edges of RelChild and RelDescendant (the reverse-axis edge
// kinds of the tree-pattern survey literature): the edge's target vertex
// matches the parent (resp. an ancestor) of the source's match. The
// compiler rewrites RelParent edges onto existing vertices where a
// /-edge already pins the parent; the remaining upward edges are outside
// the join algebra and route the query to the navigational fallback.
const (
	RelChild Rel = iota
	RelDescendant
	RelFollowingSibling
	RelParent
	RelAncestor
)

// Local reports whether the relationship is a local axis (stays inside a
// NoK pattern tree under Algorithm 1). The upward axes mirror their
// downward counterparts: parent is local, ancestor is global.
func (r Rel) Local() bool { return r != RelDescendant && r != RelAncestor }

// Upward reports whether the edge points against the document hierarchy
// (its target matches above its source).
func (r Rel) Upward() bool { return r == RelParent || r == RelAncestor }

// String renders the relationship in XPath syntax.
func (r Rel) String() string {
	switch r {
	case RelChild:
		return "/"
	case RelDescendant:
		return "//"
	case RelFollowingSibling:
		return "/following-sibling::"
	case RelParent:
		return "/parent::"
	case RelAncestor:
		return "/ancestor::"
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Holds evaluates the structural relationship between two XML nodes
// (src is the edge's source match, tgt its target match).
func (r Rel) Holds(src, tgt *xmltree.Node) bool {
	switch r {
	case RelChild:
		return tgt.Parent == src
	case RelDescendant:
		return src.IsAncestorOf(tgt)
	case RelFollowingSibling:
		return tgt.Parent == src.Parent && src.Before(tgt)
	case RelParent:
		return src.Parent == tgt
	case RelAncestor:
		return tgt.IsAncestorOf(src)
	default:
		return false
	}
}

// Mode is the matching mode of an edge: mandatory ("f", contributed by
// for-clauses and structural predicates) or optional ("l", contributed by
// let-clauses and return-clause extensions).
type Mode byte

// Edge modes.
const (
	Mandatory Mode = 'f'
	Optional  Mode = 'l'
)

// String renders the mode letter.
func (m Mode) String() string { return string(byte(m)) }

// ConstraintKind discriminates value constraints attached to a vertex.
type ConstraintKind int

// Constraint kinds.
const (
	CValue      ConstraintKind = iota // string-value comparison: . op literal
	CAttr                             // attribute comparison: @a op literal
	CAttrExists                       // attribute existence: @a
	CPosition                         // positional predicate: [n]
)

// Constraint is a value constraint on a vertex (the optional value
// constraints of Definition 1).
type Constraint struct {
	Kind  ConstraintKind
	Attr  string      // for CAttr / CAttrExists
	Op    xpath.CmpOp // for CValue / CAttr
	Value string      // literal, for CValue / CAttr
	Pos   int         // for CPosition (1-based)
}

// Match evaluates the constraint against an XML node. pos is the node's
// 1-based position within its matched sibling group (used by CPosition).
func (c Constraint) Match(n *xmltree.Node, pos int) bool {
	switch c.Kind {
	case CValue:
		return c.Op.Eval(xmltree.StringValue(n), c.Value)
	case CAttr:
		v, ok := n.Attr(c.Attr)
		return ok && c.Op.Eval(v, c.Value)
	case CAttrExists:
		_, ok := n.Attr(c.Attr)
		return ok
	case CPosition:
		return pos == c.Pos
	default:
		return false
	}
}

// String renders the constraint in predicate syntax.
func (c Constraint) String() string {
	switch c.Kind {
	case CValue:
		return fmt.Sprintf(".%s%q", c.Op, c.Value)
	case CAttr:
		return fmt.Sprintf("@%s%s%q", c.Attr, c.Op, c.Value)
	case CAttrExists:
		return "@" + c.Attr
	case CPosition:
		return fmt.Sprintf("%d", c.Pos)
	default:
		return "?"
	}
}

// Vertex is a node of a BlossomTree (Definition 1): a tag-name test,
// optional value constraints, and an optional variable binding (blossom).
type Vertex struct {
	ID          int    // dense index into BlossomTree.Vertices
	Test        string // tag name or "*"; "~" for a document-root vertex
	Constraints []Constraint
	Blossom     string // variable bound here, "" if none
	Returning   bool
	// ForBound marks vertices bound by for-clauses (or the endpoints of
	// bare path queries): their matches enumerate separate result
	// instances instead of being grouped, per the for/let distinction of
	// §3.1.
	ForBound bool
	Dewey    Dewey // assigned to returning vertices by Finalize

	// Tree structure. The edge from Parent to this vertex carries
	// ⟨ParentRel, ParentMode⟩. Roots have Parent == nil.
	Parent     *Vertex
	ParentRel  Rel
	ParentMode Mode
	Children   []*Vertex
}

// IsRoot reports whether the vertex is a pattern-tree root (anchored at a
// document).
func (v *Vertex) IsRoot() bool { return v.Parent == nil }

// IsDocRoot reports whether the vertex matches the document node itself.
func (v *Vertex) IsDocRoot() bool { return v.Test == "~" }

// MatchesTag reports whether the vertex's tag test accepts tag.
func (v *Vertex) MatchesTag(tag string) bool { return v.Test == "*" || v.Test == tag }

// MatchesNode reports whether the node satisfies the vertex's tag test
// and all non-positional value constraints.
func (v *Vertex) MatchesNode(n *xmltree.Node) bool {
	if v.IsDocRoot() {
		return n.Kind == xmltree.DocumentNode
	}
	if n.Kind != xmltree.ElementNode || !v.MatchesTag(n.Tag) {
		return false
	}
	for _, c := range v.Constraints {
		if c.Kind == CPosition {
			continue // positional constraints need sibling context
		}
		if !c.Match(n, 0) {
			return false
		}
	}
	return true
}

// PositionConstraint returns the vertex's positional constraint, if any.
func (v *Vertex) PositionConstraint() (int, bool) {
	for _, c := range v.Constraints {
		if c.Kind == CPosition {
			return c.Pos, true
		}
	}
	return 0, false
}

// Label renders the vertex for diagnostics: tag, constraints, blossom.
func (v *Vertex) Label() string {
	var sb strings.Builder
	sb.WriteString(v.Test)
	for _, c := range v.Constraints {
		sb.WriteString("[" + c.String() + "]")
	}
	if v.Blossom != "" {
		sb.WriteString("($" + v.Blossom + ")")
	}
	if len(v.Dewey) > 0 {
		sb.WriteString("#" + v.Dewey.String())
	}
	return sb.String()
}

// CrossKind discriminates crossing-edge relationships: structural
// (document order), value-based, or mixed (deep-equal), per §1.
type CrossKind int

// Crossing-edge kinds.
const (
	CrossDocOrder CrossKind = iota // From << To (or >> when Negate+swap)
	CrossValue                     // existential value comparison with Op
	CrossDeepEqual
)

// Crossing is a crossing edge of the BlossomTree: a correlation between
// two vertices generated by the where-clause. Its mode is always
// mandatory (the paper: "the mode m could be 'f' only").
type Crossing struct {
	From, To *Vertex
	Kind     CrossKind
	Op       xpath.CmpOp // for CrossValue
	// FromAttr/ToAttr carry the attribute name when a CrossValue
	// endpoint path ended in an attribute step ($x/@a = $y/@b): the
	// comparison then reads attribute values instead of element
	// string-values. The endpoint vertices are the elements carrying
	// the attributes (attributes are not nodes in this data model).
	FromAttr, ToAttr string
	Negate           bool // wraps the whole (existentially quantified) predicate
}

// String renders the crossing edge.
func (c *Crossing) String() string {
	var rel string
	switch c.Kind {
	case CrossDocOrder:
		rel = "<<"
	case CrossValue:
		rel = c.Op.String()
	case CrossDeepEqual:
		rel = "deep-equal"
	}
	s := fmt.Sprintf("%s %s %s", c.From.Label(), rel, c.To.Label())
	if c.Negate {
		return "not(" + s + ")"
	}
	return s
}

// Eval evaluates the crossing predicate between the projected match
// lists of its two endpoints, following the existential semantics of
// XQuery general comparisons. left and right are the matches of From and
// To within one candidate pairing.
func (c *Crossing) Eval(left, right []*xmltree.Node) bool {
	var res bool
	switch c.Kind {
	case CrossDocOrder:
		res = false
		for _, l := range left {
			for _, r := range right {
				if l != r && l.Before(r) {
					res = true
				}
			}
		}
	case CrossValue:
		res = false
		for _, l := range left {
			lv, ok := cmpValue(l, c.FromAttr)
			if !ok {
				continue
			}
			for _, r := range right {
				rv, ok := cmpValue(r, c.ToAttr)
				if !ok {
					continue
				}
				if c.Op.Eval(lv, rv) {
					res = true
				}
			}
		}
	case CrossDeepEqual:
		res = xmltree.DeepEqualSeq(left, right)
	}
	if c.Negate {
		return !res
	}
	return res
}

// cmpValue extracts a node's comparison value: the named attribute's
// value (absent attribute contributes nothing) or the string-value.
func cmpValue(n *xmltree.Node, attr string) (string, bool) {
	if attr == "" {
		return xmltree.StringValue(n), true
	}
	return n.Attr(attr)
}

// BlossomTree is the annotated directed graph of Definition 1: a set of
// interconnected pattern trees (Roots), crossing edges, and the global
// vertex table. Docs maps document URIs to their root vertices; queries
// over a single document have one entry.
type BlossomTree struct {
	Vertices  []*Vertex
	Roots     []*Vertex
	Crossings []*Crossing
	Docs      map[string]*Vertex // doc URI → root vertex ("" key for absolute paths)

	returning *ReturnTree // built by AssignDeweys
}

// NewBlossomTree returns an empty BlossomTree.
func NewBlossomTree() *BlossomTree {
	return &BlossomTree{Docs: make(map[string]*Vertex)}
}

// NewVertex allocates a vertex and registers it.
func (bt *BlossomTree) NewVertex(test string) *Vertex {
	v := &Vertex{ID: len(bt.Vertices), Test: test}
	bt.Vertices = append(bt.Vertices, v)
	return v
}

// AddRoot registers a pattern-tree root for the given document URI,
// reusing an existing root for the same document (the paper's Figure 1
// has a single bib.xml root shared by both for-clauses).
func (bt *BlossomTree) AddRoot(docURI string) *Vertex {
	if r, ok := bt.Docs[docURI]; ok {
		return r
	}
	r := bt.NewVertex("~")
	bt.Roots = append(bt.Roots, r)
	bt.Docs[docURI] = r
	return r
}

// AddChild links child under parent with the given edge annotation.
func (bt *BlossomTree) AddChild(parent, child *Vertex, rel Rel, mode Mode) {
	child.Parent = parent
	child.ParentRel = rel
	child.ParentMode = mode
	parent.Children = append(parent.Children, child)
}

// AddCrossing registers a crossing edge.
func (bt *BlossomTree) AddCrossing(c *Crossing) { bt.Crossings = append(bt.Crossings, c) }

// VertexOfVar returns the vertex a variable is bound to.
func (bt *BlossomTree) VertexOfVar(name string) (*Vertex, bool) {
	for _, v := range bt.Vertices {
		if v.Blossom == name {
			return v, true
		}
	}
	return nil, false
}

// String renders the BlossomTree as an indented outline with crossing
// edges listed below, for diagnostics and plan explanation.
func (bt *BlossomTree) String() string {
	var sb strings.Builder
	var walk func(v *Vertex, depth int)
	walk = func(v *Vertex, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if v.Parent != nil {
			sb.WriteString(v.ParentRel.String())
			sb.WriteString("(" + v.ParentMode.String() + ") ")
		}
		sb.WriteString(v.Label())
		sb.WriteByte('\n')
		for _, c := range v.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range bt.Roots {
		walk(r, 0)
	}
	for _, c := range bt.Crossings {
		sb.WriteString("cross: " + c.String() + "\n")
	}
	return sb.String()
}
