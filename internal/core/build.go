package core

import (
	"fmt"
	"strconv"

	"blossomtree/internal/flwor"
	"blossomtree/internal/xpath"
)

// Query is a compiled query: the BlossomTree capturing everything the
// formalism can express, plus the residual where-conditions that fall
// outside the conjunctive fragment (disjunctions, negated existence over
// literals) and are applied by the executor as post-join selections.
type Query struct {
	Tree     *BlossomTree
	Return   *ReturnTree
	Residual []flwor.Cond
	// Vars maps variable names to their vertices.
	Vars map[string]*Vertex
	// Source is the parsed query this was compiled from.
	Source flwor.Expr
}

type builder struct {
	bt   *BlossomTree
	vars map[string]*Vertex
	// lets maps each let variable to its (already inlined) defining
	// path, so later paths anchored at the variable can be rewritten to
	// start from the definition's own anchor — see inlineLets.
	lets map[string]*xpath.Path
}

// FromPath compiles a bare path expression into a single-pattern-tree
// BlossomTree whose returning node is the path's endpoint, bound to the
// pseudo-variable "result".
func FromPath(p *xpath.Path) (*Query, error) {
	b := &builder{bt: NewBlossomTree(), vars: map[string]*Vertex{}}
	end, err := b.pathEndpoint(p, Mandatory, false)
	if err != nil {
		return nil, err
	}
	if end.IsDocRoot() {
		return nil, fmt.Errorf("core: path %s returns the document node", p)
	}
	end.Returning = true
	end.ForBound = true
	if end.Blossom == "" {
		end.Blossom = "result"
	}
	b.vars["result"] = end
	q := &Query{Tree: b.bt, Vars: b.vars, Source: &flwor.PathExpr{Path: p}}
	q.Return = b.bt.Finalize()
	return q, nil
}

// FromFLWOR compiles a FLWOR expression (or a constructor/path wrapping
// one) into a BlossomTree, following §3.1: for- and let-clauses grow the
// pattern trees with "f"/"l" annotated tree edges; where-clause atoms
// become crossing edges or vertex value constraints; return- and order
// by-clause paths extend the tree with optional edges. Conditions outside
// the conjunctive fragment are returned as residual filters.
func FromFLWOR(e flwor.Expr) (*Query, error) {
	f, err := findFLWOR(e)
	if err != nil {
		return nil, err
	}
	b := &builder{bt: NewBlossomTree(), vars: map[string]*Vertex{}, lets: map[string]*xpath.Path{}}
	q := &Query{Tree: b.bt, Vars: b.vars, Source: e}

	for _, cl := range f.Clauses {
		if cl.PosVar != "" {
			return nil, fmt.Errorf("core: positional variable $%s (at) is %w", cl.PosVar, ErrOutsideFragment)
		}
		mode := Mandatory
		if cl.Kind == flwor.LetClause {
			mode = Optional
		}
		path, _ := b.inlineLets(cl.Path, true)
		end, err := b.pathEndpoint(path, mode, false)
		if err != nil {
			return nil, fmt.Errorf("core: %s $%s: %w", cl.Kind, cl.Var, err)
		}
		if end.Blossom == "" {
			end.Blossom = cl.Var
		}
		end.Returning = true
		if cl.Kind == flwor.ForClause && !end.IsDocRoot() {
			end.ForBound = true
		}
		b.vars[cl.Var] = end
		if cl.Kind == flwor.LetClause {
			b.lets[cl.Var] = path
		}
	}

	if f.Where != nil {
		if err := b.cond(f.Where, q); err != nil {
			return nil, err
		}
	}
	if f.OrderBy != nil {
		end, err := b.pathEndpoint(stripTextTail(f.OrderBy), Optional, true)
		if err != nil {
			return nil, fmt.Errorf("core: order by: %w", err)
		}
		end.Returning = true
	}
	if err := b.returnPaths(f.Return); err != nil {
		return nil, err
	}

	q.Return = b.bt.Finalize()
	return q, nil
}

// findFLWOR unwraps constructors down to the single FLWOR body.
func findFLWOR(e flwor.Expr) (*flwor.FLWOR, error) {
	switch t := e.(type) {
	case *flwor.FLWOR:
		return t, nil
	case *flwor.ElemCtor:
		var found *flwor.FLWOR
		for _, c := range t.Content {
			f, err := findFLWOR(c)
			if err != nil {
				continue
			}
			if found != nil {
				return nil, fmt.Errorf("core: constructor embeds multiple FLWOR expressions; compile them separately")
			}
			found = f
		}
		if found == nil {
			return nil, fmt.Errorf("core: constructor contains no FLWOR expression")
		}
		return found, nil
	default:
		return nil, fmt.Errorf("core: expression %T is not a FLWOR expression", e)
	}
}

// pathEndpoint resolves the path's source anchor and extends the tree
// with its steps, returning the endpoint vertex. reuse allows mapping
// onto structurally identical existing vertices; it is set for where-,
// order by- and return-clause extensions (which are existential relative
// to their anchor blossom, so the same path must map to the same vertex)
// and clear for for-/let-clause paths (each clause is an independent
// iteration and needs its own vertex — the two doc()//book clauses of
// Example 1 produce two book vertices, as in Figure 1).
func (b *builder) pathEndpoint(p *xpath.Path, mode Mode, reuse bool) (*Vertex, error) {
	var anchor *Vertex
	switch p.Source.Kind {
	case xpath.SourceDoc:
		anchor = b.bt.AddRoot(p.Source.Doc)
	case xpath.SourceRoot:
		anchor = b.bt.AddRoot("")
	case xpath.SourceVar:
		v, ok := b.vars[p.Source.Var]
		if !ok {
			return nil, fmt.Errorf("unbound variable $%s", p.Source.Var)
		}
		anchor = v
	default:
		return nil, fmt.Errorf("relative path %s has no anchor in a FLWOR clause", p)
	}
	return b.extend(anchor, p.Steps, mode, reuse)
}

// extend grows the pattern tree along the given steps starting at
// anchor, reusing structurally identical existing children so that the
// same path referenced twice (e.g. in where and return) maps to the same
// vertex. It returns the endpoint vertex.
func (b *builder) extend(anchor *Vertex, steps []xpath.Step, mode Mode, reuse bool) (*Vertex, error) {
	cur := anchor
	for i, st := range steps {
		if st.TextTest {
			// Pattern-tree vertices match elements; text() selection is a
			// projection the executor applies after matching (trailing
			// text() on paths, return clauses and order by), never a
			// vertex. Anything else is outside the fragment.
			return nil, fmt.Errorf("text() steps are %w", ErrOutsideFragment)
		}
		switch st.Axis {
		case xpath.Self:
			if err := b.predicates(cur, st.Preds, mode); err != nil {
				return nil, err
			}
			continue
		case xpath.Parent, xpath.Ancestor:
			if st.Axis == xpath.Parent && len(st.Preds) == 0 && cur.Parent != nil &&
				cur.ParentRel == RelChild && !cur.Parent.IsDocRoot() &&
				(st.Test == "*" || st.Test == cur.Parent.Test) {
				// Static rewrite: the /-edge pins this vertex's match as a
				// child of the parent vertex's match, so ".." lands exactly
				// there — the step costs no new edge and stays planned.
				cur = cur.Parent
				continue
			}
			rel := RelParent
			if st.Axis == xpath.Ancestor {
				rel = RelAncestor
			}
			next := b.bt.NewVertex(st.Test)
			b.bt.AddChild(cur, next, rel, mode)
			if err := b.predicates(next, st.Preds, mode); err != nil {
				return nil, err
			}
			cur = next
			continue
		case xpath.Attribute:
			if i != len(steps)-1 {
				return nil, fmt.Errorf("non-final attribute step @%s is %w", st.Test, ErrOutsideFragment)
			}
			if len(st.Preds) > 0 {
				return nil, fmt.Errorf("predicates on attribute steps are %w", ErrOutsideFragment)
			}
			cur.Constraints = append(cur.Constraints, Constraint{Kind: CAttrExists, Attr: st.Test})
			return cur, nil
		}
		rel := RelChild
		switch st.Axis {
		case xpath.Descendant:
			rel = RelDescendant
		case xpath.FollowingSibling:
			rel = RelFollowingSibling
		}
		var next *Vertex
		if reuse {
			next = b.reuseChild(cur, st, rel)
		}
		if next == nil {
			next = b.bt.NewVertex(st.Test)
			b.bt.AddChild(cur, next, rel, mode)
			if err := b.predicates(next, st.Preds, mode); err != nil {
				return nil, err
			}
		} else if next.ParentMode == Optional && mode == Mandatory {
			next.ParentMode = Mandatory
		}
		cur = next
	}
	return cur, nil
}

// reuseChild finds an existing equivalent child vertex for a
// predicate-free name-test step.
func (b *builder) reuseChild(parent *Vertex, st xpath.Step, rel Rel) *Vertex {
	if len(st.Preds) > 0 {
		return nil
	}
	for _, c := range parent.Children {
		if c.Test == st.Test && c.ParentRel == rel && len(c.Constraints) == 0 {
			return c
		}
	}
	return nil
}

// predicates compiles a step's predicate list onto vertex v. Predicates
// are conjunctive: nested relative paths become mandatory subtrees, value
// comparisons become vertex constraints, positions become positional
// constraints. Disjunction and negation inside path predicates are
// outside the BlossomTree fragment.
func (b *builder) predicates(v *Vertex, preds []xpath.Expr, mode Mode) error {
	for _, p := range preds {
		if err := b.predicate(v, p, mode); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) predicate(v *Vertex, e xpath.Expr, mode Mode) error {
	switch t := e.(type) {
	case xpath.And:
		if err := b.predicate(v, t.L, mode); err != nil {
			return err
		}
		return b.predicate(v, t.R, mode)
	case xpath.Exists:
		_, err := b.extend(v, t.Path.Steps, Mandatory, false)
		return err
	case xpath.Position:
		// Position is order-sensitive: [n] counts the step's candidates
		// BEFORE later filters apply, but the matcher gates position before
		// checking a vertex's other constraints and subtrees regardless of
		// predicate order. Only the position-first form is expressible.
		if len(v.Constraints) > 0 || len(v.Children) > 0 {
			return fmt.Errorf("positional predicate after other predicates on %s is %w", v.Label(), ErrOutsideFragment)
		}
		v.Constraints = append(v.Constraints, Constraint{Kind: CPosition, Pos: t.N})
		return nil
	case xpath.Compare:
		return b.comparePredicate(v, t)
	case xpath.Or:
		return fmt.Errorf("disjunctive path predicates (%s) are %w", e, ErrOutsideFragment)
	case xpath.Not:
		return fmt.Errorf("negated path predicates (%s) are %w", e, ErrOutsideFragment)
	case *xpath.FuncCall:
		return fmt.Errorf("function predicates (%s) are %w", e, ErrOutsideFragment)
	default:
		return fmt.Errorf("unsupported predicate %s", e)
	}
}

// comparePredicate attaches a path-vs-literal comparison as a value
// constraint on the appropriate vertex.
func (b *builder) comparePredicate(v *Vertex, cmp xpath.Compare) error {
	left, op, lit, err := normalizeCompare(cmp)
	if err != nil {
		// Function operands and path-vs-path comparisons inside path
		// predicates have no vertex-constraint form.
		return fmt.Errorf("%v: %w", err, ErrOutsideFragment)
	}
	target := v
	steps := left.Steps
	// "@attr op lit" or "path/@attr op lit": peel a trailing attribute step.
	attr := ""
	if n := len(steps); n > 0 && steps[n-1].Axis == xpath.Attribute {
		attr = steps[n-1].Test
		steps = steps[:n-1]
	}
	// "." (self) contributes no steps.
	if len(steps) == 1 && steps[0].Axis == xpath.Self && len(steps[0].Preds) == 0 {
		steps = nil
	}
	if len(steps) > 0 {
		target, err = b.extend(v, steps, Mandatory, false)
		if err != nil {
			return err
		}
	}
	if attr != "" {
		target.Constraints = append(target.Constraints, Constraint{Kind: CAttr, Attr: attr, Op: op, Value: lit})
	} else {
		target.Constraints = append(target.Constraints, Constraint{Kind: CValue, Op: op, Value: lit})
	}
	return nil
}

// normalizeCompare orients a comparison so the path is on the left and
// the literal on the right, flipping the operator if needed.
func normalizeCompare(cmp xpath.Compare) (*xpath.Path, xpath.CmpOp, string, error) {
	lit := func(o xpath.Operand) (string, bool) {
		switch o.Kind {
		case xpath.OperandString:
			return o.Str, true
		case xpath.OperandNumber:
			return strconv.FormatFloat(o.Num, 'g', -1, 64), true
		}
		return "", false
	}
	if l, ok := lit(cmp.Right); ok && cmp.Left.Kind == xpath.OperandPath {
		return cmp.Left.Path, cmp.Op, l, nil
	}
	if l, ok := lit(cmp.Left); ok && cmp.Right.Kind == xpath.OperandPath {
		return cmp.Right.Path, flipOp(cmp.Op), l, nil
	}
	return nil, 0, "", fmt.Errorf("comparison %s must relate a path and a literal inside a predicate", cmp)
}

func flipOp(op xpath.CmpOp) xpath.CmpOp {
	switch op {
	case xpath.OpLt:
		return xpath.OpGt
	case xpath.OpLe:
		return xpath.OpGe
	case xpath.OpGt:
		return xpath.OpLt
	case xpath.OpGe:
		return xpath.OpLe
	default:
		return op // = and != are symmetric
	}
}

// cond compiles the where-clause. Conjunctions recurse; atoms become
// crossing edges or value constraints; everything else (disjunctions,
// negations that are not negated crossings) is residual.
func (b *builder) cond(c flwor.Cond, q *Query) error {
	switch t := c.(type) {
	case flwor.CondAnd:
		if err := b.cond(t.L, q); err != nil {
			return err
		}
		return b.cond(t.R, q)
	case flwor.CondNot:
		if ok, err := b.atom(t.C, true, q); err != nil {
			return err
		} else if !ok {
			q.Residual = append(q.Residual, c)
		}
		return nil
	default:
		if ok, err := b.atom(c, false, q); err != nil {
			return err
		} else if !ok {
			q.Residual = append(q.Residual, c)
		}
		return nil
	}
}

// atom tries to compile a single condition (possibly negated) into the
// BlossomTree. It reports false when the condition must stay residual.
func (b *builder) atom(c flwor.Cond, negate bool, q *Query) (bool, error) {
	switch t := c.(type) {
	case flwor.CondDocOrder:
		from, to := t.Left, t.Right
		if !t.Before { // a >> b  ≡  b << a
			from, to = to, from
		}
		if negate && (hasAttrTail(from) || hasAttrTail(to)) {
			// The doc-order crossing compares the carrying elements; under
			// negation a missing attribute must make the condition TRUE,
			// which the element comparison cannot express. Residualize.
			return false, nil
		}
		from, fin := b.inlineLets(from, false)
		to, tin := b.inlineLets(to, false)
		fv, err := b.pathEndpoint(from, endpointMode(negate), !fin)
		if err != nil {
			return false, err
		}
		tv, err := b.pathEndpoint(to, endpointMode(negate), !tin)
		if err != nil {
			return false, err
		}
		b.bt.AddCrossing(&Crossing{From: fv, To: tv, Kind: CrossDocOrder, Negate: negate})
		return true, nil
	case flwor.CondDeepEqual:
		if hasAttrTail(t.Left) || hasAttrTail(t.Right) {
			// deep-equal(empty, empty) is TRUE, so an element lacking the
			// attribute must contribute an empty sequence — but the crossing
			// projects the carrying element, which is non-empty. Residualize.
			return false, nil
		}
		// Optional endpoint edges: deep-equal(empty, empty) is TRUE, so
		// a row whose paths match nothing must survive to the crossing
		// evaluation (which sees two empty projections) instead of being
		// dropped by a mandatory edge.
		left, lin := b.inlineLets(t.Left, false)
		right, rin := b.inlineLets(t.Right, false)
		fv, err := b.pathEndpoint(left, Optional, !lin)
		if err != nil {
			return false, err
		}
		tv, err := b.pathEndpoint(right, Optional, !rin)
		if err != nil {
			return false, err
		}
		b.bt.AddCrossing(&Crossing{From: fv, To: tv, Kind: CrossDeepEqual, Negate: negate})
		return true, nil
	case flwor.CondCmp:
		if t.Left.Kind == xpath.OperandPath && t.Right.Kind == xpath.OperandPath {
			// Attribute-ending operand paths compare attribute values; the
			// crossing carries the attribute names and reads them per node.
			// Non-negated atoms keep the full path so pathEndpoint adds the
			// CAttrExists constraint (a node without the attribute makes the
			// comparison false, so dropping it early is equivalent). Negated
			// atoms use the peeled element prefix instead: a missing
			// attribute must reach the crossing, where the empty comparison
			// is false and the negation turns the row TRUE.
			lfull, lin := b.inlineLets(t.Left.Path, false)
			rfull, rin := b.inlineLets(t.Right.Path, false)
			lp, lattr := attrTail(lfull)
			rp, rattr := attrTail(rfull)
			if !negate {
				lp, rp = lfull, rfull
			}
			fv, err := b.pathEndpoint(lp, endpointMode(negate), !lin)
			if err != nil {
				return false, err
			}
			tv, err := b.pathEndpoint(rp, endpointMode(negate), !rin)
			if err != nil {
				return false, err
			}
			b.bt.AddCrossing(&Crossing{From: fv, To: tv, Kind: CrossValue, Op: t.Op,
				FromAttr: lattr, ToAttr: rattr, Negate: negate})
			return true, nil
		}
		if negate {
			return false, nil // not(path = lit) is not a vertex constraint
		}
		left, op, lit, err := normalizeCompare(xpath.Compare{Left: t.Left, Op: t.Op, Right: t.Right})
		if err != nil {
			return false, nil // literal-vs-literal etc. stays residual
		}
		left, _ = b.inlineLets(left, true)
		end, err := b.pathEndpoint(&xpath.Path{Source: left.Source}, Mandatory, true)
		if err != nil {
			return false, err
		}
		// The constraint only filters rows where the vertex matched; an
		// empty operand makes the comparison false, so the chain down to
		// the anchor must be mandatory for the rows the oracle drops to
		// be dropped (comparePredicate grows the inlined steps as fresh
		// mandatory branches itself).
		require(end)
		return true, b.comparePredicate(end, xpath.Compare{
			Left:  xpath.Operand{Kind: xpath.OperandPath, Path: relativize(left)},
			Op:    op,
			Right: xpath.Operand{Kind: xpath.OperandString, Str: lit},
		})
	case flwor.CondExists:
		if negate {
			return false, nil
		}
		p, inlined := b.inlineLets(t.Path, false)
		end, err := b.pathEndpoint(p, Mandatory, !inlined)
		if err != nil {
			return false, err
		}
		require(end) // any optional edges on the chain must turn mandatory
		return true, nil
	default:
		return false, nil
	}
}

// stripTextTail peels a trailing text() step off a path, leaving the
// element prefix the pattern tree can match. The full path (text()
// included) is still evaluated navigationally where its value matters
// — order-by keys and constructor content — so stripping here only
// widens the pattern, never changes results. The prefix shares the
// original's step array; paths are read-only after parsing.
func stripTextTail(p *xpath.Path) *xpath.Path {
	if n := len(p.Steps); n > 0 && p.Steps[n-1].TextTest {
		return &xpath.Path{Source: p.Source, Steps: p.Steps[:n-1]}
	}
	return p
}

// require upgrades every optional edge on v's ancestor chain to
// mandatory, so a vertex constraint or existence test on v actually
// eliminates rows where v has no match (the matcher never evaluates
// constraints on unmatched optional vertices).
func require(v *Vertex) {
	for ; v != nil && v.Parent != nil; v = v.Parent {
		if v.ParentMode == Optional {
			v.ParentMode = Mandatory
		}
	}
}

// inlineLets rewrites a path anchored at a let variable to start from
// the let definition's own anchor ($l/b with let $l := $x/a becomes
// $x/a/b). Where-clause and later-clause paths must never extend or
// constrain the vertex feeding a let binding's slot: the binding
// projects the WHOLE matched sequence, while a constraint or mandatory
// subtree attached there would narrow the projection to the satisfying
// instances only. Conditions are existential over the sequence, so an
// inlined parallel branch is equivalent — and leaves the binding vertex
// untouched. Reports whether any inlining happened so callers can
// disable vertex reuse (reuse could map the inlined prefix right back
// onto the binding vertex it is meant to avoid).
//
// A bare let-variable reference (no steps) is left alone unless force
// is set: an unadorned crossing endpoint or exists() test reads the
// binding vertex without modifying it, and reusing it keeps the tree in
// the paper's Figure 1 shape. Call sites that attach a constraint even
// to a step-less path (path-vs-literal comparisons) pass force; so do
// for/let clauses, where binding flags on a shared vertex would couple
// the two variables.
func (b *builder) inlineLets(p *xpath.Path, force bool) (*xpath.Path, bool) {
	inlined := false
	for p.Source.Kind == xpath.SourceVar && (force || len(p.Steps) > 0) {
		def, ok := b.lets[p.Source.Var]
		if !ok {
			break
		}
		steps := make([]xpath.Step, 0, len(def.Steps)+len(p.Steps))
		steps = append(append(steps, def.Steps...), p.Steps...)
		p = &xpath.Path{Source: def.Source, Steps: steps}
		inlined = true
	}
	return p, inlined
}

// endpointMode picks the tree-edge mode for a crossing endpoint. Negated
// crossings ride optional edges: not(a = b) is TRUE when either path is
// empty (the inner comparison is false), so rows with an empty projection
// must survive to the crossing evaluation instead of being dropped by a
// mandatory edge. Positive crossings keep mandatory edges — an empty
// operand makes the condition false, so dropping the row early is
// equivalent and cheaper.
func endpointMode(negate bool) Mode {
	if negate {
		return Optional
	}
	return Mandatory
}

// hasAttrTail reports whether the path's last step is an attribute step.
func hasAttrTail(p *xpath.Path) bool {
	_, a := attrTail(p)
	return a != ""
}

// attrTail splits a trailing attribute step off a path, returning the
// element prefix and the attribute name ("" when there is none).
func attrTail(p *xpath.Path) (*xpath.Path, string) {
	if n := len(p.Steps); n > 0 && p.Steps[n-1].Axis == xpath.Attribute {
		return &xpath.Path{Source: p.Source, Steps: p.Steps[:n-1]}, p.Steps[n-1].Test
	}
	return p, ""
}

// relativize strips a path's source, leaving its steps as a relative
// path.
func relativize(p *xpath.Path) *xpath.Path {
	return &xpath.Path{Source: xpath.Source{Kind: xpath.SourceContext}, Steps: p.Steps}
}

// returnPaths extends the tree with the paths referenced by the
// return-clause so their endpoints are returning nodes the executor can
// project. Return-clause edges are optional ("l"): a missing title must
// not eliminate a result pair.
func (b *builder) returnPaths(e flwor.Expr) error {
	switch t := e.(type) {
	case *flwor.PathExpr:
		if t.Path.Source.Kind == xpath.SourceVar || t.Path.Source.Kind == xpath.SourceDoc || t.Path.Source.Kind == xpath.SourceRoot {
			end, err := b.pathEndpoint(stripTextTail(t.Path), Optional, true)
			if err != nil {
				return fmt.Errorf("core: return: %w", err)
			}
			end.Returning = true
		}
		return nil
	case *flwor.Sequence:
		for _, it := range t.Items {
			if err := b.returnPaths(it); err != nil {
				return err
			}
		}
		return nil
	case *flwor.ElemCtor:
		for _, it := range t.Content {
			if err := b.returnPaths(it); err != nil {
				return err
			}
		}
		return nil
	case *flwor.TextCtor:
		return nil
	case *flwor.FLWOR:
		return fmt.Errorf("core: nested FLWOR expressions in return-clauses are outside the fragment")
	default:
		return fmt.Errorf("core: unsupported return expression %T", e)
	}
}
