// Package core implements the paper's primary contribution: the
// BlossomTree formalism (Definition 1) — an annotated directed graph of
// interconnected pattern trees whose vertices carry tag-name and value
// constraints and may be bound to variables (blossoms), and whose edges
// carry a relationship/mode annotation ⟨r, m⟩ — together with the global
// Dewey-ID assignment over returning nodes, the returning-tree extraction
// of §4.1, and the decomposition of a BlossomTree into interconnected NoK
// pattern trees (Algorithm 1).
package core

import (
	"strconv"
	"strings"
)

// Dewey is a Dewey identifier assigned to a returning node of a
// BlossomTree: the path of ordinals from the artificial super-root
// (which is always Dewey "1"). Dewey IDs are the parameters of the
// NestedList operators (projection, selection, join).
type Dewey []int

// ParseDewey parses "1.2.1" into a Dewey.
func ParseDewey(s string) (Dewey, error) {
	parts := strings.Split(s, ".")
	d := make(Dewey, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		d[i] = n
	}
	return d, nil
}

// String renders the dotted form, e.g. "1.1.2".
func (d Dewey) String() string {
	if len(d) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, n := range d {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.Itoa(n))
	}
	return sb.String()
}

// Equal reports component-wise equality.
func (d Dewey) Equal(o Dewey) bool {
	if len(d) != len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether d is a (non-strict) prefix of o — i.e.
// whether d's returning node is an ancestor-or-self of o's in the
// returning tree.
func (d Dewey) IsPrefixOf(o Dewey) bool {
	if len(d) > len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// Child returns d extended with ordinal i.
func (d Dewey) Child(i int) Dewey {
	out := make(Dewey, len(d)+1)
	copy(out, d)
	out[len(d)] = i
	return out
}

// Compare orders Deweys lexicographically (document order of the
// returning tree).
func (d Dewey) Compare(o Dewey) int {
	for i := 0; i < len(d) && i < len(o); i++ {
		if d[i] != o[i] {
			if d[i] < o[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(d) < len(o):
		return -1
	case len(d) > len(o):
		return 1
	default:
		return 0
	}
}
