package core

import "errors"

// ErrOutsideFragment marks query constructs that parse but cannot be
// expressed in the BlossomTree pattern fragment (function predicates,
// non-rewritable parent/ancestor edges, positional variables, positional
// predicates under nested //-cuts, …). Compilation and planning errors
// wrap it with %w; the executor treats it as a routing signal rather
// than a failure, compiling such queries to a cached navigational
// fallback that still flows through the plan cache, EXPLAIN, governance
// and the daemon.
var ErrOutsideFragment = errors.New("outside the BlossomTree fragment")
