package core

// ReturnNode is a node of the returning tree (§4.1): the contraction of
// the BlossomTree to its returning vertices, where two nodes are
// connected iff they are in the closest ancestor-descendant relationship
// among returning vertices. The artificial super-root (Dewey "1") has a
// nil Vertex.
type ReturnNode struct {
	Vertex   *Vertex // nil for the super-root
	Dewey    Dewey
	Slot     int // dense index into ReturnTree.Nodes; 0 is the super-root
	Parent   *ReturnNode
	Children []*ReturnNode
}

// ChildOrdinal returns this node's 0-based position among its parent's
// children.
func (n *ReturnNode) ChildOrdinal() int {
	if n.Parent == nil {
		return 0
	}
	for i, c := range n.Parent.Children {
		if c == n {
			return i
		}
	}
	return -1
}

// ReturnTree is the returning tree with its Dewey numbering. It is the
// shape every NestedList instance of the query conforms to.
type ReturnTree struct {
	Root  *ReturnNode
	Nodes []*ReturnNode // indexed by Slot

	byVertex map[*Vertex]*ReturnNode
	byDewey  map[string]*ReturnNode
}

// ByVertex returns the returning-tree node of a returning vertex.
func (rt *ReturnTree) ByVertex(v *Vertex) (*ReturnNode, bool) {
	n, ok := rt.byVertex[v]
	return n, ok
}

// ByDewey resolves a Dewey ID to its returning-tree node.
func (rt *ReturnTree) ByDewey(d Dewey) (*ReturnNode, bool) {
	n, ok := rt.byDewey[d.String()]
	return n, ok
}

// ByVar resolves a variable name to its returning-tree node.
func (rt *ReturnTree) ByVar(name string) (*ReturnNode, bool) {
	for _, n := range rt.Nodes {
		if n.Vertex != nil && n.Vertex.Blossom == name {
			return n, true
		}
	}
	return nil, false
}

// Finalize marks the implicit returning vertices (endpoints of cut edges
// and crossing edges, per §3.3: "we should assign a Dewey ID to each
// returning node before decomposing it into interconnected NoK pattern
// trees"), then assigns global Dewey IDs by depth-first traversal under
// the artificial super-root. It returns the resulting returning tree and
// memoizes it on the BlossomTree.
func (bt *BlossomTree) Finalize() *ReturnTree {
	// Join endpoints must be addressable by Dewey ID.
	for _, v := range bt.Vertices {
		if v.Parent != nil && v.ParentRel == RelDescendant {
			v.Returning = true
			if !v.Parent.IsDocRoot() {
				v.Parent.Returning = true
			}
		}
	}
	for _, c := range bt.Crossings {
		c.From.Returning = true
		c.To.Returning = true
	}

	rt := &ReturnTree{
		byVertex: make(map[*Vertex]*ReturnNode),
		byDewey:  make(map[string]*ReturnNode),
	}
	rt.Root = &ReturnNode{Dewey: Dewey{1}, Slot: 0}
	rt.Nodes = []*ReturnNode{rt.Root}
	rt.byDewey["1"] = rt.Root

	var walk func(v *Vertex, parent *ReturnNode)
	walk = func(v *Vertex, parent *ReturnNode) {
		cur := parent
		if v.Returning {
			n := &ReturnNode{
				Vertex: v,
				Parent: parent,
				Slot:   len(rt.Nodes),
				Dewey:  parent.Dewey.Child(len(parent.Children) + 1),
			}
			parent.Children = append(parent.Children, n)
			rt.Nodes = append(rt.Nodes, n)
			rt.byVertex[v] = n
			rt.byDewey[n.Dewey.String()] = n
			v.Dewey = n.Dewey
			cur = n
		}
		for _, c := range v.Children {
			walk(c, cur)
		}
	}
	for _, r := range bt.Roots {
		walk(r, rt.Root)
	}
	bt.returning = rt
	return rt
}

// ReturnTree returns the memoized returning tree, finalizing on first
// use.
func (bt *BlossomTree) ReturnTree() *ReturnTree {
	if bt.returning == nil {
		return bt.Finalize()
	}
	return bt.returning
}
